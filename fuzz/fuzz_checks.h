// Shared invariant checks for the untrusted-input parsers, used from
// two harnesses that must never drift apart:
//
//   * the libFuzzer targets in fuzz/*_fuzzer.cc (coverage-guided,
//     CI-smoked over the checked-in seed corpora, run long locally),
//   * the bounded-budget GTest battery in tests/net_fuzz_test.cc
//     (mutation fuzzing that runs in every ctest invocation).
//
// Each check returns nullptr when every invariant holds and a static
// description of the first violated invariant otherwise; the fuzzer
// aborts on non-null (so the crash reproducer IS the counterexample)
// and the GTest battery turns the same message into a test failure.
// Memory safety itself is the sanitizers' job — these checks pin the
// semantic contract: parsers either succeed and uphold the documented
// invariants, or fail with a clean, non-empty corruption Status.

#ifndef GREPAIR_FUZZ_FUZZ_CHECKS_H_
#define GREPAIR_FUZZ_FUZZ_CHECKS_H_

#include <cstdint>
#include <vector>

#include "src/net/frame.h"
#include "src/shard/sharded_codec.h"
#include "src/util/bit_stream.h"
#include "src/util/byte_io.h"
#include "src/util/elias.h"
#include "src/util/status.h"

namespace grepair {
namespace fuzz {

/// \brief GRNF wire-frame decode: ok frames re-encode byte-identically
/// and carry the type's protocol version; failures are non-empty
/// kCorruption. Returns nullptr or the violated invariant.
inline const char* CheckFrameParse(ByteSpan bytes) {
  size_t consumed = 0;
  auto frame = net::DecodeFrame(bytes, &consumed);
  if (!frame.ok()) {
    if (frame.status().code() != StatusCode::kCorruption) {
      return "frame decode failed with a code other than kCorruption";
    }
    if (frame.status().message().empty()) {
      return "frame decode failed with an empty status message";
    }
    return nullptr;
  }
  if (consumed > bytes.size) {
    return "frame decode claims to have consumed more bytes than given";
  }
  if (frame.value().type < net::kGetDir || frame.value().type > net::kError2) {
    return "decoded frame type is outside the known verb range";
  }
  // The version byte always agrees with the type (a mismatch is
  // rejected as corruption), and a decoded frame re-encodes to the
  // exact bytes it came from.
  if (frame.value().version != net::FrameVersionForType(frame.value().type)) {
    return "decoded frame version disagrees with its type's version";
  }
  auto reencoded = net::EncodeFrameWithVersion(
      frame.value().version, frame.value().type, SpanOf(frame.value().body));
  if (reencoded !=
      std::vector<uint8_t>(bytes.data, bytes.data + consumed)) {
    return "re-encoding a decoded frame did not reproduce its input bytes";
  }
  return nullptr;
}

/// \brief GRSHARD2 directory parse: a successful parse must uphold the
/// invariants queries rely on (row/node-map agreement, strictly
/// increasing in-range node IDs, payload ranges confined to
/// [8, dir_off)); failures are non-empty kCorruption.
inline const char* CheckDirectoryParse(ByteSpan dir, uint64_t dir_off) {
  auto parsed = shard::ParseV2Directory(dir, dir_off);
  if (!parsed.ok()) {
    if (parsed.status().code() != StatusCode::kCorruption) {
      return "directory parse failed with a code other than kCorruption";
    }
    if (parsed.status().message().empty()) {
      return "directory parse failed with an empty status message";
    }
    return nullptr;
  }
  const shard::ParsedDirectory& d = parsed.value();
  if (d.rows.size() != d.node_maps.size()) {
    return "directory row count disagrees with node-map count";
  }
  for (size_t i = 0; i < d.rows.size(); ++i) {
    if (d.rows[i].node_count != d.node_maps[i].size()) {
      return "directory node_count disagrees with the node map's length";
    }
    for (size_t k = 0; k < d.node_maps[i].size(); ++k) {
      if (d.node_maps[i][k] >= d.num_nodes) {
        return "node map contains an ID >= num_nodes";
      }
      if (k > 0 && d.node_maps[i][k - 1] >= d.node_maps[i][k]) {
        return "node map is not strictly increasing";
      }
    }
    if (d.rows[i].length > 0) {
      if (d.rows[i].offset < 8) {
        return "shard payload overlaps the container header";
      }
      if (d.rows[i].offset + d.rows[i].length > dir_off) {
        return "shard payload range reaches into the directory";
      }
    }
  }
  return nullptr;
}

/// \brief The GRSHARD2 directory fuzzer's input framing: the first 8
/// bytes are the little-endian dir_off the parser is told, the rest is
/// the directory region. Seeds (fuzz/gen_corpus.cc) use the same shape.
inline const char* CheckFramedDirectoryInput(const uint8_t* data,
                                             size_t size) {
  if (size < 8) return nullptr;  // not enough bytes for the dir_off
  uint64_t dir_off = 0;
  for (int i = 0; i < 8; ++i) {
    dir_off |= static_cast<uint64_t>(data[i]) << (8 * i);
  }
  return CheckDirectoryParse(ByteSpan(data + 8, size - 8), dir_off);
}

/// \brief Differential check of the word-at-a-time bit-stream/Elias
/// decoders against their bit-at-a-time scalar oracles: on ANY input
/// the two must produce identical values, identical statuses (code and
/// message) and identical cursor positions after every single decode.
inline const char* CheckEliasDifferential(const uint8_t* data, size_t size) {
  const size_t bit_count = size * 8;

  // Gamma then delta: decode the whole stream twice, lock-step.
  for (int use_delta = 0; use_delta < 2; ++use_delta) {
    BitReader fast(data, bit_count);
    BitReader scalar(data, bit_count);
    for (;;) {
      uint64_t fast_value = 0;
      uint64_t scalar_value = 0;
      Status fast_status =
          use_delta ? EliasDeltaDecode(&fast, &fast_value)
                    : EliasGammaDecode(&fast, &fast_value);
      Status scalar_status =
          use_delta ? EliasDeltaDecodeScalar(&scalar, &scalar_value)
                    : EliasGammaDecodeScalar(&scalar, &scalar_value);
      if (fast_status.code() != scalar_status.code()) {
        return "fast and scalar Elias decoders disagree on the status code";
      }
      if (fast_status.message() != scalar_status.message()) {
        return "fast and scalar Elias decoders disagree on the message";
      }
      if (fast.position() != scalar.position()) {
        return "fast and scalar Elias decoders left different cursors";
      }
      if (!fast_status.ok()) break;
      if (fast_value != scalar_value) {
        return "fast and scalar Elias decoders decoded different values";
      }
      // Every successful decode consumes >= 1 bit, so this terminates.
    }
  }

  // ReadBits vs ReadBitsScalar with widths walked from the input so
  // the fuzzer explores the 0/64/straddle edges.
  {
    BitReader fast(data, bit_count);
    BitReader scalar(data, bit_count);
    int width = 0;
    for (;;) {
      uint64_t fast_value = 0;
      uint64_t scalar_value = 0;
      Status fast_status = fast.ReadBits(width, &fast_value);
      Status scalar_status = scalar.ReadBitsScalar(width, &scalar_value);
      if (fast_status.code() != scalar_status.code()) {
        return "ReadBits and ReadBitsScalar disagree on the status code";
      }
      if (fast.position() != scalar.position()) {
        return "ReadBits and ReadBitsScalar left different cursors";
      }
      if (!fast_status.ok()) break;
      if (fast_value != scalar_value) {
        return "ReadBits and ReadBitsScalar read different values";
      }
      if (width == 0 && fast.BitsAvailable() == 0) break;
      width = (width + 7) % 65;  // 0,7,14,...,63,5,... covers 0..64
    }
  }
  return nullptr;
}

}  // namespace fuzz
}  // namespace grepair

#endif  // GREPAIR_FUZZ_FUZZ_CHECKS_H_
