// File-replay driver for the fuzz targets on toolchains without
// libFuzzer (GCC, or Clang without compiler-rt): runs
// LLVMFuzzerTestOneInput over every file or directory argument and
// exits non-zero on the first read failure. Invariant violations abort
// inside the target, so a clean exit means the whole corpus passed.
// This is what the ctest fuzz_smoke_* tests run locally; under Clang
// the real libFuzzer main replaces this file and the same corpora are
// replayed with -runs=0.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  size_t ran = 0;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path arg(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (!entry.is_regular_file()) continue;
        if (!RunFile(entry.path())) return 1;
        ++ran;
      }
    } else {
      if (!RunFile(arg)) return 1;
      ++ran;
    }
  }
  std::printf("replayed %zu inputs, all invariants held\n", ran);
  return 0;
}
