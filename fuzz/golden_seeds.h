// Golden-path fixtures shared by the GTest mutation battery
// (tests/net_fuzz_test.cc) and the seed-corpus generator
// (fuzz/gen_corpus.cc), so the seeds the coverage-guided fuzzers start
// from are exactly the ones the always-on test fuzzing mutates.

#ifndef GREPAIR_FUZZ_GOLDEN_SEEDS_H_
#define GREPAIR_FUZZ_GOLDEN_SEEDS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/api/grepair_api.h"
#include "src/net/frame.h"
#include "src/shard/sharded_codec.h"
#include "src/util/byte_io.h"
#include "src/util/status.h"

namespace grepair {
namespace fuzz {

/// \brief One golden frame per verb of both protocol generations, plus
/// empty-body edges.
inline std::vector<std::vector<uint8_t>> GoldenFrameSeeds() {
  std::vector<uint8_t> payload(300);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 7);
  }
  std::vector<uint8_t> hello;
  PutU32LE(net::kProtoV2, &hello);
  std::vector<uint8_t> hello_ok = hello;
  PutU32LE(3, &hello_ok);
  std::vector<uint8_t> open_corpus;
  PutU64LE(42, &open_corpus);
  open_corpus.push_back(3);
  open_corpus.insert(open_corpus.end(), {'w', 'e', 'b'});
  std::vector<uint8_t> corpus_dir;
  PutU64LE(42, &corpus_dir);
  PutU32LE(1, &corpus_dir);
  PutU64LE(128, &corpus_dir);
  corpus_dir.insert(corpus_dir.end(), payload.begin(), payload.end());
  std::vector<uint8_t> get_shard2;
  PutU64LE(43, &get_shard2);
  PutU32LE(1, &get_shard2);
  PutU32LE(2, &get_shard2);
  std::vector<uint8_t> shard2 = get_shard2;
  shard2.insert(shard2.end(), payload.begin(), payload.end());
  std::vector<uint8_t> get_stats;
  PutU64LE(44, &get_stats);
  return {
      net::EncodeFrame(net::kGetDir, ByteSpan{}),
      net::EncodeFrame(net::kGetShard, ByteSpan(payload.data(), 4)),
      net::EncodeFrame(net::kDir, SpanOf(payload)),
      net::EncodeFrame(net::kShard, SpanOf(payload)),
      net::EncodeFrame(net::kError,
                       SpanOf(net::EncodeErrorBody(
                           Status::InvalidArgument("seed error")))),
      net::EncodeFrame(net::kHello, SpanOf(hello)),
      net::EncodeFrame(net::kHelloOk, SpanOf(hello_ok)),
      net::EncodeFrame(net::kOpenCorpus, SpanOf(open_corpus)),
      net::EncodeFrame(net::kCorpusDir, SpanOf(corpus_dir)),
      net::EncodeFrame(net::kGetShard2, SpanOf(get_shard2)),
      net::EncodeFrame(net::kShard2, SpanOf(shard2)),
      net::EncodeFrame(net::kGetStats, SpanOf(get_stats)),
      net::EncodeFrame(net::kError2,
                       SpanOf(net::EncodeErrorBody2(
                           99, Status::NotFound("seed error 2")))),
  };
}

/// \brief A small real GRSHARD2 container (BarabasiAlbert graph,
/// sharded:grepair codec) whose directory region seeds the directory
/// fuzzing. Dies on failure: these are fixed golden parameters, so a
/// failure is a build problem, not an input problem.
inline std::vector<uint8_t> GoldenContainerBytes(uint32_t nodes,
                                                 uint32_t shards,
                                                 uint64_t rng_seed) {
  GeneratedGraph gg = BarabasiAlbert(nodes, 3, rng_seed);
  auto codec = api::CodecRegistry::Create("sharded:grepair").ValueOrDie();
  api::CodecOptions options;
  options.Set("shards", std::to_string(shards));
  auto rep = codec->Compress(gg.graph, gg.alphabet, options);
  if (!rep.ok()) {
    std::fprintf(stderr, "golden container compress failed: %s\n",
                 rep.status().ToString().c_str());
    std::abort();
  }
  return dynamic_cast<shard::ShardedRep*>(rep.value().get())->SerializeV2();
}

}  // namespace fuzz
}  // namespace grepair

#endif  // GREPAIR_FUZZ_GOLDEN_SEEDS_H_
