// Deterministic seed-corpus generator for the fuzz targets. Usage:
//
//   gen_corpus <corpus_root>
//
// writes fuzz inputs under <corpus_root>/{frame,shard_directory,elias}
// — the directories checked in at fuzz/corpus and replayed by the
// ctest fuzz_smoke_* tests. Seeds are golden-path encodings (every
// verb of both frame protocol generations, real GRSHARD2 directories,
// well-formed Elias streams plus the degenerate all-zeros/all-ones
// edges), so coverage-guided runs start from deep inside the parsers
// instead of fighting the magic bytes. Rerun after a format change and
// commit the diff.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/golden_seeds.h"
#include "src/util/bit_stream.h"
#include "src/util/elias.h"

namespace grepair {
namespace {

void WriteSeed(const std::filesystem::path& dir, const std::string& name,
               const std::vector<uint8_t>& bytes) {
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", (dir / name).c_str());
    std::exit(1);
  }
}

// The shard_directory target's input framing: 8-byte LE dir_off, then
// the raw directory region of a real container.
std::vector<uint8_t> FramedDirectorySeed(uint32_t nodes, uint32_t shards,
                                         uint64_t rng_seed) {
  std::vector<uint8_t> container =
      fuzz::GoldenContainerBytes(nodes, shards, rng_seed);
  uint64_t dir_off = 0;
  auto region = shard::LocateV2DirectoryRegion(SpanOf(container), &dir_off);
  if (!region.ok()) {
    std::fprintf(stderr, "locate failed: %s\n",
                 region.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<uint8_t> framed;
  PutU64LE(dir_off, &framed);
  framed.insert(framed.end(), region.value().begin(), region.value().end());
  return framed;
}

std::vector<uint8_t> EliasStream(const std::vector<uint64_t>& values,
                                 bool delta) {
  BitWriter w;
  for (uint64_t v : values) {
    if (delta) {
      EliasDeltaEncode(v, &w);
    } else {
      EliasGammaEncode(v, &w);
    }
  }
  return w.TakeBytes();
}

}  // namespace
}  // namespace grepair

int main(int argc, char** argv) {
  using grepair::EliasStream;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus_root>\n", argv[0]);
    return 1;
  }
  const std::filesystem::path root(argv[1]);
  const auto frame_dir = root / "frame";
  const auto dir_dir = root / "shard_directory";
  const auto elias_dir = root / "elias";
  std::filesystem::create_directories(frame_dir);
  std::filesystem::create_directories(dir_dir);
  std::filesystem::create_directories(elias_dir);

  auto frames = grepair::fuzz::GoldenFrameSeeds();
  for (size_t i = 0; i < frames.size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "frame_%02zu.bin", i);
    grepair::WriteSeed(frame_dir, name, frames[i]);
  }

  grepair::WriteSeed(dir_dir, "dir_ba50_shards3.bin",
                     grepair::FramedDirectorySeed(50, 3, 61));
  grepair::WriteSeed(dir_dir, "dir_ba120_shards5.bin",
                     grepair::FramedDirectorySeed(120, 5, 7));

  // Well-formed streams across the value range, then the adversarial
  // shapes the word-at-a-time decoders special-case: long unary
  // prefixes (all zeros), dense stop bits (all ones), and the 64-bit
  // extremes where the lookahead-window math saturates.
  std::vector<uint64_t> small;
  for (uint64_t v = 1; v <= 100; ++v) small.push_back(v);
  std::vector<uint64_t> powers;
  for (int s = 0; s < 64; ++s) powers.push_back(1ull << s);
  std::vector<uint64_t> extremes = {1, 2, 3, (1ull << 63) - 1, 1ull << 63,
                                    ~0ull - 1, ~0ull};
  grepair::WriteSeed(elias_dir, "gamma_small.bin", EliasStream(small, false));
  grepair::WriteSeed(elias_dir, "delta_small.bin", EliasStream(small, true));
  grepair::WriteSeed(elias_dir, "gamma_powers.bin", EliasStream(powers, false));
  grepair::WriteSeed(elias_dir, "delta_powers.bin", EliasStream(powers, true));
  grepair::WriteSeed(elias_dir, "gamma_extremes.bin",
                     EliasStream(extremes, false));
  grepair::WriteSeed(elias_dir, "delta_extremes.bin",
                     EliasStream(extremes, true));
  grepair::WriteSeed(elias_dir, "zeros.bin", std::vector<uint8_t>(24, 0x00));
  grepair::WriteSeed(elias_dir, "ones.bin", std::vector<uint8_t>(24, 0xFF));
  grepair::WriteSeed(elias_dir, "empty.bin", {});

  std::printf("corpus written under %s\n", root.c_str());
  return 0;
}
