#include "src/encoding/grammar_coder.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>

#include "src/k2tree/k2tree.h"
#include "src/util/elias.h"

namespace grepair {

namespace {

constexpr uint32_t kMagic = 0x47524731;  // "GRG1"

int IndexBits(size_t dictionary_size) {
  if (dictionary_size <= 1) return 0;
  int bits = 0;
  size_t v = dictionary_size - 1;
  while (v > 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

// Writes one production in the paper's format.
void EncodeRule(const SlhrGrammar& grammar, const Hypergraph& rhs,
                BitWriter* w) {
  EliasDeltaEncode(rhs.num_edges() + 1, w);
  EliasDeltaEncode(rhs.num_nodes() + 1, w);
  EliasDeltaEncode(rhs.ext().size() + 1, w);
  uint32_t rank = static_cast<uint32_t>(rhs.ext().size());
  for (const auto& e : rhs.edges()) {
    w->PutBit(grammar.IsNonterminal(e.label));
    EliasDeltaEncode(e.att.size(), w);
    for (NodeId v : e.att) {
      w->PutBit(v < rank);  // external marker (canonical form: ids 0..k-1)
      EliasDeltaEncode(v + 1, w);
    }
    EliasDeltaEncode(e.label + 1, w);
  }
}

Status DecodeRule(uint32_t num_labels, BitReader* r, Hypergraph* rhs,
                  uint32_t* rank_out) {
  uint64_t num_edges = 0, num_nodes = 0, rank = 0;
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(r, &num_edges));
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(r, &num_nodes));
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(r, &rank));
  if (num_edges == 0 || num_nodes == 0 || rank == 0) {
    return Status::Corruption("bad rule header");
  }
  --num_edges;
  --num_nodes;
  --rank;
  if (num_nodes > 0xFFFFFFFFull) {
    return Status::Corruption("rhs node count out of range");
  }
  if (rank == 0 || rank > 64) {
    return Status::Corruption("nonterminal rank out of range");
  }
  if (rank > num_nodes) return Status::Corruption("rank exceeds rhs nodes");
  *rhs = Hypergraph(static_cast<uint32_t>(num_nodes));
  for (uint64_t i = 0; i < num_edges; ++i) {
    bool is_nt = false;
    GREPAIR_RETURN_IF_ERROR(r->ReadBit(&is_nt));
    uint64_t att_count = 0;
    GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(r, &att_count));
    if (att_count == 0 || att_count > 64) {
      return Status::Corruption("bad attachment count");
    }
    std::vector<NodeId> att(att_count);
    for (uint64_t a = 0; a < att_count; ++a) {
      bool external = false;
      GREPAIR_RETURN_IF_ERROR(r->ReadBit(&external));
      uint64_t id = 0;
      GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(r, &id));
      if (id == 0 || id > num_nodes) {
        return Status::Corruption("bad rhs node id");
      }
      att[a] = static_cast<NodeId>(id - 1);
      if (external != (att[a] < rank)) {
        return Status::Corruption("external marker inconsistent");
      }
    }
    uint64_t label = 0;
    GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(r, &label));
    if (label == 0 || label > num_labels) {
      return Status::Corruption("bad rhs label");
    }
    (void)is_nt;  // redundant with the label range; kept for the format
    rhs->AddEdge(static_cast<Label>(label - 1), std::move(att));
  }
  std::vector<NodeId> ext(rank);
  std::iota(ext.begin(), ext.end(), 0u);
  rhs->SetExternal(std::move(ext));
  *rank_out = static_cast<uint32_t>(rank);
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeGrammar(const SlhrGrammar& grammar,
                                   EncodeStats* stats) {
  const Alphabet& alpha = grammar.alphabet();
  const Hypergraph& start = grammar.start();
  BitWriter w;

  // ---- Header -------------------------------------------------------------
  w.PutBits(kMagic, 32);
  EliasDeltaEncode(grammar.num_terminals() + 1, &w);
  for (Label l = 0; l < grammar.num_terminals(); ++l) {
    EliasDeltaEncode(static_cast<uint64_t>(alpha.rank(l)), &w);
  }
  EliasDeltaEncode(grammar.num_rules() + 1, &w);
  EliasDeltaEncode(start.num_nodes() + 1, &w);
  size_t header_end = w.bit_size();

  // ---- Rules ----------------------------------------------------------------
  for (uint32_t j = 0; j < grammar.num_rules(); ++j) {
    EncodeRule(grammar, grammar.rhs_by_index(j), &w);
  }
  size_t rules_end = w.bit_size();

  // ---- Permutation dictionary for start-graph hyperedges -------------------
  // perm p of edge e: att(e)[i] = sorted(att(e))[p[i]].
  std::map<std::vector<uint8_t>, uint32_t> perm_ids;
  std::vector<std::vector<uint8_t>> perms;
  std::vector<uint32_t> edge_perm(start.num_edges(), 0);
  for (EdgeId i = 0; i < start.num_edges(); ++i) {
    const HEdge& e = start.edge(i);
    if (e.att.size() == 2) continue;
    std::vector<NodeId> sorted_att = e.att;
    std::sort(sorted_att.begin(), sorted_att.end());
    std::vector<uint8_t> perm(e.att.size());
    for (size_t a = 0; a < e.att.size(); ++a) {
      perm[a] = static_cast<uint8_t>(
          std::find(sorted_att.begin(), sorted_att.end(), e.att[a]) -
          sorted_att.begin());
    }
    auto [it, inserted] = perm_ids.emplace(perm, perms.size());
    if (inserted) perms.push_back(perm);
    edge_perm[i] = it->second;
  }
  EliasDeltaEncode(perms.size() + 1, &w);
  for (const auto& perm : perms) {
    EliasDeltaEncode(perm.size(), &w);
    for (uint8_t p : perm) EliasDeltaEncode(p + 1, &w);
  }
  const int perm_bits = IndexBits(perms.size());

  // ---- Start graph: one k^2-tree per label ---------------------------------
  // Edges must be sorted by (label, att); verify in debug builds.
#ifndef NDEBUG
  for (EdgeId i = 1; i < start.num_edges(); ++i) {
    const HEdge& a = start.edge(i - 1);
    const HEdge& b = start.edge(i);
    assert(a.label < b.label || (a.label == b.label && !(b.att < a.att)));
  }
#endif
  uint64_t encoded_dup_edges = 0;  // whole-grammar budget, see header
  (void)encoded_dup_edges;
  for (Label l = 0; l < alpha.size(); ++l) {
    // Collect this label's edges (contiguous in canonical order).
    std::vector<EdgeId> label_edges;
    for (EdgeId i = 0; i < start.num_edges(); ++i) {
      if (start.edge(i).label == l) label_edges.push_back(i);
    }
    w.PutBit(!label_edges.empty());
    if (label_edges.empty()) continue;
    if (alpha.rank(l) == 2) {
      // Adjacency matrix; parallel duplicates patched separately.
      std::vector<std::pair<uint32_t, uint32_t>> cells;
      cells.reserve(label_edges.size());
      for (EdgeId i : label_edges) {
        cells.push_back({start.edge(i).att[0], start.edge(i).att[1]});
      }
      std::vector<std::pair<uint32_t, uint32_t>> unique_cells = cells;
      std::sort(unique_cells.begin(), unique_cells.end());
      unique_cells.erase(
          std::unique(unique_cells.begin(), unique_cells.end()),
          unique_cells.end());
      K2Tree tree =
          K2Tree::Build(start.num_nodes(), start.num_nodes(), unique_cells);
      tree.Serialize(&w);
      // Multiplicity patches: (cell rank, extra count).
      std::map<std::pair<uint32_t, uint32_t>, uint32_t> mult;
      for (const auto& c : cells) ++mult[c];
      std::vector<std::pair<uint64_t, uint32_t>> dups;
      for (size_t ci = 0; ci < unique_cells.size(); ++ci) {
        uint32_t m = mult[unique_cells[ci]];
        if (m > 1) {
          dups.push_back({ci, m - 1});
          encoded_dup_edges += m - 1;
        }
      }
      // Format limit mirrored by the decoder's corruption guard
      // (kMaxDupEdges, global across label sections). Graphs past it
      // would serialize into undecodable files; Compress() rejects
      // them with a Status, so here it is an encoder invariant.
      assert(encoded_dup_edges <= kMaxDupEdges);
      EliasDeltaEncode(dups.size() + 1, &w);
      for (const auto& [cell_rank, extra] : dups) {
        EliasDeltaEncode(cell_rank + 1, &w);
        EliasDeltaEncode(extra, &w);
      }
    } else {
      // Incidence matrix: rows = nodes, cols = this label's edges.
      std::vector<std::pair<uint32_t, uint32_t>> cells;
      for (uint32_t col = 0; col < label_edges.size(); ++col) {
        for (NodeId v : start.edge(label_edges[col]).att) {
          cells.push_back({v, col});
        }
      }
      K2Tree tree = K2Tree::Build(
          start.num_nodes(), static_cast<uint32_t>(label_edges.size()),
          cells);
      tree.Serialize(&w);
      for (EdgeId i : label_edges) {
        w.PutBits(edge_perm[i], perm_bits);
      }
    }
  }

  if (stats != nullptr) {
    stats->total_bits = w.bit_size();
    stats->header_bits = header_end;
    stats->rule_bits = rules_end - header_end;
    stats->start_graph_bits = w.bit_size() - rules_end;
  }
  return w.TakeBytes();
}

Result<SlhrGrammar> DecodeGrammar(const std::vector<uint8_t>& bytes) {
  return DecodeGrammar(SpanOf(bytes));
}

Result<SlhrGrammar> DecodeGrammar(ByteSpan bytes) {
  BitReader r(bytes.data, bytes.size * 8);
  uint64_t magic = 0;
  GREPAIR_RETURN_IF_ERROR(r.ReadBits(32, &magic));
  if (magic != kMagic) return Status::Corruption("bad magic");

  uint64_t num_terminals = 0;
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &num_terminals));
  if (num_terminals == 0) return Status::Corruption("bad terminal count");
  --num_terminals;
  Alphabet terminals;
  for (uint64_t l = 0; l < num_terminals; ++l) {
    uint64_t rank = 0;
    GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &rank));
    if (rank == 0 || rank > 64) return Status::Corruption("bad label rank");
    terminals.Add("t" + std::to_string(l), static_cast<int>(rank));
  }
  uint64_t num_rules = 0, start_nodes = 0;
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &num_rules));
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &start_nodes));
  if (num_rules == 0 || start_nodes == 0) {
    return Status::Corruption("bad counts");
  }
  --num_rules;
  --start_nodes;
  // Untrusted counts that size an allocation are bounded by what the
  // remaining input could possibly encode (>= 1 bit per decoded item);
  // a corrupted Elias code can otherwise claim 2^50 rules and take the
  // process down with bad_alloc before any per-item decode fails.
  const uint64_t total_bits = bytes.size * 8;
  if (start_nodes > 0xFFFFFFFFull) {
    return Status::Corruption("start node count out of range");
  }
  if (num_rules > total_bits) {
    return Status::Corruption("rule count exceeds input size");
  }

  SlhrGrammar grammar(std::move(terminals),
                      Hypergraph(static_cast<uint32_t>(start_nodes)));

  // Rules: decode bodies first, then install (ranks come from the rhs).
  // The body vector grows per successfully decoded rule instead of
  // being sized from the untrusted count: a corrupt count within the
  // total_bits bound could still claim ~56 bytes of Hypergraph per
  // input BIT, a ~450x allocation amplification.
  const uint32_t num_labels =
      static_cast<uint32_t>(num_terminals + num_rules);
  std::vector<Hypergraph> rule_bodies;
  // Capped reserve: honest inputs skip the realloc churn on the hot
  // decode path, while a lying count can still only claim a bounded
  // up-front slab.
  rule_bodies.reserve(
      static_cast<size_t>(std::min<uint64_t>(num_rules, 4096)));
  for (uint64_t j = 0; j < num_rules; ++j) {
    uint32_t rank = 0;
    Hypergraph body;
    GREPAIR_RETURN_IF_ERROR(DecodeRule(num_labels, &r, &body, &rank));
    rule_bodies.push_back(std::move(body));
    Label nt = grammar.AddNonterminal(static_cast<int>(rank));
    (void)nt;
  }
  for (uint64_t j = 0; j < num_rules; ++j) {
    grammar.SetRule(grammar.NonterminalLabel(static_cast<uint32_t>(j)),
                    std::move(rule_bodies[j]));
  }

  // Permutation dictionary.
  uint64_t num_perms = 0;
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &num_perms));
  if (num_perms == 0) return Status::Corruption("bad perm count");
  --num_perms;
  if (num_perms > total_bits) {
    return Status::Corruption("perm count exceeds input size");
  }
  // Grown per decoded entry, not sized up front (see rule_bodies),
  // with the same bounded reserve to avoid realloc churn.
  std::vector<std::vector<uint8_t>> perms;
  perms.reserve(static_cast<size_t>(std::min<uint64_t>(num_perms, 4096)));
  for (uint64_t i = 0; i < num_perms; ++i) {
    uint64_t len = 0;
    GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &len));
    if (len == 0 || len > 64) return Status::Corruption("bad perm length");
    std::vector<uint8_t> perm(len);
    for (auto& p : perm) {
      uint64_t v = 0;
      GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &v));
      if (v == 0 || v > len) return Status::Corruption("bad perm entry");
      p = static_cast<uint8_t>(v - 1);
    }
    perms.push_back(std::move(perm));
  }
  const int perm_bits = IndexBits(perms.size());

  // Start graph label sections.
  Hypergraph* start = grammar.mutable_start();
  const Alphabet& alpha = grammar.alphabet();
  uint64_t decoded_dup_edges = 0;  // whole-grammar budget, see header
  for (Label l = 0; l < alpha.size(); ++l) {
    bool present = false;
    GREPAIR_RETURN_IF_ERROR(r.ReadBit(&present));
    if (!present) continue;
    auto tree = K2Tree::Deserialize(&r);
    if (!tree.ok()) return tree.status();
    if (alpha.rank(l) == 2) {
      auto cells = tree.value().AllCells();
      uint64_t num_dups = 0;
      GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &num_dups));
      if (num_dups == 0) return Status::Corruption("bad dup count");
      --num_dups;
      std::vector<uint32_t> multiplicity(cells.size(), 1);
      // Distinct cells are input-proportional (each costs >= 1 tree
      // bit), so only the duplicate count needs an absolute cap: dup
      // entries amplify by design (one Elias code can claim many
      // parallel edges), and a crafted 60-byte file aiming at parser
      // OOM must die here instead of in AddEdge. The budget
      // (kMaxDupEdges) is global across label sections — per-section
      // budgets could be evaded by declaring many labels.
      for (uint64_t d = 0; d < num_dups; ++d) {
        uint64_t cell_rank = 0, extra = 0;
        GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &cell_rank));
        GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &extra));
        if (cell_rank == 0 || cell_rank > cells.size()) {
          return Status::Corruption("bad dup cell");
        }
        // Caps materialized duplicates and keeps both this sum and
        // the uint32 multiplicity accumulator from wrapping on
        // corrupt input; checked as `extra > budget` because a near-
        // 2^64 extra would wrap `decoded_dup_edges += extra` back
        // under the cap (defined unsigned arithmetic, invisible to
        // UBSan).
        if (extra > kMaxDupEdges - decoded_dup_edges) {
          return Status::Corruption("edge multiplicity overflow");
        }
        decoded_dup_edges += extra;
        multiplicity[cell_rank - 1] += static_cast<uint32_t>(extra);
      }
      for (size_t ci = 0; ci < cells.size(); ++ci) {
        for (uint32_t m = 0; m < multiplicity[ci]; ++m) {
          start->AddEdge(l, {cells[ci].first, cells[ci].second});
        }
      }
    } else {
      // Incidence: rebuild per-column node sets, then apply perms.
      // Every edge column holds >= 1 incidence cell, so the claimed
      // column count is bounded by the (input-bounded) cell count —
      // sizing `cols` straight from the header would amplify each
      // input bit into a 24-byte empty vector.
      uint32_t num_edges = tree.value().num_cols();
      auto incidence_cells = tree.value().AllCells();
      if (num_edges > incidence_cells.size()) {
        return Status::Corruption("hyperedge count exceeds incidence cells");
      }
      std::vector<std::vector<NodeId>> cols(num_edges);
      for (const auto& cell : incidence_cells) {
        if (cell.second >= num_edges) {
          return Status::Corruption("incidence cell column out of range");
        }
        cols[cell.second].push_back(cell.first);
      }
      for (uint32_t col = 0; col < num_edges; ++col) {
        uint64_t perm_idx = 0;
        GREPAIR_RETURN_IF_ERROR(r.ReadBits(perm_bits, &perm_idx));
        if (perms.empty()) {
          return Status::Corruption("hyperedge without permutations");
        }
        if (perm_idx >= perms.size()) {
          return Status::Corruption("bad perm index");
        }
        const auto& perm = perms[perm_idx];
        std::vector<NodeId>& sorted_att = cols[col];  // rows are sorted
        if (perm.size() != sorted_att.size()) {
          return Status::Corruption("perm length mismatch");
        }
        std::vector<NodeId> att(sorted_att.size());
        for (size_t a = 0; a < att.size(); ++a) {
          att[a] = sorted_att[perm[a]];
        }
        start->AddEdge(l, std::move(att));
      }
    }
  }

  // The edge insertion above goes label by label in ascending label
  // order with ascending attachment within each label: canonical order.
  GREPAIR_RETURN_IF_ERROR(grammar.Validate());
  return grammar;
}

std::vector<uint8_t> EncodeNodeMapping(const SlhrGrammar& grammar,
                                       const NodeMapping& mapping) {
  BitWriter w;
  EliasDeltaEncode(mapping.start_origs.size() + 1, &w);
  for (NodeId v : mapping.start_origs) EliasDeltaEncode(v + 1, &w);
  // Record trees flattened in derivation order; the structure (how many
  // internals / children each record has) is implied by the grammar.
  std::vector<const DerivationRecord*> stack;
  const Hypergraph& start = grammar.start();
  for (EdgeId se = 0; se < start.num_edges(); ++se) {
    if (!grammar.IsNonterminal(start.edge(se).label)) continue;
    stack.push_back(&mapping.edge_records[se]);
    while (!stack.empty()) {
      const DerivationRecord* rec = stack.back();
      stack.pop_back();
      for (NodeId v : rec->internal_origs) EliasDeltaEncode(v + 1, &w);
      for (size_t c = rec->children.size(); c-- > 0;) {
        stack.push_back(&rec->children[c]);
      }
    }
  }
  return w.TakeBytes();
}

Result<NodeMapping> DecodeNodeMapping(const SlhrGrammar& grammar,
                                      const std::vector<uint8_t>& bytes) {
  return DecodeNodeMapping(grammar, SpanOf(bytes));
}

Result<NodeMapping> DecodeNodeMapping(const SlhrGrammar& grammar,
                                      ByteSpan bytes) {
  BitReader r(bytes.data, bytes.size * 8);
  uint64_t num_start = 0;
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &num_start));
  if (num_start == 0) return Status::Corruption("bad mapping header");
  --num_start;
  if (num_start != grammar.start().num_nodes()) {
    return Status::Corruption("mapping does not match grammar");
  }
  NodeMapping mapping;
  mapping.start_origs.resize(num_start);
  for (auto& v : mapping.start_origs) {
    uint64_t raw = 0;
    GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &raw));
    if (raw == 0) return Status::Corruption("bad origin id");
    v = static_cast<NodeId>(raw - 1);
  }
  // Rebuild the record trees by walking the grammar structure in the
  // same derivation order the encoder used.
  mapping.edge_records.resize(grammar.start().num_edges());
  struct Frame {
    DerivationRecord* rec;
    Label label;
  };
  const Hypergraph& start = grammar.start();
  for (EdgeId se = 0; se < start.num_edges(); ++se) {
    if (!grammar.IsNonterminal(start.edge(se).label)) continue;
    std::vector<Frame> stack{{&mapping.edge_records[se],
                              start.edge(se).label}};
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      const Hypergraph& rhs = grammar.rhs(f.label);
      size_t internal = rhs.num_nodes() - rhs.ext().size();
      f.rec->internal_origs.resize(internal);
      for (auto& v : f.rec->internal_origs) {
        uint64_t raw = 0;
        GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &raw));
        if (raw == 0) return Status::Corruption("bad origin id");
        v = static_cast<NodeId>(raw - 1);
      }
      std::vector<Label> child_labels;
      for (const auto& e : rhs.edges()) {
        if (grammar.IsNonterminal(e.label)) child_labels.push_back(e.label);
      }
      f.rec->children.resize(child_labels.size());
      for (size_t c = child_labels.size(); c-- > 0;) {
        stack.push_back({&f.rec->children[c], child_labels[c]});
      }
    }
  }
  GREPAIR_RETURN_IF_ERROR(ValidateMapping(grammar, mapping));
  return mapping;
}

double BitsPerEdge(size_t encoded_bytes, uint64_t num_edges) {
  if (num_edges == 0) return 0.0;
  return static_cast<double>(encoded_bytes) * 8.0 /
         static_cast<double>(num_edges);
}

}  // namespace grepair
