// Binary grammar format (Section III-C2).
//
// The output has four sections:
//   1. header: alphabet ranks (terminals and nonterminals) and |V_S|,
//   2. rules: each production as the paper's bit format — edge count,
//      then per edge a terminal/nonterminal marker bit, the attachment
//      count, per attachment an external-flag bit and a delta-coded
//      node id, and finally the delta-coded label,
//   3. a permutation dictionary for hyperedge attachments (the paper
//      stores one permutation per hyperedge with fixed-width indices
//      into the set of distinct permutations; the dictionary itself is
//      delta-coded here, a detail the paper leaves open),
//   4. start graph: per label, a k^2-tree of the label's adjacency
//      matrix (rank-2 labels) or node x edge incidence matrix (other
//      ranks, followed by the per-edge permutation indices). A
//      multiplicity patch list after each adjacency tree preserves
//      parallel nonterminal edges with identical attachments, which a
//      0/1 matrix cannot represent (also left open by the paper).
//
// The start graph's edges are stored by (label, attachment) order, so
// encoding canonicalizes the start-graph edge order; Compress already
// outputs this order. Decoding reproduces the grammar exactly (labels,
// rules, start graph and therefore val(G)).

#ifndef GREPAIR_ENCODING_GRAMMAR_CODER_H_
#define GREPAIR_ENCODING_GRAMMAR_CODER_H_

#include <cstdint>
#include <vector>

#include "src/grammar/derivation.h"
#include "src/grammar/grammar.h"
#include "src/util/byte_io.h"
#include "src/util/status.h"

namespace grepair {

/// \brief Per-section bit accounting (the paper observes the start
/// graph dominates with > 90% of the output on most datasets).
struct EncodeStats {
  size_t total_bits = 0;
  size_t header_bits = 0;
  size_t rule_bits = 0;
  size_t start_graph_bits = 0;
};

/// \brief Format capacity limit: total duplicate parallel rank-2
/// edges per encoded grammar (summed over all label sections, so a
/// crafted file cannot evade it by spreading duplicates across many
/// sections). DecodeGrammar rejects files beyond it as corrupt (the
/// multiplicity field is how crafted input requests parser OOM),
/// Compress() returns InvalidArgument for graphs that would exceed
/// it, and EncodeGrammar asserts it as an invariant.
inline constexpr uint64_t kMaxDupEdges = 1ull << 24;

/// \brief Serializes the grammar to the paper's bit format.
///
/// The grammar must be valid (SlhrGrammar::Validate) and its start
/// graph must be in canonical edge order; see kMaxDupEdges for the
/// parallel-edge capacity limit.
std::vector<uint8_t> EncodeGrammar(const SlhrGrammar& grammar,
                                   EncodeStats* stats = nullptr);

/// \brief Parses a grammar from EncodeGrammar's output. Label names are
/// synthetic (they are not serialized). Treats `bytes` as untrusted:
/// counts that size allocations are bounded by the input size and the
/// capacity limits above, so corrupt or crafted input yields a clean
/// Status instead of unbounded allocation.
Result<SlhrGrammar> DecodeGrammar(const std::vector<uint8_t>& bytes);

/// \brief Zero-copy overload: decodes straight out of a borrowed view
/// (an mmap'd file, a shard payload inside a mapped container). The
/// bytes are only read during the call; the returned grammar owns all
/// of its state.
Result<SlhrGrammar> DecodeGrammar(ByteSpan bytes);

/// \brief Convenience: bits-per-edge of an encoded grammar for a graph
/// with `num_edges` edges (the paper's compression metric).
double BitsPerEdge(size_t encoded_bytes, uint64_t num_edges);

/// \brief Serializes the psi' node mapping (original-ID record trees).
///
/// The paper stores this mapping out of band ("we do not include the
/// space required to retain the original node IDs"); this encoder makes
/// that concrete: delta-coded origin lists laid out in derivation
/// order, so decoding needs the grammar it belongs to.
std::vector<uint8_t> EncodeNodeMapping(const SlhrGrammar& grammar,
                                       const NodeMapping& mapping);

/// \brief Inverse of EncodeNodeMapping; `grammar` must be the grammar
/// the mapping was encoded against (validated structurally).
Result<NodeMapping> DecodeNodeMapping(const SlhrGrammar& grammar,
                                      const std::vector<uint8_t>& bytes);

/// \brief Zero-copy overload of DecodeNodeMapping (see DecodeGrammar).
Result<NodeMapping> DecodeNodeMapping(const SlhrGrammar& grammar,
                                      ByteSpan bytes);

}  // namespace grepair

#endif  // GREPAIR_ENCODING_GRAMMAR_CODER_H_
