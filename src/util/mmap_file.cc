#include "src/util/mmap_file.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(_WIN32)
#define GREPAIR_HAVE_MMAP 0
#else
#define GREPAIR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace grepair {

namespace {

std::string ErrnoText() {
  return std::string(std::strerror(errno));
}

}  // namespace

namespace {

#if GREPAIR_HAVE_MMAP
size_t PageSize() {
  long page = sysconf(_SC_PAGESIZE);
  return page > 0 ? static_cast<size_t>(page) : 4096;
}
#endif

}  // namespace

size_t MmapFile::AdviseWillNeed(size_t offset, size_t length) const {
#if GREPAIR_HAVE_MMAP
  if (!mapped_ || data_ == nullptr || length == 0 || offset >= size_) {
    return 0;
  }
  length = std::min(length, size_ - offset);
  // madvise wants a page-aligned start; widen the range to page
  // boundaries (the mapping itself is page-aligned, so aligning down
  // from offset stays inside it).
  size_t page = PageSize();
  size_t begin = offset - offset % page;
  size_t end = std::min(size_, offset + length);
  size_t span = end - begin;
  const char* base = static_cast<const char*>(data_) + begin;
  if (madvise(const_cast<char*>(base), span, MADV_WILLNEED) != 0) {
    return 0;
  }
  return span;
#else
  (void)offset;
  (void)length;
  return 0;
#endif
}

size_t MmapFile::AdviseSequential() const {
#if GREPAIR_HAVE_MMAP
  if (!mapped_ || data_ == nullptr || size_ == 0) return 0;
  if (madvise(const_cast<void*>(data_), size_, MADV_SEQUENTIAL) != 0) {
    return 0;
  }
  return size_;
#else
  return 0;
#endif
}

size_t MmapFile::AdviseNormal() const {
#if GREPAIR_HAVE_MMAP
  if (!mapped_ || data_ == nullptr || size_ == 0) return 0;
  if (madvise(const_cast<void*>(data_), size_, MADV_NORMAL) != 0) {
    return 0;
  }
  return size_;
#else
  return 0;
#endif
}

namespace {

#if GREPAIR_HAVE_MMAP
// Shared page-alignment for the lock/unlock pair: both must cover the
// exact same range or an munlock leaves stray locked pages behind.
bool AlignedRange(const void* data, size_t size, size_t offset,
                  size_t length, void** begin, size_t* span) {
  if (data == nullptr || length == 0 || offset >= size) return false;
  length = std::min(length, size - offset);
  size_t page = PageSize();
  size_t start = offset - offset % page;
  size_t end = std::min(size, offset + length);
  *begin = const_cast<char*>(static_cast<const char*>(data) + start);
  *span = end - start;
  return true;
}
#endif

}  // namespace

size_t MmapFile::Pin(size_t offset, size_t length) const {
#if GREPAIR_HAVE_MMAP
  void* begin = nullptr;
  size_t span = 0;
  if (!mapped_ ||
      !AlignedRange(data_, size_, offset, length, &begin, &span)) {
    return 0;
  }
  return mlock(begin, span) == 0 ? span : 0;
#else
  (void)offset;
  (void)length;
  return 0;
#endif
}

size_t MmapFile::Unpin(size_t offset, size_t length) const {
#if GREPAIR_HAVE_MMAP
  void* begin = nullptr;
  size_t span = 0;
  if (!mapped_ ||
      !AlignedRange(data_, size_, offset, length, &begin, &span)) {
    return 0;
  }
  return munlock(begin, span) == 0 ? span : 0;
#else
  (void)offset;
  (void)length;
  return 0;
#endif
}

namespace {

#if GREPAIR_HAVE_MMAP
// Unlike the MmapFile methods (whose base is page-aligned by mmap),
// an arbitrary span's address must itself be aligned down; the same
// widening is applied by Pin and Unpin so the two always cover the
// identical page range.
void AlignedSpan(ByteSpan span, void** begin, size_t* bytes) {
  size_t page = PageSize();
  uintptr_t addr = reinterpret_cast<uintptr_t>(span.data);
  uintptr_t start = addr - addr % page;
  *begin = reinterpret_cast<void*>(start);
  *bytes = static_cast<size_t>(addr - start) + span.size;
}
#endif

}  // namespace

size_t PinBytes(ByteSpan span) {
#if GREPAIR_HAVE_MMAP
  if (span.data == nullptr || span.size == 0) return 0;
  void* begin = nullptr;
  size_t bytes = 0;
  AlignedSpan(span, &begin, &bytes);
  return mlock(begin, bytes) == 0 ? bytes : 0;
#else
  (void)span;
  return 0;
#endif
}

size_t UnpinBytes(ByteSpan span) {
#if GREPAIR_HAVE_MMAP
  if (span.data == nullptr || span.size == 0) return 0;
  void* begin = nullptr;
  size_t bytes = 0;
  AlignedSpan(span, &begin, &bytes);
  return munlock(begin, bytes) == 0 ? bytes : 0;
#else
  (void)span;
  return 0;
#endif
}

MmapFile::~MmapFile() {
#if GREPAIR_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    munmap(const_cast<void*>(data_), size_);
  }
#endif
}

Result<std::shared_ptr<MmapFile>> MmapFile::Open(const std::string& path) {
#if GREPAIR_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open " + path + ": " + ErrnoText());
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    Status status =
        Status::NotFound("cannot stat " + path + ": " + ErrnoText());
    ::close(fd);
    return status;
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument(path + " is not a regular file");
  }
  auto file = std::shared_ptr<MmapFile>(new MmapFile());
  file->path_ = path;
  file->size_ = static_cast<size_t>(st.st_size);
  if (file->size_ == 0) {
    ::close(fd);
    return file;  // empty file: empty span, nothing to map
  }
  void* map = mmap(nullptr, file->size_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map != MAP_FAILED) {
    ::close(fd);  // the mapping outlives the descriptor
    file->data_ = map;
    file->mapped_ = true;
    return file;
  }
  // mmap refused (unusual filesystem, resource limits): fall back to a
  // heap read so callers keep the same span contract.
  file->fallback_.resize(file->size_);
  size_t off = 0;
  while (off < file->size_) {
    ssize_t n = pread(fd, file->fallback_.data() + off, file->size_ - off,
                      static_cast<off_t>(off));
    if (n <= 0) {
      Status status = Status::Corruption(
          "short read of " + path + " at offset " + std::to_string(off) +
          ": " + (n < 0 ? ErrnoText() : "unexpected EOF"));
      ::close(fd);
      return status;
    }
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  file->data_ = file->fallback_.data();
  return file;
#else
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  auto file = std::shared_ptr<MmapFile>(new MmapFile());
  file->path_ = path;
  file->fallback_ = std::move(bytes).ValueOrDie();
  file->size_ = file->fallback_.size();
  file->data_ = file->fallback_.data();
  return file;
#endif
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path + ": " + ErrnoText());
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) {
    return Status::Corruption("read error in " + path + " at offset " +
                              std::to_string(bytes.size()));
  }
  return bytes;
}

Status WriteFileBytesAtomic(const std::string& path, ByteSpan bytes) {
  // The counter keeps concurrent writers to the same destination from
  // clobbering each other's temporaries; rename serializes who wins.
  static std::atomic<uint64_t> tmp_counter{0};
  std::string tmp =
      path + ".tmp" + std::to_string(tmp_counter.fetch_add(1));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot write " + tmp + ": " +
                                   ErrnoText());
  }
  // bytes.data may be null for an empty span; fwrite's nonnull
  // contract makes that UB even with size 0.
  size_t written =
      bytes.size == 0 ? 0 : std::fwrite(bytes.data, 1, bytes.size, f);
  bool bad = written != bytes.size;
  bad = std::fflush(f) != 0 || bad;
  bad = std::fclose(f) != 0 || bad;
  if (bad) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp + " (" +
                            std::to_string(written) + " of " +
                            std::to_string(bytes.size) + " bytes)");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status status = Status::Internal("cannot rename " + tmp + " to " +
                                     path + ": " + ErrnoText());
    std::remove(tmp.c_str());
    return status;
  }
  return Status::OK();
}

Status WriteFileBytes(const std::string& path,
                      const std::vector<uint8_t>& bytes) {
  return WriteFileBytesAtomic(path, SpanOf(bytes));
}

}  // namespace grepair
