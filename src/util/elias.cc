#include "src/util/elias.h"

#include <cassert>

namespace grepair {

int BitLength(uint64_t n) {
  assert(n >= 1);
  return 64 - __builtin_clzll(n);
}

void EliasGammaEncode(uint64_t n, BitWriter* writer) {
  assert(n >= 1);
  int len = BitLength(n);
  for (int i = 0; i < len - 1; ++i) writer->PutBit(false);
  writer->PutBits(n, len);
}

void EliasDeltaEncode(uint64_t n, BitWriter* writer) {
  assert(n >= 1);
  int len = BitLength(n);
  EliasGammaEncode(static_cast<uint64_t>(len), writer);
  // Binary of n without the leading 1-bit.
  writer->PutBits(n & ~(1ull << (len - 1)), len - 1);
}

Status EliasGammaDecode(BitReader* reader, uint64_t* n) {
  int zeros = 0;
  bool bit = false;
  for (;;) {
    GREPAIR_RETURN_IF_ERROR(reader->ReadBit(&bit));
    if (bit) break;
    if (++zeros > 63) return Status::Corruption("gamma code too long");
  }
  uint64_t rest = 0;
  GREPAIR_RETURN_IF_ERROR(reader->ReadBits(zeros, &rest));
  *n = (1ull << zeros) | rest;
  return Status::OK();
}

Status EliasDeltaDecode(BitReader* reader, uint64_t* n) {
  uint64_t len = 0;
  GREPAIR_RETURN_IF_ERROR(EliasGammaDecode(reader, &len));
  if (len == 0 || len > 64) return Status::Corruption("bad delta length");
  uint64_t rest = 0;
  GREPAIR_RETURN_IF_ERROR(reader->ReadBits(static_cast<int>(len - 1), &rest));
  *n = (len == 64 ? 0ull : (1ull << (len - 1))) | rest;
  if (len == 64) *n |= 1ull << 63;
  return Status::OK();
}

int EliasGammaLength(uint64_t n) { return 2 * BitLength(n) - 1; }

int EliasDeltaLength(uint64_t n) {
  int len = BitLength(n);
  return EliasGammaLength(static_cast<uint64_t>(len)) + len - 1;
}

}  // namespace grepair
