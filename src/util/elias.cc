#include "src/util/elias.h"

namespace grepair {

namespace {

// Test-only dispatch to the scalar oracles (see header). Plain bool:
// only ever written by single-threaded test setup, read-only in
// production (default false), so there is no racing write to order.
bool g_decode_scalar_for_test = false;

}  // namespace

void SetEliasDecodeScalarForTest(bool scalar) {
  g_decode_scalar_for_test = scalar;
}

bool EliasDecodeScalarForTest() { return g_decode_scalar_for_test; }

int BitLength(uint64_t n) {
  // clz(0) is undefined; 0 has no binary digits worth counting.
  if (n == 0) return 0;
  return 64 - __builtin_clzll(n);
}

void EliasGammaEncode(uint64_t n, BitWriter* writer) {
  if (n == 0) return;  // fail closed: 0 has no gamma code (see header)
  int len = BitLength(n);
  for (int i = 0; i < len - 1; ++i) writer->PutBit(false);
  writer->PutBits(n, len);
}

void EliasDeltaEncode(uint64_t n, BitWriter* writer) {
  if (n == 0) return;  // fail closed: 0 has no delta code (see header)
  int len = BitLength(n);
  EliasGammaEncode(static_cast<uint64_t>(len), writer);
  // Binary of n without the leading 1-bit.
  writer->PutBits(n & ~(1ull << (len - 1)), len - 1);
}

Status EliasGammaDecodeScalar(BitReader* reader, uint64_t* n) {
  int zeros = 0;
  bool bit = false;
  for (;;) {
    GREPAIR_RETURN_IF_ERROR(reader->ReadBit(&bit));
    if (bit) break;
    if (++zeros > 63) return Status::Corruption("gamma code too long");
  }
  uint64_t rest = 0;
  GREPAIR_RETURN_IF_ERROR(reader->ReadBitsScalar(zeros, &rest));
  *n = (1ull << zeros) | rest;
  return Status::OK();
}

Status EliasDeltaDecodeScalar(BitReader* reader, uint64_t* n) {
  uint64_t len = 0;
  GREPAIR_RETURN_IF_ERROR(EliasGammaDecodeScalar(reader, &len));
  if (len == 0 || len > 64) return Status::Corruption("bad delta length");
  uint64_t rest = 0;
  GREPAIR_RETURN_IF_ERROR(
      reader->ReadBitsScalar(static_cast<int>(len - 1), &rest));
  *n = (len == 64 ? 0ull : (1ull << (len - 1))) | rest;
  if (len == 64) *n |= 1ull << 63;
  return Status::OK();
}

Status EliasGammaDecode(BitReader* reader, uint64_t* n) {
  if (g_decode_scalar_for_test) return EliasGammaDecodeScalar(reader, n);
  const uint64_t w = reader->Peek64();
  if (w == 0) {
    // No stop bit inside the window: either 64+ zeros lie ahead (no
    // gamma code is that long — the scalar oracle reports corruption
    // on the 64th zero) or only zero bits remain before the end. The
    // oracle consumes those zero bits before failing, so the cursor
    // must advance the same way here.
    const size_t avail = reader->BitsAvailable();
    if (avail >= 64) {
      reader->Consume(64);
      return Status::Corruption("gamma code too long");
    }
    reader->Consume(avail);
    return Status::OutOfRange("bit stream exhausted");
  }
  const int zeros = __builtin_clzll(w);  // w != 0, so 0..63
  const size_t total = 2 * static_cast<size_t>(zeros) + 1;
  if (total <= 64 && reader->HasBits(total)) {
    // Whole code inside the window: bits [zeros, 2*zeros] are
    // 1 followed by the mantissa, i.e. the value itself.
    *n = w >> (64 - total);
    reader->Consume(total);
    return Status::OK();
  }
  // Code straddles the window or is truncated: the unary prefix and
  // stop bit are inside it (the masked window put the stop bit before
  // the stream end), the mantissa read is bounds-checked.
  reader->Consume(static_cast<size_t>(zeros) + 1);
  uint64_t rest = 0;
  GREPAIR_RETURN_IF_ERROR(reader->ReadBits(zeros, &rest));
  *n = (1ull << zeros) | rest;
  return Status::OK();
}

Status EliasDeltaDecode(BitReader* reader, uint64_t* n) {
  if (g_decode_scalar_for_test) return EliasDeltaDecodeScalar(reader, n);
  // Fast path: gamma(len) and the mantissa both inside one window.
  // gamma(len) is at most 13 bits (len <= 64), so this covers every
  // delta code up to ~52 mantissa bits; larger values and all
  // truncation cases take the general path below.
  const uint64_t w = reader->Peek64();
  if (w != 0) {
    const int zeros = __builtin_clzll(w);
    const size_t gamma_bits = 2 * static_cast<size_t>(zeros) + 1;
    if (gamma_bits <= 64) {
      const uint64_t len = w >> (64 - gamma_bits);
      const size_t total = gamma_bits + static_cast<size_t>(len) - 1;
      if (len >= 1 && len <= 64 && total <= 64 && reader->HasBits(total)) {
        const uint64_t rest =
            len == 1 ? 0
                     : (w >> (64 - total)) & ((1ull << (len - 1)) - 1);
        *n = (1ull << (len - 1)) | rest;
        reader->Consume(total);
        return Status::OK();
      }
    }
  }
  uint64_t len = 0;
  GREPAIR_RETURN_IF_ERROR(EliasGammaDecode(reader, &len));
  if (len == 0 || len > 64) return Status::Corruption("bad delta length");
  uint64_t rest = 0;
  GREPAIR_RETURN_IF_ERROR(reader->ReadBits(static_cast<int>(len - 1), &rest));
  *n = (len == 64 ? 0ull : (1ull << (len - 1))) | rest;
  if (len == 64) *n |= 1ull << 63;
  return Status::OK();
}

int EliasGammaLength(uint64_t n) {
  if (n == 0) return 0;  // no code exists; mirror the encoder's no-op
  return 2 * BitLength(n) - 1;
}

int EliasDeltaLength(uint64_t n) {
  if (n == 0) return 0;  // no code exists; mirror the encoder's no-op
  int len = BitLength(n);
  return EliasGammaLength(static_cast<uint64_t>(len)) + len - 1;
}

}  // namespace grepair
