// Bit-granular output/input streams.
//
// The grammar serialization format of the paper (Section III-C2) is
// bit-packed: rules are sequences of Elias delta codes interleaved with
// single marker bits, and k^2-trees are raw bit arrays. BitWriter and
// BitReader provide the substrate; Elias codes live in elias.h.

#ifndef GREPAIR_UTIL_BIT_STREAM_H_
#define GREPAIR_UTIL_BIT_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/status.h"

namespace grepair {

/// \brief Append-only bit sink backed by a byte buffer.
///
/// Bits are appended MSB-first within each byte, so the serialized form
/// is byte-order independent and the i-th appended bit is bit
/// `7 - (i % 8)` of byte `i / 8`.
class BitWriter {
 public:
  BitWriter() = default;

  /// \brief Appends a single bit (any nonzero value means 1).
  void PutBit(bool bit) {
    if (bit_pos_ == 0) buffer_.push_back(0);
    if (bit) buffer_.back() |= static_cast<uint8_t>(1u << (7 - bit_pos_));
    bit_pos_ = (bit_pos_ + 1) & 7;
  }

  /// \brief Appends the lowest `num_bits` bits of `value`, MSB first.
  ///
  /// `num_bits` may be 0 (no-op) up to 64.
  void PutBits(uint64_t value, int num_bits) {
    for (int i = num_bits - 1; i >= 0; --i) {
      PutBit((value >> i) & 1u);
    }
  }

  /// \brief Number of bits appended so far.
  size_t bit_size() const {
    return buffer_.size() * 8 - (bit_pos_ == 0 ? 0 : (8 - bit_pos_));
  }

  /// \brief Number of bytes needed to hold the bits (last byte zero-padded).
  size_t byte_size() const { return buffer_.size(); }

  /// \brief Returns the accumulated bytes; the writer remains usable.
  const std::vector<uint8_t>& bytes() const { return buffer_; }

  /// \brief Moves the buffer out and resets the writer.
  std::vector<uint8_t> TakeBytes() {
    bit_pos_ = 0;
    return std::move(buffer_);
  }

  /// \brief Pads with zero bits to the next byte boundary.
  void AlignToByte() {
    while (bit_pos_ != 0) PutBit(false);
  }

 private:
  std::vector<uint8_t> buffer_;
  int bit_pos_ = 0;  // next free bit index within the last byte, 0..7
};

/// \brief Sequential reader over a bit buffer produced by BitWriter.
class BitReader {
 public:
  /// \brief Reads from `data` without copying; `data` must outlive the
  /// reader. `bit_count` bounds the readable bits (defaults to all).
  explicit BitReader(const std::vector<uint8_t>& data)
      : data_(data.data()), bit_count_(data.size() * 8) {}
  BitReader(const uint8_t* data, size_t bit_count)
      : data_(data), bit_count_(bit_count) {}

  /// \brief True if at least `n` more bits can be read.
  bool HasBits(size_t n) const { return pos_ + n <= bit_count_; }

  /// \brief Current read position in bits.
  size_t position() const { return pos_; }

  /// \brief Reads one bit into `*bit`.
  Status ReadBit(bool* bit) {
    if (!HasBits(1)) return Status::OutOfRange("bit stream exhausted");
    *bit = (data_[pos_ >> 3] >> (7 - (pos_ & 7))) & 1u;
    ++pos_;
    return Status::OK();
  }

  /// \brief Reads `num_bits` (0..64) into `*value`, MSB first.
  Status ReadBits(int num_bits, uint64_t* value) {
    if (!HasBits(static_cast<size_t>(num_bits))) {
      return Status::OutOfRange("bit stream exhausted");
    }
    uint64_t v = 0;
    for (int i = 0; i < num_bits; ++i) {
      v = (v << 1) | ((data_[pos_ >> 3] >> (7 - (pos_ & 7))) & 1u);
      ++pos_;
    }
    *value = v;
    return Status::OK();
  }

  /// \brief Skips forward to the next byte boundary.
  void AlignToByte() { pos_ = (pos_ + 7) & ~static_cast<size_t>(7); }

 private:
  const uint8_t* data_;
  size_t bit_count_;
  size_t pos_ = 0;
};

}  // namespace grepair

#endif  // GREPAIR_UTIL_BIT_STREAM_H_
