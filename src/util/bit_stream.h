// Bit-granular output/input streams.
//
// The grammar serialization format of the paper (Section III-C2) is
// bit-packed: rules are sequences of Elias delta codes interleaved with
// single marker bits, and k^2-trees are raw bit arrays. BitWriter and
// BitReader provide the substrate; Elias codes live in elias.h.

#ifndef GREPAIR_UTIL_BIT_STREAM_H_
#define GREPAIR_UTIL_BIT_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/util/status.h"

namespace grepair {

/// \brief Append-only bit sink backed by a byte buffer.
///
/// Bits are appended MSB-first within each byte, so the serialized form
/// is byte-order independent and the i-th appended bit is bit
/// `7 - (i % 8)` of byte `i / 8`.
class BitWriter {
 public:
  BitWriter() = default;

  /// \brief Appends a single bit (any nonzero value means 1).
  void PutBit(bool bit) {
    if (bit_pos_ == 0) buffer_.push_back(0);
    if (bit) buffer_.back() |= static_cast<uint8_t>(1u << (7 - bit_pos_));
    bit_pos_ = (bit_pos_ + 1) & 7;
  }

  /// \brief Appends the lowest `num_bits` bits of `value`, MSB first.
  ///
  /// `num_bits` may be 0 (no-op) up to 64.
  void PutBits(uint64_t value, int num_bits) {
    for (int i = num_bits - 1; i >= 0; --i) {
      PutBit((value >> i) & 1u);
    }
  }

  /// \brief Number of bits appended so far.
  size_t bit_size() const {
    return buffer_.size() * 8 - (bit_pos_ == 0 ? 0 : (8 - bit_pos_));
  }

  /// \brief Number of bytes needed to hold the bits (last byte zero-padded).
  size_t byte_size() const { return buffer_.size(); }

  /// \brief Returns the accumulated bytes; the writer remains usable.
  const std::vector<uint8_t>& bytes() const { return buffer_; }

  /// \brief Moves the buffer out and resets the writer.
  std::vector<uint8_t> TakeBytes() {
    bit_pos_ = 0;
    return std::move(buffer_);
  }

  /// \brief Pads with zero bits to the next byte boundary.
  void AlignToByte() {
    while (bit_pos_ != 0) PutBit(false);
  }

 private:
  std::vector<uint8_t> buffer_;
  int bit_pos_ = 0;  // next free bit index within the last byte, 0..7
};

/// \brief Sequential reader over a bit buffer produced by BitWriter.
///
/// Two read disciplines share one cursor:
///   * the checked scalar calls (ReadBit / ReadBits), and
///   * the word-at-a-time lookahead pair Peek64 / Consume that the
///     branchless Elias decoders in elias.cc are built on: Peek64
///     surfaces the next 64 bits MSB-aligned (zero-padded past the
///     stream end) so a single __builtin_clzll replaces a per-bit
///     unary-prefix loop, and Consume advances past however many bits
///     the caller actually claimed.
class BitReader {
 public:
  /// \brief Reads from `data` without copying; `data` must outlive the
  /// reader. `bit_count` bounds the readable bits (defaults to all).
  explicit BitReader(const std::vector<uint8_t>& data)
      : data_(data.data()), bit_count_(data.size() * 8) {}
  BitReader(const uint8_t* data, size_t bit_count)
      : data_(data), bit_count_(bit_count) {}

  /// \brief True if at least `n` more bits can be read.
  bool HasBits(size_t n) const { return pos_ + n <= bit_count_; }

  /// \brief Current read position in bits.
  size_t position() const { return pos_; }

  /// \brief Bits left before the stream ends (0 when past the end,
  /// which AlignToByte can legitimately produce on a ragged tail).
  size_t BitsAvailable() const {
    return pos_ >= bit_count_ ? 0 : bit_count_ - pos_;
  }

  /// \brief The next 64 bits at the cursor, MSB-aligned: the bit that
  /// ReadBit would return next is bit 63 of the result. Bits past the
  /// stream end read as zero (the mask keeps buffer padding — or
  /// neighboring bytes when the reader spans a sub-window of a larger
  /// buffer — from leaking into decoded values). Does not advance.
  uint64_t Peek64() const {
    const size_t avail = BitsAvailable();
    if (avail == 0) return 0;
    const size_t byte_pos = pos_ >> 3;
    const int bit_off = static_cast<int>(pos_ & 7);
    const size_t total_bytes = (bit_count_ + 7) >> 3;
    uint64_t hi;
    if (byte_pos + 8 <= total_bytes) {
      // Single unaligned load + byte swap on the fast path; the slow
      // path assembles the ragged tail byte by byte.
      std::memcpy(&hi, data_ + byte_pos, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
      // Stream bytes are already MSB-first in memory order.
#else
      hi = __builtin_bswap64(hi);
#endif
    } else {
      hi = 0;
      for (size_t i = byte_pos; i < total_bytes; ++i) {
        hi |= static_cast<uint64_t>(data_[i]) << (56 - 8 * (i - byte_pos));
      }
    }
    uint64_t w = hi;
    if (bit_off != 0) {
      w = hi << bit_off;
      if (byte_pos + 8 < total_bytes) {
        w |= static_cast<uint64_t>(data_[byte_pos + 8]) >> (8 - bit_off);
      }
    }
    if (avail < 64) w &= ~0ull << (64 - avail);
    return w;
  }

  /// \brief Advances the cursor `n` bits. The caller must have
  /// verified `HasBits(n)` (typically by locating a set bit inside
  /// Peek64's masked window, which cannot lie past the end).
  void Consume(size_t n) { pos_ += n; }

  /// \brief Reads one bit into `*bit`.
  Status ReadBit(bool* bit) {
    if (!HasBits(1)) return Status::OutOfRange("bit stream exhausted");
    *bit = (data_[pos_ >> 3] >> (7 - (pos_ & 7))) & 1u;
    ++pos_;
    return Status::OK();
  }

  /// \brief Reads `num_bits` (0..64) into `*value`, MSB first.
  ///
  /// Word-at-a-time: one Peek64 + shift instead of a per-bit loop.
  Status ReadBits(int num_bits, uint64_t* value) {
    if (!HasBits(static_cast<size_t>(num_bits))) {
      return Status::OutOfRange("bit stream exhausted");
    }
    if (num_bits == 0) {
      *value = 0;
      return Status::OK();
    }
    *value = Peek64() >> (64 - num_bits);
    pos_ += static_cast<size_t>(num_bits);
    return Status::OK();
  }

  /// \brief Bit-at-a-time ReadBits, kept as the differential oracle
  /// for the word path (tests decode every stream both ways).
  Status ReadBitsScalar(int num_bits, uint64_t* value) {
    if (!HasBits(static_cast<size_t>(num_bits))) {
      return Status::OutOfRange("bit stream exhausted");
    }
    uint64_t v = 0;
    for (int i = 0; i < num_bits; ++i) {
      v = (v << 1) | ((data_[pos_ >> 3] >> (7 - (pos_ & 7))) & 1u);
      ++pos_;
    }
    *value = v;
    return Status::OK();
  }

  /// \brief Skips forward to the next byte boundary.
  void AlignToByte() { pos_ = (pos_ + 7) & ~static_cast<size_t>(7); }

 private:
  const uint8_t* data_;
  size_t bit_count_;
  size_t pos_ = 0;
};

}  // namespace grepair

#endif  // GREPAIR_UTIL_BIT_STREAM_H_
