// Annotated synchronization primitives.
//
// Thin wrappers over the std locking primitives that carry Clang's
// thread-safety capability attributes, so locking discipline is checked
// at compile time (-Wthread-safety) instead of only dynamically by a
// TSan run that happens to hit the right interleaving. Under GCC (or
// any compiler without the attributes) the annotations expand to
// nothing and the wrappers compile down to the std types they hold.
//
// Conventions (see docs/STATIC_ANALYSIS.md for the full guide):
//  - Every mutex-protected field is declared `GREPAIR_GUARDED_BY(mu_)`.
//  - Private helpers that assume the lock is already held take
//    `GREPAIR_REQUIRES(mu_)` (the `...Locked()` naming convention).
//  - Public entry points that acquire a lock internally are annotated
//    `GREPAIR_LOCKS_EXCLUDED(mu_)` so re-entrant acquisition is a
//    compile error at the call site, not a deadlock in production.
//  - Condition-variable predicates are written as explicit wait loops
//    (`while (!pred) cv.Wait(lock);`) rather than lambda predicates:
//    the analysis cannot see that a predicate lambda runs under the
//    lock, but it fully checks the loop form.
//  - What cannot be expressed (per-element mutex arrays, fields handed
//    off between threads by join/detach) is documented with a comment
//    at the declaration instead of left silently unannotated.

#ifndef GREPAIR_UTIL_SYNC_H_
#define GREPAIR_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// Attribute layer: real capability attributes under Clang, no-ops
// elsewhere. GREPAIR_THREAD_ANNOTATION is the single gate so a future
// compiler with the analysis only needs one #elif.
#if defined(__clang__) && (!defined(SWIG))
#define GREPAIR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GREPAIR_THREAD_ANNOTATION(x)  // no-op
#endif

#define GREPAIR_CAPABILITY(x) GREPAIR_THREAD_ANNOTATION(capability(x))
#define GREPAIR_SCOPED_CAPABILITY GREPAIR_THREAD_ANNOTATION(scoped_lockable)
#define GREPAIR_GUARDED_BY(x) GREPAIR_THREAD_ANNOTATION(guarded_by(x))
#define GREPAIR_PT_GUARDED_BY(x) GREPAIR_THREAD_ANNOTATION(pt_guarded_by(x))
#define GREPAIR_ACQUIRE(...) \
  GREPAIR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GREPAIR_ACQUIRE_SHARED(...) \
  GREPAIR_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define GREPAIR_RELEASE(...) \
  GREPAIR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GREPAIR_RELEASE_SHARED(...) \
  GREPAIR_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define GREPAIR_RELEASE_GENERIC(...) \
  GREPAIR_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define GREPAIR_REQUIRES(...) \
  GREPAIR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GREPAIR_REQUIRES_SHARED(...) \
  GREPAIR_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define GREPAIR_LOCKS_EXCLUDED(...) \
  GREPAIR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define GREPAIR_RETURN_CAPABILITY(x) \
  GREPAIR_THREAD_ANNOTATION(lock_returned(x))
#define GREPAIR_NO_THREAD_SAFETY_ANALYSIS \
  GREPAIR_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace grepair {

class CondVar;
class MutexLock;
class ReaderMutexLock;
class WriterMutexLock;

/// \brief A standard mutex carrying the `capability` attribute.
///
/// Prefer the scoped MutexLock over calling Lock/Unlock directly; the
/// raw methods exist for the rare hand-over-hand or conditional paths
/// and are fully annotated so the analysis tracks them too.
class GREPAIR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GREPAIR_ACQUIRE() { mu_.lock(); }
  void Unlock() GREPAIR_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// \brief A reader/writer mutex carrying the `capability` attribute.
class GREPAIR_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() GREPAIR_ACQUIRE() { mu_.lock(); }
  void Unlock() GREPAIR_RELEASE() { mu_.unlock(); }
  void LockShared() GREPAIR_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() GREPAIR_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  friend class ReaderMutexLock;
  friend class WriterMutexLock;
  std::shared_mutex mu_;
};

/// \brief Scoped exclusive lock on a Mutex (the workhorse guard).
///
/// Relockable: Unlock()/Lock() support the unlock-work-relock pattern
/// (e.g. a worker dropping the queue lock around the expensive decode)
/// with the analysis tracking the capability across the gap. The
/// destructor releases only if still held.
class GREPAIR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GREPAIR_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() GREPAIR_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// \brief Releases the mutex before scope exit (must be held).
  void Unlock() GREPAIR_RELEASE() { lock_.unlock(); }

  /// \brief Re-acquires the mutex after an Unlock().
  void Lock() GREPAIR_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// \brief Scoped shared (reader) lock on a SharedMutex.
class GREPAIR_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) GREPAIR_ACQUIRE_SHARED(mu)
      : lock_(mu.mu_) {}
  ~ReaderMutexLock() GREPAIR_RELEASE() = default;

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

/// \brief Scoped exclusive (writer) lock on a SharedMutex.
class GREPAIR_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) GREPAIR_ACQUIRE(mu)
      : lock_(mu.mu_) {}
  ~WriterMutexLock() GREPAIR_RELEASE() = default;

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

/// \brief Condition variable over Mutex/MutexLock.
///
/// Wait takes the scoped lock, not the mutex: the analysis then keeps
/// treating the capability as held across the wait (which is what the
/// caller observes — Wait returns with the lock re-acquired). Callers
/// write explicit `while (!pred) cv.Wait(lock);` loops so every
/// predicate read is visibly under the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// \brief Waits until `deadline`; returns false on timeout.
  template <typename Clock, typename Duration>
  bool WaitUntil(MutexLock& lock,
                 const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline) == std::cv_status::no_timeout;
  }

  /// \brief Waits up to `rel_time`; returns false on timeout.
  template <typename Rep, typename Period>
  bool WaitFor(MutexLock& lock,
               const std::chrono::duration<Rep, Period>& rel_time) {
    return cv_.wait_for(lock.lock_, rel_time) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace grepair

#endif  // GREPAIR_UTIL_SYNC_H_
