// Elias gamma and delta universal integer codes (Elias 1975).
//
// The paper stores rule edge lists with variable-length delta codes
// (Section III-C2): node IDs, labels and edge counts are all delta-coded.
// Codes are defined for integers >= 1; callers shift 0-based IDs by one.
//
// Decoding is the hot query path (every shard fault, node-map parse and
// rule expansion bottoms out here), so EliasGammaDecode/EliasDeltaDecode
// run word-at-a-time: they count the unary prefix with one
// __builtin_clzll over BitReader::Peek64's 64-bit lookahead window
// instead of a per-bit loop. The original bit-at-a-time implementations
// are retained as *Scalar differential oracles — tests require the two
// to be bit-identical (values, statuses and cursor positions) on every
// input, valid or corrupt.

#ifndef GREPAIR_UTIL_ELIAS_H_
#define GREPAIR_UTIL_ELIAS_H_

#include <cstdint>

#include "src/util/bit_stream.h"
#include "src/util/status.h"

namespace grepair {

/// \brief Number of bits in the binary representation of `n`.
///
/// Defined for all inputs: returns 0 for n == 0 (callers encoding must
/// still pass n >= 1; see the encoder contracts below). The n == 0
/// guard exists because __builtin_clzll(0) is undefined behavior the
/// moment release builds compile the old assert out.
int BitLength(uint64_t n);

/// \brief Appends the Elias gamma code of `n` (n >= 1) to `writer`.
///
/// gamma(n) = (len(n)-1) zero bits, then the len(n) bits of n.
/// n == 0 is not representable: the call fails closed by appending
/// nothing.
void EliasGammaEncode(uint64_t n, BitWriter* writer);

/// \brief Appends the Elias delta code of `n` (n >= 1) to `writer`.
///
/// delta(n) = gamma(len(n)), then the binary of n without its leading
/// 1-bit. Asymptotically log n + 2 log log n bits. n == 0 is not
/// representable: the call fails closed by appending nothing.
void EliasDeltaEncode(uint64_t n, BitWriter* writer);

/// \brief Decodes an Elias gamma code into `*n` (word-at-a-time).
Status EliasGammaDecode(BitReader* reader, uint64_t* n);

/// \brief Decodes an Elias delta code into `*n` (word-at-a-time).
Status EliasDeltaDecode(BitReader* reader, uint64_t* n);

/// \brief Bit-at-a-time gamma decoder: the differential oracle the
/// fast path is tested against. Identical outputs, statuses and cursor
/// movement on every input.
Status EliasGammaDecodeScalar(BitReader* reader, uint64_t* n);

/// \brief Bit-at-a-time delta decoder (differential oracle).
Status EliasDeltaDecodeScalar(BitReader* reader, uint64_t* n);

/// \brief Test-only switch: when true, EliasGammaDecode and
/// EliasDeltaDecode dispatch to their scalar oracles, so whole parsers
/// (DecodeGrammar, container opens) can be run differentially against
/// golden fixtures without a second code path of their own. Not
/// thread-safe: flip it only from a single-threaded test before any
/// decoding starts, and restore it afterwards.
void SetEliasDecodeScalarForTest(bool scalar);

/// \brief Reads the test-only switch. Word-at-a-time readers outside
/// this file (e.g. the k2 bitmap chunk loop) consult it so the scalar
/// mode exercises the full bit-at-a-time decode path, not just the
/// Elias codes.
bool EliasDecodeScalarForTest();

/// \brief Bit cost of gamma(n) without encoding it (0 for n == 0).
int EliasGammaLength(uint64_t n);

/// \brief Bit cost of delta(n) without encoding it (0 for n == 0).
int EliasDeltaLength(uint64_t n);

}  // namespace grepair

#endif  // GREPAIR_UTIL_ELIAS_H_
