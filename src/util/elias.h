// Elias gamma and delta universal integer codes (Elias 1975).
//
// The paper stores rule edge lists with variable-length delta codes
// (Section III-C2): node IDs, labels and edge counts are all delta-coded.
// Codes are defined for integers >= 1; callers shift 0-based IDs by one.

#ifndef GREPAIR_UTIL_ELIAS_H_
#define GREPAIR_UTIL_ELIAS_H_

#include <cstdint>

#include "src/util/bit_stream.h"
#include "src/util/status.h"

namespace grepair {

/// \brief Number of bits in the binary representation of `n` (n >= 1).
int BitLength(uint64_t n);

/// \brief Appends the Elias gamma code of `n` (n >= 1) to `writer`.
///
/// gamma(n) = (len(n)-1) zero bits, then the len(n) bits of n.
void EliasGammaEncode(uint64_t n, BitWriter* writer);

/// \brief Appends the Elias delta code of `n` (n >= 1) to `writer`.
///
/// delta(n) = gamma(len(n)), then the binary of n without its leading
/// 1-bit. Asymptotically log n + 2 log log n bits.
void EliasDeltaEncode(uint64_t n, BitWriter* writer);

/// \brief Decodes an Elias gamma code into `*n`.
Status EliasGammaDecode(BitReader* reader, uint64_t* n);

/// \brief Decodes an Elias delta code into `*n`.
Status EliasDeltaDecode(BitReader* reader, uint64_t* n);

/// \brief Bit cost of gamma(n) without encoding it.
int EliasGammaLength(uint64_t n);

/// \brief Bit cost of delta(n) without encoding it.
int EliasDeltaLength(uint64_t n);

}  // namespace grepair

#endif  // GREPAIR_UTIL_ELIAS_H_
