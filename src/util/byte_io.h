// Byte-level IO primitives: little-endian fixed-width helpers plus the
// zero-copy ByteSpan / ByteSource / ByteSink trio the storage layer is
// built on.
//
// ByteSpan is a non-owning view of bytes (an mmap'd file, a slice of a
// container, a vector's contents). ByteSource is a bounded cursor over
// a span: every read is range-checked and failures carry the source's
// context label, the byte offset, and expected-vs-actual sizes, so a
// truncated file names exactly where it ran out. ByteSink is the
// append-side twin over a growable buffer. None of the three ever copy
// payload bytes; ReadSpan hands back a sub-view into the original
// storage, which is what lets a GRSHARD2 shard payload stay a borrowed
// window into the mapped container until it is faulted in.
//
// The free PutU*/GetU* helpers predate the cursor types and remain for
// the handful of fixed-width headers that build vectors directly.

#ifndef GREPAIR_UTIL_BYTE_IO_H_
#define GREPAIR_UTIL_BYTE_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace grepair {

/// \brief Non-owning view of a byte range. The pointed-to storage must
/// outlive every span (and every rep borrowing from it) derived from
/// it; whoever hands out spans owns that lifetime contract.
struct ByteSpan {
  const uint8_t* data = nullptr;
  size_t size = 0;

  ByteSpan() = default;
  ByteSpan(const uint8_t* d, size_t n) : data(d), size(n) {}

  bool empty() const { return size == 0; }
  const uint8_t* begin() const { return data; }
  const uint8_t* end() const { return data + size; }
  uint8_t operator[](size_t i) const { return data[i]; }

  /// \brief Sub-view [offset, offset+len); caller checks bounds.
  ByteSpan subspan(size_t offset, size_t len) const {
    return ByteSpan(data + offset, len);
  }

  std::vector<uint8_t> ToVector() const {
    return std::vector<uint8_t>(data, data + size);
  }
};

/// \brief View of a vector's contents (kept as a named helper instead
/// of an implicit conversion so overload sets stay unambiguous).
inline ByteSpan SpanOf(const std::vector<uint8_t>& v) {
  return ByteSpan(v.data(), v.size());
}

/// \brief Bounded, zero-copy read cursor over a ByteSpan.
///
/// All reads validate against the remaining window and return
/// kCorruption with the context label ("path/to/file"), the current
/// offset and need-vs-have byte counts on overrun. ReadSpan returns a
/// borrowed sub-view (no copy); callers that need ownership copy
/// explicitly.
class ByteSource {
 public:
  explicit ByteSource(ByteSpan span, std::string context = "")
      : span_(span), context_(std::move(context)) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return span_.size - pos_; }
  size_t size() const { return span_.size; }
  const std::string& context() const { return context_; }

  Status ReadU8(uint8_t* v) {
    GREPAIR_RETURN_IF_ERROR(Check("u8", 1));
    *v = span_[pos_++];
    return Status::OK();
  }

  Status ReadU32LE(uint32_t* v) {
    GREPAIR_RETURN_IF_ERROR(Check("u32", 4));
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(span_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return Status::OK();
  }

  Status ReadU64LE(uint64_t* v) {
    GREPAIR_RETURN_IF_ERROR(Check("u64", 8));
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(span_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return Status::OK();
  }

  /// \brief Borrows the next `n` bytes as a sub-view (zero-copy).
  Status ReadSpan(size_t n, ByteSpan* out) {
    GREPAIR_RETURN_IF_ERROR(Check("byte range", n));
    *out = span_.subspan(pos_, n);
    pos_ += n;
    return Status::OK();
  }

  /// \brief Borrows everything from the cursor to the end without
  /// advancing — for decoders that consume a data-dependent prefix
  /// (pair with Skip once the consumed length is known).
  ByteSpan PeekRemaining() const {
    return span_.subspan(pos_, span_.size - pos_);
  }

  Status Skip(size_t n) {
    GREPAIR_RETURN_IF_ERROR(Check("skip", n));
    pos_ += n;
    return Status::OK();
  }

  /// \brief kCorruption naming the trailing byte count unless the
  /// cursor consumed the whole span.
  Status ExpectExhausted(const char* what) {
    if (pos_ != span_.size) {
      return Status::Corruption(Where() + std::string(what) + " has " +
                                std::to_string(span_.size - pos_) +
                                " trailing byte(s) at offset " +
                                std::to_string(pos_));
    }
    return Status::OK();
  }

 private:
  std::string Where() const {
    return context_.empty() ? std::string() : context_ + ": ";
  }

  Status Check(const char* what, size_t need) const {
    if (need > remaining()) {
      return Status::Corruption(
          Where() + "truncated " + what + " at offset " +
          std::to_string(pos_) + ": need " + std::to_string(need) +
          " byte(s), have " + std::to_string(remaining()));
    }
    return Status::OK();
  }

  ByteSpan span_;
  size_t pos_ = 0;
  std::string context_;
};

/// \brief Append-only byte buffer, the write-side twin of ByteSource.
class ByteSink {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU32LE(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void PutU64LE(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void Append(ByteSpan span) {
    bytes_.insert(bytes_.end(), span.begin(), span.end());
  }
  void Append(const std::vector<uint8_t>& v) { Append(SpanOf(v)); }

  size_t size() const { return bytes_.size(); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

inline void PutU32LE(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

inline void PutU64LE(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

inline Status GetU32LE(const std::vector<uint8_t>& in, size_t* pos,
                       uint32_t* v) {
  if (*pos + 4 > in.size()) return Status::Corruption("truncated u32");
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(in[*pos + i]) << (8 * i);
  }
  *pos += 4;
  return Status::OK();
}

inline Status GetU64LE(const std::vector<uint8_t>& in, size_t* pos,
                       uint64_t* v) {
  if (*pos + 8 > in.size()) return Status::Corruption("truncated u64");
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(in[*pos + i]) << (8 * i);
  }
  *pos += 8;
  return Status::OK();
}

}  // namespace grepair

#endif  // GREPAIR_UTIL_BYTE_IO_H_
