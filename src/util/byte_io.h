// Little-endian fixed-width byte encoding helpers.
//
// The baseline compressors' serialized headers (HN, LM, and the
// codec-API container frames) are a handful of fixed-width integers in
// front of an opaque payload; these helpers keep those headers
// byte-order independent without pulling in the bit-stream machinery.

#ifndef GREPAIR_UTIL_BYTE_IO_H_
#define GREPAIR_UTIL_BYTE_IO_H_

#include <cstdint>
#include <vector>

#include "src/util/status.h"

namespace grepair {

inline void PutU32LE(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

inline void PutU64LE(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

inline Status GetU32LE(const std::vector<uint8_t>& in, size_t* pos,
                       uint32_t* v) {
  if (*pos + 4 > in.size()) return Status::Corruption("truncated u32");
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(in[*pos + i]) << (8 * i);
  }
  *pos += 4;
  return Status::OK();
}

inline Status GetU64LE(const std::vector<uint8_t>& in, size_t* pos,
                       uint64_t* v) {
  if (*pos + 8 > in.size()) return Status::Corruption("truncated u64");
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(in[*pos + i]) << (8 * i);
  }
  *pos += 8;
  return Status::OK();
}

}  // namespace grepair

#endif  // GREPAIR_UTIL_BYTE_IO_H_
