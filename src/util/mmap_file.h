// Read-only memory-mapped files: the backing store of the zero-copy
// storage layer.
//
// MmapFile maps a whole file PROT_READ and hands out ByteSpans into
// the mapping; a GRSHARD2 container opened this way costs O(1) page
// faults up front no matter how many shards it holds, and each shard's
// payload stays a borrowed window into the map until the query layer
// faults it in. Instances are shared_ptr-held so every rep borrowing
// from the mapping pins it alive — the lifetime rule of the whole
// layer is "span users hold the MmapFile".
//
// Platforms without a working mmap (or exotic files mmap refuses) fall
// back to a heap buffer read through ordinary IO; the span contract is
// identical, only the O(1)-open property is lost.

#ifndef GREPAIR_UTIL_MMAP_FILE_H_
#define GREPAIR_UTIL_MMAP_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/byte_io.h"
#include "src/util/status.h"

namespace grepair {

/// \brief A read-only file mapping (or its heap-buffer fallback).
/// Immutable and safe to share across threads once opened.
class MmapFile {
 public:
  /// \brief Maps `path` read-only. kNotFound / kInvalidArgument name
  /// the path and the errno string on failure; empty files open
  /// successfully with an empty span.
  static Result<std::shared_ptr<MmapFile>> Open(const std::string& path);

  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  ByteSpan span() const {
    return ByteSpan(static_cast<const uint8_t*>(data_), size_);
  }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// \brief True when the bytes live in a real mapping rather than the
  /// heap fallback (exposed for tests and the CLI's `info` output).
  bool is_mapped() const { return mapped_; }

  /// \brief MADV_WILLNEED over the page-aligned range covering
  /// [offset, offset+length) — kicks off readahead so an imminent
  /// shard fault finds its pages resident. Returns the number of
  /// bytes actually hinted (0 on the heap fallback, an empty range,
  /// or a refused madvise; hints are best-effort by design).
  size_t AdviseWillNeed(size_t offset, size_t length) const;

  /// \brief MADV_SEQUENTIAL over the whole mapping (ahead of a
  /// front-to-back walk such as a full Decompress). Returns bytes
  /// hinted, 0 when not mapped or refused.
  size_t AdviseSequential() const;

  /// \brief MADV_NORMAL over the whole mapping — undoes
  /// AdviseSequential once the walk is done, so a long-lived mapping
  /// goes back to the default readahead that random point-query
  /// faults want. Returns bytes covered, 0 when not mapped/refused.
  size_t AdviseNormal() const;

  /// \brief mlock(2) over the page-aligned range covering
  /// [offset, offset+length) — a placement controller pins hot shard
  /// payloads resident with this. Returns the bytes actually locked
  /// (0 on the heap fallback, an empty range, or a refused mlock —
  /// RLIMIT_MEMLOCK is tight in containers, so pinning is best-effort
  /// by design and callers account the *intent* separately).
  size_t Pin(size_t offset, size_t length) const;

  /// \brief munlock(2) over the same page-aligned range; returns the
  /// bytes unlocked (0 when not mapped or refused).
  size_t Unpin(size_t offset, size_t length) const;

 private:
  MmapFile() = default;

  std::string path_;
  const void* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;               // true: munmap on destruction
  std::vector<uint8_t> fallback_;     // owns the bytes when !mapped_
};

/// \brief mlock / munlock over the page-aligned range covering `span`
/// (any readable memory, mapped or heap — the server-side placement
/// path pins registry payload spans that may not sit in an MmapFile).
/// Returns bytes locked/unlocked; 0 when refused (best-effort, like
/// every madvise in this layer).
size_t PinBytes(ByteSpan span);
size_t UnpinBytes(ByteSpan span);

/// \brief Status-ful whole-file read into an owned buffer (for writers
/// and small inputs where a mapping is overkill). Errors name the path.
Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

/// \brief Atomic whole-file write: the bytes land in a uniquely named
/// temporary sibling first and are rename(2)d over `path` only after a
/// flushed, full-length close, so readers never observe a torn file —
/// they see either the old contents or the new, never a prefix. The
/// temporary is removed on any failure. Errors name the path. Every
/// container/sidecar writer in the tree funnels through here (hoisted
/// from the tiered SSD cache, which pioneered the tmp+rename dance).
Status WriteFileBytesAtomic(const std::string& path, ByteSpan bytes);

/// \brief Status-ful whole-file write; errors name the path. Atomic:
/// delegates to WriteFileBytesAtomic.
Status WriteFileBytes(const std::string& path,
                      const std::vector<uint8_t>& bytes);

}  // namespace grepair

#endif  // GREPAIR_UTIL_MMAP_FILE_H_
