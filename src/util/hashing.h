// Hash helpers shared by the digram table, FP-order refinement and the
// WL isomorphism hash.

#ifndef GREPAIR_UTIL_HASHING_H_
#define GREPAIR_UTIL_HASHING_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace grepair {

/// \brief "0x%016x" rendering of a 64-bit value — the one way every
/// checksum-mismatch error prints expected vs actual.
inline std::string HexU64(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// \brief Mixes a 64-bit value (finalizer of MurmurHash3).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

/// \brief Combines a hash with a new value (order-sensitive).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9E3779B97F4A7C15ull + (seed << 6) +
                       (seed >> 2)));
}

/// \brief Hash of a sequence of 64-bit values.
inline uint64_t HashSpan(const uint64_t* data, size_t n, uint64_t seed = 0) {
  uint64_t h = HashCombine(seed, n);
  for (size_t i = 0; i < n; ++i) h = HashCombine(h, data[i]);
  return h;
}

inline uint64_t HashVector(const std::vector<uint64_t>& v, uint64_t seed = 0) {
  return HashSpan(v.data(), v.size(), seed);
}

/// \brief Hash of a raw byte range (little-endian 8-byte words plus a
/// zero-padded tail). Used as the container checksum for GRSHARD2
/// shard payloads and directories; deterministic across platforms, not
/// cryptographic.
inline uint64_t HashBytes(const uint8_t* data, size_t n, uint64_t seed = 0) {
  uint64_t h = HashCombine(seed, n);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t word = 0;
    for (int b = 0; b < 8; ++b) {
      word |= static_cast<uint64_t>(data[i + b]) << (8 * b);
    }
    h = HashCombine(h, word);
  }
  if (i < n) {
    uint64_t word = 0;
    for (int b = 0; i + b < n; ++b) {
      word |= static_cast<uint64_t>(data[i + b]) << (8 * b);
    }
    h = HashCombine(h, word);
  }
  return h;
}

}  // namespace grepair

#endif  // GREPAIR_UTIL_HASHING_H_
