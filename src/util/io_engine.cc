#include "src/util/io_engine.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define GREPAIR_HAVE_IO_URING 1
#else
#define GREPAIR_HAVE_IO_URING 0
#endif

#if GREPAIR_HAVE_IO_URING
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#elif !defined(_WIN32)
#include <unistd.h>
#endif

namespace grepair {

namespace {

#if !defined(_WIN32)
std::string ErrnoText() { return std::string(std::strerror(errno)); }

// The fallback (and the completion fixup for short io_uring reads):
// a retrying pread loop that treats EOF inside the request as
// corruption — shard lengths come from a checksummed directory, so a
// file shorter than its directory says is damaged, not "done early".
Status PreadFully(IoReadRequest* req) {
  if (req->fd < 0 || req->dst == nullptr) {
    return Status::InvalidArgument(
        "batched read needs an open fd and a destination buffer");
  }
  size_t done = 0;
  while (done < req->length) {
    ssize_t n = ::pread(req->fd, req->dst + done, req->length - done,
                        static_cast<off_t>(req->offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Corruption("pread of " + std::to_string(req->length) +
                                " byte(s) at offset " +
                                std::to_string(req->offset) +
                                " failed: " + ErrnoText());
    }
    if (n == 0) {
      return Status::Corruption(
          "unexpected EOF at offset " + std::to_string(req->offset + done) +
          " (" + std::to_string(req->length) + " byte(s) requested)");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}
#else
Status PreadFully(IoReadRequest* req) {
  (void)req;
  return Status::Unimplemented("batched reads need POSIX pread");
}
#endif

#if GREPAIR_HAVE_IO_URING
constexpr unsigned kUringQueueDepth = 64;

int SysUringSetup(unsigned entries, struct io_uring_params* params) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, params));
}

int SysUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags) {
  return static_cast<int>(syscall(__NR_io_uring_enter, fd, to_submit,
                                  min_complete, flags, nullptr, 0));
}
#endif

}  // namespace

#if GREPAIR_HAVE_IO_URING

struct IoEngine::Ring {
  int fd = -1;
  void* sq_ptr = nullptr;
  size_t sq_bytes = 0;
  void* cq_ptr = nullptr;
  size_t cq_bytes = 0;
  struct io_uring_sqe* sqe_array = nullptr;
  size_t sqe_bytes = 0;
  bool single_mmap = false;
  unsigned sq_entries = 0;
  // Pointers into the shared rings (offsets from io_uring_params).
  unsigned* sq_tail = nullptr;
  unsigned* sq_mask = nullptr;
  unsigned* sq_index = nullptr;  // the SQ index array
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned* cq_mask = nullptr;
  struct io_uring_cqe* cqes = nullptr;

  ~Ring() {
    if (sqe_array != nullptr) munmap(sqe_array, sqe_bytes);
    if (cq_ptr != nullptr && !single_mmap) munmap(cq_ptr, cq_bytes);
    if (sq_ptr != nullptr) munmap(sq_ptr, sq_bytes);
    if (fd >= 0) close(fd);
  }

  // Submits `count` reads (all validated, nonzero length) as one ring
  // batch and reaps their completions, filling per-request statuses.
  // Returns non-OK only when the ring machinery itself failed — then
  // per-request statuses are NOT all set and the caller must salvage
  // through the pread fallback (re-reading a buffer the kernel may
  // also write is benign: both read the same immutable file bytes).
  Status SubmitAndReap(IoReadRequest** chunk, unsigned count) {
    unsigned tail = __atomic_load_n(sq_tail, __ATOMIC_RELAXED);
    unsigned mask = *sq_mask;
    for (unsigned i = 0; i < count; ++i) {
      unsigned slot = (tail + i) & mask;
      struct io_uring_sqe* sqe = &sqe_array[slot];
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_READ;
      sqe->fd = chunk[i]->fd;
      sqe->addr = reinterpret_cast<uint64_t>(chunk[i]->dst);
      sqe->len = chunk[i]->length;
      sqe->off = chunk[i]->offset;
      sqe->user_data = i;
      sq_index[slot] = slot;
    }
    __atomic_store_n(sq_tail, tail + count, __ATOMIC_RELEASE);
    unsigned submitted = 0;
    while (submitted < count) {
      int n = SysUringEnter(fd, count - submitted, 0, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Internal("io_uring_enter(submit) failed: " +
                                ErrnoText());
      }
      submitted += static_cast<unsigned>(n);
    }
    unsigned reaped = 0;
    while (reaped < count) {
      unsigned head = __atomic_load_n(cq_head, __ATOMIC_ACQUIRE);
      unsigned reap_tail = __atomic_load_n(cq_tail, __ATOMIC_ACQUIRE);
      if (head == reap_tail) {
        int n = SysUringEnter(fd, 0, 1, IORING_ENTER_GETEVENTS);
        if (n < 0 && errno != EINTR) {
          return Status::Internal("io_uring_enter(wait) failed: " +
                                  ErrnoText());
        }
        continue;
      }
      unsigned mask_cq = *cq_mask;
      while (head != reap_tail && reaped < count) {
        const struct io_uring_cqe* cqe = &cqes[head & mask_cq];
        uint64_t idx = cqe->user_data;
        int res = cqe->res;
        ++head;
        ++reaped;
        if (idx >= count) continue;  // not ours; should not happen
        IoReadRequest* req = chunk[idx];
        if (res < 0) {
          req->status = Status::Corruption(
              "io_uring read of " + std::to_string(req->length) +
              " byte(s) at offset " + std::to_string(req->offset) +
              " failed: " + std::string(std::strerror(-res)));
        } else if (static_cast<uint32_t>(res) < req->length) {
          // Short read (EOF shows as res < len too): finish — or
          // fail — through the pread path for one uniform error story.
          IoReadRequest rest = *req;
          rest.offset += static_cast<uint64_t>(res);
          rest.dst += res;
          rest.length -= static_cast<uint32_t>(res);
          req->status = PreadFully(&rest);
        } else {
          req->status = Status::OK();
        }
      }
      __atomic_store_n(cq_head, head, __ATOMIC_RELEASE);
    }
    return Status::OK();
  }
};

#else  // !GREPAIR_HAVE_IO_URING

struct IoEngine::Ring {};

#endif

IoEngine::IoEngine() = default;
IoEngine::~IoEngine() = default;

IoEngine& IoEngine::Default() {
  static IoEngine* engine = new IoEngine();
  return *engine;
}

bool IoEngine::uring_available() const {
  const_cast<IoEngine*>(this)->ProbeOnce();
  return available_.load(std::memory_order_acquire) &&
         !force_fallback_.load(std::memory_order_relaxed);
}

void IoEngine::ProbeOnce() {
  if (probed_.load(std::memory_order_acquire)) return;
  MutexLock probe_lock(probe_mu_);
  if (probed_.load(std::memory_order_relaxed)) return;
#if GREPAIR_HAVE_IO_URING
  struct io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  // The probe IS the setup: a kernel (or seccomp policy) refusing it —
  // ENOSYS, EPERM, EINVAL — permanently selects the pread fallback.
  int fd = SysUringSetup(kUringQueueDepth, &params);
  if (fd >= 0) {
    auto ring = std::make_unique<Ring>();
    ring->fd = fd;
    ring->sq_entries = params.sq_entries;
    ring->sq_bytes = params.sq_off.array +
                     params.sq_entries * sizeof(unsigned);
    ring->cq_bytes = params.cq_off.cqes +
                     params.cq_entries * sizeof(struct io_uring_cqe);
    ring->single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (ring->single_mmap) {
      ring->sq_bytes = ring->cq_bytes =
          std::max(ring->sq_bytes, ring->cq_bytes);
    }
    void* sq = mmap(nullptr, ring->sq_bytes, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
    ring->sq_ptr = sq == MAP_FAILED ? nullptr : sq;
    if (ring->sq_ptr != nullptr) {
      if (ring->single_mmap) {
        ring->cq_ptr = ring->sq_ptr;
      } else {
        void* cq = mmap(nullptr, ring->cq_bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
        ring->cq_ptr = cq == MAP_FAILED ? nullptr : cq;
      }
    }
    if (ring->cq_ptr != nullptr) {
      ring->sqe_bytes = params.sq_entries * sizeof(struct io_uring_sqe);
      void* sqes = mmap(nullptr, ring->sqe_bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
      ring->sqe_array = sqes == MAP_FAILED
                            ? nullptr
                            : static_cast<struct io_uring_sqe*>(sqes);
    }
    if (ring->sqe_array != nullptr) {
      uint8_t* sq_base = static_cast<uint8_t*>(ring->sq_ptr);
      uint8_t* cq_base = static_cast<uint8_t*>(ring->cq_ptr);
      ring->sq_tail =
          reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
      ring->sq_mask =
          reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
      ring->sq_index =
          reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
      ring->cq_head =
          reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
      ring->cq_tail =
          reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
      ring->cq_mask =
          reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
      ring->cqes = reinterpret_cast<struct io_uring_cqe*>(
          cq_base + params.cq_off.cqes);
      {
        MutexLock lock(ring_mu_);
        ring_ = std::move(ring);
      }
      available_.store(true, std::memory_order_release);
    }
    // A partially mmap'd ring unwinds through ~Ring (unmapped
    // pointers are null there) and leaves the fallback selected.
  }
#endif
  probed_.store(true, std::memory_order_release);
}

uint64_t IoEngine::ReadBatch(std::vector<IoReadRequest>* reads) {
  if (reads == nullptr || reads->empty()) return 0;
  ProbeOnce();
#if GREPAIR_HAVE_IO_URING
  if (available_.load(std::memory_order_acquire) &&
      !force_fallback_.load(std::memory_order_relaxed)) {
    uint64_t batches = 0;
    bool ring_ok = true;
    MutexLock lock(ring_mu_);
    if (ring_ != nullptr) {
      std::vector<IoReadRequest*> chunk;
      chunk.reserve(ring_->sq_entries);
      size_t next = 0;
      while (next < reads->size()) {
        chunk.clear();
        size_t salvage_from = next;
        while (next < reads->size() && chunk.size() < ring_->sq_entries) {
          IoReadRequest* req = &(*reads)[next++];
          if (req->fd < 0 || req->dst == nullptr) {
            req->status = Status::InvalidArgument(
                "batched read needs an open fd and a destination buffer");
          } else if (req->length == 0) {
            req->status = Status::OK();
          } else if (ring_ok) {
            chunk.push_back(req);
          } else {
            req->status = PreadFully(req);
          }
        }
        if (chunk.empty()) continue;
        Status round = ring_->SubmitAndReap(
            chunk.data(), static_cast<unsigned>(chunk.size()));
        if (round.ok()) {
          ++batches;
        } else {
          // Ring machinery failure (not a per-read error): the ring
          // state is suspect, so finish this call — and the rest of
          // the process — on the fallback.
          ring_ok = false;
          next = salvage_from;
        }
      }
      if (!ring_ok) available_.store(false, std::memory_order_release);
      return batches;
    }
  }
#endif
  for (IoReadRequest& req : *reads) {
    if (req.fd >= 0 && req.dst != nullptr && req.length == 0) {
      req.status = Status::OK();
      continue;
    }
    req.status = PreadFully(&req);
  }
  return 0;
}

}  // namespace grepair
