// Status-ful TCP socket RAII: the transport primitive under the shard
// serving layer (src/net/).
//
// Socket owns one file descriptor and exposes exactly the operations
// the frame protocol needs: exact-length sends and receives with
// per-socket timeouts, plus the listen/accept/connect constructors.
// Every failure is a Status naming the peer and the errno string —
// a stalled or dead peer surfaces as kUnavailable after the timeout,
// never as a hang. SIGPIPE is suppressed per send (MSG_NOSIGNAL), so
// a peer closing mid-write is an error return, not process death.
//
// Platforms without BSD sockets (_WIN32 in this tree) get stubs that
// return kUnimplemented; the net layer degrades to "not supported"
// instead of failing the build.

#ifndef GREPAIR_UTIL_SOCKET_H_
#define GREPAIR_UTIL_SOCKET_H_

#include <cstdint>
#include <string>

#include "src/util/byte_io.h"
#include "src/util/status.h"

namespace grepair {

/// \brief Move-only RAII wrapper of one TCP socket descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// \brief Closes the descriptor (idempotent).
  void Close();

  /// \brief Half-closes both directions without releasing the fd —
  /// unblocks a peer (or another thread of this process) currently
  /// parked in recv on this socket. Safe on an already-closed socket.
  void ShutdownBoth();

  /// \brief Applies `millis` as both SO_RCVTIMEO and SO_SNDTIMEO
  /// (0 = block forever). Every RecvAll/SendAll after this fails with
  /// kUnavailable instead of blocking past the deadline.
  Status SetTimeouts(int millis);

  /// \brief Sends all of `bytes`; kUnavailable on timeout, reset, or
  /// close (partial progress is reported in the message).
  Status SendAll(ByteSpan bytes);

  /// \brief Receives exactly `n` bytes into `out`. A clean EOF before
  /// the first byte sets *clean_eof (when non-null) and still returns
  /// kUnavailable; EOF mid-message never sets it.
  Status RecvAll(uint8_t* out, size_t n, bool* clean_eof = nullptr);

  /// \brief Connects to host:port with `timeout_ms` applied to the
  /// connect itself and to subsequent IO. Resolves names via
  /// getaddrinfo, so "localhost" and dotted quads both work.
  static Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                                   int timeout_ms);

  /// \brief Binds and listens on host:port (port 0 picks an ephemeral
  /// port); *bound_port (when non-null) receives the actual port.
  static Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                                  uint16_t* bound_port);

  /// \brief Accepts one connection on a listening socket. The
  /// listener being closed/shut down from another thread surfaces as
  /// kUnavailable (the accept loop's shutdown signal).
  Result<Socket> Accept() const;

 private:
  int fd_ = -1;
};

/// \brief Splits "host:port" (e.g. "127.0.0.1:9000", "localhost:80").
/// kInvalidArgument names the spec on any malformed input.
Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port);

}  // namespace grepair

#endif  // GREPAIR_UTIL_SOCKET_H_
