// IoEngine — batched positional reads for the shard-faulting path.
//
// The serving tier's cold-open cost is N independent shard reads
// issued one blocking call at a time (a page fault or pread per
// shard). IoEngine turns a batch of reads into one submission round:
// on Linux kernels with io_uring (5.6+ for IORING_OP_READ) the whole
// batch goes through a single io_uring_enter(2), submission and
// completion rings mmap'd once per process; everywhere else — older
// kernels, seccomp filters that deny the io_uring syscalls, non-Linux
// builds — the same call degrades to a plain pread(2) loop with
// identical results.
//
// The io_uring path is compile-time optional (<linux/io_uring.h>
// present) AND runtime-detected: the first use probes io_uring_setup
// and a failed probe (ENOSYS, EPERM, EINVAL) permanently selects the
// fallback. Callers can observe which path ran via the batch count
// ReadBatch returns — it feeds QueryStats::uring_batches — and tests
// force the fallback with set_force_fallback to verify the two paths
// byte-identical.
//
// Thread-safety: ReadBatch is safe to call concurrently; the ring is
// guarded by one mutex (submission batching is the point — one lock
// per batch, not per read).

#ifndef GREPAIR_UTIL_IO_ENGINE_H_
#define GREPAIR_UTIL_IO_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/status.h"
#include "src/util/sync.h"

namespace grepair {

/// \brief One positional read in a batch. The caller owns `dst` (at
/// least `length` bytes) and keeps it alive across ReadBatch.
struct IoReadRequest {
  int fd = -1;           ///< open descriptor to read from
  uint64_t offset = 0;   ///< absolute file offset
  uint8_t* dst = nullptr;///< destination buffer, caller-owned
  uint32_t length = 0;   ///< bytes to read (short reads are errors)
  Status status;         ///< per-read outcome, filled by ReadBatch
};

class IoEngine {
 public:
  IoEngine();
  ~IoEngine();

  IoEngine(const IoEngine&) = delete;
  IoEngine& operator=(const IoEngine&) = delete;

  /// \brief Process-wide shared engine (one ring for all sources).
  static IoEngine& Default();

  /// \brief Executes every read in `reads`, filling each request's
  /// `status` (OK only when exactly `length` bytes arrived). Returns
  /// the number of io_uring submission batches used — 0 means the
  /// pread fallback served the whole call. Requests with a negative
  /// fd or null dst fail with kInvalidArgument; other requests in the
  /// batch still run.
  uint64_t ReadBatch(std::vector<IoReadRequest>* reads)
      GREPAIR_LOCKS_EXCLUDED(ring_mu_);

  /// \brief True when the io_uring probe succeeded on this kernel (and
  /// the fallback is not forced).
  bool uring_available() const;

  /// \brief Test hook: route every ReadBatch through the pread
  /// fallback regardless of kernel support.
  void set_force_fallback(bool force) {
    force_fallback_.store(force, std::memory_order_relaxed);
  }

 private:
  struct Ring;  // the mmap'd submission/completion rings (io_engine.cc)

  void ProbeOnce() GREPAIR_LOCKS_EXCLUDED(probe_mu_, ring_mu_);

  std::atomic<bool> probed_{false};
  std::atomic<bool> available_{false};
  std::atomic<bool> force_fallback_{false};

  Mutex probe_mu_;  // serializes the one-time probe
  // One ring per engine; a batch holds the lock across its whole
  // submission round (that amortization is the point).
  Mutex ring_mu_;
  std::unique_ptr<Ring> ring_ GREPAIR_GUARDED_BY(ring_mu_);
};

}  // namespace grepair

#endif  // GREPAIR_UTIL_IO_ENGINE_H_
