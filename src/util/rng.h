// Deterministic pseudo-random number generation for workload synthesis.
//
// All dataset generators and randomized property tests seed from explicit
// constants so that every bench table and test run is reproducible
// bit-for-bit across machines (std::mt19937 distributions are not
// guaranteed identical across standard libraries, so we implement the
// distributions we need on top of SplitMix64/xoshiro256**).

#ifndef GREPAIR_UTIL_RNG_H_
#define GREPAIR_UTIL_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace grepair {

/// \brief SplitMix64 step; used for seeding and hashing.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97f4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// \brief xoshiro256** deterministic PRNG with explicit distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(&sm);
  }

  /// \brief Uniform 64-bit value.
  uint64_t Next() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// \brief Uniform integer in [0, bound); bound must be positive.
  uint64_t UniformBounded(uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    UniformBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// \brief Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// \brief Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// \brief Geometric-ish value: number of failures before success(p),
  /// capped at `cap` to bound workload sizes.
  uint32_t GeometricCapped(double p, uint32_t cap) {
    uint32_t v = 0;
    while (v < cap && !Bernoulli(p)) ++v;
    return v;
  }

  /// \brief Zipf-like rank in [0, n): rank r drawn with weight 1/(r+1)^s.
  ///
  /// Uses the inverse-CDF of the continuous approximation; adequate for
  /// generating skewed degree distributions in synthetic graphs.
  uint64_t Zipf(uint64_t n, double s) {
    assert(n > 0);
    if (n == 1) return 0;
    double u = UniformDouble();
    if (s == 1.0) {
      double h = u * LogApprox(static_cast<double>(n));
      double r = ExpApprox(h) - 1.0;
      uint64_t idx = static_cast<uint64_t>(r);
      return idx >= n ? n - 1 : idx;
    }
    double one_minus_s = 1.0 - s;
    double hn = (PowApprox(static_cast<double>(n), one_minus_s) - 1.0) /
                one_minus_s;
    double r = PowApprox(u * hn * one_minus_s + 1.0, 1.0 / one_minus_s) - 1.0;
    uint64_t idx = static_cast<uint64_t>(r);
    return idx >= n ? n - 1 : idx;
  }

  /// \brief In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  // Thin wrappers so <cmath> stays out of this header's public surface.
  static double LogApprox(double x);
  static double ExpApprox(double x);
  static double PowApprox(double x, double y);

  uint64_t s_[4];
};

}  // namespace grepair

#endif  // GREPAIR_UTIL_RNG_H_
