// Bump allocator for decode scratch and decoded-form storage.
//
// A shard fault used to materialize its adjacency as ~2n heap-owned
// std::vectors (one per node per direction); the allocator traffic
// dominated the decode once the Elias path went word-at-a-time. An
// Arena turns that into one (or a few) block allocations: callers
// carve arrays out of the block and the whole decoded form is freed in
// one shot when the owner dies. No per-object destructors run — only
// trivially-destructible payloads belong here.

#ifndef GREPAIR_UTIL_ARENA_H_
#define GREPAIR_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace grepair {

/// \brief Append-only block allocator; everything is freed together
/// when the arena is destroyed. Not thread-safe.
class Arena {
 public:
  /// \brief `reserve_bytes` sizes the first block; sizing it to the
  /// total need (computable for CSR layouts after a counting pass)
  /// makes the whole arena a single allocation.
  explicit Arena(size_t reserve_bytes = kDefaultBlockBytes) {
    AddBlock(reserve_bytes < kMinBlockBytes ? kMinBlockBytes
                                            : reserve_bytes);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// \brief Zero-initialized array of `n` Ts carved from the arena.
  /// Returns a valid (dereferenceable-for-zero-length) pointer even
  /// for n == 0.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible<T>::value,
                  "arena never runs destructors");
    void* p = AllocateRaw(n * sizeof(T), alignof(T));
    T* arr = static_cast<T*>(p);
    for (size_t i = 0; i < n; ++i) arr[i] = T();
    return arr;
  }

  /// \brief Total bytes handed out (the decoded form's footprint for
  /// cache accounting; block slack is not counted).
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// \brief Total bytes held by the arena's blocks.
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  static constexpr size_t kDefaultBlockBytes = 4096;
  static constexpr size_t kMinBlockBytes = 64;

  void AddBlock(size_t bytes) {
    blocks_.emplace_back(new uint8_t[bytes]);
    cur_ = blocks_.back().get();
    end_ = cur_ + bytes;
    bytes_reserved_ += bytes;
  }

  void* AllocateRaw(size_t bytes, size_t align) {
    uintptr_t p = reinterpret_cast<uintptr_t>(cur_);
    size_t pad = (align - p % align) % align;
    if (bytes + pad > static_cast<size_t>(end_ - cur_)) {
      // New block: doubling growth, large requests get their own block.
      size_t next = bytes_reserved_ < bytes ? bytes : bytes_reserved_;
      AddBlock(next < kMinBlockBytes ? kMinBlockBytes : next + align);
      p = reinterpret_cast<uintptr_t>(cur_);
      pad = (align - p % align) % align;
    }
    cur_ += pad;
    void* out = cur_;
    cur_ += bytes;
    bytes_allocated_ += bytes;
    return out;
  }

  std::vector<std::unique_ptr<uint8_t[]>> blocks_;
  uint8_t* cur_ = nullptr;
  uint8_t* end_ = nullptr;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace grepair

#endif  // GREPAIR_UTIL_ARENA_H_
