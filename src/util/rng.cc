#include "src/util/rng.h"

#include <cmath>

namespace grepair {

double Rng::LogApprox(double x) { return std::log(x); }
double Rng::ExpApprox(double x) { return std::exp(x); }
double Rng::PowApprox(double x, double y) { return std::pow(x, y); }

}  // namespace grepair
