// Succinct rank/select bitvector and an Elias-Fano monotone-sequence
// index built on it.
//
// The query path addresses val(G) nodes through prefix-sum arrays
// (start-edge block bases, per-rule child block bases). Binary search
// over those arrays was the per-node cost driver; EliasFanoIndex
// replaces it with a high-bits bucket lookup (two Select0 calls on the
// upper-bits bitvector) plus a search over the handful of elements
// sharing the bucket — O(1) expected instead of O(log n), at ~2 bits
// per element over the information-theoretic minimum.
//
// RankSelectBitVector is the substrate: 512-bit superblock rank
// directory (same layout family as k2tree/bitvector.h) plus sampled
// select hints for both bit values, so Select1/Select0 scan at most a
// few superblocks. Bits are packed LSB-first within words, matching
// RankBitVector.

#ifndef GREPAIR_UTIL_RANK_SELECT_H_
#define GREPAIR_UTIL_RANK_SELECT_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace grepair {

/// \brief Immutable bit vector with O(1) Rank1 and sampled
/// Select1/Select0 after construction.
class RankSelectBitVector {
 public:
  RankSelectBitVector() = default;

  /// \brief Takes ownership of LSB-first packed `words` holding
  /// `num_bits` valid bits; trailing bits of the last word are
  /// ignored (masked internally, so callers may leave them dirty).
  RankSelectBitVector(std::vector<uint64_t> words, size_t num_bits)
      : words_(std::move(words)), size_(num_bits) {
    assert(words_.size() * 64 >= size_);
    // Mask the ragged tail once so Select0's inverted popcounts never
    // see garbage past the end.
    if (size_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (1ull << (size_ % 64)) - 1;
    }
    BuildDirectory();
  }

  bool Get(size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  size_t size() const { return size_; }
  size_t num_ones() const { return num_ones_; }
  size_t num_zeros() const { return size_ - num_ones_; }

  /// \brief Set bits in positions [0, i).
  size_t Rank1(size_t i) const {
    size_t word = i / 64;
    size_t super = word / kWordsPerSuper;
    size_t rank = super_[super];
    for (size_t w = super * kWordsPerSuper; w < word; ++w) {
      rank += static_cast<size_t>(__builtin_popcountll(words_[w]));
    }
    if (i % 64 != 0) {
      rank += static_cast<size_t>(
          __builtin_popcountll(words_[word] & ((1ull << (i % 64)) - 1)));
    }
    return rank;
  }

  /// \brief Position of the (k+1)-th set bit (k zero-indexed);
  /// requires k < num_ones().
  size_t Select1(size_t k) const { return SelectImpl(k, /*ones=*/true); }

  /// \brief Position of the (k+1)-th clear bit (k zero-indexed);
  /// requires k < num_zeros().
  size_t Select0(size_t k) const { return SelectImpl(k, /*ones=*/false); }

  size_t MemoryBytes() const {
    return (words_.size() + super_.size()) * 8 +
           (sel1_sample_.size() + sel0_sample_.size()) * 4;
  }

 private:
  static constexpr size_t kWordsPerSuper = 8;   // 512-bit superblocks
  static constexpr size_t kSelectSample = 256;  // one hint per 256 hits

  // Bits of `value` polarity in words_[w], counting only positions
  // < size_ (zeros past the end must not exist).
  uint64_t PolarityWord(size_t w, bool ones) const {
    uint64_t word = ones ? words_[w] : ~words_[w];
    size_t base = w * 64;
    if (base + 64 > size_) {
      word &= size_ > base ? (1ull << (size_ - base)) - 1 : 0;
    }
    return word;
  }

  void BuildDirectory() {
    size_t num_super = words_.size() / kWordsPerSuper + 1;
    super_.assign(num_super + 1, 0);
    size_t ones = 0;
    for (size_t w = 0; w < words_.size(); ++w) {
      if (w % kWordsPerSuper == 0) super_[w / kWordsPerSuper] = ones;
      ones += static_cast<size_t>(__builtin_popcountll(words_[w]));
    }
    // Boundaries at or past the last word hold the grand total; a
    // boundary inside the word array was already set by the loop.
    for (size_t s = (words_.size() + kWordsPerSuper - 1) / kWordsPerSuper;
         s <= num_super; ++s) {
      super_[s] = ones;
    }
    num_ones_ = ones;
    // Select hints: superblock index containing every kSelectSample-th
    // hit of each polarity.
    BuildSelectSamples(&sel1_sample_, /*ones=*/true);
    BuildSelectSamples(&sel0_sample_, /*ones=*/false);
  }

  // Ones (or zeros) strictly before superblock boundary s.
  size_t SuperCount(size_t s, bool ones) const {
    size_t boundary = s * kWordsPerSuper * 64;
    if (boundary > size_) boundary = size_;
    return ones ? super_[s] : boundary - super_[s];
  }

  void BuildSelectSamples(std::vector<uint32_t>* samples, bool ones) {
    samples->clear();
    size_t total = ones ? num_ones_ : size_ - num_ones_;
    size_t num_super = super_.size() - 1;
    size_t s = 0;
    for (size_t k = 0; k < total; k += kSelectSample) {
      while (s + 1 <= num_super && SuperCount(s + 1, ones) <= k) ++s;
      samples->push_back(static_cast<uint32_t>(s));
    }
  }

  size_t SelectImpl(size_t k, bool ones) const {
    assert(k < (ones ? num_ones_ : size_ - num_ones_));
    const std::vector<uint32_t>& samples = ones ? sel1_sample_ : sel0_sample_;
    size_t s = samples[k / kSelectSample];
    size_t num_super = super_.size() - 1;
    while (s + 1 <= num_super && SuperCount(s + 1, ones) <= k) ++s;
    size_t rank = SuperCount(s, ones);
    size_t w = s * kWordsPerSuper;
    for (;; ++w) {
      uint64_t word = PolarityWord(w, ones);
      size_t count = static_cast<size_t>(__builtin_popcountll(word));
      if (rank + count > k) {
        // The hit is inside this word: walk bytes, then bits.
        size_t r = k - rank;
        size_t bit = 0;
        for (;;) {
          size_t byte_count = static_cast<size_t>(
              __builtin_popcountll(word & 0xFF));
          if (r < byte_count) break;
          r -= byte_count;
          word >>= 8;
          bit += 8;
        }
        for (;; ++bit, word >>= 1) {
          if (word & 1u) {
            if (r == 0) return w * 64 + bit;
            --r;
          }
        }
      }
      rank += count;
    }
  }

  std::vector<uint64_t> words_;
  std::vector<size_t> super_;  // ones before each superblock boundary
  std::vector<uint32_t> sel1_sample_;
  std::vector<uint32_t> sel0_sample_;
  size_t size_ = 0;
  size_t num_ones_ = 0;
};

/// \brief Elias-Fano encoding of a non-decreasing uint64 sequence with
/// O(1)-expected predecessor queries — the node-map replacement for
/// std::upper_bound over prefix-sum arrays.
class EliasFanoIndex {
 public:
  EliasFanoIndex() = default;

  /// \brief Builds from `sorted` (non-decreasing; duplicates allowed).
  explicit EliasFanoIndex(const std::vector<uint64_t>& sorted) {
    n_ = sorted.size();
    if (n_ == 0) return;
    const uint64_t universe = sorted.back();
    // Canonical parameter: low bits ~ log2(universe / n) makes the
    // upper-bits vector ~2n bits.
    const uint64_t per = universe / n_;
    low_bits_ = per >= 2 ? BitLengthLocal(per) - 1 : 0;
    max_upper_ = universe >> low_bits_;

    const size_t upper_bits = n_ + static_cast<size_t>(max_upper_) + 1;
    std::vector<uint64_t> upper_words((upper_bits + 63) / 64, 0);
    if (low_bits_ > 0) {
      low_words_.assign((n_ * static_cast<size_t>(low_bits_) + 63) / 64, 0);
    }
    uint64_t prev = 0;
    (void)prev;  // read only by the assert below (compiled out in NDEBUG)
    for (size_t i = 0; i < n_; ++i) {
      const uint64_t v = sorted[i];
      assert(v >= prev);
      prev = v;
      const size_t pos = i + static_cast<size_t>(v >> low_bits_);
      upper_words[pos / 64] |= 1ull << (pos % 64);
      if (low_bits_ > 0) SetLow(i, v & ((1ull << low_bits_) - 1));
    }
    upper_ = RankSelectBitVector(std::move(upper_words), upper_bits);
  }

  size_t size() const { return n_; }

  /// \brief Random access: the i-th value.
  uint64_t Get(size_t i) const {
    const uint64_t upper = static_cast<uint64_t>(upper_.Select1(i) - i);
    return (upper << low_bits_) | Low(i);
  }

  /// \brief Largest i with value[i] <= x: the predecessor query PathOf
  /// descends on. Returns false when x < value[0] (no predecessor).
  bool PredecessorOrEqual(uint64_t x, size_t* index, uint64_t* value) const {
    if (n_ == 0) return false;
    const uint64_t hb = x >> low_bits_;
    if (hb > max_upper_) {
      *index = n_ - 1;
      *value = Get(n_ - 1);
      return true;
    }
    // count(upper <= k) = Select0(k) - k: elements sharing bucket hb
    // live in [begin, end).
    const size_t end = upper_.Select0(static_cast<size_t>(hb)) -
                       static_cast<size_t>(hb);
    const size_t begin =
        hb == 0 ? 0
                : upper_.Select0(static_cast<size_t>(hb) - 1) -
                      (static_cast<size_t>(hb) - 1);
    if (begin < end) {
      // All of [begin, end) share the high bits hb; binary-search the
      // low bits (duplicate-heavy buckets stay logarithmic).
      const uint64_t xlow = x & LowMask();
      size_t lo = begin, hi = end;  // first index with low > xlow
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (Low(mid) <= xlow) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo > begin) {
        *index = lo - 1;
        *value = (hb << low_bits_) | Low(lo - 1);
        return true;
      }
    }
    if (begin == 0) return false;  // x precedes every element
    *index = begin - 1;
    *value = Get(begin - 1);
    return true;
  }

  size_t MemoryBytes() const {
    return low_words_.size() * 8 + upper_.MemoryBytes();
  }

 private:
  static int BitLengthLocal(uint64_t v) {
    return v == 0 ? 0 : 64 - __builtin_clzll(v);
  }

  uint64_t LowMask() const {
    return low_bits_ == 0 ? 0 : (1ull << low_bits_) - 1;
  }

  uint64_t Low(size_t i) const {
    if (low_bits_ == 0) return 0;
    const size_t bitpos = i * static_cast<size_t>(low_bits_);
    const size_t word = bitpos / 64;
    const int off = static_cast<int>(bitpos % 64);
    uint64_t v = low_words_[word] >> off;
    if (off + low_bits_ > 64) v |= low_words_[word + 1] << (64 - off);
    return v & LowMask();
  }

  void SetLow(size_t i, uint64_t v) {
    const size_t bitpos = i * static_cast<size_t>(low_bits_);
    const size_t word = bitpos / 64;
    const int off = static_cast<int>(bitpos % 64);
    low_words_[word] |= v << off;
    if (off + low_bits_ > 64) low_words_[word + 1] |= v >> (64 - off);
  }

  size_t n_ = 0;
  int low_bits_ = 0;
  uint64_t max_upper_ = 0;
  std::vector<uint64_t> low_words_;
  RankSelectBitVector upper_;
};

}  // namespace grepair

#endif  // GREPAIR_UTIL_RANK_SELECT_H_
