#include "src/util/socket.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#if defined(_WIN32)
#define GREPAIR_HAVE_SOCKETS 0
#else
#define GREPAIR_HAVE_SOCKETS 1
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace grepair {

namespace {

std::string ErrnoText() { return std::string(std::strerror(errno)); }

#if GREPAIR_HAVE_SOCKETS
bool WouldBlock(int err) { return err == EAGAIN || err == EWOULDBLOCK; }
#endif

}  // namespace

#if GREPAIR_HAVE_SOCKETS

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Status Socket::SetTimeouts(int millis) {
  if (fd_ < 0) return Status::Internal("SetTimeouts on an invalid socket");
  struct timeval tv;
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  if (setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::Internal("setsockopt timeout: " + ErrnoText());
  }
  return Status::OK();
}

Status Socket::SendAll(ByteSpan bytes) {
  size_t off = 0;
  while (off < bytes.size) {
    ssize_t n = ::send(fd_, bytes.data + off, bytes.size - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(
          (WouldBlock(errno) ? "send timed out" : "send failed") +
          std::string(" after ") + std::to_string(off) + " of " +
          std::to_string(bytes.size) + " byte(s): " + ErrnoText());
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::RecvAll(uint8_t* out, size_t n, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  size_t off = 0;
  while (off < n) {
    ssize_t got = ::recv(fd_, out + off, n - off, 0);
    if (got == 0) {
      if (off == 0 && clean_eof != nullptr) *clean_eof = true;
      return Status::Unavailable(
          "connection closed by peer after " + std::to_string(off) +
          " of " + std::to_string(n) + " byte(s)");
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(
          (WouldBlock(errno) ? "recv timed out" : "recv failed") +
          std::string(" after ") + std::to_string(off) + " of " +
          std::to_string(n) + " byte(s): " + ErrnoText());
    }
    off += static_cast<size_t>(got);
  }
  return Status::OK();
}

namespace {

// Shared getaddrinfo walk for connect and listen.
Result<Socket> OpenResolved(const std::string& host, uint16_t port,
                            bool listening, int timeout_ms) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (listening) hints.ai_flags = AI_PASSIVE;
  struct addrinfo* res = nullptr;
  int rc = getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                       &res);
  if (rc != 0) {
    return Status::Unavailable("cannot resolve " + host + ": " +
                               gai_strerror(rc));
  }
  Status last = Status::Unavailable("no addresses for " + host);
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Socket s(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!s.valid()) {
      last = Status::Internal("socket(): " + ErrnoText());
      continue;
    }
    if (listening) {
      int one = 1;
      setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (bind(s.fd(), ai->ai_addr, ai->ai_addrlen) != 0 ||
          listen(s.fd(), 64) != 0) {
        last = Status::Unavailable("cannot listen on " + host + ":" +
                                   std::to_string(port) + ": " +
                                   ErrnoText());
        continue;
      }
    } else {
      // SO_SNDTIMEO bounds connect() itself on Linux, so a dead remote
      // fails within the deadline instead of the kernel's default.
      if (timeout_ms > 0) {
        Status t = s.SetTimeouts(timeout_ms);
        if (!t.ok()) {
          last = t;
          continue;
        }
      }
      if (connect(s.fd(), ai->ai_addr, ai->ai_addrlen) != 0) {
        last = Status::Unavailable("cannot connect to " + host + ":" +
                                   std::to_string(port) + ": " +
                                   ErrnoText());
        continue;
      }
    }
    freeaddrinfo(res);
    return s;
  }
  freeaddrinfo(res);
  return last;
}

}  // namespace

Result<Socket> Socket::ConnectTcp(const std::string& host, uint16_t port,
                                  int timeout_ms) {
  return OpenResolved(host, port, /*listening=*/false, timeout_ms);
}

Result<Socket> Socket::ListenTcp(const std::string& host, uint16_t port,
                                 uint16_t* bound_port) {
  auto s = OpenResolved(host, port, /*listening=*/true, 0);
  if (!s.ok()) return s.status();
  if (bound_port != nullptr) {
    struct sockaddr_storage addr;
    socklen_t len = sizeof(addr);
    if (getsockname(s.value().fd(),
                    reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
      return Status::Internal("getsockname: " + ErrnoText());
    }
    if (addr.ss_family == AF_INET) {
      *bound_port = ntohs(
          reinterpret_cast<struct sockaddr_in*>(&addr)->sin_port);
    } else if (addr.ss_family == AF_INET6) {
      *bound_port = ntohs(
          reinterpret_cast<struct sockaddr_in6*>(&addr)->sin6_port);
    } else {
      return Status::Internal("unexpected bound address family");
    }
  }
  return s;
}

Result<Socket> Socket::Accept() const {
  while (true) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return Status::Unavailable("accept: " + ErrnoText());
  }
}

#else  // !GREPAIR_HAVE_SOCKETS

namespace {
Status NoSockets() {
  return Status::Unimplemented("no socket support on this platform");
}
}  // namespace

void Socket::Close() { fd_ = -1; }
void Socket::ShutdownBoth() {}
Status Socket::SetTimeouts(int) { return NoSockets(); }
Status Socket::SendAll(ByteSpan) { return NoSockets(); }
Status Socket::RecvAll(uint8_t*, size_t, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  return NoSockets();
}
Result<Socket> Socket::ConnectTcp(const std::string&, uint16_t, int) {
  return NoSockets();
}
Result<Socket> Socket::ListenTcp(const std::string&, uint16_t, uint16_t*) {
  return NoSockets();
}
Result<Socket> Socket::Accept() const { return NoSockets(); }

#endif  // GREPAIR_HAVE_SOCKETS

namespace {

bool ParsePortText(const std::string& text, uint16_t* port) {
  if (text.empty() || text[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long value = std::strtoul(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' || value == 0 ||
      value > 65535) {
    return false;
  }
  *port = static_cast<uint16_t>(value);
  return true;
}

}  // namespace

Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port) {
  // Bracketed IPv6 literal, "[::1]:9000": the port separator is the
  // colon after the bracket and the brackets are stripped for
  // getaddrinfo.
  if (!spec.empty() && spec[0] == '[') {
    size_t close = spec.find(']');
    // close == 1 is the empty bracket pair "[]:9000" — no host to
    // dial; rejected like any other malformed spec.
    if (close == std::string::npos || close == 1 ||
        close + 1 >= spec.size() || spec[close + 1] != ':' ||
        !ParsePortText(spec.substr(close + 2), port)) {
      return Status::InvalidArgument("expected [host]:port, got '" + spec +
                                     "'");
    }
    *host = spec.substr(1, close - 1);
    return Status::OK();
  }
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      !ParsePortText(spec.substr(colon + 1), port)) {
    return Status::InvalidArgument("expected host:port, got '" + spec +
                                   "'");
  }
  *host = spec.substr(0, colon);
  return Status::OK();
}

}  // namespace grepair
