// Lightweight Status / Result error-handling primitives.
//
// Public APIs that can fail for data-dependent reasons (parsing, decoding,
// validation) return Status or Result<T> instead of throwing; internal
// invariant violations use assertions. This mirrors the RocksDB/Arrow
// convention for database-engine code.

#ifndef GREPAIR_UTIL_STATUS_H_
#define GREPAIR_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace grepair {

/// \brief Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kCorruption,
  kNotFound,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,
};

/// \brief Result status of a fallible operation.
///
/// A Status is either OK (the default) or carries a code and a message.
/// It is cheap to copy in the OK case and must be inspected by callers
/// (`[[nodiscard]]`).
class [[nodiscard]] Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// \brief Transient external failure (network timeout, closed
  /// connection, refused endpoint): retrying against a healthy peer
  /// may succeed, unlike kCorruption, which says the bytes are bad.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief Human-readable rendering, e.g. "Corruption: bad magic".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string name;
    switch (code_) {
      case StatusCode::kOk: name = "OK"; break;
      case StatusCode::kInvalidArgument: name = "InvalidArgument"; break;
      case StatusCode::kCorruption: name = "Corruption"; break;
      case StatusCode::kNotFound: name = "NotFound"; break;
      case StatusCode::kOutOfRange: name = "OutOfRange"; break;
      case StatusCode::kUnimplemented: name = "Unimplemented"; break;
      case StatusCode::kInternal: name = "Internal"; break;
      case StatusCode::kUnavailable: name = "Unavailable"; break;
    }
    return name + ": " + message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Value-or-error union returned by fallible constructors.
///
/// Holds either a value of type T or a non-OK Status. Access to the value
/// of a failed Result is an assertion failure.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// \brief Moves the value out; asserts on failed results.
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

// Propagates a non-OK status to the caller.
#define GREPAIR_RETURN_IF_ERROR(expr)              \
  do {                                             \
    ::grepair::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace grepair

#endif  // GREPAIR_UTIL_STATUS_H_
