// Disjoint-set union with path halving and union by size.
//
// Used for connected-component discovery (virtual-edge pass of gRePair,
// Section III-A) and for the component-counting speed-up query
// (Section V), where per-rule partitions of external nodes are merged
// bottom-up through the grammar.

#ifndef GREPAIR_UTIL_UNION_FIND_H_
#define GREPAIR_UTIL_UNION_FIND_H_

#include <cstdint>
#include <numeric>
#include <vector>

namespace grepair {

/// \brief Standard disjoint-set forest over elements 0..n-1.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  /// \brief Representative of x's set (with path halving).
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// \brief Merges the sets of a and b; returns true if they were distinct.
  bool Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  /// \brief True if a and b are in the same set.
  bool Same(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  /// \brief Number of elements in x's set.
  uint32_t SetSize(uint32_t x) { return size_[Find(x)]; }

  size_t num_elements() const { return parent_.size(); }

  /// \brief Number of distinct sets (O(n)).
  size_t CountSets() {
    size_t count = 0;
    for (uint32_t i = 0; i < parent_.size(); ++i) {
      if (Find(i) == i) ++count;
    }
    return count;
  }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
};

}  // namespace grepair

#endif  // GREPAIR_UTIL_UNION_FIND_H_
