// k^2-trees (Brisaboa, Ladra & Navarro): compact adjacency/bit-matrix
// representation with in/out-neighbor queries.
//
// The matrix is padded to a power of k and recursively split into k^2
// quadrants; an all-zero quadrant is a 0-bit, a non-empty quadrant is a
// 1-bit whose children continue one level down, and the deepest level
// stores individual cells. Bits are laid out level by level: internal
// levels in T, the last level in L; the children of the node whose set
// bit is the j-th 1 of T start at block j+1 (rank-based navigation).
//
// Used three ways in this repo:
//  * the paper's gRePair serializer encodes the (incompressible) start
//    graph as one k^2-tree per label (Section III-C2),
//  * the plain "k2-tree" baseline compressor (Section IV) stores the
//    whole input graph this way,
//  * hyperedge labels are stored as node x edge incidence matrices
//    (rectangular matrices are supported via padding).

#ifndef GREPAIR_K2TREE_K2TREE_H_
#define GREPAIR_K2TREE_K2TREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/k2tree/bitvector.h"
#include "src/util/bit_stream.h"
#include "src/util/status.h"

namespace grepair {

/// \brief Immutable k^2-tree over an num_rows x num_cols 0/1 matrix.
class K2Tree {
 public:
  K2Tree() = default;

  /// \brief Builds from the set cells (row, col); duplicates are merged.
  /// `k` >= 2; the paper uses k = 2 ("as this provides the best
  /// compression").
  static K2Tree Build(uint32_t num_rows, uint32_t num_cols,
                      std::vector<std::pair<uint32_t, uint32_t>> cells,
                      int k = 2);

  /// \brief Membership query.
  bool Contains(uint32_t row, uint32_t col) const;

  /// \brief Columns set in `row` (out-neighbors for adjacency matrices).
  std::vector<uint32_t> RowNeighbors(uint32_t row) const;

  /// \brief Rows set in `col` (in-neighbors for adjacency matrices).
  std::vector<uint32_t> ColNeighbors(uint32_t col) const;

  /// \brief All set cells in row-major order.
  std::vector<std::pair<uint32_t, uint32_t>> AllCells() const;

  uint64_t num_cells() const { return num_cells_; }
  uint32_t num_rows() const { return num_rows_; }
  uint32_t num_cols() const { return num_cols_; }
  int k() const { return k_; }

  /// \brief Structure bits |T| + |L| (the standard k^2-tree size metric).
  size_t StorageBits() const { return t_.size() + l_.size(); }

  /// \brief Appends a self-delimiting encoding (header + T + L bits).
  void Serialize(BitWriter* writer) const;

  /// \brief Reads an encoding produced by Serialize.
  static Result<K2Tree> Deserialize(BitReader* reader);

 private:
  int k_ = 2;
  uint32_t num_rows_ = 0;
  uint32_t num_cols_ = 0;
  uint64_t size_ = 1;  ///< padded square dimension (power of k)
  uint64_t num_cells_ = 0;
  RankBitVector t_;
  RankBitVector l_;
};

}  // namespace grepair

#endif  // GREPAIR_K2TREE_K2TREE_H_
