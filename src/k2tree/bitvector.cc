#include "src/k2tree/bitvector.h"

#include <cassert>

namespace grepair {

void RankBitVector::Finalize() {
  super_ranks_.clear();
  super_ranks_.reserve(words_.size() / 8 + 1);
  uint64_t ones = 0;
  for (size_t w = 0; w < words_.size(); ++w) {
    if (w % 8 == 0) super_ranks_.push_back(ones);
    ones += static_cast<uint64_t>(__builtin_popcountll(words_[w]));
  }
  total_ones_ = ones;
}

size_t RankBitVector::Rank1(size_t i) const {
  assert(i <= size_);
  size_t word = i / 64;
  size_t super = word / 8;
  uint64_t ones = super < super_ranks_.size() ? super_ranks_[super] : total_ones_;
  for (size_t w = super * 8; w < word; ++w) {
    ones += static_cast<uint64_t>(__builtin_popcountll(words_[w]));
  }
  if (i % 64 != 0 && word < words_.size()) {
    ones += static_cast<uint64_t>(
        __builtin_popcountll(words_[word] & ((1ull << (i % 64)) - 1)));
  }
  return ones;
}

RankBitVector RankBitVector::FromWords(std::vector<uint64_t> words,
                                       size_t size) {
  RankBitVector bv;
  bv.words_ = std::move(words);
  bv.size_ = size;
  bv.Finalize();
  return bv;
}

}  // namespace grepair
