// Bit vector with constant-time rank support.
//
// Substrate of the k^2-tree (k2tree.h): navigation from an internal
// node to its children requires rank1 over the tree bitmap. We use a
// two-level directory (512-bit superblocks, 64-bit words) giving O(1)
// rank with ~6% space overhead, in the spirit of the rank structures
// used by Brisaboa et al.'s implementation.

#ifndef GREPAIR_K2TREE_BITVECTOR_H_
#define GREPAIR_K2TREE_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace grepair {

/// \brief Append-built bit vector with O(1) rank after Finalize().
class RankBitVector {
 public:
  RankBitVector() = default;

  /// \brief Appends one bit.
  void PushBack(bool bit) {
    size_t word = size_ / 64;
    if (word >= words_.size()) words_.push_back(0);
    if (bit) words_[word] |= 1ull << (size_ % 64);
    ++size_;
  }

  /// \brief Appends `nbits` (0..64) bits taken MSB-first from `word`:
  /// the first appended bit is bit 63. This is the word-at-a-time
  /// deserialization path — a 64-bit stream chunk lands as one
  /// bit-reversal plus one push instead of 64 PushBack calls; the
  /// unaligned/partial cases fall back to the per-bit loop.
  void PushWord(uint64_t word, size_t nbits) {
    if (nbits == 64 && size_ % 64 == 0) {
      words_.push_back(ReverseBits64(word));
      size_ += 64;
      return;
    }
    for (size_t j = 0; j < nbits; ++j) {
      PushBack((word >> (63 - j)) & 1u);
    }
  }

  /// \brief Random access.
  bool Get(size_t i) const { return (words_[i / 64] >> (i % 64)) & 1u; }

  size_t size() const { return size_; }

  /// \brief Number of set bits.
  size_t num_ones() const { return total_ones_; }

  /// \brief Builds the rank directory; call once after the last PushBack.
  void Finalize();

  /// \brief Number of set bits in positions [0, i). Requires Finalize().
  size_t Rank1(size_t i) const;

  /// \brief Approximate heap footprint in bytes (bits + directory).
  size_t MemoryBytes() const {
    return words_.size() * 8 + super_ranks_.size() * 8;
  }

  const std::vector<uint64_t>& words() const { return words_; }

  /// \brief Rebuilds from raw words (deserialization path).
  static RankBitVector FromWords(std::vector<uint64_t> words, size_t size);

 private:
  // Maps a stream-order (MSB-first) chunk onto the LSB-first internal
  // packing: swap adjacent bits, pairs, nibbles, then bytes.
  static uint64_t ReverseBits64(uint64_t v) {
    v = ((v >> 1) & 0x5555555555555555ull) |
        ((v & 0x5555555555555555ull) << 1);
    v = ((v >> 2) & 0x3333333333333333ull) |
        ((v & 0x3333333333333333ull) << 2);
    v = ((v >> 4) & 0x0F0F0F0F0F0F0F0Full) |
        ((v & 0x0F0F0F0F0F0F0F0Full) << 4);
    return __builtin_bswap64(v);
  }

  std::vector<uint64_t> words_;
  std::vector<uint64_t> super_ranks_;  // ones before each 8-word superblock
  size_t size_ = 0;
  size_t total_ones_ = 0;
};

}  // namespace grepair

#endif  // GREPAIR_K2TREE_BITVECTOR_H_
