#include "src/k2tree/k2tree.h"

#include <algorithm>
#include <cassert>

#include "src/util/elias.h"

namespace grepair {

namespace {

using Cell = std::pair<uint32_t, uint32_t>;

// Recursive level-ordered bit emission. `level_bits[d]` accumulates the
// bits of depth d. Cells are local to the current submatrix.
void BuildRec(std::vector<Cell>& cells, uint64_t size, int k, size_t depth,
              std::vector<std::vector<char>>* level_bits) {
  uint64_t sub = size / static_cast<uint64_t>(k);
  // Bucket cells into the k^2 quadrants (row-major quadrant order).
  std::vector<std::vector<Cell>> quads(static_cast<size_t>(k) * k);
  for (const Cell& c : cells) {
    uint32_t qr = static_cast<uint32_t>(c.first / sub);
    uint32_t qc = static_cast<uint32_t>(c.second / sub);
    quads[qr * k + qc].push_back(
        {static_cast<uint32_t>(c.first % sub),
         static_cast<uint32_t>(c.second % sub)});
  }
  if (depth >= level_bits->size()) level_bits->resize(depth + 1);
  for (auto& q : quads) {
    (*level_bits)[depth].push_back(q.empty() ? 0 : 1);
  }
  if (sub == 1) return;  // this was the leaf level: bits are cells
  for (auto& q : quads) {
    if (!q.empty()) BuildRec(q, sub, k, depth + 1, level_bits);
  }
}

}  // namespace

K2Tree K2Tree::Build(uint32_t num_rows, uint32_t num_cols,
                     std::vector<Cell> cells, int k) {
  assert(k >= 2);
  K2Tree tree;
  tree.k_ = k;
  tree.num_rows_ = num_rows;
  tree.num_cols_ = num_cols;

  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  tree.num_cells_ = cells.size();

  uint64_t need = std::max<uint64_t>({num_rows, num_cols, 1});
  uint64_t size = k;
  while (size < need) size *= static_cast<uint64_t>(k);
  tree.size_ = size;

  if (!cells.empty()) {
    std::vector<std::vector<char>> level_bits;
    BuildRec(cells, size, k, 0, &level_bits);
    // Internal levels -> T, deepest level -> L.
    for (size_t d = 0; d + 1 < level_bits.size(); ++d) {
      for (char b : level_bits[d]) tree.t_.PushBack(b != 0);
    }
    for (char b : level_bits.back()) tree.l_.PushBack(b != 0);
  }
  tree.t_.Finalize();
  tree.l_.Finalize();
  return tree;
}

bool K2Tree::Contains(uint32_t row, uint32_t col) const {
  if (num_cells_ == 0 || row >= num_rows_ || col >= num_cols_) return false;
  uint64_t size = size_;
  uint64_t block = 0;
  uint64_t r = row, c = col;
  const uint64_t kk = static_cast<uint64_t>(k_) * k_;
  for (;;) {
    uint64_t sub = size / k_;
    uint64_t q = (r / sub) * k_ + (c / sub);
    uint64_t p = block + q;
    if (p >= t_.size()) {
      uint64_t lp = p - t_.size();
      return lp < l_.size() && l_.Get(lp);
    }
    if (!t_.Get(p)) return false;
    block = t_.Rank1(p + 1) * kk;
    r %= sub;
    c %= sub;
    size = sub;
  }
}

namespace {

// Generic DFS over one axis: visits all set cells with the given fixed
// coordinate. `row_major` selects whether the fixed coordinate is the
// row (collect columns) or the column (collect rows).
struct AxisQuery {
  const RankBitVector* t;
  const RankBitVector* l;
  int k;
  bool row_major;
  uint32_t limit;  // exclusive bound on the collected coordinate
  std::vector<uint32_t>* out;

  void Recurse(uint64_t block, uint64_t size, uint64_t fixed,
               uint64_t base) const {
    uint64_t sub = size / k;
    uint64_t fq = fixed / sub;
    const uint64_t kk = static_cast<uint64_t>(k) * k;
    for (int i = 0; i < k; ++i) {
      uint64_t q = row_major ? fq * k + i : static_cast<uint64_t>(i) * k + fq;
      uint64_t p = block + q;
      uint64_t coord_base = base + static_cast<uint64_t>(i) * sub;
      if (p >= t->size()) {
        uint64_t lp = p - t->size();
        if (lp < l->size() && l->Get(lp) && coord_base < limit) {
          out->push_back(static_cast<uint32_t>(coord_base));
        }
        continue;
      }
      if (!t->Get(p)) continue;
      Recurse(t->Rank1(p + 1) * kk, sub, fixed % sub, coord_base);
    }
  }
};

}  // namespace

std::vector<uint32_t> K2Tree::RowNeighbors(uint32_t row) const {
  std::vector<uint32_t> out;
  if (num_cells_ == 0 || row >= num_rows_) return out;
  AxisQuery q{&t_, &l_, k_, true, num_cols_, &out};
  q.Recurse(0, size_, row, 0);
  return out;
}

std::vector<uint32_t> K2Tree::ColNeighbors(uint32_t col) const {
  std::vector<uint32_t> out;
  if (num_cells_ == 0 || col >= num_cols_) return out;
  AxisQuery q{&t_, &l_, k_, false, num_rows_, &out};
  q.Recurse(0, size_, col, 0);
  return out;
}

namespace {

void CollectCells(const RankBitVector& t, const RankBitVector& l, int k,
                  uint64_t block, uint64_t size, uint64_t row_base,
                  uint64_t col_base,
                  std::vector<std::pair<uint32_t, uint32_t>>* out) {
  uint64_t sub = size / k;
  const uint64_t kk = static_cast<uint64_t>(k) * k;
  for (int qr = 0; qr < k; ++qr) {
    for (int qc = 0; qc < k; ++qc) {
      uint64_t p = block + static_cast<uint64_t>(qr) * k + qc;
      uint64_t rb = row_base + static_cast<uint64_t>(qr) * sub;
      uint64_t cb = col_base + static_cast<uint64_t>(qc) * sub;
      if (p >= t.size()) {
        uint64_t lp = p - t.size();
        if (lp < l.size() && l.Get(lp)) {
          out->push_back({static_cast<uint32_t>(rb),
                          static_cast<uint32_t>(cb)});
        }
        continue;
      }
      if (!t.Get(p)) continue;
      CollectCells(t, l, k, t.Rank1(p + 1) * kk, sub, rb, cb, out);
    }
  }
}

}  // namespace

std::vector<std::pair<uint32_t, uint32_t>> K2Tree::AllCells() const {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  if (num_cells_ == 0) return out;
  out.reserve(num_cells_);
  CollectCells(t_, l_, k_, 0, size_, 0, 0, &out);
  // Build() never sets bits in the padding beyond (num_rows, num_cols),
  // but a deserialized tree from corrupt bytes can; dropping such cells
  // keeps every consumer's coordinate arithmetic in bounds.
  out.erase(std::remove_if(out.begin(), out.end(),
                           [this](const std::pair<uint32_t, uint32_t>& c) {
                             return c.first >= num_rows_ ||
                                    c.second >= num_cols_;
                           }),
            out.end());
  std::sort(out.begin(), out.end());
  return out;
}

void K2Tree::Serialize(BitWriter* writer) const {
  EliasDeltaEncode(static_cast<uint64_t>(k_), writer);
  EliasDeltaEncode(num_rows_ + 1, writer);
  EliasDeltaEncode(num_cols_ + 1, writer);
  EliasDeltaEncode(num_cells_ + 1, writer);
  EliasDeltaEncode(t_.size() + 1, writer);
  EliasDeltaEncode(l_.size() + 1, writer);
  for (size_t i = 0; i < t_.size(); ++i) writer->PutBit(t_.Get(i));
  for (size_t i = 0; i < l_.size(); ++i) writer->PutBit(l_.Get(i));
}

Result<K2Tree> K2Tree::Deserialize(BitReader* reader) {
  uint64_t k = 0, rows = 0, cols = 0, cells = 0, t_bits = 0, l_bits = 0;
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(reader, &k));
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(reader, &rows));
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(reader, &cols));
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(reader, &cells));
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(reader, &t_bits));
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(reader, &l_bits));
  if (k < 2 || k > 16 || rows == 0 || cols == 0 || cells == 0 ||
      t_bits == 0 || l_bits == 0) {
    return Status::Corruption("bad k2-tree header");
  }
  K2Tree tree;
  tree.k_ = static_cast<int>(k);
  tree.num_rows_ = static_cast<uint32_t>(rows - 1);
  tree.num_cols_ = static_cast<uint32_t>(cols - 1);
  tree.num_cells_ = cells - 1;
  uint64_t need =
      std::max<uint64_t>({tree.num_rows_, tree.num_cols_, 1});
  uint64_t size = k;
  while (size < need) size *= k;
  tree.size_ = size;
  // Bitmaps load in 64-bit chunks: one bounds-checked ReadBits + one
  // PushWord per word instead of a ReadBit/PushBack pair per bit. The
  // per-bit loop is retained behind the scalar-oracle switch so the
  // differential tests (and the decode_throughput baseline) exercise
  // the whole bit-at-a-time path, not just the Elias codes.
  auto read_bitmap = [&](RankBitVector* bv, uint64_t nbits) -> Status {
    if (EliasDecodeScalarForTest()) {
      bool bit = false;
      for (uint64_t i = 0; i < nbits; ++i) {
        GREPAIR_RETURN_IF_ERROR(reader->ReadBit(&bit));
        bv->PushBack(bit);
      }
      return Status::OK();
    }
    uint64_t i = 0;
    uint64_t w = 0;
    for (; i + 64 <= nbits; i += 64) {
      GREPAIR_RETURN_IF_ERROR(reader->ReadBits(64, &w));
      bv->PushWord(w, 64);
    }
    const int rem = static_cast<int>(nbits - i);
    if (rem > 0) {
      GREPAIR_RETURN_IF_ERROR(reader->ReadBits(rem, &w));
      // ReadBits returns the bits right-aligned; PushWord wants the
      // first-read bit at position 63.
      bv->PushWord(w << (64 - rem), static_cast<size_t>(rem));
    }
    return Status::OK();
  };
  GREPAIR_RETURN_IF_ERROR(read_bitmap(&tree.t_, t_bits - 1));
  GREPAIR_RETURN_IF_ERROR(read_bitmap(&tree.l_, l_bits - 1));
  tree.t_.Finalize();
  tree.l_.Finalize();
  return tree;
}

}  // namespace grepair
