#include "src/serve/stats.h"

#include <utility>

#include "src/net/frame.h"
#include "src/serve/registry.h"
#include "src/util/socket.h"

namespace grepair {
namespace serve {

std::vector<uint8_t> EncodeStatsBody(uint64_t req_id,
                                     const ServerStatsSnapshot& snapshot) {
  std::vector<uint8_t> body;
  PutU64LE(req_id, &body);
  PutU64LE(snapshot.connections, &body);
  PutU64LE(snapshot.requests, &body);
  PutU64LE(snapshot.bytes_sent, &body);
  PutU64LE(snapshot.errors, &body);
  PutU32LE(static_cast<uint32_t>(snapshot.corpora.size()), &body);
  for (const CorpusServeStats& corpus : snapshot.corpora) {
    body.push_back(static_cast<uint8_t>(corpus.name.size()));
    body.insert(body.end(), corpus.name.begin(), corpus.name.end());
    body.push_back(static_cast<uint8_t>(corpus.inner_name.size()));
    body.insert(body.end(), corpus.inner_name.begin(),
                corpus.inner_name.end());
    PutU64LE(corpus.num_nodes, &body);
    PutU64LE(corpus.requests, &body);
    PutU64LE(corpus.histogram_epoch, &body);
    PutU32LE(static_cast<uint32_t>(corpus.shard_hits.size()), &body);
    for (size_t i = 0; i < corpus.shard_hits.size(); ++i) {
      PutU64LE(corpus.shard_hits[i], &body);
      body.push_back(i < corpus.shard_pinned.size() ? corpus.shard_pinned[i]
                                                    : 0);
    }
  }
  return body;
}

namespace {

Status ReadWireString(ByteSource* src, const char* what, std::string* out) {
  uint8_t len = 0;
  GREPAIR_RETURN_IF_ERROR(src->ReadU8(&len));
  ByteSpan rest = src->PeekRemaining();
  if (rest.size < len) {
    return Status::Corruption(std::string(what) + " length " +
                              std::to_string(len) + " overruns the body (" +
                              std::to_string(rest.size) + " byte(s) left)");
  }
  out->assign(rest.begin(), rest.begin() + len);
  GREPAIR_RETURN_IF_ERROR(src->Skip(len));
  return Status::OK();
}

}  // namespace

Result<ServerStatsSnapshot> DecodeStatsBody(ByteSpan body, uint64_t* req_id) {
  if (req_id != nullptr) *req_id = 0;
  ByteSource src(body, "stats frame body");
  uint64_t id = 0;
  GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&id));
  if (req_id != nullptr) *req_id = id;
  ServerStatsSnapshot snapshot;
  GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&snapshot.connections));
  GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&snapshot.requests));
  GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&snapshot.bytes_sent));
  GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&snapshot.errors));
  uint32_t corpus_count = 0;
  GREPAIR_RETURN_IF_ERROR(src.ReadU32LE(&corpus_count));
  // Each corpus record is at least 30 bytes; a lying count cannot
  // drive a giant reserve.
  if (static_cast<uint64_t>(corpus_count) * 30 > src.PeekRemaining().size) {
    return Status::Corruption("stats body claims " +
                              std::to_string(corpus_count) +
                              " corpora but only " +
                              std::to_string(src.PeekRemaining().size) +
                              " byte(s) remain");
  }
  snapshot.corpora.resize(corpus_count);
  for (CorpusServeStats& corpus : snapshot.corpora) {
    GREPAIR_RETURN_IF_ERROR(
        ReadWireString(&src, "corpus name", &corpus.name));
    GREPAIR_RETURN_IF_ERROR(
        ReadWireString(&src, "inner codec name", &corpus.inner_name));
    GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&corpus.num_nodes));
    GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&corpus.requests));
    GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&corpus.histogram_epoch));
    uint32_t num_shards = 0;
    GREPAIR_RETURN_IF_ERROR(src.ReadU32LE(&num_shards));
    if (static_cast<uint64_t>(num_shards) * 9 > src.PeekRemaining().size) {
      return Status::Corruption(
          "stats body claims " + std::to_string(num_shards) +
          " shard counters but only " +
          std::to_string(src.PeekRemaining().size) + " byte(s) remain");
    }
    corpus.shard_hits.resize(num_shards);
    corpus.shard_pinned.resize(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) {
      GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&corpus.shard_hits[s]));
      uint8_t pinned = 0;
      GREPAIR_RETURN_IF_ERROR(src.ReadU8(&pinned));
      if (pinned > 1) {
        return Status::Corruption("stats body has pinned flag " +
                                  std::to_string(pinned) +
                                  " (expected 0 or 1)");
      }
      corpus.shard_pinned[s] = pinned;
    }
  }
  if (src.PeekRemaining().size != 0) {
    return Status::Corruption("stats body has " +
                              std::to_string(src.PeekRemaining().size) +
                              " trailing byte(s)");
  }
  return snapshot;
}

namespace {

// A short-lived single-request admin connection: dial, handshake,
// then one synchronous call per verb. Unlike the pool this never
// redials — an operator command should report the failure it saw.
struct AdminConn {
  Socket socket;
  std::string peer;
};

Status AdminDial(const std::string& host_port, int io_timeout_ms,
                 AdminConn* conn) {
  std::string host;
  uint16_t port = 0;
  GREPAIR_RETURN_IF_ERROR(ParseHostPort(host_port, &host, &port));
  auto dialed = Socket::ConnectTcp(host, port, io_timeout_ms);
  if (!dialed.ok()) {
    return Status::Unavailable("cannot reach " + host_port + ": " +
                               dialed.status().message());
  }
  conn->socket = std::move(dialed).ValueOrDie();
  conn->peer = host_port;
  std::vector<uint8_t> hello;
  PutU32LE(net::kProtoV2, &hello);
  GREPAIR_RETURN_IF_ERROR(
      net::WriteFrame(&conn->socket, net::kHello, SpanOf(hello)));
  auto reply = net::ReadFrame(&conn->socket);
  if (!reply.ok()) {
    if (reply.status().code() == StatusCode::kUnavailable) {
      return Status::Unavailable("handshake with " + host_port +
                                 " failed: " + reply.status().message());
    }
    return reply.status();
  }
  if (reply.value().type == net::kError) {
    // A GRNF v1 server answers an unknown verb with a v1 error frame.
    return net::DecodeErrorBody(SpanOf(reply.value().body));
  }
  if (reply.value().type != net::kHelloOk) {
    return Status::Corruption("shard server answered the handshake with "
                              "frame type " +
                              std::to_string(reply.value().type));
  }
  ByteSource body(SpanOf(reply.value().body), "HelloOk body");
  uint32_t negotiated = 0;
  uint32_t corpus_count = 0;
  GREPAIR_RETURN_IF_ERROR(body.ReadU32LE(&negotiated));
  GREPAIR_RETURN_IF_ERROR(body.ReadU32LE(&corpus_count));
  if (negotiated != net::kProtoV2) {
    return Status::Corruption("shard server negotiated unsupported "
                              "protocol version " +
                              std::to_string(negotiated));
  }
  return Status::OK();
}

Result<net::Frame> AdminCall(AdminConn* conn, uint8_t type, ByteSpan body,
                             uint8_t expect) {
  Status sent = net::WriteFrame(&conn->socket, type, body);
  if (!sent.ok()) {
    return Status::Unavailable("request to " + conn->peer +
                               " failed: " + sent.message());
  }
  auto reply = net::ReadFrame(&conn->socket);
  if (!reply.ok()) {
    if (reply.status().code() == StatusCode::kUnavailable) {
      return Status::Unavailable("response from " + conn->peer +
                                 " failed: " + reply.status().message());
    }
    return reply.status();
  }
  if (reply.value().type == net::kError2) {
    return net::DecodeErrorBody2(SpanOf(reply.value().body));
  }
  if (reply.value().type == net::kError) {
    return net::DecodeErrorBody(SpanOf(reply.value().body));
  }
  if (reply.value().type != expect) {
    return Status::Corruption(
        "shard server sent frame type " +
        std::to_string(reply.value().type) + " where " +
        std::to_string(expect) + " was expected");
  }
  return reply;
}

}  // namespace

Result<ServerStatsSnapshot> FetchServerStats(const std::string& host_port,
                                             int io_timeout_ms) {
  AdminConn conn;
  GREPAIR_RETURN_IF_ERROR(AdminDial(host_port, io_timeout_ms, &conn));
  std::vector<uint8_t> request;
  PutU64LE(1, &request);
  auto reply =
      AdminCall(&conn, net::kGetStats, SpanOf(request), net::kStats);
  if (!reply.ok()) return reply.status();
  uint64_t req_id = 0;
  auto snapshot = DecodeStatsBody(SpanOf(reply.value().body), &req_id);
  if (!snapshot.ok()) return snapshot.status();
  if (req_id != 1) {
    return Status::Corruption("stats response echoes request id " +
                              std::to_string(req_id) + " (expected 1)");
  }
  return snapshot;
}

Result<shard::ParsedDirectory> FetchCorpusDirectory(
    const std::string& host_port, const std::string& corpus,
    int io_timeout_ms, std::string* resolved_name) {
  if (corpus.size() > kMaxCorpusNameBytes) {
    return Status::InvalidArgument("corpus name is " +
                                   std::to_string(corpus.size()) +
                                   " bytes (max " +
                                   std::to_string(kMaxCorpusNameBytes) + ")");
  }
  AdminConn conn;
  GREPAIR_RETURN_IF_ERROR(AdminDial(host_port, io_timeout_ms, &conn));
  std::vector<uint8_t> request;
  PutU64LE(1, &request);
  request.push_back(static_cast<uint8_t>(corpus.size()));
  request.insert(request.end(), corpus.begin(), corpus.end());
  auto reply =
      AdminCall(&conn, net::kOpenCorpus, SpanOf(request), net::kCorpusDir);
  if (!reply.ok()) return reply.status();
  ByteSource body(SpanOf(reply.value().body), "CorpusDir body");
  uint64_t req_id = 0;
  uint32_t corpus_id = 0;
  uint64_t dir_off = 0;
  GREPAIR_RETURN_IF_ERROR(body.ReadU64LE(&req_id));
  GREPAIR_RETURN_IF_ERROR(body.ReadU32LE(&corpus_id));
  GREPAIR_RETURN_IF_ERROR(body.ReadU64LE(&dir_off));
  auto dir = shard::ParseV2Directory(body.PeekRemaining(), dir_off);
  if (!dir.ok()) return dir.status();
  if (resolved_name != nullptr) {
    // The directory carries no name; the stats snapshot does, indexed
    // by the dense corpus id the server just resolved.
    resolved_name->clear();
    std::vector<uint8_t> stats_request;
    PutU64LE(2, &stats_request);
    auto stats_reply = AdminCall(&conn, net::kGetStats, SpanOf(stats_request),
                                 net::kStats);
    if (stats_reply.ok()) {
      auto snapshot = DecodeStatsBody(SpanOf(stats_reply.value().body),
                                      nullptr);
      if (snapshot.ok() && corpus_id < snapshot.value().corpora.size()) {
        *resolved_name = snapshot.value().corpora[corpus_id].name;
      }
    }
  }
  return dir;
}

}  // namespace serve
}  // namespace grepair
