// serve::RemoteShardSource — the GRNF v2 network implementation of the
// ShardSource seam, built for fleets: a bounded connection pool with
// tagged-request multiplexing instead of PR 5's one mutex-serialized
// socket.
//
// Connect() dials one pool slot, performs the kHello handshake, opens
// the named corpus (fetching and reparsing its footer directory with
// the same hardened parser the file path uses) and remembers the
// corpus id. Each FetchShard picks a pool slot round-robin, tags the
// request with a fresh u64 id, and parks on a per-request slot while a
// per-connection reader thread dispatches responses by echoed id — so
// many shard faults (prefetch pool, batch queries, concurrent
// frontends) stay in flight at once across and within connections.
//
// Failure model, unchanged from PR 5 but per-request: every request is
// a pure read, so a transport failure is retried exactly once on a
// freshly dialed connection; corruption is never retried — a lying
// peer does not get a second chance to lie. Each request carries a
// deadline (io_timeout_ms); a deadline miss marks the connection
// broken so its other in-flight requests fail fast to their own
// single-redial path. Redials re-handshake and re-resolve the corpus
// (a restarted server may have renumbered its registry) and verify the
// re-fetched directory still matches shard-for-shard.
//
// Dead-server hygiene: dial attempts go through a shared
// exponential-backoff gate with deterministic jitter. While the gate
// is closed every fetch fails immediately with kUnavailable naming the
// peer — a dead server is probed a few times a second at worst, not
// hammered once per request.

#ifndef GREPAIR_SERVE_POOL_H_
#define GREPAIR_SERVE_POOL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/frame.h"
#include "src/shard/sharded_codec.h"
#include "src/util/rng.h"
#include "src/util/socket.h"
#include "src/util/status.h"
#include "src/util/sync.h"

namespace grepair {
namespace serve {

/// \brief Redial backoff bounds (exposed for tests): the gate starts
/// at kBackoffBaseMs after the first failed dial and doubles up to
/// kBackoffMaxMs, with jitter in [delay/2, delay].
inline constexpr int kBackoffBaseMs = 25;
inline constexpr int kBackoffMaxMs = 2000;

class RemoteShardSource : public shard::ShardSource {
 public:
  struct Options {
    int io_timeout_ms = 30000;  ///< connect + per-request deadline
    int pool_size = 4;          ///< connections (clamped to [1, 64])
  };

  /// \brief Dials "host:port", opens `corpus` (empty = the sole
  /// served corpus) and fetches its directory. kUnavailable when the
  /// peer is unreachable or stalls; kCorruption when it serves
  /// malformed frames or a bad directory; kNotFound for an unknown
  /// corpus name.
  static Result<std::shared_ptr<RemoteShardSource>> Connect(
      const std::string& host_port, const std::string& corpus,
      const Options& options);

  ~RemoteShardSource() override;

  const char* kind() const override { return "remote"; }

  /// \brief Moves out the directory fetched at connect time (what
  /// ShardedRep::OpenFromSource consumes). The source retains only
  /// the per-shard lengths it needs for verification — the node maps
  /// live once, in the rep, not twice. Call at most once.
  shard::ParsedDirectory TakeDirectory();

  /// \brief The raw footer-directory bytes (and their in-container
  /// offset) exactly as the server shipped them at connect time.
  /// OpenRemoteContainer persists these next to the SSD shard tier so
  /// a warm cache can be opened again after the server is gone.
  const std::vector<uint8_t>& raw_directory() const {
    return raw_directory_;
  }
  uint64_t raw_dir_off() const { return raw_dir_off_; }

  Result<ByteSpan> FetchShard(size_t shard,
                              std::vector<uint8_t>* owned) override;

  void AddStats(api::QueryStats* stats) const override;

 private:
  // One parked request awaiting its tagged response.
  struct Pending {
    Mutex mu;
    CondVar cv;
    bool done GREPAIR_GUARDED_BY(mu) = false;
    Status status GREPAIR_GUARDED_BY(mu) = Status::OK();
    net::Frame frame GREPAIR_GUARDED_BY(mu);
  };

  // One pool slot: a socket, its reader thread, and the in-flight map.
  struct Conn {
    Mutex mu;  // guards connection state + pending map
    // Deliberately not GUARDED_BY(mu): the reader thread recvs on the
    // socket lock-free while FailConnection shuts the fd down under mu
    // (shutdown-vs-recv is the documented unpark protocol), and writes
    // are serialized by send_mu. The fd itself is only replaced under
    // dial_mu with the old reader joined.
    Socket socket;
    bool connected GREPAIR_GUARDED_BY(mu) = false;
    bool ever_connected GREPAIR_GUARDED_BY(mu) = false;
    uint32_t corpus_id GREPAIR_GUARDED_BY(mu) = 0;
    std::unordered_map<uint64_t, std::shared_ptr<Pending>> pending
        GREPAIR_GUARDED_BY(mu);
    Mutex send_mu;  // serializes frame writes on this socket
    Mutex dial_mu;  // serializes (re)dials of this slot
    // Written/joined only under dial_mu (or in the destructor, when no
    // other thread can touch the slot); not expressible as GUARDED_BY
    // because the destructor legitimately joins lock-free.
    std::thread reader;
  };

  RemoteShardSource(std::string host, uint16_t port, std::string peer,
                    std::string corpus, const Options& options);

  /// Dials + handshakes + opens the corpus on a fresh socket. On
  /// success *socket/*corpus_id are set and *dir holds the re-fetched,
  /// re-parsed directory.
  Status DialAndHandshake(Socket* socket, uint32_t* corpus_id,
                          shard::ParsedDirectory* dir);
  /// Ensures `conn` has a live handshaked connection + reader,
  /// redialing through the backoff gate when broken.
  Status EnsureConnected(Conn* conn)
      GREPAIR_LOCKS_EXCLUDED(conn->mu, conn->dial_mu, gate_mu_);
  void ReaderLoop(Conn* conn) GREPAIR_LOCKS_EXCLUDED(conn->mu);
  /// Marks the connection broken and fails every pending request with
  /// `status` (each parked fetch then runs its own redial attempt).
  void FailConnection(Conn* conn, const Status& status)
      GREPAIR_LOCKS_EXCLUDED(conn->mu);

  // Backoff gate (shared across pool slots).
  Status GateCheck() GREPAIR_LOCKS_EXCLUDED(gate_mu_);
  void GateRecordFailure(const std::string& message)
      GREPAIR_LOCKS_EXCLUDED(gate_mu_);
  void GateRecordSuccess() GREPAIR_LOCKS_EXCLUDED(gate_mu_);

  std::string host_;
  uint16_t port_ = 0;
  std::string peer_;    // "host:port" for error context
  std::string corpus_;  // name opened on every (re)dial
  int io_timeout_ms_ = 30000;

  std::vector<std::unique_ptr<Conn>> conns_;
  std::atomic<uint64_t> next_req_id_{1};
  std::atomic<uint64_t> round_robin_{0};

  shard::ParsedDirectory directory_;     // until TakeDirectory
  std::vector<uint8_t> raw_directory_;   // verbatim wire bytes
  uint64_t raw_dir_off_ = 0;
  std::vector<uint64_t> shard_lengths_;  // rows[i].length, kept always

  Mutex gate_mu_;
  int gate_fail_streak_ GREPAIR_GUARDED_BY(gate_mu_) = 0;
  std::chrono::steady_clock::time_point gate_next_dial_
      GREPAIR_GUARDED_BY(gate_mu_){};
  std::string gate_last_error_ GREPAIR_GUARDED_BY(gate_mu_);
  // Deterministic, seeded from the peer address; drawn only under
  // gate_mu_.
  Rng gate_jitter_ GREPAIR_GUARDED_BY(gate_mu_);

  mutable std::atomic<uint64_t> stat_fetches_{0};
  mutable std::atomic<uint64_t> stat_bytes_{0};
  mutable std::atomic<uint64_t> stat_dials_{0};
  mutable std::atomic<uint64_t> stat_redials_{0};
  mutable std::atomic<uint64_t> stat_in_flight_{0};
  mutable std::atomic<uint64_t> stat_peak_in_flight_{0};
};

/// \brief Splits a remote target "host:port[/corpus]" (e.g.
/// "10.0.0.7:9000/wikidata"); the corpus part is optional and may be
/// empty only when the server hosts a single corpus.
Status SplitTarget(const std::string& target, std::string* host_port,
                   std::string* corpus);

/// \brief Everything api::OpenRemote needs to wire the tier together.
struct OpenOptions {
  int io_timeout_ms = 30000;
  int pool_size = 4;
  /// When non-empty, a TieredShardSource backed by this directory is
  /// stacked over the pool (see src/serve/tiered.h).
  std::string ssd_cache_dir;
  uint64_t ssd_cache_bytes = 256ull << 20;
  /// Additional "host:port" replicas serving the same corpus. Shard
  /// fetches are routed by affinity (shard id mod replica count, the
  /// target's own endpoint counting as replica 0) so each replica's
  /// page cache sees a stable shard subset; an unreachable home
  /// replica fails over to the next (counted as an affinity switch).
  std::vector<std::string> replicas;
  /// Client-side pin budget in bytes, applied to the opened rep via
  /// ShardedRep::ApplyPlacement using the warm histogram. Only
  /// sources holding local bytes can pin, so this matters for local
  /// opens; remote stacks report zero pinned. 0 disables.
  uint64_t pin_bytes = 0;
  /// Open-time warming: rank shards by the best histogram available
  /// (the persisted `.grdir` sidecar's, or a fresh STATS snapshot
  /// when the server is reachable) and prefetch the hot ones before
  /// the first query. Costs one STATS round-trip when online.
  bool warm_from_histogram = true;
};

/// \brief Opens the remote corpus at "host:port[/name]" as a lazy
/// CompressedRep: shard metadata from the server's directory, payloads
/// faulted over the pool (optionally through the SSD tier) on first
/// touch. The convenience entry point is api::OpenRemote
/// (src/api/remote.h).
Result<std::unique_ptr<api::CompressedRep>> OpenRemoteContainer(
    const std::string& target, const OpenOptions& options);
inline Result<std::unique_ptr<api::CompressedRep>> OpenRemoteContainer(
    const std::string& target) {
  return OpenRemoteContainer(target, OpenOptions());
}

}  // namespace serve
}  // namespace grepair

#endif  // GREPAIR_SERVE_POOL_H_
