#include "src/serve/pool.h"

#include <algorithm>
#include <utility>

#include "src/serve/placement.h"
#include "src/serve/registry.h"
#include "src/serve/stats.h"
#include "src/serve/tiered.h"
#include "src/util/hashing.h"
#include "src/util/mmap_file.h"

namespace grepair {
namespace serve {

using net::Frame;

RemoteShardSource::RemoteShardSource(std::string host, uint16_t port,
                                     std::string peer, std::string corpus,
                                     const Options& options)
    : host_(std::move(host)),
      port_(port),
      peer_(std::move(peer)),
      corpus_(std::move(corpus)),
      io_timeout_ms_(options.io_timeout_ms),
      gate_jitter_(HashBytes(
          reinterpret_cast<const uint8_t*>(peer_.data()), peer_.size())) {
  int pool = std::max(1, std::min(64, options.pool_size));
  conns_.reserve(pool);
  for (int i = 0; i < pool; ++i) {
    conns_.push_back(std::make_unique<Conn>());
  }
}

Result<std::shared_ptr<RemoteShardSource>> RemoteShardSource::Connect(
    const std::string& host_port, const std::string& corpus,
    const Options& options) {
  std::string host;
  uint16_t port = 0;
  GREPAIR_RETURN_IF_ERROR(ParseHostPort(host_port, &host, &port));
  if (corpus.size() > kMaxCorpusNameBytes) {
    return Status::InvalidArgument("corpus name is " +
                                   std::to_string(corpus.size()) +
                                   " bytes (max " +
                                   std::to_string(kMaxCorpusNameBytes) + ")");
  }
  auto source = std::shared_ptr<RemoteShardSource>(new RemoteShardSource(
      std::move(host), port, host_port, corpus, options));
  // The first slot's dial doubles as the directory fetch: the
  // handshake's kCorpusDir response is parsed into directory_ (the
  // shard_lengths_ table is still empty, so no cross-check yet).
  GREPAIR_RETURN_IF_ERROR(source->EnsureConnected(source->conns_[0].get()));
  source->shard_lengths_.reserve(source->directory_.rows.size());
  for (const auto& row : source->directory_.rows) {
    source->shard_lengths_.push_back(row.length);
  }
  return source;
}

RemoteShardSource::~RemoteShardSource() {
  // Break every connection (unparking reader threads and any stray
  // waiters), then join the readers.
  for (auto& conn : conns_) {
    FailConnection(conn.get(),
                   Status::Unavailable("remote source shutting down"));
  }
  for (auto& conn : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

shard::ParsedDirectory RemoteShardSource::TakeDirectory() {
  return std::move(directory_);
}

Status RemoteShardSource::GateCheck() {
  MutexLock lock(gate_mu_);
  auto now = std::chrono::steady_clock::now();
  if (now < gate_next_dial_) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    gate_next_dial_ - now)
                    .count();
    return Status::Unavailable(
        "not redialing " + peer_ + " for another " + std::to_string(left) +
        "ms (backoff after " + std::to_string(gate_fail_streak_) +
        " consecutive dial failure(s); last: " + gate_last_error_ + ")");
  }
  return Status::OK();
}

void RemoteShardSource::GateRecordFailure(const std::string& message) {
  MutexLock lock(gate_mu_);
  gate_last_error_ = message;
  ++gate_fail_streak_;
  int shift = std::min(gate_fail_streak_ - 1, 20);
  int64_t delay = static_cast<int64_t>(kBackoffBaseMs) << shift;
  delay = std::min<int64_t>(delay, kBackoffMaxMs);
  // Jitter in [delay/2, delay] so a fleet of frontends does not probe
  // a recovering server in lockstep.
  int64_t jittered =
      delay / 2 +
      static_cast<int64_t>(gate_jitter_.UniformBounded(
          static_cast<uint64_t>(delay - delay / 2 + 1)));
  gate_next_dial_ = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(jittered);
}

void RemoteShardSource::GateRecordSuccess() {
  MutexLock lock(gate_mu_);
  gate_fail_streak_ = 0;
  gate_next_dial_ = std::chrono::steady_clock::time_point{};
  gate_last_error_.clear();
}

Status RemoteShardSource::DialAndHandshake(Socket* socket,
                                           uint32_t* corpus_id,
                                           shard::ParsedDirectory* dir) {
  auto dialed = Socket::ConnectTcp(host_, port_, io_timeout_ms_);
  if (!dialed.ok()) {
    return Status::Unavailable("cannot reach " + peer_ + ": " +
                               dialed.status().message());
  }
  Socket fresh = std::move(dialed).ValueOrDie();
  // Handshake: kHello -> kHelloOk.
  std::vector<uint8_t> hello;
  PutU32LE(net::kProtoV2, &hello);
  Status sent = net::WriteFrame(&fresh, net::kHello, SpanOf(hello));
  if (!sent.ok()) {
    return Status::Unavailable("handshake with " + peer_ +
                               " failed: " + sent.message());
  }
  auto hello_ok = net::ReadFrame(&fresh);
  if (!hello_ok.ok()) {
    if (hello_ok.status().code() == StatusCode::kUnavailable) {
      return Status::Unavailable("handshake with " + peer_ +
                                 " failed: " + hello_ok.status().message());
    }
    return hello_ok.status();
  }
  if (hello_ok.value().type == net::kError) {
    // A GRNF v1 server answers the unknown kHello verb with a v1
    // error frame — surface its own words (they say to upgrade).
    return net::DecodeErrorBody(SpanOf(hello_ok.value().body));
  }
  if (hello_ok.value().type != net::kHelloOk) {
    return Status::Corruption("shard server answered the handshake with "
                              "frame type " +
                              std::to_string(hello_ok.value().type));
  }
  ByteSource hello_body(SpanOf(hello_ok.value().body), "HelloOk body");
  uint32_t negotiated = 0;
  uint32_t corpus_count = 0;
  GREPAIR_RETURN_IF_ERROR(hello_body.ReadU32LE(&negotiated));
  GREPAIR_RETURN_IF_ERROR(hello_body.ReadU32LE(&corpus_count));
  if (negotiated != net::kProtoV2) {
    return Status::Corruption("shard server negotiated unsupported "
                              "protocol version " +
                              std::to_string(negotiated));
  }
  // Open (or re-resolve) the corpus; the response carries the raw
  // directory bytes, reparsed with the hardened parser every time.
  uint64_t open_req = next_req_id_.fetch_add(1, std::memory_order_relaxed);
  std::vector<uint8_t> open;
  PutU64LE(open_req, &open);
  open.push_back(static_cast<uint8_t>(corpus_.size()));
  open.insert(open.end(), corpus_.begin(), corpus_.end());
  sent = net::WriteFrame(&fresh, net::kOpenCorpus, SpanOf(open));
  if (!sent.ok()) {
    return Status::Unavailable("OpenCorpus to " + peer_ +
                               " failed: " + sent.message());
  }
  auto reply = net::ReadFrame(&fresh);
  if (!reply.ok()) {
    if (reply.status().code() == StatusCode::kUnavailable) {
      return Status::Unavailable("OpenCorpus response from " + peer_ +
                                 " failed: " + reply.status().message());
    }
    return reply.status();
  }
  if (reply.value().type == net::kError2) {
    return net::DecodeErrorBody2(SpanOf(reply.value().body));
  }
  if (reply.value().type != net::kCorpusDir) {
    return Status::Corruption(
        "shard server sent frame type " +
        std::to_string(reply.value().type) + " where " +
        std::to_string(net::kCorpusDir) + " was expected");
  }
  ByteSource dir_body(SpanOf(reply.value().body), "CorpusDir body");
  uint64_t echoed_req = 0;
  uint64_t dir_off = 0;
  GREPAIR_RETURN_IF_ERROR(dir_body.ReadU64LE(&echoed_req));
  GREPAIR_RETURN_IF_ERROR(dir_body.ReadU32LE(corpus_id));
  GREPAIR_RETURN_IF_ERROR(dir_body.ReadU64LE(&dir_off));
  if (echoed_req != open_req) {
    return Status::Corruption("OpenCorpus response echoes request id " +
                              std::to_string(echoed_req) + " (expected " +
                              std::to_string(open_req) + ")");
  }
  auto parsed = shard::ParseV2Directory(dir_body.PeekRemaining(), dir_off);
  if (!parsed.ok()) return parsed.status();
  if (shard_lengths_.empty()) {
    // First dial (single-threaded Connect): keep the verbatim wire
    // bytes so the caller can persist them for offline warm opens.
    ByteSpan raw = dir_body.PeekRemaining();
    raw_directory_.assign(raw.begin(), raw.end());
    raw_dir_off_ = dir_off;
  }
  // On a redial the directory must still describe the corpus this rep
  // was built over — a restarted server serving different bytes under
  // the same name must not slip through (the per-shard checksums
  // would catch it at fault time, but catch it with a better story
  // here).
  if (!shard_lengths_.empty()) {
    const auto& rows = parsed.value().rows;
    bool same = rows.size() == shard_lengths_.size();
    for (size_t i = 0; same && i < rows.size(); ++i) {
      same = rows[i].length == shard_lengths_[i];
    }
    if (!same) {
      return Status::Corruption(
          "corpus \"" + corpus_ + "\" on " + peer_ +
          " changed shape since connect (server restarted with "
          "different data?); reopen the remote container");
    }
  }
  *dir = std::move(parsed).ValueOrDie();
  *socket = std::move(fresh);
  return Status::OK();
}

Status RemoteShardSource::EnsureConnected(Conn* conn) {
  {
    MutexLock lock(conn->mu);
    if (conn->connected) return Status::OK();
  }
  MutexLock dial_lock(conn->dial_mu);
  {
    MutexLock lock(conn->mu);
    if (conn->connected) return Status::OK();  // raced with another dialer
    conn->socket.ShutdownBoth();
  }
  // The old reader (if any) is parked on a dead socket; collect it
  // before replacing the socket it reads from.
  if (conn->reader.joinable()) conn->reader.join();
  GREPAIR_RETURN_IF_ERROR(GateCheck());
  Socket fresh;
  uint32_t corpus_id = 0;
  shard::ParsedDirectory dir;
  Status dialed = DialAndHandshake(&fresh, &corpus_id, &dir);
  if (!dialed.ok()) {
    // Only transport-level failures close the gate: a served error
    // (unknown corpus, say) means the server is alive and answering.
    if (dialed.code() == StatusCode::kUnavailable) {
      GateRecordFailure(dialed.message());
    }
    return dialed;
  }
  GateRecordSuccess();
  stat_dials_.fetch_add(1, std::memory_order_relaxed);
  bool redial;
  {
    MutexLock lock(conn->mu);
    redial = conn->ever_connected;
    conn->socket = std::move(fresh);
    conn->connected = true;
    conn->ever_connected = true;
    conn->corpus_id = corpus_id;
  }
  if (redial) stat_redials_.fetch_add(1, std::memory_order_relaxed);
  if (shard_lengths_.empty()) directory_ = std::move(dir);
  conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
  return Status::OK();
}

void RemoteShardSource::FailConnection(Conn* conn, const Status& status) {
  std::vector<std::shared_ptr<Pending>> parked;
  {
    MutexLock lock(conn->mu);
    conn->connected = false;
    conn->socket.ShutdownBoth();
    parked.reserve(conn->pending.size());
    for (auto& entry : conn->pending) parked.push_back(entry.second);
    conn->pending.clear();
  }
  for (auto& pending : parked) {
    MutexLock lock(pending->mu);
    pending->status = status;
    pending->done = true;
    pending->cv.NotifyAll();
  }
}

void RemoteShardSource::ReaderLoop(Conn* conn) {
  for (;;) {
    auto frame = net::ReadFrame(&conn->socket);
    if (!frame.ok()) {
      // Idle timeout, peer close, shutdown from FailConnection, or
      // malformed bytes: this connection is done. Corruption is
      // propagated so parked requests fail without a retry — a lying
      // peer does not get a second chance.
      Status status =
          frame.status().code() == StatusCode::kCorruption
              ? frame.status()
              : Status::Unavailable("connection to " + peer_ +
                                    " lost: " + frame.status().message());
      FailConnection(conn, status);
      return;
    }
    auto req_id = net::FrameRequestId(frame.value());
    if (!req_id.ok()) {
      FailConnection(
          conn, Status::Corruption("shard server sent untagged frame type " +
                                   std::to_string(frame.value().type) +
                                   " on a multiplexed connection"));
      return;
    }
    std::shared_ptr<Pending> pending;
    {
      MutexLock lock(conn->mu);
      auto it = conn->pending.find(req_id.value());
      if (it != conn->pending.end()) {
        pending = it->second;
        conn->pending.erase(it);
      }
    }
    // No waiter: the request hit its deadline and was abandoned —
    // drop the late response on the floor.
    if (pending == nullptr) continue;
    MutexLock lock(pending->mu);
    pending->frame = std::move(frame).ValueOrDie();
    pending->done = true;
    pending->cv.NotifyAll();
  }
}

Result<ByteSpan> RemoteShardSource::FetchShard(size_t shard,
                                               std::vector<uint8_t>* owned) {
  if (shard >= shard_lengths_.size()) {
    return Status::Internal("shard index " + std::to_string(shard) +
                            " out of range for remote source");
  }
  Conn* conn =
      conns_[round_robin_.fetch_add(1, std::memory_order_relaxed) %
             conns_.size()]
          .get();
  // Every request is a pure read, so a transport failure is retried
  // exactly once on a fresh connection (servers reap idle peers; a
  // redial-and-retry is the difference between surviving that and a
  // permanently broken rep).
  Status transport = Status::OK();
  for (int attempt = 0; attempt < 2; ++attempt) {
    Status up = EnsureConnected(conn);
    if (!up.ok()) return up;  // dial failures already name the peer
    uint64_t req_id = next_req_id_.fetch_add(1, std::memory_order_relaxed);
    auto pending = std::make_shared<Pending>();
    uint32_t corpus_id = 0;
    {
      MutexLock lock(conn->mu);
      if (!conn->connected) {
        transport = Status::Unavailable("connection to " + peer_ +
                                        " broke before the request left");
        continue;
      }
      corpus_id = conn->corpus_id;
      conn->pending.emplace(req_id, pending);
    }
    uint64_t in_flight =
        stat_in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t peak = stat_peak_in_flight_.load(std::memory_order_relaxed);
    while (in_flight > peak &&
           !stat_peak_in_flight_.compare_exchange_weak(
               peak, in_flight, std::memory_order_relaxed)) {
    }
    std::vector<uint8_t> request;
    request.reserve(16);
    PutU64LE(req_id, &request);
    PutU32LE(corpus_id, &request);
    PutU32LE(static_cast<uint32_t>(shard), &request);
    Status sent;
    {
      MutexLock send_lock(conn->send_mu);
      sent = net::WriteFrame(&conn->socket, net::kGetShard2,
                             SpanOf(request));
    }
    if (!sent.ok()) {
      stat_in_flight_.fetch_sub(1, std::memory_order_relaxed);
      FailConnection(conn, Status::Unavailable("request to " + peer_ +
                                               " failed: " + sent.message()));
      transport = Status::Unavailable("request to " + peer_ +
                                      " failed: " + sent.message());
      continue;
    }
    // The wait is an explicit deadline loop (not a predicate lambda)
    // so the analysis sees every read of the guarded fields under the
    // lock; the response is copied out before the lock drops — the
    // reader thread owned those fields until it flipped `done`.
    bool done = false;
    Status response_status = Status::OK();
    Frame frame;
    {
      MutexLock lock(pending->mu);
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(io_timeout_ms_);
      while (!pending->done) {
        if (!pending->cv.WaitUntil(lock, deadline)) break;  // timeout
      }
      done = pending->done;
      if (done) {
        response_status = pending->status;
        frame = std::move(pending->frame);
      }
    }
    stat_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    if (!done) {
      // Deadline missed: abandon the slot (the reader drops any late
      // response) and break the connection — a stalled server stalls
      // every request it holds.
      {
        MutexLock lock(conn->mu);
        conn->pending.erase(req_id);
      }
      transport = Status::Unavailable(
          "request to " + peer_ + " missed its " +
          std::to_string(io_timeout_ms_) + "ms deadline");
      FailConnection(conn, transport);
      continue;
    }
    if (!response_status.ok()) {
      if (response_status.code() == StatusCode::kUnavailable) {
        transport = response_status;
        continue;
      }
      return response_status;  // corruption: never retried
    }
    if (frame.type == net::kError2) {
      // A served error is a per-request failure, not a transport one:
      // the stream stays in sync, later requests may succeed.
      return net::DecodeErrorBody2(SpanOf(frame.body));
    }
    if (frame.type != net::kShard2) {
      Status status = Status::Corruption(
          "shard server sent frame type " + std::to_string(frame.type) +
          " where " + std::to_string(net::kShard2) + " was expected");
      FailConnection(conn, status);
      return status;
    }
    ByteSource body(SpanOf(frame.body), "shard frame body");
    uint64_t echoed_req = 0;
    uint32_t echoed_corpus = 0;
    uint32_t echoed_shard = 0;
    GREPAIR_RETURN_IF_ERROR(body.ReadU64LE(&echoed_req));
    GREPAIR_RETURN_IF_ERROR(body.ReadU32LE(&echoed_corpus));
    GREPAIR_RETURN_IF_ERROR(body.ReadU32LE(&echoed_shard));
    if (echoed_corpus != corpus_id || echoed_shard != shard) {
      return Status::Corruption(
          "shard server returned corpus " + std::to_string(echoed_corpus) +
          " shard " + std::to_string(echoed_shard) + " where corpus " +
          std::to_string(corpus_id) + " shard " + std::to_string(shard) +
          " was requested");
    }
    ByteSpan payload = body.PeekRemaining();
    // Length is re-checked (and the payload checksum verified) by the
    // caller against the directory; the early check here just gives
    // the error a transport-level voice.
    if (payload.size != shard_lengths_[shard]) {
      return Status::Corruption(
          "shard " + std::to_string(shard) + " payload is " +
          std::to_string(payload.size) + " byte(s), directory says " +
          std::to_string(shard_lengths_[shard]));
    }
    stat_fetches_.fetch_add(1, std::memory_order_relaxed);
    stat_bytes_.fetch_add(payload.size, std::memory_order_relaxed);
    owned->assign(payload.begin(), payload.end());
    return SpanOf(*owned);
  }
  return transport;
}

void RemoteShardSource::AddStats(api::QueryStats* stats) const {
  stats->remote_fetches += stat_fetches_.load(std::memory_order_relaxed);
  stats->remote_bytes += stat_bytes_.load(std::memory_order_relaxed);
  stats->pool_dials += stat_dials_.load(std::memory_order_relaxed);
  stats->pool_redials += stat_redials_.load(std::memory_order_relaxed);
  uint64_t peak = stat_peak_in_flight_.load(std::memory_order_relaxed);
  if (peak > stats->pool_peak_in_flight) stats->pool_peak_in_flight = peak;
}

Status SplitTarget(const std::string& target, std::string* host_port,
                   std::string* corpus) {
  size_t slash = target.find('/');
  if (slash == std::string::npos) {
    *host_port = target;
    corpus->clear();
  } else {
    *host_port = target.substr(0, slash);
    *corpus = target.substr(slash + 1);
    if (corpus->find('/') != std::string::npos) {
      return Status::InvalidArgument(
          "remote target \"" + target +
          "\" has more than one '/'; expected host:port[/corpus]");
    }
  }
  std::string host;
  uint16_t port = 0;
  return ParseHostPort(*host_port, &host, &port);
}

namespace {

// Every shard fault against a peer we could not reach. A warm SSD
// tier stacked on top answers from disk; only a cache miss surfaces
// this status.
class OfflineShardSource : public shard::ShardSource {
 public:
  explicit OfflineShardSource(std::string peer) : peer_(std::move(peer)) {}

  const char* kind() const override { return "offline"; }

  Result<ByteSpan> FetchShard(size_t shard,
                              std::vector<uint8_t>* owned) override {
    (void)owned;
    return Status::Unavailable(
        "cannot reach " + peer_ + " and shard " + std::to_string(shard) +
        " is not in the local SSD tier");
  }

 private:
  std::string peer_;
};

// Affinity router over N replicas serving the same corpus. Shard s
// lives on replica s % N — a stable mapping, so each replica's page
// cache (and SSD tier, server-side) sees a disjoint working set
// instead of every replica faulting everything. An unreachable home
// replica fails over to the next in ring order; every shard served
// off its home replica counts one affinity switch.
class ReplicaShardSource : public shard::ShardSource {
 public:
  explicit ReplicaShardSource(
      std::vector<std::shared_ptr<RemoteShardSource>> replicas)
      : replicas_(std::move(replicas)) {}

  const char* kind() const override { return "replica-affinity"; }

  Result<ByteSpan> FetchShard(size_t shard,
                              std::vector<uint8_t>* owned) override {
    size_t home = shard % replicas_.size();
    Status last = Status::OK();
    for (size_t hop = 0; hop < replicas_.size(); ++hop) {
      size_t pick = (home + hop) % replicas_.size();
      auto fetched = replicas_[pick]->FetchShard(shard, owned);
      if (fetched.ok()) {
        if (hop > 0) {
          stat_switches_.fetch_add(1, std::memory_order_relaxed);
        }
        return fetched;
      }
      last = fetched.status();
      // Only an unreachable replica justifies going off-affinity; a
      // corrupt or lying one must not be papered over by a twin.
      if (last.code() != StatusCode::kUnavailable) return last;
    }
    return last;
  }

  void AddStats(api::QueryStats* stats) const override {
    stats->affinity_switches +=
        stat_switches_.load(std::memory_order_relaxed);
    for (const auto& replica : replicas_) replica->AddStats(stats);
  }

 private:
  std::vector<std::shared_ptr<RemoteShardSource>> replicas_;
  mutable std::atomic<uint64_t> stat_switches_{0};
};

// Picks `corpus`'s record out of a stats snapshot (by name, or the
// sole corpus when the name is empty); null when absent.
const CorpusServeStats* FindCorpusStats(const ServerStatsSnapshot& snapshot,
                                        const std::string& corpus) {
  if (corpus.empty()) {
    return snapshot.corpora.size() == 1 ? &snapshot.corpora[0] : nullptr;
  }
  for (const CorpusServeStats& record : snapshot.corpora) {
    if (record.name == corpus) return &record;
  }
  return nullptr;
}

}  // namespace

Result<std::unique_ptr<api::CompressedRep>> OpenRemoteContainer(
    const std::string& target, const OpenOptions& options) {
  std::string host_port;
  std::string corpus;
  GREPAIR_RETURN_IF_ERROR(SplitTarget(target, &host_port, &corpus));
  // Replica ring: the target's endpoint is replica 0, --replica
  // endpoints follow in the order given (the order IS the affinity
  // mapping, so every client must list replicas identically).
  std::vector<std::string> endpoints{host_port};
  for (const std::string& replica : options.replicas) {
    std::string host;
    uint16_t port = 0;
    GREPAIR_RETURN_IF_ERROR(ParseHostPort(replica, &host, &port));
    if (replica != host_port) endpoints.push_back(replica);
  }
  RemoteShardSource::Options pool_options;
  pool_options.io_timeout_ms = options.io_timeout_ms;
  pool_options.pool_size = options.pool_size;

  // The persisted sidecar, when present, carries last session's
  // histogram — the open-time warming signal for a cold process.
  DirSidecar prior;
  bool have_prior = false;
  if (!options.ssd_cache_dir.empty()) {
    auto loaded = LoadDirSidecar(
        DirSidecarPath(options.ssd_cache_dir, corpus));
    if (loaded.ok()) {
      prior = std::move(loaded).ValueOrDie();
      have_prior = true;
    }
  }

  std::vector<std::shared_ptr<RemoteShardSource>> replicas;
  Status first_error = Status::OK();
  for (const std::string& endpoint : endpoints) {
    auto source = RemoteShardSource::Connect(endpoint, corpus, pool_options);
    if (source.ok()) {
      replicas.push_back(std::move(source).ValueOrDie());
    } else if (first_error.ok()) {
      first_error = source.status();
    }
  }

  shard::ParsedDirectory dir;
  std::shared_ptr<shard::ShardSource> stack;
  bool online = !replicas.empty();
  DirSidecar sidecar;  // what gets (re)persisted this open
  bool save_sidecar = false;
  if (online) {
    dir = replicas[0]->TakeDirectory();
    // Fail closed on a stale sidecar: the persisted directory must be
    // byte-equivalent (checksum) to what the server just shipped. A
    // corpus rebuilt in place keeps the sidecar path and often the
    // shard count, so the histogram size/epoch gate below is not
    // enough — warm state of a replaced corpus must never be trusted.
    if (have_prior &&
        HashBytes(prior.raw_directory.data(), prior.raw_directory.size()) !=
            dir.dir_checksum) {
      have_prior = false;
    }
    if (!options.ssd_cache_dir.empty()) {
      save_sidecar = true;
      sidecar.dir_off = replicas[0]->raw_dir_off();
      sidecar.raw_directory = replicas[0]->raw_directory();
    }
    if (replicas.size() == 1) {
      stack = replicas[0];
    } else {
      stack = std::make_shared<ReplicaShardSource>(replicas);
    }
  } else if (first_error.code() == StatusCode::kUnavailable && have_prior) {
    // Every peer down, but a tier may be warm: reopen over the
    // persisted directory; any shard the tier does not hold stays
    // kUnavailable.
    auto cached = shard::ParseV2Directory(SpanOf(prior.raw_directory),
                                          prior.dir_off);
    if (!cached.ok()) return first_error;  // the dial is the story
    dir = std::move(cached).ValueOrDie();
    stack = std::make_shared<OfflineShardSource>(host_port);
  } else {
    return first_error;
  }

  // Pick the histogram to warm from: a fresh STATS snapshot from
  // replica 0 when online (one extra round-trip, gated on anyone
  // wanting it), else the sidecar's. Between the two, the higher
  // epoch — a freshly restarted server's near-empty histogram must
  // not shadow a rich persisted one.
  std::vector<uint64_t> histogram;
  uint64_t histogram_epoch = 0;
  bool want_histogram =
      options.warm_from_histogram || save_sidecar || options.pin_bytes > 0;
  if (online && want_histogram) {
    auto stats = FetchServerStats(endpoints[0], options.io_timeout_ms);
    if (stats.ok()) {
      const CorpusServeStats* record =
          FindCorpusStats(stats.value(), corpus);
      if (record != nullptr) {
        histogram = record->shard_hits;
        histogram_epoch = record->histogram_epoch;
      }
    }
  }
  if (have_prior && prior.histogram.size() == dir.rows.size() &&
      (histogram.empty() || prior.histogram_epoch > histogram_epoch)) {
    histogram = prior.histogram;
    histogram_epoch = prior.histogram_epoch;
  }
  if (histogram.size() != dir.rows.size()) histogram.clear();

  if (!options.ssd_cache_dir.empty()) {
    TieredShardSource::Options tier_options;
    tier_options.cache_dir = options.ssd_cache_dir;
    tier_options.max_bytes = options.ssd_cache_bytes;
    auto tiered =
        TieredShardSource::Create(std::move(stack), dir.rows, tier_options);
    if (!tiered.ok()) return tiered.status();
    stack = std::move(tiered).ValueOrDie();
    if (save_sidecar) {
      // After Create so the cache directory exists. The tier's disk
      // scan ignores .grdir strangers.
      sidecar.histogram = histogram;
      sidecar.histogram_epoch = histogram_epoch;
      SaveDirSidecar(DirSidecarPath(options.ssd_cache_dir, corpus),
                     sidecar);
    }
  }
  auto rep = shard::ShardedRep::OpenFromSource(std::move(stack),
                                               std::move(dir));
  if (!rep.ok()) return rep.status();
  if (!histogram.empty()) {
    std::vector<size_t> ranked = RankByHeat(histogram);
    if (options.warm_from_histogram && !ranked.empty()) {
      // Open-time warming: fault the known-hot shards through the
      // stack (SSD tier first, network behind it) on a small pool so
      // the first real queries find them resident. Asynchronous — the
      // open returns while the warm-up streams in; a later
      // set_prefetch_threads joins this pool first.
      rep.value()->set_prefetch_threads(4);
      rep.value()->Prefetch(ranked);
    }
    if (options.pin_bytes > 0) {
      (void)rep.value()->ApplyPlacement(ranked, options.pin_bytes);
    }
  }
  return std::unique_ptr<api::CompressedRep>(std::move(rep).ValueOrDie());
}

}  // namespace serve
}  // namespace grepair
