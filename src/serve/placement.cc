#include "src/serve/placement.h"

#include <algorithm>

#include "src/util/byte_io.h"
#include "src/util/hashing.h"
#include "src/util/mmap_file.h"

namespace grepair {
namespace serve {

namespace {

// Sidecar envelope ("GRDC"):
//   u32 magic   u32 version   u64 dir_off
//   u32 len     len raw directory bytes
//   v2 only: u64 histogram_epoch  u32 shard_count  u64 x count hits
//   u64 HashBytes over everything above
constexpr uint32_t kDirSidecarMagic = 0x43445247;  // "GRDC"
constexpr uint32_t kDirSidecarV1 = 1;
constexpr uint32_t kDirSidecarV2 = 2;

// Histograms come off disk: bound the allocation-driving count by the
// wire's own size (8 bytes per slot) like every other untrusted
// parser in the tree. A GRSHARD2 directory tops out at kMaxShards+1
// anyway, so honest files never get near a suspicious count.
constexpr uint32_t kMaxSidecarShards = 1u << 20;

}  // namespace

std::vector<size_t> RankByHeat(const std::vector<uint64_t>& histogram) {
  std::vector<size_t> ranked;
  ranked.reserve(histogram.size());
  for (size_t i = 0; i < histogram.size(); ++i) {
    if (histogram[i] > 0) ranked.push_back(i);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&histogram](size_t a, size_t b) {
                     if (histogram[a] != histogram[b]) {
                       return histogram[a] > histogram[b];
                     }
                     return a < b;
                   });
  return ranked;
}

std::string DirSidecarPath(const std::string& cache_dir,
                           const std::string& corpus) {
  return cache_dir + "/" + (corpus.empty() ? "_default" : corpus) +
         ".grdir";
}

void SaveDirSidecar(const std::string& path, const DirSidecar& sidecar) {
  std::vector<uint8_t> body;
  body.reserve(32 + sidecar.raw_directory.size() +
               8 * sidecar.histogram.size());
  PutU32LE(kDirSidecarMagic, &body);
  PutU32LE(kDirSidecarV2, &body);
  PutU64LE(sidecar.dir_off, &body);
  PutU32LE(static_cast<uint32_t>(sidecar.raw_directory.size()), &body);
  body.insert(body.end(), sidecar.raw_directory.begin(),
              sidecar.raw_directory.end());
  PutU64LE(sidecar.histogram_epoch, &body);
  PutU32LE(static_cast<uint32_t>(sidecar.histogram.size()), &body);
  for (uint64_t hits : sidecar.histogram) PutU64LE(hits, &body);
  PutU64LE(HashBytes(body.data(), body.size()), &body);
  // Best effort: a failed write only costs a feature, never an answer.
  Status ignored = WriteFileBytes(path, body);
  (void)ignored;
}

Result<DirSidecar> LoadDirSidecar(const std::string& path) {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  const std::vector<uint8_t>& body = bytes.value();
  if (body.size() < 28) {
    return Status::Corruption("directory sidecar " + path +
                              " is truncated");
  }
  uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<uint64_t>(body[body.size() - 8 + i]) << (8 * i);
  }
  if (HashBytes(body.data(), body.size() - 8) != stored) {
    return Status::Corruption("directory sidecar " + path +
                              " fails its checksum");
  }
  ByteSource src(ByteSpan{body.data(), body.size() - 8},
                 "directory sidecar");
  uint32_t magic = 0, version = 0, len = 0;
  DirSidecar sidecar;
  GREPAIR_RETURN_IF_ERROR(src.ReadU32LE(&magic));
  GREPAIR_RETURN_IF_ERROR(src.ReadU32LE(&version));
  GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&sidecar.dir_off));
  GREPAIR_RETURN_IF_ERROR(src.ReadU32LE(&len));
  if (magic != kDirSidecarMagic ||
      (version != kDirSidecarV1 && version != kDirSidecarV2)) {
    return Status::Corruption("directory sidecar " + path +
                              " has a bad magic or version");
  }
  ByteSpan raw;
  GREPAIR_RETURN_IF_ERROR(src.ReadSpan(len, &raw));
  sidecar.raw_directory.assign(raw.begin(), raw.end());
  if (version == kDirSidecarV2) {
    uint32_t count = 0;
    GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&sidecar.histogram_epoch));
    GREPAIR_RETURN_IF_ERROR(src.ReadU32LE(&count));
    if (count > kMaxSidecarShards ||
        src.PeekRemaining().size < static_cast<size_t>(count) * 8) {
      return Status::Corruption("directory sidecar " + path +
                                " histogram count disagrees with the file");
    }
    sidecar.histogram.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint64_t hits = 0;
      GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&hits));
      sidecar.histogram.push_back(hits);
    }
  }
  GREPAIR_RETURN_IF_ERROR(src.ExpectExhausted("directory sidecar"));
  return sidecar;
}

void PlacementController::Refresh(const CorpusRegistry& registry) {
  // Gather every hot candidate across corpora. The registry is frozen
  // (spans and rows immutable), the histograms are atomics — no lock
  // needed to read.
  struct Candidate {
    uint64_t heat;
    uint32_t corpus;
    uint32_t shard;
    uint64_t length;
  };
  std::vector<Candidate> candidates;
  for (size_t c = 0; c < registry.size(); ++c) {
    const Corpus& corpus = registry.at(c);
    for (size_t s = 0; s < corpus.rows.size(); ++s) {
      uint64_t heat =
          corpus.shard_hits[s].load(std::memory_order_relaxed);
      uint64_t length = corpus.rows[s].length;
      if (heat == 0 || length == 0) continue;
      candidates.push_back({heat, static_cast<uint32_t>(c),
                            static_cast<uint32_t>(s), length});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.heat != b.heat) return a.heat > b.heat;
                     if (a.corpus != b.corpus) return a.corpus < b.corpus;
                     return a.shard < b.shard;
                   });
  // Greedy fill hot-first: a shard that overflows the remaining budget
  // is skipped, not a stopper, so small hot shards behind a big
  // lukewarm one still make the cut.
  std::set<uint64_t> want;
  uint64_t planned_bytes = 0;
  uint64_t planned_shards = 0;
  for (const Candidate& cand : candidates) {
    if (planned_bytes + cand.length > budget_bytes_) continue;
    want.insert((static_cast<uint64_t>(cand.corpus) << 32) | cand.shard);
    planned_bytes += cand.length;
    ++planned_shards;
  }
  MutexLock lock(mu_);
  // Unpin fallen-out shards first so the transient locked footprint
  // never exceeds the budget, then pin the newcomers.
  for (auto it = pinned_.begin(); it != pinned_.end();) {
    if (want.count(*it)) {
      ++it;
      continue;
    }
    uint32_t c = static_cast<uint32_t>(*it >> 32);
    uint32_t s = static_cast<uint32_t>(*it & 0xffffffffu);
    if (c < registry.size()) {
      const Corpus& corpus = registry.at(c);
      if (s < corpus.rows.size()) {
        (void)UnpinBytes(corpus.payload.subspan(corpus.rows[s].offset,
                                                corpus.rows[s].length));
        corpus.shard_pinned[s].store(0, std::memory_order_relaxed);
      }
    }
    it = pinned_.erase(it);
  }
  for (uint64_t key : want) {
    if (pinned_.count(key)) continue;
    uint32_t c = static_cast<uint32_t>(key >> 32);
    uint32_t s = static_cast<uint32_t>(key & 0xffffffffu);
    const Corpus& corpus = registry.at(c);
    // mlock is best-effort; the flag and the accounting record the
    // placement decision either way (see the header's coverage note).
    (void)PinBytes(corpus.payload.subspan(corpus.rows[s].offset,
                                          corpus.rows[s].length));
    corpus.shard_pinned[s].store(1, std::memory_order_relaxed);
    pinned_.insert(key);
  }
  shards_pinned_.store(planned_shards, std::memory_order_relaxed);
  pinned_bytes_.store(planned_bytes, std::memory_order_relaxed);
}

}  // namespace serve
}  // namespace grepair
