// The GRNF v2 STATS verb's body codec, plus the small synchronous
// admin client behind `grepair info --remote`.
//
// A kStats body is a point-in-time snapshot of one server process:
// process-wide counters followed by one record per served corpus,
// including the per-shard hit histogram — the hot-shard signal a
// placement/affinity layer will feed on. The encoding is the usual
// little-endian length-prefixed layout and the decoder applies the
// same untrusted-input discipline as every other wire parser in this
// tree (a stats frame crosses the same network as shard frames).
//
// Layout (after the u64 request id):
//
//   u64  connections     u64 requests    u64 bytes_sent   u64 errors
//   u32  corpus_count
//   per corpus:
//     u8  name_len   + name bytes
//     u8  inner_len  + inner codec name bytes
//     u64 num_nodes
//     u64 requests
//     u64 histogram_epoch (the corpus request counter the histogram
//                          was snapshot at — a client persisting it
//                          can tell fresher from staler)
//     u32 num_shards + per shard: u64 hit-count, u8 pinned flag
//                     (1 = under the server's pin budget right now)

#ifndef GREPAIR_SERVE_STATS_H_
#define GREPAIR_SERVE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/shard/sharded_codec.h"
#include "src/util/byte_io.h"
#include "src/util/status.h"

namespace grepair {
namespace serve {

/// \brief One corpus' slice of a server stats snapshot.
struct CorpusServeStats {
  std::string name;
  std::string inner_name;
  uint64_t num_nodes = 0;
  uint64_t requests = 0;                ///< shard requests answered
  /// The corpus request counter this histogram snapshot corresponds
  /// to — lets a client persisting histograms prefer the fresher one.
  uint64_t histogram_epoch = 0;
  std::vector<uint64_t> shard_hits;     ///< per-shard hit histogram
  /// Per-shard placement flags (same length as shard_hits): 1 when
  /// the shard is under the server's pin budget.
  std::vector<uint8_t> shard_pinned;
};

/// \brief A whole-process serving snapshot (the kStats payload).
struct ServerStatsSnapshot {
  uint64_t connections = 0;
  uint64_t requests = 0;
  uint64_t bytes_sent = 0;
  uint64_t errors = 0;
  std::vector<CorpusServeStats> corpora;
};

/// \brief Encodes a kStats body (u64 req_id + the snapshot).
std::vector<uint8_t> EncodeStatsBody(uint64_t req_id,
                                     const ServerStatsSnapshot& snapshot);

/// \brief Decodes a kStats body; *req_id receives the echoed request
/// id. Clean kCorruption on malformed bytes.
Result<ServerStatsSnapshot> DecodeStatsBody(ByteSpan body, uint64_t* req_id);

/// \brief Dials "host:port", performs the v2 handshake, and fetches a
/// stats snapshot over one short-lived connection. kUnavailable names
/// the peer when it is unreachable or stalls.
Result<ServerStatsSnapshot> FetchServerStats(const std::string& host_port,
                                             int io_timeout_ms = 30000);

/// \brief Dials "host:port", resolves `corpus` (empty = the sole
/// served corpus) and fetches + reparses its directory over one
/// short-lived connection — `info --remote`'s way to inspect a corpus
/// without a local copy. *resolved_name (when non-null) receives the
/// corpus name the server reports for the id it resolved.
Result<shard::ParsedDirectory> FetchCorpusDirectory(
    const std::string& host_port, const std::string& corpus,
    int io_timeout_ms = 30000, std::string* resolved_name = nullptr);

}  // namespace serve
}  // namespace grepair

#endif  // GREPAIR_SERVE_STATS_H_
