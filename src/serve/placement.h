// Histogram-driven shard placement: turning the per-shard hit
// histograms the STATS verb already collects into residency decisions.
//
// Two consumers share this header:
//
//  * Server side — PlacementController watches a frozen CorpusRegistry
//    and keeps the hottest shard payloads pinned (mlock, best-effort)
//    under a byte budget. Ranking is deterministic (heat descending,
//    then corpus/shard id ascending), so an unchanged histogram makes
//    Refresh a no-op and tests can predict the placement exactly.
//
//  * Client side — the `.grdir` sidecar the SSD tier writes next to
//    its cache gains the histogram (DirSidecar, format v2): a client
//    that reopens a corpus knows which shards were hot *before* it
//    issues the first query, so OpenRemoteContainer can warm the tier
//    and prefetch hot shards at open time instead of rediscovering
//    the working set one cold fault at a time. v1 sidecars (directory
//    only) still load; their histogram is simply empty.
//
// The "pinned" accounting everywhere in this layer is placement
// *coverage* — which shards the budget selected — not an mlock
// guarantee: RLIMIT_MEMLOCK is tight in containers, so the lock
// syscalls are best-effort while the decision stays deterministic.

#ifndef GREPAIR_SERVE_PLACEMENT_H_
#define GREPAIR_SERVE_PLACEMENT_H_

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/serve/registry.h"
#include "src/util/status.h"
#include "src/util/sync.h"

namespace grepair {
namespace serve {

/// \brief Shard ids ordered by heat: hits descending, id ascending as
/// the tie-break, shards with zero hits omitted. The one ranking both
/// the server-side controller and the client-side open-time warmer
/// use, so their notions of "hot" agree.
std::vector<size_t> RankByHeat(const std::vector<uint64_t>& histogram);

/// \brief A persisted corpus directory plus the hit histogram that was
/// current when it was saved — the `.grdir` sidecar's contents.
struct DirSidecar {
  uint64_t dir_off = 0;                ///< directory offset in container
  std::vector<uint8_t> raw_directory;  ///< raw v2 directory bytes
  uint64_t histogram_epoch = 0;  ///< server's corpus request counter at
                                 ///< save time (0 = no histogram yet)
  std::vector<uint64_t> histogram;  ///< per-shard hits at save time
};

/// \brief Sidecar path for `corpus` inside `cache_dir` (the empty
/// corpus name maps to "_default", mirroring the tier's layout).
std::string DirSidecarPath(const std::string& cache_dir,
                           const std::string& corpus);

/// \brief Writes the sidecar (format v2: directory + histogram,
/// checksummed). Best-effort — a failed write only costs the
/// offline-open and open-time-warming features.
void SaveDirSidecar(const std::string& path, const DirSidecar& sidecar);

/// \brief Loads and verifies a sidecar. Understands both format v1
/// (directory only; histogram comes back empty with epoch 0) and v2.
/// kCorruption on checksum/layout damage — a tampered sidecar fails
/// closed. The raw directory still needs ParseV2Directory; the loader
/// only peels the envelope.
Result<DirSidecar> LoadDirSidecar(const std::string& path);

/// \brief Server-side placement engine: ranks every (corpus, shard)
/// pair by its hit count, greedily fills the byte budget hot-first,
/// and pins/unpins registry payload spans to match. Also maintains
/// each Corpus' shard_pinned flags so the STATS verb can report the
/// placement to clients.
///
/// Thread-safe: connection threads may call Refresh concurrently with
/// each other and with stats readers (the registry is frozen, the
/// histograms are atomics, and the pin set is under a mutex).
class PlacementController {
 public:
  /// \brief `budget_bytes` caps the summed payload length of pinned
  /// shards. 0 disables pinning (Refresh only clears leftovers).
  explicit PlacementController(uint64_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  ~PlacementController() = default;
  PlacementController(const PlacementController&) = delete;
  PlacementController& operator=(const PlacementController&) = delete;

  /// \brief Re-ranks from the registry's current histograms and
  /// adjusts the pinned set. Idempotent for an unchanged histogram.
  void Refresh(const CorpusRegistry& registry)
      GREPAIR_LOCKS_EXCLUDED(mu_);

  /// \brief Current placement size (shards / payload bytes covered by
  /// the budget). Snapshot-safe without the mutex.
  uint64_t shards_pinned() const {
    return shards_pinned_.load(std::memory_order_relaxed);
  }
  uint64_t pinned_bytes() const {
    return pinned_bytes_.load(std::memory_order_relaxed);
  }

 private:
  const uint64_t budget_bytes_;
  Mutex mu_;
  /// Pinned (corpus << 32 | shard) keys, the diff base for Refresh.
  std::set<uint64_t> pinned_ GREPAIR_GUARDED_BY(mu_);
  std::atomic<uint64_t> shards_pinned_{0};
  std::atomic<uint64_t> pinned_bytes_{0};
};

}  // namespace serve
}  // namespace grepair

#endif  // GREPAIR_SERVE_PLACEMENT_H_
