// serve::ShardServer — one process serving many GRSHARD2 corpora over
// GRNF v2 (see src/net/README.md for the wire spec).
//
// The server owns a frozen CorpusRegistry: every container was mmapped
// and validated at registration, so serving is O(directory) at startup
// and O(payload bytes) per request — no shard is ever decoded
// server-side, which is exactly the paper's point: the compressed form
// is the wire form.
//
// A connection opens with a kHello/kHelloOk handshake; after that the
// server answers tagged requests (kOpenCorpus, kGetShard2, kGetStats),
// echoing each request id so a multiplexing client can run many shard
// faults in flight per connection. A GRNF v1 peer — one that skips the
// handshake and leads with kGetDir/kGetShard — gets a clean v1 error
// frame telling it to upgrade; the frame header layout is shared
// between versions, so the stream stays in sync and the old client
// reports a readable error instead of wire corruption.
//
// Concurrency: one accept thread plus one thread per connection, each
// handling that connection's requests sequentially (clients get
// concurrency from the pool + pipelining, not from per-request server
// threads). Stop() (and the destructor) shuts down the listener and
// every live connection and joins all threads; it is safe to call
// while requests are in flight.

#ifndef GREPAIR_SERVE_SERVER_H_
#define GREPAIR_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/frame.h"
#include "src/serve/placement.h"
#include "src/serve/registry.h"
#include "src/serve/stats.h"
#include "src/util/socket.h"
#include "src/util/status.h"
#include "src/util/sync.h"

namespace grepair {
namespace serve {

class ShardServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";  ///< bind address (loopback default)
    uint16_t port = 0;               ///< 0 = pick an ephemeral port
    int io_timeout_ms = 30000;       ///< per-connection send/recv bound
    /// Artificial per-shard-request service delay. Benchmarks use this
    /// to emulate storage/WAN latency on loopback (netem-style), so
    /// connection-pool speedups are measurable on any machine. Leave 0
    /// in production.
    int debug_shard_delay_ms = 0;
    /// Byte budget for histogram-driven pinning of hot shard payloads
    /// (mlock, best-effort — see src/serve/placement.h). 0 disables
    /// the placement controller.
    uint64_t pin_bytes = 0;
  };

  /// \brief Takes ownership of a populated registry (≥1 corpus) and
  /// starts serving it. The registry is frozen from here on.
  static Result<std::unique_ptr<ShardServer>> Start(CorpusRegistry registry,
                                                    const Options& options);
  static Result<std::unique_ptr<ShardServer>> Start(
      CorpusRegistry registry) {
    return Start(std::move(registry), Options());
  }

  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }
  std::string host_port() const {
    return host_ + ":" + std::to_string(port_);
  }
  const CorpusRegistry& registry() const { return registry_; }

  /// \brief Shuts the listener and every live connection down and
  /// joins all worker threads. Idempotent.
  void Stop() GREPAIR_LOCKS_EXCLUDED(stop_mutex_, conn_mutex_);

  /// \brief Snapshot of the serving counters, including the
  /// per-corpus hit histograms (what the STATS verb serves).
  ServerStatsSnapshot stats() const;

 private:
  ShardServer() = default;

  Status Init(const Options& options);
  void AcceptLoop() GREPAIR_LOCKS_EXCLUDED(conn_mutex_);
  void ServeConnection(size_t slot) GREPAIR_LOCKS_EXCLUDED(conn_mutex_);
  // One request -> one response frame (or error frame). Returns false
  // when the connection must close (unsyncable input stream).
  bool HandleFrame(Socket* socket, const net::Frame& frame);
  bool HandleOpenCorpus(Socket* socket, uint64_t req_id, ByteSource* body);
  bool HandleGetShard(Socket* socket, uint64_t req_id, ByteSource* body);
  Status SendFrame(Socket* socket, uint8_t type, ByteSpan body);
  // v2 tagged error (keeps the connection; the stream is in sync).
  Status SendError(Socket* socket, uint64_t req_id, const Status& status);
  // v1 error frame, for pre-handshake v1 peers.
  Status SendErrorV1(Socket* socket, const Status& status);

  CorpusRegistry registry_;

  // Histogram-driven pinning (null when Options::pin_bytes is 0).
  // Refreshed every kPlacementRefreshRequests shard requests and on
  // every stats snapshot, so placement follows the live histogram.
  static constexpr uint64_t kPlacementRefreshRequests = 256;
  std::unique_ptr<PlacementController> placement_;

  std::string host_;
  uint16_t port_ = 0;
  int io_timeout_ms_ = 30000;
  int debug_shard_delay_ms_ = 0;
  Socket listener_;
  std::thread accept_thread_;
  Mutex stop_mutex_;  // serializes Stop callers (guards no fields)
  std::atomic<bool> stopping_{false};

  // Live connections: sockets stay owned here so Stop can shut them
  // down mid-recv; slots are append-only. Finished connections close
  // their fd and park their slot in finished_slots_ for the accept
  // loop to reap (join) — Stop joins whatever remains. The Socket
  // objects the unique_ptrs point at are NOT guarded: a connection
  // thread reads its own socket lock-free while Stop shuts the fd
  // down, which is the documented shutdown-vs-recv protocol.
  Mutex conn_mutex_;
  std::vector<std::unique_ptr<Socket>> conn_sockets_
      GREPAIR_GUARDED_BY(conn_mutex_);
  std::vector<std::thread> conn_threads_ GREPAIR_GUARDED_BY(conn_mutex_);
  std::vector<size_t> finished_slots_ GREPAIR_GUARDED_BY(conn_mutex_);

  mutable std::atomic<uint64_t> stat_connections_{0};
  mutable std::atomic<uint64_t> stat_requests_{0};
  mutable std::atomic<uint64_t> stat_bytes_sent_{0};
  mutable std::atomic<uint64_t> stat_errors_{0};
};

}  // namespace serve
}  // namespace grepair

#endif  // GREPAIR_SERVE_SERVER_H_
