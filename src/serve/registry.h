// CorpusRegistry: the set of GRSHARD2 containers one shard-server
// process exports, each under an operator-chosen name.
//
// A corpus is registered from a file (`AddFile`, mmap-backed — the
// O(directory) lazy-open property of the storage layer carries over:
// registering N corpora faults no payload pages), from caller-owned
// bytes (`AddBytes`, the in-process test path), or by scanning a
// directory (`DiscoverDirectory`: every servable container found
// becomes a corpus named after its file). Every container is fully
// validated at registration — checksummed footer located, directory
// parsed with the hardened untrusted-input parser, and every frame the
// server could ever build from it checked against the GRNF body bound
// — so a corrupt corpus is refused at startup, never discovered by the
// first client.
//
// After the owning server starts, the registry is frozen: corpora are
// addressed by a dense u32 corpus id (their registration index), and
// lookups touch no locks. The per-corpus serving counters (request
// totals and the per-shard hit histogram behind the GRNF STATS verb)
// are atomics, mutated by connection threads and snapshot by stats
// readers without synchronization.

#ifndef GREPAIR_SERVE_REGISTRY_H_
#define GREPAIR_SERVE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/shard/sharded_codec.h"
#include "src/util/byte_io.h"
#include "src/util/mmap_file.h"
#include "src/util/status.h"

namespace grepair {
namespace serve {

/// \brief Corpus names are length-prefixed with a u8 on the wire.
inline constexpr size_t kMaxCorpusNameBytes = 255;

/// \brief One registered container plus its serving counters.
struct Corpus {
  std::string name;
  std::shared_ptr<MmapFile> file;  ///< pins payload_ when non-null
  ByteSpan payload;                ///< the GRSHARD2 container bytes
  ByteSpan dir_region;             ///< footer directory inside payload
  uint64_t dir_off = 0;
  std::string inner_name;
  uint64_t num_nodes = 0;
  std::vector<shard::ShardDirEntry> rows;

  // Serving counters (incremented by connection threads).
  mutable std::atomic<uint64_t> requests{0};
  /// Per-shard hit histogram (rows.size() slots): the hot-shard signal
  /// behind the STATS verb, groundwork for placement/affinity.
  std::unique_ptr<std::atomic<uint64_t>[]> shard_hits;
  /// Per-shard placement flags (rows.size() slots): 1 when the shard
  /// is under the server's pin budget right now. Written by the
  /// PlacementController, snapshot by the STATS verb so clients see
  /// the current placement.
  std::unique_ptr<std::atomic<uint8_t>[]> shard_pinned;
};

class CorpusRegistry {
 public:
  CorpusRegistry() = default;
  CorpusRegistry(CorpusRegistry&&) = default;
  CorpusRegistry& operator=(CorpusRegistry&&) = default;
  CorpusRegistry(const CorpusRegistry&) = delete;
  CorpusRegistry& operator=(const CorpusRegistry&) = delete;

  /// \brief Registers the container at `path` (a backend-tagged
  /// "GRPCODEC" file or a bare GRSHARD2 container) under `name`.
  /// kInvalidArgument for bad names, duplicate names, v1 containers
  /// (no footer directory; recompress with --container v2),
  /// non-sharded payloads, and containers whose directory or shards
  /// exceed the frame bound.
  Status AddFile(const std::string& name, const std::string& path);

  /// \brief Registers caller-owned container bytes under `name`. The
  /// caller keeps `payload`'s storage alive for the registry's
  /// lifetime (the in-process test path serving a serialized buffer).
  Status AddBytes(const std::string& name, ByteSpan payload);

  /// \brief Scans the directory at `path` (non-recursive) and
  /// registers every servable container in it, named by file basename
  /// minus extension. Files that are not servable containers are
  /// skipped (a corpus directory may hold sidecar files); name
  /// collisions with already-registered corpora are errors. *added
  /// (when non-null) receives the names registered, sorted.
  Status DiscoverDirectory(const std::string& path,
                           std::vector<std::string>* added = nullptr);

  /// \brief Resolves a client-supplied corpus name. The empty name
  /// resolves iff exactly one corpus is registered (so single-corpus
  /// deployments need no name); unknown names are kNotFound listing
  /// what is served. *corpus_id (when non-null) receives the dense id.
  Result<const Corpus*> Resolve(const std::string& name,
                                uint32_t* corpus_id = nullptr) const;

  size_t size() const { return corpora_.size(); }
  bool empty() const { return corpora_.empty(); }
  const Corpus& at(size_t corpus_id) const { return *corpora_[corpus_id]; }

 private:
  Status Add(const std::string& name, std::shared_ptr<MmapFile> file,
             ByteSpan payload);

  std::vector<std::unique_ptr<Corpus>> corpora_;
};

}  // namespace serve
}  // namespace grepair

#endif  // GREPAIR_SERVE_REGISTRY_H_
