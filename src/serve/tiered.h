// serve::TieredShardSource — a checksummed local-SSD shard cache
// stacked over any inner ShardSource, so a frontend fleet faults each
// shard across the WAN once and serves it from local disk after that.
//
// Layout: one content-addressed file per cached shard,
// "<hex payload checksum>-<length>.shard", in a flat cache directory,
// plus an in-memory LRU index (seeded from the directory at Create, so
// a warm cache survives process restarts — and even the server being
// gone). Content addressing makes the cache corpus-agnostic and
// self-verifying: the filename commits to the checksum, and every read
// is re-hashed against it before the bytes are served, so a corrupt or
// truncated cache file fails closed — it is deleted, counted, and the
// fetch falls through to the inner source.
//
// Writes are crash-safe: the payload goes through WriteFileBytesAtomic
// (a ".tmp" sibling rename(2)d into place — the helper this cache
// pioneered, now hoisted into src/util/mmap_file.h), so a crash
// mid-write leaves at worst a tmp file (ignored and eventually
// overwritten), never a truncated cache entry under the real name. A
// byte budget is enforced LRU: inserting past the budget evicts the
// stalest entries' files.
//
// Counters (cold fetches, warm hits, corrupt drops, evictions) flow
// into QueryStats through the AddStats seam, and the inner source's
// counters flow through this one — an SSD-warm run reports zero
// remote_fetches, which the bench asserts.

#ifndef GREPAIR_SERVE_TIERED_H_
#define GREPAIR_SERVE_TIERED_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/shard/sharded_codec.h"
#include "src/util/status.h"
#include "src/util/sync.h"

namespace grepair {
namespace serve {

class TieredShardSource : public shard::ShardSource {
 public:
  struct Options {
    std::string cache_dir;              ///< created if missing
    uint64_t max_bytes = 256ull << 20;  ///< LRU byte budget
  };

  /// \brief Stacks a cache at `options.cache_dir` over `inner`. `rows`
  /// is the corpus' parsed directory (per-shard lengths + checksums —
  /// the content addresses). The directory is created if missing and
  /// scanned to seed the LRU with already-cached shards.
  static Result<std::shared_ptr<TieredShardSource>> Create(
      std::shared_ptr<shard::ShardSource> inner,
      const std::vector<shard::ShardDirEntry>& rows, const Options& options);

  const char* kind() const override { return "tiered-ssd"; }

  Result<ByteSpan> FetchShard(size_t shard,
                              std::vector<uint8_t>* owned) override
      GREPAIR_LOCKS_EXCLUDED(mu_);

  // Advise calls are about the inner source's own storage.
  uint64_t AdviseShard(size_t shard) override {
    return inner_->AdviseShard(shard);
  }
  uint64_t AdviseSequential() override { return inner_->AdviseSequential(); }
  uint64_t AdviseNormal() override { return inner_->AdviseNormal(); }

  // Pinning is about bytes this stack holds locally: the tier's cache
  // files are disk, not memory, so the calls forward to the inner
  // source (a remote inner returns 0 — nothing pinnable client-side).
  uint64_t PinShard(size_t shard) override {
    return inner_->PinShard(shard);
  }
  uint64_t UnpinShard(size_t shard) override {
    return inner_->UnpinShard(shard);
  }

  /// \brief Batched warm-up of cached shards: every requested shard
  /// whose cache file is present is read end-to-end through the
  /// IoEngine (io_uring batches when available) so the page cache is
  /// hot before the per-shard faults re-read and verify the bytes.
  /// Shards not in the cache are left for the inner source's faults.
  /// Returns the number of io_uring submission rounds.
  uint64_t WarmShards(const std::vector<size_t>& shards) override
      GREPAIR_LOCKS_EXCLUDED(mu_);

  void AddStats(api::QueryStats* stats) const override;

  /// \brief Current cache footprint in bytes (tests/bench).
  uint64_t cache_bytes() const GREPAIR_LOCKS_EXCLUDED(mu_);

 private:
  TieredShardSource(std::shared_ptr<shard::ShardSource> inner,
                    std::string cache_dir, uint64_t max_bytes)
      : inner_(std::move(inner)),
        cache_dir_(std::move(cache_dir)),
        max_bytes_(max_bytes) {}

  Status SeedFromDisk() GREPAIR_LOCKS_EXCLUDED(mu_);
  std::string PathFor(size_t shard) const;
  /// Registers `filename` (size `bytes`) as most-recently-used and
  /// evicts past the budget.
  void InsertLocked(const std::string& filename, uint64_t bytes)
      GREPAIR_REQUIRES(mu_);
  void TouchLocked(const std::string& filename) GREPAIR_REQUIRES(mu_);
  void EraseLocked(const std::string& filename) GREPAIR_REQUIRES(mu_);

  std::shared_ptr<shard::ShardSource> inner_;
  std::string cache_dir_;
  uint64_t max_bytes_ = 0;

  // Content addresses, precomputed from the directory rows.
  std::vector<std::string> filenames_;  // "" for edgeless shards
  std::vector<uint64_t> lengths_;
  std::vector<uint64_t> checksums_;

  mutable Mutex mu_;  // guards the LRU index
  // Front = most recent. The map's value is (LRU position, file size).
  struct IndexEntry {
    std::list<std::string>::iterator lru_it;
    uint64_t bytes = 0;
  };
  std::list<std::string> lru_ GREPAIR_GUARDED_BY(mu_);
  std::unordered_map<std::string, IndexEntry> index_ GREPAIR_GUARDED_BY(mu_);
  uint64_t total_bytes_ GREPAIR_GUARDED_BY(mu_) = 0;

  mutable std::atomic<uint64_t> stat_warm_hits_{0};
  mutable std::atomic<uint64_t> stat_cold_fetches_{0};
  mutable std::atomic<uint64_t> stat_evictions_{0};
  mutable std::atomic<uint64_t> stat_corrupt_drops_{0};
};

}  // namespace serve
}  // namespace grepair

#endif  // GREPAIR_SERVE_TIERED_H_
