#include "src/serve/registry.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "src/api/container.h"
#include "src/net/frame.h"

namespace grepair {
namespace serve {

namespace {

// Fixed per-verb body overhead ahead of the variable part, used to
// prove at registration time that every response fits one frame:
// kCorpusDir = u64 req_id + u32 corpus_id + u64 dir_off; kShard2 =
// u64 req_id + u32 corpus_id + u32 shard index.
constexpr size_t kCorpusDirOverhead = 8 + 4 + 8;
constexpr size_t kShardOverhead = 8 + 4 + 4;

Status CheckCorpusName(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("corpus name must not be empty");
  }
  if (name.size() > kMaxCorpusNameBytes) {
    return Status::InvalidArgument(
        "corpus name \"" + name.substr(0, 32) + "...\" is " +
        std::to_string(name.size()) + " bytes (max " +
        std::to_string(kMaxCorpusNameBytes) + ")");
  }
  for (char c : name) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u <= 0x20 || u >= 0x7F || c == '/') {
      return Status::InvalidArgument(
          "corpus name \"" + name +
          "\" contains a byte outside printable ASCII (or '/', or "
          "whitespace)");
    }
  }
  return Status::OK();
}

// Basename minus the last extension: "/data/web.graph.grc" -> a
// discovery name of "web.graph".
std::string DiscoveryName(const std::string& filename) {
  size_t dot = filename.rfind('.');
  if (dot == std::string::npos || dot == 0) return filename;
  return filename.substr(0, dot);
}

}  // namespace

Status CorpusRegistry::AddFile(const std::string& name,
                               const std::string& path) {
  auto file = MmapFile::Open(path);
  if (!file.ok()) return file.status();
  ByteSpan bytes = file.value()->span();
  ByteSpan payload = bytes;
  if (api::IsCodecContainer(bytes)) {
    std::string backend;
    GREPAIR_RETURN_IF_ERROR(
        api::UnwrapCodecPayloadView(bytes, &backend, &payload));
  }
  Status added = Add(name, std::move(file).ValueOrDie(), payload);
  if (!added.ok() && added.code() == StatusCode::kInvalidArgument) {
    return Status::InvalidArgument(path + ": " + added.message());
  }
  return added;
}

Status CorpusRegistry::AddBytes(const std::string& name, ByteSpan payload) {
  if (api::IsCodecContainer(payload)) {
    std::string backend;
    GREPAIR_RETURN_IF_ERROR(
        api::UnwrapCodecPayloadView(payload, &backend, &payload));
  }
  return Add(name, nullptr, payload);
}

Status CorpusRegistry::Add(const std::string& name,
                           std::shared_ptr<MmapFile> file, ByteSpan payload) {
  GREPAIR_RETURN_IF_ERROR(CheckCorpusName(name));
  for (const auto& corpus : corpora_) {
    if (corpus->name == name) {
      return Status::InvalidArgument("corpus \"" + name +
                                     "\" is already registered");
    }
  }
  // v1 containers have no directory to serve; raw grammars and
  // single-shard payloads have no shards. Fail with advice, not a
  // generic corruption.
  if (payload.size >= 8 &&
      std::memcmp(payload.data, shard::kShardContainerMagic, 8) == 0) {
    return Status::InvalidArgument(
        "cannot serve a GRSHARD1 container (no footer directory); "
        "recompress with --container v2");
  }
  uint64_t dir_off = 0;
  auto region = shard::LocateV2DirectoryRegion(payload, &dir_off);
  if (!region.ok()) {
    if (region.status().code() == StatusCode::kCorruption &&
        payload.size >= 8 &&
        std::memcmp(payload.data, shard::kShardContainerMagicV2, 8) != 0) {
      return Status::InvalidArgument(
          "not a sharded v2 container; `serve` serves GRSHARD2 files "
          "(compress with a sharded backend)");
    }
    return region.status();
  }
  // Full parse up front: a corrupt container is refused at
  // registration, not discovered by the first client.
  auto dir = shard::ParseV2Directory(region.value(), dir_off);
  if (!dir.ok()) return dir.status();
  // Everything this server will ever put in a frame must fit the
  // frame bound — refuse oversized containers here with a clear error
  // instead of letting clients misdiagnose a too-long response frame
  // as wire corruption.
  if (kCorpusDirOverhead + region.value().size > net::kMaxFrameBody) {
    return Status::InvalidArgument(
        "container directory (" + std::to_string(region.value().size) +
        " bytes) exceeds the " + std::to_string(net::kMaxFrameBody) +
        "-byte frame bound; re-shard with more shards");
  }
  for (size_t i = 0; i < dir.value().rows.size(); ++i) {
    if (kShardOverhead + dir.value().rows[i].length > net::kMaxFrameBody) {
      return Status::InvalidArgument(
          "shard " + std::to_string(i) + " payload (" +
          std::to_string(dir.value().rows[i].length) +
          " bytes) exceeds the " + std::to_string(net::kMaxFrameBody) +
          "-byte frame bound; re-shard with more shards");
    }
  }

  auto corpus = std::make_unique<Corpus>();
  corpus->name = name;
  corpus->file = std::move(file);
  corpus->payload = payload;
  corpus->dir_region = region.value();
  corpus->dir_off = dir_off;
  corpus->inner_name = std::move(dir.value().inner_name);
  corpus->num_nodes = dir.value().num_nodes;
  corpus->rows = std::move(dir.value().rows);
  size_t shards = corpus->rows.size();
  corpus->shard_hits =
      std::make_unique<std::atomic<uint64_t>[]>(shards > 0 ? shards : 1);
  corpus->shard_pinned =
      std::make_unique<std::atomic<uint8_t>[]>(shards > 0 ? shards : 1);
  for (size_t i = 0; i < shards; ++i) {
    corpus->shard_hits[i].store(0, std::memory_order_relaxed);
    corpus->shard_pinned[i].store(0, std::memory_order_relaxed);
  }
  corpora_.push_back(std::move(corpus));
  return Status::OK();
}

Status CorpusRegistry::DiscoverDirectory(const std::string& path,
                                         std::vector<std::string>* added) {
  DIR* dir = opendir(path.c_str());
  if (dir == nullptr) {
    return Status::InvalidArgument("cannot open corpus directory " + path +
                                   ": " + std::strerror(errno));
  }
  std::vector<std::string> files;
  for (struct dirent* entry = readdir(dir); entry != nullptr;
       entry = readdir(dir)) {
    std::string filename = entry->d_name;
    if (filename == "." || filename == "..") continue;
    files.push_back(std::move(filename));
  }
  closedir(dir);
  // Deterministic registration order (and therefore corpus ids)
  // regardless of readdir order.
  std::sort(files.begin(), files.end());
  std::vector<std::string> names;
  for (const std::string& filename : files) {
    std::string full = path + "/" + filename;
    struct stat st;
    if (stat(full.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) continue;
    std::string name = DiscoveryName(filename);
    if (!CheckCorpusName(name).ok()) continue;
    // A name collision is an operator error; everything else that
    // fails registration is just not a servable container (corpus
    // directories may hold sidecar files) and is skipped.
    for (const auto& corpus : corpora_) {
      if (corpus->name == name) {
        return Status::InvalidArgument(
            full + ": discovered corpus name \"" + name +
            "\" is already registered");
      }
    }
    Status status = AddFile(name, full);
    if (status.ok()) names.push_back(name);
  }
  if (added != nullptr) *added = std::move(names);
  return Status::OK();
}

Result<const Corpus*> CorpusRegistry::Resolve(const std::string& name,
                                              uint32_t* corpus_id) const {
  auto served = [this]() {
    std::string list;
    for (const auto& corpus : corpora_) {
      if (!list.empty()) list += ", ";
      list += corpus->name;
    }
    return list.empty() ? std::string("<none>") : list;
  };
  if (name.empty()) {
    if (corpora_.size() == 1) {
      if (corpus_id != nullptr) *corpus_id = 0;
      return corpora_[0].get();
    }
    return Status::InvalidArgument(
        "no corpus name given and the server hosts " +
        std::to_string(corpora_.size()) + " corpora (" + served() +
        "); open \"host:port/name\"");
  }
  for (size_t i = 0; i < corpora_.size(); ++i) {
    if (corpora_[i]->name == name) {
      if (corpus_id != nullptr) *corpus_id = static_cast<uint32_t>(i);
      return corpora_[i].get();
    }
  }
  return Status::NotFound("corpus \"" + name + "\" is not served (serving: " +
                          served() + ")");
}

}  // namespace serve
}  // namespace grepair
