#include "src/serve/server.h"

#include <chrono>
#include <utility>

#include "src/util/hashing.h"

namespace grepair {
namespace serve {

using net::Frame;

Result<std::unique_ptr<ShardServer>> ShardServer::Start(
    CorpusRegistry registry, const Options& options) {
  if (registry.empty()) {
    return Status::InvalidArgument(
        "refusing to start a shard server with no corpora (register at "
        "least one --corpus or a discoverable directory)");
  }
  auto server = std::unique_ptr<ShardServer>(new ShardServer());
  server->registry_ = std::move(registry);
  GREPAIR_RETURN_IF_ERROR(server->Init(options));
  return server;
}

Status ShardServer::Init(const Options& options) {
  host_ = options.host;
  io_timeout_ms_ = options.io_timeout_ms;
  debug_shard_delay_ms_ = options.debug_shard_delay_ms;
  if (options.pin_bytes > 0) {
    placement_ = std::make_unique<PlacementController>(options.pin_bytes);
  }
  auto listener = Socket::ListenTcp(options.host, options.port, &port_);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).ValueOrDie();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

ShardServer::~ShardServer() { Stop(); }

void ShardServer::Stop() {
  // One teardown at a time; later callers wait for it and return to a
  // fully stopped server (the destructor relies on that).
  MutexLock stop_lock(stop_mutex_);
  if (stopping_.exchange(true)) return;
  // Unblock the accept loop and every parked recv. Shutdown only —
  // Close() writes the fd and would race the accept thread's read of
  // it; the descriptors are closed after the joins below. Some BSDs
  // refuse shutdown() on a listening socket (ENOTCONN) and leave
  // accept parked, so a best-effort self-connect wakes it portably.
  listener_.ShutdownBoth();
  {
    auto wake = Socket::ConnectTcp(host_, port_, /*timeout_ms=*/1000);
    (void)wake;  // accepted (and dropped) or refused — either unparks
  }
  {
    MutexLock lock(conn_mutex_);
    for (auto& socket : conn_sockets_) {
      if (socket != nullptr) socket->ShutdownBoth();
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // Joining with conn_mutex_ held would deadlock against a freshly
  // spawned ServeConnection blocked on that mutex at entry — move the
  // handles out first (stopping_ is set, so no new threads appear).
  std::vector<std::thread> threads;
  {
    MutexLock lock(conn_mutex_);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

void ShardServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto conn = listener_.Accept();
    if (stopping_.load(std::memory_order_relaxed)) break;
    if (!conn.ok()) {
      // Transient accept failure (e.g. EMFILE): back off briefly so a
      // persistent error cannot busy-spin the loop, then keep serving.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    Status t = conn.value().SetTimeouts(io_timeout_ms_);
    if (!t.ok()) continue;
    stat_connections_.fetch_add(1, std::memory_order_relaxed);
    // Reap connections that already finished (their fds are closed at
    // exit; this bounds the thread handles a long-lived server holds).
    std::vector<std::thread> finished;
    {
      MutexLock lock(conn_mutex_);
      if (stopping_.load(std::memory_order_relaxed)) break;
      for (size_t slot : finished_slots_) {
        finished.push_back(std::move(conn_threads_[slot]));
      }
      finished_slots_.clear();
      size_t slot = conn_sockets_.size();
      conn_sockets_.push_back(
          std::make_unique<Socket>(std::move(conn).ValueOrDie()));
      conn_threads_.emplace_back([this, slot] { ServeConnection(slot); });
    }
    for (auto& reaped : finished) {
      if (reaped.joinable()) reaped.join();
    }
  }
}

void ShardServer::ServeConnection(size_t slot) {
  Socket* socket;
  {
    MutexLock lock(conn_mutex_);
    socket = conn_sockets_[slot].get();
  }
  while (!stopping_.load(std::memory_order_relaxed)) {
    bool clean_eof = false;
    auto frame = net::ReadFrame(socket, &clean_eof);
    if (!frame.ok()) {
      if (!clean_eof) {
        stat_errors_.fetch_add(1, std::memory_order_relaxed);
        // Malformed bytes: the stream cannot be resynced — tell the
        // peer why (best effort) and drop the connection. The reply
        // is a v1 error frame: both protocol generations decode it.
        if (frame.status().code() == StatusCode::kCorruption) {
          (void)SendErrorV1(socket, frame.status());
        }
      }
      break;
    }
    if (!HandleFrame(socket, frame.value())) break;
  }
  socket->ShutdownBoth();
  // Release the descriptor now (a long-running server must not hold
  // one fd per past connection until Stop) and offer this thread's
  // handle to the accept loop for reaping.
  MutexLock lock(conn_mutex_);
  socket->Close();
  finished_slots_.push_back(slot);
}

bool ShardServer::HandleFrame(Socket* socket, const Frame& frame) {
  // A v1 peer leads with kGetDir/kGetShard instead of the handshake:
  // answer in its own dialect so it reports a readable upgrade error
  // instead of wire corruption. The shared header layout keeps the
  // stream in sync, so the connection can stay open.
  if (frame.version == net::kProtoV1) {
    return SendErrorV1(
               socket,
               Status::InvalidArgument(
                   "this server speaks GRNF v2 (multi-corpus); upgrade "
                   "the client, or point a v1 client at a v1 server"))
        .ok();
  }
  switch (frame.type) {
    case net::kHello: {
      // u32 highest version the client speaks. Re-greeting mid-stream
      // is harmless (idempotent), so no state machine here.
      ByteSource body_src(SpanOf(frame.body), "Hello body");
      uint32_t client_max = 0;
      if (frame.body.size() != 4 || !body_src.ReadU32LE(&client_max).ok()) {
        return SendErrorV1(socket,
                           Status::InvalidArgument(
                               "Hello body must be a u32 protocol version"))
            .ok();
      }
      if (client_max < net::kProtoV2) {
        return SendErrorV1(
                   socket,
                   Status::InvalidArgument(
                       "client speaks GRNF v" + std::to_string(client_max) +
                       "; this server serves v2 only"))
            .ok();
      }
      std::vector<uint8_t> body;
      PutU32LE(net::kProtoV2, &body);
      PutU32LE(static_cast<uint32_t>(registry_.size()), &body);
      stat_requests_.fetch_add(1, std::memory_order_relaxed);
      return SendFrame(socket, net::kHelloOk, SpanOf(body)).ok();
    }
    case net::kOpenCorpus:
    case net::kGetShard2:
    case net::kGetStats: {
      auto req_id = net::FrameRequestId(frame);
      if (!req_id.ok()) {
        return SendError(socket, 0,
                         Status::InvalidArgument(
                             "request body too short for a request id"))
            .ok();
      }
      ByteSource body_src(SpanOf(frame.body), "request body");
      (void)body_src.Skip(8);  // the request id just parsed
      if (frame.type == net::kOpenCorpus) {
        return HandleOpenCorpus(socket, req_id.value(), &body_src);
      }
      if (frame.type == net::kGetShard2) {
        return HandleGetShard(socket, req_id.value(), &body_src);
      }
      // kGetStats: no operands.
      if (body_src.PeekRemaining().size != 0) {
        return SendError(socket, req_id.value(),
                         Status::InvalidArgument(
                             "GetStats carries no operands"))
            .ok();
      }
      auto body = EncodeStatsBody(req_id.value(), stats());
      stat_requests_.fetch_add(1, std::memory_order_relaxed);
      return SendFrame(socket, net::kStats, SpanOf(body)).ok();
    }
    default:
      // Well-framed but senseless (a server->client type, say):
      // answer with an error and keep the connection — the stream is
      // still in sync.
      return SendError(socket, 0,
                       Status::InvalidArgument(
                           "unexpected frame type " +
                           std::to_string(frame.type)))
          .ok();
  }
}

bool ShardServer::HandleOpenCorpus(Socket* socket, uint64_t req_id,
                                   ByteSource* body_src) {
  uint8_t name_len = 0;
  if (!body_src->ReadU8(&name_len).ok() ||
      body_src->PeekRemaining().size != name_len) {
    return SendError(socket, req_id,
                     Status::InvalidArgument(
                         "OpenCorpus body must be a length-prefixed "
                         "corpus name"))
        .ok();
  }
  ByteSpan name_bytes = body_src->PeekRemaining();
  std::string name(name_bytes.begin(), name_bytes.end());
  uint32_t corpus_id = 0;
  auto corpus = registry_.Resolve(name, &corpus_id);
  if (!corpus.ok()) {
    return SendError(socket, req_id, corpus.status()).ok();
  }
  const Corpus& c = *corpus.value();
  std::vector<uint8_t> body;
  body.reserve(20 + c.dir_region.size);
  PutU64LE(req_id, &body);
  PutU32LE(corpus_id, &body);
  PutU64LE(c.dir_off, &body);
  body.insert(body.end(), c.dir_region.begin(), c.dir_region.end());
  stat_requests_.fetch_add(1, std::memory_order_relaxed);
  return SendFrame(socket, net::kCorpusDir, SpanOf(body)).ok();
}

bool ShardServer::HandleGetShard(Socket* socket, uint64_t req_id,
                                 ByteSource* body_src) {
  uint32_t corpus_id = 0;
  uint32_t index = 0;
  if (!body_src->ReadU32LE(&corpus_id).ok() ||
      !body_src->ReadU32LE(&index).ok() ||
      body_src->PeekRemaining().size != 0) {
    return SendError(socket, req_id,
                     Status::InvalidArgument(
                         "GetShard body must be u32 corpus id + u32 "
                         "shard index"))
        .ok();
  }
  if (corpus_id >= registry_.size()) {
    return SendError(socket, req_id,
                     Status::InvalidArgument(
                         "corpus id " + std::to_string(corpus_id) +
                         " out of range [0, " +
                         std::to_string(registry_.size()) + ")"))
        .ok();
  }
  const Corpus& corpus = registry_.at(corpus_id);
  if (index >= corpus.rows.size()) {
    return SendError(socket, req_id,
                     Status::InvalidArgument(
                         "shard index " + std::to_string(index) +
                         " out of range [0, " +
                         std::to_string(corpus.rows.size()) + ") in corpus " +
                         corpus.name))
        .ok();
  }
  const shard::ShardDirEntry& row = corpus.rows[index];
  if (row.length == 0) {
    return SendError(socket, req_id,
                     Status::InvalidArgument(
                         "shard " + std::to_string(index) + " of corpus " +
                         corpus.name + " is edgeless (no payload)"))
        .ok();
  }
  if (debug_shard_delay_ms_ > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(debug_shard_delay_ms_));
  }
  std::vector<uint8_t> body;
  body.reserve(16 + row.length);
  PutU64LE(req_id, &body);
  PutU32LE(corpus_id, &body);
  PutU32LE(index, &body);
  ByteSpan blob = corpus.payload.subspan(row.offset, row.length);
  body.insert(body.end(), blob.begin(), blob.end());
  stat_requests_.fetch_add(1, std::memory_order_relaxed);
  uint64_t seen = corpus.requests.fetch_add(1, std::memory_order_relaxed);
  corpus.shard_hits[index].fetch_add(1, std::memory_order_relaxed);
  // Periodic placement refresh off the serving path's own cadence: the
  // connection thread crossing the interval pays the (cheap, frozen-
  // registry) re-rank; everyone else just bumps atomics.
  if (placement_ != nullptr &&
      (seen + 1) % kPlacementRefreshRequests == 0) {
    placement_->Refresh(registry_);
  }
  return SendFrame(socket, net::kShard2, SpanOf(body)).ok();
}

Status ShardServer::SendFrame(Socket* socket, uint8_t type, ByteSpan body) {
  Status status = net::WriteFrame(socket, type, body);
  if (status.ok()) {
    stat_bytes_sent_.fetch_add(
        net::kFrameHeaderBytes + body.size + net::kFrameChecksumBytes,
        std::memory_order_relaxed);
  }
  return status;
}

Status ShardServer::SendError(Socket* socket, uint64_t req_id,
                              const Status& status) {
  stat_errors_.fetch_add(1, std::memory_order_relaxed);
  auto body = net::EncodeErrorBody2(req_id, status);
  return SendFrame(socket, net::kError2, SpanOf(body));
}

Status ShardServer::SendErrorV1(Socket* socket, const Status& status) {
  stat_errors_.fetch_add(1, std::memory_order_relaxed);
  auto body = net::EncodeErrorBody(status);
  return SendFrame(socket, net::kError, SpanOf(body));
}

ServerStatsSnapshot ShardServer::stats() const {
  // A stats reader is about to see the histogram — bring the placement
  // up to date first so the pinned flags it reports match.
  if (placement_ != nullptr) placement_->Refresh(registry_);
  ServerStatsSnapshot snapshot;
  snapshot.connections = stat_connections_.load(std::memory_order_relaxed);
  snapshot.requests = stat_requests_.load(std::memory_order_relaxed);
  snapshot.bytes_sent = stat_bytes_sent_.load(std::memory_order_relaxed);
  snapshot.errors = stat_errors_.load(std::memory_order_relaxed);
  snapshot.corpora.resize(registry_.size());
  for (size_t i = 0; i < registry_.size(); ++i) {
    const Corpus& corpus = registry_.at(i);
    CorpusServeStats& out = snapshot.corpora[i];
    out.name = corpus.name;
    out.inner_name = corpus.inner_name;
    out.num_nodes = corpus.num_nodes;
    out.requests = corpus.requests.load(std::memory_order_relaxed);
    // The histogram is a point-in-time read of live counters. The low
    // word of the epoch says *when* it was taken (the request total);
    // the high word says *of which corpus version* (the directory
    // hash), so a client comparing a persisted sidecar's epoch against
    // a live one never prefers warm data from a replaced corpus —
    // version bumps always change the epoch.
    out.histogram_epoch =
        (HashBytes(corpus.dir_region.data, corpus.dir_region.size)
         << 32) |
        (out.requests & 0xFFFFFFFFull);
    out.shard_hits.resize(corpus.rows.size());
    out.shard_pinned.resize(corpus.rows.size());
    for (size_t k = 0; k < corpus.rows.size(); ++k) {
      out.shard_hits[k] = corpus.shard_hits[k].load(
          std::memory_order_relaxed);
      out.shard_pinned[k] = corpus.shard_pinned[k].load(
          std::memory_order_relaxed);
    }
  }
  return snapshot;
}

}  // namespace serve
}  // namespace grepair
