#include "src/serve/tiered.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "src/util/hashing.h"
#include "src/util/io_engine.h"
#include "src/util/mmap_file.h"

namespace grepair {
namespace serve {

namespace {

constexpr const char kCacheSuffix[] = ".shard";

// mkdir -p, restricted to what a cache path needs.
Status EnsureDirectory(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("empty cache directory path");
  }
  std::string prefix;
  size_t start = 0;
  while (start <= path.size()) {
    size_t slash = path.find('/', start);
    if (slash == std::string::npos) slash = path.size();
    prefix = path.substr(0, slash);
    start = slash + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::InvalidArgument("cannot create cache directory " +
                                     prefix + ": " + std::strerror(errno));
    }
  }
  struct stat st;
  if (stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("cache path " + path +
                                   " is not a directory");
  }
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<TieredShardSource>> TieredShardSource::Create(
    std::shared_ptr<shard::ShardSource> inner,
    const std::vector<shard::ShardDirEntry>& rows, const Options& options) {
  if (inner == nullptr) {
    return Status::InvalidArgument("tiered cache needs an inner source");
  }
  if (options.cache_dir.empty()) {
    return Status::InvalidArgument("tiered cache needs a cache directory");
  }
  GREPAIR_RETURN_IF_ERROR(EnsureDirectory(options.cache_dir));
  auto source = std::shared_ptr<TieredShardSource>(new TieredShardSource(
      std::move(inner), options.cache_dir, options.max_bytes));
  source->filenames_.reserve(rows.size());
  source->lengths_.reserve(rows.size());
  source->checksums_.reserve(rows.size());
  for (const auto& row : rows) {
    source->lengths_.push_back(row.length);
    source->checksums_.push_back(row.checksum);
    if (row.length == 0) {
      source->filenames_.emplace_back();  // edgeless: nothing to cache
    } else {
      source->filenames_.push_back(HexU64(row.checksum) + "-" +
                                   std::to_string(row.length) +
                                   kCacheSuffix);
    }
  }
  GREPAIR_RETURN_IF_ERROR(source->SeedFromDisk());
  return source;
}

Status TieredShardSource::SeedFromDisk() {
  DIR* dir = opendir(cache_dir_.c_str());
  if (dir == nullptr) {
    return Status::InvalidArgument("cannot open cache directory " +
                                   cache_dir_ + ": " + std::strerror(errno));
  }
  struct Found {
    int64_t mtime;
    std::string name;
    uint64_t bytes;
  };
  std::vector<Found> found;
  for (struct dirent* entry = readdir(dir); entry != nullptr;
       entry = readdir(dir)) {
    std::string name = entry->d_name;
    size_t suffix_len = sizeof(kCacheSuffix) - 1;
    if (name.size() <= suffix_len ||
        name.compare(name.size() - suffix_len, suffix_len, kCacheSuffix) !=
            0) {
      continue;  // tmp files and strangers stay out of the index
    }
    struct stat st;
    std::string full = cache_dir_ + "/" + name;
    if (stat(full.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) continue;
    found.push_back({static_cast<int64_t>(st.st_mtime), std::move(name),
                     static_cast<uint64_t>(st.st_size)});
  }
  closedir(dir);
  // Oldest first, so the newest files end up most-recently-used; ties
  // (coarse mtime clocks) break by name for determinism.
  std::sort(found.begin(), found.end(), [](const Found& a, const Found& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.name < b.name;
  });
  MutexLock lock(mu_);
  for (const Found& f : found) {
    InsertLocked(f.name, f.bytes);
  }
  return Status::OK();
}

std::string TieredShardSource::PathFor(size_t shard) const {
  return cache_dir_ + "/" + filenames_[shard];
}

void TieredShardSource::InsertLocked(const std::string& filename,
                                     uint64_t bytes) {
  auto it = index_.find(filename);
  if (it != index_.end()) {
    TouchLocked(filename);
    return;
  }
  lru_.push_front(filename);
  index_[filename] = IndexEntry{lru_.begin(), bytes};
  total_bytes_ += bytes;
  // Evict past the budget, stalest first; the entry just inserted is
  // never the victim (a shard larger than the whole budget must still
  // be servable — it just won't have neighbors).
  while (total_bytes_ > max_bytes_ && lru_.size() > 1) {
    const std::string victim = lru_.back();
    std::remove((cache_dir_ + "/" + victim).c_str());
    stat_evictions_.fetch_add(1, std::memory_order_relaxed);
    EraseLocked(victim);
  }
}

void TieredShardSource::TouchLocked(const std::string& filename) {
  auto it = index_.find(filename);
  if (it == index_.end()) return;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  it->second.lru_it = lru_.begin();
}

void TieredShardSource::EraseLocked(const std::string& filename) {
  auto it = index_.find(filename);
  if (it == index_.end()) return;
  total_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  index_.erase(it);
}

Result<ByteSpan> TieredShardSource::FetchShard(size_t shard,
                                               std::vector<uint8_t>* owned) {
  if (shard >= lengths_.size()) {
    return Status::Internal("shard index " + std::to_string(shard) +
                            " out of range for tiered source");
  }
  if (filenames_[shard].empty()) {
    return inner_->FetchShard(shard, owned);  // edgeless passthrough
  }
  const std::string& filename = filenames_[shard];
  const std::string path = PathFor(shard);
  // Warm probe: read, then verify against the content address. Every
  // bad outcome (missing, truncated, bit-flipped) falls through to
  // the inner source — the cache can only ever serve bytes that hash
  // to what the corpus directory promised.
  auto cached = ReadFileBytes(path);
  if (cached.ok()) {
    const std::vector<uint8_t>& bytes = cached.value();
    if (bytes.size() == lengths_[shard] &&
        HashBytes(bytes.data(), bytes.size()) == checksums_[shard]) {
      stat_warm_hits_.fetch_add(1, std::memory_order_relaxed);
      {
        // InsertLocked, not TouchLocked: a valid file on disk that is
        // absent from the index (seeded externally, or raced past
        // SeedFromDisk) must start being byte-accounted here, or the
        // on-disk footprint silently outgrows the budget. For indexed
        // entries this degenerates to a touch.
        MutexLock lock(mu_);
        InsertLocked(filename, bytes.size());
      }
      *owned = std::move(cached).ValueOrDie();
      return SpanOf(*owned);
    }
    // Fails closed: delete the impostor, count it, refetch.
    stat_corrupt_drops_.fetch_add(1, std::memory_order_relaxed);
    std::remove(path.c_str());
    {
      MutexLock lock(mu_);
      EraseLocked(filename);
    }
  }
  auto fetched = inner_->FetchShard(shard, owned);
  if (!fetched.ok()) return fetched.status();
  ByteSpan payload = fetched.value();
  stat_cold_fetches_.fetch_add(1, std::memory_order_relaxed);
  // Only verified bytes are cached (the caller re-verifies anyway;
  // this keeps a lying inner source from poisoning the disk). The
  // write is tmp+rename (WriteFileBytesAtomic) so a crash mid-write
  // never leaves a truncated file under the real name. Best-effort
  // durable by design: no fsync — a file that loses a power race is
  // caught by the read-time checksum and refetched.
  if (payload.size == lengths_[shard] &&
      HashBytes(payload.data, payload.size) == checksums_[shard]) {
    if (WriteFileBytesAtomic(path, payload).ok()) {
      MutexLock lock(mu_);
      InsertLocked(filename, payload.size);
    }
  }
  return payload;
}

uint64_t TieredShardSource::WarmShards(const std::vector<size_t>& shards) {
  // Collect the cached candidates under the lock (membership + touch),
  // then do the IO outside it. A file evicted between the check and
  // the read just makes that read fail — harmless, the warm-up is
  // advisory.
  struct Candidate {
    size_t shard;
    std::string path;
    uint64_t length;
  };
  std::vector<Candidate> warm;
  {
    MutexLock lock(mu_);
    for (size_t s : shards) {
      if (s >= filenames_.size() || filenames_[s].empty()) continue;
      if (index_.find(filenames_[s]) == index_.end()) continue;
      TouchLocked(filenames_[s]);
      warm.push_back({s, PathFor(s), lengths_[s]});
    }
  }
  if (warm.empty()) return 0;
  uint64_t batches = 0;
  std::vector<IoReadRequest> reads;
  std::vector<std::vector<uint8_t>> buffers;
  std::vector<int> fds;
  constexpr size_t kWarmChunkBytes = 32u << 20;
  size_t chunk_bytes = 0;
  auto flush = [&]() {
    if (!reads.empty()) {
      batches += IoEngine::Default().ReadBatch(&reads);
    }
    for (int fd : fds) ::close(fd);
    reads.clear();
    buffers.clear();
    fds.clear();
    chunk_bytes = 0;
  };
  for (const Candidate& cand : warm) {
    if (cand.length == 0 ||
        cand.length > std::numeric_limits<uint32_t>::max()) {
      continue;
    }
    int fd = ::open(cand.path.c_str(), O_RDONLY);
    if (fd < 0) continue;  // evicted meanwhile
    if (!reads.empty() && chunk_bytes + cand.length > kWarmChunkBytes) {
      flush();
    }
    buffers.emplace_back(cand.length);
    IoReadRequest req;
    req.fd = fd;
    req.offset = 0;
    req.dst = buffers.back().data();
    req.length = static_cast<uint32_t>(cand.length);
    reads.push_back(req);
    fds.push_back(fd);
    chunk_bytes += cand.length;
  }
  flush();
  return batches;
}

void TieredShardSource::AddStats(api::QueryStats* stats) const {
  stats->tier_warm_hits += stat_warm_hits_.load(std::memory_order_relaxed);
  stats->tier_cold_fetches +=
      stat_cold_fetches_.load(std::memory_order_relaxed);
  stats->tier_evictions += stat_evictions_.load(std::memory_order_relaxed);
  stats->tier_corrupt_drops +=
      stat_corrupt_drops_.load(std::memory_order_relaxed);
  inner_->AddStats(stats);
}

uint64_t TieredShardSource::cache_bytes() const {
  MutexLock lock(mu_);
  return total_bytes_;
}

}  // namespace serve
}  // namespace grepair
