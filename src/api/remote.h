// api::OpenRemote — open a compressed graph served by `grepair serve`
// on another machine, behind the same CompressedRep interface as a
// local file:
//
//   auto rep = grepair::api::OpenRemote("10.0.0.7:9000/wikidata");
//   rep.value()->OutNeighbors(42);   // faults one shard over TCP
//
// The target is "host:port[/corpus]" — the corpus name may be omitted
// when the server hosts a single corpus. The returned rep is the lazy
// sharded rep: the directory is fetched at open, each cold shard
// faults over a multiplexed connection pool on first touch
// (checksum-verified like a local fault), and the prefetch pool, query
// caches and QueryStats counters work unchanged —
// remote_fetches/remote_bytes say what crossed the wire, the pool_*
// counters say how, and with an SSD cache dir configured the tier_*
// counters say what local disk absorbed.

#ifndef GREPAIR_API_REMOTE_H_
#define GREPAIR_API_REMOTE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/api/graph_codec.h"
#include "src/util/status.h"

namespace grepair {
namespace api {

/// \brief Knobs for OpenRemote. Defaults match a LAN frontend.
struct RemoteOptions {
  /// Bounds the connect and every shard fetch — a stalled or dead
  /// server is a kUnavailable Status, never a hang.
  int io_timeout_ms = 30000;
  /// Connections in the multiplexed pool (clamped to [1, 64]).
  int pool_size = 4;
  /// When non-empty, shards are cached (checksummed, LRU) in this
  /// local directory and served from it on later faults — including
  /// after the server goes away.
  std::string ssd_cache_dir;
  /// Byte budget of the SSD cache.
  uint64_t ssd_cache_bytes = 256ull << 20;
  /// Additional "host:port" replicas serving the same corpus; shard
  /// fetches are routed shard-id-mod-N with failover (the affinity
  /// layer, see src/serve/pool.h).
  std::vector<std::string> replicas;
  /// Client-side pin budget (ShardedRep::ApplyPlacement); 0 = off.
  uint64_t pin_bytes = 0;
  /// Warm the tier and prefetch hot shards at open time from the best
  /// available histogram (persisted sidecar or a fresh STATS call).
  bool warm_from_histogram = true;
};

/// \brief Opens the GRSHARD2 corpus served at "host:port[/corpus]".
Result<std::unique_ptr<CompressedRep>> OpenRemote(
    const std::string& target, const RemoteOptions& options);
Result<std::unique_ptr<CompressedRep>> OpenRemote(
    const std::string& target);

/// \brief Back-compat convenience: timeout-only overload.
Result<std::unique_ptr<CompressedRep>> OpenRemote(const std::string& target,
                                                  int io_timeout_ms);

}  // namespace api
}  // namespace grepair

#endif  // GREPAIR_API_REMOTE_H_
