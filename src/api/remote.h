// api::OpenRemote — open a compressed graph served by `grepair serve`
// on another machine, behind the same CompressedRep interface as a
// local file:
//
//   auto rep = grepair::api::OpenRemote("10.0.0.7:9000");
//   rep.value()->OutNeighbors(42);   // faults one shard over TCP
//
// The returned rep is the lazy sharded rep: the directory is fetched
// at open, each cold shard faults across the network on first touch
// (checksum-verified like a local fault), and the prefetch pool,
// query caches and QueryStats counters work unchanged —
// remote_fetches/remote_bytes say what crossed the wire.

#ifndef GREPAIR_API_REMOTE_H_
#define GREPAIR_API_REMOTE_H_

#include <memory>
#include <string>

#include "src/api/graph_codec.h"
#include "src/util/status.h"

namespace grepair {
namespace api {

/// \brief Opens the GRSHARD2 container served at "host:port".
/// `io_timeout_ms` bounds the connect and every shard fetch —
/// a stalled or dead server is a kUnavailable Status, never a hang.
Result<std::unique_ptr<CompressedRep>> OpenRemote(
    const std::string& host_port, int io_timeout_ms = 30000);

}  // namespace api
}  // namespace grepair

#endif  // GREPAIR_API_REMOTE_H_
