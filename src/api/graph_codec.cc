#include "src/api/graph_codec.h"

#include <cerrno>
#include <cstdlib>

namespace grepair {
namespace api {

Result<CodecOptions> CodecOptions::Parse(const std::string& spec) {
  CodecOptions options;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("bad option '" + item +
                                     "' (want key=value)");
    }
    options.Set(item.substr(0, eq), item.substr(eq + 1));
  }
  return options;
}

Result<int64_t> CodecOptions::GetInt(const std::string& key,
                                     int64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("option " + key + "=" + it->second +
                                   " is not an integer");
  }
  return static_cast<int64_t>(v);
}

Result<bool> CodecOptions::GetBool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  return Status::InvalidArgument("option " + key + "=" + it->second +
                                 " is not a boolean");
}

std::string CodecOptions::GetString(const std::string& key,
                                    const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

Status CodecOptions::ExpectKeys(
    const std::vector<std::string>& allowed) const {
  for (const auto& [key, value] : values_) {
    bool known = false;
    for (const auto& a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("unknown codec option '" + key + "'");
    }
  }
  return Status::OK();
}

Result<std::vector<uint64_t>> CompressedRep::OutNeighbors(uint64_t) const {
  return Status::Unimplemented("codec does not support neighbor queries");
}

Result<std::vector<uint64_t>> CompressedRep::InNeighbors(uint64_t) const {
  return Status::Unimplemented("codec does not support neighbor queries");
}

Result<bool> CompressedRep::Reachable(uint64_t, uint64_t) const {
  return Status::Unimplemented(
      "codec does not support reachability queries");
}

}  // namespace api
}  // namespace grepair
