#include "src/api/graph_codec.h"

#include <cerrno>
#include <cstdlib>

#include "src/api/container.h"

namespace grepair {
namespace api {

Result<CodecOptions> CodecOptions::Parse(const std::string& spec) {
  CodecOptions options;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("bad option '" + item +
                                     "' (want key=value)");
    }
    options.Set(item.substr(0, eq), item.substr(eq + 1));
  }
  return options;
}

Result<int64_t> CodecOptions::GetInt(const std::string& key,
                                     int64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("option " + key + "=" + it->second +
                                   " is not an integer");
  }
  return static_cast<int64_t>(v);
}

Result<bool> CodecOptions::GetBool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  return Status::InvalidArgument("option " + key + "=" + it->second +
                                 " is not a boolean");
}

std::string CodecOptions::GetString(const std::string& key,
                                    const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

Status CodecOptions::ExpectKeys(
    const std::vector<std::string>& allowed) const {
  for (const auto& [key, value] : values_) {
    bool known = false;
    for (const auto& a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      // List what the codec does accept: a typo'd key should not send
      // the user to the sources to find the option table.
      std::string accepted;
      for (const auto& a : allowed) {
        if (!accepted.empty()) accepted += ", ";
        accepted += a;
      }
      if (accepted.empty()) accepted = "none";
      return Status::InvalidArgument("unknown codec option '" + key +
                                     "' (accepted keys: " + accepted + ")");
    }
  }
  return Status::OK();
}

Status CheckNodeId(uint64_t node, uint64_t num_nodes) {
  if (node >= num_nodes) {
    return Status::InvalidArgument(
        "node id " + std::to_string(node) + " out of range [0, " +
        std::to_string(num_nodes) + ")");
  }
  return Status::OK();
}

Result<std::vector<uint64_t>> CompressedRep::OutNeighbors(uint64_t) const {
  return Status::Unimplemented("codec does not support neighbor queries");
}

Result<std::vector<uint64_t>> CompressedRep::InNeighbors(uint64_t) const {
  return Status::Unimplemented("codec does not support neighbor queries");
}

Result<bool> CompressedRep::Reachable(uint64_t, uint64_t) const {
  return Status::Unimplemented(
      "codec does not support reachability queries");
}

Result<std::vector<std::vector<uint64_t>>> CompressedRep::OutNeighborsBatch(
    const std::vector<uint64_t>& nodes) const {
  std::vector<std::vector<uint64_t>> results;
  results.reserve(nodes.size());
  for (uint64_t node : nodes) {
    auto r = OutNeighbors(node);
    if (!r.ok()) return r.status();
    results.push_back(std::move(r).ValueOrDie());
  }
  return results;
}

Result<std::vector<uint8_t>> CompressedRep::ReachableBatch(
    const std::vector<std::pair<uint64_t, uint64_t>>& pairs) const {
  std::vector<uint8_t> results;
  results.reserve(pairs.size());
  for (const auto& [from, to] : pairs) {
    auto r = Reachable(from, to);
    if (!r.ok()) return r.status();
    results.push_back(r.value() ? 1 : 0);
  }
  return results;
}

Result<std::unique_ptr<CompressedRep>> GraphCodec::DeserializeSpan(
    ByteSpan bytes) const {
  return Deserialize(bytes.ToVector());
}

Result<std::unique_ptr<CompressedRep>> GraphCodec::OpenPayload(
    std::shared_ptr<MmapFile> /*file*/, ByteSpan payload) const {
  return DeserializeSpan(payload);
}

Result<std::unique_ptr<CompressedRep>> GraphCodec::Open(
    const std::string& path) const {
  auto file = MmapFile::Open(path);
  if (!file.ok()) return file.status();
  ByteSpan bytes = file.value()->span();
  ByteSpan payload = bytes;
  if (IsCodecContainer(bytes)) {
    std::string tagged_name;
    GREPAIR_RETURN_IF_ERROR(
        UnwrapCodecPayloadView(bytes, &tagged_name, &payload));
    if (tagged_name != name()) {
      return Status::InvalidArgument(
          path + " was produced by codec '" + tagged_name + "', not '" +
          name() + "'");
    }
  }
  return OpenPayload(std::move(file).ValueOrDie(), payload);
}

}  // namespace api
}  // namespace grepair
