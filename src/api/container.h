// Tagged codec container: the on-disk framing for backend-tagged
// compressed files.
//
// A container is `magic "GRPCODEC" | u8 name_len | name | payload`,
// where `name` is the registry name of the codec that produced
// `payload` (its CompressedRep::Serialize() bytes). The CLI writes
// this frame so `decompress` can route to the right backend without
// being told; the sharded meta-codec nests its own per-shard payloads
// inside one. The layout is a stability surface: golden-file tests
// (tests/container_format_test.cc) pin the exact bytes, so any change
// here must bump the magic, not mutate the existing frame.

#ifndef GREPAIR_API_CONTAINER_H_
#define GREPAIR_API_CONTAINER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/byte_io.h"
#include "src/util/mmap_file.h"
#include "src/util/status.h"

namespace grepair {
namespace api {

class CompressedRep;

/// \brief The 8-byte frame magic ("GRPCODEC", no terminator).
extern const char kCodecContainerMagic[8];

/// \brief Frames `payload` as a backend-tagged container. `name` must
/// be a registry-style codec name of at most 255 bytes.
std::vector<uint8_t> WrapCodecPayload(const std::string& name,
                                      const std::vector<uint8_t>& payload);

/// \brief True if `bytes` starts with the container magic.
bool IsCodecContainer(ByteSpan bytes);
bool IsCodecContainer(const std::vector<uint8_t>& bytes);

/// \brief Splits a tagged container into codec name + payload.
/// kInvalidArgument when the magic is absent (the file is some other
/// format, e.g. a raw .grg grammar); kCorruption when the magic is
/// present but the frame is truncated.
Status UnwrapCodecPayload(const std::vector<uint8_t>& bytes,
                          std::string* name, std::vector<uint8_t>* payload);

/// \brief Zero-copy unwrap: same contract as UnwrapCodecPayload, but
/// `*payload` is a borrowed view into `bytes` — nothing is copied, so
/// a multi-gigabyte mapped container costs only the name parse here.
Status UnwrapCodecPayloadView(ByteSpan bytes, std::string* name,
                              ByteSpan* payload);

/// \brief Opens a backend-tagged compressed file via mmap, resolving
/// the codec named in the frame through the registry; the codec's
/// OpenPayload decides eager vs lazy materialization (the sharded
/// GRSHARD2 path stays lazy and keeps the mapping alive). On success
/// `*backend_name` (optional) receives the embedded codec name.
/// kInvalidArgument when the file is not a tagged container.
Result<std::unique_ptr<CompressedRep>> OpenCompressedFile(
    const std::string& path, std::string* backend_name = nullptr);

/// \brief Opens a versioned corpus: `base_path` (a backend-tagged
/// sharded GRSHARD2 container) plus zero or more GRSHARD3 delta files
/// in chain order. Each delta's lineage is verified before anything is
/// trusted — its recorded (hash, size) of the previous chain file must
/// match the bytes on disk, its directory checksum must match the
/// base's, and its own trailing checksum must hold. Deltas are
/// cumulative, so the corpus the last delta describes is what queries
/// see. kInvalidArgument when the base is not a sharded container;
/// kCorruption on any chain mismatch (fail closed — a wrong-base delta
/// is never partially applied).
Result<std::unique_ptr<CompressedRep>> OpenVersioned(
    const std::string& base_path,
    const std::vector<std::string>& delta_paths,
    std::string* backend_name = nullptr);

}  // namespace api
}  // namespace grepair

#endif  // GREPAIR_API_CONTAINER_H_
