#include "src/api/codec_registry.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "src/shard/sharded_codec.h"
#include "src/util/sync.h"

namespace grepair {
namespace api {

namespace internal {
// Defined in builtin_codecs.cc. Called through a hard symbol reference
// (not static initializers alone) so the builtin adapters are linked
// in even from a static library, where the linker drops object files
// nothing refers to.
void RegisterBuiltinCodecs();
}  // namespace internal

namespace {

// Guarded by RegistryMutex(); function-local statics cannot carry
// GUARDED_BY, so every access below pairs FactoryMap() with a
// MutexLock on RegistryMutex() by convention.
std::map<std::string, CodecRegistry::Factory>& FactoryMap() {
  static auto* factories =
      new std::map<std::string, CodecRegistry::Factory>();
  return *factories;
}

Mutex& RegistryMutex() {
  static auto* mutex = new Mutex();
  return *mutex;
}

void EnsureBuiltins() {
  static std::once_flag once;
  std::call_once(once, internal::RegisterBuiltinCodecs);
}

}  // namespace

bool CodecRegistry::Register(const std::string& name, Factory factory) {
  MutexLock lock(RegistryMutex());
  FactoryMap()[name] = factory;
  return true;
}

Result<std::unique_ptr<GraphCodec>> CodecRegistry::Create(
    const std::string& name) {
  EnsureBuiltins();
  Factory factory = nullptr;
  {
    MutexLock lock(RegistryMutex());
    auto it = FactoryMap().find(name);
    if (it != FactoryMap().end()) factory = it->second;
  }
  // "sharded:<inner>" resolves for ANY registered inner codec, not
  // just the pre-registered builtin variants (one level of nesting;
  // a sharded shard would just pay the container tax twice).
  constexpr char kShardedPrefix[] = "sharded:";
  if (factory == nullptr && name.rfind(kShardedPrefix, 0) == 0) {
    std::string inner = name.substr(sizeof(kShardedPrefix) - 1);
    if (inner.rfind(kShardedPrefix, 0) == 0) {
      return Status::InvalidArgument(
          "a sharded inner codec cannot itself be sharded ('" + name + "')");
    }
    auto inner_codec = Create(inner);
    if (!inner_codec.ok()) return inner_codec.status();
    return std::unique_ptr<GraphCodec>(new shard::ShardedCodec(
        inner, std::move(inner_codec).ValueOrDie()));
  }
  if (factory == nullptr) {
    std::string known;
    for (const auto& n : Names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return Status::NotFound("no codec named '" + name + "' (known: " +
                            known + ")");
  }
  return factory();
}

std::vector<std::string> CodecRegistry::Names() {
  EnsureBuiltins();
  MutexLock lock(RegistryMutex());
  std::vector<std::string> names;
  names.reserve(FactoryMap().size());
  for (const auto& [name, factory] : FactoryMap()) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::vector<std::string> CodecRegistry::BaseNames() {
  std::vector<std::string> names;
  for (auto& name : Names()) {
    if (name.rfind("sharded:", 0) != 0) names.push_back(std::move(name));
  }
  return names;
}

}  // namespace api
}  // namespace grepair
