// GraphCodec: the one polymorphic compress/query/serialize interface
// every compressor in this repo sits behind.
//
// The paper's comparison — gRePair vs the k^2-tree family vs LM/HN vs
// string RePair vs Deflate — is a comparison of *codecs*: each takes a
// hypergraph, produces a compressed representation with a byte size,
// and (for some) answers neighborhood/reachability queries without
// decompression. This header abstracts exactly that contract so bench
// tables, examples and the CLI iterate one registry instead of
// hand-rolling per-baseline glue:
//
//   auto codec = CodecRegistry::Create("k2").ValueOrDie();
//   auto rep = codec->Compress(graph, alphabet, options).ValueOrDie();
//   rep->Serialize();               // round-trippable bytes
//   rep->ByteSize();                // the bench tables' size metric
//   rep->OutNeighbors(v);           // capability-gated, may be
//                                   //   Unimplemented for this codec
//   rep->Decompress();              // exact graph reconstruction
//
// Capability flags say up front what a codec can do (labels,
// hyperedges, queries); the query entry points additionally return
// Status::Unimplemented when unsupported, so callers may either check
// capabilities() or just handle the status.

#ifndef GREPAIR_API_GRAPH_CODEC_H_
#define GREPAIR_API_GRAPH_CODEC_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/hypergraph.h"
#include "src/util/byte_io.h"
#include "src/util/mmap_file.h"
#include "src/util/status.h"

namespace grepair {
namespace api {

/// \brief String-keyed codec options ("k=4,prune=false"), parsed and
/// validated per codec. Unknown keys are rejected by the codec, not
/// silently dropped, so typos fail loudly.
class CodecOptions {
 public:
  CodecOptions() = default;

  /// \brief Parses a comma-separated "key=value,..." spec (the CLI's
  /// --options syntax). Empty spec yields empty options.
  static Result<CodecOptions> Parse(const std::string& spec);

  void Set(const std::string& key, std::string value) {
    values_[key] = std::move(value);
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  bool empty() const { return values_.empty(); }
  const std::map<std::string, std::string>& entries() const {
    return values_;
  }

  /// \brief Integer option or `def` when absent; kInvalidArgument on a
  /// non-numeric value.
  Result<int64_t> GetInt(const std::string& key, int64_t def) const;

  /// \brief Boolean option ("true"/"false"/"1"/"0") or `def`.
  Result<bool> GetBool(const std::string& key, bool def) const;

  /// \brief String option or `def`.
  std::string GetString(const std::string& key,
                        const std::string& def) const;

  /// \brief kInvalidArgument if any present key is not in `allowed`
  /// (each codec calls this with its full key list).
  Status ExpectKeys(const std::vector<std::string>& allowed) const;

 private:
  std::map<std::string, std::string> values_;
};

/// \brief What a codec supports, beyond compress + serialize +
/// decompress (which every codec must provide).
enum CodecCapability : uint32_t {
  kSupportsLabels = 1u << 0,      ///< preserves edge labels
  kSupportsHyperedges = 1u << 1,  ///< accepts edges of rank != 2
  kNeighborQueries = 1u << 2,     ///< Out/InNeighbors without decompression
  kReachabilityQueries = 1u << 3, ///< Reachable without decompression
};

/// \brief Counters exposed by the query subsystem of a CompressedRep.
///
/// All counters are cumulative since construction. Codecs without
/// caches/memoization report zeros; the sharded meta-codec and gRePair
/// fill in what applies to them. Snapshots are cheap and safe to take
/// concurrently with queries.
struct QueryStats {
  uint64_t single_queries = 0;  ///< Out/InNeighbors + Reachable calls
  uint64_t batch_calls = 0;     ///< batch entry-point invocations
  uint64_t batch_items = 0;     ///< nodes/pairs answered through batches
  uint64_t cache_hits = 0;      ///< per-shard neighborhood cache hits
  uint64_t cache_misses = 0;    ///< per-shard neighborhood cache misses
  uint64_t shard_decodes = 0;   ///< shards decoded into the cache
  uint64_t cache_evictions = 0; ///< cached shards evicted by the budget
  uint64_t cache_bytes_used = 0;///< current cache footprint
  uint64_t memo_entries = 0;    ///< grammar memo-table entries built
  uint64_t memo_hits = 0;       ///< queries answered from memo tables
  uint64_t shard_faults = 0;    ///< lazy shards materialized on demand
  uint64_t shards_prefetched = 0; ///< shards warmed by the prefetch pool
  uint64_t bytes_hinted = 0;    ///< madvise-hinted bytes (WILLNEED/SEQ)
  uint64_t remote_fetches = 0;  ///< shard payloads fetched over the network
  uint64_t remote_bytes = 0;    ///< payload bytes fetched over the network
  // Connection-pool counters (serve::RemoteShardSource).
  uint64_t pool_dials = 0;          ///< TCP connects (incl. redials)
  uint64_t pool_redials = 0;        ///< reconnects after a broken link
  uint64_t pool_peak_in_flight = 0; ///< max concurrent tagged requests
  // Tiered SSD-cache counters (serve::TieredShardSource).
  uint64_t tier_warm_hits = 0;      ///< shards served from the SSD cache
  uint64_t tier_cold_fetches = 0;   ///< shards faulted through to inner
  uint64_t tier_evictions = 0;      ///< cache files evicted by the budget
  uint64_t tier_corrupt_drops = 0;  ///< cache files failing verification
  // Placement / batched-I/O counters (serve::PlacementController,
  // util::IoEngine). shards_pinned / pinned_bytes are the *current*
  // placement (like cache_bytes_used), not cumulative totals.
  uint64_t shards_pinned = 0;     ///< shards under the pin budget now
  uint64_t pinned_bytes = 0;      ///< payload bytes under the pin budget
  uint64_t uring_batches = 0;     ///< io_uring submission rounds issued
  uint64_t affinity_switches = 0; ///< shard fetches served off-affinity
  // Mutable-corpus counters (shard::DeltaOverlay + folding).
  // overlay_edits is the *current* residual edit count (like
  // cache_bytes_used); the others are cumulative.
  uint64_t overlay_edits = 0;   ///< adds + kills resident in the overlay
  uint64_t overlay_merges = 0;  ///< answers merged through the overlay
  uint64_t shard_folds = 0;     ///< shard grammars recompressed by folds
  uint64_t folded_edits = 0;    ///< edits folded into shard grammars
};

/// \brief Uniform out-of-range check for query entry points: every
/// query-capable codec rejects ids >= num_nodes with exactly this
/// kInvalidArgument status (codecs without query support stay
/// capability-gated behind Unimplemented instead).
Status CheckNodeId(uint64_t node, uint64_t num_nodes);

/// \brief A compressed graph representation produced by one codec.
///
/// Serialize() must round-trip through GraphCodec::Deserialize back to
/// an equivalent representation; Decompress() must reproduce the input
/// graph's node count and edge set (labels preserved only when the
/// codec has kSupportsLabels). ByteSize() is the size metric the bench
/// tables report; it may be smaller than Serialize().size() when a
/// codec excludes bookkeeping the paper's metric excludes (e.g. gRePair
/// excludes the optional psi' node mapping, as the paper does).
///
/// Query entry points are safe to call concurrently from multiple
/// threads on a shared rep (internal caches are synchronized), and any
/// node id >= num_nodes() yields kInvalidArgument on query-capable
/// codecs (see CheckNodeId).
class CompressedRep {
 public:
  virtual ~CompressedRep() = default;

  virtual std::vector<uint8_t> Serialize() const = 0;
  virtual size_t ByteSize() const = 0;
  virtual Result<Hypergraph> Decompress() const = 0;
  virtual uint64_t num_nodes() const = 0;

  /// \brief Targets of edges leaving `node` (any label), sorted.
  /// Default: Unimplemented (codec lacks kNeighborQueries).
  virtual Result<std::vector<uint64_t>> OutNeighbors(uint64_t node) const;

  /// \brief Sources of edges entering `node`, sorted.
  virtual Result<std::vector<uint64_t>> InNeighbors(uint64_t node) const;

  /// \brief Directed reachability. Default: Unimplemented.
  virtual Result<bool> Reachable(uint64_t from, uint64_t to) const;

  /// \brief Out-neighbors of every node in `nodes`, result i for node
  /// i. Whole-batch failure on the first invalid id (so callers never
  /// see partial answers). Default: a loop over OutNeighbors;
  /// overridden where batching pays (the sharded codec amortizes
  /// shard decoding and fans out over its thread pool).
  virtual Result<std::vector<std::vector<uint64_t>>> OutNeighborsBatch(
      const std::vector<uint64_t>& nodes) const;

  /// \brief Reachability verdict per (from, to) pair, result i for
  /// pair i (1 = reachable). Same whole-batch failure contract as
  /// OutNeighborsBatch. Default: a loop over Reachable.
  virtual Result<std::vector<uint8_t>> ReachableBatch(
      const std::vector<std::pair<uint64_t, uint64_t>>& pairs) const;

  /// \brief Snapshot of this rep's query counters (zeros when the
  /// codec tracks nothing).
  virtual QueryStats query_stats() const { return QueryStats(); }
};

/// \brief A graph compression algorithm. Stateless; Compress may be
/// called concurrently from multiple threads.
class GraphCodec {
 public:
  virtual ~GraphCodec() = default;

  /// \brief Registry name ("grepair", "k2", ...).
  virtual const char* name() const = 0;

  /// \brief OR of CodecCapability flags.
  virtual uint32_t capabilities() const = 0;

  /// \brief Compresses `graph` (over `alphabet`). kInvalidArgument when
  /// the graph needs a capability this codec lacks (e.g. hyperedges
  /// into the k^2-tree) or when `options` has unknown/bad keys.
  virtual Result<std::unique_ptr<CompressedRep>> Compress(
      const Hypergraph& graph, const Alphabet& alphabet,
      const CodecOptions& options = CodecOptions()) const = 0;

  /// \brief Reconstructs a representation from Serialize() output.
  virtual Result<std::unique_ptr<CompressedRep>> Deserialize(
      const std::vector<uint8_t>& bytes) const = 0;

  /// \brief Zero-copy variant of Deserialize: parses a representation
  /// from a borrowed byte view. The default copies into an owned
  /// buffer and delegates to Deserialize; codecs with span-native
  /// parsers (grepair's grammar coder, the sharded container) override
  /// to read in place. `bytes` only needs to stay alive for the call —
  /// the returned rep owns (or re-derives) everything it keeps.
  virtual Result<std::unique_ptr<CompressedRep>> DeserializeSpan(
      ByteSpan bytes) const;

  /// \brief Opens a payload whose storage is a shared mapped file.
  /// Reps that borrow from the mapping (the lazy GRSHARD2 path) retain
  /// `file` so the bytes outlive them; the default ignores `file` and
  /// parses eagerly via DeserializeSpan.
  virtual Result<std::unique_ptr<CompressedRep>> OpenPayload(
      std::shared_ptr<MmapFile> file, ByteSpan payload) const;

  /// \brief Opens an on-disk compressed file through this codec via
  /// mmap: a backend-tagged "GRPCODEC" container must name this codec
  /// (kInvalidArgument otherwise); any other file is treated as a bare
  /// payload. Lazy-capable codecs materialize shards on first touch
  /// instead of decoding the whole file here.
  Result<std::unique_ptr<CompressedRep>> Open(const std::string& path) const;
};

}  // namespace api
}  // namespace grepair

#endif  // GREPAIR_API_GRAPH_CODEC_H_
