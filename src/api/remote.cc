#include "src/api/remote.h"

#include "src/net/remote_source.h"

namespace grepair {
namespace api {

Result<std::unique_ptr<CompressedRep>> OpenRemote(
    const std::string& host_port, int io_timeout_ms) {
  net::RemoteShardSource::Options options;
  options.io_timeout_ms = io_timeout_ms;
  return net::OpenRemoteContainer(host_port, options);
}

}  // namespace api
}  // namespace grepair
