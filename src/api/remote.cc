#include "src/api/remote.h"

#include "src/serve/pool.h"

namespace grepair {
namespace api {

Result<std::unique_ptr<CompressedRep>> OpenRemote(
    const std::string& target, const RemoteOptions& options) {
  serve::OpenOptions open;
  open.io_timeout_ms = options.io_timeout_ms;
  open.pool_size = options.pool_size;
  open.ssd_cache_dir = options.ssd_cache_dir;
  open.ssd_cache_bytes = options.ssd_cache_bytes;
  open.replicas = options.replicas;
  open.pin_bytes = options.pin_bytes;
  open.warm_from_histogram = options.warm_from_histogram;
  return serve::OpenRemoteContainer(target, open);
}

Result<std::unique_ptr<CompressedRep>> OpenRemote(const std::string& target) {
  return OpenRemote(target, RemoteOptions());
}

Result<std::unique_ptr<CompressedRep>> OpenRemote(const std::string& target,
                                                  int io_timeout_ms) {
  RemoteOptions options;
  options.io_timeout_ms = io_timeout_ms;
  return OpenRemote(target, options);
}

}  // namespace api
}  // namespace grepair
