// Umbrella header: the stable public surface of the grepair library.
//
// Downstream users include this one header and get:
//   * the polymorphic codec API (GraphCodec, CompressedRep,
//     CodecOptions, CodecRegistry) over gRePair and every baseline,
//   * the sharded parallel-compression layer (PartitionGraph,
//     ParallelCompressor, the "sharded:<inner>" meta-codecs) and the
//     tagged container framing,
//   * remote shard serving (api::OpenRemote over src/serve/'s
//     multi-corpus ShardServer, connection pool and SSD shard tier),
//   * CompressedGraph, the queryable gRePair representation,
//   * hypergraph + alphabet types and text/SNAP graph IO,
//   * the deterministic dataset generators used by the benches.
//
//   #include "src/api/grepair_api.h"
//
//   auto gg = grepair::ErdosRenyi(1000, 4000, /*seed=*/1);
//   auto codec = grepair::api::CodecRegistry::Create("grepair");
//   auto rep = codec.value()->Compress(gg.graph, gg.alphabet);
//   rep.value()->ByteSize();
//
// Internal headers under src/ remain includable but are not covered by
// any stability promise; this file is.

#ifndef GREPAIR_API_GREPAIR_API_H_
#define GREPAIR_API_GREPAIR_API_H_

#include "src/api/codec_registry.h"
#include "src/api/container.h"
#include "src/api/graph_codec.h"
#include "src/api/remote.h"
#include "src/datasets/generators.h"
#include "src/encoding/grammar_coder.h"
#include "src/graph/graph_io.h"
#include "src/graph/hypergraph.h"
#include "src/query/compressed_graph.h"
#include "src/shard/parallel_compressor.h"
#include "src/shard/partitioner.h"
#include "src/shard/sharded_codec.h"
#include "src/util/status.h"

#endif  // GREPAIR_API_GREPAIR_API_H_
