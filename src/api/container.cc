#include "src/api/container.h"

#include <cassert>
#include <cstring>
#include <utility>

#include "src/api/codec_registry.h"
#include "src/api/graph_codec.h"

namespace grepair {
namespace api {

const char kCodecContainerMagic[8] = {'G', 'R', 'P', 'C', 'O', 'D', 'E', 'C'};

std::vector<uint8_t> WrapCodecPayload(const std::string& name,
                                      const std::vector<uint8_t>& payload) {
  assert(name.size() <= 255);
  std::vector<uint8_t> out(kCodecContainerMagic, kCodecContainerMagic + 8);
  out.push_back(static_cast<uint8_t>(name.size()));
  out.insert(out.end(), name.begin(), name.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

bool IsCodecContainer(ByteSpan bytes) {
  return bytes.size >= 8 &&
         std::memcmp(bytes.data, kCodecContainerMagic, 8) == 0;
}

bool IsCodecContainer(const std::vector<uint8_t>& bytes) {
  return IsCodecContainer(SpanOf(bytes));
}

Status UnwrapCodecPayloadView(ByteSpan bytes, std::string* name,
                              ByteSpan* payload) {
  if (!IsCodecContainer(bytes)) {
    return Status::InvalidArgument("not a codec container (bad magic)");
  }
  if (bytes.size < 9) {
    return Status::Corruption("codec container truncated before name");
  }
  size_t name_len = bytes[8];
  if (name_len == 0 || bytes.size < 9 + name_len) {
    return Status::Corruption("codec container truncated inside name");
  }
  name->assign(bytes.begin() + 9, bytes.begin() + 9 + name_len);
  *payload = bytes.subspan(9 + name_len, bytes.size - 9 - name_len);
  return Status::OK();
}

Status UnwrapCodecPayload(const std::vector<uint8_t>& bytes,
                          std::string* name, std::vector<uint8_t>* payload) {
  ByteSpan view;
  GREPAIR_RETURN_IF_ERROR(UnwrapCodecPayloadView(SpanOf(bytes), name, &view));
  payload->assign(view.begin(), view.end());
  return Status::OK();
}

Result<std::unique_ptr<CompressedRep>> OpenCompressedFile(
    const std::string& path, std::string* backend_name) {
  auto file = MmapFile::Open(path);
  if (!file.ok()) return file.status();
  ByteSpan bytes = file.value()->span();
  std::string name;
  ByteSpan payload;
  auto unwrap = UnwrapCodecPayloadView(bytes, &name, &payload);
  if (!unwrap.ok()) {
    if (unwrap.code() == StatusCode::kInvalidArgument) {
      return Status::InvalidArgument(
          path + " is not a backend-tagged container");
    }
    return Status::Corruption(path + ": " + unwrap.message());
  }
  auto codec = CodecRegistry::Create(name);
  if (!codec.ok()) return codec.status();
  if (backend_name != nullptr) *backend_name = name;
  return codec.value()->OpenPayload(std::move(file).ValueOrDie(), payload);
}

}  // namespace api
}  // namespace grepair
