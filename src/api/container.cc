#include "src/api/container.h"

#include <cassert>
#include <cstring>
#include <utility>

#include "src/api/codec_registry.h"
#include "src/api/graph_codec.h"
#include "src/shard/delta_overlay.h"
#include "src/shard/sharded_codec.h"
#include "src/util/hashing.h"

namespace grepair {
namespace api {

const char kCodecContainerMagic[8] = {'G', 'R', 'P', 'C', 'O', 'D', 'E', 'C'};

std::vector<uint8_t> WrapCodecPayload(const std::string& name,
                                      const std::vector<uint8_t>& payload) {
  assert(name.size() <= 255);
  std::vector<uint8_t> out(kCodecContainerMagic, kCodecContainerMagic + 8);
  out.push_back(static_cast<uint8_t>(name.size()));
  out.insert(out.end(), name.begin(), name.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

bool IsCodecContainer(ByteSpan bytes) {
  return bytes.size >= 8 &&
         std::memcmp(bytes.data, kCodecContainerMagic, 8) == 0;
}

bool IsCodecContainer(const std::vector<uint8_t>& bytes) {
  return IsCodecContainer(SpanOf(bytes));
}

Status UnwrapCodecPayloadView(ByteSpan bytes, std::string* name,
                              ByteSpan* payload) {
  if (!IsCodecContainer(bytes)) {
    return Status::InvalidArgument("not a codec container (bad magic)");
  }
  if (bytes.size < 9) {
    return Status::Corruption("codec container truncated before name");
  }
  size_t name_len = bytes[8];
  if (name_len == 0 || bytes.size < 9 + name_len) {
    return Status::Corruption("codec container truncated inside name");
  }
  name->assign(bytes.begin() + 9, bytes.begin() + 9 + name_len);
  *payload = bytes.subspan(9 + name_len, bytes.size - 9 - name_len);
  return Status::OK();
}

Status UnwrapCodecPayload(const std::vector<uint8_t>& bytes,
                          std::string* name, std::vector<uint8_t>* payload) {
  ByteSpan view;
  GREPAIR_RETURN_IF_ERROR(UnwrapCodecPayloadView(SpanOf(bytes), name, &view));
  payload->assign(view.begin(), view.end());
  return Status::OK();
}

Result<std::unique_ptr<CompressedRep>> OpenCompressedFile(
    const std::string& path, std::string* backend_name) {
  auto file = MmapFile::Open(path);
  if (!file.ok()) return file.status();
  ByteSpan bytes = file.value()->span();
  std::string name;
  ByteSpan payload;
  auto unwrap = UnwrapCodecPayloadView(bytes, &name, &payload);
  if (!unwrap.ok()) {
    if (unwrap.code() == StatusCode::kInvalidArgument) {
      return Status::InvalidArgument(
          path + " is not a backend-tagged container");
    }
    return Status::Corruption(path + ": " + unwrap.message());
  }
  auto codec = CodecRegistry::Create(name);
  if (!codec.ok()) return codec.status();
  if (backend_name != nullptr) *backend_name = name;
  return codec.value()->OpenPayload(std::move(file).ValueOrDie(), payload);
}

Result<std::unique_ptr<CompressedRep>> OpenVersioned(
    const std::string& base_path,
    const std::vector<std::string>& delta_paths,
    std::string* backend_name) {
  std::string name;
  auto rep = OpenCompressedFile(base_path, &name);
  if (!rep.ok()) return rep.status();
  auto* sharded = dynamic_cast<shard::ShardedRep*>(rep.value().get());
  if (sharded == nullptr) {
    return Status::InvalidArgument(
        base_path + " is not a sharded container; deltas need one");
  }
  if (backend_name != nullptr) *backend_name = name;
  if (delta_paths.empty()) return rep;

  // Lineage walk: delta[i] records the hash + size of the *entire*
  // previous file in the chain (the base for i == 0), so a swapped or
  // regenerated intermediate is caught before its payload is trusted.
  uint64_t prev_hash = 0;
  uint64_t prev_size = 0;
  {
    auto base_file = MmapFile::Open(base_path);
    if (!base_file.ok()) return base_file.status();
    ByteSpan span = base_file.value()->span();
    prev_hash = HashBytes(span.data, span.size);
    prev_size = span.size;
  }
  for (const std::string& path : delta_paths) {
    auto file = MmapFile::Open(path);
    if (!file.ok()) return file.status();
    ByteSpan span = file.value()->span();
    auto delta = shard::DecodeDeltaContainer(span, path);
    if (!delta.ok()) return delta.status();
    if (delta.value().base_hash != prev_hash ||
        delta.value().base_size != prev_size) {
      return Status::Corruption(
          path + " does not continue this chain (expected predecessor " +
          HexU64(delta.value().base_hash) + "/" +
          std::to_string(delta.value().base_size) + " bytes, have " +
          HexU64(prev_hash) + "/" + std::to_string(prev_size) + ")");
    }
    // Deltas are cumulative: each ApplyDelta fully replaces the edit
    // state, so applying every link in order just re-verifies lineage
    // and lands on the newest version.
    GREPAIR_RETURN_IF_ERROR(sharded->ApplyDelta(delta.value()));
    prev_hash = HashBytes(span.data, span.size);
    prev_size = span.size;
  }
  return rep;
}

}  // namespace api
}  // namespace grepair
