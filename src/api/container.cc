#include "src/api/container.h"

#include <cassert>
#include <cstring>

namespace grepair {
namespace api {

const char kCodecContainerMagic[8] = {'G', 'R', 'P', 'C', 'O', 'D', 'E', 'C'};

std::vector<uint8_t> WrapCodecPayload(const std::string& name,
                                      const std::vector<uint8_t>& payload) {
  assert(name.size() <= 255);
  std::vector<uint8_t> out(kCodecContainerMagic, kCodecContainerMagic + 8);
  out.push_back(static_cast<uint8_t>(name.size()));
  out.insert(out.end(), name.begin(), name.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

bool IsCodecContainer(const std::vector<uint8_t>& bytes) {
  return bytes.size() >= 8 &&
         std::memcmp(bytes.data(), kCodecContainerMagic, 8) == 0;
}

Status UnwrapCodecPayload(const std::vector<uint8_t>& bytes,
                          std::string* name, std::vector<uint8_t>* payload) {
  if (!IsCodecContainer(bytes)) {
    return Status::InvalidArgument("not a codec container (bad magic)");
  }
  if (bytes.size() < 9) {
    return Status::Corruption("codec container truncated before name");
  }
  size_t name_len = bytes[8];
  if (name_len == 0 || bytes.size() < 9 + name_len) {
    return Status::Corruption("codec container truncated inside name");
  }
  name->assign(bytes.begin() + 9, bytes.begin() + 9 + name_len);
  payload->assign(bytes.begin() + 9 + name_len, bytes.end());
  return Status::OK();
}

}  // namespace api
}  // namespace grepair
