// Built-in GraphCodec adapters: gRePair and every baseline the paper
// compares against, each wrapped behind the polymorphic API so the
// CLI, benches and tests can treat them uniformly.
//
//   grepair     SL-HR grammar compression with neighborhood and
//               reachability queries (the paper's contribution)
//   k2          per-label k^2-trees (Brisaboa, Ladra & Navarro)
//   hn          dense-substructure virtual nodes + k^2 (Hernandez &
//               Navarro); unlabeled graphs only
//   lm          list merging + Deflate (Grabowski & Bieniecki);
//               unlabeled graphs only
//   repair-adj  adjacency-list string RePair (Claude & Navarro);
//               unlabeled graphs only
//   deflate     Elias-delta edge stream + zlib, the "just gzip it"
//               strawman (supports labels and hyperedges)
//
// The unlabeled baselines reject multi-label alphabets up front
// instead of silently dropping labels — the paper likewise only runs
// them on unlabeled graphs.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>

#include "src/api/codec_registry.h"
#include "src/api/graph_codec.h"
#include "src/baselines/deflate.h"
#include "src/baselines/hn.h"
#include "src/baselines/k2_compressor.h"
#include "src/baselines/lm.h"
#include "src/baselines/string_repair.h"
#include "src/graph/node_order.h"
#include "src/query/compressed_graph.h"
#include "src/shard/sharded_codec.h"
#include "src/util/byte_io.h"
#include "src/util/elias.h"

namespace grepair {
namespace api {
namespace {

Status RequireRank2(const Hypergraph& graph, const char* codec) {
  for (const auto& e : graph.edges()) {
    if (e.rank() != 2) {
      return Status::InvalidArgument(
          std::string(codec) + " requires a simple graph (rank-2 edges)");
    }
  }
  return Status::OK();
}

Status RequireUnlabeled(const Alphabet& alphabet, const char* codec) {
  if (alphabet.size() > 1) {
    return Status::InvalidArgument(
        std::string(codec) +
        " is an unlabeled baseline (alphabet must have at most 1 label)");
  }
  return Status::OK();
}

// Integer option with loud range validation: the codecs narrow to
// int/uint32, so out-of-range values must fail, not wrap.
Result<int64_t> GetIntInRange(const CodecOptions& options,
                              const std::string& key, int64_t def,
                              int64_t min, int64_t max) {
  auto value = options.GetInt(key, def);
  if (!value.ok()) return value.status();
  if (value.value() < min || value.value() > max) {
    return Status::InvalidArgument(
        "option " + key + "=" + std::to_string(value.value()) +
        " out of range [" + std::to_string(min) + ", " +
        std::to_string(max) + "]");
  }
  return value.value();
}

// ---------------------------------------------------------------------------
// grepair

class GrepairRep : public CompressedRep {
 public:
  explicit GrepairRep(CompressedGraph g) : graph_(std::move(g)) {}

  std::vector<uint8_t> Serialize() const override {
    if (!serialized_) serialized_ = graph_.Serialize();
    return *serialized_;
  }
  size_t ByteSize() const override { return graph_.SerializedSize(); }
  Result<Hypergraph> Decompress() const override {
    return graph_.Decompress();
  }
  uint64_t num_nodes() const override { return graph_.num_nodes(); }

  Result<std::vector<uint64_t>> OutNeighbors(uint64_t node) const override {
    GREPAIR_RETURN_IF_ERROR(CheckNodeId(node, graph_.num_nodes()));
    singles_.fetch_add(1, std::memory_order_relaxed);
    return graph_.OutNeighbors(node);
  }
  Result<std::vector<uint64_t>> InNeighbors(uint64_t node) const override {
    GREPAIR_RETURN_IF_ERROR(CheckNodeId(node, graph_.num_nodes()));
    singles_.fetch_add(1, std::memory_order_relaxed);
    return graph_.InNeighbors(node);
  }
  Result<bool> Reachable(uint64_t from, uint64_t to) const override {
    GREPAIR_RETURN_IF_ERROR(CheckNodeId(from, graph_.num_nodes()));
    GREPAIR_RETURN_IF_ERROR(CheckNodeId(to, graph_.num_nodes()));
    singles_.fetch_add(1, std::memory_order_relaxed);
    return graph_.Reachable(from, to);
  }

  Result<std::vector<std::vector<uint64_t>>> OutNeighborsBatch(
      const std::vector<uint64_t>& nodes) const override {
    // Validate the whole batch up front so no answer is computed for a
    // batch that fails; the memo tables make repeats within the batch
    // cheap without extra bookkeeping here.
    for (uint64_t node : nodes) {
      GREPAIR_RETURN_IF_ERROR(CheckNodeId(node, graph_.num_nodes()));
    }
    batch_calls_.fetch_add(1, std::memory_order_relaxed);
    batch_items_.fetch_add(nodes.size(), std::memory_order_relaxed);
    std::vector<std::vector<uint64_t>> results;
    results.reserve(nodes.size());
    for (uint64_t node : nodes) {
      results.push_back(graph_.OutNeighbors(node));
    }
    return results;
  }

  Result<std::vector<uint8_t>> ReachableBatch(
      const std::vector<std::pair<uint64_t, uint64_t>>& pairs)
      const override {
    for (const auto& [from, to] : pairs) {
      GREPAIR_RETURN_IF_ERROR(CheckNodeId(from, graph_.num_nodes()));
      GREPAIR_RETURN_IF_ERROR(CheckNodeId(to, graph_.num_nodes()));
    }
    batch_calls_.fetch_add(1, std::memory_order_relaxed);
    batch_items_.fetch_add(pairs.size(), std::memory_order_relaxed);
    std::vector<uint8_t> results;
    results.reserve(pairs.size());
    for (const auto& [from, to] : pairs) {
      results.push_back(graph_.Reachable(from, to) ? 1 : 0);
    }
    return results;
  }

  QueryStats query_stats() const override {
    QueryStats stats;
    stats.single_queries = singles_.load(std::memory_order_relaxed);
    stats.batch_calls = batch_calls_.load(std::memory_order_relaxed);
    stats.batch_items = batch_items_.load(std::memory_order_relaxed);
    stats.memo_entries = graph_.neighborhood().memo_entries() +
                         graph_.reachability().memo_entries();
    stats.memo_hits = graph_.neighborhood().memo_hits() +
                      graph_.reachability().memo_hits();
    return stats;
  }

  const CompressedGraph& graph() const { return graph_; }

 private:
  CompressedGraph graph_;
  mutable std::optional<std::vector<uint8_t>> serialized_;
  mutable std::atomic<uint64_t> singles_{0};
  mutable std::atomic<uint64_t> batch_calls_{0};
  mutable std::atomic<uint64_t> batch_items_{0};
};

class GrepairCodec : public GraphCodec {
 public:
  const char* name() const override { return "grepair"; }
  uint32_t capabilities() const override {
    return kSupportsLabels | kSupportsHyperedges | kNeighborQueries |
           kReachabilityQueries;
  }

  Result<std::unique_ptr<CompressedRep>> Compress(
      const Hypergraph& graph, const Alphabet& alphabet,
      const CodecOptions& options) const override {
    GREPAIR_RETURN_IF_ERROR(options.ExpectKeys(
        {"max-rank", "order", "seed", "virtual", "prune", "extra-passes",
         "original-ids"}));
    CompressOptions opts;
    auto max_rank = GetIntInRange(options, "max-rank", opts.max_rank, 2, 255);
    if (!max_rank.ok()) return max_rank.status();
    opts.max_rank = static_cast<int>(max_rank.value());
    std::string order = options.GetString("order", "");
    if (!order.empty() && !ParseNodeOrderKind(order, &opts.node_order)) {
      return Status::InvalidArgument("unknown node order '" + order + "'");
    }
    auto seed = GetIntInRange(options, "seed",
                              static_cast<int64_t>(opts.order_seed), 0,
                              INT64_MAX);
    if (!seed.ok()) return seed.status();
    opts.order_seed = static_cast<uint64_t>(seed.value());
    auto virt = options.GetBool("virtual", opts.connect_components);
    if (!virt.ok()) return virt.status();
    opts.connect_components = virt.value();
    auto prune = options.GetBool("prune", opts.prune);
    if (!prune.ok()) return prune.status();
    opts.prune = prune.value();
    auto passes = GetIntInRange(options, "extra-passes",
                                opts.extra_recount_passes, 0, 1000000);
    if (!passes.ok()) return passes.status();
    opts.extra_recount_passes = static_cast<int>(passes.value());
    auto original_ids = options.GetBool("original-ids", true);
    if (!original_ids.ok()) return original_ids.status();

    auto compressed = CompressedGraph::FromGraph(graph, alphabet, opts,
                                                 original_ids.value());
    if (!compressed.ok()) return compressed.status();
    return std::unique_ptr<CompressedRep>(
        new GrepairRep(std::move(compressed).ValueOrDie()));
  }

  Result<std::unique_ptr<CompressedRep>> Deserialize(
      const std::vector<uint8_t>& bytes) const override {
    return DeserializeSpan(SpanOf(bytes));
  }

  // Span-native: the grammar coder decodes straight out of the view,
  // so a lazily faulted shard payload never gets copied on its way in.
  Result<std::unique_ptr<CompressedRep>> DeserializeSpan(
      ByteSpan bytes) const override {
    auto graph = CompressedGraph::Deserialize(bytes);
    if (!graph.ok()) return graph.status();
    return std::unique_ptr<CompressedRep>(
        new GrepairRep(std::move(graph).ValueOrDie()));
  }
};

// ---------------------------------------------------------------------------
// k2

class K2Rep : public CompressedRep {
 public:
  explicit K2Rep(K2GraphRepresentation rep) : rep_(std::move(rep)) {}

  std::vector<uint8_t> Serialize() const override {
    if (!serialized_) serialized_ = rep_.Serialize();
    return *serialized_;
  }
  size_t ByteSize() const override { return Serialize().size(); }
  Result<Hypergraph> Decompress() const override { return rep_.ToGraph(); }
  uint64_t num_nodes() const override { return rep_.num_nodes(); }

  Result<std::vector<uint64_t>> OutNeighbors(uint64_t node) const override {
    return Union(node, /*out=*/true);
  }
  Result<std::vector<uint64_t>> InNeighbors(uint64_t node) const override {
    return Union(node, /*out=*/false);
  }

 private:
  Result<std::vector<uint64_t>> Union(uint64_t node, bool out) const {
    GREPAIR_RETURN_IF_ERROR(CheckNodeId(node, rep_.num_nodes()));
    std::vector<uint64_t> all;
    auto v = static_cast<uint32_t>(node);
    for (Label l = 0; l < rep_.num_labels(); ++l) {
      auto part = out ? rep_.OutNeighbors(v, l) : rep_.InNeighbors(v, l);
      all.insert(all.end(), part.begin(), part.end());
    }
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    return all;
  }

  K2GraphRepresentation rep_;
  mutable std::optional<std::vector<uint8_t>> serialized_;
};

class K2Codec : public GraphCodec {
 public:
  const char* name() const override { return "k2"; }
  uint32_t capabilities() const override {
    return kSupportsLabels | kNeighborQueries;
  }

  Result<std::unique_ptr<CompressedRep>> Compress(
      const Hypergraph& graph, const Alphabet& alphabet,
      const CodecOptions& options) const override {
    GREPAIR_RETURN_IF_ERROR(options.ExpectKeys({"k"}));
    auto k = GetIntInRange(options, "k", 2, 2, 16);  // K2Tree's arity cap
    if (!k.ok()) return k.status();
    GREPAIR_RETURN_IF_ERROR(graph.Validate(alphabet));
    GREPAIR_RETURN_IF_ERROR(RequireRank2(graph, name()));
    return std::unique_ptr<CompressedRep>(new K2Rep(
        K2GraphRepresentation::Build(graph, alphabet,
                                     static_cast<int>(k.value()))));
  }

  Result<std::unique_ptr<CompressedRep>> Deserialize(
      const std::vector<uint8_t>& bytes) const override {
    auto rep = K2GraphRepresentation::Deserialize(bytes);
    if (!rep.ok()) return rep.status();
    return std::unique_ptr<CompressedRep>(
        new K2Rep(std::move(rep).ValueOrDie()));
  }
};

// ---------------------------------------------------------------------------
// hn

class HnRep : public CompressedRep {
 public:
  explicit HnRep(HnCompressed c) : compressed_(std::move(c)) {}

  std::vector<uint8_t> Serialize() const override {
    return HnSerialize(compressed_);
  }
  size_t ByteSize() const override { return compressed_.SizeBytes(); }
  Result<Hypergraph> Decompress() const override {
    return HnDecompress(compressed_);
  }
  uint64_t num_nodes() const override { return compressed_.original_nodes; }

 private:
  HnCompressed compressed_;
};

class HnCodec : public GraphCodec {
 public:
  const char* name() const override { return "hn"; }
  uint32_t capabilities() const override { return 0; }

  Result<std::unique_ptr<CompressedRep>> Compress(
      const Hypergraph& graph, const Alphabet& alphabet,
      const CodecOptions& options) const override {
    GREPAIR_RETURN_IF_ERROR(options.ExpectKeys(
        {"iterations", "min-rows", "min-saving", "k", "seed"}));
    HnOptions opts;
    auto iterations =
        GetIntInRange(options, "iterations", opts.iterations, 1, 1000000);
    if (!iterations.ok()) return iterations.status();
    opts.iterations = static_cast<int>(iterations.value());
    auto min_rows =
        GetIntInRange(options, "min-rows", opts.min_rows, 1, 0xFFFFFFFFll);
    if (!min_rows.ok()) return min_rows.status();
    opts.min_rows = static_cast<uint32_t>(min_rows.value());
    auto min_saving = options.GetInt("min-saving", opts.min_saving);
    if (!min_saving.ok()) return min_saving.status();
    opts.min_saving = min_saving.value();
    auto k = GetIntInRange(options, "k", opts.k, 2, 16);
    if (!k.ok()) return k.status();
    opts.k = static_cast<int>(k.value());
    auto seed = GetIntInRange(options, "seed",
                              static_cast<int64_t>(opts.seed), 0,
                              INT64_MAX);
    if (!seed.ok()) return seed.status();
    opts.seed = static_cast<uint64_t>(seed.value());

    GREPAIR_RETURN_IF_ERROR(graph.Validate(alphabet));
    GREPAIR_RETURN_IF_ERROR(RequireUnlabeled(alphabet, name()));
    GREPAIR_RETURN_IF_ERROR(RequireRank2(graph, name()));
    return std::unique_ptr<CompressedRep>(
        new HnRep(HnCompress(graph, opts)));
  }

  Result<std::unique_ptr<CompressedRep>> Deserialize(
      const std::vector<uint8_t>& bytes) const override {
    auto c = HnDeserialize(bytes);
    if (!c.ok()) return c.status();
    return std::unique_ptr<CompressedRep>(
        new HnRep(std::move(c).ValueOrDie()));
  }
};

// ---------------------------------------------------------------------------
// lm

class LmRep : public CompressedRep {
 public:
  explicit LmRep(LmCompressed c) : compressed_(std::move(c)) {}

  std::vector<uint8_t> Serialize() const override {
    return LmSerialize(compressed_);
  }
  size_t ByteSize() const override { return compressed_.SizeBytes(); }
  Result<Hypergraph> Decompress() const override {
    return LmDecompress(compressed_);
  }
  uint64_t num_nodes() const override { return compressed_.num_nodes; }

 private:
  LmCompressed compressed_;
};

class LmCodec : public GraphCodec {
 public:
  const char* name() const override { return "lm"; }
  uint32_t capabilities() const override { return 0; }

  Result<std::unique_ptr<CompressedRep>> Compress(
      const Hypergraph& graph, const Alphabet& alphabet,
      const CodecOptions& options) const override {
    GREPAIR_RETURN_IF_ERROR(options.ExpectKeys({"chunk-size"}));
    auto chunk = GetIntInRange(options, "chunk-size", 64, 1, 64);
    if (!chunk.ok()) return chunk.status();
    GREPAIR_RETURN_IF_ERROR(graph.Validate(alphabet));
    GREPAIR_RETURN_IF_ERROR(RequireUnlabeled(alphabet, name()));
    GREPAIR_RETURN_IF_ERROR(RequireRank2(graph, name()));
    return std::unique_ptr<CompressedRep>(new LmRep(
        LmCompress(graph, static_cast<uint32_t>(chunk.value()))));
  }

  Result<std::unique_ptr<CompressedRep>> Deserialize(
      const std::vector<uint8_t>& bytes) const override {
    auto c = LmDeserialize(bytes);
    if (!c.ok()) return c.status();
    return std::unique_ptr<CompressedRep>(
        new LmRep(std::move(c).ValueOrDie()));
  }
};

// ---------------------------------------------------------------------------
// repair-adj

class AdjRePairRep : public CompressedRep {
 public:
  explicit AdjRePairRep(AdjRePairCompressed c) : compressed_(std::move(c)) {}

  std::vector<uint8_t> Serialize() const override {
    if (!serialized_) serialized_ = AdjRePairSerialize(compressed_);
    return *serialized_;
  }
  size_t ByteSize() const override { return Serialize().size(); }
  Result<Hypergraph> Decompress() const override {
    return AdjListRePairDecompress(compressed_);
  }
  uint64_t num_nodes() const override { return compressed_.num_nodes; }

 private:
  AdjRePairCompressed compressed_;
  mutable std::optional<std::vector<uint8_t>> serialized_;
};

class AdjRePairCodec : public GraphCodec {
 public:
  const char* name() const override { return "repair-adj"; }
  uint32_t capabilities() const override { return 0; }

  Result<std::unique_ptr<CompressedRep>> Compress(
      const Hypergraph& graph, const Alphabet& alphabet,
      const CodecOptions& options) const override {
    GREPAIR_RETURN_IF_ERROR(options.ExpectKeys({}));
    GREPAIR_RETURN_IF_ERROR(graph.Validate(alphabet));
    GREPAIR_RETURN_IF_ERROR(RequireUnlabeled(alphabet, name()));
    GREPAIR_RETURN_IF_ERROR(RequireRank2(graph, name()));
    return std::unique_ptr<CompressedRep>(
        new AdjRePairRep(AdjListRePairCompress(graph)));
  }

  Result<std::unique_ptr<CompressedRep>> Deserialize(
      const std::vector<uint8_t>& bytes) const override {
    auto c = AdjRePairDeserialize(bytes);
    if (!c.ok()) return c.status();
    return std::unique_ptr<CompressedRep>(
        new AdjRePairRep(std::move(c).ValueOrDie()));
  }
};

// ---------------------------------------------------------------------------
// deflate

// Raw Elias-delta edge stream passed through zlib: num_nodes, label
// ranks, then per edge its label and attachments. Exact and fully
// general (labels, hyperedges) — the baseline every smarter codec has
// to beat.
class DeflateRep : public CompressedRep {
 public:
  DeflateRep(uint32_t num_nodes, size_t raw_size,
             std::vector<uint8_t> deflated)
      : num_nodes_(num_nodes),
        raw_size_(raw_size),
        deflated_(std::move(deflated)) {}

  std::vector<uint8_t> Serialize() const override {
    std::vector<uint8_t> out;
    PutU32LE(num_nodes_, &out);
    PutU64LE(raw_size_, &out);
    out.insert(out.end(), deflated_.begin(), deflated_.end());
    return out;
  }
  size_t ByteSize() const override { return deflated_.size() + 12; }
  uint64_t num_nodes() const override { return num_nodes_; }

  Result<Hypergraph> Decompress() const override {
    auto raw = InflateBytes(deflated_, raw_size_);
    if (!raw.ok()) return raw.status();
    BitReader r(raw.value());
    uint64_t num_nodes = 0, num_labels = 0, num_edges = 0;
    GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &num_nodes));
    GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &num_labels));
    if (num_nodes == 0 || num_labels == 0 ||
        num_nodes - 1 > 0xFFFFFFFFull) {
      return Status::Corruption("bad deflate-codec header");
    }
    std::vector<uint64_t> ranks;
    for (uint64_t l = 0; l + 1 < num_labels; ++l) {
      uint64_t rank = 0;
      GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &rank));
      if (rank == 0 || rank > 255) {  // Alphabet ranks are uint8
        return Status::Corruption("label rank out of range");
      }
      ranks.push_back(rank);
    }
    GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &num_edges));
    if (num_edges == 0) return Status::Corruption("bad edge count");
    Hypergraph g(static_cast<uint32_t>(num_nodes - 1));
    for (uint64_t e = 0; e + 1 < num_edges; ++e) {
      uint64_t label = 0;
      GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &label));
      if (label == 0 || label >= num_labels) {
        return Status::Corruption("edge label out of range");
      }
      std::vector<NodeId> att;
      for (uint64_t i = 0; i < ranks[label - 1]; ++i) {
        uint64_t v = 0;
        GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &v));
        if (v == 0 || v > num_nodes - 1) {
          return Status::Corruption("attachment out of range");
        }
        att.push_back(static_cast<NodeId>(v - 1));
      }
      g.AddEdge(static_cast<Label>(label - 1), std::move(att));
    }
    return g;
  }

 private:
  uint32_t num_nodes_ = 0;
  size_t raw_size_ = 0;
  std::vector<uint8_t> deflated_;
};

class DeflateCodec : public GraphCodec {
 public:
  const char* name() const override { return "deflate"; }
  uint32_t capabilities() const override {
    return kSupportsLabels | kSupportsHyperedges;
  }

  Result<std::unique_ptr<CompressedRep>> Compress(
      const Hypergraph& graph, const Alphabet& alphabet,
      const CodecOptions& options) const override {
    GREPAIR_RETURN_IF_ERROR(options.ExpectKeys({}));
    GREPAIR_RETURN_IF_ERROR(graph.Validate(alphabet));
    BitWriter w;
    EliasDeltaEncode(graph.num_nodes() + 1, &w);
    EliasDeltaEncode(alphabet.size() + 1, &w);
    for (Label l = 0; l < alphabet.size(); ++l) {
      EliasDeltaEncode(static_cast<uint64_t>(alphabet.rank(l)), &w);
    }
    EliasDeltaEncode(graph.num_edges() + 1, &w);
    for (const auto& e : graph.edges()) {
      EliasDeltaEncode(e.label + 1, &w);
      for (NodeId v : e.att) EliasDeltaEncode(v + 1, &w);
    }
    auto raw = w.TakeBytes();
    auto deflated = DeflateBytes(raw);
    return std::unique_ptr<CompressedRep>(
        new DeflateRep(graph.num_nodes(), raw.size(), std::move(deflated)));
  }

  Result<std::unique_ptr<CompressedRep>> Deserialize(
      const std::vector<uint8_t>& bytes) const override {
    size_t pos = 0;
    uint32_t num_nodes = 0;
    uint64_t raw_size = 0;
    GREPAIR_RETURN_IF_ERROR(GetU32LE(bytes, &pos, &num_nodes));
    GREPAIR_RETURN_IF_ERROR(GetU64LE(bytes, &pos, &raw_size));
    return std::unique_ptr<CompressedRep>(new DeflateRep(
        num_nodes, raw_size,
        std::vector<uint8_t>(bytes.begin() + pos, bytes.end())));
  }
};

}  // namespace

namespace internal {

void RegisterBuiltinCodecs() {
  CodecRegistry::Register("grepair", [] {
    return std::unique_ptr<GraphCodec>(new GrepairCodec());
  });
  CodecRegistry::Register("k2", [] {
    return std::unique_ptr<GraphCodec>(new K2Codec());
  });
  CodecRegistry::Register("hn", [] {
    return std::unique_ptr<GraphCodec>(new HnCodec());
  });
  CodecRegistry::Register("lm", [] {
    return std::unique_ptr<GraphCodec>(new LmCodec());
  });
  CodecRegistry::Register("repair-adj", [] {
    return std::unique_ptr<GraphCodec>(new AdjRePairCodec());
  });
  CodecRegistry::Register("deflate", [] {
    return std::unique_ptr<GraphCodec>(new DeflateCodec());
  });
  // Sharded meta-variants of every builtin, so Names() (and with it
  // `bench --backend all` and the parameterized round-trip tests)
  // covers them. Factories are function pointers, hence one literal
  // per name instead of a loop.
  CodecRegistry::Register("sharded:grepair", [] {
    return std::unique_ptr<GraphCodec>(new shard::ShardedCodec("grepair"));
  });
  CodecRegistry::Register("sharded:k2", [] {
    return std::unique_ptr<GraphCodec>(new shard::ShardedCodec("k2"));
  });
  CodecRegistry::Register("sharded:hn", [] {
    return std::unique_ptr<GraphCodec>(new shard::ShardedCodec("hn"));
  });
  CodecRegistry::Register("sharded:lm", [] {
    return std::unique_ptr<GraphCodec>(new shard::ShardedCodec("lm"));
  });
  CodecRegistry::Register("sharded:repair-adj", [] {
    return std::unique_ptr<GraphCodec>(
        new shard::ShardedCodec("repair-adj"));
  });
  CodecRegistry::Register("sharded:deflate", [] {
    return std::unique_ptr<GraphCodec>(new shard::ShardedCodec("deflate"));
  });
}

}  // namespace internal
}  // namespace api
}  // namespace grepair
