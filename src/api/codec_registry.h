// CodecRegistry: name -> GraphCodec factory.
//
// All built-in codecs ("grepair", "k2", "hn", "lm", "repair-adj",
// "deflate") are registered on first use; additional codecs register
// themselves from any translation unit with GREPAIR_REGISTER_CODEC.
// The registry is what lets the CLI's --backend flag, the bench
// tables, and the parameterized round-trip tests enumerate every
// compressor without naming any of them.

#ifndef GREPAIR_API_CODEC_REGISTRY_H_
#define GREPAIR_API_CODEC_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/api/graph_codec.h"
#include "src/util/status.h"

namespace grepair {
namespace api {

class CodecRegistry {
 public:
  using Factory = std::unique_ptr<GraphCodec> (*)();

  /// \brief Registers `factory` under `name`; later registrations of
  /// the same name win (lets tests shadow a builtin). Returns true so
  /// it can initialize a static (see GREPAIR_REGISTER_CODEC).
  static bool Register(const std::string& name, Factory factory);

  /// \brief Instantiates the codec registered under `name`;
  /// kNotFound (listing the known names) when there is none.
  static Result<std::unique_ptr<GraphCodec>> Create(const std::string& name);

  /// \brief All registered names, sorted.
  static std::vector<std::string> Names();

  /// \brief Names() without the "sharded:<inner>" meta-variants — the
  /// base compressors themselves.
  static std::vector<std::string> BaseNames();
};

/// \brief Registers `CodecClass` (default-constructible GraphCodec
/// subclass) under `name` at static-initialization time.
#define GREPAIR_REGISTER_CODEC(name, CodecClass)                         \
  static const bool grepair_codec_registrar_##CodecClass =               \
      ::grepair::api::CodecRegistry::Register(                           \
          name, []() -> std::unique_ptr<::grepair::api::GraphCodec> {    \
            return std::make_unique<CodecClass>();                       \
          })

}  // namespace api
}  // namespace grepair

#endif  // GREPAIR_API_CODEC_REGISTRY_H_
