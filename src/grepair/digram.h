// Digrams: pairs of connected hyperedges (Definition 2) and occurrences
// of digrams in a graph (Definition 3).
//
// A digram *shape* is what identifies "the same digram" across the
// graph: the two edge labels with their ranks, which attachment
// positions coincide (the shared nodes), and which digram nodes are
// external. Two edges of an occurrence induce a subgraph isomorphic to
// the digram (conditions 1+2 of Definition 3) and a node of the
// occurrence is external exactly when it is incident with an edge
// outside the occurrence (condition 3).
//
// Shapes are canonical over the unordered edge pair: the shape is
// computed for both orderings and the lexicographically smaller one
// wins, so {e1,e2} and {e2,e1} always map to one digram. The digram's
// external sequence is fixed as "ascending pre-canonical node id",
// where pre-canonical ids enumerate edge0's attachments first and then
// edge1's unshared attachments; the replacement edge attaches its nodes
// in exactly this order, which makes rule application reproduce the
// replaced subgraph (Section III).
//
// Stability note (why stored occurrences never go stale): for a live
// occurrence {e1,e2}, a node's externality can never flip. External
// nodes keep at least one outside edge because any replacement that
// consumes such an edge attaches the replacement nonterminal edge to
// the same node (the node is external in that occurrence too, since e1
// or e2 is its "other" edge). Internal nodes have no edges besides
// e1,e2, and replacements only ever attach new edges to nodes that had
// outside edges. Occurrences that share an edge with a replaced
// occurrence are removed from the index before the replacement, so
// every stored occurrence refers to live edges with an unchanged shape.

#ifndef GREPAIR_GREPAIR_DIGRAM_H_
#define GREPAIR_GREPAIR_DIGRAM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/graph/hypergraph.h"

namespace grepair {

/// \brief Canonical identity of a digram.
struct DigramShape {
  Label label0 = kInvalidLabel;
  Label label1 = kInvalidLabel;
  uint8_t rank0 = 0;
  uint8_t rank1 = 0;
  /// Shared attachment positions, packed (pos_in_edge0 << 8) |
  /// pos_in_edge1, sorted ascending by pos_in_edge0. Non-empty for any
  /// valid digram (the edges must be connected).
  std::vector<uint16_t> shared;
  /// Externality bitmasks by attachment position (bit i = position i is
  /// an external node). Shared nodes are flagged in both masks.
  uint64_t ext0 = 0;
  uint64_t ext1 = 0;

  bool operator==(const DigramShape& o) const {
    return label0 == o.label0 && label1 == o.label1 && rank0 == o.rank0 &&
           rank1 == o.rank1 && ext0 == o.ext0 && ext1 == o.ext1 &&
           shared == o.shared;
  }

  /// \brief Lexicographic order used for canonical orientation.
  bool operator<(const DigramShape& o) const;

  /// \brief Total distinct nodes of the digram.
  int NumNodes() const {
    return rank0 + rank1 - static_cast<int>(shared.size());
  }

  /// \brief Number of external nodes = rank of the digram = rank of the
  /// nonterminal that replaces its occurrences.
  int NumExternal() const;

  /// \brief Number of internal (removal) nodes.
  int NumInternal() const { return NumNodes() - NumExternal(); }
};

struct DigramShapeHash {
  size_t operator()(const DigramShape& s) const;
};

namespace internal {

/// \brief Builds one orientation of the shape (x plays edge0); returns
/// false when the edges share no node.
template <typename IsExternal>
bool ComputeOrientedShape(const HEdge& x, const HEdge& y,
                          const IsExternal& is_external,
                          DigramShape* shape) {
  shape->label0 = x.label;
  shape->label1 = y.label;
  shape->rank0 = static_cast<uint8_t>(x.att.size());
  shape->rank1 = static_cast<uint8_t>(y.att.size());
  shape->shared.clear();
  shape->ext0 = 0;
  shape->ext1 = 0;
  for (size_t i = 0; i < x.att.size(); ++i) {
    for (size_t j = 0; j < y.att.size(); ++j) {
      if (x.att[i] == y.att[j]) {
        shape->shared.push_back(static_cast<uint16_t>((i << 8) | j));
      }
    }
  }
  if (shape->shared.empty()) return false;  // not connected: no digram
  for (size_t i = 0; i < x.att.size(); ++i) {
    if (is_external(x.att[i])) shape->ext0 |= 1ull << i;
  }
  for (size_t j = 0; j < y.att.size(); ++j) {
    if (is_external(y.att[j])) shape->ext1 |= 1ull << j;
  }
  return true;
}

}  // namespace internal

/// \brief Computes the canonical shape of the edge pair {a, b}.
///
/// `is_external(v)` must report whether node v is incident with any live
/// edge other than a and b. Returns false when the edges share no node
/// (not a digram). `*swapped` is set when the canonical orientation has
/// b playing edge0. The predicate is a template parameter: this runs in
/// the innermost loop of occurrence counting.
template <typename IsExternal>
bool ComputeDigramShape(const HEdge& a, const HEdge& b,
                        const IsExternal& is_external, DigramShape* shape,
                        bool* swapped) {
  assert(a.att.size() <= 64 && b.att.size() <= 64);
  DigramShape forward, backward;
  if (!internal::ComputeOrientedShape(a, b, is_external, &forward)) {
    return false;
  }
  bool ok = internal::ComputeOrientedShape(b, a, is_external, &backward);
  assert(ok);
  (void)ok;
  if (backward < forward) {
    *shape = std::move(backward);
    *swapped = true;
  } else {
    *shape = std::move(forward);
    *swapped = false;
  }
  return true;
}

/// \brief Builds the canonical right-hand side for the digram's rule:
/// external nodes get ids 0..k-1 (ascending pre-canonical order),
/// internal nodes follow; edges are [edge0, edge1].
Hypergraph BuildDigramRhs(const DigramShape& shape);

/// \brief Node correspondence for replacing one occurrence: given the
/// oriented attachments (att0 belongs to the edge playing edge0), emits
/// the host-graph nodes the replacement nonterminal edge attaches to
/// (in external order) and the removal nodes (in internal order, which
/// equals the rhs's internal node order).
void MapOccurrenceNodes(const DigramShape& shape,
                        const std::vector<NodeId>& att0,
                        const std::vector<NodeId>& att1,
                        std::vector<NodeId>* attachment_nodes,
                        std::vector<NodeId>* removal_nodes);

}  // namespace grepair

#endif  // GREPAIR_GREPAIR_DIGRAM_H_
