// gRePair: grammar-based graph compression (Section III).
//
// Starting from the input graph as the grammar's start graph, gRePair
// repeatedly picks the digram with the most non-overlapping occurrences,
// introduces a fresh nonterminal A with rule A -> digram, and replaces
// every stored occurrence by an A-labeled hyperedge attached to the
// occurrence's external nodes. Occurrence sets are approximated greedily
// by visiting nodes in a configurable order (node_order.h) and pairing
// incident edges per label combination, O(deg) candidates per node.
// After the main loop an optional virtual-edge pass connects the
// remaining components and reruns the loop (improving compression of
// disjoint unions, Section III-A), and pruning removes rules that do
// not pay for themselves (Section III-A3).

#ifndef GREPAIR_GREPAIR_COMPRESSOR_H_
#define GREPAIR_GREPAIR_COMPRESSOR_H_

#include <cstdint>

#include "src/grammar/derivation.h"
#include "src/grammar/grammar.h"
#include "src/grammar/pruning.h"
#include "src/graph/node_order.h"
#include "src/util/status.h"

namespace grepair {

/// \brief Tuning knobs of gRePair (Section III-B).
struct CompressOptions {
  /// Maximum digram rank = maximum nonterminal rank (Section III-B2).
  /// Digrams with more external nodes are not counted. The paper finds
  /// 4 a good compromise (Table IV).
  int max_rank = 4;

  /// Node order for occurrence counting (Section III-B1).
  NodeOrderKind node_order = NodeOrderKind::kFp;

  /// Seed for NodeOrderKind::kRandom.
  uint64_t order_seed = 42;

  /// Connect disconnected components with virtual edges and rerun the
  /// replacement loop before pruning (Section III-A).
  bool connect_components = true;

  /// Run the pruning phase (Section III-A3).
  bool prune = true;
  PruneOptions prune_options;

  /// Track the original-ID mapping psi' (derivation records); enables
  /// exact reconstruction via DeriveOriginal at some memory cost.
  bool track_node_mapping = false;

  /// Extension (off by default = paper behavior): after the main loop,
  /// run up to this many additional full counting passes while they
  /// still find active digrams.
  int extra_recount_passes = 0;
};

/// \brief Counters reported by one compression run.
struct CompressStats {
  uint32_t digrams_replaced = 0;       ///< rules created before pruning
  uint64_t occurrences_replaced = 0;
  uint64_t occurrences_indexed = 0;    ///< occurrences ever registered
  uint32_t virtual_edges_added = 0;
  uint32_t rules_after_prune = 0;
  uint64_t input_size = 0;             ///< |g|
  uint64_t output_size = 0;            ///< |G| + |S| after pruning
  PruneStats prune_stats;
};

/// \brief Output of Compress.
struct CompressResult {
  SlhrGrammar grammar;
  /// Populated when CompressOptions::track_node_mapping is set; together
  /// with the grammar it reproduces the input exactly (DeriveOriginal).
  NodeMapping mapping;
  CompressStats stats;
};

/// \brief Compresses `graph` (over `alphabet`) into an SL-HR grammar.
///
/// The input must pass Hypergraph::Validate and have no external nodes.
/// The result grammar's terminal alphabet equals `alphabet` (the
/// reserved virtual-edge label used internally is stripped before
/// assembly), and its start graph is in canonical (label, attachment)
/// edge order, ready for EncodeGrammar.
Result<CompressResult> Compress(const Hypergraph& graph,
                                const Alphabet& alphabet,
                                const CompressOptions& options = {});

}  // namespace grepair

#endif  // GREPAIR_GREPAIR_COMPRESSOR_H_
