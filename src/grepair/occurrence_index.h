// Occurrence bookkeeping for gRePair (Section III-C1).
//
// A direct generalization of the RePair data structures of Larsson &
// Moffat: every active digram owns a doubly-linked list of its current
// non-overlapping occurrences, and a priority queue of sqrt(n) buckets
// keyed by occurrence count serves "most frequent digram" pops in
// (amortized) constant time — bucket b < cap holds digrams with exactly
// b occurrences, the top bucket holds everything with >= cap.
//
// Occurrence lists shrink when a replacement consumes an edge that some
// other occurrence uses, and grow when new nonterminal edges pair with
// their neighbors; both paths are O(1) per event here.

#ifndef GREPAIR_GREPAIR_OCCURRENCE_INDEX_H_
#define GREPAIR_GREPAIR_OCCURRENCE_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/grepair/digram.h"

namespace grepair {

using OccId = uint32_t;
using DigramId = uint32_t;
inline constexpr OccId kInvalidOcc = ~0u;
inline constexpr DigramId kInvalidDigram = ~0u;

/// \brief One stored occurrence; edge0 plays the shape's edge0 role.
struct Occurrence {
  EdgeId edge0 = kInvalidEdge;
  EdgeId edge1 = kInvalidEdge;
  DigramId digram = kInvalidDigram;
  OccId prev = kInvalidOcc;
  OccId next = kInvalidOcc;
  bool alive = false;

  EdgeId other(EdgeId e) const { return e == edge0 ? edge1 : edge0; }
};

/// \brief Per-digram state: shape, occurrence list, PQ linkage.
struct DigramEntry {
  DigramShape shape;
  uint32_t count = 0;
  OccId head = kInvalidOcc;
  DigramId pq_prev = kInvalidDigram;
  DigramId pq_next = kInvalidDigram;
  int32_t bucket = -1;  ///< -1 when not queued (count < 2 or popped)
};

/// \brief Digram table + occurrence arena + frequency priority queue.
class OccurrenceIndex {
 public:
  /// \brief `expected_edges` sizes the bucket cap at sqrt(n) as in
  /// Larsson-Moffat.
  explicit OccurrenceIndex(uint32_t expected_edges);

  /// \brief Registers an occurrence {e0,e1} of `shape` (e0 in the
  /// shape's edge0 role). Creates or revives the digram entry.
  OccId Add(const DigramShape& shape, EdgeId e0, EdgeId e1);

  /// \brief Unlinks an occurrence (it must be alive).
  void Remove(OccId id);

  /// \brief Pops the most frequent digram (count >= 2) out of the queue;
  /// kInvalidDigram when no digram is active. The digram's occurrence
  /// list stays intact for the caller to consume.
  DigramId PopMaxDigram();

  const Occurrence& occ(OccId id) const { return occs_[id]; }
  const DigramEntry& digram(DigramId id) const { return digrams_[id]; }

  /// \brief Head of a digram's occurrence list (kInvalidOcc when empty).
  OccId FirstOccurrence(DigramId id) const { return digrams_[id].head; }

  size_t num_digrams() const { return digrams_.size(); }
  uint64_t total_occurrences_added() const { return total_added_; }

 private:
  void PqInsert(DigramId id);
  void PqRemove(DigramId id);
  int32_t BucketFor(uint32_t count) const;

  std::unordered_map<DigramShape, DigramId, DigramShapeHash> shape_to_digram_;
  std::vector<DigramEntry> digrams_;
  std::vector<Occurrence> occs_;
  std::vector<OccId> free_occs_;
  std::vector<DigramId> bucket_head_;
  int32_t max_bucket_ = 1;  ///< highest bucket that may be nonempty
  int32_t bucket_cap_;
  uint64_t total_added_ = 0;
};

}  // namespace grepair

#endif  // GREPAIR_GREPAIR_OCCURRENCE_INDEX_H_
