#include "src/grepair/compressor.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>

#include "src/encoding/grammar_coder.h"
#include "src/graph/graph_algos.h"
#include "src/grepair/occurrence_index.h"

namespace grepair {

namespace {

// Mutable working form of the start graph during compression, plus all
// transient pairing state. Node/edge slots are never reused; dead slots
// are skipped (and incidence lists compacted lazily).
class Compressor {
 public:
  Compressor(const Hypergraph& graph, const Alphabet& alphabet,
             const CompressOptions& options)
      : options_(options), input_(graph) {
    work_alphabet_ = alphabet;
    if (options_.connect_components) {
      virtual_label_ = work_alphabet_.Add("__virtual__", 2);
    }
    num_terminals_ = static_cast<uint32_t>(work_alphabet_.size());

    node_alive_.assign(graph.num_nodes(), 1);
    degree_.assign(graph.num_nodes(), 0);
    incidence_.resize(graph.num_nodes());
    dead_incident_.assign(graph.num_nodes(), 0);
    if (options_.track_node_mapping) {
      orig_.resize(graph.num_nodes());
      for (NodeId v = 0; v < graph.num_nodes(); ++v) orig_[v] = v;
    }
    for (const auto& e : graph.edges()) {
      AddWorkEdge(e.label, e.att);
    }
    // The node order omega is fixed once on the input graph
    // (Section III-A); later passes (virtual edges, recounts) reuse it
    // restricted to the surviving nodes.
    order_ = ComputeNodeOrder(graph, options_.node_order,
                              options_.order_seed);
  }

  CompressResult Run() {
    stats_.input_size = input_.TotalSize();

    RunPass();
    for (int i = 0; i < options_.extra_recount_passes; ++i) {
      if (!RunPass()) break;
    }
    if (options_.connect_components) {
      if (AddVirtualEdges() > 0) {
        RunPass();
      }
      StripVirtualEdges();
    }

    CompressResult result = Assemble();
    if (options_.prune) {
      result.stats.prune_stats = PruneGrammar(
          &result.grammar,
          options_.track_node_mapping ? &result.mapping : nullptr,
          options_.prune_options);
    }
    // Finish in canonical start-edge order so the binary encoder can
    // round-trip val(G) exactly.
    CanonicalizeStartEdgeOrder(
        &result.grammar,
        options_.track_node_mapping ? &result.mapping : nullptr);
    result.stats.rules_after_prune = result.grammar.num_rules();
    result.stats.output_size = result.grammar.TotalSize();
    return result;
  }

 private:
  struct WEdge {
    HEdge edge;
    bool alive = true;
    std::vector<OccId> occs;  // occurrences this edge participates in
  };

  // Entries of the per-round pairing lists: edges of one label at one
  // node, consumed front to back. Cleared every round (see PairNewEdge).
  struct RoundList {
    std::vector<EdgeId> edges;
    size_t cursor = 0;
  };

  bool IsNonterminalLabel(Label l) const { return l >= num_terminals_; }

  EdgeId AddWorkEdge(Label label, std::vector<NodeId> att) {
    EdgeId id = static_cast<EdgeId>(edges_.size());
    WEdge e;
    e.edge.label = label;
    e.edge.att = std::move(att);
    edges_.push_back(std::move(e));
    if (options_.track_node_mapping) records_.emplace_back();
    for (NodeId v : edges_[id].edge.att) {
      incidence_[v].push_back(id);
      ++degree_[v];
      // Keep any materialized round list at v complete: new nonterminal
      // edges must be pairable at shared hub nodes. Creating the label
      // entry on demand matters — the fill at materialization time only
      // saw labels that existed then.
      auto it = round_lists_.find(v);
      if (it != round_lists_.end()) {
        it->second[label].edges.push_back(id);
      }
    }
    return id;
  }

  void KillEdge(EdgeId e) {
    assert(edges_[e].alive);
    edges_[e].alive = false;
    for (NodeId v : edges_[e].edge.att) {
      assert(degree_[v] > 0);
      --degree_[v];
      ++dead_incident_[v];
    }
  }

  // Compacts v's incidence list when at least half of it is dead.
  void MaybeCompactIncidence(NodeId v) {
    auto& inc = incidence_[v];
    if (dead_incident_[v] * 2 < inc.size()) return;
    size_t out = 0;
    for (EdgeId e : inc) {
      if (edges_[e].alive) inc[out++] = e;
    }
    inc.resize(out);
    dead_incident_[v] = 0;
  }

  // True when node v has a live edge other than a and b (Definition 3,
  // condition 3). degree_ counts live incident edges.
  bool IsExternalFor(NodeId v, EdgeId a, EdgeId b) const {
    uint32_t inside = 0;
    for (NodeId u : edges_[a].edge.att) {
      if (u == v) ++inside;
    }
    for (NodeId u : edges_[b].edge.att) {
      if (u == v) ++inside;
    }
    return degree_[v] > inside;
  }

  // True if edge e is already in an occurrence whose other edge carries
  // label `partner` (the availability predicate of Section III-C1).
  bool HasOccWithPartner(EdgeId e, Label partner) const {
    for (OccId oid : edges_[e].occs) {
      const Occurrence& o = index_->occ(oid);
      if (edges_[o.other(e)].edge.label == partner) return true;
    }
    return false;
  }

  // Attempts to register {x, y} as an occurrence of its digram. Returns
  // true if an occurrence was created.
  bool TryCreateOccurrence(EdgeId x, EdgeId y) {
    if (x == y) return false;
    const WEdge& ex = edges_[x];
    const WEdge& ey = edges_[y];
    if (!ex.alive || !ey.alive) return false;
    // Never pair two virtual edges: their rule would derive nothing
    // after the virtual edges are stripped.
    if (options_.connect_components && ex.edge.label == virtual_label_ &&
        ey.edge.label == virtual_label_) {
      return false;
    }
    if (HasOccWithPartner(x, ey.edge.label) ||
        HasOccWithPartner(y, ex.edge.label)) {
      return false;
    }
    DigramShape shape;
    bool swapped = false;
    auto is_external = [&](NodeId v) { return IsExternalFor(v, x, y); };
    if (!ComputeDigramShape(ex.edge, ey.edge, is_external, &shape,
                            &swapped)) {
      return false;
    }
    int rank = shape.NumExternal();
    if (rank < 1 || rank > options_.max_rank) return false;

    EdgeId e0 = swapped ? y : x;
    EdgeId e1 = swapped ? x : y;
    OccId oid = index_->Add(shape, e0, e1);
    edges_[x].occs.push_back(oid);
    edges_[y].occs.push_back(oid);
    return true;
  }

  // Removes every occurrence edge e participates in, fixing up the
  // partner edges' back references. Surviving partners become available
  // again for the partner label they just lost, so they are re-pushed
  // onto any materialized round lists (the "available list" maintenance
  // of Section III-C1; without it, edges freed mid-round could never be
  // paired with later nonterminal edges).
  void RemoveOccurrencesOf(EdgeId e) {
    for (OccId oid : edges_[e].occs) {
      const Occurrence& o = index_->occ(oid);
      if (!o.alive) continue;
      EdgeId other = o.other(e);
      auto& other_occs = edges_[other].occs;
      other_occs.erase(std::find(other_occs.begin(), other_occs.end(), oid));
      index_->Remove(oid);
      if (edges_[other].alive) RepushToRoundLists(other);
    }
    edges_[e].occs.clear();
  }

  // Makes `e` visible again to round-list scans at all its nodes.
  void RepushToRoundLists(EdgeId e) {
    Label label = edges_[e].edge.label;
    for (NodeId v : edges_[e].edge.att) {
      auto it = round_lists_.find(v);
      if (it != round_lists_.end()) {
        it->second[label].edges.push_back(e);
      }
    }
  }

  // ---- Step 2: initial occurrence counting ------------------------------

  // Counts occurrences centered around v: incident live edges are
  // grouped by (label, position-of-v), and for every group pair the
  // available edges are matched one-to-one (the Occ(E1,E2) split of
  // Section III-C1). Only O(deg) candidate pairs are formed.
  void CountAroundNode(NodeId v) {
    MaybeCompactIncidence(v);
    // (type key, edge) pairs; type key = (label << 8) | position-of-v.
    std::vector<std::pair<uint64_t, EdgeId>> typed;
    typed.reserve(incidence_[v].size());
    for (EdgeId e : incidence_[v]) {
      if (!edges_[e].alive) continue;
      uint64_t pos = 0;
      const auto& att = edges_[e].edge.att;
      for (size_t i = 0; i < att.size(); ++i) {
        if (att[i] == v) pos = i;
      }
      typed.push_back({(static_cast<uint64_t>(edges_[e].edge.label) << 8) | pos,
                       e});
    }
    std::stable_sort(typed.begin(), typed.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    // Group boundaries.
    std::vector<std::pair<size_t, size_t>> groups;
    for (size_t i = 0; i < typed.size();) {
      size_t j = i;
      while (j < typed.size() && typed[j].first == typed[i].first) ++j;
      groups.push_back({i, j});
      i = j;
    }
    auto label_of_group = [&](size_t g) {
      return static_cast<Label>(typed[groups[g].first].first >> 8);
    };
    std::vector<EdgeId> list1, list2;
    for (size_t g1 = 0; g1 < groups.size(); ++g1) {
      for (size_t g2 = g1; g2 < groups.size(); ++g2) {
        Label lab1 = label_of_group(g1);
        Label lab2 = label_of_group(g2);
        if (g1 == g2) {
          // Same type: split the available edges into halves E1, E2 and
          // pair element-wise.
          list1.clear();
          for (size_t i = groups[g1].first; i < groups[g1].second; ++i) {
            EdgeId e = typed[i].second;
            if (edges_[e].alive && !HasOccWithPartner(e, lab2)) {
              list1.push_back(e);
            }
          }
          size_t n = list1.size() / 2;
          for (size_t i = 0; i < n; ++i) {
            TryCreateOccurrence(list1[i], list1[n + i]);
          }
        } else {
          list1.clear();
          list2.clear();
          for (size_t i = groups[g1].first; i < groups[g1].second; ++i) {
            EdgeId e = typed[i].second;
            if (edges_[e].alive && !HasOccWithPartner(e, lab2)) {
              list1.push_back(e);
            }
          }
          for (size_t i = groups[g2].first; i < groups[g2].second; ++i) {
            EdgeId e = typed[i].second;
            if (edges_[e].alive && !HasOccWithPartner(e, lab1)) {
              list2.push_back(e);
            }
          }
          size_t n = std::min(list1.size(), list2.size());
          for (size_t i = 0; i < n; ++i) {
            TryCreateOccurrence(list1[i], list2[i]);
          }
        }
      }
    }
  }

  // Snapshot of the current live graph (dead nodes stay as isolated
  // slots so ids line up), used to compute traversal-based node orders
  // on recount passes.
  Hypergraph Snapshot() const {
    Hypergraph g(static_cast<uint32_t>(node_alive_.size()));
    for (const auto& e : edges_) {
      if (e.alive) g.AddEdge(e.edge.label, e.edge.att);
    }
    return g;
  }

  void InitialCount() {
    for (NodeId v : order_) {
      if (node_alive_[v]) CountAroundNode(v);
    }
  }

  // ---- Steps 3-7: replacement loop ---------------------------------------

  // Replaces every occurrence of the digram, creating rule A -> digram.
  void ReplaceDigram(DigramId did) {
    const DigramShape shape = index_->digram(did).shape;  // copy: stable
    Label a_label = work_alphabet_.Add(
        "N" + std::to_string(rule_rhs_.size()), shape.NumExternal());
    rule_rhs_.push_back(BuildDigramRhs(shape));
    round_lists_.clear();

    std::vector<NodeId> attachment, removal;
    for (;;) {
      OccId oid = index_->FirstOccurrence(did);
      if (oid == kInvalidOcc) break;
      Occurrence o = index_->occ(oid);  // copy before removal
      EdgeId e0 = o.edge0, e1 = o.edge1;
      MapOccurrenceNodes(shape, edges_[e0].edge.att, edges_[e1].edge.att, &attachment,
                         &removal);

      // Drop all occurrences using e0/e1 (including this one).
      RemoveOccurrencesOf(e0);
      RemoveOccurrencesOf(e1);
      KillEdge(e0);
      KillEdge(e1);
      for (NodeId v : removal) {
        assert(degree_[v] == 0 && "removal node still has live edges");
        node_alive_[v] = 0;
      }
      EdgeId ne = AddWorkEdge(a_label, attachment);
      if (options_.track_node_mapping) {
        DerivationRecord rec;
        rec.internal_origs.reserve(removal.size());
        for (NodeId v : removal) rec.internal_origs.push_back(orig_[v]);
        // Children follow the rhs edge order [edge0, edge1].
        if (IsNonterminalLabel(edges_[e0].edge.label)) {
          rec.children.push_back(std::move(records_[e0]));
        }
        if (IsNonterminalLabel(edges_[e1].edge.label)) {
          rec.children.push_back(std::move(records_[e1]));
        }
        records_[ne] = std::move(rec);
      }
      ++stats_.occurrences_replaced;
      PairNewEdge(ne);
    }
    ++stats_.digrams_replaced;
  }

  // Step 6 for one new nonterminal edge: at each attachment node, pair
  // e' with the first available edge of every label (Section III-C1's
  // per-label available lists; ours are materialized lazily per round,
  // which is equivalent because the partner label — the fresh
  // nonterminal — cannot have pre-round pairings).
  void PairNewEdge(EdgeId ne) {
    Label a_label = edges_[ne].edge.label;
    // Iterate over a copy: TryCreateOccurrence never mutates attachments.
    std::vector<NodeId> att = edges_[ne].edge.att;
    for (NodeId v : att) {
      auto& per_label = round_lists_[v];
      if (per_label.empty()) {
        MaybeCompactIncidence(v);
        for (EdgeId e : incidence_[v]) {
          if (edges_[e].alive) per_label[edges_[e].edge.label].edges.push_back(e);
        }
      }
      for (auto& [label, list] : per_label) {
        if (HasOccWithPartner(ne, label)) continue;
        // Entries are consumed front-to-back; every skip consumes its
        // entry so a round's total scan work at a node stays linear:
        //  * dead edges are gone for good,
        //  * ne itself is re-appended once (the next new edge can and
        //    should pair with it — this is how hub stars cascade),
        //  * edges busy with an a_label partner are re-pushed by
        //    RemoveOccurrencesOf if that occurrence later dissolves,
        //  * rank-rejected shapes are NOT retried: another new edge of
        //    the same label would form (nearly) the same shape, and
        //    re-adding them makes hubs quadratic.
        bool readd_self = false;
        while (list.cursor < list.edges.size()) {
          EdgeId f = list.edges[list.cursor++];
          if (!edges_[f].alive) continue;
          if (f == ne) {
            readd_self = true;
            continue;
          }
          if (HasOccWithPartner(f, a_label)) continue;
          if (TryCreateOccurrence(ne, f)) break;
        }
        if (readd_self) list.edges.push_back(ne);
      }
    }
  }

  bool RunPass() {
    index_ = std::make_unique<OccurrenceIndex>(CountLiveEdges());
    for (auto& e : edges_) e.occs.clear();
    round_lists_.clear();
    InitialCount();
    bool any = false;
    for (;;) {
      DigramId did = index_->PopMaxDigram();
      if (did == kInvalidDigram) break;
      ReplaceDigram(did);
      any = true;
    }
    stats_.occurrences_indexed += index_->total_occurrences_added();
    return any;
  }

  uint32_t CountLiveEdges() const {
    uint32_t n = 0;
    for (const auto& e : edges_) n += e.alive ? 1 : 0;
    return n;
  }

  // ---- Virtual edges (Section III-A, step after the main loop) ----------

  uint32_t AddVirtualEdges() {
    Hypergraph snapshot = Snapshot();
    uint32_t num_components = 0;
    auto comp = ConnectedComponents(snapshot, &num_components);
    // Representative per component = lowest live node id; skip
    // components that are dead slots.
    std::vector<NodeId> rep(num_components, kInvalidNode);
    for (NodeId v = 0; v < snapshot.num_nodes(); ++v) {
      if (!node_alive_[v]) continue;
      if (rep[comp[v]] == kInvalidNode) rep[comp[v]] = v;
    }
    std::vector<NodeId> reps;
    for (uint32_t c = 0; c < num_components; ++c) {
      if (rep[c] != kInvalidNode) reps.push_back(rep[c]);
    }
    if (reps.size() <= 1) return 0;
    for (size_t i = 0; i + 1 < reps.size(); ++i) {
      AddWorkEdge(virtual_label_, {reps[i], reps[i + 1]});
      ++stats_.virtual_edges_added;
    }
    return static_cast<uint32_t>(reps.size() - 1);
  }

  void StripVirtualEdges() {
    for (EdgeId e = 0; e < edges_.size(); ++e) {
      if (edges_[e].alive && edges_[e].edge.label == virtual_label_) {
        RemoveOccurrencesOf(e);
        KillEdge(e);
      }
    }
    for (auto& rhs : rule_rhs_) {
      rhs.RemoveEdgesIf(
          [&](const HEdge& e) { return e.label == virtual_label_; });
    }
  }

  // ---- Final assembly -----------------------------------------------------

  CompressResult Assemble() {
    // Compact live node ids.
    std::vector<NodeId> remap(node_alive_.size(), kInvalidNode);
    uint32_t next = 0;
    for (NodeId v = 0; v < node_alive_.size(); ++v) {
      if (node_alive_[v]) remap[v] = next++;
    }
    Hypergraph start(next);
    CompressResult result;
    if (options_.track_node_mapping) {
      result.mapping.start_origs.reserve(next);
      for (NodeId v = 0; v < node_alive_.size(); ++v) {
        if (node_alive_[v]) result.mapping.start_origs.push_back(orig_[v]);
      }
    }
    // The reserved virtual label is always the last terminal and all
    // its edges were stripped; drop it from the output alphabet by
    // shifting every higher (nonterminal) label down by one.
    const bool drop_virtual = options_.connect_components;
    auto out_label = [&](Label l) {
      assert(!drop_virtual || l != virtual_label_);
      return drop_virtual && l > virtual_label_ ? l - 1 : l;
    };
    for (EdgeId e = 0; e < edges_.size(); ++e) {
      if (!edges_[e].alive) continue;
      std::vector<NodeId> att;
      att.reserve(edges_[e].edge.att.size());
      for (NodeId v : edges_[e].edge.att) att.push_back(remap[v]);
      start.AddEdge(out_label(edges_[e].edge.label), std::move(att));
      if (options_.track_node_mapping) {
        result.mapping.edge_records.push_back(std::move(records_[e]));
      }
    }

    // Rebuild the grammar with the terminal prefix of the work alphabet
    // (minus the reserved virtual label).
    uint32_t out_terminals = drop_virtual ? num_terminals_ - 1
                                          : num_terminals_;
    Alphabet terminals;
    for (Label l = 0; l < out_terminals; ++l) {
      terminals.Add(work_alphabet_.name(l), work_alphabet_.rank(l));
    }
    result.grammar = SlhrGrammar(std::move(terminals), std::move(start));
    for (uint32_t j = 0; j < rule_rhs_.size(); ++j) {
      Label nt = result.grammar.AddNonterminal(
          work_alphabet_.rank(num_terminals_ + j),
          work_alphabet_.name(num_terminals_ + j));
      assert(nt == out_terminals + j);
      (void)nt;
      for (EdgeId re = 0; re < rule_rhs_[j].num_edges(); ++re) {
        Label& l = rule_rhs_[j].mutable_edge(re).label;
        l = out_label(l);
      }
      result.grammar.SetRule(result.grammar.NonterminalLabel(j),
                             std::move(rule_rhs_[j]));
    }
    result.stats = stats_;
    return result;
  }

  const CompressOptions options_;
  const Hypergraph& input_;

  Alphabet work_alphabet_;
  uint32_t num_terminals_ = 0;
  Label virtual_label_ = kInvalidLabel;

  std::vector<char> node_alive_;
  std::vector<uint32_t> degree_;
  std::vector<std::vector<EdgeId>> incidence_;
  std::vector<uint32_t> dead_incident_;
  std::vector<NodeId> orig_;
  std::vector<WEdge> edges_;
  std::vector<DerivationRecord> records_;
  std::vector<Hypergraph> rule_rhs_;

  std::vector<NodeId> order_;
  std::unique_ptr<OccurrenceIndex> index_;
  std::unordered_map<NodeId, std::map<Label, RoundList>> round_lists_;

  CompressStats stats_;
};

}  // namespace

Result<CompressResult> Compress(const Hypergraph& graph,
                                const Alphabet& alphabet,
                                const CompressOptions& options) {
  GREPAIR_RETURN_IF_ERROR(graph.Validate(alphabet));
  if (!graph.ext().empty()) {
    return Status::InvalidArgument("input graph must have no external nodes");
  }
  if (options.max_rank < 1 || options.max_rank > 63) {
    return Status::InvalidArgument("max_rank must be in [1, 63]");
  }
  for (Label l = 0; l < alphabet.size(); ++l) {
    if (alphabet.rank(l) > 63) {
      return Status::InvalidArgument("label ranks above 63 are unsupported");
    }
  }
  Compressor compressor(graph, alphabet, options);
  CompressResult result = compressor.Run();
  // The binary format caps total duplicate parallel rank-2 edges at
  // kMaxDupEdges (grammar_coder.h); enforce it here, where there is
  // an error channel, so EncodeGrammar can never emit a file its own
  // decoder rejects. Start edges are in canonical (label, attachment)
  // order, so duplicates are adjacent.
  const Hypergraph& start = result.grammar.start();
  uint64_t dup_edges = 0;
  for (uint32_t i = 1; i < start.num_edges(); ++i) {
    if (start.edge(i).rank() == 2 && start.edge(i) == start.edge(i - 1)) {
      if (++dup_edges > kMaxDupEdges) {
        return Status::InvalidArgument(
            "graph exceeds the grammar format's capacity of " +
            std::to_string(kMaxDupEdges) + " duplicate parallel edges");
      }
    }
  }
  return result;
}

}  // namespace grepair
