#include "src/grepair/occurrence_index.h"

#include <cassert>
#include <cmath>

namespace grepair {

OccurrenceIndex::OccurrenceIndex(uint32_t expected_edges) {
  bucket_cap_ = static_cast<int32_t>(
      std::sqrt(static_cast<double>(expected_edges < 4 ? 4 : expected_edges)));
  if (bucket_cap_ < 2) bucket_cap_ = 2;
  bucket_head_.assign(static_cast<size_t>(bucket_cap_) + 1, kInvalidDigram);
}

int32_t OccurrenceIndex::BucketFor(uint32_t count) const {
  return count >= static_cast<uint32_t>(bucket_cap_)
             ? bucket_cap_
             : static_cast<int32_t>(count);
}

void OccurrenceIndex::PqInsert(DigramId id) {
  DigramEntry& d = digrams_[id];
  assert(d.bucket == -1 && d.count >= 2);
  int32_t b = BucketFor(d.count);
  d.bucket = b;
  d.pq_prev = kInvalidDigram;
  d.pq_next = bucket_head_[b];
  if (bucket_head_[b] != kInvalidDigram) digrams_[bucket_head_[b]].pq_prev = id;
  bucket_head_[b] = id;
  if (b > max_bucket_) max_bucket_ = b;
}

void OccurrenceIndex::PqRemove(DigramId id) {
  DigramEntry& d = digrams_[id];
  assert(d.bucket >= 0);
  if (d.pq_prev != kInvalidDigram) {
    digrams_[d.pq_prev].pq_next = d.pq_next;
  } else {
    bucket_head_[d.bucket] = d.pq_next;
  }
  if (d.pq_next != kInvalidDigram) digrams_[d.pq_next].pq_prev = d.pq_prev;
  d.bucket = -1;
  d.pq_prev = d.pq_next = kInvalidDigram;
}

OccId OccurrenceIndex::Add(const DigramShape& shape, EdgeId e0, EdgeId e1) {
  DigramId did;
  auto it = shape_to_digram_.find(shape);
  if (it != shape_to_digram_.end()) {
    did = it->second;
  } else {
    did = static_cast<DigramId>(digrams_.size());
    digrams_.emplace_back();
    digrams_.back().shape = shape;
    shape_to_digram_.emplace(shape, did);
  }

  OccId oid;
  if (!free_occs_.empty()) {
    oid = free_occs_.back();
    free_occs_.pop_back();
  } else {
    oid = static_cast<OccId>(occs_.size());
    occs_.emplace_back();
  }
  Occurrence& o = occs_[oid];
  o.edge0 = e0;
  o.edge1 = e1;
  o.digram = did;
  o.prev = kInvalidOcc;
  o.alive = true;

  DigramEntry& d = digrams_[did];
  o.next = d.head;
  if (d.head != kInvalidOcc) occs_[d.head].prev = oid;
  d.head = oid;
  ++d.count;
  ++total_added_;

  // Requeue on count transitions: entering activity (count 2) or moving
  // buckets below the cap.
  if (d.bucket >= 0) {
    int32_t b = BucketFor(d.count);
    if (b != d.bucket) {
      PqRemove(did);
      PqInsert(did);
    }
  } else if (d.count >= 2) {
    PqInsert(did);
  }
  return oid;
}

void OccurrenceIndex::Remove(OccId id) {
  Occurrence& o = occs_[id];
  assert(o.alive);
  DigramEntry& d = digrams_[o.digram];
  if (o.prev != kInvalidOcc) {
    occs_[o.prev].next = o.next;
  } else {
    d.head = o.next;
  }
  if (o.next != kInvalidOcc) occs_[o.next].prev = o.prev;
  assert(d.count > 0);
  --d.count;
  o.alive = false;
  free_occs_.push_back(id);

  if (d.bucket >= 0) {
    if (d.count < 2) {
      PqRemove(o.digram);
    } else {
      int32_t b = BucketFor(d.count);
      if (b != d.bucket) {
        PqRemove(o.digram);
        PqInsert(o.digram);
      }
    }
  }
}

DigramId OccurrenceIndex::PopMaxDigram() {
  while (max_bucket_ >= 2 && bucket_head_[max_bucket_] == kInvalidDigram) {
    --max_bucket_;
  }
  if (max_bucket_ < 2) return kInvalidDigram;

  DigramId best = bucket_head_[max_bucket_];
  if (max_bucket_ == bucket_cap_) {
    // Top bucket mixes counts >= cap: scan the chain for the maximum.
    for (DigramId cur = best; cur != kInvalidDigram;
         cur = digrams_[cur].pq_next) {
      if (digrams_[cur].count > digrams_[best].count) best = cur;
    }
  }
  PqRemove(best);
  return best;
}

}  // namespace grepair
