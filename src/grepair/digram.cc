#include "src/grepair/digram.h"

#include <cassert>

#include "src/util/hashing.h"

namespace grepair {

namespace {

// Mask of edge1 positions that are shared with edge0.
uint64_t SharedMask1(const DigramShape& s) {
  uint64_t mask = 0;
  for (uint16_t packed : s.shared) {
    mask |= 1ull << (packed & 0xFF);
  }
  return mask;
}

}  // namespace

bool DigramShape::operator<(const DigramShape& o) const {
  if (label0 != o.label0) return label0 < o.label0;
  if (label1 != o.label1) return label1 < o.label1;
  if (rank0 != o.rank0) return rank0 < o.rank0;
  if (rank1 != o.rank1) return rank1 < o.rank1;
  if (ext0 != o.ext0) return ext0 < o.ext0;
  if (ext1 != o.ext1) return ext1 < o.ext1;
  return shared < o.shared;
}

int DigramShape::NumExternal() const {
  uint64_t shared1 = SharedMask1(*this);
  int count = 0;
  for (int i = 0; i < rank0; ++i) {
    if ((ext0 >> i) & 1) ++count;
  }
  for (int j = 0; j < rank1; ++j) {
    if ((shared1 >> j) & 1) continue;  // counted via edge0
    if ((ext1 >> j) & 1) ++count;
  }
  return count;
}

size_t DigramShapeHash::operator()(const DigramShape& s) const {
  uint64_t h = HashCombine(s.label0, s.label1);
  h = HashCombine(h, (static_cast<uint64_t>(s.rank0) << 8) | s.rank1);
  h = HashCombine(h, s.ext0);
  h = HashCombine(h, s.ext1);
  for (uint16_t p : s.shared) h = HashCombine(h, p);
  return static_cast<size_t>(h);
}

// Pre-canonical enumeration: edge0 attachments get pre-ids equal to
// their positions; edge1's unshared attachments follow in position
// order. `visit(pre_id, edge_index, position, external)` is called in
// ascending pre-id order.
template <typename Visitor>
static void VisitPreCanonicalNodes(const DigramShape& s, Visitor visit) {
  for (int i = 0; i < s.rank0; ++i) {
    visit(i, 0, i, ((s.ext0 >> i) & 1) != 0);
  }
  uint64_t shared1 = SharedMask1(s);
  int next = s.rank0;
  for (int j = 0; j < s.rank1; ++j) {
    if ((shared1 >> j) & 1) continue;
    visit(next++, 1, j, ((s.ext1 >> j) & 1) != 0);
  }
}

Hypergraph BuildDigramRhs(const DigramShape& shape) {
  const int num_nodes = shape.NumNodes();
  const int num_ext = shape.NumExternal();

  // canon[pre_id]: externals get 0..k-1, internals k.. (ascending pre-id
  // within each class), matching the canonical-form invariant.
  std::vector<NodeId> canon(num_nodes);
  {
    int next_ext = 0, next_int = num_ext;
    VisitPreCanonicalNodes(shape, [&](int pre, int, int, bool external) {
      canon[pre] = external ? next_ext++ : next_int++;
    });
  }

  // Edge attachments in canonical ids. edge0 positions are their own
  // pre-ids; edge1 positions resolve through the shared map.
  std::vector<NodeId> att0(shape.rank0), att1(shape.rank1, kInvalidNode);
  for (int i = 0; i < shape.rank0; ++i) att0[i] = canon[i];
  for (uint16_t packed : shape.shared) {
    att1[packed & 0xFF] = canon[packed >> 8];
  }
  VisitPreCanonicalNodes(shape, [&](int pre, int edge, int pos, bool) {
    if (edge == 1) att1[pos] = canon[pre];
  });

  Hypergraph rhs(static_cast<uint32_t>(num_nodes));
  rhs.AddEdge(shape.label0, std::move(att0));
  rhs.AddEdge(shape.label1, std::move(att1));
  std::vector<NodeId> ext(num_ext);
  for (int i = 0; i < num_ext; ++i) ext[i] = static_cast<NodeId>(i);
  rhs.SetExternal(std::move(ext));
  return rhs;
}

void MapOccurrenceNodes(const DigramShape& shape,
                        const std::vector<NodeId>& att0,
                        const std::vector<NodeId>& att1,
                        std::vector<NodeId>* attachment_nodes,
                        std::vector<NodeId>* removal_nodes) {
  attachment_nodes->clear();
  removal_nodes->clear();
  VisitPreCanonicalNodes(shape, [&](int, int edge, int pos, bool external) {
    NodeId v = edge == 0 ? att0[pos] : att1[pos];
    if (external) {
      attachment_nodes->push_back(v);
    } else {
      removal_nodes->push_back(v);
    }
  });
}

}  // namespace grepair
