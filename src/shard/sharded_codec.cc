#include "src/shard/sharded_codec.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <limits>
#include <set>
#include <thread>
#include <tuple>
#include <unordered_set>

#include "src/api/codec_registry.h"
#include "src/shard/parallel_compressor.h"
#include "src/shard/partitioner.h"
#include "src/util/arena.h"
#include "src/util/byte_io.h"
#include "src/util/elias.h"
#include "src/util/hashing.h"
#include "src/util/io_engine.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace grepair {
namespace shard {

const char kShardContainerMagic[8] = {'G', 'R', 'S', 'H', 'A', 'R', 'D',
                                      '1'};
const char kShardContainerMagicV2[8] = {'G', 'R', 'S', 'H', 'A', 'R', 'D',
                                        '2'};

namespace {

// Data shards + the cut shard.
constexpr size_t kMaxShardCount = static_cast<size_t>(kMaxShards) + 1;

// v2 trailer: u64 directory offset + u64 directory length + u64
// directory checksum.
constexpr size_t kV2TrailerBytes = 24;

// Appends the sorted node map as Elias-delta gaps (ids shifted by one,
// gaps strictly positive), byte-aligned so payloads stay addressable.
void EncodeNodeMap(const std::vector<NodeId>& nodes,
                   std::vector<uint8_t>* out) {
  BitWriter w;
  uint64_t prev = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    uint64_t shifted = static_cast<uint64_t>(nodes[i]) + 1;
    EliasDeltaEncode(i == 0 ? shifted : shifted - prev, &w);
    prev = shifted;
  }
  w.AlignToByte();
  auto bytes = w.TakeBytes();
  out->insert(out->end(), bytes.begin(), bytes.end());
}

// Decodes a node map off the cursor's remaining window, advancing it
// past the (data-dependent, byte-aligned) consumed length.
Status DecodeNodeMap(ByteSource* src, uint64_t count, uint64_t num_nodes,
                     std::vector<NodeId>* nodes) {
  if (count > num_nodes) {
    return Status::Corruption("shard node map larger than graph");
  }
  ByteSpan in = src->PeekRemaining();
  // num_nodes is itself untrusted (isolated nodes are free, so it
  // cannot be bounded by input size) — bound the allocation-driving
  // count by the remaining input instead: every map entry costs at
  // least one bit.
  if (count > in.size * 8) {
    return Status::Corruption("shard node map exceeds input size");
  }
  BitReader r(in.data, in.size * 8);
  nodes->clear();
  // Capped reserve: sizing 4 bytes per claimed 1-bit entry up front
  // would hand crafted input a 32x allocation amplifier before any
  // gap is validated. Growth past the cap is pay-as-you-decode —
  // memory stays proportional to input actually consumed (the
  // residual is ordinary decompression-bomb density, not a free
  // allocation).
  nodes->reserve(static_cast<size_t>(std::min<uint64_t>(count, 1u << 16)));
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t gap = 0;
    Status decoded = EliasDeltaDecode(&r, &gap);
    if (!decoded.ok()) {
      // Normalize the bit reader's kOutOfRange exhaustion: to callers
      // (including remote clients parsing a served directory) a map
      // that ends early is corrupt input, full stop.
      return Status::Corruption("shard node map truncated at entry " +
                                std::to_string(i) + ": " +
                                decoded.message());
    }
    // Checked as `gap > limit`, not `prev + gap > num_nodes`: a gap
    // near 2^64 would wrap the sum back into range and smuggle in an
    // unsorted map that LocalId's binary search cannot query.
    if (gap > num_nodes - prev) {
      return Status::Corruption("shard node map id out of range");
    }
    uint64_t shifted = prev + gap;  // >= 1: Elias codes are >= 1
    nodes->push_back(static_cast<NodeId>(shifted - 1));
    prev = shifted;
  }
  return src->Skip((r.position() + 7) / 8);
}

// Binary search of a global id in a shard's sorted map; kInvalidNode
// when absent.
NodeId LocalId(const std::vector<NodeId>& nodes, uint64_t global) {
  auto it = std::lower_bound(nodes.begin(), nodes.end(),
                             static_cast<NodeId>(global));
  if (it == nodes.end() || *it != static_cast<NodeId>(global)) {
    return kInvalidNode;
  }
  return static_cast<NodeId>(it - nodes.begin());
}

// Cheap pre-filter before the binary search: shard maps are sorted, so
// most shards are rejected by two comparisons instead of a full
// lower_bound (edge-range partitions make the ranges disjoint; the
// query routing loop runs this once per shard per node).
bool ShardMayContain(const std::vector<NodeId>& nodes, uint64_t global) {
  return !nodes.empty() && global >= nodes.front() &&
         global <= nodes.back();
}

// Version dispatch: the first 7 magic bytes select the family, the
// eighth selects the parser.
Result<int> ContainerVersion(ByteSpan bytes) {
  if (bytes.size < 8 ||
      std::memcmp(bytes.data, kShardContainerMagic, 7) != 0) {
    return Status::Corruption("bad sharded container magic");
  }
  if (bytes[7] == kShardContainerMagic[7]) return 1;
  if (bytes[7] == kShardContainerMagicV2[7]) return 2;
  return Status::Corruption(
      "unsupported sharded container version (expected '1' or '2')");
}

// The inner name is untrusted: a nested "sharded:*" inner would
// recurse through this parser once per container level, and a crafted
// deeply-nested file becomes a stack overflow instead of a Status.
// Compression never produces nested containers (the registry refuses
// sharded-of-sharded), so reject them up front.
Status RejectNestedInner(const std::string& inner_name) {
  if (inner_name.rfind("sharded:", 0) == 0) {
    return Status::Corruption("nested sharded containers are not supported");
  }
  return Status::OK();
}

}  // namespace

// A shard's decoded adjacency. Built from the inner rep's Decompress
// once, then shared read-only by every query that touches the shard:
// Out(local) / In(local) are this shard's sorted, deduplicated
// global-id neighbor contributions for the node at local index.
//
// Storage is a CSR layout (offsets + one flat id array per direction)
// carved out of a single arena block sized by a counting pass, so a
// shard fault does one allocation instead of one per node per
// direction. The spans point into the arena and share its lifetime.
struct ShardedRep::ShardNeighborhoods {
  struct Span {
    const uint64_t* data = nullptr;
    size_t size = 0;
    const uint64_t* begin() const { return data; }
    const uint64_t* end() const { return data + size; }
  };

  Span Out(size_t local) const {
    return {out_data + out_off[local],
            static_cast<size_t>(out_off[local + 1] - out_off[local])};
  }
  Span In(size_t local) const {
    return {in_data + in_off[local],
            static_cast<size_t>(in_off[local + 1] - in_off[local])};
  }

  Arena arena;
  const uint64_t* out_off = nullptr;  // n + 1 entries
  const uint64_t* in_off = nullptr;   // n + 1 entries
  uint64_t* out_data = nullptr;
  uint64_t* in_data = nullptr;
  size_t bytes = 0;

  explicit ShardNeighborhoods(size_t reserve_bytes)
      : arena(reserve_bytes) {}
};

namespace {

// Single-query misses a shard accumulates before it is promoted into
// the cache (one decode amortized over this many grammar walks); a
// batch putting at least this many queries on a shard decodes it
// immediately.
constexpr uint32_t kDecodeAfterMisses = 8;
constexpr size_t kBatchDecodeThreshold = 2;

// Miss-credit sentinel for a shard whose decoded form did not fit the
// budget: never try decoding it again (until the budget changes), or
// every 8th query would pay a whole-shard decode just to discard it.
constexpr uint32_t kUncacheable = ~0u;

// Decodes shard `entry` via `rep` into its neighborhood form; null on
// any decode/consistency failure (callers fall back to per-node
// routing, which surfaces the error through the normal query path).
// Sorts and deduplicates each CSR row of (off, data) in place,
// compacting rows forward and rewriting the offsets to the shrunken
// rows. `n` is the row count.
void SortDedupCompact(uint64_t* off, uint64_t* data, size_t n) {
  uint64_t write = 0;
  for (size_t u = 0; u < n; ++u) {
    uint64_t* row = data + off[u];
    uint64_t* row_end = data + off[u + 1];
    std::sort(row, row_end);
    uint64_t* uniq_end = std::unique(row, row_end);
    uint64_t row_start = write;
    // write <= off[u], so the forward copy never overtakes the source.
    for (uint64_t* p = row; p != uniq_end; ++p) data[write++] = *p;
    off[u] = row_start;
  }
  off[n] = write;
}

std::shared_ptr<const ShardedRep::ShardNeighborhoods> DecodeNeighborhoods(
    const ShardedRep::Entry& entry, const api::CompressedRep& rep) {
  auto local = rep.Decompress();
  if (!local.ok()) return nullptr;
  size_t n = entry.nodes.size();
  if (local.value().num_nodes() != n) return nullptr;

  // Counting pass: per-node degrees (and validation), so the arena can
  // be sized exactly and the whole decoded form costs one allocation.
  std::vector<uint64_t> out_deg(n + 1, 0), in_deg(n + 1, 0);
  size_t total = 0;
  for (const HEdge& e : local.value().edges()) {
    if (e.att.size() != 2) continue;  // hyperedges carry no direction
    NodeId u = e.att[0], v = e.att[1];
    if (u >= n || v >= n) return nullptr;
    ++out_deg[u + 1];
    ++in_deg[v + 1];
    ++total;
  }

  const size_t reserve =
      (2 * (n + 1) + 2 * total) * sizeof(uint64_t) + alignof(uint64_t);
  auto sn = std::make_shared<ShardedRep::ShardNeighborhoods>(reserve);
  uint64_t* out_off = sn->arena.AllocateArray<uint64_t>(n + 1);
  uint64_t* in_off = sn->arena.AllocateArray<uint64_t>(n + 1);
  sn->out_data = sn->arena.AllocateArray<uint64_t>(total);
  sn->in_data = sn->arena.AllocateArray<uint64_t>(total);
  for (size_t u = 0; u < n; ++u) {
    out_off[u + 1] = out_off[u] + out_deg[u + 1];
    in_off[u + 1] = in_off[u] + in_deg[u + 1];
  }

  // Fill pass: reuse the degree arrays as write cursors.
  std::copy(out_off, out_off + n, out_deg.begin());
  std::copy(in_off, in_off + n, in_deg.begin());
  for (const HEdge& e : local.value().edges()) {
    if (e.att.size() != 2) continue;
    NodeId u = e.att[0], v = e.att[1];
    sn->out_data[out_deg[u]++] = entry.nodes[v];
    sn->in_data[in_deg[v]++] = entry.nodes[u];
  }

  SortDedupCompact(out_off, sn->out_data, n);
  SortDedupCompact(in_off, sn->in_data, n);
  sn->out_off = out_off;
  sn->in_off = in_off;
  sn->bytes = sn->arena.bytes_reserved();
  return sn;
}

}  // namespace

// ---------------------------------------------------------------------------
// Prefetch pool

// Fixed worker pool draining a shard-index queue: each worker faults
// one shard's inner rep at a time so foreground queries find it
// resident. Lifetime: owned by the rep (declared last, so destroyed —
// and joined — before any state the workers touch).
class ShardedRep::Prefetcher {
 public:
  Prefetcher(const ShardedRep* rep, int threads) : rep_(rep) {
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { Worker(); });
    }
  }

  ~Prefetcher() {
    {
      MutexLock lock(mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    for (auto& t : workers_) t.join();
  }

  void Enqueue(const std::vector<size_t>& shards)
      GREPAIR_LOCKS_EXCLUDED(mu_) {
    {
      MutexLock lock(mu_);
      for (size_t s : shards) {
        queue_.push_back(s);
        ++pending_;
      }
    }
    cv_.NotifyAll();
  }

  void WaitIdle() GREPAIR_LOCKS_EXCLUDED(mu_) {
    MutexLock lock(mu_);
    while (pending_ != 0 && !stop_) idle_cv_.Wait(lock);
  }

 private:
  void Worker() GREPAIR_LOCKS_EXCLUDED(mu_) {
    MutexLock lock(mu_);
    while (true) {
      while (!stop_ && queue_.empty()) cv_.Wait(lock);
      if (stop_) break;
      size_t shard = queue_.front();
      queue_.pop_front();
      // The fault itself runs unlocked so workers fault in parallel;
      // the scoped lock is released and re-acquired around it with
      // the analysis tracking the gap.
      lock.Unlock();
      rep_->PrefetchOne(shard);
      lock.Lock();
      if (--pending_ == 0) idle_cv_.NotifyAll();
    }
    // Wake any WaitIdle caller racing a shutdown (queued work is
    // dropped; nobody can observe the rep after destruction anyway).
    idle_cv_.NotifyAll();
  }

  const ShardedRep* rep_;
  Mutex mu_;
  CondVar cv_;
  CondVar idle_cv_;
  std::deque<size_t> queue_ GREPAIR_GUARDED_BY(mu_);
  size_t pending_ GREPAIR_GUARDED_BY(mu_) = 0;
  bool stop_ GREPAIR_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

// ---------------------------------------------------------------------------
// ShardedRep

ShardedRep::ShardedRep(std::string inner_name, uint32_t inner_capabilities,
                       uint64_t num_nodes, std::vector<Entry> entries)
    : inner_name_(std::move(inner_name)),
      inner_capabilities_(inner_capabilities),
      num_nodes_(num_nodes),
      entries_(std::move(entries)),
      lazy_slots_(entries_.size()),
      lazy_published_(
          new std::atomic<const api::CompressedRep*>[entries_.size() == 0
                                                         ? 1
                                                         : entries_.size()]),
      fault_mutexes_(new Mutex[entries_.size() == 0 ? 1
                                                         : entries_.size()]),
      cache_slots_(entries_.size()),
      cache_last_use_(entries_.size(), 0),
      cache_miss_credit_(entries_.size(), 0) {
  size_t slots = entries_.size() == 0 ? 1 : entries_.size();
  for (size_t i = 0; i < slots; ++i) {
    lazy_published_[i].store(nullptr, std::memory_order_relaxed);
  }
  folded_published_.reset(new std::atomic<const FoldedShard*>[slots]);
  for (size_t i = 0; i < slots; ++i) {
    folded_published_[i].store(nullptr, std::memory_order_relaxed);
  }
  total_nodes_.store(num_nodes_, std::memory_order_relaxed);
}

ShardedRep::~ShardedRep() = default;

void ShardedRep::set_decompress_threads(int threads) {
  decompress_threads_ = std::max(1, std::min(threads, 256));
}

void ShardedRep::set_query_threads(int threads) {
  query_threads_.store(std::max(1, std::min(threads, 256)),
                       std::memory_order_relaxed);
}

void ShardedRep::set_prefetch_threads(int threads) {
  MutexLock lock(prefetch_mutex_);
  prefetcher_.reset();  // join the old pool before any resize
  if (threads > 0) {
    prefetcher_ = std::make_unique<Prefetcher>(this, std::min(threads, 64));
  }
}

void ShardedRep::Prefetch(const std::vector<size_t>& shards) const {
  std::vector<size_t> valid;
  valid.reserve(shards.size());
  for (size_t s : shards) {
    if (s < entries_.size()) valid.push_back(s);
  }
  if (valid.empty()) return;
  // Batched byte warm-up ahead of the per-shard faults: sources with
  // a local backing file submit every cold payload read in one
  // io_uring round (page cache warm), so the workers' deserializers
  // hit resident bytes instead of issuing N independent blocking
  // reads. No-op on sources without a batched path.
  if (source_ != nullptr) {
    std::vector<size_t> cold;
    cold.reserve(valid.size());
    for (size_t s : valid) {
      if (!ShardResident(s)) cold.push_back(s);
    }
    if (!cold.empty()) {
      uint64_t batches = source_->WarmShards(cold);
      if (batches > 0) {
        stat_uring_batches_.fetch_add(batches, std::memory_order_relaxed);
      }
    }
  }
  {
    MutexLock lock(prefetch_mutex_);
    if (prefetcher_ != nullptr) {
      prefetcher_->Enqueue(valid);
      return;
    }
  }
  // No pool: warm synchronously so the call still means "make these
  // resident".
  for (size_t s : valid) PrefetchOne(s);
}

void ShardedRep::PrefetchAll() const {
  std::vector<size_t> all;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].has_payload()) all.push_back(i);
  }
  Prefetch(all);
}

void ShardedRep::WaitForPrefetch() const {
  MutexLock lock(prefetch_mutex_);
  if (prefetcher_ != nullptr) prefetcher_->WaitIdle();
}

ShardedRep::PinOutcome ShardedRep::ApplyPlacement(
    const std::vector<size_t>& ranked, uint64_t budget_bytes) const {
  PinOutcome outcome;
  // Eager reps have no source: every shard is heap-resident already,
  // a pin budget has nothing to place.
  if (source_ == nullptr) return outcome;
  MutexLock lock(pin_mutex_);
  if (pinned_flags_.size() != entries_.size()) {
    pinned_flags_.assign(entries_.size(), 0);
  }
  // Plan: walk hot-first, take every shard whose payload still fits
  // the remaining budget (greedy fill — a large lukewarm shard does
  // not block smaller hot ones behind it). Deterministic for a given
  // ranking, so repeated refreshes with an unchanged histogram are
  // no-ops.
  std::vector<uint8_t> want(entries_.size(), 0);
  uint64_t planned = 0;
  for (size_t s : ranked) {
    if (s >= entries_.size() || want[s]) continue;
    uint64_t len = entries_[s].payload_length();
    if (len == 0 || planned + len > budget_bytes) continue;
    want[s] = 1;
    planned += len;
  }
  // Unpin fallen-out shards before pinning newcomers so the transient
  // locked footprint never exceeds the budget.
  for (size_t s = 0; s < entries_.size(); ++s) {
    if (pinned_flags_[s] && !want[s]) {
      (void)source_->UnpinShard(s);
      pinned_flags_[s] = 0;
    }
  }
  for (size_t s = 0; s < entries_.size(); ++s) {
    if (!want[s]) continue;
    uint64_t covered = pinned_flags_[s] ? entries_[s].payload_length()
                                        : source_->PinShard(s);
    if (covered == 0) continue;  // source holds no local bytes (remote)
    pinned_flags_[s] = 1;
    outcome.shards_pinned += 1;
    outcome.pinned_bytes += covered;
  }
  stat_shards_pinned_.store(outcome.shards_pinned,
                            std::memory_order_relaxed);
  stat_pinned_bytes_.store(outcome.pinned_bytes, std::memory_order_relaxed);
  return outcome;
}

bool ShardedRep::ShardResident(size_t i) const {
  const Entry& entry = entries_[i];
  if (entry.rep != nullptr) return true;
  if (!entry.has_payload()) return true;  // nothing to fault
  return lazy_published_[i].load(std::memory_order_acquire) != nullptr;
}

void ShardedRep::PrefetchOne(size_t shard) const {
  if (shard >= entries_.size() || ShardResident(shard)) return;
  // Readahead hint first: on mapped sources the kernel starts paging
  // the payload in while this worker is still in the deserializer's
  // early bytes.
  if (source_ != nullptr) {
    uint64_t hinted = source_->AdviseShard(shard);
    if (hinted > 0) {
      stat_hinted_.fetch_add(hinted, std::memory_order_relaxed);
    }
  }
  bool faulted = false;
  auto rep = ShardRepFor(shard, &faulted);
  (void)rep;  // errors resurface on the foreground query that needs it
  if (faulted) stat_prefetched_.fetch_add(1, std::memory_order_relaxed);
}

Result<ByteSpan> ShardedRep::VerifiedPayload(
    size_t shard, std::vector<uint8_t>* owned) const {
  // A folded shard's bytes supersede the base container's: they were
  // produced (and hashed) locally by the fold, and stay alive for the
  // rep's lifetime.
  if (const FoldedShard* folded = FoldedFor(shard)) {
    ByteSpan payload = SpanOf(folded->payload);
    uint64_t actual = HashBytes(payload.data, payload.size);
    if (actual != folded->checksum) {
      return Status::Corruption("folded shard " + std::to_string(shard) +
                                " payload checksum mismatch");
    }
    return payload;
  }
  const Entry& entry = entries_[shard];
  ByteSpan payload = entry.payload_bytes();
  if (payload.size == 0 && entry.length > 0) {
    // Source-only shard (remote): fetch the bytes now. The span the
    // source returns either borrows its own pinned storage or points
    // into *owned.
    if (source_ == nullptr) {
      return Status::Internal("source-only shard without a source");
    }
    auto fetched = source_->FetchShard(shard, owned);
    if (!fetched.ok()) return fetched.status();
    payload = fetched.value();
    if (payload.size != entry.length) {
      return Status::Corruption(
          "shard " + std::to_string(shard) + " fetch returned " +
          std::to_string(payload.size) + " byte(s), directory says " +
          std::to_string(entry.length));
    }
  }
  // Fail closed on payload corruption before anyone parses the bytes.
  // Eager entries (checksum 0, bytes straight from Compress or the
  // already-validated v1 parse) skip the check; every directory-backed
  // entry carries the v2 checksum.
  if (entry.checksum != 0 || is_lazy()) {
    uint64_t actual = HashBytes(payload.data, payload.size);
    if (actual != entry.checksum) {
      return Status::Corruption(
          "shard " + std::to_string(shard) +
          " payload checksum mismatch (expected " + HexU64(entry.checksum) +
          ", got " + HexU64(actual) + " over " + std::to_string(payload.size) +
          " bytes)");
    }
  }
  return payload;
}

Result<const api::CompressedRep*> ShardedRep::ShardRepFor(
    size_t shard, bool* faulted) const {
  if (faulted != nullptr) *faulted = false;
  // Folded grammar first: once a fold has recompressed this shard,
  // its rep is the shard's truth (base payload + folded edits).
  if (const FoldedShard* folded = FoldedFor(shard)) {
    return static_cast<const api::CompressedRep*>(folded->rep.get());
  }
  const Entry& entry = entries_[shard];
  if (entry.rep != nullptr) {
    return static_cast<const api::CompressedRep*>(entry.rep.get());
  }
  if (!entry.has_payload()) {
    return static_cast<const api::CompressedRep*>(nullptr);  // edgeless
  }
  // Lock-free resident fast path: slots are never reset, so a
  // published pointer is valid for the rep's lifetime and hot shards
  // cost one acquire-load per touch, same as the eager entry.rep path.
  if (const api::CompressedRep* published =
          lazy_published_[shard].load(std::memory_order_acquire)) {
    return published;
  }
  if (inner_codec_ == nullptr) {
    return Status::Internal("lazy shard without an inner codec");
  }
  // Fault path: per-shard mutex so concurrent touches of one shard
  // deserialize (and, for remote sources, fetch) it exactly once
  // while other shards fault in parallel.
  MutexLock lock(fault_mutexes_[shard]);
  if (lazy_slots_[shard] != nullptr) {
    return static_cast<const api::CompressedRep*>(lazy_slots_[shard].get());
  }
  std::vector<uint8_t> fetched;
  auto payload = VerifiedPayload(shard, &fetched);
  if (!payload.ok()) return payload.status();
  auto rep = inner_codec_->DeserializeSpan(payload.value());
  if (!rep.ok()) return rep.status();
  if (rep.value()->num_nodes() != entry.nodes.size()) {
    return Status::Corruption(
        "shard " + std::to_string(shard) + " payload node count " +
        std::to_string(rep.value()->num_nodes()) +
        " does not match its node map (" +
        std::to_string(entry.nodes.size()) + ")");
  }
  stat_faults_.fetch_add(1, std::memory_order_relaxed);
  if (faulted != nullptr) *faulted = true;
  lazy_slots_[shard] = std::move(rep).ValueOrDie();
  lazy_published_[shard].store(lazy_slots_[shard].get(),
                               std::memory_order_release);
  return static_cast<const api::CompressedRep*>(lazy_slots_[shard].get());
}

// The byte budget is split between the two tiers: the node-result LRU
// gets a quarter, decoded shard neighborhoods the rest.
namespace {
size_t ResultBudget(size_t limit) { return limit / 4; }
size_t ShardBudget(size_t limit) { return limit - limit / 4; }
}  // namespace

void ShardedRep::EvictShardsLocked(size_t target) const {
  while (cache_bytes_used_ > target) {
    size_t victim = cache_slots_.size();
    uint64_t oldest = ~0ull;
    for (size_t i = 0; i < cache_slots_.size(); ++i) {
      if (cache_slots_[i] != nullptr && cache_last_use_[i] < oldest) {
        oldest = cache_last_use_[i];
        victim = i;
      }
    }
    if (victim == cache_slots_.size()) break;
    cache_bytes_used_ -= cache_slots_[victim]->bytes;
    cache_slots_[victim] = nullptr;
    stat_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardedRep::EvictResultsLocked(size_t target) const {
  while (result_bytes_used_ > target && !result_lru_.empty()) {
    uint64_t victim = result_lru_.back();
    result_lru_.pop_back();
    auto it = results_.find(victim);
    result_bytes_used_ -= it->second.bytes;
    results_.erase(it);
    stat_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardedRep::set_query_cache_bytes(size_t bytes) {
  cache_bytes_limit_.store(bytes, std::memory_order_relaxed);
  // Shrink both tiers to the new budget immediately, LRU first, and
  // let previously uncacheable shards try again under the new budget.
  MutexLock lock(cache_mutex_);
  EvictShardsLocked(ShardBudget(bytes));
  EvictResultsLocked(ResultBudget(bytes));
  std::fill(cache_miss_credit_.begin(), cache_miss_credit_.end(), 0u);
}

std::shared_ptr<const std::vector<uint64_t>> ShardedRep::LookupResult(
    uint64_t key) const {
  MutexLock lock(cache_mutex_);
  auto it = results_.find(key);
  if (it == results_.end()) return nullptr;
  result_lru_.splice(result_lru_.begin(), result_lru_, it->second.lru_it);
  return it->second.value;
}

void ShardedRep::StoreResult(
    uint64_t key,
    std::shared_ptr<const std::vector<uint64_t>> value,
    uint64_t edit_epoch) const {
  size_t bytes = value->size() * sizeof(uint64_t) + 80;  // + map overhead
  MutexLock lock(cache_mutex_);
  // Edits landed while this answer was computed: it reflects the old
  // corpus, and the memo flush that accompanied the epoch bump may
  // already have run — never let the stale answer in behind it.
  if (edit_epoch_.load(std::memory_order_relaxed) != edit_epoch) return;
  size_t budget =
      ResultBudget(cache_bytes_limit_.load(std::memory_order_relaxed));
  if (budget == 0 || bytes > budget) return;
  if (results_.count(key) > 0) return;  // racing store: first one wins
  result_lru_.push_front(key);
  results_.emplace(key,
                   ResultEntry{result_lru_.begin(), std::move(value), bytes});
  result_bytes_used_ += bytes;
  // The new entry is at the LRU front and fits the budget by itself,
  // so it can never be its own victim here.
  EvictResultsLocked(budget);
}

std::shared_ptr<const ShardedRep::ShardNeighborhoods>
ShardedRep::GetOrDecodeShard(size_t shard, size_t pending) const {
  const Entry& entry = entries_[shard];
  if (!entry.has_payload()) return nullptr;
  if (cache_bytes_limit_.load(std::memory_order_relaxed) == 0) {
    return nullptr;
  }
  {
    MutexLock lock(cache_mutex_);
    if (cache_slots_[shard] != nullptr) {
      cache_last_use_[shard] = ++cache_tick_;
      return cache_slots_[shard];
    }
    if (cache_miss_credit_[shard] == kUncacheable) return nullptr;
    cache_miss_credit_[shard] +=
        static_cast<uint32_t>(std::min<size_t>(pending, kDecodeAfterMisses));
    if (pending < kBatchDecodeThreshold &&
        cache_miss_credit_[shard] < kDecodeAfterMisses) {
      return nullptr;
    }
  }
  // Decode outside the lock: it runs inner decompression (and on lazy
  // reps may fault the shard in first) and must not serialize
  // concurrent queries on other shards. A racing decode of the same
  // shard wastes work but stays correct (first insert wins). The fold
  // epoch is captured before the rep is resolved: if a fold publishes
  // while we decode, the result below came from the pre-fold grammar
  // and must not be cached past the publish's invalidation.
  uint64_t fold_epoch = fold_epoch_.load(std::memory_order_acquire);
  auto rep = ShardRepFor(shard);
  if (!rep.ok() || rep.value() == nullptr) {
    return nullptr;  // fault errors resurface via per-node routing
  }
  auto decoded = DecodeNeighborhoods(entry, *rep.value());
  if (decoded == nullptr) return nullptr;
  stat_decodes_.fetch_add(1, std::memory_order_relaxed);

  MutexLock lock(cache_mutex_);
  if (cache_slots_[shard] != nullptr) return cache_slots_[shard];
  if (fold_epoch_.load(std::memory_order_relaxed) != fold_epoch) {
    // Usable for this call (the caller's overlay snapshot predates the
    // fold, so the pre-fold view merges correctly), but stale for any
    // query that snapshots the post-fold residual.
    return decoded;
  }
  size_t budget =
      ShardBudget(cache_bytes_limit_.load(std::memory_order_relaxed));
  // A shard that cannot fit the budget must not flush everyone else
  // on every decode: it is returned for this call, not retained,
  // nothing is evicted for it, and it is marked uncacheable so the
  // decode is not endlessly repeated and discarded.
  if (decoded->bytes > budget) {
    cache_miss_credit_[shard] = kUncacheable;
    return decoded;
  }
  cache_miss_credit_[shard] = 0;
  EvictShardsLocked(budget - decoded->bytes);
  cache_slots_[shard] = decoded;
  cache_last_use_[shard] = ++cache_tick_;
  cache_bytes_used_ += decoded->bytes;
  return decoded;
}

// Serialize rebuilds the container from the per-shard payload bytes
// each call (deterministic, so repeated calls are byte-identical)
// instead of caching a second full copy of the compressed bytes for
// the rep's lifetime; ByteSize computes the exact container size
// arithmetically without materializing anything. Both are safe to call
// concurrently on a shared rep and never fault a lazy shard — locally
// backed payload bytes are already at hand; source-only (remote)
// shards are fetched through the source, and any fetch failure yields
// an empty result (an empty buffer never parses as a container, so
// the failure stays closed).
std::vector<uint8_t> ShardedRep::Serialize() const {
  std::vector<uint8_t> out(kShardContainerMagic, kShardContainerMagic + 8);
  out.push_back(static_cast<uint8_t>(inner_name_.size()));
  out.insert(out.end(), inner_name_.begin(), inner_name_.end());
  PutU64LE(num_nodes_, &out);
  PutU32LE(static_cast<uint32_t>(entries_.size()), &out);
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    PutU64LE(entry.nodes.size(), &out);
    EncodeNodeMap(entry.nodes, &out);
    std::vector<uint8_t> fetched;
    ByteSpan payload;
    if (entry.has_payload()) {
      // The per-shard fault mutex upholds ShardSource's contract
      // (FetchShard is never called concurrently for one shard) when
      // a serialize races a query faulting the same shard.
      MutexLock shard_lock(fault_mutexes_[i]);
      auto verified = VerifiedPayload(i, &fetched);
      if (!verified.ok()) return {};
      payload = verified.value();
    }
    PutU64LE(payload.size, &out);
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

std::vector<uint8_t> ShardedRep::SerializeV2() const {
  std::vector<uint8_t> out(kShardContainerMagicV2,
                           kShardContainerMagicV2 + 8);
  // Payload blobs first, back to back, recording the directory rows.
  std::vector<ShardDirEntry> dir(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    dir[i].node_count = entries_[i].nodes.size();
    if (!entries_[i].has_payload()) continue;
    std::vector<uint8_t> fetched;
    MutexLock shard_lock(fault_mutexes_[i]);
    auto verified = VerifiedPayload(i, &fetched);
    if (!verified.ok()) return {};
    ByteSpan payload = verified.value();
    dir[i].offset = out.size();
    dir[i].length = payload.size;
    // Entries with a directory checksum were just verified against it
    // by VerifiedPayload — reuse it instead of hashing the bytes a
    // second time; only eager entries (checksum 0) compute fresh.
    // Folded shards carry their fold-time checksum (the base entry's
    // no longer matches the bytes VerifiedPayload just returned).
    const FoldedShard* folded = FoldedFor(i);
    dir[i].checksum = folded != nullptr ? folded->checksum
                      : entries_[i].checksum != 0
                          ? entries_[i].checksum
                          : HashBytes(payload.data, payload.size);
    out.insert(out.end(), payload.begin(), payload.end());
  }
  // Footer directory.
  size_t dir_off = out.size();
  out.push_back(static_cast<uint8_t>(inner_name_.size()));
  out.insert(out.end(), inner_name_.begin(), inner_name_.end());
  PutU64LE(num_nodes_, &out);
  PutU32LE(static_cast<uint32_t>(entries_.size()), &out);
  for (size_t i = 0; i < entries_.size(); ++i) {
    PutU64LE(dir[i].offset, &out);
    PutU64LE(dir[i].length, &out);
    PutU64LE(dir[i].checksum, &out);
    PutU64LE(dir[i].node_count, &out);
    std::vector<uint8_t> map;
    EncodeNodeMap(entries_[i].nodes, &map);
    PutU32LE(static_cast<uint32_t>(map.size()), &out);
    out.insert(out.end(), map.begin(), map.end());
  }
  // Trailer: directory offset + length + checksum.
  uint64_t dir_len = out.size() - dir_off;
  uint64_t dir_checksum = HashBytes(out.data() + dir_off, dir_len);
  PutU64LE(dir_off, &out);
  PutU64LE(dir_len, &out);
  PutU64LE(dir_checksum, &out);
  return out;
}

size_t ShardedRep::ByteSize() const {
  size_t size = 8 + 1 + inner_name_.size() + 8 + 4;  // container header
  for (size_t s = 0; s < entries_.size(); ++s) {
    const Entry& entry = entries_[s];
    size_t map_bits = 0;
    uint64_t prev = 0;
    for (size_t i = 0; i < entry.nodes.size(); ++i) {
      uint64_t shifted = static_cast<uint64_t>(entry.nodes[i]) + 1;
      map_bits += EliasDeltaLength(i == 0 ? shifted : shifted - prev);
      prev = shifted;
    }
    const FoldedShard* folded = FoldedFor(s);
    size += 8 + (map_bits + 7) / 8 + 8 +
            (folded != nullptr
                 ? folded->payload.size()
                 : static_cast<size_t>(entry.payload_length()));
  }
  return size;
}

Result<Hypergraph> ShardedRep::Decompress() const {
  // Holding fold_mu_ keeps the folded-shard set stable for the whole
  // walk, so the residual overlay snapshot below is exactly the set of
  // edits the shard payloads do NOT contain — a fold publishing
  // mid-walk would otherwise double-apply its adds.
  MutexLock fold_lock(fold_mu_);
  std::shared_ptr<const DeltaOverlay> overlay;
  {
    MutexLock lock(overlay_mu_);
    if (overlay_ != nullptr && !overlay_->empty()) overlay = overlay_;
  }
  size_t count = entries_.size();
  // A full decompression walks every payload front to back: tell the
  // kernel so readahead runs ahead of the workers. Restored to
  // MADV_NORMAL on every exit path so a long-lived rep's later
  // point-query faults are not stuck with sequential readahead.
  struct SequentialHint {
    ShardSource* source;
    ~SequentialHint() {
      // Best effort: a failed madvise only costs readahead tuning.
      if (source != nullptr) (void)source->AdviseNormal();
    }
  } hint{nullptr};
  if (source_ != nullptr) {
    uint64_t hinted = source_->AdviseSequential();
    if (hinted > 0) {
      stat_hinted_.fetch_add(hinted, std::memory_order_relaxed);
      hint.source = source_.get();
    }
  }
  // Sentinel status keeps Result's value-or-error contract honest for
  // slots the workers never fill (edgeless shards with no payload).
  std::vector<Result<Hypergraph>> locals(
      count, Status::Internal("shard not decompressed"));

  RunIndexedOnPool(count, decompress_threads_, [&](size_t i) {
    auto rep = ShardRepFor(i);  // faults lazy shards in parallel
    if (!rep.ok()) {
      locals[i] = rep.status();
    } else if (rep.value() != nullptr) {
      locals[i] = rep.value()->Decompress();
    }
  });

  Hypergraph global(static_cast<uint32_t>(num_nodes()));
  for (size_t i = 0; i < count; ++i) {
    const Entry& entry = entries_[i];
    if (!entry.has_payload()) continue;
    if (!locals[i].ok()) return locals[i].status();
    const Hypergraph& local = locals[i].value();
    if (local.num_nodes() != entry.nodes.size()) {
      return Status::Corruption(
          "shard " + std::to_string(i) +
          " decompressed node count does not match its node map");
    }
    for (const HEdge& edge : local.edges()) {
      std::vector<NodeId> att;
      att.reserve(edge.att.size());
      for (NodeId v : edge.att) {
        if (v >= entry.nodes.size()) {
          return Status::Corruption("shard-local node id out of range");
        }
        att.push_back(entry.nodes[v]);
      }
      global.AddEdge(edge.label, std::move(att));
    }
  }
  if (overlay != nullptr) {
    // Kills remove every base copy of their pair; adds then contribute
    // exactly the edges the base does not already hold (the logical
    // corpus is a set union, so an add that duplicates a surviving
    // base edge must not produce a second copy).
    global.RemoveEdgesIf([&](const HEdge& e) {
      return e.att.size() == 2 && overlay->IsKilled(e.att[0], e.att[1]);
    });
    const std::vector<DeltaEdge>& adds = overlay->adds();
    std::vector<uint8_t> present(adds.size(), 0);
    for (const HEdge& e : global.edges()) {
      if (e.att.size() != 2) continue;
      DeltaEdge probe{e.att[0], e.att[1], e.label};
      auto it = std::lower_bound(
          adds.begin(), adds.end(), probe,
          [](const DeltaEdge& a, const DeltaEdge& b) {
            return std::tie(a.u, a.v, a.label) < std::tie(b.u, b.v, b.label);
          });
      if (it != adds.end() && *it == probe) {
        present[static_cast<size_t>(it - adds.begin())] = 1;
      }
    }
    for (size_t k = 0; k < adds.size(); ++k) {
      if (present[k]) continue;
      global.AddSimpleEdge(adds[k].u, adds[k].v, adds[k].label);
    }
  }
  return global;
}

// Shared routing for Out/InNeighbors: first the node-result cache
// (repeat queries are one hash lookup), then per owning shard either
// the decoded-neighborhood tier (promoting hot shards after repeated
// misses) or the inner rep — faulted in on first touch for lazy reps —
// map back, merge, memoize.
Result<std::vector<uint64_t>> ShardedRep::RoutedNeighbors(uint64_t node,
                                                          bool out) const {
  if (!(inner_capabilities_ & api::kNeighborQueries)) {
    return Status::Unimplemented("inner codec '" + inner_name_ +
                                 "' does not answer neighbor queries");
  }
  GREPAIR_RETURN_IF_ERROR(api::CheckNodeId(node, num_nodes()));
  uint64_t result_key = node * 2 + (out ? 1 : 0);
  if (auto memoized = LookupResult(result_key)) {
    stat_hits_.fetch_add(1, std::memory_order_relaxed);
    return *memoized;
  }
  // Reader protocol (see PublishFolds): the edit epoch is read before
  // the overlay, the overlay before any shard state. A fold that
  // publishes after the snapshot only makes shard views newer, and
  // re-applying the snapshot's edits over a folded view is idempotent.
  uint64_t edit_epoch = edit_epoch_.load(std::memory_order_acquire);
  std::shared_ptr<const DeltaOverlay> overlay;
  if (has_overlay_.load(std::memory_order_acquire)) {
    overlay = overlay_snapshot();
  }
  std::vector<uint64_t> all;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    if (!entry.has_payload()) continue;
    if (!ShardMayContain(entry.nodes, node)) continue;
    NodeId local = LocalId(entry.nodes, node);
    if (local == kInvalidNode) continue;
    auto cached = GetOrDecodeShard(i, 1);
    if (cached != nullptr) {
      stat_hits_.fetch_add(1, std::memory_order_relaxed);
      const auto list = out ? cached->Out(local) : cached->In(local);
      all.insert(all.end(), list.begin(), list.end());
      continue;
    }
    stat_misses_.fetch_add(1, std::memory_order_relaxed);
    auto rep = ShardRepFor(i);
    if (!rep.ok()) return rep.status();
    auto part = out ? rep.value()->OutNeighbors(local)
                    : rep.value()->InNeighbors(local);
    if (!part.ok()) return part.status();
    for (uint64_t u : part.value()) {
      if (u >= entry.nodes.size()) {
        return Status::Corruption("shard neighbor id out of range");
      }
      all.push_back(entry.nodes[u]);
    }
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  if (overlay != nullptr &&
      (out ? overlay->TouchesOut(node) : overlay->TouchesIn(node))) {
    all = out ? overlay->MergeOut(node, std::move(all))
              : overlay->MergeIn(node, std::move(all));
    stat_overlay_merges_.fetch_add(1, std::memory_order_relaxed);
  }
  auto value = std::make_shared<std::vector<uint64_t>>(std::move(all));
  StoreResult(result_key, value, edit_epoch);
  return *value;
}

Result<std::vector<uint64_t>> ShardedRep::OutNeighbors(uint64_t node) const {
  stat_singles_.fetch_add(1, std::memory_order_relaxed);
  return RoutedNeighbors(node, /*out=*/true);
}

Result<std::vector<uint64_t>> ShardedRep::InNeighbors(uint64_t node) const {
  stat_singles_.fetch_add(1, std::memory_order_relaxed);
  return RoutedNeighbors(node, /*out=*/false);
}

Result<bool> ShardedRep::ReachableImpl(uint64_t from, uint64_t to) const {
  if (!(inner_capabilities_ & api::kNeighborQueries)) {
    return Status::Unimplemented(
        "sharded reachability needs an inner codec with neighbor queries");
  }
  GREPAIR_RETURN_IF_ERROR(api::CheckNodeId(from, num_nodes()));
  GREPAIR_RETURN_IF_ERROR(api::CheckNodeId(to, num_nodes()));
  if (from == to) return true;
  // Cross-shard BFS over routed neighbor queries. The visited set is
  // sized by what the search touches, not by the container's
  // (untrusted, possibly huge) num_nodes header — a |V|-sized bitmap
  // would let a 40-byte crafted container allocate 512 MiB per query.
  std::unordered_set<uint64_t> visited{from};
  std::deque<uint64_t> frontier{from};
  while (!frontier.empty()) {
    uint64_t v = frontier.front();
    frontier.pop_front();
    auto out = RoutedNeighbors(v, /*out=*/true);
    if (!out.ok()) return out.status();
    for (uint64_t u : out.value()) {
      if (u == to) return true;
      if (visited.insert(u).second) frontier.push_back(u);
    }
  }
  return false;
}

Result<bool> ShardedRep::Reachable(uint64_t from, uint64_t to) const {
  stat_singles_.fetch_add(1, std::memory_order_relaxed);
  return ReachableImpl(from, to);
}

Result<std::vector<std::vector<uint64_t>>> ShardedRep::OutNeighborsBatch(
    const std::vector<uint64_t>& nodes) const {
  if (!(inner_capabilities_ & api::kNeighborQueries)) {
    return Status::Unimplemented("inner codec '" + inner_name_ +
                                 "' does not answer neighbor queries");
  }
  for (uint64_t node : nodes) {
    GREPAIR_RETURN_IF_ERROR(api::CheckNodeId(node, num_nodes()));
  }
  stat_batch_calls_.fetch_add(1, std::memory_order_relaxed);
  stat_batch_items_.fetch_add(nodes.size(), std::memory_order_relaxed);

  // Overlay snapshot before any shard state (reader protocol; see
  // RoutedNeighbors). The batch path never memoizes, so no edit epoch
  // is needed here.
  std::shared_ptr<const DeltaOverlay> overlay;
  if (has_overlay_.load(std::memory_order_acquire)) {
    overlay = overlay_snapshot();
  }

  // Answer each distinct node once; real batch workloads repeat hot
  // nodes, and duplicates are expanded from the unique answers at the
  // end.
  std::vector<uint64_t> uniq(nodes);
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());

  size_t shard_count = entries_.size();
  // Group the unique nodes by owning shard: (unique index, local id)
  // per shard. Vertex-cut shards may share nodes, so one node can
  // appear in several groups.
  std::vector<std::vector<std::pair<size_t, NodeId>>> groups(shard_count);
  std::vector<uint32_t> owner_count(uniq.size(), 0);
  for (size_t u = 0; u < uniq.size(); ++u) {
    for (size_t i = 0; i < shard_count; ++i) {
      if (!entries_[i].has_payload()) continue;
      if (!ShardMayContain(entries_[i].nodes, uniq[u])) continue;
      NodeId local = LocalId(entries_[i].nodes, uniq[u]);
      if (local != kInvalidNode) {
        groups[i].emplace_back(u, local);
        ++owner_count[u];
      }
    }
  }

  // Hand the batch's un-faulted shards to the prefetch pool (when one
  // is running) so they warm while earlier shards are queried; the
  // per-shard fault mutex makes the handoff race-free, and workers
  // that lose the race simply find the shard resident.
  if (is_lazy()) {
    std::vector<size_t> cold;
    for (size_t i = 0; i < shard_count; ++i) {
      if (!groups[i].empty() && !ShardResident(i)) cold.push_back(i);
    }
    if (!cold.empty()) {
      MutexLock lock(prefetch_mutex_);
      if (prefetcher_ != nullptr) prefetcher_->Enqueue(cold);
    }
  }

  // Per-shard answers, filled by the pool workers into per-shard
  // slots and merged single-threaded afterwards, so the result is
  // byte-identical for every thread count. For shards served from the
  // decoded-neighborhood cache the worker only records the cache
  // handle; the merge reads the lists in place.
  std::vector<std::vector<std::vector<uint64_t>>> partial(shard_count);
  std::vector<std::shared_ptr<const ShardNeighborhoods>> used_cache(
      shard_count);
  std::vector<Status> shard_status(shard_count, Status::OK());
  RunIndexedOnPool(shard_count,
                   query_threads_.load(std::memory_order_relaxed),
                   [&](size_t i) {
    if (groups[i].empty()) return;
    const Entry& entry = entries_[i];
    used_cache[i] = GetOrDecodeShard(i, groups[i].size());
    if (used_cache[i] != nullptr) {
      stat_hits_.fetch_add(groups[i].size(), std::memory_order_relaxed);
      return;
    }
    stat_misses_.fetch_add(groups[i].size(), std::memory_order_relaxed);
    auto rep = ShardRepFor(i);
    if (!rep.ok()) {
      shard_status[i] = rep.status();
      return;
    }
    partial[i].resize(groups[i].size());
    for (size_t k = 0; k < groups[i].size(); ++k) {
      auto part = rep.value()->OutNeighbors(groups[i][k].second);
      if (!part.ok()) {
        shard_status[i] = part.status();
        return;
      }
      for (uint64_t u : part.value()) {
        if (u >= entry.nodes.size()) {
          shard_status[i] =
              Status::Corruption("shard neighbor id out of range");
          return;
        }
        // entry.nodes is increasing, so the mapped list stays sorted
        // and deduplicated — single-owner answers need no re-sort.
        partial[i][k].push_back(entry.nodes[u]);
      }
    }
  });
  for (size_t i = 0; i < shard_count; ++i) {
    if (!shard_status[i].ok()) return shard_status[i];
  }

  // Merge the per-shard contributions per unique node (shards in
  // fixed order). Single-owner nodes copy their already-sorted list;
  // only genuinely cut nodes pay a sort + dedup.
  std::vector<std::vector<uint64_t>> uniq_results(uniq.size());
  for (size_t i = 0; i < shard_count; ++i) {
    for (size_t k = 0; k < groups[i].size(); ++k) {
      size_t u = groups[i][k].first;
      const uint64_t* list_begin;
      const uint64_t* list_end;
      if (used_cache[i] != nullptr) {
        const auto span = used_cache[i]->Out(groups[i][k].second);
        list_begin = span.begin();
        list_end = span.end();
      } else {
        list_begin = partial[i][k].data();
        list_end = list_begin + partial[i][k].size();
      }
      auto& dest = uniq_results[u];
      dest.insert(dest.end(), list_begin, list_end);
    }
  }
  for (size_t u = 0; u < uniq.size(); ++u) {
    if (owner_count[u] > 1) {
      auto& list = uniq_results[u];
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
    }
    if (overlay != nullptr && overlay->TouchesOut(uniq[u])) {
      uniq_results[u] =
          overlay->MergeOut(uniq[u], std::move(uniq_results[u]));
      stat_overlay_merges_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::vector<std::vector<uint64_t>> results(nodes.size());
  for (size_t j = 0; j < nodes.size(); ++j) {
    size_t u = static_cast<size_t>(
        std::lower_bound(uniq.begin(), uniq.end(), nodes[j]) -
        uniq.begin());
    results[j] = uniq_results[u];
  }
  return results;
}

Result<std::vector<uint8_t>> ShardedRep::ReachableBatch(
    const std::vector<std::pair<uint64_t, uint64_t>>& pairs) const {
  if (!(inner_capabilities_ & api::kNeighborQueries)) {
    return Status::Unimplemented(
        "sharded reachability needs an inner codec with neighbor queries");
  }
  for (const auto& [from, to] : pairs) {
    GREPAIR_RETURN_IF_ERROR(api::CheckNodeId(from, num_nodes()));
    GREPAIR_RETURN_IF_ERROR(api::CheckNodeId(to, num_nodes()));
  }
  stat_batch_calls_.fetch_add(1, std::memory_order_relaxed);
  stat_batch_items_.fetch_add(pairs.size(), std::memory_order_relaxed);

  std::vector<uint8_t> results(pairs.size(), 0);
  std::vector<Status> pair_status(pairs.size(), Status::OK());
  RunIndexedOnPool(pairs.size(),
                   query_threads_.load(std::memory_order_relaxed),
                   [&](size_t k) {
    auto r = ReachableImpl(pairs[k].first, pairs[k].second);
    if (!r.ok()) {
      pair_status[k] = r.status();
      return;
    }
    results[k] = r.value() ? 1 : 0;
  });
  for (size_t k = 0; k < pairs.size(); ++k) {
    if (!pair_status[k].ok()) return pair_status[k];
  }
  return results;
}

api::QueryStats ShardedRep::query_stats() const {
  api::QueryStats stats;
  stats.single_queries = stat_singles_.load(std::memory_order_relaxed);
  stats.batch_calls = stat_batch_calls_.load(std::memory_order_relaxed);
  stats.batch_items = stat_batch_items_.load(std::memory_order_relaxed);
  stats.cache_hits = stat_hits_.load(std::memory_order_relaxed);
  stats.cache_misses = stat_misses_.load(std::memory_order_relaxed);
  stats.shard_decodes = stat_decodes_.load(std::memory_order_relaxed);
  stats.cache_evictions = stat_evictions_.load(std::memory_order_relaxed);
  stats.shard_faults = stat_faults_.load(std::memory_order_relaxed);
  stats.shards_prefetched =
      stat_prefetched_.load(std::memory_order_relaxed);
  stats.bytes_hinted = stat_hinted_.load(std::memory_order_relaxed);
  stats.uring_batches = stat_uring_batches_.load(std::memory_order_relaxed);
  stats.shards_pinned = stat_shards_pinned_.load(std::memory_order_relaxed);
  stats.pinned_bytes = stat_pinned_bytes_.load(std::memory_order_relaxed);
  // Network/pool/tier counters live with the source stack: the rep
  // cannot tell an SSD-warm hit from a WAN fetch, but the sources can.
  if (source_ != nullptr) source_->AddStats(&stats);
  stats.overlay_merges =
      stat_overlay_merges_.load(std::memory_order_relaxed);
  stats.shard_folds = stat_shard_folds_.load(std::memory_order_relaxed);
  stats.folded_edits = stat_folded_edits_.load(std::memory_order_relaxed);
  {
    MutexLock lock(overlay_mu_);
    if (overlay_ != nullptr) stats.overlay_edits = overlay_->edit_count();
  }
  {
    MutexLock lock(cache_mutex_);
    stats.cache_bytes_used = cache_bytes_used_ + result_bytes_used_;
  }
  // Aggregate the inner reps' memo-table counters (grepair inners
  // build grammar memo tables of their own). Only resident reps are
  // consulted — stats must never fault a shard in.
  for (size_t i = 0; i < entries_.size(); ++i) {
    const api::CompressedRep* rep = entries_[i].rep.get();
    if (const FoldedShard* folded = FoldedFor(i)) rep = folded->rep.get();
    if (rep == nullptr) {
      rep = lazy_published_[i].load(std::memory_order_acquire);
    }
    if (rep == nullptr) continue;
    api::QueryStats inner = rep->query_stats();
    stats.memo_entries += inner.memo_entries;
    stats.memo_hits += inner.memo_hits;
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Mutable corpus: overlay edits, folds, GRSHARD3 deltas

std::shared_ptr<const DeltaOverlay> ShardedRep::overlay_snapshot() const {
  {
    MutexLock lock(overlay_mu_);
    if (overlay_ != nullptr) return overlay_;
  }
  // Clean rep: hand out a shared empty snapshot so callers never
  // branch on null.
  static const std::shared_ptr<const DeltaOverlay>* kEmpty =
      new std::shared_ptr<const DeltaOverlay>(
          DeltaOverlay::Apply(nullptr, {}).ValueOrDie());
  return *kEmpty;
}

Status ShardedRep::ApplyEdits(const std::vector<EdgeEdit>& edits) {
  if (edits.empty()) return Status::OK();
  // fold_mu_ keeps the overlay stable against a concurrent fold's
  // publish (the fold planner snapshots the overlay and swaps in its
  // residual; an edit landing in between would be lost).
  MutexLock fold_lock(fold_mu_);
  uint64_t overlay_bytes = 0;
  {
    MutexLock lock(overlay_mu_);
    auto next = DeltaOverlay::Apply(overlay_.get(), edits);
    if (!next.ok()) return next.status();
    overlay_ = std::move(next).ValueOrDie();
    has_overlay_.store(!overlay_->empty(), std::memory_order_release);
    overlay_bytes = overlay_->ByteSize();
    uint64_t min_nodes = overlay_->min_num_nodes();
    uint64_t cur = total_nodes_.load(std::memory_order_relaxed);
    while (min_nodes > cur &&
           !total_nodes_.compare_exchange_weak(cur, min_nodes,
                                               std::memory_order_release,
                                               std::memory_order_relaxed)) {
    }
    // The memo holds pre-edit answers; flush it inside the same
    // critical section the epoch bump lands in, so an in-flight query
    // can neither hit a stale entry nor store one behind the flush.
    MutexLock cache_lock(cache_mutex_);
    edit_epoch_.fetch_add(1, std::memory_order_release);
    results_.clear();
    result_lru_.clear();
    result_bytes_used_ = 0;
  }
  uint64_t budget = overlay_budget_bytes_.load(std::memory_order_relaxed);
  if (budget != ~0ull && overlay_bytes > budget) {
    return FoldOverlayLocked();
  }
  return Status::OK();
}

Status ShardedRep::FoldOverlay() {
  MutexLock fold_lock(fold_mu_);
  return FoldOverlayLocked();
}

Status ShardedRep::FoldOverlayLocked() {
  std::shared_ptr<const DeltaOverlay> snap;
  {
    MutexLock lock(overlay_mu_);
    snap = overlay_;
  }
  if (snap == nullptr || snap->empty()) return Status::OK();

  const size_t shard_count = entries_.size();
  std::vector<std::vector<DeltaPair>> shard_kills(shard_count);
  std::vector<std::vector<DeltaEdge>> shard_adds(shard_count);
  std::vector<DeltaPair> residual_kills;
  std::vector<DeltaEdge> residual_adds;

  // Kill eligibility: a kill folds only into the *unique* shard whose
  // node map holds both endpoints — with the pair resolvable in two or
  // more shards, folding into one would leave another shard's base
  // copy alive and the residual kill gone. No shard holding both
  // endpoints means no base copy exists: the kill is spent (Apply
  // already erased pending adds of the pair).
  for (const DeltaPair& kill : snap->kills()) {
    size_t owner = shard_count;
    int owners = 0;
    for (size_t i = 0; i < shard_count; ++i) {
      const Entry& e = entries_[i];
      if (!e.has_payload()) continue;
      if (!ShardMayContain(e.nodes, kill.u) ||
          !ShardMayContain(e.nodes, kill.v)) {
        continue;
      }
      if (LocalId(e.nodes, kill.u) == kInvalidNode) continue;
      if (LocalId(e.nodes, kill.v) == kInvalidNode) continue;
      owner = i;
      if (++owners > 1) break;
    }
    if (owners == 0) continue;
    if (owners > 1) {
      residual_kills.push_back(kill);
      continue;
    }
    shard_kills[owner].push_back(kill);
  }

  // Add eligibility: the first shard holding both endpoints takes the
  // edge — unless the pair has a residual kill, in which case the
  // query-time merge (which applies kills to base answers) would
  // re-kill the folded edge; such adds stay residual with their kill.
  // Adds referencing fresh nodes (no shard holds them) stay residual
  // until a future full recompression.
  for (const DeltaEdge& add : snap->adds()) {
    size_t owner = shard_count;
    for (size_t i = 0; i < shard_count; ++i) {
      const Entry& e = entries_[i];
      if (!e.has_payload()) continue;
      if (!ShardMayContain(e.nodes, add.u) ||
          !ShardMayContain(e.nodes, add.v)) {
        continue;
      }
      if (LocalId(e.nodes, add.u) == kInvalidNode) continue;
      if (LocalId(e.nodes, add.v) == kInvalidNode) continue;
      owner = i;
      break;
    }
    bool killed_residual = std::binary_search(
        residual_kills.begin(), residual_kills.end(),
        DeltaPair{add.u, add.v}, [](const DeltaPair& a, const DeltaPair& b) {
          return std::tie(a.u, a.v) < std::tie(b.u, b.v);
        });
    if (owner == shard_count || killed_residual) {
      residual_adds.push_back(add);
      continue;
    }
    shard_adds[owner].push_back(add);
  }

  std::vector<size_t> work;
  for (size_t i = 0; i < shard_count; ++i) {
    if (!shard_kills[i].empty() || !shard_adds[i].empty()) work.push_back(i);
  }
  if (work.empty()) {
    // Only ineligible edits: the residual equals the snapshot minus
    // spent kills. Publishing just that still shrinks the overlay.
    if (residual_kills.size() == snap->kill_count() &&
        residual_adds.size() == snap->add_count()) {
      return Status::OK();  // nothing changed at all
    }
    auto residual = DeltaOverlay::FromRuns(std::move(residual_adds),
                                           std::move(residual_kills));
    if (!residual.ok()) return residual.status();
    PublishFolds({}, std::move(residual).ValueOrDie(),
                 /*replace_all=*/false, /*bump_edit_epoch=*/false);
    return Status::OK();
  }

  // Recompress the touched shards on the compression pool. A shard
  // whose fold fails keeps its edits residual (fail-soft, never
  // lossy); the base container file is never touched, so a crash at
  // any point here leaves the on-disk corpus exactly as it was.
  std::vector<std::shared_ptr<FoldedShard>> folded(shard_count);
  RunIndexedOnPool(work.size(), decompress_threads_, [&](size_t w) {
    size_t i = work[w];
    std::shared_ptr<FoldedShard> out;
    if (FoldOneShard(i, shard_kills[i], shard_adds[i], &out).ok()) {
      folded[i] = std::move(out);
    }
  });

  std::vector<std::pair<size_t, std::shared_ptr<FoldedShard>>> publish;
  uint64_t folded_edits = 0;
  for (size_t i : work) {
    if (folded[i] != nullptr) {
      publish.emplace_back(i, folded[i]);
      folded_edits += shard_kills[i].size() + shard_adds[i].size();
    } else {
      residual_kills.insert(residual_kills.end(), shard_kills[i].begin(),
                            shard_kills[i].end());
      residual_adds.insert(residual_adds.end(), shard_adds[i].begin(),
                           shard_adds[i].end());
    }
  }
  // Re-sort: failed shards' edits were appended out of order.
  std::sort(residual_kills.begin(), residual_kills.end(),
            [](const DeltaPair& a, const DeltaPair& b) {
              return std::tie(a.u, a.v) < std::tie(b.u, b.v);
            });
  std::sort(residual_adds.begin(), residual_adds.end(),
            [](const DeltaEdge& a, const DeltaEdge& b) {
              return std::tie(a.u, a.v, a.label) <
                     std::tie(b.u, b.v, b.label);
            });
  auto residual = DeltaOverlay::FromRuns(std::move(residual_adds),
                                         std::move(residual_kills));
  if (!residual.ok()) return residual.status();

  size_t fold_count = publish.size();
  PublishFolds(std::move(publish), std::move(residual).ValueOrDie(),
               /*replace_all=*/false, /*bump_edit_epoch=*/false);
  stat_shard_folds_.fetch_add(fold_count, std::memory_order_relaxed);
  stat_folded_edits_.fetch_add(folded_edits, std::memory_order_relaxed);
  return Status::OK();
}

Status ShardedRep::FoldOneShard(size_t shard,
                                const std::vector<DeltaPair>& kills,
                                const std::vector<DeltaEdge>& adds,
                                std::shared_ptr<FoldedShard>* out) const {
  const Entry& entry = entries_[shard];
  auto rep = ShardRepFor(shard);
  if (!rep.ok()) return rep.status();
  if (rep.value() == nullptr) {
    return Status::Internal("cannot fold into an edgeless shard");
  }
  auto local_r = rep.value()->Decompress();
  if (!local_r.ok()) return local_r.status();
  Hypergraph local = std::move(local_r).ValueOrDie();
  if (local.num_nodes() != entry.nodes.size()) {
    return Status::Corruption(
        "shard " + std::to_string(shard) +
        " decompressed node count does not match its node map");
  }

  if (!kills.empty()) {
    std::vector<std::pair<NodeId, NodeId>> killed;
    killed.reserve(kills.size());
    for (const DeltaPair& k : kills) {
      killed.emplace_back(LocalId(entry.nodes, k.u),
                          LocalId(entry.nodes, k.v));
    }
    std::sort(killed.begin(), killed.end());
    local.RemoveEdgesIf([&](const HEdge& e) {
      return e.att.size() == 2 &&
             std::binary_search(killed.begin(), killed.end(),
                                std::make_pair(e.att[0], e.att[1]));
    });
  }
  // Set semantics: an add that duplicates a surviving local edge must
  // not produce a second copy (the merge rule is a union).
  std::set<std::tuple<NodeId, NodeId, Label>> present;
  for (const HEdge& e : local.edges()) {
    if (e.att.size() == 2) present.insert({e.att[0], e.att[1], e.label});
  }
  for (const DeltaEdge& a : adds) {
    NodeId lu = LocalId(entry.nodes, a.u);
    NodeId lv = LocalId(entry.nodes, a.v);
    if (!present.insert({lu, lv, a.label}).second) continue;
    local.AddSimpleEdge(lu, lv, a.label);
  }

  // Synthesize the alphabet the recompression needs: ranks from the
  // edges actually present (first observation wins; unobserved labels
  // default to rank 2, matching simple-graph alphabets).
  uint32_t max_label = 0;
  for (const HEdge& e : local.edges()) {
    max_label = std::max(max_label, e.label);
  }
  std::vector<int> ranks(static_cast<size_t>(max_label) + 1, 2);
  std::vector<uint8_t> seen(static_cast<size_t>(max_label) + 1, 0);
  for (const HEdge& e : local.edges()) {
    if (!seen[e.label]) {
      seen[e.label] = 1;
      ranks[e.label] = static_cast<int>(e.att.size());
    }
  }
  Alphabet alphabet;
  for (size_t l = 0; l < ranks.size(); ++l) {
    alphabet.Add("l" + std::to_string(l), ranks[l]);
  }

  const api::GraphCodec* codec = inner_codec_.get();
  std::unique_ptr<api::GraphCodec> created;
  if (codec == nullptr) {
    auto r = api::CodecRegistry::Create(inner_name_);
    if (!r.ok()) return r.status();
    created = std::move(r).ValueOrDie();
    codec = created.get();
  }
  auto compressed = codec->Compress(local, alphabet, api::CodecOptions());
  if (!compressed.ok()) return compressed.status();
  auto f = std::make_shared<FoldedShard>();
  f->rep = std::move(compressed).ValueOrDie();
  if (f->rep->num_nodes() != entry.nodes.size()) {
    return Status::Internal("folded shard changed its node count");
  }
  f->payload = f->rep->Serialize();
  if (f->payload.empty()) {
    return Status::Internal("folded shard serialized to nothing");
  }
  f->checksum = HashBytes(f->payload.data(), f->payload.size());
  *out = std::move(f);
  return Status::OK();
}

void ShardedRep::PublishFolds(
    std::vector<std::pair<size_t, std::shared_ptr<FoldedShard>>> folds,
    std::shared_ptr<const DeltaOverlay> residual, bool replace_all,
    bool bump_edit_epoch) {
  MutexLock lock(overlay_mu_);
  std::vector<uint8_t> changed(entries_.size(), 0);
  for (auto& fold : folds) {
    changed[fold.first] = 1;
    folded_keep_.push_back(fold.second);
    folded_published_[fold.first].store(fold.second.get(),
                                        std::memory_order_release);
  }
  if (replace_all) {
    // Deltas are cumulative against the base: shards the new set does
    // not change revert to their base grammar.
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (!changed[i] &&
          folded_published_[i].load(std::memory_order_relaxed) != nullptr) {
        folded_published_[i].store(nullptr, std::memory_order_release);
        changed[i] = 1;  // its cache slot is stale too
      }
    }
  }
  overlay_ = residual;
  has_overlay_.store(residual != nullptr && !residual->empty(),
                     std::memory_order_release);

  MutexLock cache_lock(cache_mutex_);
  // The epoch bump and the slot eviction sit in the same critical
  // section: an in-flight decode of a pre-fold grammar sees the moved
  // epoch at store time and drops its result instead of re-caching
  // stale adjacency behind this invalidation.
  fold_epoch_.fetch_add(1, std::memory_order_release);
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (!changed[i]) continue;
    if (cache_slots_[i] != nullptr) {
      cache_bytes_used_ -= cache_slots_[i]->bytes;
      cache_slots_[i] = nullptr;
      stat_evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    cache_miss_credit_[i] = 0;  // folded payload may now fit the budget
  }
  if (bump_edit_epoch) {
    edit_epoch_.fetch_add(1, std::memory_order_release);
    results_.clear();
    result_lru_.clear();
    result_bytes_used_ = 0;
  }
}

Status ShardedRep::ApplyDelta(const DeltaContainer& delta) {
  MutexLock fold_lock(fold_mu_);
  if (!is_lazy() || directory_checksum_ == 0) {
    return Status::InvalidArgument(
        "deltas apply to v2 (GRSHARD2) containers only");
  }
  if (delta.base_dir_checksum != directory_checksum_) {
    return Status::Corruption(
        "delta does not bind to this base: directory checksum " +
        HexU64(delta.base_dir_checksum) + " != " +
        HexU64(directory_checksum_));
  }
  if (delta.num_nodes > 0xFFFFFFFFull) {
    return Status::Corruption("delta node count out of range");
  }
  std::vector<std::pair<size_t, std::shared_ptr<FoldedShard>>> publish;
  for (const DeltaContainer::ChangedShard& shard : delta.shards) {
    if (shard.index >= entries_.size()) {
      return Status::Corruption("delta shard index out of range");
    }
    const Entry& entry = entries_[shard.index];
    if (!entry.has_payload()) {
      return Status::Corruption("delta changes an edgeless shard");
    }
    auto f = std::make_shared<FoldedShard>();
    f->payload = shard.payload;
    f->checksum = shard.checksum;  // verified by DecodeDeltaContainer
    auto rep = inner_codec_->DeserializeSpan(SpanOf(f->payload));
    if (!rep.ok()) return rep.status();
    if (rep.value()->num_nodes() != entry.nodes.size()) {
      return Status::Corruption(
          "delta shard " + std::to_string(shard.index) +
          " node count does not match the base node map");
    }
    f->rep = std::move(rep).ValueOrDie();
    publish.emplace_back(shard.index, std::move(f));
  }
  auto residual = DeltaOverlay::FromRuns(delta.adds, delta.kills);
  if (!residual.ok()) return residual.status();

  uint64_t min_nodes =
      std::max(delta.num_nodes, residual.value()->min_num_nodes());
  uint64_t cur = total_nodes_.load(std::memory_order_relaxed);
  while (min_nodes > cur &&
         !total_nodes_.compare_exchange_weak(cur, min_nodes,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
  }
  PublishFolds(std::move(publish), std::move(residual).ValueOrDie(),
               /*replace_all=*/true, /*bump_edit_epoch=*/true);
  return Status::OK();
}

Result<DeltaContainer> ShardedRep::BuildDelta(uint64_t base_hash,
                                              uint64_t base_size) const {
  if (directory_checksum_ == 0) {
    return Status::InvalidArgument(
        "deltas can only be built over a v2 (GRSHARD2) base");
  }
  DeltaContainer out;
  out.base_hash = base_hash;
  out.base_size = base_size;
  out.base_dir_checksum = directory_checksum_;
  out.num_nodes = num_nodes();
  // Folded set and residual change together under overlay_mu_
  // (PublishFolds), so one lock hold captures a consistent pair.
  MutexLock lock(overlay_mu_);
  for (size_t i = 0; i < entries_.size(); ++i) {
    const FoldedShard* f = FoldedFor(i);
    if (f == nullptr) continue;
    DeltaContainer::ChangedShard cs;
    cs.index = static_cast<uint32_t>(i);
    cs.checksum = f->checksum;
    cs.payload = f->payload;
    out.shards.push_back(std::move(cs));
  }
  if (overlay_ != nullptr) {
    out.adds = overlay_->adds();
    out.kills = overlay_->kills();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parsing (v1 eager, v2 lazy) and inspection

namespace {

// Shared v1 header walk (ParseV1 + the v1 Inspect scan): magic skip,
// inner name, global node count, shard count — with the untrusted-
// input hardening both consumers need.
Status ReadV1Head(ByteSource* src, std::string* inner_name,
                  uint64_t* num_nodes, uint32_t* shard_count) {
  GREPAIR_RETURN_IF_ERROR(src->Skip(8));  // magic, checked by caller
  uint8_t name_len = 0;
  GREPAIR_RETURN_IF_ERROR(src->ReadU8(&name_len));
  if (name_len == 0) {
    return Status::Corruption("sharded container has empty codec name");
  }
  ByteSpan name_span;
  GREPAIR_RETURN_IF_ERROR(src->ReadSpan(name_len, &name_span));
  inner_name->assign(name_span.begin(), name_span.end());
  GREPAIR_RETURN_IF_ERROR(src->ReadU64LE(num_nodes));
  GREPAIR_RETURN_IF_ERROR(src->ReadU32LE(shard_count));
  if (*num_nodes > 0xFFFFFFFFull) {
    return Status::Corruption("sharded container node count out of range");
  }
  if (*shard_count < 1 || *shard_count > kMaxShardCount) {
    return Status::Corruption("sharded container shard count out of range");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<ShardedRep>> ShardedRep::ParseV1(ByteSpan bytes) {
  ByteSource src(bytes, "sharded container");
  std::string inner_name;
  uint64_t num_nodes = 0;
  uint32_t shard_count = 0;
  GREPAIR_RETURN_IF_ERROR(
      ReadV1Head(&src, &inner_name, &num_nodes, &shard_count));
  GREPAIR_RETURN_IF_ERROR(RejectNestedInner(inner_name));

  auto inner = api::CodecRegistry::Create(inner_name);
  if (!inner.ok()) return inner.status();

  // Grown per parsed shard (each consumes >= 16 header bytes, so
  // growth is input-bounded) rather than reserved from the untrusted
  // count — a 25-byte container claiming 2^20 shards must not
  // allocate 2^20 Entry slots up front.
  std::vector<Entry> entries;
  for (uint32_t i = 0; i < shard_count; ++i) {
    Entry entry;
    uint64_t node_count = 0;
    GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&node_count));
    GREPAIR_RETURN_IF_ERROR(
        DecodeNodeMap(&src, node_count, num_nodes, &entry.nodes));
    uint64_t payload_len = 0;
    GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&payload_len));
    if (payload_len > 0) {
      ByteSpan payload_span;
      GREPAIR_RETURN_IF_ERROR(src.ReadSpan(payload_len, &payload_span));
      entry.payload = payload_span.ToVector();
      auto rep = inner.value()->DeserializeSpan(
          ByteSpan(entry.payload.data(), entry.payload.size()));
      if (!rep.ok()) return rep.status();
      entry.rep = std::move(rep).ValueOrDie();
      if (entry.rep->num_nodes() != entry.nodes.size()) {
        return Status::Corruption(
            "shard payload node count does not match its node map");
      }
    }
    entries.push_back(std::move(entry));
  }
  GREPAIR_RETURN_IF_ERROR(src.ExpectExhausted("sharded container"));
  return std::make_unique<ShardedRep>(inner_name,
                                      inner.value()->capabilities(),
                                      num_nodes, std::move(entries));
}

// Shared v2 footer walk: validates magic/trailer/directory checksum
// and hands back the raw directory byte region plus its offset. Every
// failure names expected vs actual sizes. Public because the shard
// server ships exactly this region to remote clients.
Result<ByteSpan> LocateV2DirectoryRegion(ByteSpan bytes,
                                         uint64_t* dir_off_out) {
  if (bytes.size < 8 + kV2TrailerBytes ||
      std::memcmp(bytes.data, kShardContainerMagicV2, 8) != 0) {
    return Status::Corruption(
        "not a sharded v2 container (bad magic or " +
        std::to_string(bytes.size) + " byte(s), need at least " +
        std::to_string(8 + kV2TrailerBytes) + ")");
  }
  ByteSource trailer(
      bytes.subspan(bytes.size - kV2TrailerBytes, kV2TrailerBytes),
      "sharded v2 trailer");
  uint64_t dir_off = 0, dir_len = 0, dir_checksum = 0;
  GREPAIR_RETURN_IF_ERROR(trailer.ReadU64LE(&dir_off));
  GREPAIR_RETURN_IF_ERROR(trailer.ReadU64LE(&dir_len));
  GREPAIR_RETURN_IF_ERROR(trailer.ReadU64LE(&dir_checksum));
  uint64_t body_end = bytes.size - kV2TrailerBytes;
  if (dir_off < 8 || dir_off > body_end || dir_len != body_end - dir_off) {
    return Status::Corruption(
        "sharded v2 directory out of range: offset " +
        std::to_string(dir_off) + " + length " + std::to_string(dir_len) +
        " must end at byte " + std::to_string(body_end) + " of " +
        std::to_string(bytes.size));
  }
  uint64_t actual = HashBytes(bytes.data + dir_off, dir_len);
  if (actual != dir_checksum) {
    return Status::Corruption(
        "sharded v2 directory checksum mismatch (expected " +
        HexU64(dir_checksum) + ", got " + HexU64(actual) + ")");
  }
  *dir_off_out = dir_off;
  return bytes.subspan(dir_off, dir_len);
}

namespace {

// Reads the fixed head of the v2 directory (inner name, node count,
// shard count) with the same hardening as the v1 parser.
Status ReadV2DirectoryHead(ByteSource* dir, std::string* inner_name,
                           uint64_t* num_nodes, uint32_t* shard_count) {
  uint8_t name_len = 0;
  GREPAIR_RETURN_IF_ERROR(dir->ReadU8(&name_len));
  if (name_len == 0) {
    return Status::Corruption("sharded v2 container has empty codec name");
  }
  ByteSpan name_span;
  GREPAIR_RETURN_IF_ERROR(dir->ReadSpan(name_len, &name_span));
  inner_name->assign(name_span.begin(), name_span.end());
  GREPAIR_RETURN_IF_ERROR(dir->ReadU64LE(num_nodes));
  GREPAIR_RETURN_IF_ERROR(dir->ReadU32LE(shard_count));
  if (*num_nodes > 0xFFFFFFFFull) {
    return Status::Corruption("sharded container node count out of range");
  }
  if (*shard_count < 1 || *shard_count > kMaxShardCount) {
    return Status::Corruption("sharded container shard count out of range");
  }
  return Status::OK();
}

// One directory row: the fixed fields plus the node-map sub-span.
Status ReadV2DirectoryRow(ByteSource* dir, uint64_t dir_off, size_t shard,
                          ShardDirEntry* row, ByteSpan* map) {
  GREPAIR_RETURN_IF_ERROR(dir->ReadU64LE(&row->offset));
  GREPAIR_RETURN_IF_ERROR(dir->ReadU64LE(&row->length));
  GREPAIR_RETURN_IF_ERROR(dir->ReadU64LE(&row->checksum));
  GREPAIR_RETURN_IF_ERROR(dir->ReadU64LE(&row->node_count));
  uint32_t map_len = 0;
  GREPAIR_RETURN_IF_ERROR(dir->ReadU32LE(&map_len));
  GREPAIR_RETURN_IF_ERROR(dir->ReadSpan(map_len, map));
  if (row->length == 0) {
    // Edgeless shards pin their unused fields to zero so single-bit
    // corruption there cannot hide until (a nonexistent) fault time.
    if (row->offset != 0 || row->checksum != 0) {
      return Status::Corruption(
          "shard " + std::to_string(shard) +
          " is edgeless but has nonzero payload offset/checksum");
    }
    return Status::OK();
  }
  if (row->offset < 8 || row->offset > dir_off ||
      row->length > dir_off - row->offset) {
    return Status::Corruption(
        "shard " + std::to_string(shard) + " payload out of range: offset " +
        std::to_string(row->offset) + " + length " +
        std::to_string(row->length) + " exceeds the payload region [8, " +
        std::to_string(dir_off) + ")");
  }
  return Status::OK();
}

}  // namespace

Result<ParsedDirectory> ParseV2Directory(ByteSpan dir_bytes,
                                         uint64_t dir_off) {
  ByteSource dir(dir_bytes, "sharded v2 directory");
  ParsedDirectory parsed;
  uint32_t shard_count = 0;
  GREPAIR_RETURN_IF_ERROR(ReadV2DirectoryHead(
      &dir, &parsed.inner_name, &parsed.num_nodes, &shard_count));
  for (uint32_t i = 0; i < shard_count; ++i) {
    ShardDirEntry row;
    ByteSpan map;
    GREPAIR_RETURN_IF_ERROR(ReadV2DirectoryRow(&dir, dir_off, i, &row, &map));
    std::vector<NodeId> nodes;
    ByteSource map_src(map, "shard " + std::to_string(i) + " node map");
    GREPAIR_RETURN_IF_ERROR(DecodeNodeMap(&map_src, row.node_count,
                                          parsed.num_nodes, &nodes));
    GREPAIR_RETURN_IF_ERROR(map_src.ExpectExhausted("node map"));
    parsed.rows.push_back(row);
    parsed.node_maps.push_back(std::move(nodes));
  }
  GREPAIR_RETURN_IF_ERROR(dir.ExpectExhausted("sharded v2 directory"));
  // The corpus version identity: equals the v2 trailer's checksum for
  // a local file (LocateV2DirectoryRegion just verified that), and is
  // the independent recomputation over the shipped region for a
  // remote directory. GRSHARD3 deltas bind to this value.
  parsed.dir_checksum = HashBytes(dir_bytes.data, dir_bytes.size);
  return parsed;
}

namespace {

// The local payload source: pins the mmap (or the owned buffer) a v2
// container was opened over and hands out borrowed views. The remote
// twin lives in src/net/remote_source.{h,cc}.
class LocalShardSource : public ShardSource {
 public:
  LocalShardSource(std::shared_ptr<MmapFile> file,
                   std::shared_ptr<std::vector<uint8_t>> owned,
                   std::vector<ByteSpan> payloads)
      : file_(std::move(file)),
        owned_(std::move(owned)),
        payloads_(std::move(payloads)) {}

  const char* kind() const override {
    return file_ != nullptr && file_->is_mapped() ? "local-mmap"
                                                  : "local-heap";
  }

  Result<ByteSpan> FetchShard(size_t shard,
                              std::vector<uint8_t>* owned) override {
    (void)owned;  // the backing store outlives the rep; no copy needed
    if (shard >= payloads_.size()) {
      return Status::Internal("shard index out of range in local source");
    }
    return payloads_[shard];
  }

  uint64_t AdviseShard(size_t shard) override {
    if (file_ == nullptr || shard >= payloads_.size()) return 0;
    ByteSpan payload = payloads_[shard];
    if (payload.size == 0) return 0;
    ByteSpan map = file_->span();
    if (payload.data < map.data || payload.data + payload.size >
                                       map.data + map.size) {
      return 0;  // heap-owned container bytes: nothing to madvise
    }
    return file_->AdviseWillNeed(
        static_cast<size_t>(payload.data - map.data), payload.size);
  }

  uint64_t AdviseSequential() override {
    return file_ != nullptr ? file_->AdviseSequential() : 0;
  }

  uint64_t AdviseNormal() override {
    return file_ != nullptr ? file_->AdviseNormal() : 0;
  }

  // Pin coverage contract: a local source always *covers* the shard
  // (the bytes are resident-by-construction or mapped), so the return
  // is the payload length whenever the shard exists. The mlock
  // underneath is best-effort — RLIMIT_MEMLOCK is tight in containers
  // and a refused lock must not perturb placement decisions.
  uint64_t PinShard(size_t shard) override {
    if (shard >= payloads_.size()) return 0;
    ByteSpan payload = payloads_[shard];
    if (payload.size == 0) return 0;
    if (MappedOffset(payload) >= 0) {
      (void)file_->Pin(static_cast<size_t>(MappedOffset(payload)),
                       payload.size);
    } else {
      (void)PinBytes(payload);
    }
    return payload.size;
  }

  uint64_t UnpinShard(size_t shard) override {
    if (shard >= payloads_.size()) return 0;
    ByteSpan payload = payloads_[shard];
    if (payload.size == 0) return 0;
    if (MappedOffset(payload) >= 0) {
      (void)file_->Unpin(static_cast<size_t>(MappedOffset(payload)),
                         payload.size);
    } else {
      (void)UnpinBytes(payload);
    }
    return payload.size;
  }

  // Batched fault warm-up: re-opens the backing file and reads every
  // requested payload range through the IoEngine (io_uring when the
  // kernel has it, pread batches otherwise) into a scratch buffer.
  // The reads populate the page cache, so the mmap faults that follow
  // are soft. Heap-backed containers are already resident: no-op.
  uint64_t WarmShards(const std::vector<size_t>& shards) override {
#if !defined(_WIN32)
    if (file_ == nullptr || !file_->is_mapped()) return 0;
    int fd = -1;
    {
      MutexLock lock(warm_mu_);
      if (warm_fd_ < 0 && !warm_fd_failed_) {
        warm_fd_ = ::open(file_->path().c_str(), O_RDONLY);
        if (warm_fd_ < 0) warm_fd_failed_ = true;
      }
      fd = warm_fd_;
    }
    if (fd < 0) return 0;
    constexpr size_t kWarmChunkBytes = 32u << 20;  // scratch cap
    uint64_t batches = 0;
    std::vector<IoReadRequest> reads;
    std::vector<uint8_t> scratch;
    size_t chunk_bytes = 0;
    auto flush = [&]() {
      if (reads.empty()) return;
      scratch.resize(chunk_bytes);
      size_t off = 0;
      for (IoReadRequest& r : reads) {
        r.dst = scratch.data() + off;
        off += r.length;
      }
      batches += IoEngine::Default().ReadBatch(&reads);
      reads.clear();
      chunk_bytes = 0;
    };
    for (size_t s : shards) {
      if (s >= payloads_.size()) continue;
      ByteSpan payload = payloads_[s];
      int64_t offset = MappedOffset(payload);
      if (payload.size == 0 || offset < 0 ||
          payload.size > std::numeric_limits<uint32_t>::max()) {
        continue;
      }
      if (!reads.empty() && chunk_bytes + payload.size > kWarmChunkBytes) {
        flush();
      }
      IoReadRequest req;
      req.fd = fd;
      req.offset = static_cast<uint64_t>(offset);
      req.length = static_cast<uint32_t>(payload.size);
      reads.push_back(req);
      chunk_bytes += payload.size;
    }
    flush();
    return batches;
#else
    (void)shards;
    return 0;
#endif
  }

  ~LocalShardSource() override {
#if !defined(_WIN32)
    MutexLock lock(warm_mu_);
    if (warm_fd_ >= 0) ::close(warm_fd_);
#endif
  }

 private:
  // Byte offset of `payload` inside the mapping, or -1 when the bytes
  // do not live in the mapped file (heap container / edgeless).
  int64_t MappedOffset(ByteSpan payload) const {
    if (file_ == nullptr || !file_->is_mapped() || payload.data == nullptr) {
      return -1;
    }
    ByteSpan map = file_->span();
    if (payload.data < map.data ||
        payload.data + payload.size > map.data + map.size) {
      return -1;
    }
    return static_cast<int64_t>(payload.data - map.data);
  }

  std::shared_ptr<MmapFile> file_;
  std::shared_ptr<std::vector<uint8_t>> owned_;
  std::vector<ByteSpan> payloads_;
  Mutex warm_mu_;
  int warm_fd_ GREPAIR_GUARDED_BY(warm_mu_) = -1;
  bool warm_fd_failed_ GREPAIR_GUARDED_BY(warm_mu_) = false;
};

}  // namespace

Result<std::unique_ptr<ShardedRep>> ShardedRep::ParseV2(
    ByteSpan bytes, std::shared_ptr<MmapFile> file,
    std::shared_ptr<std::vector<uint8_t>> owned) {
  uint64_t dir_off = 0;
  auto region = LocateV2DirectoryRegion(bytes, &dir_off);
  if (!region.ok()) return region.status();
  auto dir = ParseV2Directory(region.value(), dir_off);
  if (!dir.ok()) return dir.status();
  GREPAIR_RETURN_IF_ERROR(RejectNestedInner(dir.value().inner_name));

  auto inner = api::CodecRegistry::Create(dir.value().inner_name);
  if (!inner.ok()) return inner.status();

  std::vector<Entry> entries;
  std::vector<ByteSpan> payloads;
  for (size_t i = 0; i < dir.value().rows.size(); ++i) {
    const ShardDirEntry& row = dir.value().rows[i];
    Entry entry;
    entry.nodes = std::move(dir.value().node_maps[i]);
    if (row.length > 0) {
      entry.view = bytes.subspan(row.offset, row.length);
      entry.checksum = row.checksum;
    }
    payloads.push_back(entry.view);
    entries.push_back(std::move(entry));
  }

  auto rep = std::make_unique<ShardedRep>(dir.value().inner_name,
                                          inner.value()->capabilities(),
                                          dir.value().num_nodes,
                                          std::move(entries));
  rep->inner_codec_ = std::move(inner).ValueOrDie();
  rep->directory_checksum_ = dir.value().dir_checksum;
  rep->source_ = std::make_shared<LocalShardSource>(
      std::move(file), std::move(owned), std::move(payloads));
  return rep;
}

Result<std::unique_ptr<ShardedRep>> ShardedRep::OpenFromSource(
    std::shared_ptr<ShardSource> source, ParsedDirectory dir) {
  if (source == nullptr) {
    return Status::InvalidArgument("OpenFromSource needs a source");
  }
  GREPAIR_RETURN_IF_ERROR(RejectNestedInner(dir.inner_name));
  if (dir.rows.size() != dir.node_maps.size() || dir.rows.empty() ||
      dir.rows.size() > kMaxShardCount) {
    return Status::Corruption("sharded directory shard count out of range");
  }
  auto inner = api::CodecRegistry::Create(dir.inner_name);
  if (!inner.ok()) return inner.status();

  std::vector<Entry> entries;
  for (size_t i = 0; i < dir.rows.size(); ++i) {
    Entry entry;
    entry.nodes = std::move(dir.node_maps[i]);
    entry.length = dir.rows[i].length;
    entry.checksum = dir.rows[i].checksum;
    entries.push_back(std::move(entry));
  }
  auto rep = std::make_unique<ShardedRep>(dir.inner_name,
                                          inner.value()->capabilities(),
                                          dir.num_nodes,
                                          std::move(entries));
  rep->inner_codec_ = std::move(inner).ValueOrDie();
  rep->directory_checksum_ = dir.dir_checksum;
  rep->source_ = std::move(source);
  return rep;
}

Result<std::unique_ptr<ShardedRep>> ShardedRep::Deserialize(
    const std::vector<uint8_t>& bytes) {
  return Deserialize(SpanOf(bytes));
}

Result<std::unique_ptr<ShardedRep>> ShardedRep::Deserialize(ByteSpan bytes) {
  auto version = ContainerVersion(bytes);
  if (!version.ok()) return version.status();
  if (version.value() == 1) return ParseV1(bytes);
  // v2 from an unmapped buffer: copy once into an owned backing store
  // the lazy payload views can borrow from for the rep's lifetime.
  auto owned = std::make_shared<std::vector<uint8_t>>(bytes.ToVector());
  ByteSpan span = SpanOf(*owned);
  return ParseV2(span, nullptr, std::move(owned));
}

Result<std::unique_ptr<ShardedRep>> ShardedRep::Open(
    std::shared_ptr<MmapFile> file, ByteSpan bytes) {
  auto version = ContainerVersion(bytes);
  if (!version.ok()) return version.status();
  if (version.value() == 1) return ParseV1(bytes);  // no directory to seek by
  return ParseV2(bytes, std::move(file), nullptr);
}

Result<ShardContainerInfo> ShardedRep::Inspect(ByteSpan bytes) {
  auto version = ContainerVersion(bytes);
  if (!version.ok()) return version.status();
  ShardContainerInfo info;
  info.version = version.value();
  if (info.version == 2) {
    uint64_t dir_off = 0;
    auto region = LocateV2DirectoryRegion(bytes, &dir_off);
    if (!region.ok()) return region.status();
    // Row walk only — the node-map bits are length-prefixed and
    // skipped undecoded, so `info` stays O(directory), not O(nodes).
    ByteSource dir(region.value(), "sharded v2 directory");
    uint32_t shard_count = 0;
    GREPAIR_RETURN_IF_ERROR(ReadV2DirectoryHead(&dir, &info.inner_name,
                                                &info.num_nodes,
                                                &shard_count));
    for (uint32_t i = 0; i < shard_count; ++i) {
      ShardDirEntry row;
      ByteSpan map;
      GREPAIR_RETURN_IF_ERROR(
          ReadV2DirectoryRow(&dir, dir_off, i, &row, &map));
      info.shards.push_back(row);
    }
    GREPAIR_RETURN_IF_ERROR(dir.ExpectExhausted("sharded v2 directory"));
    return info;
  }
  // v1: a header scan — node maps must be decoded to find their length,
  // but payloads are only skipped, never handed to an inner codec.
  ByteSource src(bytes, "sharded container");
  uint32_t shard_count = 0;
  GREPAIR_RETURN_IF_ERROR(
      ReadV1Head(&src, &info.inner_name, &info.num_nodes, &shard_count));
  for (uint32_t i = 0; i < shard_count; ++i) {
    ShardDirEntry row;
    GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&row.node_count));
    std::vector<NodeId> nodes;
    GREPAIR_RETURN_IF_ERROR(
        DecodeNodeMap(&src, row.node_count, info.num_nodes, &nodes));
    GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&row.length));
    row.offset = row.length > 0 ? src.position() : 0;
    GREPAIR_RETURN_IF_ERROR(src.Skip(row.length));
    info.shards.push_back(row);
  }
  GREPAIR_RETURN_IF_ERROR(src.ExpectExhausted("sharded container"));
  return info;
}

// ---------------------------------------------------------------------------
// ShardedCodec

ShardedCodec::ShardedCodec(std::string inner_name)
    : inner_name_(std::move(inner_name)), name_("sharded:" + inner_name_) {
  auto inner = api::CodecRegistry::Create(inner_name_);
  if (inner.ok()) inner_ = std::move(inner).ValueOrDie();
}

ShardedCodec::ShardedCodec(std::string inner_name,
                           std::unique_ptr<api::GraphCodec> inner)
    : inner_name_(std::move(inner_name)),
      name_("sharded:" + inner_name_),
      inner_(std::move(inner)) {}

uint32_t ShardedCodec::capabilities() const {
  if (inner_ == nullptr) return 0;
  uint32_t caps = inner_->capabilities();
  // Cross-shard BFS turns inner neighbor queries into reachability.
  if (caps & api::kNeighborQueries) caps |= api::kReachabilityQueries;
  return caps;
}

Result<std::unique_ptr<api::CompressedRep>> ShardedCodec::Compress(
    const Hypergraph& graph, const Alphabet& alphabet,
    const api::CodecOptions& options) const {
  if (inner_name_.size() > 255) {
    // The container stores the name length as one byte; a longer name
    // would serialize into a self-corrupt container.
    return Status::InvalidArgument(
        "inner codec name exceeds 255 bytes: " + inner_name_);
  }
  if (inner_ == nullptr) {
    return Status::NotFound("no codec named '" + inner_name_ + "'");
  }

  PartitionOptions part_options;
  int threads = 0;
  api::CodecOptions inner_options;
  for (const auto& [key, value] : options.entries()) {
    if (key == "shards" || key == "threads" || key == "strategy") continue;
    inner_options.Set(key, value);
  }
  auto shards = options.GetInt("shards", part_options.num_shards);
  if (!shards.ok()) return shards.status();
  if (shards.value() < 1 || shards.value() > kMaxShards) {
    return Status::InvalidArgument("option shards out of range [1, " +
                                   std::to_string(kMaxShards) + "]");
  }
  part_options.num_shards = static_cast<int>(shards.value());
  auto threads_opt = options.GetInt("threads", 0);
  if (!threads_opt.ok()) return threads_opt.status();
  if (threads_opt.value() < 0 || threads_opt.value() > 256) {
    return Status::InvalidArgument("option threads out of range [0, 256]");
  }
  threads = static_cast<int>(threads_opt.value());
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = static_cast<int>(
        std::min<unsigned>(std::max(1u, hw),
                           static_cast<unsigned>(part_options.num_shards)));
  }
  std::string strategy = options.GetString(
      "strategy", PartitionStrategyName(part_options.strategy));
  if (!ParsePartitionStrategy(strategy, &part_options.strategy)) {
    return Status::InvalidArgument("unknown partition strategy '" +
                                   strategy + "' (edge-range|bfs)");
  }

  GREPAIR_RETURN_IF_ERROR(graph.Validate(alphabet));
  auto partition = PartitionGraph(graph, part_options);
  if (!partition.ok()) return partition.status();

  ParallelCompressor compressor(*inner_, threads);
  auto compressed = compressor.CompressShards(partition.value(), alphabet,
                                              inner_options);
  if (!compressed.ok()) return compressed.status();

  std::vector<ShardedRep::Entry> entries;
  entries.reserve(partition.value().shards.size());
  for (size_t i = 0; i < partition.value().shards.size(); ++i) {
    ShardedRep::Entry entry;
    entry.nodes = std::move(partition.value().shards[i].nodes);
    entry.payload = std::move(compressed.value()[i].payload);
    entry.rep = std::move(compressed.value()[i].rep);
    entries.push_back(std::move(entry));
  }
  return std::unique_ptr<api::CompressedRep>(new ShardedRep(
      inner_name_, inner_->capabilities(), graph.num_nodes(),
      std::move(entries)));
}

Status ShardedCodec::CheckInnerName(const ShardedRep& rep) const {
  if (rep.inner_name() != inner_name_) {
    return Status::InvalidArgument(
        "container was produced by 'sharded:" + rep.inner_name() +
        "', not '" + name_ + "'");
  }
  return Status::OK();
}

Result<std::unique_ptr<api::CompressedRep>> ShardedCodec::Deserialize(
    const std::vector<uint8_t>& bytes) const {
  return DeserializeSpan(SpanOf(bytes));
}

Result<std::unique_ptr<api::CompressedRep>> ShardedCodec::DeserializeSpan(
    ByteSpan bytes) const {
  // v1 parses in place; v2 copies the span once into its owned
  // backing store (the lazy views must outlive this call).
  auto rep = ShardedRep::Deserialize(bytes);
  if (!rep.ok()) return rep.status();
  GREPAIR_RETURN_IF_ERROR(CheckInnerName(*rep.value()));
  return std::unique_ptr<api::CompressedRep>(std::move(rep).ValueOrDie());
}

Result<std::unique_ptr<api::CompressedRep>> ShardedCodec::OpenPayload(
    std::shared_ptr<MmapFile> file, ByteSpan payload) const {
  auto rep = ShardedRep::Open(std::move(file), payload);
  if (!rep.ok()) return rep.status();
  GREPAIR_RETURN_IF_ERROR(CheckInnerName(*rep.value()));
  return std::unique_ptr<api::CompressedRep>(std::move(rep).ValueOrDie());
}

}  // namespace shard
}  // namespace grepair
