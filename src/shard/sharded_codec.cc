#include "src/shard/sharded_codec.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <thread>
#include <unordered_set>

#include "src/api/codec_registry.h"
#include "src/shard/parallel_compressor.h"
#include "src/shard/partitioner.h"
#include "src/util/byte_io.h"
#include "src/util/elias.h"

namespace grepair {
namespace shard {

const char kShardContainerMagic[8] = {'G', 'R', 'S', 'H', 'A', 'R', 'D',
                                      '1'};

namespace {

// Data shards + the cut shard.
constexpr size_t kMaxShardCount = static_cast<size_t>(kMaxShards) + 1;

// Appends the sorted node map as Elias-delta gaps (ids shifted by one,
// gaps strictly positive), byte-aligned so payloads stay addressable.
void EncodeNodeMap(const std::vector<NodeId>& nodes,
                   std::vector<uint8_t>* out) {
  BitWriter w;
  uint64_t prev = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    uint64_t shifted = static_cast<uint64_t>(nodes[i]) + 1;
    EliasDeltaEncode(i == 0 ? shifted : shifted - prev, &w);
    prev = shifted;
  }
  w.AlignToByte();
  auto bytes = w.TakeBytes();
  out->insert(out->end(), bytes.begin(), bytes.end());
}

Status DecodeNodeMap(const std::vector<uint8_t>& in, size_t* pos,
                     uint64_t count, uint64_t num_nodes,
                     std::vector<NodeId>* nodes) {
  if (count > num_nodes) {
    return Status::Corruption("shard node map larger than graph");
  }
  // num_nodes is itself untrusted (isolated nodes are free, so it
  // cannot be bounded by input size) — bound the allocation-driving
  // count by the remaining input instead: every map entry costs at
  // least one bit.
  if (count > (in.size() - *pos) * 8) {
    return Status::Corruption("shard node map exceeds input size");
  }
  BitReader r(in.data() + *pos, (in.size() - *pos) * 8);
  nodes->clear();
  // Capped reserve: sizing 4 bytes per claimed 1-bit entry up front
  // would hand crafted input a 32x allocation amplifier before any
  // gap is validated. Growth past the cap is pay-as-you-decode —
  // memory stays proportional to input actually consumed (the
  // residual is ordinary decompression-bomb density, not a free
  // allocation).
  nodes->reserve(static_cast<size_t>(std::min<uint64_t>(count, 1u << 16)));
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t gap = 0;
    GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &gap));
    // Checked as `gap > limit`, not `prev + gap > num_nodes`: a gap
    // near 2^64 would wrap the sum back into range and smuggle in an
    // unsorted map that LocalId's binary search cannot query.
    if (gap > num_nodes - prev) {
      return Status::Corruption("shard node map id out of range");
    }
    uint64_t shifted = prev + gap;  // >= 1: Elias codes are >= 1
    nodes->push_back(static_cast<NodeId>(shifted - 1));
    prev = shifted;
  }
  *pos += (r.position() + 7) / 8;
  return Status::OK();
}

// Binary search of a global id in a shard's sorted map; kInvalidNode
// when absent.
NodeId LocalId(const std::vector<NodeId>& nodes, uint64_t global) {
  auto it = std::lower_bound(nodes.begin(), nodes.end(),
                             static_cast<NodeId>(global));
  if (it == nodes.end() || *it != static_cast<NodeId>(global)) {
    return kInvalidNode;
  }
  return static_cast<NodeId>(it - nodes.begin());
}

}  // namespace

ShardedRep::ShardedRep(std::string inner_name, uint32_t inner_capabilities,
                       uint64_t num_nodes, std::vector<Entry> entries)
    : inner_name_(std::move(inner_name)),
      inner_capabilities_(inner_capabilities),
      num_nodes_(num_nodes),
      entries_(std::move(entries)) {}

void ShardedRep::set_decompress_threads(int threads) {
  decompress_threads_ = std::max(1, std::min(threads, 256));
}

// Serialize rebuilds the container from the per-shard payloads each
// call (deterministic, so repeated calls are byte-identical) instead
// of caching a second full copy of the compressed bytes for the rep's
// lifetime; ByteSize computes the exact container size arithmetically
// without materializing anything. Both are safe to call concurrently
// on a shared rep (no mutable state).
std::vector<uint8_t> ShardedRep::Serialize() const {
  std::vector<uint8_t> out(kShardContainerMagic, kShardContainerMagic + 8);
  out.push_back(static_cast<uint8_t>(inner_name_.size()));
  out.insert(out.end(), inner_name_.begin(), inner_name_.end());
  PutU64LE(num_nodes_, &out);
  PutU32LE(static_cast<uint32_t>(entries_.size()), &out);
  for (const Entry& entry : entries_) {
    PutU64LE(entry.nodes.size(), &out);
    EncodeNodeMap(entry.nodes, &out);
    PutU64LE(entry.payload.size(), &out);
    out.insert(out.end(), entry.payload.begin(), entry.payload.end());
  }
  return out;
}

size_t ShardedRep::ByteSize() const {
  size_t size = 8 + 1 + inner_name_.size() + 8 + 4;  // container header
  for (const Entry& entry : entries_) {
    size_t map_bits = 0;
    uint64_t prev = 0;
    for (size_t i = 0; i < entry.nodes.size(); ++i) {
      uint64_t shifted = static_cast<uint64_t>(entry.nodes[i]) + 1;
      map_bits += EliasDeltaLength(i == 0 ? shifted : shifted - prev);
      prev = shifted;
    }
    size += 8 + (map_bits + 7) / 8 + 8 + entry.payload.size();
  }
  return size;
}

Result<Hypergraph> ShardedRep::Decompress() const {
  size_t count = entries_.size();
  // Sentinel status keeps Result's value-or-error contract honest for
  // slots the workers never fill (edgeless shards with a null rep).
  std::vector<Result<Hypergraph>> locals(
      count, Status::Internal("shard not decompressed"));

  RunIndexedOnPool(count, decompress_threads_, [&](size_t i) {
    if (entries_[i].rep != nullptr) {
      locals[i] = entries_[i].rep->Decompress();
    }
  });

  Hypergraph global(static_cast<uint32_t>(num_nodes_));
  for (size_t i = 0; i < count; ++i) {
    const Entry& entry = entries_[i];
    if (entry.rep == nullptr) continue;
    if (!locals[i].ok()) return locals[i].status();
    const Hypergraph& local = locals[i].value();
    if (local.num_nodes() != entry.nodes.size()) {
      return Status::Corruption(
          "shard " + std::to_string(i) +
          " decompressed node count does not match its node map");
    }
    for (const HEdge& edge : local.edges()) {
      std::vector<NodeId> att;
      att.reserve(edge.att.size());
      for (NodeId v : edge.att) {
        if (v >= entry.nodes.size()) {
          return Status::Corruption("shard-local node id out of range");
        }
        att.push_back(entry.nodes[v]);
      }
      global.AddEdge(edge.label, std::move(att));
    }
  }
  return global;
}

// Shared routing for Out/InNeighbors: look the global node up in
// every shard that contains it, query locally, map back, merge.
Result<std::vector<uint64_t>> ShardedRep::RoutedNeighbors(uint64_t node,
                                                          bool out) const {
  if (!(inner_capabilities_ & api::kNeighborQueries)) {
    return Status::Unimplemented("inner codec '" + inner_name_ +
                                 "' does not answer neighbor queries");
  }
  if (node >= num_nodes_) return Status::OutOfRange("node id out of range");
  std::vector<uint64_t> all;
  for (const Entry& entry : entries_) {
    if (entry.rep == nullptr) continue;
    NodeId local = LocalId(entry.nodes, node);
    if (local == kInvalidNode) continue;
    auto part = out ? entry.rep->OutNeighbors(local)
                    : entry.rep->InNeighbors(local);
    if (!part.ok()) return part.status();
    for (uint64_t u : part.value()) {
      if (u >= entry.nodes.size()) {
        return Status::Corruption("shard neighbor id out of range");
      }
      all.push_back(entry.nodes[u]);
    }
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

Result<std::vector<uint64_t>> ShardedRep::OutNeighbors(uint64_t node) const {
  return RoutedNeighbors(node, /*out=*/true);
}

Result<std::vector<uint64_t>> ShardedRep::InNeighbors(uint64_t node) const {
  return RoutedNeighbors(node, /*out=*/false);
}

Result<bool> ShardedRep::Reachable(uint64_t from, uint64_t to) const {
  if (!(inner_capabilities_ & api::kNeighborQueries)) {
    return Status::Unimplemented(
        "sharded reachability needs an inner codec with neighbor queries");
  }
  if (from >= num_nodes_ || to >= num_nodes_) {
    return Status::OutOfRange("node id out of range");
  }
  if (from == to) return true;
  // Cross-shard BFS over routed neighbor queries. The visited set is
  // sized by what the search touches, not by the container's
  // (untrusted, possibly huge) num_nodes header — a |V|-sized bitmap
  // would let a 40-byte crafted container allocate 512 MiB per query.
  std::unordered_set<uint64_t> visited{from};
  std::deque<uint64_t> frontier{from};
  while (!frontier.empty()) {
    uint64_t v = frontier.front();
    frontier.pop_front();
    auto out = OutNeighbors(v);
    if (!out.ok()) return out.status();
    for (uint64_t u : out.value()) {
      if (u == to) return true;
      if (visited.insert(u).second) frontier.push_back(u);
    }
  }
  return false;
}

Result<std::unique_ptr<ShardedRep>> ShardedRep::Deserialize(
    const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 9 ||
      std::memcmp(bytes.data(), kShardContainerMagic, 7) != 0) {
    return Status::Corruption("bad sharded container magic");
  }
  if (bytes[7] != kShardContainerMagic[7]) {
    return Status::Corruption(
        "unsupported sharded container version (expected '1')");
  }
  size_t pos = 8;
  size_t name_len = bytes[pos++];
  if (name_len == 0 || pos + name_len > bytes.size()) {
    return Status::Corruption("sharded container truncated in codec name");
  }
  std::string inner_name(bytes.begin() + pos, bytes.begin() + pos + name_len);
  pos += name_len;
  // The inner name is untrusted: a nested "sharded:*" inner would
  // recurse through this parser once per container level, and a
  // crafted deeply-nested file becomes a stack overflow instead of a
  // Status. Compression never produces nested containers (the
  // registry refuses sharded-of-sharded), so reject them up front.
  if (inner_name.rfind("sharded:", 0) == 0) {
    return Status::Corruption(
        "nested sharded containers are not supported");
  }

  uint64_t num_nodes = 0;
  uint32_t shard_count = 0;
  GREPAIR_RETURN_IF_ERROR(GetU64LE(bytes, &pos, &num_nodes));
  GREPAIR_RETURN_IF_ERROR(GetU32LE(bytes, &pos, &shard_count));
  if (num_nodes > 0xFFFFFFFFull) {
    return Status::Corruption("sharded container node count out of range");
  }
  if (shard_count < 1 || shard_count > kMaxShardCount) {
    return Status::Corruption("sharded container shard count out of range");
  }

  auto inner = api::CodecRegistry::Create(inner_name);
  if (!inner.ok()) return inner.status();

  // Grown per parsed shard (each consumes >= 16 header bytes, so
  // growth is input-bounded) rather than reserved from the untrusted
  // count — a 25-byte container claiming 2^20 shards must not
  // allocate 2^20 Entry slots up front.
  std::vector<Entry> entries;
  for (uint32_t i = 0; i < shard_count; ++i) {
    Entry entry;
    uint64_t node_count = 0;
    GREPAIR_RETURN_IF_ERROR(GetU64LE(bytes, &pos, &node_count));
    GREPAIR_RETURN_IF_ERROR(
        DecodeNodeMap(bytes, &pos, node_count, num_nodes, &entry.nodes));
    uint64_t payload_len = 0;
    GREPAIR_RETURN_IF_ERROR(GetU64LE(bytes, &pos, &payload_len));
    if (payload_len > bytes.size() - pos) {
      return Status::Corruption("sharded container payload truncated");
    }
    if (payload_len > 0) {
      entry.payload.assign(bytes.begin() + pos,
                           bytes.begin() + pos + payload_len);
      pos += payload_len;
      auto rep = inner.value()->Deserialize(entry.payload);
      if (!rep.ok()) return rep.status();
      entry.rep = std::move(rep).ValueOrDie();
      if (entry.rep->num_nodes() != entry.nodes.size()) {
        return Status::Corruption(
            "shard payload node count does not match its node map");
      }
    }
    entries.push_back(std::move(entry));
  }
  if (pos != bytes.size()) {
    return Status::Corruption("sharded container has trailing bytes");
  }
  return std::make_unique<ShardedRep>(inner_name,
                                      inner.value()->capabilities(),
                                      num_nodes, std::move(entries));
}

// ---------------------------------------------------------------------------
// ShardedCodec

ShardedCodec::ShardedCodec(std::string inner_name)
    : inner_name_(std::move(inner_name)), name_("sharded:" + inner_name_) {
  auto inner = api::CodecRegistry::Create(inner_name_);
  if (inner.ok()) inner_ = std::move(inner).ValueOrDie();
}

ShardedCodec::ShardedCodec(std::string inner_name,
                           std::unique_ptr<api::GraphCodec> inner)
    : inner_name_(std::move(inner_name)),
      name_("sharded:" + inner_name_),
      inner_(std::move(inner)) {}

uint32_t ShardedCodec::capabilities() const {
  if (inner_ == nullptr) return 0;
  uint32_t caps = inner_->capabilities();
  // Cross-shard BFS turns inner neighbor queries into reachability.
  if (caps & api::kNeighborQueries) caps |= api::kReachabilityQueries;
  return caps;
}

Result<std::unique_ptr<api::CompressedRep>> ShardedCodec::Compress(
    const Hypergraph& graph, const Alphabet& alphabet,
    const api::CodecOptions& options) const {
  if (inner_name_.size() > 255) {
    // The container stores the name length as one byte; a longer name
    // would serialize into a self-corrupt container.
    return Status::InvalidArgument(
        "inner codec name exceeds 255 bytes: " + inner_name_);
  }
  if (inner_ == nullptr) {
    return Status::NotFound("no codec named '" + inner_name_ + "'");
  }

  PartitionOptions part_options;
  int threads = 0;
  api::CodecOptions inner_options;
  for (const auto& [key, value] : options.entries()) {
    if (key == "shards" || key == "threads" || key == "strategy") continue;
    inner_options.Set(key, value);
  }
  auto shards = options.GetInt("shards", part_options.num_shards);
  if (!shards.ok()) return shards.status();
  if (shards.value() < 1 || shards.value() > kMaxShards) {
    return Status::InvalidArgument("option shards out of range [1, " +
                                   std::to_string(kMaxShards) + "]");
  }
  part_options.num_shards = static_cast<int>(shards.value());
  auto threads_opt = options.GetInt("threads", 0);
  if (!threads_opt.ok()) return threads_opt.status();
  if (threads_opt.value() < 0 || threads_opt.value() > 256) {
    return Status::InvalidArgument("option threads out of range [0, 256]");
  }
  threads = static_cast<int>(threads_opt.value());
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = static_cast<int>(
        std::min<unsigned>(std::max(1u, hw),
                           static_cast<unsigned>(part_options.num_shards)));
  }
  std::string strategy = options.GetString(
      "strategy", PartitionStrategyName(part_options.strategy));
  if (!ParsePartitionStrategy(strategy, &part_options.strategy)) {
    return Status::InvalidArgument("unknown partition strategy '" +
                                   strategy + "' (edge-range|bfs)");
  }

  GREPAIR_RETURN_IF_ERROR(graph.Validate(alphabet));
  auto partition = PartitionGraph(graph, part_options);
  if (!partition.ok()) return partition.status();

  ParallelCompressor compressor(*inner_, threads);
  auto compressed = compressor.CompressShards(partition.value(), alphabet,
                                              inner_options);
  if (!compressed.ok()) return compressed.status();

  std::vector<ShardedRep::Entry> entries;
  entries.reserve(partition.value().shards.size());
  for (size_t i = 0; i < partition.value().shards.size(); ++i) {
    ShardedRep::Entry entry;
    entry.nodes = std::move(partition.value().shards[i].nodes);
    entry.payload = std::move(compressed.value()[i].payload);
    entry.rep = std::move(compressed.value()[i].rep);
    entries.push_back(std::move(entry));
  }
  return std::unique_ptr<api::CompressedRep>(new ShardedRep(
      inner_name_, inner_->capabilities(), graph.num_nodes(),
      std::move(entries)));
}

Result<std::unique_ptr<api::CompressedRep>> ShardedCodec::Deserialize(
    const std::vector<uint8_t>& bytes) const {
  auto rep = ShardedRep::Deserialize(bytes);
  if (!rep.ok()) return rep.status();
  if (rep.value()->inner_name() != inner_name_) {
    return Status::InvalidArgument(
        "container was produced by 'sharded:" + rep.value()->inner_name() +
        "', not '" + name_ + "'");
  }
  return std::unique_ptr<api::CompressedRep>(std::move(rep).ValueOrDie());
}

}  // namespace shard
}  // namespace grepair
