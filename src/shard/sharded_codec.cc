#include "src/shard/sharded_codec.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <thread>
#include <unordered_set>

#include "src/api/codec_registry.h"
#include "src/shard/parallel_compressor.h"
#include "src/shard/partitioner.h"
#include "src/util/byte_io.h"
#include "src/util/elias.h"

namespace grepair {
namespace shard {

const char kShardContainerMagic[8] = {'G', 'R', 'S', 'H', 'A', 'R', 'D',
                                      '1'};

namespace {

// Data shards + the cut shard.
constexpr size_t kMaxShardCount = static_cast<size_t>(kMaxShards) + 1;

// Appends the sorted node map as Elias-delta gaps (ids shifted by one,
// gaps strictly positive), byte-aligned so payloads stay addressable.
void EncodeNodeMap(const std::vector<NodeId>& nodes,
                   std::vector<uint8_t>* out) {
  BitWriter w;
  uint64_t prev = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    uint64_t shifted = static_cast<uint64_t>(nodes[i]) + 1;
    EliasDeltaEncode(i == 0 ? shifted : shifted - prev, &w);
    prev = shifted;
  }
  w.AlignToByte();
  auto bytes = w.TakeBytes();
  out->insert(out->end(), bytes.begin(), bytes.end());
}

Status DecodeNodeMap(const std::vector<uint8_t>& in, size_t* pos,
                     uint64_t count, uint64_t num_nodes,
                     std::vector<NodeId>* nodes) {
  if (count > num_nodes) {
    return Status::Corruption("shard node map larger than graph");
  }
  // num_nodes is itself untrusted (isolated nodes are free, so it
  // cannot be bounded by input size) — bound the allocation-driving
  // count by the remaining input instead: every map entry costs at
  // least one bit.
  if (count > (in.size() - *pos) * 8) {
    return Status::Corruption("shard node map exceeds input size");
  }
  BitReader r(in.data() + *pos, (in.size() - *pos) * 8);
  nodes->clear();
  // Capped reserve: sizing 4 bytes per claimed 1-bit entry up front
  // would hand crafted input a 32x allocation amplifier before any
  // gap is validated. Growth past the cap is pay-as-you-decode —
  // memory stays proportional to input actually consumed (the
  // residual is ordinary decompression-bomb density, not a free
  // allocation).
  nodes->reserve(static_cast<size_t>(std::min<uint64_t>(count, 1u << 16)));
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t gap = 0;
    GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &gap));
    // Checked as `gap > limit`, not `prev + gap > num_nodes`: a gap
    // near 2^64 would wrap the sum back into range and smuggle in an
    // unsorted map that LocalId's binary search cannot query.
    if (gap > num_nodes - prev) {
      return Status::Corruption("shard node map id out of range");
    }
    uint64_t shifted = prev + gap;  // >= 1: Elias codes are >= 1
    nodes->push_back(static_cast<NodeId>(shifted - 1));
    prev = shifted;
  }
  *pos += (r.position() + 7) / 8;
  return Status::OK();
}

// Binary search of a global id in a shard's sorted map; kInvalidNode
// when absent.
NodeId LocalId(const std::vector<NodeId>& nodes, uint64_t global) {
  auto it = std::lower_bound(nodes.begin(), nodes.end(),
                             static_cast<NodeId>(global));
  if (it == nodes.end() || *it != static_cast<NodeId>(global)) {
    return kInvalidNode;
  }
  return static_cast<NodeId>(it - nodes.begin());
}

// Cheap pre-filter before the binary search: shard maps are sorted, so
// most shards are rejected by two comparisons instead of a full
// lower_bound (edge-range partitions make the ranges disjoint; the
// query routing loop runs this once per shard per node).
bool ShardMayContain(const std::vector<NodeId>& nodes, uint64_t global) {
  return !nodes.empty() && global >= nodes.front() &&
         global <= nodes.back();
}

}  // namespace

// A shard's decoded adjacency. Built from the inner rep's Decompress
// once, then shared read-only by every query that touches the shard:
// out[local] / in[local] are this shard's sorted, deduplicated
// global-id neighbor contributions for the node at local index.
struct ShardedRep::ShardNeighborhoods {
  std::vector<std::vector<uint64_t>> out;
  std::vector<std::vector<uint64_t>> in;
  size_t bytes = 0;
};

namespace {

// Single-query misses a shard accumulates before it is promoted into
// the cache (one decode amortized over this many grammar walks); a
// batch putting at least this many queries on a shard decodes it
// immediately.
constexpr uint32_t kDecodeAfterMisses = 8;
constexpr size_t kBatchDecodeThreshold = 2;

// Miss-credit sentinel for a shard whose decoded form did not fit the
// budget: never try decoding it again (until the budget changes), or
// every 8th query would pay a whole-shard decode just to discard it.
constexpr uint32_t kUncacheable = ~0u;

// Decodes shard `entry` into its neighborhood form; null on any
// decode/consistency failure (callers fall back to per-node routing,
// which surfaces the error through the normal query path).
std::shared_ptr<const ShardedRep::ShardNeighborhoods> DecodeNeighborhoods(
    const ShardedRep::Entry& entry) {
  auto local = entry.rep->Decompress();
  if (!local.ok()) return nullptr;
  size_t n = entry.nodes.size();
  if (local.value().num_nodes() != n) return nullptr;
  auto sn = std::make_shared<ShardedRep::ShardNeighborhoods>();
  sn->out.resize(n);
  sn->in.resize(n);
  for (const HEdge& e : local.value().edges()) {
    if (e.att.size() != 2) continue;  // hyperedges carry no direction
    NodeId u = e.att[0], v = e.att[1];
    if (u >= n || v >= n) return nullptr;
    sn->out[u].push_back(entry.nodes[v]);
    sn->in[v].push_back(entry.nodes[u]);
  }
  size_t items = 0;
  for (auto* lists : {&sn->out, &sn->in}) {
    for (auto& list : *lists) {
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
      items += list.size();
    }
  }
  // Footprint estimate: elements + two vector headers per node.
  sn->bytes = items * sizeof(uint64_t) +
              2 * n * sizeof(std::vector<uint64_t>);
  return sn;
}

}  // namespace

ShardedRep::ShardedRep(std::string inner_name, uint32_t inner_capabilities,
                       uint64_t num_nodes, std::vector<Entry> entries)
    : inner_name_(std::move(inner_name)),
      inner_capabilities_(inner_capabilities),
      num_nodes_(num_nodes),
      entries_(std::move(entries)),
      cache_slots_(entries_.size()),
      cache_last_use_(entries_.size(), 0),
      cache_miss_credit_(entries_.size(), 0) {}

void ShardedRep::set_decompress_threads(int threads) {
  decompress_threads_ = std::max(1, std::min(threads, 256));
}

void ShardedRep::set_query_threads(int threads) {
  query_threads_.store(std::max(1, std::min(threads, 256)),
                       std::memory_order_relaxed);
}

// The byte budget is split between the two tiers: the node-result LRU
// gets a quarter, decoded shard neighborhoods the rest.
namespace {
size_t ResultBudget(size_t limit) { return limit / 4; }
size_t ShardBudget(size_t limit) { return limit - limit / 4; }
}  // namespace

void ShardedRep::EvictShardsLocked(size_t target) const {
  while (cache_bytes_used_ > target) {
    size_t victim = cache_slots_.size();
    uint64_t oldest = ~0ull;
    for (size_t i = 0; i < cache_slots_.size(); ++i) {
      if (cache_slots_[i] != nullptr && cache_last_use_[i] < oldest) {
        oldest = cache_last_use_[i];
        victim = i;
      }
    }
    if (victim == cache_slots_.size()) break;
    cache_bytes_used_ -= cache_slots_[victim]->bytes;
    cache_slots_[victim] = nullptr;
    stat_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardedRep::EvictResultsLocked(size_t target) const {
  while (result_bytes_used_ > target && !result_lru_.empty()) {
    uint64_t victim = result_lru_.back();
    result_lru_.pop_back();
    auto it = results_.find(victim);
    result_bytes_used_ -= it->second.bytes;
    results_.erase(it);
    stat_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardedRep::set_query_cache_bytes(size_t bytes) {
  cache_bytes_limit_.store(bytes, std::memory_order_relaxed);
  // Shrink both tiers to the new budget immediately, LRU first, and
  // let previously uncacheable shards try again under the new budget.
  std::lock_guard<std::mutex> lock(cache_mutex_);
  EvictShardsLocked(ShardBudget(bytes));
  EvictResultsLocked(ResultBudget(bytes));
  std::fill(cache_miss_credit_.begin(), cache_miss_credit_.end(), 0u);
}

std::shared_ptr<const std::vector<uint64_t>> ShardedRep::LookupResult(
    uint64_t key) const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = results_.find(key);
  if (it == results_.end()) return nullptr;
  result_lru_.splice(result_lru_.begin(), result_lru_, it->second.lru_it);
  return it->second.value;
}

void ShardedRep::StoreResult(
    uint64_t key,
    std::shared_ptr<const std::vector<uint64_t>> value) const {
  size_t bytes = value->size() * sizeof(uint64_t) + 80;  // + map overhead
  std::lock_guard<std::mutex> lock(cache_mutex_);
  size_t budget =
      ResultBudget(cache_bytes_limit_.load(std::memory_order_relaxed));
  if (budget == 0 || bytes > budget) return;
  if (results_.count(key) > 0) return;  // racing store: first one wins
  result_lru_.push_front(key);
  results_.emplace(key,
                   ResultEntry{result_lru_.begin(), std::move(value), bytes});
  result_bytes_used_ += bytes;
  // The new entry is at the LRU front and fits the budget by itself,
  // so it can never be its own victim here.
  EvictResultsLocked(budget);
}

std::shared_ptr<const ShardedRep::ShardNeighborhoods>
ShardedRep::GetOrDecodeShard(size_t shard, size_t pending) const {
  const Entry& entry = entries_[shard];
  if (entry.rep == nullptr) return nullptr;
  if (cache_bytes_limit_.load(std::memory_order_relaxed) == 0) {
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (cache_slots_[shard] != nullptr) {
      cache_last_use_[shard] = ++cache_tick_;
      return cache_slots_[shard];
    }
    if (cache_miss_credit_[shard] == kUncacheable) return nullptr;
    cache_miss_credit_[shard] +=
        static_cast<uint32_t>(std::min<size_t>(pending, kDecodeAfterMisses));
    if (pending < kBatchDecodeThreshold &&
        cache_miss_credit_[shard] < kDecodeAfterMisses) {
      return nullptr;
    }
  }
  // Decode outside the lock: it runs inner decompression and must not
  // serialize concurrent queries on other shards. A racing decode of
  // the same shard wastes work but stays correct (first insert wins).
  auto decoded = DecodeNeighborhoods(entry);
  if (decoded == nullptr) return nullptr;
  stat_decodes_.fetch_add(1, std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (cache_slots_[shard] != nullptr) return cache_slots_[shard];
  size_t budget =
      ShardBudget(cache_bytes_limit_.load(std::memory_order_relaxed));
  // A shard that cannot fit the budget must not flush everyone else
  // on every decode: it is returned for this call, not retained,
  // nothing is evicted for it, and it is marked uncacheable so the
  // decode is not endlessly repeated and discarded.
  if (decoded->bytes > budget) {
    cache_miss_credit_[shard] = kUncacheable;
    return decoded;
  }
  cache_miss_credit_[shard] = 0;
  EvictShardsLocked(budget - decoded->bytes);
  cache_slots_[shard] = decoded;
  cache_last_use_[shard] = ++cache_tick_;
  cache_bytes_used_ += decoded->bytes;
  return decoded;
}

// Serialize rebuilds the container from the per-shard payloads each
// call (deterministic, so repeated calls are byte-identical) instead
// of caching a second full copy of the compressed bytes for the rep's
// lifetime; ByteSize computes the exact container size arithmetically
// without materializing anything. Both are safe to call concurrently
// on a shared rep (no mutable state).
std::vector<uint8_t> ShardedRep::Serialize() const {
  std::vector<uint8_t> out(kShardContainerMagic, kShardContainerMagic + 8);
  out.push_back(static_cast<uint8_t>(inner_name_.size()));
  out.insert(out.end(), inner_name_.begin(), inner_name_.end());
  PutU64LE(num_nodes_, &out);
  PutU32LE(static_cast<uint32_t>(entries_.size()), &out);
  for (const Entry& entry : entries_) {
    PutU64LE(entry.nodes.size(), &out);
    EncodeNodeMap(entry.nodes, &out);
    PutU64LE(entry.payload.size(), &out);
    out.insert(out.end(), entry.payload.begin(), entry.payload.end());
  }
  return out;
}

size_t ShardedRep::ByteSize() const {
  size_t size = 8 + 1 + inner_name_.size() + 8 + 4;  // container header
  for (const Entry& entry : entries_) {
    size_t map_bits = 0;
    uint64_t prev = 0;
    for (size_t i = 0; i < entry.nodes.size(); ++i) {
      uint64_t shifted = static_cast<uint64_t>(entry.nodes[i]) + 1;
      map_bits += EliasDeltaLength(i == 0 ? shifted : shifted - prev);
      prev = shifted;
    }
    size += 8 + (map_bits + 7) / 8 + 8 + entry.payload.size();
  }
  return size;
}

Result<Hypergraph> ShardedRep::Decompress() const {
  size_t count = entries_.size();
  // Sentinel status keeps Result's value-or-error contract honest for
  // slots the workers never fill (edgeless shards with a null rep).
  std::vector<Result<Hypergraph>> locals(
      count, Status::Internal("shard not decompressed"));

  RunIndexedOnPool(count, decompress_threads_, [&](size_t i) {
    if (entries_[i].rep != nullptr) {
      locals[i] = entries_[i].rep->Decompress();
    }
  });

  Hypergraph global(static_cast<uint32_t>(num_nodes_));
  for (size_t i = 0; i < count; ++i) {
    const Entry& entry = entries_[i];
    if (entry.rep == nullptr) continue;
    if (!locals[i].ok()) return locals[i].status();
    const Hypergraph& local = locals[i].value();
    if (local.num_nodes() != entry.nodes.size()) {
      return Status::Corruption(
          "shard " + std::to_string(i) +
          " decompressed node count does not match its node map");
    }
    for (const HEdge& edge : local.edges()) {
      std::vector<NodeId> att;
      att.reserve(edge.att.size());
      for (NodeId v : edge.att) {
        if (v >= entry.nodes.size()) {
          return Status::Corruption("shard-local node id out of range");
        }
        att.push_back(entry.nodes[v]);
      }
      global.AddEdge(edge.label, std::move(att));
    }
  }
  return global;
}

// Shared routing for Out/InNeighbors: first the node-result cache
// (repeat queries are one hash lookup), then per owning shard either
// the decoded-neighborhood tier (promoting hot shards after repeated
// misses) or the inner rep, map back, merge, memoize.
Result<std::vector<uint64_t>> ShardedRep::RoutedNeighbors(uint64_t node,
                                                          bool out) const {
  if (!(inner_capabilities_ & api::kNeighborQueries)) {
    return Status::Unimplemented("inner codec '" + inner_name_ +
                                 "' does not answer neighbor queries");
  }
  GREPAIR_RETURN_IF_ERROR(api::CheckNodeId(node, num_nodes_));
  uint64_t result_key = node * 2 + (out ? 1 : 0);
  if (auto memoized = LookupResult(result_key)) {
    stat_hits_.fetch_add(1, std::memory_order_relaxed);
    return *memoized;
  }
  std::vector<uint64_t> all;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    if (entry.rep == nullptr) continue;
    if (!ShardMayContain(entry.nodes, node)) continue;
    NodeId local = LocalId(entry.nodes, node);
    if (local == kInvalidNode) continue;
    auto cached = GetOrDecodeShard(i, 1);
    if (cached != nullptr) {
      stat_hits_.fetch_add(1, std::memory_order_relaxed);
      const auto& list = out ? cached->out[local] : cached->in[local];
      all.insert(all.end(), list.begin(), list.end());
      continue;
    }
    stat_misses_.fetch_add(1, std::memory_order_relaxed);
    auto part = out ? entry.rep->OutNeighbors(local)
                    : entry.rep->InNeighbors(local);
    if (!part.ok()) return part.status();
    for (uint64_t u : part.value()) {
      if (u >= entry.nodes.size()) {
        return Status::Corruption("shard neighbor id out of range");
      }
      all.push_back(entry.nodes[u]);
    }
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  auto value = std::make_shared<std::vector<uint64_t>>(std::move(all));
  StoreResult(result_key, value);
  return *value;
}

Result<std::vector<uint64_t>> ShardedRep::OutNeighbors(uint64_t node) const {
  stat_singles_.fetch_add(1, std::memory_order_relaxed);
  return RoutedNeighbors(node, /*out=*/true);
}

Result<std::vector<uint64_t>> ShardedRep::InNeighbors(uint64_t node) const {
  stat_singles_.fetch_add(1, std::memory_order_relaxed);
  return RoutedNeighbors(node, /*out=*/false);
}

Result<bool> ShardedRep::ReachableImpl(uint64_t from, uint64_t to) const {
  if (!(inner_capabilities_ & api::kNeighborQueries)) {
    return Status::Unimplemented(
        "sharded reachability needs an inner codec with neighbor queries");
  }
  GREPAIR_RETURN_IF_ERROR(api::CheckNodeId(from, num_nodes_));
  GREPAIR_RETURN_IF_ERROR(api::CheckNodeId(to, num_nodes_));
  if (from == to) return true;
  // Cross-shard BFS over routed neighbor queries. The visited set is
  // sized by what the search touches, not by the container's
  // (untrusted, possibly huge) num_nodes header — a |V|-sized bitmap
  // would let a 40-byte crafted container allocate 512 MiB per query.
  std::unordered_set<uint64_t> visited{from};
  std::deque<uint64_t> frontier{from};
  while (!frontier.empty()) {
    uint64_t v = frontier.front();
    frontier.pop_front();
    auto out = RoutedNeighbors(v, /*out=*/true);
    if (!out.ok()) return out.status();
    for (uint64_t u : out.value()) {
      if (u == to) return true;
      if (visited.insert(u).second) frontier.push_back(u);
    }
  }
  return false;
}

Result<bool> ShardedRep::Reachable(uint64_t from, uint64_t to) const {
  stat_singles_.fetch_add(1, std::memory_order_relaxed);
  return ReachableImpl(from, to);
}

Result<std::vector<std::vector<uint64_t>>> ShardedRep::OutNeighborsBatch(
    const std::vector<uint64_t>& nodes) const {
  if (!(inner_capabilities_ & api::kNeighborQueries)) {
    return Status::Unimplemented("inner codec '" + inner_name_ +
                                 "' does not answer neighbor queries");
  }
  for (uint64_t node : nodes) {
    GREPAIR_RETURN_IF_ERROR(api::CheckNodeId(node, num_nodes_));
  }
  stat_batch_calls_.fetch_add(1, std::memory_order_relaxed);
  stat_batch_items_.fetch_add(nodes.size(), std::memory_order_relaxed);

  // Answer each distinct node once; real batch workloads repeat hot
  // nodes, and duplicates are expanded from the unique answers at the
  // end.
  std::vector<uint64_t> uniq(nodes);
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());

  size_t shard_count = entries_.size();
  // Group the unique nodes by owning shard: (unique index, local id)
  // per shard. Vertex-cut shards may share nodes, so one node can
  // appear in several groups.
  std::vector<std::vector<std::pair<size_t, NodeId>>> groups(shard_count);
  std::vector<uint32_t> owner_count(uniq.size(), 0);
  for (size_t u = 0; u < uniq.size(); ++u) {
    for (size_t i = 0; i < shard_count; ++i) {
      if (entries_[i].rep == nullptr) continue;
      if (!ShardMayContain(entries_[i].nodes, uniq[u])) continue;
      NodeId local = LocalId(entries_[i].nodes, uniq[u]);
      if (local != kInvalidNode) {
        groups[i].emplace_back(u, local);
        ++owner_count[u];
      }
    }
  }

  // Per-shard answers, filled by the pool workers into per-shard
  // slots and merged single-threaded afterwards, so the result is
  // byte-identical for every thread count. For shards served from the
  // decoded-neighborhood cache the worker only records the cache
  // handle; the merge reads the lists in place.
  std::vector<std::vector<std::vector<uint64_t>>> partial(shard_count);
  std::vector<std::shared_ptr<const ShardNeighborhoods>> used_cache(
      shard_count);
  std::vector<Status> shard_status(shard_count, Status::OK());
  RunIndexedOnPool(shard_count,
                   query_threads_.load(std::memory_order_relaxed),
                   [&](size_t i) {
    if (groups[i].empty()) return;
    const Entry& entry = entries_[i];
    used_cache[i] = GetOrDecodeShard(i, groups[i].size());
    if (used_cache[i] != nullptr) {
      stat_hits_.fetch_add(groups[i].size(), std::memory_order_relaxed);
      return;
    }
    stat_misses_.fetch_add(groups[i].size(), std::memory_order_relaxed);
    partial[i].resize(groups[i].size());
    for (size_t k = 0; k < groups[i].size(); ++k) {
      auto part = entry.rep->OutNeighbors(groups[i][k].second);
      if (!part.ok()) {
        shard_status[i] = part.status();
        return;
      }
      for (uint64_t u : part.value()) {
        if (u >= entry.nodes.size()) {
          shard_status[i] =
              Status::Corruption("shard neighbor id out of range");
          return;
        }
        // entry.nodes is increasing, so the mapped list stays sorted
        // and deduplicated — single-owner answers need no re-sort.
        partial[i][k].push_back(entry.nodes[u]);
      }
    }
  });
  for (size_t i = 0; i < shard_count; ++i) {
    if (!shard_status[i].ok()) return shard_status[i];
  }

  // Merge the per-shard contributions per unique node (shards in
  // fixed order). Single-owner nodes copy their already-sorted list;
  // only genuinely cut nodes pay a sort + dedup.
  std::vector<std::vector<uint64_t>> uniq_results(uniq.size());
  for (size_t i = 0; i < shard_count; ++i) {
    for (size_t k = 0; k < groups[i].size(); ++k) {
      size_t u = groups[i][k].first;
      const std::vector<uint64_t>& list =
          used_cache[i] != nullptr ? used_cache[i]->out[groups[i][k].second]
                                   : partial[i][k];
      auto& dest = uniq_results[u];
      if (dest.empty()) {
        dest = list;
      } else {
        dest.insert(dest.end(), list.begin(), list.end());
      }
    }
  }
  for (size_t u = 0; u < uniq.size(); ++u) {
    if (owner_count[u] > 1) {
      auto& list = uniq_results[u];
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
    }
  }

  std::vector<std::vector<uint64_t>> results(nodes.size());
  for (size_t j = 0; j < nodes.size(); ++j) {
    size_t u = static_cast<size_t>(
        std::lower_bound(uniq.begin(), uniq.end(), nodes[j]) -
        uniq.begin());
    results[j] = uniq_results[u];
  }
  return results;
}

Result<std::vector<uint8_t>> ShardedRep::ReachableBatch(
    const std::vector<std::pair<uint64_t, uint64_t>>& pairs) const {
  if (!(inner_capabilities_ & api::kNeighborQueries)) {
    return Status::Unimplemented(
        "sharded reachability needs an inner codec with neighbor queries");
  }
  for (const auto& [from, to] : pairs) {
    GREPAIR_RETURN_IF_ERROR(api::CheckNodeId(from, num_nodes_));
    GREPAIR_RETURN_IF_ERROR(api::CheckNodeId(to, num_nodes_));
  }
  stat_batch_calls_.fetch_add(1, std::memory_order_relaxed);
  stat_batch_items_.fetch_add(pairs.size(), std::memory_order_relaxed);

  std::vector<uint8_t> results(pairs.size(), 0);
  std::vector<Status> pair_status(pairs.size(), Status::OK());
  RunIndexedOnPool(pairs.size(),
                   query_threads_.load(std::memory_order_relaxed),
                   [&](size_t k) {
    auto r = ReachableImpl(pairs[k].first, pairs[k].second);
    if (!r.ok()) {
      pair_status[k] = r.status();
      return;
    }
    results[k] = r.value() ? 1 : 0;
  });
  for (size_t k = 0; k < pairs.size(); ++k) {
    if (!pair_status[k].ok()) return pair_status[k];
  }
  return results;
}

api::QueryStats ShardedRep::query_stats() const {
  api::QueryStats stats;
  stats.single_queries = stat_singles_.load(std::memory_order_relaxed);
  stats.batch_calls = stat_batch_calls_.load(std::memory_order_relaxed);
  stats.batch_items = stat_batch_items_.load(std::memory_order_relaxed);
  stats.cache_hits = stat_hits_.load(std::memory_order_relaxed);
  stats.cache_misses = stat_misses_.load(std::memory_order_relaxed);
  stats.shard_decodes = stat_decodes_.load(std::memory_order_relaxed);
  stats.cache_evictions = stat_evictions_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    stats.cache_bytes_used = cache_bytes_used_ + result_bytes_used_;
  }
  // Aggregate the inner reps' memo-table counters (grepair inners
  // build grammar memo tables of their own).
  for (const Entry& entry : entries_) {
    if (entry.rep == nullptr) continue;
    api::QueryStats inner = entry.rep->query_stats();
    stats.memo_entries += inner.memo_entries;
    stats.memo_hits += inner.memo_hits;
  }
  return stats;
}

Result<std::unique_ptr<ShardedRep>> ShardedRep::Deserialize(
    const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 9 ||
      std::memcmp(bytes.data(), kShardContainerMagic, 7) != 0) {
    return Status::Corruption("bad sharded container magic");
  }
  if (bytes[7] != kShardContainerMagic[7]) {
    return Status::Corruption(
        "unsupported sharded container version (expected '1')");
  }
  size_t pos = 8;
  size_t name_len = bytes[pos++];
  if (name_len == 0 || pos + name_len > bytes.size()) {
    return Status::Corruption("sharded container truncated in codec name");
  }
  std::string inner_name(bytes.begin() + pos, bytes.begin() + pos + name_len);
  pos += name_len;
  // The inner name is untrusted: a nested "sharded:*" inner would
  // recurse through this parser once per container level, and a
  // crafted deeply-nested file becomes a stack overflow instead of a
  // Status. Compression never produces nested containers (the
  // registry refuses sharded-of-sharded), so reject them up front.
  if (inner_name.rfind("sharded:", 0) == 0) {
    return Status::Corruption(
        "nested sharded containers are not supported");
  }

  uint64_t num_nodes = 0;
  uint32_t shard_count = 0;
  GREPAIR_RETURN_IF_ERROR(GetU64LE(bytes, &pos, &num_nodes));
  GREPAIR_RETURN_IF_ERROR(GetU32LE(bytes, &pos, &shard_count));
  if (num_nodes > 0xFFFFFFFFull) {
    return Status::Corruption("sharded container node count out of range");
  }
  if (shard_count < 1 || shard_count > kMaxShardCount) {
    return Status::Corruption("sharded container shard count out of range");
  }

  auto inner = api::CodecRegistry::Create(inner_name);
  if (!inner.ok()) return inner.status();

  // Grown per parsed shard (each consumes >= 16 header bytes, so
  // growth is input-bounded) rather than reserved from the untrusted
  // count — a 25-byte container claiming 2^20 shards must not
  // allocate 2^20 Entry slots up front.
  std::vector<Entry> entries;
  for (uint32_t i = 0; i < shard_count; ++i) {
    Entry entry;
    uint64_t node_count = 0;
    GREPAIR_RETURN_IF_ERROR(GetU64LE(bytes, &pos, &node_count));
    GREPAIR_RETURN_IF_ERROR(
        DecodeNodeMap(bytes, &pos, node_count, num_nodes, &entry.nodes));
    uint64_t payload_len = 0;
    GREPAIR_RETURN_IF_ERROR(GetU64LE(bytes, &pos, &payload_len));
    if (payload_len > bytes.size() - pos) {
      return Status::Corruption("sharded container payload truncated");
    }
    if (payload_len > 0) {
      entry.payload.assign(bytes.begin() + pos,
                           bytes.begin() + pos + payload_len);
      pos += payload_len;
      auto rep = inner.value()->Deserialize(entry.payload);
      if (!rep.ok()) return rep.status();
      entry.rep = std::move(rep).ValueOrDie();
      if (entry.rep->num_nodes() != entry.nodes.size()) {
        return Status::Corruption(
            "shard payload node count does not match its node map");
      }
    }
    entries.push_back(std::move(entry));
  }
  if (pos != bytes.size()) {
    return Status::Corruption("sharded container has trailing bytes");
  }
  return std::make_unique<ShardedRep>(inner_name,
                                      inner.value()->capabilities(),
                                      num_nodes, std::move(entries));
}

// ---------------------------------------------------------------------------
// ShardedCodec

ShardedCodec::ShardedCodec(std::string inner_name)
    : inner_name_(std::move(inner_name)), name_("sharded:" + inner_name_) {
  auto inner = api::CodecRegistry::Create(inner_name_);
  if (inner.ok()) inner_ = std::move(inner).ValueOrDie();
}

ShardedCodec::ShardedCodec(std::string inner_name,
                           std::unique_ptr<api::GraphCodec> inner)
    : inner_name_(std::move(inner_name)),
      name_("sharded:" + inner_name_),
      inner_(std::move(inner)) {}

uint32_t ShardedCodec::capabilities() const {
  if (inner_ == nullptr) return 0;
  uint32_t caps = inner_->capabilities();
  // Cross-shard BFS turns inner neighbor queries into reachability.
  if (caps & api::kNeighborQueries) caps |= api::kReachabilityQueries;
  return caps;
}

Result<std::unique_ptr<api::CompressedRep>> ShardedCodec::Compress(
    const Hypergraph& graph, const Alphabet& alphabet,
    const api::CodecOptions& options) const {
  if (inner_name_.size() > 255) {
    // The container stores the name length as one byte; a longer name
    // would serialize into a self-corrupt container.
    return Status::InvalidArgument(
        "inner codec name exceeds 255 bytes: " + inner_name_);
  }
  if (inner_ == nullptr) {
    return Status::NotFound("no codec named '" + inner_name_ + "'");
  }

  PartitionOptions part_options;
  int threads = 0;
  api::CodecOptions inner_options;
  for (const auto& [key, value] : options.entries()) {
    if (key == "shards" || key == "threads" || key == "strategy") continue;
    inner_options.Set(key, value);
  }
  auto shards = options.GetInt("shards", part_options.num_shards);
  if (!shards.ok()) return shards.status();
  if (shards.value() < 1 || shards.value() > kMaxShards) {
    return Status::InvalidArgument("option shards out of range [1, " +
                                   std::to_string(kMaxShards) + "]");
  }
  part_options.num_shards = static_cast<int>(shards.value());
  auto threads_opt = options.GetInt("threads", 0);
  if (!threads_opt.ok()) return threads_opt.status();
  if (threads_opt.value() < 0 || threads_opt.value() > 256) {
    return Status::InvalidArgument("option threads out of range [0, 256]");
  }
  threads = static_cast<int>(threads_opt.value());
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = static_cast<int>(
        std::min<unsigned>(std::max(1u, hw),
                           static_cast<unsigned>(part_options.num_shards)));
  }
  std::string strategy = options.GetString(
      "strategy", PartitionStrategyName(part_options.strategy));
  if (!ParsePartitionStrategy(strategy, &part_options.strategy)) {
    return Status::InvalidArgument("unknown partition strategy '" +
                                   strategy + "' (edge-range|bfs)");
  }

  GREPAIR_RETURN_IF_ERROR(graph.Validate(alphabet));
  auto partition = PartitionGraph(graph, part_options);
  if (!partition.ok()) return partition.status();

  ParallelCompressor compressor(*inner_, threads);
  auto compressed = compressor.CompressShards(partition.value(), alphabet,
                                              inner_options);
  if (!compressed.ok()) return compressed.status();

  std::vector<ShardedRep::Entry> entries;
  entries.reserve(partition.value().shards.size());
  for (size_t i = 0; i < partition.value().shards.size(); ++i) {
    ShardedRep::Entry entry;
    entry.nodes = std::move(partition.value().shards[i].nodes);
    entry.payload = std::move(compressed.value()[i].payload);
    entry.rep = std::move(compressed.value()[i].rep);
    entries.push_back(std::move(entry));
  }
  return std::unique_ptr<api::CompressedRep>(new ShardedRep(
      inner_name_, inner_->capabilities(), graph.num_nodes(),
      std::move(entries)));
}

Result<std::unique_ptr<api::CompressedRep>> ShardedCodec::Deserialize(
    const std::vector<uint8_t>& bytes) const {
  auto rep = ShardedRep::Deserialize(bytes);
  if (!rep.ok()) return rep.status();
  if (rep.value()->inner_name() != inner_name_) {
    return Status::InvalidArgument(
        "container was produced by 'sharded:" + rep.value()->inner_name() +
        "', not '" + name_ + "'");
  }
  return std::unique_ptr<api::CompressedRep>(std::move(rep).ValueOrDie());
}

}  // namespace shard
}  // namespace grepair
