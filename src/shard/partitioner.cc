#include "src/shard/partitioner.h"

#include <algorithm>
#include <cstring>
#include <queue>

namespace grepair {
namespace shard {

namespace {

// Builds one shard from the edges selected for it: collects the
// attached global nodes, renumbers them compactly, and rewrites the
// edges over local IDs. `owned_nodes` (optional, sorted) forces extra
// nodes into the shard even when no selected edge touches them — the
// edge-cut strategy uses it so every node is materialized in its
// owning shard.
Shard BuildShard(const Hypergraph& graph,
                 const std::vector<EdgeId>& edge_ids,
                 std::vector<NodeId> owned_nodes = {}) {
  Shard shard;
  shard.nodes = std::move(owned_nodes);
  for (EdgeId e : edge_ids) {
    const HEdge& edge = graph.edge(e);
    shard.nodes.insert(shard.nodes.end(), edge.att.begin(), edge.att.end());
  }
  std::sort(shard.nodes.begin(), shard.nodes.end());
  shard.nodes.erase(std::unique(shard.nodes.begin(), shard.nodes.end()),
                    shard.nodes.end());
  shard.graph = Hypergraph(static_cast<uint32_t>(shard.nodes.size()));
  for (EdgeId e : edge_ids) {
    const HEdge& edge = graph.edge(e);
    std::vector<NodeId> att;
    att.reserve(edge.att.size());
    for (NodeId v : edge.att) {
      auto it = std::lower_bound(shard.nodes.begin(), shard.nodes.end(), v);
      att.push_back(static_cast<NodeId>(it - shard.nodes.begin()));
    }
    shard.graph.AddEdge(edge.label, std::move(att));
  }
  return shard;
}

GraphPartition PartitionByEdgeRange(const Hypergraph& graph, int num_shards) {
  GraphPartition partition;
  partition.num_nodes = graph.num_nodes();
  uint64_t m = graph.num_edges();
  for (int k = 0; k < num_shards; ++k) {
    uint64_t lo = m * k / num_shards;
    uint64_t hi = m * (k + 1) / num_shards;
    std::vector<EdgeId> edge_ids;
    edge_ids.reserve(hi - lo);
    for (uint64_t e = lo; e < hi; ++e) {
      edge_ids.push_back(static_cast<EdgeId>(e));
    }
    partition.shards.push_back(BuildShard(graph, edge_ids));
  }
  partition.shards.push_back(Shard{});  // empty cut shard
  return partition;
}

GraphPartition PartitionByGreedyBfs(const Hypergraph& graph, int num_shards) {
  uint32_t n = graph.num_nodes();
  // Region capacity ceil(n / num_shards); grow regions by BFS from the
  // lowest unvisited node so the assignment is deterministic.
  uint32_t cap = num_shards > 0
                     ? (n + static_cast<uint32_t>(num_shards) - 1) /
                           static_cast<uint32_t>(num_shards)
                     : n;
  if (cap == 0) cap = 1;
  auto incidence = graph.BuildIncidence();
  std::vector<int> region(n, -1);
  int current = 0;
  uint32_t current_fill = 0;
  std::queue<NodeId> frontier;
  for (NodeId seed = 0; seed < n; ++seed) {
    if (region[seed] != -1) continue;
    frontier.push(seed);
    region[seed] = current;
    ++current_fill;
    while (!frontier.empty()) {
      NodeId v = frontier.front();
      frontier.pop();
      for (EdgeId e : incidence[v]) {
        for (NodeId u : graph.edge(e).att) {
          if (region[u] != -1) continue;
          if (current_fill >= cap && current + 1 < num_shards) {
            // Region full: remaining frontier nodes keep their region,
            // but new nodes start filling the next one.
            ++current;
            current_fill = 0;
          }
          region[u] = current;
          ++current_fill;
          frontier.push(u);
        }
      }
    }
    if (current_fill >= cap && current + 1 < num_shards) {
      ++current;
      current_fill = 0;
    }
  }

  std::vector<std::vector<EdgeId>> shard_edges(num_shards);
  std::vector<EdgeId> cut_edges;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const HEdge& edge = graph.edge(e);
    int r = edge.att.empty() ? 0 : region[edge.att[0]];
    bool internal = true;
    for (NodeId v : edge.att) {
      if (region[v] != r) {
        internal = false;
        break;
      }
    }
    if (internal) {
      shard_edges[r].push_back(e);
    } else {
      cut_edges.push_back(e);
    }
  }

  std::vector<std::vector<NodeId>> owned(num_shards);
  for (NodeId v = 0; v < n; ++v) {
    owned[region[v]].push_back(v);  // ascending v => sorted lists
  }

  GraphPartition partition;
  partition.num_nodes = n;
  for (int k = 0; k < num_shards; ++k) {
    partition.shards.push_back(
        BuildShard(graph, shard_edges[k], std::move(owned[k])));
  }
  partition.num_cut_edges = static_cast<uint32_t>(cut_edges.size());
  partition.shards.push_back(BuildShard(graph, cut_edges));
  return partition;
}

}  // namespace

bool ParsePartitionStrategy(const std::string& name, PartitionStrategy* out) {
  if (name == "edge-range") {
    *out = PartitionStrategy::kEdgeRange;
    return true;
  }
  if (name == "bfs") {
    *out = PartitionStrategy::kGreedyBfs;
    return true;
  }
  return false;
}

const char* PartitionStrategyName(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kEdgeRange: return "edge-range";
    case PartitionStrategy::kGreedyBfs: return "bfs";
  }
  return "?";
}

Result<GraphPartition> PartitionGraph(const Hypergraph& graph,
                                      const PartitionOptions& options) {
  if (options.num_shards < 1 || options.num_shards > kMaxShards) {
    return Status::InvalidArgument(
        "num_shards " + std::to_string(options.num_shards) +
        " out of range [1, " + std::to_string(kMaxShards) + "]");
  }
  if (!graph.ext().empty()) {
    return Status::InvalidArgument(
        "cannot partition a graph with external nodes");
  }
  switch (options.strategy) {
    case PartitionStrategy::kEdgeRange:
      return PartitionByEdgeRange(graph, options.num_shards);
    case PartitionStrategy::kGreedyBfs:
      return PartitionByGreedyBfs(graph, options.num_shards);
  }
  return Status::InvalidArgument("unknown partition strategy");
}

}  // namespace shard
}  // namespace grepair
