// ParallelCompressor: drives any GraphCodec over the shards of a
// GraphPartition with a fixed-size thread pool.
//
// Output is deterministic regardless of thread count or scheduling:
// workers claim shard indices from an atomic counter and write results
// into per-index slots, so shard i's bytes are shard i's bytes whether
// they were produced first or last (the threads=1 vs threads=8
// byte-identity test in tests/parallel_compressor_test.cc pins this).
// GraphCodec::Compress is documented stateless/thread-safe; this class
// is what cashes that promise in.

#ifndef GREPAIR_SHARD_PARALLEL_COMPRESSOR_H_
#define GREPAIR_SHARD_PARALLEL_COMPRESSOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/api/graph_codec.h"
#include "src/shard/partitioner.h"
#include "src/util/status.h"

namespace grepair {
namespace shard {

/// \brief Runs `fn(i)` for every index in [0, count) on up to
/// `threads` workers claiming indices from a shared atomic counter.
/// `fn` must be safe to call concurrently for distinct indices.
/// threads is clamped to [1, 256]; threads <= 1 runs inline.
void RunIndexedOnPool(size_t count, int threads,
                      const std::function<void(size_t)>& fn);

/// \brief One compressed shard: the inner rep plus its serialized
/// payload. Edgeless shards are represented by an empty payload and a
/// null rep (inner codecs never see them).
struct CompressedShard {
  std::vector<uint8_t> payload;
  std::unique_ptr<api::CompressedRep> rep;
};

class ParallelCompressor {
 public:
  /// \brief `inner` must outlive the compressor; `num_threads` is
  /// clamped to [1, 256].
  ParallelCompressor(const api::GraphCodec& inner, int num_threads);

  /// \brief Compresses every shard of `partition` (over `alphabet`,
  /// with `inner_options` forwarded to the inner codec). On any
  /// per-shard failure returns the failing status of the lowest shard
  /// index (deterministic even when several shards fail).
  Result<std::vector<CompressedShard>> CompressShards(
      const GraphPartition& partition, const Alphabet& alphabet,
      const api::CodecOptions& inner_options) const;

  int num_threads() const { return num_threads_; }

 private:
  const api::GraphCodec& inner_;
  int num_threads_;
};

}  // namespace shard
}  // namespace grepair

#endif  // GREPAIR_SHARD_PARALLEL_COMPRESSOR_H_
