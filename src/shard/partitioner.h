// Graph partitioning for sharded compression.
//
// Both strategies split a Hypergraph into `num_shards` edge-disjoint
// subgraphs plus one cut-edge remainder shard (always present, often
// empty), so the downstream ParallelCompressor and ShardedRep treat
// every partition uniformly as K+1 shards:
//
//   * kEdgeRange (vertex-cut): edges are split into num_shards
//     contiguous index ranges. A node appears in every shard whose
//     edge range touches it; the cut shard is empty. Partitioning is
//     O(|E|), and because loaders and generators emit edges in node
//     order, contiguous edge ranges track the graph's natural
//     locality (a DBLP-style version graph splits almost exactly at
//     version boundaries).
//
//   * kGreedyBfs (edge-cut, METIS-style greedy growth): nodes are
//     assigned to num_shards balanced regions by repeated BFS from
//     the lowest unvisited node, capping each region at
//     ceil(|V|/num_shards). An edge whose attachments all land in one
//     region goes to that region's shard; every other edge goes to
//     the cut shard. Each node is owned by exactly one region.
//
// Shard subgraphs are renumbered to compact local IDs (0..n_k-1); the
// sorted global-ID list `nodes` maps local back to global
// (local id == index into `nodes`). Renumbering is what makes
// sharding pay: per-shard node IDs are small again, so the inner
// codec's delta codes stay short.

#ifndef GREPAIR_SHARD_PARTITIONER_H_
#define GREPAIR_SHARD_PARTITIONER_H_

#include <string>
#include <vector>

#include "src/graph/hypergraph.h"
#include "src/util/status.h"

namespace grepair {
namespace shard {

/// \brief Upper bound on num_shards, shared by PartitionGraph, the
/// sharded container parser (which allows one extra cut shard), and
/// the CLI flag validation — one constant so they cannot drift.
inline constexpr int kMaxShards = 1 << 20;

enum class PartitionStrategy {
  kEdgeRange,
  kGreedyBfs,
};

/// \brief Parses "edge-range" / "bfs"; false on unknown names.
bool ParsePartitionStrategy(const std::string& name, PartitionStrategy* out);

/// \brief Canonical CLI name of `strategy`.
const char* PartitionStrategyName(PartitionStrategy strategy);

struct PartitionOptions {
  int num_shards = 4;
  PartitionStrategy strategy = PartitionStrategy::kEdgeRange;
};

/// \brief One shard: a compact-ID subgraph plus its global node list.
struct Shard {
  /// Sorted global node IDs; local node i is global nodes[i].
  std::vector<NodeId> nodes;
  /// Subgraph over local IDs (num_nodes() == nodes.size()).
  Hypergraph graph;
};

/// \brief A partition: num_shards data shards followed by the cut
/// shard (shards.back(), possibly edgeless). Every input edge appears
/// in exactly one shard.
struct GraphPartition {
  uint32_t num_nodes = 0;  ///< global node count
  std::vector<Shard> shards;
  uint32_t num_cut_edges = 0;  ///< edges in the cut shard

  const Shard& cut_shard() const { return shards.back(); }
};

/// \brief Partitions `graph` per `options`. The graph must have no
/// external nodes (rank 0); num_shards must be in [1, 1 << 20].
/// Deterministic: equal inputs yield equal partitions.
Result<GraphPartition> PartitionGraph(const Hypergraph& graph,
                                      const PartitionOptions& options);

}  // namespace shard
}  // namespace grepair

#endif  // GREPAIR_SHARD_PARTITIONER_H_
