// Sharded meta-codec: compresses a graph as K+1 independently
// compressed shards behind the same GraphCodec/CompressedRep API as
// every single-shard codec.
//
// Registry names are "sharded:<inner>" ("sharded:grepair",
// "sharded:k2", ...); the sharded variants of all builtins are
// registered, and CodecRegistry::Create additionally resolves the
// prefix for any other registered inner codec. Options:
//
//   shards=K        number of data shards (default 4)
//   threads=T       compression thread-pool size (default: min(K, hw))
//   strategy=S      edge-range | bfs (default edge-range)
//   <anything else> forwarded to the inner codec
//
// Container layout (version 1, little-endian, pinned by golden tests
// in tests/container_format_test.cc — bump the magic to change it):
//
//   magic   "GRSHARD1"                        8 bytes
//   u8      inner codec name length (> 0)
//   bytes   inner codec name
//   u64     global node count
//   u32     shard count (K data shards + 1 cut shard)
//   per shard:
//     u64   node-map length n_k
//     bits  Elias-delta node map: first global id + 1, then gaps
//           (strictly increasing), zero-padded to a byte boundary
//     u64   payload length (0 = edgeless shard, no inner payload)
//     bytes inner codec payload (inner CompressedRep::Serialize())
//
// Queries route through the node maps: a global node is looked up in
// every shard that contains it (vertex-cut shards may share nodes) and
// the cut shard, results are mapped back to global IDs and merged.
// Reachability is a BFS over the routed neighbor queries, so it works
// across shard boundaries and is available whenever the inner codec
// answers neighbor queries.
//
// Query caching: each rep carries a bounded LRU cache of *decoded
// shard neighborhoods* — a shard's full out/in adjacency in global
// ids, materialized once from the inner rep. Batch queries decode
// every shard they touch densely enough (amortizing the decode over
// the batch) and fan out over the compression thread pool
// (set_query_threads); single queries fall back to grammar-direct
// routing but promote a shard into the cache after repeated misses.
// The budget (set_query_cache_bytes, 0 = disabled) evicts whole
// shards, least-recently-used first. Cached answers are byte-identical
// to uncached ones and the cache never serializes.

#ifndef GREPAIR_SHARD_SHARDED_CODEC_H_
#define GREPAIR_SHARD_SHARDED_CODEC_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/api/graph_codec.h"
#include "src/graph/hypergraph.h"
#include "src/util/status.h"

namespace grepair {
namespace shard {

/// \brief The 8-byte sharded-container magic ("GRSHARD1").
extern const char kShardContainerMagic[8];

/// \brief Default byte budget of the per-shard query cache.
inline constexpr size_t kDefaultQueryCacheBytes = 64ull << 20;

/// \brief Multi-shard compressed representation (container format
/// above). Implements the full CompressedRep query surface by routing
/// to the owning shards.
class ShardedRep : public api::CompressedRep {
 public:
  struct Entry {
    std::vector<NodeId> nodes;          ///< sorted global IDs
    std::vector<uint8_t> payload;       ///< inner bytes; empty = edgeless
    std::unique_ptr<api::CompressedRep> rep;  ///< null iff payload empty
  };

  ShardedRep(std::string inner_name, uint32_t inner_capabilities,
             uint64_t num_nodes, std::vector<Entry> entries);

  std::vector<uint8_t> Serialize() const override;
  size_t ByteSize() const override;
  Result<Hypergraph> Decompress() const override;
  uint64_t num_nodes() const override { return num_nodes_; }

  Result<std::vector<uint64_t>> OutNeighbors(uint64_t node) const override;
  Result<std::vector<uint64_t>> InNeighbors(uint64_t node) const override;
  Result<bool> Reachable(uint64_t from, uint64_t to) const override;

  /// \brief Batch neighbor queries: nodes grouped by owning shard,
  /// shards decoded into the cache where the batch amortizes it, work
  /// fanned out over the query thread pool. Result order follows the
  /// input order and is identical for every thread count.
  Result<std::vector<std::vector<uint64_t>>> OutNeighborsBatch(
      const std::vector<uint64_t>& nodes) const override;

  /// \brief Batch reachability: pairs fanned out over the query
  /// thread pool (each BFS shares the shard cache). Deterministic
  /// result order; on failures the lowest pair index's status wins.
  Result<std::vector<uint8_t>> ReachableBatch(
      const std::vector<std::pair<uint64_t, uint64_t>>& pairs)
      const override;

  api::QueryStats query_stats() const override;

  /// \brief Parses a version-1 container and reconstructs every inner
  /// rep through the registry. Clean kCorruption on truncated or
  /// inconsistent input.
  static Result<std::unique_ptr<ShardedRep>> Deserialize(
      const std::vector<uint8_t>& bytes);

  /// \brief Thread-pool size for Decompress (default 1; the CLI's
  /// `decompress --threads` sets it).
  void set_decompress_threads(int threads);

  /// \brief Thread-pool size for batch queries (default 1, clamped to
  /// [1, 256]).
  void set_query_threads(int threads);

  /// \brief Byte budget of the decoded-neighborhood cache; 0 disables
  /// caching entirely (every query routes to the inner reps).
  void set_query_cache_bytes(size_t bytes);
  size_t query_cache_bytes() const {
    return cache_bytes_limit_.load(std::memory_order_relaxed);
  }

  const std::string& inner_name() const { return inner_name_; }
  size_t num_shards() const { return entries_.size(); }
  const Entry& entry(size_t i) const { return entries_[i]; }

  /// \brief A shard's decoded adjacency: per local node the sorted
  /// global-id out/in neighbor contributions of this shard. Immutable
  /// once built; defined in the .cc (implementation detail).
  struct ShardNeighborhoods;

 private:
  Result<std::vector<uint64_t>> RoutedNeighbors(uint64_t node,
                                                bool out) const;
  Result<bool> ReachableImpl(uint64_t from, uint64_t to) const;

  /// Cache lookup; on miss, charges `pending` queries against the
  /// shard's miss budget and decodes the whole shard once the batch
  /// (or accumulated single-query misses) amortizes it. Returns null
  /// when caching is disabled, the decode is not yet worth it, or the
  /// decode failed (callers then fall back to per-node routing).
  std::shared_ptr<const ShardNeighborhoods> GetOrDecodeShard(
      size_t shard, size_t pending) const;

  std::string inner_name_;
  uint32_t inner_capabilities_ = 0;
  uint64_t num_nodes_ = 0;
  std::vector<Entry> entries_;  // K data shards, then the cut shard
  int decompress_threads_ = 1;
  // Atomics: the knobs may be retuned while queries are in flight on
  // other threads (query_stats()/monitoring alongside batches).
  std::atomic<int> query_threads_{1};
  std::atomic<size_t> cache_bytes_limit_{kDefaultQueryCacheBytes};

  /// Tier-1 node-result cache: merged, sorted answers of single
  /// queries keyed by (node, direction). Shares the byte budget with
  /// the shard tier; LRU within the tier.
  struct ResultEntry {
    std::list<uint64_t>::iterator lru_it;
    std::shared_ptr<const std::vector<uint64_t>> value;
    size_t bytes = 0;
  };

  std::shared_ptr<const std::vector<uint64_t>> LookupResult(
      uint64_t key) const;
  void StoreResult(uint64_t key,
                   std::shared_ptr<const std::vector<uint64_t>> value) const;

  /// LRU eviction down to `target` bytes per tier; cache_mutex_ held.
  void EvictShardsLocked(size_t target) const;
  void EvictResultsLocked(size_t target) const;

  // Cache state: one decoded-neighborhood slot per shard plus LRU
  // stamps, and the node-result LRU map, all guarded by cache_mutex_;
  // the pointed-to data is immutable, so readers only hold the lock
  // for the lookup.
  mutable std::mutex cache_mutex_;
  mutable std::vector<std::shared_ptr<const ShardNeighborhoods>>
      cache_slots_;
  mutable std::vector<uint64_t> cache_last_use_;
  mutable std::vector<uint32_t> cache_miss_credit_;
  mutable uint64_t cache_tick_ = 0;
  mutable size_t cache_bytes_used_ = 0;
  mutable std::list<uint64_t> result_lru_;  // most recent first
  mutable std::unordered_map<uint64_t, ResultEntry> results_;
  mutable size_t result_bytes_used_ = 0;

  mutable std::atomic<uint64_t> stat_singles_{0};
  mutable std::atomic<uint64_t> stat_batch_calls_{0};
  mutable std::atomic<uint64_t> stat_batch_items_{0};
  mutable std::atomic<uint64_t> stat_hits_{0};
  mutable std::atomic<uint64_t> stat_misses_{0};
  mutable std::atomic<uint64_t> stat_decodes_{0};
  mutable std::atomic<uint64_t> stat_evictions_{0};
};

/// \brief The "sharded:<inner>" meta-codec.
class ShardedCodec : public api::GraphCodec {
 public:
  /// \brief Resolves `inner_name` through the registry once; an
  /// unknown name yields a codec whose capabilities() are 0 and whose
  /// Compress/Deserialize return the lookup error.
  explicit ShardedCodec(std::string inner_name);

  /// \brief Wraps an already-constructed inner codec (the registry's
  /// prefix-resolution path, which has just created it anyway).
  ShardedCodec(std::string inner_name,
               std::unique_ptr<api::GraphCodec> inner);

  const char* name() const override { return name_.c_str(); }
  uint32_t capabilities() const override;

  Result<std::unique_ptr<api::CompressedRep>> Compress(
      const Hypergraph& graph, const Alphabet& alphabet,
      const api::CodecOptions& options) const override;

  Result<std::unique_ptr<api::CompressedRep>> Deserialize(
      const std::vector<uint8_t>& bytes) const override;

 private:
  std::string inner_name_;
  std::string name_;  // "sharded:" + inner_name_
  std::unique_ptr<api::GraphCodec> inner_;  // null if inner_name_ unknown
};

}  // namespace shard
}  // namespace grepair

#endif  // GREPAIR_SHARD_SHARDED_CODEC_H_
