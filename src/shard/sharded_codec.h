// Sharded meta-codec: compresses a graph as K+1 independently
// compressed shards behind the same GraphCodec/CompressedRep API as
// every single-shard codec.
//
// Registry names are "sharded:<inner>" ("sharded:grepair",
// "sharded:k2", ...); the sharded variants of all builtins are
// registered, and CodecRegistry::Create additionally resolves the
// prefix for any other registered inner codec. Options:
//
//   shards=K        number of data shards (default 4)
//   threads=T       compression thread-pool size (default: min(K, hw))
//   strategy=S      edge-range | bfs (default edge-range)
//   <anything else> forwarded to the inner codec
//
// Container layouts. Version 1 ("GRSHARD1", little-endian, pinned by
// golden tests in tests/container_format_test.cc — bump the magic to
// change it) interleaves node maps and payloads and is parsed eagerly:
//
//   magic   "GRSHARD1"                        8 bytes
//   u8      inner codec name length (> 0)
//   bytes   inner codec name
//   u64     global node count
//   u32     shard count (K data shards + 1 cut shard)
//   per shard:
//     u64   node-map length n_k
//     bits  Elias-delta node map: first global id + 1, then gaps
//           (strictly increasing), zero-padded to a byte boundary
//     u64   payload length (0 = edgeless shard, no inner payload)
//     bytes inner codec payload (inner CompressedRep::Serialize())
//
// Version 2 ("GRSHARD2") is the zero-copy layout: shard payloads sit
// back-to-back after the magic, and a footer directory of per-shard
// {offset, length, checksum, node map} plus a checksummed trailer lets
// Open() map the file and materialize shards lazily on first touch —
// opening a 16-shard container costs a directory parse, not 16 inner
// deserializations (see src/shard/README.md for the exact layout).
// Serialize() always emits version 1 (the byte-stable interchange
// form); SerializeV2() emits the footer form the CLI writes by
// default for sharded backends.
//
// Queries route through the node maps: a global node is looked up in
// every shard that contains it (vertex-cut shards may share nodes) and
// the cut shard, results are mapped back to global IDs and merged.
// Reachability is a BFS over the routed neighbor queries, so it works
// across shard boundaries and is available whenever the inner codec
// answers neighbor queries.
//
// Lazy shards and prefetch: a rep opened from a v2 container holds
// borrowed payload views into the backing store (an MmapFile or an
// owned buffer) and faults each shard's inner rep in on first touch —
// checksum-verified, guarded by a per-shard mutex, counted in
// QueryStats::shard_faults. set_prefetch_threads() starts a background
// pool that warms shards ahead of demand (batch queries enqueue the
// shards they are about to touch; Prefetch/PrefetchAll warm
// explicitly); answers are byte-identical with or without prefetch.
//
// Where a faulting shard's bytes come from is the ShardSource seam
// (below): the local backing store and the remote TCP client
// (src/net/) implement the same interface, so a rep opened via
// api::OpenRemote faults shards across the network through exactly
// this machinery — same verification, same caches, same stats.
//
// Query caching: each rep carries a bounded LRU cache of *decoded
// shard neighborhoods* — a shard's full out/in adjacency in global
// ids, materialized once from the inner rep. Batch queries decode
// every shard they touch densely enough (amortizing the decode over
// the batch) and fan out over the compression thread pool
// (set_query_threads); single queries fall back to grammar-direct
// routing but promote a shard into the cache after repeated misses.
// The budget (set_query_cache_bytes, 0 = disabled) evicts whole
// decoded shards, least-recently-used first; the next touch of an
// evicted shard re-decodes it from the resident inner rep. Faulted
// inner reps themselves (compressed-size, not decoded-size) are
// retained for the rep's lifetime — the byte budget governs the
// decoded tier, not the compressed one. Cached answers are
// byte-identical to uncached ones and the cache never serializes.

#ifndef GREPAIR_SHARD_SHARDED_CODEC_H_
#define GREPAIR_SHARD_SHARDED_CODEC_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/api/graph_codec.h"
#include "src/graph/hypergraph.h"
#include "src/shard/delta_overlay.h"
#include "src/util/byte_io.h"
#include "src/util/mmap_file.h"
#include "src/util/status.h"
#include "src/util/sync.h"

namespace grepair {
namespace shard {

/// \brief The 8-byte sharded-container magics (version byte last).
extern const char kShardContainerMagic[8];    ///< "GRSHARD1" (eager)
extern const char kShardContainerMagicV2[8];  ///< "GRSHARD2" (lazy/footer)

/// \brief Default byte budget of the per-shard query cache.
inline constexpr size_t kDefaultQueryCacheBytes = 64ull << 20;

/// \brief Default overlay byte budget: once a rep's resident delta
/// overlay outgrows this, ApplyEdits folds eligible edits back into
/// their shards' inner grammars (background recompression).
inline constexpr uint64_t kDefaultOverlayBudgetBytes = 1ull << 20;

/// \brief Where a lazy ShardedRep's payload bytes come from — the
/// seam the local mmap backing store, the remote TCP client
/// (net::RemoteShardSource) and any future tiered backend implement.
/// A rep holds exactly one source for its lifetime; the source owns
/// (or pins) whatever storage its returned spans borrow from.
class ShardSource {
 public:
  virtual ~ShardSource() = default;

  /// \brief Human-readable backend kind ("local-mmap", "local-heap",
  /// "remote") for the CLI and logs.
  virtual const char* kind() const = 0;

  /// \brief Fetches shard `shard`'s payload bytes. Sources that must
  /// materialize a copy (remote) place it in *owned and return a view
  /// of it; sources whose storage outlives the rep (local mmap)
  /// return a borrowed view and leave *owned untouched. Must be safe
  /// to call concurrently for distinct shards (the caller serializes
  /// per-shard). Checksum verification stays with the caller
  /// (ShardedRep), so every source gets it for free.
  virtual Result<ByteSpan> FetchShard(size_t shard,
                                      std::vector<uint8_t>* owned) = 0;

  /// \brief Readahead hint for one shard's payload (MADV_WILLNEED on
  /// mapped sources). Returns the number of bytes hinted (0 = no-op);
  /// the rep accumulates this into QueryStats::bytes_hinted.
  virtual uint64_t AdviseShard(size_t shard) {
    (void)shard;
    return 0;
  }

  /// \brief Whole-container sequential-access hint (MADV_SEQUENTIAL
  /// on mapped sources, ahead of a full Decompress walk). Returns
  /// bytes hinted.
  virtual uint64_t AdviseSequential() { return 0; }

  /// \brief Undoes AdviseSequential once the walk is done
  /// (MADV_NORMAL), so a long-lived mapping returns to the default
  /// readahead that random point-query faults want. Returns bytes
  /// covered.
  virtual uint64_t AdviseNormal() { return 0; }

  /// \brief Pins shard `shard`'s payload resident (mlock on mapped
  /// sources; layered sources forward to their inner). Returns the
  /// bytes this pin reserves against a placement budget — 0 when the
  /// source has no local bytes to pin (remote). The mlock itself is
  /// best-effort (RLIMIT_MEMLOCK), so the return value is the
  /// *coverage*, what budget accounting needs, not a lock guarantee.
  virtual uint64_t PinShard(size_t shard) {
    (void)shard;
    return 0;
  }

  /// \brief Releases a PinShard; returns the bytes released.
  virtual uint64_t UnpinShard(size_t shard) {
    (void)shard;
    return 0;
  }

  /// \brief Batched warm-up of `shards`' payload bytes ahead of their
  /// faults: sources with a local backing file read every payload in
  /// one io_uring submission round (util::IoEngine), populating the
  /// page cache the subsequent faults hit. Returns the number of
  /// io_uring batches submitted (0 = fallback or nothing to do); the
  /// rep accumulates this into QueryStats::uring_batches. The default
  /// is a no-op — per-shard AdviseShard hints already cover sources
  /// without a batched path.
  virtual uint64_t WarmShards(const std::vector<size_t>& shards) {
    (void)shards;
    return 0;
  }

  /// \brief Folds this source's own counters (network fetches, pool
  /// dials, cache tiers) into *stats. Local sources are free: the
  /// default is a no-op. Layered sources (TieredShardSource) forward
  /// to their inner source so the whole stack reports through one
  /// call. Must be safe to call concurrently with FetchShard.
  virtual void AddStats(api::QueryStats* stats) const { (void)stats; }
};

/// \brief Directory metadata of one shard inside a container, as
/// reported by ShardedRep::Inspect (the CLI's `info` subcommand).
struct ShardDirEntry {
  uint64_t offset = 0;      ///< payload offset from container start
  uint64_t length = 0;      ///< payload byte length (0 = edgeless)
  uint64_t checksum = 0;    ///< payload checksum (v2; 0 in v1)
  uint64_t node_count = 0;  ///< node-map length n_k
};

/// \brief Whole-container directory metadata (no shard is decoded to
/// produce this — Inspect reads headers and the v2 footer only).
struct ShardContainerInfo {
  int version = 0;  ///< 1 or 2
  std::string inner_name;
  uint64_t num_nodes = 0;
  std::vector<ShardDirEntry> shards;
};

/// \brief A fully parsed GRSHARD2 footer directory: everything a lazy
/// rep needs except the payload bytes themselves. This is the unit
/// the shard server ships to remote clients (as the verbatim
/// directory byte region), so the network path reuses exactly the
/// hardened parser the file path uses.
struct ParsedDirectory {
  std::string inner_name;
  uint64_t num_nodes = 0;
  std::vector<ShardDirEntry> rows;
  std::vector<std::vector<NodeId>> node_maps;  ///< rows.size() entries
  /// Checksum of the raw directory bytes (the v2 trailer's value; a
  /// remote client recomputes it over the shipped region). This is a
  /// corpus *version identity*: GRSHARD3 deltas bind to it, and the
  /// serve tier compares it before trusting a persisted sidecar.
  uint64_t dir_checksum = 0;
};

/// \brief Locates the checksummed footer directory of a GRSHARD2
/// container: validates the magic, the trailer, and the directory
/// checksum, and returns the raw directory byte region. *dir_off
/// receives the region's offset inside the container.
Result<ByteSpan> LocateV2DirectoryRegion(ByteSpan container,
                                         uint64_t* dir_off);

/// \brief Parses raw GRSHARD2 directory bytes (the region
/// LocateV2DirectoryRegion returns) with full untrusted-input
/// hardening: shard/node-count bounds, node-map range checks, payload
/// ranges confined to [8, dir_off), no trailing bytes. `dir_off` is
/// the directory's offset inside its container (remote clients pass
/// the server-reported value; they never dereference the offsets).
Result<ParsedDirectory> ParseV2Directory(ByteSpan dir, uint64_t dir_off);

/// \brief Multi-shard compressed representation (container formats
/// above). Implements the full CompressedRep query surface by routing
/// to the owning shards; shards may be eager (v1, Compress) or lazy
/// (v2), and every query path faults lazy shards in transparently.
class ShardedRep : public api::CompressedRep {
 public:
  struct Entry {
    std::vector<NodeId> nodes;     ///< sorted global IDs
    std::vector<uint8_t> payload;  ///< owned inner bytes (eager path)
    ByteSpan view;       ///< borrowed inner bytes (lazy path); the rep
                         ///< pins the backing store (source) alive
    uint64_t length = 0;    ///< directory payload length for shards
                            ///< whose bytes live behind the source
                            ///< only (remote); 0 when resident/edgeless
    uint64_t checksum = 0;  ///< v2 payload checksum, verified at fault
    std::unique_ptr<api::CompressedRep> rep;  ///< eager rep; null when
                                              ///< lazy or edgeless

    /// \brief The locally resident payload bytes (empty for
    /// source-only shards, whose bytes are fetched at fault time).
    ByteSpan payload_bytes() const {
      return view.data != nullptr ? view
                                  : ByteSpan(payload.data(), payload.size());
    }
    /// \brief Byte length regardless of residency (the directory
    /// length for source-only shards).
    uint64_t payload_length() const {
      ByteSpan resident = payload_bytes();
      return resident.size != 0 ? resident.size : length;
    }
    bool has_payload() const { return payload_length() != 0; }
  };

  ShardedRep(std::string inner_name, uint32_t inner_capabilities,
             uint64_t num_nodes, std::vector<Entry> entries);
  ~ShardedRep() override;

  /// \brief Always emits the version-1 container (the byte-stable
  /// interchange form; golden-pinned). Works on lazy reps without
  /// faulting anything — payload bytes are copied straight out of the
  /// backing store. Shards whose bytes are not locally resident
  /// (remote sources) are fetched and checksum-verified through the
  /// source; if any fetch fails the result is an empty vector, which
  /// never parses as a container, so failure stays closed.
  std::vector<uint8_t> Serialize() const override;

  /// \brief Emits the version-2 footer-directory container (payload
  /// blobs, then directory with per-shard offset/length/checksum/node
  /// map, then a checksummed trailer). Deterministic; never faults.
  /// Same remote-fetch contract as Serialize().
  std::vector<uint8_t> SerializeV2() const;

  size_t ByteSize() const override;
  Result<Hypergraph> Decompress() const override;

  /// \brief Node count including nodes created by overlay adds (equal
  /// to the base container's count until an edit references a fresh
  /// id; never shrinks — deletes kill edges, not nodes).
  uint64_t num_nodes() const override {
    return total_nodes_.load(std::memory_order_acquire);
  }

  Result<std::vector<uint64_t>> OutNeighbors(uint64_t node) const override;
  Result<std::vector<uint64_t>> InNeighbors(uint64_t node) const override;
  Result<bool> Reachable(uint64_t from, uint64_t to) const override;

  /// \brief Batch neighbor queries: nodes grouped by owning shard,
  /// shards decoded into the cache where the batch amortizes it, work
  /// fanned out over the query thread pool (un-faulted shards the
  /// batch touches are handed to the prefetch pool first when one is
  /// running). Result order follows the input order and is identical
  /// for every thread count.
  Result<std::vector<std::vector<uint64_t>>> OutNeighborsBatch(
      const std::vector<uint64_t>& nodes) const override;

  /// \brief Batch reachability: pairs fanned out over the query
  /// thread pool (each BFS shares the shard cache). Deterministic
  /// result order; on failures the lowest pair index's status wins.
  Result<std::vector<uint8_t>> ReachableBatch(
      const std::vector<std::pair<uint64_t, uint64_t>>& pairs)
      const override;

  api::QueryStats query_stats() const override;

  /// \brief Parses a version-1 or version-2 container. Version 1
  /// reconstructs every inner rep eagerly through the registry;
  /// version 2 copies the bytes into an owned backing store and
  /// materializes shards lazily. Clean kCorruption on truncated or
  /// inconsistent input.
  static Result<std::unique_ptr<ShardedRep>> Deserialize(
      const std::vector<uint8_t>& bytes);

  /// \brief Span overload: v1 parses in place; v2 copies the span
  /// once into an owned backing store and opens lazily over it.
  static Result<std::unique_ptr<ShardedRep>> Deserialize(ByteSpan bytes);

  /// \brief Zero-copy open: `bytes` must be a view into `file`'s
  /// mapping (e.g. the payload of a backend-tagged frame). A v2
  /// container is opened in O(directory) time — shard payloads stay
  /// borrowed windows into the map until first touch — and `file` is
  /// retained for the rep's lifetime. A v1 container is parsed eagerly
  /// (it has no directory to seek by).
  static Result<std::unique_ptr<ShardedRep>> Open(
      std::shared_ptr<MmapFile> file, ByteSpan bytes);

  /// \brief Reads a container's directory — version, inner codec,
  /// node/shard counts, per-shard offsets/lengths/checksums — without
  /// constructing a single inner rep (v2 reads only the footer; v1 is
  /// a header scan).
  static Result<ShardContainerInfo> Inspect(ByteSpan bytes);

  /// \brief Opens a lazy rep over an arbitrary payload source: shard
  /// metadata comes from `dir` (a parsed GRSHARD2 directory — local
  /// file or fetched over the network), and each shard's bytes are
  /// pulled from `source` on first touch, checksum-verified against
  /// the directory like any other fault. This is how a remote
  /// container plugs in behind the existing lazy-fault machinery.
  static Result<std::unique_ptr<ShardedRep>> OpenFromSource(
      std::shared_ptr<ShardSource> source, ParsedDirectory dir);

  /// \brief Thread-pool size for Decompress (default 1; the CLI's
  /// `decompress --threads` sets it).
  void set_decompress_threads(int threads);

  /// \brief Thread-pool size for batch queries (default 1, clamped to
  /// [1, 256]).
  void set_query_threads(int threads);

  /// \brief Starts (or resizes, or with 0 stops) the background shard
  /// prefetch pool. Workers fault queued shards' inner reps so
  /// foreground queries find them resident; safe to toggle while
  /// queries run.
  void set_prefetch_threads(int threads);

  /// \brief Queues `shards` (indices) for background warming; faults
  /// inline when no pool is running. Out-of-range indices are ignored.
  void Prefetch(const std::vector<size_t>& shards) const;

  /// \brief Queues every shard with a payload.
  void PrefetchAll() const;

  /// \brief Blocks until the prefetch queue is drained (test/bench
  /// hook; no-op without a pool).
  void WaitForPrefetch() const;

  /// \brief What ApplyPlacement selected (surfaces in QueryStats as
  /// shards_pinned / pinned_bytes).
  struct PinOutcome {
    uint64_t shards_pinned = 0;
    uint64_t pinned_bytes = 0;
  };

  /// \brief Applies a placement: walks `ranked` (shard indices, hot
  /// first — PlacementController::RankByHeat produces it from a hit
  /// histogram) and pins each shard's payload through the source
  /// while the cumulative payload bytes fit `budget_bytes`; shards
  /// pinned by an earlier call that fell out of the new ranking are
  /// unpinned. Idempotent, safe to call while queries run, byte
  /// accounting is deterministic even where mlock itself is refused
  /// (see ShardSource::PinShard). Out-of-range indices are ignored.
  PinOutcome ApplyPlacement(const std::vector<size_t>& ranked,
                            uint64_t budget_bytes) const
      GREPAIR_LOCKS_EXCLUDED(pin_mutex_);

  // --- Mutable-corpus surface (delta overlays, folds, GRSHARD3) ---

  /// \brief Applies `edits` (in order) to this rep's delta overlay.
  /// Queries issued after this returns see the mutated corpus; the
  /// node-result memo is flushed (shard caches stay — they hold base
  /// data the overlay merges over). When the overlay's ByteSize
  /// exceeds the fold budget, eligible edits are folded back into
  /// their shards' inner grammars before returning (see FoldOverlay).
  /// Adds may reference fresh node ids (num_nodes grows); a self-loop
  /// add is kInvalidArgument. Safe to call concurrently with queries;
  /// concurrent ApplyEdits calls serialize on the overlay lock.
  Status ApplyEdits(const std::vector<EdgeEdit>& edits);

  /// \brief Folds every eligible overlay edit into its owning shard's
  /// inner grammar: the shard is decompressed, mutated, recompressed
  /// through the inner codec on the compression thread pool, and the
  /// new payload swapped in under the per-shard fault mutexes. An edit
  /// is eligible when its endpoints resolve into base shards — a kill
  /// needs a *unique* shard containing both endpoints (parallel node
  /// copies elsewhere would resurface the edge), an add needs any
  /// shard containing both and no residual kill of its pair. Edits
  /// that stay behind (fresh-node adds, multi-shard kills) remain in
  /// the residual overlay; answers are identical before and after.
  /// Purely in-memory and crash-safe by construction: the base
  /// container file is never touched. A shard whose recompression
  /// fails keeps its edits residual (fail-soft, never lossy).
  Status FoldOverlay();

  /// \brief Fold budget for ApplyEdits' automatic folding (bytes of
  /// resident overlay; default kDefaultOverlayBudgetBytes, ~0ull
  /// disables automatic folds).
  void set_overlay_budget_bytes(uint64_t bytes) {
    overlay_budget_bytes_.store(bytes, std::memory_order_relaxed);
  }
  uint64_t overlay_budget_bytes() const {
    return overlay_budget_bytes_.load(std::memory_order_relaxed);
  }

  /// \brief Current resident overlay (never null; empty when clean).
  std::shared_ptr<const DeltaOverlay> overlay_snapshot() const
      GREPAIR_LOCKS_EXCLUDED(overlay_mu_);

  /// \brief The base container's directory checksum (v2 trailer value
  /// or its remote recomputation); 0 for v1/eager reps, which cannot
  /// anchor deltas.
  uint64_t directory_checksum() const { return directory_checksum_; }

  /// \brief Installs a decoded GRSHARD3 delta: verifies it binds to
  /// this base (directory checksum), swaps in the changed shards'
  /// payloads (re-verified, eagerly deserialized through the inner
  /// codec) and replaces the overlay with the delta's residual runs.
  /// Deltas are cumulative, so applying a chain in order or only its
  /// newest link yields the same corpus. kInvalidArgument on an eager
  /// (v1) base, kCorruption on any mismatch — fail closed.
  Status ApplyDelta(const DeltaContainer& delta);

  /// \brief Emits this rep's current edits as a GRSHARD3 delta
  /// container body: all folded shards plus the full residual overlay.
  /// `base_hash`/`base_size` identify the previous file in the chain
  /// (callers hash it; this rep cannot know which file it came from).
  Result<DeltaContainer> BuildDelta(uint64_t base_hash,
                                    uint64_t base_size) const
      GREPAIR_LOCKS_EXCLUDED(overlay_mu_);

  /// \brief Byte budget of the decoded-neighborhood cache; 0 disables
  /// caching entirely (every query routes to the inner reps).
  void set_query_cache_bytes(size_t bytes);
  size_t query_cache_bytes() const {
    return cache_bytes_limit_.load(std::memory_order_relaxed);
  }

  const std::string& inner_name() const { return inner_name_; }
  size_t num_shards() const { return entries_.size(); }
  const Entry& entry(size_t i) const { return entries_[i]; }

  /// \brief True when this rep materializes shards on first touch
  /// (opened from a v2 container or a remote source) rather than
  /// holding them decoded.
  bool is_lazy() const { return inner_codec_ != nullptr; }

  /// \brief The payload source's kind ("local-mmap", "local-heap",
  /// "remote"), or "resident" for eager reps with no source.
  const char* source_kind() const {
    return source_ != nullptr ? source_->kind() : "resident";
  }

  /// \brief A shard's decoded adjacency: per local node the sorted
  /// global-id out/in neighbor contributions of this shard. Immutable
  /// once built; defined in the .cc (implementation detail).
  struct ShardNeighborhoods;

 private:
  class Prefetcher;

  Result<std::vector<uint64_t>> RoutedNeighbors(uint64_t node,
                                                bool out) const;
  Result<bool> ReachableImpl(uint64_t from, uint64_t to) const;

  /// The shard's inner rep, faulting it in (checksum-verified, mutex
  /// per shard) when lazy. nullptr value = edgeless shard. `faulted`
  /// (optional) reports whether this call performed the
  /// materialization.
  Result<const api::CompressedRep*> ShardRepFor(size_t shard,
                                                bool* faulted = nullptr)
      const;

  /// Shard `shard`'s payload bytes, checksum-verified: the resident
  /// view/buffer when there is one, otherwise a source fetch into
  /// *owned (counted in the remote-fetch stats). Never faults an
  /// inner rep.
  Result<ByteSpan> VerifiedPayload(size_t shard,
                                   std::vector<uint8_t>* owned) const;

  /// True when shard `i`'s inner rep is resident (eager, or already
  /// faulted) — never triggers a fault.
  bool ShardResident(size_t i) const;

  /// Prefetch-worker body for one shard (ignores fault errors — the
  /// foreground query that needs the shard will surface them).
  void PrefetchOne(size_t shard) const;

  static Result<std::unique_ptr<ShardedRep>> ParseV1(ByteSpan bytes);
  static Result<std::unique_ptr<ShardedRep>> ParseV2(
      ByteSpan bytes, std::shared_ptr<MmapFile> file,
      std::shared_ptr<std::vector<uint8_t>> owned);

  /// Cache lookup; on miss, charges `pending` queries against the
  /// shard's miss budget and decodes the whole shard once the batch
  /// (or accumulated single-query misses) amortizes it. Returns null
  /// when caching is disabled, the decode is not yet worth it, or the
  /// decode failed (callers then fall back to per-node routing).
  std::shared_ptr<const ShardNeighborhoods> GetOrDecodeShard(
      size_t shard, size_t pending) const;

  /// One shard's grammar after a fold: the recompressed payload, its
  /// checksum, and the eager inner rep. Immutable once published;
  /// retained (folded_keep_) for the rep's lifetime so the lock-free
  /// published pointer stays valid like lazy_published_ does.
  struct FoldedShard {
    std::vector<uint8_t> payload;
    uint64_t checksum = 0;
    std::shared_ptr<api::CompressedRep> rep;
  };

  /// The current folded payload of `shard`, or nullptr when the shard
  /// still carries its base grammar. Acquire-load of the published
  /// pointer; consulted before the base entry everywhere payload
  /// bytes or inner reps are read.
  const FoldedShard* FoldedFor(size_t shard) const {
    return folded_published_ == nullptr
               ? nullptr
               : folded_published_[shard].load(std::memory_order_acquire);
  }

  /// Publishes folded shards + the residual overlay as one atomic
  /// step (under overlay_mu_, nesting cache_mutex_ for the
  /// invalidations), so readers that snapshot the overlay first can
  /// never observe residual runs without the folds they depend on.
  /// `replace_all` additionally reverts shards absent from `folds` to
  /// their base grammar (the ApplyDelta path — deltas are cumulative);
  /// `bump_edit_epoch` flushes the node-result memo inside the same
  /// critical section when the publish changes logical answers.
  void PublishFolds(
      std::vector<std::pair<size_t, std::shared_ptr<FoldedShard>>> folds,
      std::shared_ptr<const DeltaOverlay> residual, bool replace_all,
      bool bump_edit_epoch) GREPAIR_REQUIRES(fold_mu_)
      GREPAIR_LOCKS_EXCLUDED(overlay_mu_, cache_mutex_);

  /// FoldOverlay's body, for callers already holding fold_mu_
  /// (ApplyEdits' automatic fold).
  Status FoldOverlayLocked() GREPAIR_REQUIRES(fold_mu_);

  /// Folds one shard: decompress (through the current folded rep when
  /// one exists), apply `kills` then `adds` (global ids; set
  /// semantics), recompress through the inner codec, serialize. On
  /// success *out carries the new payload + eager rep.
  Status FoldOneShard(size_t shard, const std::vector<DeltaPair>& kills,
                      const std::vector<DeltaEdge>& adds,
                      std::shared_ptr<FoldedShard>* out) const;

  std::string inner_name_;
  uint32_t inner_capabilities_ = 0;
  uint64_t num_nodes_ = 0;
  std::vector<Entry> entries_;  // K data shards, then the cut shard
  int decompress_threads_ = 1;
  // Atomics: the knobs may be retuned while queries are in flight on
  // other threads (query_stats()/monitoring alongside batches).
  std::atomic<int> query_threads_{1};
  std::atomic<size_t> cache_bytes_limit_{kDefaultQueryCacheBytes};

  // Lazy-open state: the inner codec that faults shards in, the
  // payload source the shards' bytes come from (the local backing
  // store for v2 files/buffers, the TCP client for remote reps — the
  // source pins whatever storage entry views borrow), per-shard
  // materialization slots and their mutexes. Faulted reps are
  // immutable once published, and slots are never reset, so the raw
  // published pointer (the lock-free resident fast path) stays valid
  // for the rep's lifetime.
  std::unique_ptr<api::GraphCodec> inner_codec_;  // null = eager rep
  std::shared_ptr<ShardSource> source_;
  // lazy_slots_[i] is written only under fault_mutexes_[i]; a
  // per-element capability is not expressible with GUARDED_BY (one
  // mutex object per array slot), so the invariant is enforced by
  // code review + the lock-free published pointer below.
  mutable std::vector<std::shared_ptr<api::CompressedRep>> lazy_slots_;
  mutable std::unique_ptr<std::atomic<const api::CompressedRep*>[]>
      lazy_published_;
  mutable std::unique_ptr<Mutex[]> fault_mutexes_;

  /// Tier-1 node-result cache: merged, sorted answers of single
  /// queries keyed by (node, direction). Shares the byte budget with
  /// the shard tier; LRU within the tier.
  struct ResultEntry {
    std::list<uint64_t>::iterator lru_it;
    std::shared_ptr<const std::vector<uint64_t>> value;
    size_t bytes = 0;
  };

  std::shared_ptr<const std::vector<uint64_t>> LookupResult(
      uint64_t key) const GREPAIR_LOCKS_EXCLUDED(cache_mutex_);
  /// Memoizes a node answer computed while edit_epoch_ was
  /// `edit_epoch`: the store is dropped when the epoch has moved
  /// (edits landed mid-query), so the memo never caches stale answers.
  void StoreResult(uint64_t key,
                   std::shared_ptr<const std::vector<uint64_t>> value,
                   uint64_t edit_epoch) const
      GREPAIR_LOCKS_EXCLUDED(cache_mutex_);

  /// LRU eviction down to `target` bytes per tier.
  void EvictShardsLocked(size_t target) const
      GREPAIR_REQUIRES(cache_mutex_);
  void EvictResultsLocked(size_t target) const
      GREPAIR_REQUIRES(cache_mutex_);

  // Cache state: one decoded-neighborhood slot per shard plus LRU
  // stamps, and the node-result LRU map, all guarded by cache_mutex_;
  // the pointed-to data is immutable, so readers only hold the lock
  // for the lookup.
  mutable Mutex cache_mutex_;
  mutable std::vector<std::shared_ptr<const ShardNeighborhoods>>
      cache_slots_ GREPAIR_GUARDED_BY(cache_mutex_);
  mutable std::vector<uint64_t> cache_last_use_
      GREPAIR_GUARDED_BY(cache_mutex_);
  mutable std::vector<uint32_t> cache_miss_credit_
      GREPAIR_GUARDED_BY(cache_mutex_);
  mutable uint64_t cache_tick_ GREPAIR_GUARDED_BY(cache_mutex_) = 0;
  mutable size_t cache_bytes_used_ GREPAIR_GUARDED_BY(cache_mutex_) = 0;
  mutable std::list<uint64_t> result_lru_
      GREPAIR_GUARDED_BY(cache_mutex_);  // most recent first
  mutable std::unordered_map<uint64_t, ResultEntry> results_
      GREPAIR_GUARDED_BY(cache_mutex_);
  mutable size_t result_bytes_used_ GREPAIR_GUARDED_BY(cache_mutex_) = 0;

  mutable std::atomic<uint64_t> stat_singles_{0};
  mutable std::atomic<uint64_t> stat_batch_calls_{0};
  mutable std::atomic<uint64_t> stat_batch_items_{0};
  mutable std::atomic<uint64_t> stat_hits_{0};
  mutable std::atomic<uint64_t> stat_misses_{0};
  mutable std::atomic<uint64_t> stat_decodes_{0};
  mutable std::atomic<uint64_t> stat_evictions_{0};
  mutable std::atomic<uint64_t> stat_faults_{0};
  mutable std::atomic<uint64_t> stat_prefetched_{0};
  mutable std::atomic<uint64_t> stat_hinted_{0};
  mutable std::atomic<uint64_t> stat_uring_batches_{0};
  mutable std::atomic<uint64_t> stat_shards_pinned_{0};
  mutable std::atomic<uint64_t> stat_pinned_bytes_{0};

  // Mutable-corpus state. Lock order: overlay_mu_ before cache_mutex_
  // (PublishFolds nests the cache invalidation inside the overlay
  // swap; query paths take the two locks sequentially, never nested
  // the other way). The overlay pointer itself is swapped under
  // overlay_mu_ and each snapshot is immutable, so queries hold the
  // lock only for the pointer copy.
  mutable Mutex overlay_mu_;
  std::shared_ptr<const DeltaOverlay> overlay_
      GREPAIR_GUARDED_BY(overlay_mu_);
  std::atomic<bool> has_overlay_{false};  // lock-free clean-rep fast path
  std::atomic<uint64_t> total_nodes_{0};  // >= num_nodes_, grown by adds
  std::atomic<uint64_t> overlay_budget_bytes_{kDefaultOverlayBudgetBytes};
  uint64_t directory_checksum_ = 0;  // set at parse; immutable after
  // Serializes FoldOverlay/ApplyDelta bodies; Decompress holds it too
  // so its (folded shards, residual overlay) capture is consistent —
  // a fold publishing mid-walk would double-apply its adds. Taken
  // before overlay_mu_ when both are held.
  mutable Mutex fold_mu_;
  // folded_published_[i] mirrors lazy_published_: written only inside
  // PublishFolds (under overlay_mu_), read lock-free with acquire.
  // folded_keep_ retains every published FoldedShard for the rep's
  // lifetime — the documented cost of lock-free readers (a corpus
  // folds a few times, not millions).
  mutable std::unique_ptr<std::atomic<const FoldedShard*>[]>
      folded_published_;
  std::vector<std::shared_ptr<FoldedShard>> folded_keep_
      GREPAIR_GUARDED_BY(overlay_mu_);
  // Epochs pair in-flight computations with the state they read:
  // a memo store is dropped when edit_epoch_ moved since the query
  // began, a shard-cache store when fold_epoch_ moved since the
  // decode began. Both bumped under cache_mutex_; checked there too.
  mutable std::atomic<uint64_t> edit_epoch_{0};
  mutable std::atomic<uint64_t> fold_epoch_{0};

  mutable std::atomic<uint64_t> stat_overlay_merges_{0};
  mutable std::atomic<uint64_t> stat_shard_folds_{0};
  mutable std::atomic<uint64_t> stat_folded_edits_{0};

  // Current placement (ApplyPlacement diffs new rankings against it).
  mutable Mutex pin_mutex_;
  mutable std::vector<uint8_t> pinned_flags_ GREPAIR_GUARDED_BY(pin_mutex_);

  // Prefetch pool; guarded by prefetch_mutex_ (knob retunes race with
  // batch enqueues). Declared last so workers are joined before the
  // state they touch is torn down.
  mutable Mutex prefetch_mutex_;
  mutable std::unique_ptr<Prefetcher> prefetcher_
      GREPAIR_GUARDED_BY(prefetch_mutex_);
};

/// \brief The "sharded:<inner>" meta-codec.
class ShardedCodec : public api::GraphCodec {
 public:
  /// \brief Resolves `inner_name` through the registry once; an
  /// unknown name yields a codec whose capabilities() are 0 and whose
  /// Compress/Deserialize return the lookup error.
  explicit ShardedCodec(std::string inner_name);

  /// \brief Wraps an already-constructed inner codec (the registry's
  /// prefix-resolution path, which has just created it anyway).
  ShardedCodec(std::string inner_name,
               std::unique_ptr<api::GraphCodec> inner);

  const char* name() const override { return name_.c_str(); }
  uint32_t capabilities() const override;

  Result<std::unique_ptr<api::CompressedRep>> Compress(
      const Hypergraph& graph, const Alphabet& alphabet,
      const api::CodecOptions& options) const override;

  Result<std::unique_ptr<api::CompressedRep>> Deserialize(
      const std::vector<uint8_t>& bytes) const override;

  Result<std::unique_ptr<api::CompressedRep>> DeserializeSpan(
      ByteSpan bytes) const override;

  /// \brief Lazy mmap-backed open for v2 payloads: the returned rep
  /// borrows shard payloads from `file` and faults them on first
  /// touch. v1 payloads fall back to the eager parse.
  Result<std::unique_ptr<api::CompressedRep>> OpenPayload(
      std::shared_ptr<MmapFile> file, ByteSpan payload) const override;

 private:
  Status CheckInnerName(const ShardedRep& rep) const;

  std::string inner_name_;
  std::string name_;  // "sharded:" + inner_name_
  std::unique_ptr<api::GraphCodec> inner_;  // null if inner_name_ unknown
};

}  // namespace shard
}  // namespace grepair

#endif  // GREPAIR_SHARD_SHARDED_CODEC_H_
