// Sharded meta-codec: compresses a graph as K+1 independently
// compressed shards behind the same GraphCodec/CompressedRep API as
// every single-shard codec.
//
// Registry names are "sharded:<inner>" ("sharded:grepair",
// "sharded:k2", ...); the sharded variants of all builtins are
// registered, and CodecRegistry::Create additionally resolves the
// prefix for any other registered inner codec. Options:
//
//   shards=K        number of data shards (default 4)
//   threads=T       compression thread-pool size (default: min(K, hw))
//   strategy=S      edge-range | bfs (default edge-range)
//   <anything else> forwarded to the inner codec
//
// Container layout (version 1, little-endian, pinned by golden tests
// in tests/container_format_test.cc — bump the magic to change it):
//
//   magic   "GRSHARD1"                        8 bytes
//   u8      inner codec name length (> 0)
//   bytes   inner codec name
//   u64     global node count
//   u32     shard count (K data shards + 1 cut shard)
//   per shard:
//     u64   node-map length n_k
//     bits  Elias-delta node map: first global id + 1, then gaps
//           (strictly increasing), zero-padded to a byte boundary
//     u64   payload length (0 = edgeless shard, no inner payload)
//     bytes inner codec payload (inner CompressedRep::Serialize())
//
// Queries route through the node maps: a global node is looked up in
// every shard that contains it (vertex-cut shards may share nodes) and
// the cut shard, results are mapped back to global IDs and merged.
// Reachability is a BFS over the routed neighbor queries, so it works
// across shard boundaries and is available whenever the inner codec
// answers neighbor queries.

#ifndef GREPAIR_SHARD_SHARDED_CODEC_H_
#define GREPAIR_SHARD_SHARDED_CODEC_H_

#include <memory>
#include <string>
#include <vector>

#include "src/api/graph_codec.h"
#include "src/graph/hypergraph.h"
#include "src/util/status.h"

namespace grepair {
namespace shard {

/// \brief The 8-byte sharded-container magic ("GRSHARD1").
extern const char kShardContainerMagic[8];

/// \brief Multi-shard compressed representation (container format
/// above). Implements the full CompressedRep query surface by routing
/// to the owning shards.
class ShardedRep : public api::CompressedRep {
 public:
  struct Entry {
    std::vector<NodeId> nodes;          ///< sorted global IDs
    std::vector<uint8_t> payload;       ///< inner bytes; empty = edgeless
    std::unique_ptr<api::CompressedRep> rep;  ///< null iff payload empty
  };

  ShardedRep(std::string inner_name, uint32_t inner_capabilities,
             uint64_t num_nodes, std::vector<Entry> entries);

  std::vector<uint8_t> Serialize() const override;
  size_t ByteSize() const override;
  Result<Hypergraph> Decompress() const override;
  uint64_t num_nodes() const override { return num_nodes_; }

  Result<std::vector<uint64_t>> OutNeighbors(uint64_t node) const override;
  Result<std::vector<uint64_t>> InNeighbors(uint64_t node) const override;
  Result<bool> Reachable(uint64_t from, uint64_t to) const override;

  /// \brief Parses a version-1 container and reconstructs every inner
  /// rep through the registry. Clean kCorruption on truncated or
  /// inconsistent input.
  static Result<std::unique_ptr<ShardedRep>> Deserialize(
      const std::vector<uint8_t>& bytes);

  /// \brief Thread-pool size for Decompress (default 1; the CLI's
  /// `decompress --threads` sets it).
  void set_decompress_threads(int threads);

  const std::string& inner_name() const { return inner_name_; }
  size_t num_shards() const { return entries_.size(); }
  const Entry& entry(size_t i) const { return entries_[i]; }

 private:
  Result<std::vector<uint64_t>> RoutedNeighbors(uint64_t node,
                                                bool out) const;

  std::string inner_name_;
  uint32_t inner_capabilities_ = 0;
  uint64_t num_nodes_ = 0;
  std::vector<Entry> entries_;  // K data shards, then the cut shard
  int decompress_threads_ = 1;
};

/// \brief The "sharded:<inner>" meta-codec.
class ShardedCodec : public api::GraphCodec {
 public:
  /// \brief Resolves `inner_name` through the registry once; an
  /// unknown name yields a codec whose capabilities() are 0 and whose
  /// Compress/Deserialize return the lookup error.
  explicit ShardedCodec(std::string inner_name);

  /// \brief Wraps an already-constructed inner codec (the registry's
  /// prefix-resolution path, which has just created it anyway).
  ShardedCodec(std::string inner_name,
               std::unique_ptr<api::GraphCodec> inner);

  const char* name() const override { return name_.c_str(); }
  uint32_t capabilities() const override;

  Result<std::unique_ptr<api::CompressedRep>> Compress(
      const Hypergraph& graph, const Alphabet& alphabet,
      const api::CodecOptions& options) const override;

  Result<std::unique_ptr<api::CompressedRep>> Deserialize(
      const std::vector<uint8_t>& bytes) const override;

 private:
  std::string inner_name_;
  std::string name_;  // "sharded:" + inner_name_
  std::unique_ptr<api::GraphCodec> inner_;  // null if inner_name_ unknown
};

}  // namespace shard
}  // namespace grepair

#endif  // GREPAIR_SHARD_SHARDED_CODEC_H_
