#include "src/shard/parallel_compressor.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "src/util/sync.h"

namespace grepair {
namespace shard {

void RunIndexedOnPool(size_t count, int threads,
                      const std::function<void(size_t)>& fn) {
  int clamped = std::max(1, std::min(threads, 256));
  int spawn = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(clamped), count));
  if (spawn <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // An exception escaping a std::thread entry function is
  // std::terminate; capture the first one and rethrow it on the
  // calling thread after the join, so e.g. a bad_alloc during a
  // shard task behaves the same at threads=8 as at threads=1.
  std::atomic<size_t> next{0};
  Mutex error_mutex;
  std::exception_ptr first_error;  // guarded by error_mutex until join
  auto worker = [&]() {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(spawn);
  for (int t = 0; t < spawn; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

ParallelCompressor::ParallelCompressor(const api::GraphCodec& inner,
                                       int num_threads)
    : inner_(inner), num_threads_(std::max(1, std::min(num_threads, 256))) {}

Result<std::vector<CompressedShard>> ParallelCompressor::CompressShards(
    const GraphPartition& partition, const Alphabet& alphabet,
    const api::CodecOptions& inner_options) const {
  size_t count = partition.shards.size();
  std::vector<CompressedShard> results(count);
  std::vector<Status> statuses(count);

  RunIndexedOnPool(count, num_threads_, [&](size_t i) {
    const Shard& shard = partition.shards[i];
    if (shard.graph.num_edges() == 0) return;  // empty payload slot
    auto rep = inner_.Compress(shard.graph, alphabet, inner_options);
    if (!rep.ok()) {
      statuses[i] = rep.status();
      return;
    }
    results[i].rep = std::move(rep).ValueOrDie();
    results[i].payload = results[i].rep->Serialize();
  });

  for (size_t i = 0; i < count; ++i) {
    if (!statuses[i].ok()) {
      if (statuses[i].code() == StatusCode::kInvalidArgument) {
        return Status::InvalidArgument("shard " + std::to_string(i) + ": " +
                                       statuses[i].message());
      }
      return statuses[i];
    }
  }
  return results;
}

}  // namespace shard
}  // namespace grepair
