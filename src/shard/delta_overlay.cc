#include "src/shard/delta_overlay.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <tuple>
#include <utility>

#include "src/util/hashing.h"

namespace grepair {
namespace shard {

const char kDeltaContainerMagic[8] = {'G', 'R', 'S', 'H',
                                      'A', 'R', 'D', '3'};

namespace {

bool EdgeLess(const DeltaEdge& a, const DeltaEdge& b) {
  return std::tie(a.u, a.v, a.label) < std::tie(b.u, b.v, b.label);
}

bool PairLess(const DeltaPair& a, const DeltaPair& b) {
  return std::tie(a.u, a.v) < std::tie(b.u, b.v);
}

// The [first == u] slice of a run sorted by (u, ...). The u+1 probe
// must not wrap, so the max id is special-cased to "rest of the run".
template <typename Run, typename T, typename Less>
std::pair<typename Run::const_iterator, typename Run::const_iterator>
SliceFor(const Run& run, uint32_t u, T lo, T hi, Less less) {
  auto begin = std::lower_bound(run.begin(), run.end(), lo, less);
  auto end = (u == ~0u)
                 ? run.end()
                 : std::lower_bound(begin, run.end(), hi, less);
  return {begin, end};
}

std::pair<std::vector<DeltaEdge>::const_iterator,
          std::vector<DeltaEdge>::const_iterator>
EdgeSlice(const std::vector<DeltaEdge>& run, uint32_t u) {
  return SliceFor(run, u, DeltaEdge{u, 0, 0}, DeltaEdge{u + 1, 0, 0},
                  EdgeLess);
}

std::pair<std::vector<DeltaPair>::const_iterator,
          std::vector<DeltaPair>::const_iterator>
PairSlice(const std::vector<DeltaPair>& run, uint32_t u) {
  return SliceFor(run, u, DeltaPair{u, 0}, DeltaPair{u + 1, 0}, PairLess);
}

// Shared core of MergeOut/MergeIn: (base \ kill slice) union (second
// field of the add slice, deduplicated).
std::vector<uint64_t> MergeSlices(
    std::vector<uint64_t> base,
    std::vector<DeltaPair>::const_iterator kb,
    std::vector<DeltaPair>::const_iterator ke, const uint32_t* add_seconds,
    size_t add_count) {
  std::vector<uint64_t> out;
  out.reserve(base.size() + add_count);
  auto ki = kb;
  for (uint64_t id : base) {
    while (ki != ke && static_cast<uint64_t>(ki->v) < id) ++ki;
    if (ki != ke && static_cast<uint64_t>(ki->v) == id) continue;
    out.push_back(id);
  }
  size_t mid = out.size();
  uint64_t last = ~0ull;  // outside the u32 id domain
  for (size_t i = 0; i < add_count; ++i) {
    if (add_seconds[i] != last) {
      out.push_back(add_seconds[i]);
      last = add_seconds[i];
    }
  }
  std::inplace_merge(out.begin(), out.begin() + static_cast<long>(mid),
                     out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

void DeltaOverlay::BuildDerivedRuns() {
  adds_in_.clear();
  adds_in_.reserve(adds_out_.size());
  uint64_t max_ref = 0;
  bool any = false;
  for (const DeltaEdge& e : adds_out_) {
    adds_in_.push_back(DeltaPair{e.v, e.u});
    max_ref = std::max<uint64_t>(max_ref, std::max(e.u, e.v));
    any = true;
  }
  std::sort(adds_in_.begin(), adds_in_.end(), PairLess);
  // Two labels on the same pair collapse to one (v, u) entry — the
  // in-direction run answers "which sources", not "which edges".
  adds_in_.erase(std::unique(adds_in_.begin(), adds_in_.end()),
                 adds_in_.end());
  kills_in_.clear();
  kills_in_.reserve(kills_out_.size());
  for (const DeltaPair& p : kills_out_) {
    kills_in_.push_back(DeltaPair{p.v, p.u});
    max_ref = std::max<uint64_t>(max_ref, std::max(p.u, p.v));
    any = true;
  }
  std::sort(kills_in_.begin(), kills_in_.end(), PairLess);
  min_num_nodes_ = any ? max_ref + 1 : 0;
}

Result<std::shared_ptr<const DeltaOverlay>> DeltaOverlay::Apply(
    const DeltaOverlay* base, const std::vector<EdgeEdit>& edits) {
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> adds;
  std::set<std::pair<uint32_t, uint32_t>> kills;
  if (base != nullptr) {
    for (const DeltaEdge& e : base->adds_out_) {
      adds.emplace(e.u, e.v, e.label);
    }
    for (const DeltaPair& p : base->kills_out_) {
      kills.emplace(p.u, p.v);
    }
  }
  for (const EdgeEdit& edit : edits) {
    if (edit.kind == EdgeEdit::kAdd) {
      if (edit.u == edit.v) {
        return Status::InvalidArgument(
            "cannot add self-loop edge " + std::to_string(edit.u) + " -> " +
            std::to_string(edit.v) + " (excluded by the graph model)");
      }
      adds.emplace(edit.u, edit.v, edit.label);
    } else {
      kills.emplace(edit.u, edit.v);
      // A delete erases pending adds of the pair, every label.
      adds.erase(adds.lower_bound(std::make_tuple(edit.u, edit.v, 0u)),
                 adds.upper_bound(std::make_tuple(edit.u, edit.v, ~0u)));
    }
  }
  auto overlay = std::shared_ptr<DeltaOverlay>(new DeltaOverlay());
  overlay->adds_out_.reserve(adds.size());
  for (const auto& t : adds) {
    overlay->adds_out_.push_back(
        DeltaEdge{std::get<0>(t), std::get<1>(t), std::get<2>(t)});
  }
  overlay->kills_out_.reserve(kills.size());
  for (const auto& p : kills) {
    overlay->kills_out_.push_back(DeltaPair{p.first, p.second});
  }
  overlay->BuildDerivedRuns();
  return std::shared_ptr<const DeltaOverlay>(std::move(overlay));
}

Result<std::shared_ptr<const DeltaOverlay>> DeltaOverlay::FromRuns(
    std::vector<DeltaEdge> adds, std::vector<DeltaPair> kills) {
  for (size_t i = 0; i < adds.size(); ++i) {
    if (adds[i].u == adds[i].v) {
      return Status::Corruption("overlay add run has self-loop at entry " +
                                std::to_string(i));
    }
    if (i > 0 && !EdgeLess(adds[i - 1], adds[i])) {
      return Status::Corruption(
          "overlay add run unsorted or duplicated at entry " +
          std::to_string(i));
    }
  }
  for (size_t i = 1; i < kills.size(); ++i) {
    if (!PairLess(kills[i - 1], kills[i])) {
      return Status::Corruption(
          "overlay kill run unsorted or duplicated at entry " +
          std::to_string(i));
    }
  }
  auto overlay = std::shared_ptr<DeltaOverlay>(new DeltaOverlay());
  overlay->adds_out_ = std::move(adds);
  overlay->kills_out_ = std::move(kills);
  overlay->BuildDerivedRuns();
  return std::shared_ptr<const DeltaOverlay>(std::move(overlay));
}

std::vector<uint64_t> DeltaOverlay::MergeOut(
    uint64_t node, std::vector<uint64_t> base) const {
  if (node > ~0u) return base;  // beyond the u32 edit domain
  uint32_t u = static_cast<uint32_t>(node);
  auto kills = PairSlice(kills_out_, u);
  auto adds = EdgeSlice(adds_out_, u);
  if (kills.first == kills.second && adds.first == adds.second) return base;
  std::vector<uint32_t> add_targets;
  add_targets.reserve(static_cast<size_t>(adds.second - adds.first));
  for (auto it = adds.first; it != adds.second; ++it) {
    add_targets.push_back(it->v);  // sorted; labels may repeat a target
  }
  return MergeSlices(std::move(base), kills.first, kills.second,
                     add_targets.data(), add_targets.size());
}

std::vector<uint64_t> DeltaOverlay::MergeIn(
    uint64_t node, std::vector<uint64_t> base) const {
  if (node > ~0u) return base;
  uint32_t v = static_cast<uint32_t>(node);
  auto kills = PairSlice(kills_in_, v);
  auto adds = PairSlice(adds_in_, v);
  if (kills.first == kills.second && adds.first == adds.second) return base;
  std::vector<uint32_t> add_sources;
  add_sources.reserve(static_cast<size_t>(adds.second - adds.first));
  for (auto it = adds.first; it != adds.second; ++it) {
    add_sources.push_back(it->v);  // (v, u) entries: ->v is the source
  }
  return MergeSlices(std::move(base), kills.first, kills.second,
                     add_sources.data(), add_sources.size());
}

bool DeltaOverlay::IsKilled(uint64_t u, uint64_t v) const {
  if (u > ~0u || v > ~0u) return false;
  DeltaPair probe{static_cast<uint32_t>(u), static_cast<uint32_t>(v)};
  return std::binary_search(kills_out_.begin(), kills_out_.end(), probe,
                            PairLess);
}

bool DeltaOverlay::TouchesOut(uint64_t node) const {
  if (node > ~0u) return false;
  uint32_t u = static_cast<uint32_t>(node);
  auto kills = PairSlice(kills_out_, u);
  if (kills.first != kills.second) return true;
  auto adds = EdgeSlice(adds_out_, u);
  return adds.first != adds.second;
}

bool DeltaOverlay::TouchesIn(uint64_t node) const {
  if (node > ~0u) return false;
  uint32_t v = static_cast<uint32_t>(node);
  auto kills = PairSlice(kills_in_, v);
  if (kills.first != kills.second) return true;
  auto adds = PairSlice(adds_in_, v);
  return adds.first != adds.second;
}

bool IsDeltaContainer(ByteSpan bytes) {
  return bytes.size >= sizeof(kDeltaContainerMagic) &&
         std::memcmp(bytes.data, kDeltaContainerMagic,
                     sizeof(kDeltaContainerMagic)) == 0;
}

std::vector<uint8_t> EncodeDeltaContainer(const DeltaContainer& delta) {
  ByteSink sink;
  sink.Append(ByteSpan(
      reinterpret_cast<const uint8_t*>(kDeltaContainerMagic),
      sizeof(kDeltaContainerMagic)));
  sink.PutU64LE(delta.base_hash);
  sink.PutU64LE(delta.base_size);
  sink.PutU64LE(delta.base_dir_checksum);
  sink.PutU64LE(delta.num_nodes);
  sink.PutU32LE(static_cast<uint32_t>(delta.shards.size()));
  for (const DeltaContainer::ChangedShard& shard : delta.shards) {
    sink.PutU32LE(shard.index);
    sink.PutU64LE(shard.payload.size());
    sink.PutU64LE(shard.checksum);
    sink.Append(shard.payload);
  }
  sink.PutU32LE(static_cast<uint32_t>(delta.adds.size()));
  for (const DeltaEdge& e : delta.adds) {
    sink.PutU32LE(e.u);
    sink.PutU32LE(e.v);
    sink.PutU32LE(e.label);
  }
  sink.PutU32LE(static_cast<uint32_t>(delta.kills.size()));
  for (const DeltaPair& p : delta.kills) {
    sink.PutU32LE(p.u);
    sink.PutU32LE(p.v);
  }
  std::vector<uint8_t> bytes = sink.TakeBytes();
  PutU64LE(HashBytes(bytes.data(), bytes.size()), &bytes);
  return bytes;
}

Result<DeltaContainer> DecodeDeltaContainer(ByteSpan bytes,
                                            const std::string& context) {
  const std::string where = context.empty() ? "delta container" : context;
  if (!IsDeltaContainer(bytes)) {
    return Status::InvalidArgument(where +
                                   ": not a GRSHARD3 delta container");
  }
  // The trailing checksum gates everything: a torn or tampered delta
  // is rejected before any field is trusted.
  if (bytes.size < sizeof(kDeltaContainerMagic) + 8) {
    return Status::Corruption(where + ": truncated delta container");
  }
  size_t body_len = bytes.size - 8;
  uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<uint64_t>(bytes[body_len + i]) << (8 * i);
  }
  if (HashBytes(bytes.data, body_len) != stored) {
    return Status::Corruption(where + ": delta container checksum mismatch");
  }
  ByteSource src(ByteSpan(bytes.data + sizeof(kDeltaContainerMagic),
                          body_len - sizeof(kDeltaContainerMagic)),
                 where);
  DeltaContainer delta;
  GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&delta.base_hash));
  GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&delta.base_size));
  GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&delta.base_dir_checksum));
  GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&delta.num_nodes));
  uint32_t shard_count = 0;
  GREPAIR_RETURN_IF_ERROR(src.ReadU32LE(&shard_count));
  if (shard_count > src.remaining() / (4 + 8 + 8)) {
    return Status::Corruption(where + ": implausible changed-shard count " +
                              std::to_string(shard_count));
  }
  delta.shards.reserve(shard_count);
  for (uint32_t i = 0; i < shard_count; ++i) {
    DeltaContainer::ChangedShard shard;
    uint64_t length = 0;
    GREPAIR_RETURN_IF_ERROR(src.ReadU32LE(&shard.index));
    GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&length));
    GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&shard.checksum));
    if (!delta.shards.empty() && shard.index <= delta.shards.back().index) {
      return Status::Corruption(where +
                                ": changed-shard indices not ascending");
    }
    ByteSpan payload;
    GREPAIR_RETURN_IF_ERROR(src.ReadSpan(length, &payload));
    if (HashBytes(payload.data, payload.size) != shard.checksum) {
      return Status::Corruption(where + ": changed shard " +
                                std::to_string(shard.index) +
                                " payload checksum mismatch");
    }
    shard.payload = payload.ToVector();
    delta.shards.push_back(std::move(shard));
  }
  uint32_t add_count = 0;
  GREPAIR_RETURN_IF_ERROR(src.ReadU32LE(&add_count));
  if (add_count > src.remaining() / 12) {
    return Status::Corruption(where + ": implausible add count " +
                              std::to_string(add_count));
  }
  delta.adds.reserve(add_count);
  for (uint32_t i = 0; i < add_count; ++i) {
    DeltaEdge e;
    GREPAIR_RETURN_IF_ERROR(src.ReadU32LE(&e.u));
    GREPAIR_RETURN_IF_ERROR(src.ReadU32LE(&e.v));
    GREPAIR_RETURN_IF_ERROR(src.ReadU32LE(&e.label));
    delta.adds.push_back(e);
  }
  uint32_t kill_count = 0;
  GREPAIR_RETURN_IF_ERROR(src.ReadU32LE(&kill_count));
  if (kill_count > src.remaining() / 8) {
    return Status::Corruption(where + ": implausible kill count " +
                              std::to_string(kill_count));
  }
  delta.kills.reserve(kill_count);
  for (uint32_t i = 0; i < kill_count; ++i) {
    DeltaPair p;
    GREPAIR_RETURN_IF_ERROR(src.ReadU32LE(&p.u));
    GREPAIR_RETURN_IF_ERROR(src.ReadU32LE(&p.v));
    delta.kills.push_back(p);
  }
  GREPAIR_RETURN_IF_ERROR(src.ExpectExhausted("delta container"));
  // Run sortedness is part of the format; FromRuns re-checks on the
  // consuming side, but a decode must already fail closed.
  auto runs = DeltaOverlay::FromRuns(delta.adds, delta.kills);
  if (!runs.ok()) return runs.status();
  return delta;
}

}  // namespace shard
}  // namespace grepair
