// Delta overlays and GRSHARD3 delta containers: the write path of the
// (until now read-only) sharded corpus stack.
//
// A DeltaOverlay is an immutable snapshot of the edits applied to a
// corpus since its shards were last (re)compressed: appended edges and
// killed node pairs, each held twice in sorted CSR-style runs (by
// source and by target) so a query merges its node's slice with two
// binary searches and two linear merges. Semantics are set-based and
// pair-granular:
//
//   * add(u, v, label)  — the edge joins the corpus (duplicate adds of
//     the same triple coalesce);
//   * delete(u, v)      — every rank-2 edge u->v, whatever its label,
//     leaves the corpus; pending adds of the pair are erased. A later
//     add of the pair re-creates exactly that one edge (base copies
//     stay dead).
//
// The logical corpus is therefore
//     {base edges whose (att0, att1) is not killed}  union  {adds},
// which ShardedRep reproduces per node as
//     out(u) = (base_out(u) \ killed_targets(u)) u add_targets(u)
// — proven byte-identical to a from-scratch recompress of the mutated
// graph by the differential suite (tests/dynamic_corpus_test.cc).
//
// A GRSHARD3 delta container ships a corpus version as a diff: it
// references its base by content hash (of the *entire* previous file
// in the chain, so lineage is tamper-evident), carries only the shards
// whose grammars were re-folded plus the residual overlay runs, and is
// covered end-to-end by a trailing checksum. Deltas are cumulative
// against the base: each carries the full folded set and the full
// residual, so applying the newest delta alone (after its chain
// verifies) yields the newest version.

#ifndef GREPAIR_SHARD_DELTA_OVERLAY_H_
#define GREPAIR_SHARD_DELTA_OVERLAY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/graph/hypergraph.h"
#include "src/util/byte_io.h"
#include "src/util/status.h"

namespace grepair {
namespace shard {

/// \brief The 8-byte GRSHARD3 delta-container magic.
extern const char kDeltaContainerMagic[8];

/// \brief One edit against a corpus (the unit of ApplyEdits).
struct EdgeEdit {
  enum Kind : uint8_t {
    kAdd,     ///< append edge u -> v with `label`
    kDelete,  ///< remove every rank-2 edge u -> v (any label)
  };
  Kind kind = kAdd;
  uint32_t u = 0;
  uint32_t v = 0;
  uint32_t label = 0;  ///< adds only; ignored for deletes

  static EdgeEdit Add(uint32_t u, uint32_t v, uint32_t label = 0) {
    return EdgeEdit{kAdd, u, v, label};
  }
  static EdgeEdit Delete(uint32_t u, uint32_t v) {
    return EdgeEdit{kDelete, u, v, 0};
  }
};

/// \brief An appended edge in an overlay run.
struct DeltaEdge {
  uint32_t u = 0;
  uint32_t v = 0;
  uint32_t label = 0;

  bool operator==(const DeltaEdge& o) const {
    return u == o.u && v == o.v && label == o.label;
  }
};

/// \brief A killed (source, target) pair in an overlay run.
struct DeltaPair {
  uint32_t u = 0;
  uint32_t v = 0;

  bool operator==(const DeltaPair& o) const { return u == o.u && v == o.v; }
};

/// \brief Immutable edit snapshot with per-direction sorted runs.
///
/// Instances are built by Apply (never mutated), shared by
/// shared_ptr<const DeltaOverlay>, and safe to read from any number of
/// threads. All four runs are strictly sorted and duplicate-free; the
/// out-sorted add run is the canonical add set (the in-sorted run is a
/// permutation of its (u, v) pairs), and likewise for kills.
class DeltaOverlay {
 public:
  /// \brief Builds `base + edits` as a fresh snapshot (base may be
  /// null = empty). kInvalidArgument on a self-loop add (u == v; the
  /// paper's model excludes them and Hypergraph::Validate enforces
  /// it). Edits are applied in order: a delete erases pending adds of
  /// its pair, an add of a killed pair co-exists with the kill (the
  /// merge rule applies kills to base edges only, then unions adds).
  static Result<std::shared_ptr<const DeltaOverlay>> Apply(
      const DeltaOverlay* base, const std::vector<EdgeEdit>& edits);

  /// \brief Rebuilds a snapshot from explicit runs (the GRSHARD3 /
  /// fold-residual path). `adds` must be sorted by (u, v, label) and
  /// `kills` by (u, v), both duplicate-free; kCorruption otherwise —
  /// wire data funnels through here and must fail closed.
  static Result<std::shared_ptr<const DeltaOverlay>> FromRuns(
      std::vector<DeltaEdge> adds, std::vector<DeltaPair> kills);

  bool empty() const { return adds_out_.empty() && kills_out_.empty(); }
  size_t add_count() const { return adds_out_.size(); }
  size_t kill_count() const { return kills_out_.size(); }
  size_t edit_count() const { return add_count() + kill_count(); }

  /// \brief In-memory footprint of the runs (the fold budget's metric).
  size_t ByteSize() const {
    return adds_out_.size() * (2 * sizeof(DeltaEdge)) +
           kills_out_.size() * (2 * sizeof(DeltaPair));
  }

  /// \brief 1 + the largest node id any edit references (0 when
  /// empty): the overlay's lower bound on the corpus node count.
  uint64_t min_num_nodes() const { return min_num_nodes_; }

  /// \brief The canonical sorted runs (serialization + fold planning).
  const std::vector<DeltaEdge>& adds() const { return adds_out_; }
  const std::vector<DeltaPair>& kills() const { return kills_out_; }

  /// \brief Merges `base` (sorted, unique, ascending global ids — a
  /// base-shard answer) with this overlay's view of `node`:
  /// out = (base \ killed targets) u added targets. Idempotent: base
  /// answers that already reflect some of these edits merge to the
  /// same result. Returns sorted unique ids.
  std::vector<uint64_t> MergeOut(uint64_t node,
                                 std::vector<uint64_t> base) const;
  std::vector<uint64_t> MergeIn(uint64_t node,
                                std::vector<uint64_t> base) const;

  /// \brief True when (u, v) is in the kill set (Decompress's filter).
  bool IsKilled(uint64_t u, uint64_t v) const;

  /// \brief True when `node` has any add or kill touching it in the
  /// given direction — lets a merged answer skip the merge entirely
  /// for untouched nodes (the common case).
  bool TouchesOut(uint64_t node) const;
  bool TouchesIn(uint64_t node) const;

 private:
  DeltaOverlay() = default;
  void BuildDerivedRuns();  // fills in-sorted runs + min_num_nodes_

  std::vector<DeltaEdge> adds_out_;   // sorted by (u, v, label)
  std::vector<DeltaPair> adds_in_;    // (v, u) pairs sorted; dedup'd
  std::vector<DeltaPair> kills_out_;  // sorted by (u, v)
  std::vector<DeltaPair> kills_in_;   // (v, u) pairs sorted
  uint64_t min_num_nodes_ = 0;
};

/// \brief A decoded GRSHARD3 delta container.
struct DeltaContainer {
  uint64_t base_hash = 0;      ///< HashBytes of the whole previous file
  uint64_t base_size = 0;      ///< byte size of the previous file
  uint64_t base_dir_checksum = 0;  ///< the base's v2 directory checksum
  uint64_t num_nodes = 0;      ///< corpus node count after this delta

  /// One shard whose inner grammar was re-folded since the base.
  struct ChangedShard {
    uint32_t index = 0;
    uint64_t checksum = 0;  ///< HashBytes(payload)
    std::vector<uint8_t> payload;
  };
  std::vector<ChangedShard> shards;  ///< strictly ascending by index

  std::vector<DeltaEdge> adds;   ///< residual, sorted by (u, v, label)
  std::vector<DeltaPair> kills;  ///< residual, sorted by (u, v)
};

/// \brief True if `bytes` starts with the GRSHARD3 magic.
bool IsDeltaContainer(ByteSpan bytes);

/// \brief Serializes a delta container (layout in
/// src/shard/README.md), appending the trailing checksum.
std::vector<uint8_t> EncodeDeltaContainer(const DeltaContainer& delta);

/// \brief Parses and fully verifies a delta container: magic, trailing
/// checksum over everything before it, per-shard payload checksums,
/// strict run sortedness, ascending shard indices. Fails closed with
/// kCorruption; kInvalidArgument when the magic is absent. `context`
/// labels errors (a file path).
Result<DeltaContainer> DecodeDeltaContainer(ByteSpan bytes,
                                            const std::string& context = "");

}  // namespace shard
}  // namespace grepair

#endif  // GREPAIR_SHARD_DELTA_OVERLAY_H_
