// Deterministic synthetic graph generators.
//
// The paper evaluates on SNAP network graphs, DBpedia/Identica/Jamendo
// RDF graphs and Subdue/DBLP version graphs, none of which are available
// offline. These generators produce structurally matched stand-ins (see
// DESIGN.md section 4): what drives gRePair is degree structure, label
// structure and repeated substructure, all of which the generators
// control explicitly. Every generator is seeded and reproducible.

#ifndef GREPAIR_DATASETS_GENERATORS_H_
#define GREPAIR_DATASETS_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/hypergraph.h"

namespace grepair {

/// \brief A generated graph with its alphabet and a display name.
struct GeneratedGraph {
  std::string name;
  Hypergraph graph;
  Alphabet alphabet;
};

/// \brief G(n, m): m uniform random distinct directed edges, single label.
GeneratedGraph ErdosRenyi(uint32_t num_nodes, uint32_t num_edges,
                          uint64_t seed, uint32_t num_labels = 1);

/// \brief Preferential attachment: each new node attaches `edges_per_node`
/// out-edges to targets drawn by degree (power-law in-degrees; web-like).
GeneratedGraph BarabasiAlbert(uint32_t num_nodes, uint32_t edges_per_node,
                              uint64_t seed);

/// \brief Co-authorship model: `papers` papers, each a clique over 2..5
/// authors drawn with preferential attachment from `num_authors` authors
/// (CA-* style: clustered, heavy reuse of collaborator sets).
GeneratedGraph CoAuthorship(uint32_t num_authors, uint32_t papers,
                            uint64_t seed);

/// \brief Communication network: `num_hubs` hubs receive most traffic
/// (Zipf-selected endpoints), the rest is sparse random (Email-* style).
GeneratedGraph HubNetwork(uint32_t num_nodes, uint32_t num_edges,
                          uint32_t num_hubs, uint64_t seed);

/// \brief RDF "instance types" stand-in: `instances` subjects with
/// rdf:type edges into `num_types` Zipf-popular type objects (a star
/// forest, the structure the paper credits for its orders-of-magnitude
/// wins in Section IV-C2). `mean_types` is the average number of type
/// edges per instance (>= 1; DBpedia's "de with en" slice has ~3).
GeneratedGraph RdfTypes(uint32_t instances, uint32_t num_types,
                        uint64_t seed, double mean_types = 1.03);

/// \brief RDF entity-record stand-in (Identica/Jamendo style): each
/// subject carries a record of 2..8 predicate edges to shared or
/// private objects, drawn from `num_templates` record templates.
GeneratedGraph RdfEntities(uint32_t num_entities, uint32_t num_predicates,
                           uint32_t num_templates, uint64_t seed);

/// \brief The Figure 13 unit graph: a directed 4-cycle plus one diagonal
/// (4 nodes, 5 edges), single label.
GeneratedGraph CycleWithDiagonal();

/// \brief Disjoint union of `copies` copies of `unit` (version-graph
/// building block; node ids are block-shifted).
GeneratedGraph DisjointCopies(const GeneratedGraph& unit, uint32_t copies,
                              const std::string& name);

/// \brief Disjoint union of arbitrary snapshots sharing one alphabet.
GeneratedGraph DisjointUnion(const std::vector<const Hypergraph*>& parts,
                             const Alphabet& alphabet,
                             const std::string& name);

/// \brief Game-position version graph stand-in (Tic-Tac-Toe/Chess): many
/// small labeled position graphs drawn from `num_templates` templates,
/// each perturbed (one edge relabeled) with probability `perturb`,
/// unioned disjointly. Low template count + low perturbation gives the
/// tiny |[~FP]| of Tic-Tac-Toe; high values give Chess-like diversity.
GeneratedGraph GamePositions(uint32_t num_positions, uint32_t nodes_per_pos,
                             uint32_t num_labels, uint32_t num_templates,
                             uint64_t seed, double perturb = 0.15);

/// \brief Growing co-authorship history: returns per-year snapshots
/// (cumulative membership; later years extend earlier ones with new
/// authors and papers). Snapshot i contains the network after year i.
std::vector<Hypergraph> CoAuthorshipHistory(uint32_t years,
                                            uint32_t authors_per_year,
                                            uint32_t papers_per_year,
                                            uint64_t seed);

/// \brief DBLP-style version graph: the disjoint union of the first
/// `num_versions` snapshots of CoAuthorshipHistory.
GeneratedGraph DblpVersions(uint32_t num_versions, uint32_t authors_per_year,
                            uint32_t papers_per_year, uint64_t seed,
                            const std::string& name);

}  // namespace grepair

#endif  // GREPAIR_DATASETS_GENERATORS_H_
