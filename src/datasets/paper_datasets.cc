#include "src/datasets/paper_datasets.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace grepair {

namespace {

PaperStats Stats(const char* name, uint64_t nodes, uint64_t edges,
                 uint32_t labels, uint64_t fp_classes) {
  return PaperStats{name, nodes, edges, labels, fp_classes};
}

PaperDataset Wrap(GeneratedGraph data, PaperStats paper) {
  PaperDataset d;
  d.paper = std::move(paper);
  d.scale = d.paper.edges == 0
                ? 1.0
                : static_cast<double>(data.graph.num_edges()) /
                      static_cast<double>(d.paper.edges);
  data.name = d.paper.name;
  d.data = std::move(data);
  return d;
}

}  // namespace

PaperDataset MakePaperDataset(const std::string& name) {
  // ---- Table I: network graphs -----------------------------------------
  if (name == "CA-AstroPh") {
    return Wrap(CoAuthorship(4700, 9500, 101),
                Stats("CA-AstroPh", 18772, 396160, 1, 14742));
  }
  if (name == "CA-CondMat") {
    return Wrap(CoAuthorship(5800, 4700, 102),
                Stats("CA-CondMat", 23133, 186936, 1, 17135));
  }
  if (name == "CA-GrQc") {
    return Wrap(CoAuthorship(5242, 2900, 103),
                Stats("CA-GrQc", 5242, 28980, 1, 3394));
  }
  if (name == "Email-Enron") {
    return Wrap(HubNetwork(9000, 92000, 150, 104),
                Stats("Email-Enron", 36692, 367662, 1, 5805));
  }
  if (name == "Email-EuAll") {
    return Wrap(HubNetwork(33000, 52000, 300, 105),
                Stats("Email-EuAll", 265214, 420045, 1, 28895));
  }
  if (name == "NotreDame") {
    return Wrap(BarabasiAlbert(33000, 5, 106),
                Stats("NotreDame", 325729, 1497134, 1, 118264));
  }
  if (name == "Wiki-Talk") {
    return Wrap(HubNetwork(60000, 125000, 2000, 107),
                Stats("Wiki-Talk", 2394385, 5021410, 1, 566846));
  }
  if (name == "Wiki-Vote") {
    return Wrap(HubNetwork(7115, 52000, 400, 108),
                Stats("Wiki-Vote", 7115, 103689, 1, 5806));
  }

  // ---- Table II: RDF graphs ---------------------------------------------
  if (name == "Specific properties en") {
    return Wrap(RdfEntities(20000, 71, 400, 201),
                Stats("Specific properties en", 609014, 819764, 71, 236235));
  }
  if (name == "Types ru") {
    return Wrap(RdfTypes(64000, 60, 202, 1.0),
                Stats("Types ru", 642340, 642364, 1, 79));
  }
  if (name == "Types es") {
    return Wrap(RdfTypes(80000, 300, 203, 1.001),
                Stats("Types es", 818657, 819780, 1, 336));
  }
  if (name == "Types de with en") {
    return Wrap(RdfTypes(60000, 300, 204, 2.9),
                Stats("Types de with en", 618708, 1810909, 1, 335));
  }
  if (name == "Identica") {
    return Wrap(RdfEntities(4000, 12, 2000, 205),
                Stats("Identica", 16355, 29683, 12, 14588));
  }
  if (name == "Jamendo") {
    return Wrap(RdfEntities(30000, 25, 2500, 206),
                Stats("Jamendo", 438975, 1047898, 25, 396725));
  }

  // ---- Table III: version graphs -----------------------------------------
  if (name == "Tic-Tac-Toe") {
    return Wrap(GamePositions(626, 9, 3, 3, 301, /*perturb=*/0.0),
                Stats("Tic-Tac-Toe", 5634, 10016, 3, 9));
  }
  if (name == "Chess") {
    return Wrap(GamePositions(6000, 12, 12, 1500, 302, /*perturb=*/0.4),
                Stats("Chess", 76272, 113039, 12, 74592));
  }
  if (name == "DBLP60-70") {
    return Wrap(DblpVersions(11, 330, 120, 303, "DBLP60-70"),
                Stats("DBLP60-70", 24246, 23677, 1, 2739));
  }
  if (name == "DBLP60-90") {
    return Wrap(DblpVersions(31, 260, 130, 303, "DBLP60-90"),
                Stats("DBLP60-90", 658197, 954521, 1, 207305));
  }

  std::fprintf(stderr, "unknown paper dataset: %s\n", name.c_str());
  std::abort();
}

std::vector<std::string> NetworkGraphNames() {
  return {"CA-AstroPh", "CA-CondMat", "CA-GrQc",  "Email-Enron",
          "Email-EuAll", "NotreDame",  "Wiki-Talk", "Wiki-Vote"};
}

std::vector<std::string> RdfGraphNames() {
  return {"Specific properties en", "Types ru", "Types es",
          "Types de with en",        "Identica", "Jamendo"};
}

std::vector<std::string> VersionGraphNames() {
  return {"Tic-Tac-Toe", "Chess", "DBLP60-70", "DBLP60-90"};
}

}  // namespace grepair
