// Named stand-ins for the paper's 18 evaluation graphs (Tables I-III),
// each paired with the published statistics so bench output can print
// paper-vs-measured side by side.
//
// Large datasets are scaled down (the `scale` field reports the
// approximate edge-count ratio vs the paper) to keep the full bench
// suite laptop-scale; generators preserve the structural features that
// drive compression (degree skew, label usage, repeated components).
// See DESIGN.md section 4 for the substitution rationale.

#ifndef GREPAIR_DATASETS_PAPER_DATASETS_H_
#define GREPAIR_DATASETS_PAPER_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/datasets/generators.h"

namespace grepair {

/// \brief Published statistics of one paper dataset (Tables I-III).
struct PaperStats {
  std::string name;
  uint64_t nodes = 0;
  uint64_t edges = 0;
  uint32_t labels = 1;
  uint64_t fp_classes = 0;  ///< |[~FP]| column
};

/// \brief A generated stand-in with its paper counterpart.
struct PaperDataset {
  GeneratedGraph data;
  PaperStats paper;
  double scale = 1.0;  ///< our edge count / paper edge count (approx.)
};

/// \brief Builds the stand-in for a paper dataset by its table name
/// (e.g. "CA-GrQc", "Types ru", "DBLP60-70"). Aborts on unknown names;
/// use the *Names() lists below to enumerate.
PaperDataset MakePaperDataset(const std::string& name);

/// \brief Table I names (8 network graphs).
std::vector<std::string> NetworkGraphNames();

/// \brief Table II names (6 RDF graphs).
std::vector<std::string> RdfGraphNames();

/// \brief Table III names (4 version graphs).
std::vector<std::string> VersionGraphNames();

}  // namespace grepair

#endif  // GREPAIR_DATASETS_PAPER_DATASETS_H_
