#include "src/datasets/generators.h"

#include <algorithm>
#include <array>
#include <cassert>

#include "src/util/rng.h"

namespace grepair {

namespace {

Alphabet SimpleAlphabet(uint32_t num_labels) {
  Alphabet a;
  a.AddSimpleLabels(static_cast<int>(num_labels));
  return a;
}

}  // namespace

GeneratedGraph ErdosRenyi(uint32_t num_nodes, uint32_t num_edges,
                          uint64_t seed, uint32_t num_labels) {
  Rng rng(seed);
  std::vector<std::array<uint32_t, 3>> triples;
  triples.reserve(num_edges * 11 / 10);
  // Oversample: BuildSimpleGraph drops self-loops and duplicates.
  for (uint32_t i = 0; i < num_edges * 11 / 10 + 8; ++i) {
    uint32_t u = static_cast<uint32_t>(rng.UniformBounded(num_nodes));
    uint32_t v = static_cast<uint32_t>(rng.UniformBounded(num_nodes));
    uint32_t l = static_cast<uint32_t>(rng.UniformBounded(num_labels));
    triples.push_back({u, v, l});
  }
  GeneratedGraph g;
  g.name = "erdos-renyi";
  g.alphabet = SimpleAlphabet(num_labels);
  g.graph = BuildSimpleGraph(num_nodes, std::move(triples));
  return g;
}

GeneratedGraph BarabasiAlbert(uint32_t num_nodes, uint32_t edges_per_node,
                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::array<uint32_t, 3>> triples;
  // Repeated-endpoint list implements preferential attachment.
  std::vector<uint32_t> endpoints;
  endpoints.reserve(static_cast<size_t>(num_nodes) * edges_per_node * 2);
  uint32_t start = edges_per_node + 1;
  for (uint32_t v = 0; v < start && v + 1 < num_nodes; ++v) {
    triples.push_back({v, v + 1, 0});
    endpoints.push_back(v);
    endpoints.push_back(v + 1);
  }
  for (uint32_t v = start; v < num_nodes; ++v) {
    for (uint32_t e = 0; e < edges_per_node; ++e) {
      uint32_t target =
          endpoints[rng.UniformBounded(endpoints.size())];
      if (target == v) target = (target + 1) % num_nodes;
      triples.push_back({v, target, 0});
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  GeneratedGraph g;
  g.name = "barabasi-albert";
  g.alphabet = SimpleAlphabet(1);
  g.graph = BuildSimpleGraph(num_nodes, std::move(triples));
  return g;
}

GeneratedGraph CoAuthorship(uint32_t num_authors, uint32_t papers,
                            uint64_t seed) {
  Rng rng(seed);
  std::vector<std::array<uint32_t, 3>> triples;
  std::vector<uint32_t> endpoints;  // preferential author selection
  endpoints.push_back(0);
  for (uint32_t p = 0; p < papers; ++p) {
    uint32_t team = 2 + static_cast<uint32_t>(rng.UniformBounded(4));
    std::vector<uint32_t> authors;
    for (uint32_t a = 0; a < team; ++a) {
      uint32_t author;
      if (rng.Bernoulli(0.35)) {
        author = endpoints[rng.UniformBounded(endpoints.size())];
      } else {
        author = static_cast<uint32_t>(rng.UniformBounded(num_authors));
      }
      authors.push_back(author);
      endpoints.push_back(author);
    }
    std::sort(authors.begin(), authors.end());
    authors.erase(std::unique(authors.begin(), authors.end()),
                  authors.end());
    // Clique over the paper's authors, directed low id -> high id (the
    // paper treats CA-* as directed edge lists).
    for (size_t i = 0; i < authors.size(); ++i) {
      for (size_t j = i + 1; j < authors.size(); ++j) {
        triples.push_back({authors[i], authors[j], 0});
        triples.push_back({authors[j], authors[i], 0});
      }
    }
  }
  GeneratedGraph g;
  g.name = "co-authorship";
  g.alphabet = SimpleAlphabet(1);
  g.graph = BuildSimpleGraph(num_authors, std::move(triples));
  return g;
}

GeneratedGraph HubNetwork(uint32_t num_nodes, uint32_t num_edges,
                          uint32_t num_hubs, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::array<uint32_t, 3>> triples;
  triples.reserve(num_edges);
  for (uint32_t i = 0; i < num_edges; ++i) {
    uint32_t u, v;
    if (rng.Bernoulli(0.7)) {
      // Traffic touching a Zipf-popular hub.
      uint32_t hub = static_cast<uint32_t>(rng.Zipf(num_hubs, 1.1));
      uint32_t other = static_cast<uint32_t>(rng.UniformBounded(num_nodes));
      if (rng.Bernoulli(0.5)) {
        u = other;
        v = hub;
      } else {
        u = hub;
        v = other;
      }
    } else {
      u = static_cast<uint32_t>(rng.UniformBounded(num_nodes));
      v = static_cast<uint32_t>(rng.UniformBounded(num_nodes));
    }
    triples.push_back({u, v, 0});
  }
  GeneratedGraph g;
  g.name = "hub-network";
  g.alphabet = SimpleAlphabet(1);
  g.graph = BuildSimpleGraph(num_nodes, std::move(triples));
  return g;
}

GeneratedGraph RdfTypes(uint32_t instances, uint32_t num_types,
                        uint64_t seed, double mean_types) {
  Rng rng(seed);
  assert(mean_types >= 1.0);
  // Nodes: [0, num_types) are type objects, the rest are instances.
  uint32_t num_nodes = num_types + instances;
  std::vector<std::array<uint32_t, 3>> triples;
  triples.reserve(static_cast<size_t>(instances * mean_types) + 16);
  // Extra type edges follow a capped geometric with the right mean.
  double extra_prob = (mean_types - 1.0) / mean_types;
  for (uint32_t i = 0; i < instances; ++i) {
    uint32_t subject = num_types + i;
    uint32_t count = 1 + rng.GeometricCapped(1.0 - extra_prob, 6);
    count = std::min(count, num_types);
    // Multi-typed instances follow an ontology *chain* (type, parent,
    // grandparent, ...), as in DBpedia's class hierarchy: instances of
    // the same leaf type share the identical type set, which keeps
    // |[~FP]| tiny — the property the paper's "Types de with en" graph
    // exhibits (335 classes over 1.8M edges) and that gRePair exploits.
    // Popular Zipf ranks map to high ids so their ancestor chains are
    // long enough for the requested depth.
    uint32_t leaf = num_types - 1 -
                    static_cast<uint32_t>(rng.Zipf(num_types, 1.05));
    uint32_t type = leaf;
    for (uint32_t c = 0; c < count; ++c) {
      triples.push_back({subject, type, 0});
      if (type == 0) break;
      type /= 2;  // parent in the implicit binary hierarchy
    }
  }
  GeneratedGraph g;
  g.name = "rdf-types";
  g.alphabet = SimpleAlphabet(1);
  g.graph = BuildSimpleGraph(num_nodes, std::move(triples));
  return g;
}

GeneratedGraph RdfEntities(uint32_t num_entities, uint32_t num_predicates,
                           uint32_t num_templates, uint64_t seed) {
  Rng rng(seed);
  // Template t = subset of predicates the entity type uses, each with a
  // choice of shared object pool or a fresh private object.
  struct Field {
    uint32_t predicate;
    bool shared;      // points into a small shared pool
    uint32_t pool;    // which shared pool
  };
  std::vector<std::vector<Field>> templates(num_templates);
  uint32_t num_pools = std::max<uint32_t>(4, num_predicates);
  uint32_t max_extra_fields = std::min<uint32_t>(6, num_predicates);
  for (auto& t : templates) {
    uint32_t fields =
        2 + static_cast<uint32_t>(rng.UniformBounded(max_extra_fields));
    for (uint32_t f = 0; f < fields; ++f) {
      Field field;
      field.predicate =
          static_cast<uint32_t>(rng.UniformBounded(num_predicates));
      field.shared = rng.Bernoulli(0.4);
      field.pool = static_cast<uint32_t>(rng.UniformBounded(num_pools));
      t.push_back(field);
    }
  }
  const uint32_t pool_size = 24;
  uint32_t shared_base = 0;
  uint32_t entity_base = shared_base + num_pools * pool_size;
  std::vector<std::array<uint32_t, 3>> triples;
  uint32_t next_private = entity_base + num_entities;
  std::vector<std::array<uint32_t, 3>> private_edges;
  for (uint32_t e = 0; e < num_entities; ++e) {
    uint32_t subject = entity_base + e;
    const auto& t = templates[rng.Zipf(num_templates, 1.0)];
    for (const Field& f : t) {
      uint32_t object;
      if (f.shared) {
        object = shared_base + f.pool * pool_size +
                 static_cast<uint32_t>(rng.Zipf(pool_size, 1.0));
      } else {
        object = next_private++;
      }
      triples.push_back({subject, object, f.predicate});
    }
  }
  GeneratedGraph g;
  g.name = "rdf-entities";
  g.alphabet = SimpleAlphabet(num_predicates);
  g.graph = BuildSimpleGraph(next_private, std::move(triples));
  return g;
}

GeneratedGraph CycleWithDiagonal() {
  GeneratedGraph g;
  g.name = "cycle4+diag";
  g.alphabet = SimpleAlphabet(1);
  g.graph = Hypergraph(4);
  g.graph.AddSimpleEdge(0, 1, 0);
  g.graph.AddSimpleEdge(1, 2, 0);
  g.graph.AddSimpleEdge(2, 3, 0);
  g.graph.AddSimpleEdge(3, 0, 0);
  g.graph.AddSimpleEdge(0, 2, 0);
  return g;
}

GeneratedGraph DisjointCopies(const GeneratedGraph& unit, uint32_t copies,
                              const std::string& name) {
  std::vector<const Hypergraph*> parts(copies, &unit.graph);
  GeneratedGraph g = DisjointUnion(parts, unit.alphabet, name);
  return g;
}

GeneratedGraph DisjointUnion(const std::vector<const Hypergraph*>& parts,
                             const Alphabet& alphabet,
                             const std::string& name) {
  GeneratedGraph g;
  g.name = name;
  g.alphabet = alphabet;
  uint64_t total_nodes = 0;
  for (const Hypergraph* p : parts) total_nodes += p->num_nodes();
  g.graph = Hypergraph(static_cast<uint32_t>(total_nodes));
  uint32_t base = 0;
  for (const Hypergraph* p : parts) {
    for (const auto& e : p->edges()) {
      std::vector<NodeId> att;
      att.reserve(e.att.size());
      for (NodeId v : e.att) att.push_back(base + v);
      g.graph.AddEdge(e.label, std::move(att));
    }
    base += p->num_nodes();
  }
  return g;
}

GeneratedGraph GamePositions(uint32_t num_positions, uint32_t nodes_per_pos,
                             uint32_t num_labels, uint32_t num_templates,
                             uint64_t seed, double perturb) {
  Rng rng(seed);
  // Build the templates: small labeled connected digraphs (deduplicated
  // through BuildSimpleGraph so positions stay simple).
  std::vector<Hypergraph> templates;
  for (uint32_t t = 0; t < num_templates; ++t) {
    std::vector<std::array<uint32_t, 3>> triples;
    // Spanning path keeps positions connected.
    for (uint32_t v = 0; v + 1 < nodes_per_pos; ++v) {
      triples.push_back(
          {v, v + 1, static_cast<uint32_t>(rng.UniformBounded(num_labels))});
    }
    uint32_t extra = nodes_per_pos / 2 +
                     static_cast<uint32_t>(rng.UniformBounded(3));
    for (uint32_t e = 0; e < extra; ++e) {
      uint32_t u = static_cast<uint32_t>(rng.UniformBounded(nodes_per_pos));
      uint32_t v = static_cast<uint32_t>(rng.UniformBounded(nodes_per_pos));
      triples.push_back(
          {u, v, static_cast<uint32_t>(rng.UniformBounded(num_labels))});
    }
    templates.push_back(BuildSimpleGraph(nodes_per_pos, std::move(triples)));
  }
  // Positions: a template, occasionally with one edge relabeled (and
  // re-deduplicated, since the relabel can collide with a parallel
  // edge).
  std::vector<Hypergraph> positions;
  positions.reserve(num_positions);
  for (uint32_t p = 0; p < num_positions; ++p) {
    Hypergraph h = templates[rng.Zipf(num_templates, 0.8)];
    if (rng.Bernoulli(perturb) && h.num_edges() > 0) {
      EdgeId e = static_cast<EdgeId>(rng.UniformBounded(h.num_edges()));
      h.mutable_edge(e).label =
          static_cast<Label>(rng.UniformBounded(num_labels));
      std::vector<std::array<uint32_t, 3>> triples;
      for (const auto& edge : h.edges()) {
        triples.push_back({edge.att[0], edge.att[1], edge.label});
      }
      h = BuildSimpleGraph(nodes_per_pos, std::move(triples));
    }
    positions.push_back(std::move(h));
  }
  std::vector<const Hypergraph*> parts;
  parts.reserve(positions.size());
  for (const auto& p : positions) parts.push_back(&p);
  GeneratedGraph g =
      DisjointUnion(parts, SimpleAlphabet(num_labels), "game-positions");
  return g;
}

std::vector<Hypergraph> CoAuthorshipHistory(uint32_t years,
                                            uint32_t authors_per_year,
                                            uint32_t papers_per_year,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<Hypergraph> snapshots;
  std::vector<std::array<uint32_t, 3>> triples;
  std::vector<uint32_t> endpoints;
  endpoints.push_back(0);
  uint32_t num_authors = authors_per_year;  // year-0 population
  for (uint32_t y = 0; y < years; ++y) {
    for (uint32_t p = 0; p < papers_per_year; ++p) {
      uint32_t team = 2 + static_cast<uint32_t>(rng.UniformBounded(3));
      std::vector<uint32_t> authors;
      for (uint32_t a = 0; a < team; ++a) {
        uint32_t author;
        if (rng.Bernoulli(0.45)) {
          author = endpoints[rng.UniformBounded(endpoints.size())];
        } else {
          author = static_cast<uint32_t>(rng.UniformBounded(num_authors));
        }
        authors.push_back(author);
        endpoints.push_back(author);
      }
      std::sort(authors.begin(), authors.end());
      authors.erase(std::unique(authors.begin(), authors.end()),
                    authors.end());
      for (size_t i = 0; i < authors.size(); ++i) {
        for (size_t j = i + 1; j < authors.size(); ++j) {
          triples.push_back({authors[i], authors[j], 0});
        }
      }
    }
    snapshots.push_back(BuildSimpleGraph(num_authors, triples));
    num_authors += authors_per_year;
  }
  return snapshots;
}

GeneratedGraph DblpVersions(uint32_t num_versions, uint32_t authors_per_year,
                            uint32_t papers_per_year, uint64_t seed,
                            const std::string& name) {
  auto snapshots = CoAuthorshipHistory(num_versions, authors_per_year,
                                       papers_per_year, seed);
  std::vector<const Hypergraph*> parts;
  parts.reserve(snapshots.size());
  for (const auto& s : snapshots) parts.push_back(&s);
  return DisjointUnion(parts, SimpleAlphabet(1), name);
}

}  // namespace grepair
