#include "src/graph/graph_io.h"

#include <array>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace grepair {

Status SaveGraphText(const Hypergraph& g, const Alphabet& alphabet,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  out << "grepair-graph " << g.num_nodes() << " " << g.num_edges() << " "
      << alphabet.size() << "\n";
  for (Label l = 0; l < alphabet.size(); ++l) {
    if (l) out << " ";
    out << alphabet.rank(l);
  }
  out << "\n";
  for (const auto& e : g.edges()) {
    out << e.label;
    for (NodeId v : e.att) out << " " << v;
    out << "\n";
  }
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

Result<LoadedGraph> ParseGraphText(std::istream& in) {
  std::string magic;
  uint32_t num_nodes = 0, num_edges = 0, num_labels = 0;
  if (!(in >> magic >> num_nodes >> num_edges >> num_labels) ||
      magic != "grepair-graph") {
    return Status::Corruption("bad graph header");
  }
  LoadedGraph result;
  result.graph = Hypergraph(num_nodes);
  for (uint32_t l = 0; l < num_labels; ++l) {
    int rank = 0;
    if (!(in >> rank) || rank < 1 || rank > 255) {
      return Status::Corruption("bad label rank");
    }
    result.alphabet.Add("l" + std::to_string(l), rank);
  }
  for (uint32_t i = 0; i < num_edges; ++i) {
    Label label = 0;
    if (!(in >> label) || label >= num_labels) {
      return Status::Corruption("bad edge label at edge " + std::to_string(i));
    }
    int rank = result.alphabet.rank(label);
    std::vector<NodeId> att(rank);
    for (int a = 0; a < rank; ++a) {
      if (!(in >> att[a]) || att[a] >= num_nodes) {
        return Status::Corruption("bad attachment at edge " +
                                  std::to_string(i));
      }
    }
    result.graph.AddEdge(label, std::move(att));
  }
  GREPAIR_RETURN_IF_ERROR(result.graph.Validate(result.alphabet));
  return result;
}

Result<LoadedGraph> LoadGraphText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ParseGraphText(in);
}

Result<LoadedGraph> LoadSnapEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::unordered_map<uint64_t, uint32_t> remap;
  std::vector<std::array<uint32_t, 3>> triples;
  std::string line;
  auto intern = [&](uint64_t raw) {
    auto [it, inserted] = remap.emplace(raw, static_cast<uint32_t>(remap.size()));
    return it->second;
  };
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    uint64_t u = 0, v = 0;
    if (!(ls >> u >> v)) {
      return Status::Corruption("bad edge line: " + line);
    }
    triples.push_back({intern(u), intern(v), 0});
  }
  LoadedGraph result;
  result.alphabet.Add("edge", 2);
  result.graph =
      BuildSimpleGraph(static_cast<uint32_t>(remap.size()), std::move(triples));
  return result;
}

}  // namespace grepair
