// Plain-text hypergraph I/O.
//
// Format (whitespace separated):
//   line 1: "grepair-graph <num_nodes> <num_edges> <num_labels>"
//   line 2: "<rank of label 0> <rank of label 1> ..."
//   then one line per edge: "<label> <v1> <v2> ... <v_rank>"
// Node ids are 0-based. External nodes are not stored (data graphs have
// none). This is the interchange format used by the examples; SNAP-style
// "u v" edge lists (one unlabeled directed edge per line, '#' comments)
// are supported by LoadSnapEdgeList for downstream users with real data.

#ifndef GREPAIR_GRAPH_GRAPH_IO_H_
#define GREPAIR_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "src/graph/hypergraph.h"
#include "src/util/status.h"

namespace grepair {

/// \brief Writes graph + alphabet in the native text format.
Status SaveGraphText(const Hypergraph& g, const Alphabet& alphabet,
                     const std::string& path);

/// \brief Loaded graph together with its alphabet.
struct LoadedGraph {
  Hypergraph graph;
  Alphabet alphabet;
};

/// \brief Reads the native text format.
Result<LoadedGraph> LoadGraphText(const std::string& path);

/// \brief Reads a SNAP-style "u v" directed edge list ('#' comments,
/// arbitrary ids compacted to 0..n-1; self-loops and duplicates dropped).
/// All edges get a single label of rank 2.
Result<LoadedGraph> LoadSnapEdgeList(const std::string& path);

/// \brief Parses the native format from a stream (testing hook).
Result<LoadedGraph> ParseGraphText(std::istream& in);

}  // namespace grepair

#endif  // GREPAIR_GRAPH_GRAPH_IO_H_
