#include "src/graph/hypergraph.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/util/hashing.h"

namespace grepair {

Label Alphabet::Add(std::string name, int rank) {
  assert(rank >= 1 && rank <= 255);
  ranks_.push_back(static_cast<uint8_t>(rank));
  names_.push_back(std::move(name));
  return static_cast<Label>(ranks_.size() - 1);
}

Label Alphabet::AddSimpleLabels(int count) {
  Label first = static_cast<Label>(ranks_.size());
  for (int i = 0; i < count; ++i) {
    Add("l" + std::to_string(first + i), 2);
  }
  return first;
}

EdgeId Hypergraph::AddEdge(Label label, std::vector<NodeId> att) {
  HEdge e;
  e.label = label;
  e.att = std::move(att);
  edges_.push_back(std::move(e));
  return static_cast<EdgeId>(edges_.size() - 1);
}

uint64_t Hypergraph::EdgeSize() const {
  uint64_t size = 0;
  for (const auto& e : edges_) {
    size += e.att.size() <= 2 ? 1 : e.att.size();
  }
  return size;
}

Status Hypergraph::Validate(const Alphabet& alphabet) const {
  for (EdgeId i = 0; i < edges_.size(); ++i) {
    const HEdge& e = edges_[i];
    if (e.label >= alphabet.size()) {
      return Status::InvalidArgument("edge " + std::to_string(i) +
                                     " has unknown label");
    }
    if (static_cast<int>(e.att.size()) != alphabet.rank(e.label)) {
      return Status::InvalidArgument(
          "edge " + std::to_string(i) + " rank " +
          std::to_string(e.att.size()) + " != label rank " +
          std::to_string(alphabet.rank(e.label)));
    }
    for (size_t a = 0; a < e.att.size(); ++a) {
      if (e.att[a] >= num_nodes_) {
        return Status::InvalidArgument("edge " + std::to_string(i) +
                                       " references missing node");
      }
      for (size_t b = a + 1; b < e.att.size(); ++b) {
        if (e.att[a] == e.att[b]) {
          return Status::InvalidArgument(
              "edge " + std::to_string(i) +
              " attaches the same node twice (restriction 1)");
        }
      }
    }
  }
  std::unordered_set<NodeId> seen;
  for (NodeId v : ext_) {
    if (v >= num_nodes_) {
      return Status::InvalidArgument("external node out of range");
    }
    if (!seen.insert(v).second) {
      return Status::InvalidArgument(
          "external sequence repeats a node (restriction 2)");
    }
  }
  return Status::OK();
}

bool Hypergraph::IsSimple() const {
  std::unordered_set<uint64_t> seen;
  for (const auto& e : edges_) {
    if (e.att.size() != 2) return false;
    uint64_t key = (static_cast<uint64_t>(e.att[0]) << 32) | e.att[1];
    key = HashCombine(key, e.label);
    if (!seen.insert(key).second) return false;
  }
  return true;
}

bool Hypergraph::EqualUpToEdgeOrder(const Hypergraph& other) const {
  if (num_nodes_ != other.num_nodes_ || ext_ != other.ext_ ||
      edges_.size() != other.edges_.size()) {
    return false;
  }
  auto sorted = [](const std::vector<HEdge>& edges) {
    std::vector<HEdge> s = edges;
    std::sort(s.begin(), s.end(), [](const HEdge& a, const HEdge& b) {
      if (a.label != b.label) return a.label < b.label;
      return a.att < b.att;
    });
    return s;
  };
  return sorted(edges_) == sorted(other.edges_);
}

std::vector<std::vector<EdgeId>> Hypergraph::BuildIncidence() const {
  std::vector<std::vector<EdgeId>> inc(num_nodes_);
  for (EdgeId i = 0; i < edges_.size(); ++i) {
    for (NodeId v : edges_[i].att) inc[v].push_back(i);
  }
  return inc;
}

std::vector<uint32_t> Hypergraph::Degrees() const {
  std::vector<uint32_t> deg(num_nodes_, 0);
  for (const auto& e : edges_) {
    for (NodeId v : e.att) ++deg[v];
  }
  return deg;
}

std::string Hypergraph::ToString(const Alphabet* alphabet) const {
  std::ostringstream out;
  out << "n=" << num_nodes_ << " ext=[";
  for (size_t i = 0; i < ext_.size(); ++i) {
    if (i) out << " ";
    out << ext_[i];
  }
  out << "] edges:";
  for (const auto& e : edges_) {
    out << " ";
    if (alphabet != nullptr) {
      out << alphabet->name(e.label);
    } else {
      out << "L" << e.label;
    }
    out << "(";
    for (size_t i = 0; i < e.att.size(); ++i) {
      if (i) out << ",";
      out << e.att[i];
    }
    out << ")";
  }
  return out.str();
}

Hypergraph BuildSimpleGraph(uint32_t num_nodes,
                            std::vector<std::array<uint32_t, 3>> triples) {
  Hypergraph g(num_nodes);
  // Exact dedup: (u,v) pair -> labels already present on that pair.
  std::unordered_map<uint64_t, std::vector<uint32_t>> seen;
  seen.reserve(triples.size() * 2);
  for (const auto& t : triples) {
    if (t[0] == t[1]) continue;  // self-loop, excluded by restriction (1)
    if (t[0] >= num_nodes || t[1] >= num_nodes) continue;
    uint64_t key = (static_cast<uint64_t>(t[0]) << 32) | t[1];
    std::vector<uint32_t>& labels = seen[key];
    if (std::find(labels.begin(), labels.end(), t[2]) != labels.end()) {
      continue;  // duplicate triple
    }
    labels.push_back(t[2]);
    g.AddSimpleEdge(t[0], t[1], t[2]);
  }
  return g;
}

}  // namespace grepair
