#include "src/graph/wl_hash.h"

#include <algorithm>
#include <vector>

#include "src/graph/node_order.h"
#include "src/util/hashing.h"

namespace grepair {

uint64_t WlHash(const Hypergraph& g) {
  auto fp = ComputeFpRefinement(g);

  // Hash the multiset of edges rendered with stable node colors, plus the
  // multiset of node colors (covers isolated nodes) and the external
  // sequence rendered with colors.
  std::vector<uint64_t> edge_hashes;
  edge_hashes.reserve(g.num_edges());
  for (const auto& e : g.edges()) {
    uint64_t h = HashCombine(0x9E1Eull, e.label);
    for (NodeId v : e.att) h = HashCombine(h, fp.colors[v]);
    edge_hashes.push_back(h);
  }
  std::sort(edge_hashes.begin(), edge_hashes.end());

  std::vector<uint64_t> node_colors;
  node_colors.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    node_colors.push_back(fp.colors[v]);
  }
  std::sort(node_colors.begin(), node_colors.end());

  uint64_t h = HashCombine(0xC0FFEEull, g.num_nodes());
  h = HashCombine(h, HashVector(edge_hashes));
  h = HashCombine(h, HashVector(node_colors));
  for (NodeId v : g.ext()) h = HashCombine(h, fp.colors[v]);
  h = HashCombine(h, g.ext().size());
  return h;
}

}  // namespace grepair
