// Node orders for gRePair occurrence counting (Section III-B1).
//
// The order omega in which gRePair visits nodes during digram counting is
// the main quality knob of the greedy non-overlapping-occurrence
// approximation. The paper evaluates:
//   * natural  - node IDs as given,
//   * BFS      - breadth-first traversal order,
//   * random   - a seeded shuffle (used in Fig. 14),
//   * FP0      - nodes sorted by degree (iteration 0 of FP),
//   * FP       - fixpoint of an iterated neighborhood-color refinement
//                (a 1-dimensional Weisfeiler-Leman refinement seeded with
//                degrees; Fig. 8 of the paper).
//
// FP also induces the equivalence relation ~FP (equal final colors); the
// number of its classes |[~FP]| is reported in the dataset tables and
// correlates with compression (Fig. 11).

#ifndef GREPAIR_GRAPH_NODE_ORDER_H_
#define GREPAIR_GRAPH_NODE_ORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/hypergraph.h"

namespace grepair {

/// \brief Available node orders.
enum class NodeOrderKind {
  kNatural,
  kBfs,
  kDfs,
  kRandom,
  kFp0,  ///< degree order (FP iteration 0)
  kFp,   ///< fixpoint neighborhood refinement
};

/// \brief Parses "natural"/"bfs"/"dfs"/"random"/"fp0"/"fp".
bool ParseNodeOrderKind(const std::string& name, NodeOrderKind* kind);
std::string NodeOrderKindName(NodeOrderKind kind);

/// \brief Result of the FP fixpoint refinement.
struct FpRefinement {
  /// Final color per node; colors are dense ranks 0..num_classes-1
  /// assigned by lexicographic signature order, so they define both the
  /// FP node order and the ~FP equivalence relation.
  std::vector<uint32_t> colors;
  uint32_t num_classes = 0;
  int iterations = 0;
};

/// \brief Runs the color refinement of Section III-B1 to its fixpoint
/// (or until `max_iterations`).
///
/// c_0(v) = deg(v); each round maps v to the tuple of its own color and
/// the colors of its incident edges' attachments (with edge label and
/// the positions involved, which extends the undirected definition to
/// directed labeled hypergraphs as the paper prescribes), then replaces
/// colors by the lexicographic rank of the tuples. Signatures are
/// compared exactly (no hashing), so |[~FP]| is exact.
FpRefinement ComputeFpRefinement(const Hypergraph& g,
                                 int max_iterations = 1 << 20);

/// \brief Number of equivalence classes of ~FP (column |[~FP]| of the
/// paper's dataset tables).
uint32_t CountFpClasses(const Hypergraph& g);

/// \brief Computes the visiting order: a permutation `order` with
/// `order[i]` = the i-th node gRePair should visit. Ties in FP0/FP are
/// broken by node id; `seed` only affects kRandom.
std::vector<NodeId> ComputeNodeOrder(const Hypergraph& g, NodeOrderKind kind,
                                     uint64_t seed = 42);

}  // namespace grepair

#endif  // GREPAIR_GRAPH_NODE_ORDER_H_
