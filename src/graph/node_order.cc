#include "src/graph/node_order.h"

#include <algorithm>
#include <numeric>

#include "src/graph/graph_algos.h"
#include "src/util/rng.h"

namespace grepair {

bool ParseNodeOrderKind(const std::string& name, NodeOrderKind* kind) {
  if (name == "natural") *kind = NodeOrderKind::kNatural;
  else if (name == "bfs") *kind = NodeOrderKind::kBfs;
  else if (name == "dfs") *kind = NodeOrderKind::kDfs;
  else if (name == "random") *kind = NodeOrderKind::kRandom;
  else if (name == "fp0") *kind = NodeOrderKind::kFp0;
  else if (name == "fp") *kind = NodeOrderKind::kFp;
  else return false;
  return true;
}

std::string NodeOrderKindName(NodeOrderKind kind) {
  switch (kind) {
    case NodeOrderKind::kNatural: return "natural";
    case NodeOrderKind::kBfs: return "bfs";
    case NodeOrderKind::kDfs: return "dfs";
    case NodeOrderKind::kRandom: return "random";
    case NodeOrderKind::kFp0: return "fp0";
    case NodeOrderKind::kFp: return "fp";
  }
  return "?";
}

namespace {

// Lexicographic comparison of two spans in the signature arena.
struct SigSpan {
  size_t offset;
  size_t length;
};

bool SigLess(const std::vector<uint64_t>& arena, const SigSpan& a,
             const SigSpan& b) {
  size_t n = std::min(a.length, b.length);
  for (size_t i = 0; i < n; ++i) {
    uint64_t x = arena[a.offset + i];
    uint64_t y = arena[b.offset + i];
    if (x != y) return x < y;
  }
  return a.length < b.length;
}

bool SigEqual(const std::vector<uint64_t>& arena, const SigSpan& a,
              const SigSpan& b) {
  if (a.length != b.length) return false;
  for (size_t i = 0; i < a.length; ++i) {
    if (arena[a.offset + i] != arena[b.offset + i]) return false;
  }
  return true;
}

}  // namespace

FpRefinement ComputeFpRefinement(const Hypergraph& g, int max_iterations) {
  const uint32_t n = g.num_nodes();
  FpRefinement result;
  result.colors.assign(n, 0);
  if (n == 0) return result;

  auto incidence = g.BuildIncidence();

  // c_0(v) = deg(v), densely ranked.
  {
    auto degrees = g.Degrees();
    std::vector<NodeId> by_degree(n);
    std::iota(by_degree.begin(), by_degree.end(), 0u);
    std::stable_sort(by_degree.begin(), by_degree.end(),
                     [&](NodeId a, NodeId b) { return degrees[a] < degrees[b]; });
    uint32_t color = 0;
    for (uint32_t i = 0; i < n; ++i) {
      if (i > 0 && degrees[by_degree[i]] != degrees[by_degree[i - 1]]) ++color;
      result.colors[by_degree[i]] = color;
    }
    result.num_classes = color + 1;
  }

  std::vector<uint32_t> next_colors(n);
  std::vector<uint64_t> arena;
  std::vector<SigSpan> spans(n);
  std::vector<std::vector<uint64_t>> edge_tuples;

  for (int iter = 0; iter < max_iterations; ++iter) {
    result.iterations = iter;
    arena.clear();
    // Build the signature of every node: own color followed by the
    // sorted tuples of its incident edges. An edge tuple records the
    // label, the position of v within the edge, and the current colors
    // of all attached nodes in attachment order — this is the
    // "straightforward extension to directed labeled graphs" of
    // Section III-B1 (direction = position, label included).
    for (NodeId v = 0; v < n; ++v) {
      edge_tuples.clear();
      edge_tuples.reserve(incidence[v].size());
      for (EdgeId e : incidence[v]) {
        const HEdge& edge = g.edge(e);
        std::vector<uint64_t> tuple;
        tuple.reserve(edge.att.size() + 2);
        tuple.push_back(edge.label);
        uint64_t pos = 0;
        for (size_t i = 0; i < edge.att.size(); ++i) {
          if (edge.att[i] == v) pos = i;
        }
        tuple.push_back(pos);
        for (NodeId u : edge.att) tuple.push_back(result.colors[u]);
        edge_tuples.push_back(std::move(tuple));
      }
      std::sort(edge_tuples.begin(), edge_tuples.end());
      size_t offset = arena.size();
      arena.push_back(result.colors[v]);
      for (const auto& tuple : edge_tuples) {
        arena.push_back(tuple.size());  // length prefix: unambiguous flatten
        arena.insert(arena.end(), tuple.begin(), tuple.end());
      }
      spans[v] = {offset, arena.size() - offset};
    }

    // Rank signatures lexicographically to obtain the next coloring.
    std::vector<NodeId> by_sig(n);
    std::iota(by_sig.begin(), by_sig.end(), 0u);
    std::stable_sort(by_sig.begin(), by_sig.end(), [&](NodeId a, NodeId b) {
      return SigLess(arena, spans[a], spans[b]);
    });
    uint32_t color = 0;
    for (uint32_t i = 0; i < n; ++i) {
      if (i > 0 &&
          !SigEqual(arena, spans[by_sig[i]], spans[by_sig[i - 1]])) {
        ++color;
      }
      next_colors[by_sig[i]] = color;
    }
    uint32_t new_classes = color + 1;

    // Refinement only splits classes; equal counts imply a fixpoint.
    if (new_classes == result.num_classes) {
      result.iterations = iter + 1;
      return result;
    }
    result.colors = next_colors;
    result.num_classes = new_classes;
  }
  return result;
}

uint32_t CountFpClasses(const Hypergraph& g) {
  return ComputeFpRefinement(g).num_classes;
}

std::vector<NodeId> ComputeNodeOrder(const Hypergraph& g, NodeOrderKind kind,
                                     uint64_t seed) {
  const uint32_t n = g.num_nodes();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  switch (kind) {
    case NodeOrderKind::kNatural:
      return order;
    case NodeOrderKind::kBfs:
      return BfsOrder(g);
    case NodeOrderKind::kDfs:
      return DfsOrder(g);
    case NodeOrderKind::kRandom: {
      Rng rng(seed);
      rng.Shuffle(&order);
      return order;
    }
    case NodeOrderKind::kFp0: {
      auto degrees = g.Degrees();
      std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return degrees[a] < degrees[b];
      });
      return order;
    }
    case NodeOrderKind::kFp: {
      auto fp = ComputeFpRefinement(g);
      std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return fp.colors[a] < fp.colors[b];
      });
      return order;
    }
  }
  return order;
}

}  // namespace grepair
