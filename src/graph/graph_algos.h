// Classic graph algorithms over hypergraphs, used as substrates by
// gRePair (connected components for the virtual-edge pass), node orders
// (BFS/DFS traversals) and grammar queries (Tarjan SCC for skeleton
// graphs, Theorem 6).
//
// Connectivity treats a hyperedge as connecting all of its attached
// nodes; direction is ignored. Directed reachability (BFS/SCC) applies
// to rank-2 edges interpreted as att[0] -> att[1].

#ifndef GREPAIR_GRAPH_GRAPH_ALGOS_H_
#define GREPAIR_GRAPH_GRAPH_ALGOS_H_

#include <cstdint>
#include <vector>

#include "src/graph/hypergraph.h"

namespace grepair {

/// \brief Component id (0-based, dense) per node, undirected hyperedge
/// connectivity. `num_components` receives the count if non-null.
std::vector<uint32_t> ConnectedComponents(const Hypergraph& g,
                                          uint32_t* num_components = nullptr);

/// \brief Nodes in BFS discovery order. Roots are chosen as the
/// lowest-id unvisited node, so disconnected graphs are fully covered.
std::vector<NodeId> BfsOrder(const Hypergraph& g);

/// \brief Nodes in DFS discovery (preorder) order, same root policy.
std::vector<NodeId> DfsOrder(const Hypergraph& g);

/// \brief Directed adjacency lists over the rank-2 edges of g
/// (att[0] -> att[1]); hyperedges are ignored.
std::vector<std::vector<NodeId>> DirectedAdjacency(const Hypergraph& g);

/// \brief Set of nodes reachable from `source` following rank-2 edges
/// forward. Returned as a node-indexed bool mask.
std::vector<char> DirectedReachable(const Hypergraph& g, NodeId source);

/// \brief Result of Tarjan's strongly-connected-components algorithm.
struct SccResult {
  /// Component id per node; components are numbered in reverse
  /// topological order (an edge u->v implies comp[u] >= comp[v]).
  std::vector<uint32_t> comp;
  uint32_t num_components = 0;
};

/// \brief Tarjan SCC over explicit adjacency lists (iterative, safe for
/// deep graphs).
SccResult TarjanScc(const std::vector<std::vector<NodeId>>& adj);

/// \brief Degree distribution summary used by dataset reports.
struct DegreeStats {
  uint32_t min_degree = 0;
  uint32_t max_degree = 0;
  double mean_degree = 0.0;
};

DegreeStats ComputeDegreeStats(const Hypergraph& g);

}  // namespace grepair

#endif  // GREPAIR_GRAPH_GRAPH_ALGOS_H_
