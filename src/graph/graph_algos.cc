#include "src/graph/graph_algos.h"

#include <algorithm>
#include <deque>

#include "src/util/union_find.h"

namespace grepair {

std::vector<uint32_t> ConnectedComponents(const Hypergraph& g,
                                          uint32_t* num_components) {
  UnionFind uf(g.num_nodes());
  for (const auto& e : g.edges()) {
    for (size_t i = 1; i < e.att.size(); ++i) {
      uf.Union(e.att[0], e.att[i]);
    }
  }
  std::vector<uint32_t> comp(g.num_nodes(), 0);
  std::vector<uint32_t> remap(g.num_nodes(), kInvalidNode);
  uint32_t next = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    uint32_t root = uf.Find(v);
    if (remap[root] == kInvalidNode) remap[root] = next++;
    comp[v] = remap[root];
  }
  if (num_components != nullptr) *num_components = next;
  return comp;
}

namespace {

// Shared BFS/DFS scaffolding: explores from each unvisited lowest-id root.
template <bool kBfs>
std::vector<NodeId> TraversalOrder(const Hypergraph& g) {
  auto incidence = g.BuildIncidence();
  std::vector<char> visited(g.num_nodes(), 0);
  std::vector<NodeId> order;
  order.reserve(g.num_nodes());
  std::deque<NodeId> frontier;
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    if (visited[root]) continue;
    visited[root] = 1;
    frontier.push_back(root);
    while (!frontier.empty()) {
      NodeId v;
      if constexpr (kBfs) {
        v = frontier.front();
        frontier.pop_front();
      } else {
        v = frontier.back();
        frontier.pop_back();
      }
      order.push_back(v);
      for (EdgeId e : incidence[v]) {
        for (NodeId u : g.edge(e).att) {
          if (!visited[u]) {
            visited[u] = 1;
            frontier.push_back(u);
          }
        }
      }
    }
  }
  return order;
}

}  // namespace

std::vector<NodeId> BfsOrder(const Hypergraph& g) {
  return TraversalOrder<true>(g);
}

std::vector<NodeId> DfsOrder(const Hypergraph& g) {
  return TraversalOrder<false>(g);
}

std::vector<std::vector<NodeId>> DirectedAdjacency(const Hypergraph& g) {
  std::vector<std::vector<NodeId>> adj(g.num_nodes());
  for (const auto& e : g.edges()) {
    if (e.att.size() == 2) adj[e.att[0]].push_back(e.att[1]);
  }
  return adj;
}

std::vector<char> DirectedReachable(const Hypergraph& g, NodeId source) {
  auto adj = DirectedAdjacency(g);
  std::vector<char> reached(g.num_nodes(), 0);
  std::vector<NodeId> stack{source};
  reached[source] = 1;
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    for (NodeId u : adj[v]) {
      if (!reached[u]) {
        reached[u] = 1;
        stack.push_back(u);
      }
    }
  }
  return reached;
}

SccResult TarjanScc(const std::vector<std::vector<NodeId>>& adj) {
  const uint32_t n = static_cast<uint32_t>(adj.size());
  SccResult result;
  result.comp.assign(n, kInvalidNode);

  std::vector<uint32_t> index(n, kInvalidNode);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<NodeId> stack;
  uint32_t next_index = 0;

  // Iterative Tarjan: frame = (node, next child position).
  struct Frame {
    NodeId v;
    size_t child;
  };
  std::vector<Frame> frames;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kInvalidNode) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!frames.empty()) {
      Frame& f = frames.back();
      NodeId v = f.v;
      if (f.child < adj[v].size()) {
        NodeId w = adj[v][f.child++];
        if (index[w] == kInvalidNode) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          // v is the root of an SCC; pop it.
          for (;;) {
            NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            result.comp[w] = result.num_components;
            if (w == v) break;
          }
          ++result.num_components;
        }
        frames.pop_back();
        if (!frames.empty()) {
          NodeId parent = frames.back().v;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  return result;
}

DegreeStats ComputeDegreeStats(const Hypergraph& g) {
  DegreeStats stats;
  auto degrees = g.Degrees();
  if (degrees.empty()) return stats;
  stats.min_degree = degrees[0];
  stats.max_degree = degrees[0];
  uint64_t total = 0;
  for (uint32_t d : degrees) {
    stats.min_degree = std::min(stats.min_degree, d);
    stats.max_degree = std::max(stats.max_degree, d);
    total += d;
  }
  stats.mean_degree = static_cast<double>(total) / degrees.size();
  return stats;
}

}  // namespace grepair
