// Directed edge-labeled hypergraphs (Section II of the paper).
//
// A hypergraph g = (V, E, att, lab, ext) over a ranked alphabet:
//   * V = {0, .., n-1}  (the paper uses 1-based IDs; we are 0-based
//     internally and shift by one at serialization boundaries),
//   * att : E -> V*  assigns each edge its sequence of attached nodes,
//   * lab : E -> Sigma, with |att(e)| == rank(lab(e)),
//   * ext in V*  is the sequence of external nodes (empty for start
//     graphs and for plain data graphs).
//
// The paper's restrictions are enforced by Validate():
//   (1) att(e) contains no node twice (no self-loops on simple edges),
//   (2) ext contains no node twice,
//   (3) node IDs are contiguous.
//
// Size metrics follow the paper exactly: |g|_V = |V|; |g|_E counts 1 per
// edge of rank <= 2 and rank(e) per hyperedge of rank > 2; |g| is the sum.

#ifndef GREPAIR_GRAPH_HYPERGRAPH_H_
#define GREPAIR_GRAPH_HYPERGRAPH_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace grepair {

using NodeId = uint32_t;
using EdgeId = uint32_t;
using Label = uint32_t;

inline constexpr NodeId kInvalidNode = ~0u;
inline constexpr EdgeId kInvalidEdge = ~0u;
inline constexpr Label kInvalidLabel = ~0u;

/// \brief Ranked alphabet: every label has a rank (attachment arity) >= 1
/// and an optional human-readable name.
class Alphabet {
 public:
  Alphabet() = default;

  /// \brief Adds a label with the given rank; returns its id.
  Label Add(std::string name, int rank);

  /// \brief Adds `count` anonymous rank-2 labels (convenience for simple
  /// edge-labeled graphs); returns the first id.
  Label AddSimpleLabels(int count);

  int rank(Label l) const { return ranks_[l]; }
  const std::string& name(Label l) const { return names_[l]; }
  size_t size() const { return ranks_.size(); }

  bool operator==(const Alphabet& other) const {
    return ranks_ == other.ranks_;
  }

 private:
  std::vector<uint8_t> ranks_;
  std::vector<std::string> names_;
};

/// \brief One (hyper)edge: label plus attachment sequence.
struct HEdge {
  Label label = kInvalidLabel;
  std::vector<NodeId> att;

  int rank() const { return static_cast<int>(att.size()); }
  bool operator==(const HEdge& other) const {
    return label == other.label && att == other.att;
  }
};

/// \brief Directed edge-labeled hypergraph with external-node sequence.
class Hypergraph {
 public:
  Hypergraph() = default;
  explicit Hypergraph(uint32_t num_nodes) : num_nodes_(num_nodes) {}

  /// \brief Appends a fresh node and returns its id.
  NodeId AddNode() { return num_nodes_++; }

  /// \brief Appends `count` fresh nodes; returns the first id.
  NodeId AddNodes(uint32_t count) {
    NodeId first = num_nodes_;
    num_nodes_ += count;
    return first;
  }

  /// \brief Appends an edge; attachment nodes must already exist.
  EdgeId AddEdge(Label label, std::vector<NodeId> att);

  /// \brief Convenience for a rank-2 edge u -> v.
  EdgeId AddSimpleEdge(NodeId u, NodeId v, Label label) {
    return AddEdge(label, {u, v});
  }

  /// \brief Sets the external-node sequence.
  void SetExternal(std::vector<NodeId> ext) { ext_ = std::move(ext); }

  uint32_t num_nodes() const { return num_nodes_; }
  uint32_t num_edges() const { return static_cast<uint32_t>(edges_.size()); }
  const std::vector<HEdge>& edges() const { return edges_; }
  const HEdge& edge(EdgeId e) const { return edges_[e]; }
  HEdge& mutable_edge(EdgeId e) { return edges_[e]; }
  const std::vector<NodeId>& ext() const { return ext_; }

  /// \brief rank(g) = number of external nodes.
  int rank() const { return static_cast<int>(ext_.size()); }

  /// \brief |g|_V.
  uint64_t NodeSize() const { return num_nodes_; }

  /// \brief |g|_E: 1 per rank<=2 edge, rank(e) per hyperedge.
  uint64_t EdgeSize() const;

  /// \brief |g| = |g|_V + |g|_E.
  uint64_t TotalSize() const { return NodeSize() + EdgeSize(); }

  /// \brief True if every node is external.
  bool AllNodesExternal() const { return ext_.size() == num_nodes_; }

  /// \brief Checks the paper's hypergraph restrictions against `alphabet`:
  /// edge ranks match label ranks, no duplicate nodes in att or ext, all
  /// referenced nodes exist.
  Status Validate(const Alphabet& alphabet) const;

  /// \brief True if the graph is simple: all edges rank 2 and no two edges
  /// share both attachment sequence and label.
  bool IsSimple() const;

  /// \brief Replaces the whole edge list (used by rule inlining, which
  /// splices copies of a right-hand side in place of nonterminal edges).
  void SetEdges(std::vector<HEdge> edges) { edges_ = std::move(edges); }

  /// \brief Moves the edge list out (leaves the graph edgeless);
  /// pairs with SetEdges for alloc-free edge-list surgery.
  std::vector<HEdge> TakeEdges() { return std::move(edges_); }

  /// \brief Removes edges matching `pred(edge)`; node set unchanged.
  template <typename Pred>
  void RemoveEdgesIf(Pred pred) {
    std::vector<HEdge> kept;
    kept.reserve(edges_.size());
    for (auto& e : edges_) {
      if (!pred(e)) kept.push_back(std::move(e));
    }
    edges_ = std::move(kept);
  }

  /// \brief Equality up to edge order (labels, attachments, ext, |V|).
  bool EqualUpToEdgeOrder(const Hypergraph& other) const;

  /// \brief Exact structural equality including edge order.
  bool operator==(const Hypergraph& other) const {
    return num_nodes_ == other.num_nodes_ && ext_ == other.ext_ &&
           edges_ == other.edges_;
  }

  /// \brief Per-node list of incident edge ids (each edge listed once per
  /// distinct attached node; attachments never repeat a node).
  std::vector<std::vector<EdgeId>> BuildIncidence() const;

  /// \brief Degree (number of incident edges) per node.
  std::vector<uint32_t> Degrees() const;

  /// \brief Debug rendering ("n=4 ext=[0 1] edges: a(0,1) A(1,2,3) ...").
  std::string ToString(const Alphabet* alphabet = nullptr) const;

 private:
  uint32_t num_nodes_ = 0;
  std::vector<HEdge> edges_;
  std::vector<NodeId> ext_;
};

/// \brief Builds a simple directed graph from (u, v, label) triples,
/// dropping self-loops and duplicate triples (the paper's model excludes
/// both; loaders and generators funnel through here).
Hypergraph BuildSimpleGraph(uint32_t num_nodes,
                            std::vector<std::array<uint32_t, 3>> triples);

}  // namespace grepair

#endif  // GREPAIR_GRAPH_HYPERGRAPH_H_
