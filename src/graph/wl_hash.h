// Weisfeiler-Leman style isomorphism-invariant graph hash.
//
// Used as a test oracle: the grammar produced by gRePair derives an
// isomorphic copy of the input (Section III-C2), so round-trip property
// tests compare WlHash(original) with WlHash(val(grammar)). Isomorphic
// graphs always hash equal; non-isomorphic graphs hash equal only if
// they are 1-WL-equivalent AND the final multiset hashes collide, which
// the tests accept as a vanishing false-negative risk (exact-equality
// tests via the tracked node mapping cover the rest).

#ifndef GREPAIR_GRAPH_WL_HASH_H_
#define GREPAIR_GRAPH_WL_HASH_H_

#include <cstdint>

#include "src/graph/hypergraph.h"

namespace grepair {

/// \brief Isomorphism-invariant 64-bit hash of a hypergraph.
uint64_t WlHash(const Hypergraph& g);

}  // namespace grepair

#endif  // GREPAIR_GRAPH_WL_HASH_H_
