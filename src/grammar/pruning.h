// Grammar pruning (Section III-A3).
//
// Removes rules that do not contribute to compression:
//   phase 1: every nonterminal with ref(A) = 1 is inlined (a rule used
//            once never pays for itself),
//   phase 2: nonterminals are visited bottom-up in <=NT order and every
//            rule with contribution con(A) <= 0 is inlined, where
//            con(A) = ref(A)*(|rhs(A)| - |handle(A)|) - |rhs(A)|.
// Contributions are recomputed at each visit because inlining changes
// both |rhs| and ref of the remaining rules.
//
// Inlining a rule A replaces every A-labeled edge (in the start graph
// and in other right-hand sides) by a copy of rhs(A) whose external
// nodes merge with the edge's attachment. When a NodeMapping is being
// tracked, the derivation-record trees are spliced in lock-step so that
// DeriveOriginal still reproduces the input graph exactly after pruning.

#ifndef GREPAIR_GRAMMAR_PRUNING_H_
#define GREPAIR_GRAMMAR_PRUNING_H_

#include <cstdint>

#include "src/grammar/derivation.h"
#include "src/grammar/grammar.h"

namespace grepair {

struct PruneOptions {
  bool remove_single_refs = true;   ///< phase 1 (ref(A) == 1)
  bool remove_nonpositive = true;   ///< phase 2 (con(A) <= 0)
  /// Repeat both phases until no rule is removed (extension; the paper
  /// does a single bottom-up pass).
  bool iterate_to_fixpoint = false;
};

struct PruneStats {
  uint32_t removed_single_ref = 0;
  uint32_t removed_contribution = 0;
  uint64_t size_before = 0;  ///< |G| + |S| before pruning
  uint64_t size_after = 0;   ///< |G| + |S| after pruning
};

/// \brief Prunes `grammar` in place. `mapping` may be null; when given it
/// is kept consistent (records spliced along with every inline).
PruneStats PruneGrammar(SlhrGrammar* grammar, NodeMapping* mapping,
                        const PruneOptions& options = {});

/// \brief Inlines rule `nt` at every reference and deletes it, keeping
/// `mapping` consistent. Exposed for tests and for the compressor's
/// virtual-edge cleanup.
void InlineRuleEverywhere(SlhrGrammar* grammar, Label nt,
                          NodeMapping* mapping);

}  // namespace grepair

#endif  // GREPAIR_GRAMMAR_PRUNING_H_
