#include "src/grammar/pruning.h"

#include <cassert>
#include <utility>

namespace grepair {

namespace {

// Splices record trees at A-application nodes strictly below the roots,
// i.e. at A-labeled edges inside other rules' right-hand sides. Must run
// BEFORE any grammar surgery for this inline (it walks the current rule
// structure). A-labeled edges in the start graph (root records) are
// handled by InlineIntoStart instead.
//
// Splicing a node r whose rule L contains A-edges: for every A-child c
// of r (ascending child order), c's internal origins are appended to
// r's (matching the host's internal nodes gaining rhs(A)'s internals at
// the end, per A-edge in edge order) and c's children replace c in r's
// child list (matching the in-place edge splice).
void SpliceDeepRecords(const SlhrGrammar& g, Label A, NodeMapping* mapping) {
  struct Work {
    DerivationRecord* rec;
    Label label;
    bool expanded;
  };
  std::vector<Work> stack;
  const Hypergraph& start = g.start();
  for (EdgeId se = 0; se < start.num_edges(); ++se) {
    if (g.IsNonterminal(start.edge(se).label)) {
      stack.push_back({&mapping->edge_records[se], start.edge(se).label,
                       false});
    }
  }
  while (!stack.empty()) {
    Work w = stack.back();
    stack.pop_back();
    const Hypergraph& rhs = g.rhs(w.label);
    if (!w.expanded) {
      // Post-order: children first, then splice this node.
      stack.push_back({w.rec, w.label, true});
      size_t ci = 0;
      for (const auto& e : rhs.edges()) {
        if (g.IsNonterminal(e.label)) {
          stack.push_back({&w.rec->children[ci], e.label, false});
          ++ci;
        }
      }
      continue;
    }
    // Does rhs(w.label) have any A-edge?
    bool has_a = false;
    for (const auto& e : rhs.edges()) {
      if (e.label == A) {
        has_a = true;
        break;
      }
    }
    if (!has_a) continue;

    std::vector<DerivationRecord> new_children;
    std::vector<NodeId> appendix;
    size_t ci = 0;
    for (const auto& e : rhs.edges()) {
      if (!g.IsNonterminal(e.label)) continue;
      DerivationRecord child = std::move(w.rec->children[ci++]);
      if (e.label != A) {
        new_children.push_back(std::move(child));
        continue;
      }
      appendix.insert(appendix.end(), child.internal_origs.begin(),
                      child.internal_origs.end());
      for (auto& grandchild : child.children) {
        new_children.push_back(std::move(grandchild));
      }
    }
    w.rec->internal_origs.insert(w.rec->internal_origs.end(),
                                 appendix.begin(), appendix.end());
    w.rec->children = std::move(new_children);
  }
}

// Copies `rhs_a` into `host` in place of edge `e` (an A-edge): external
// node i of rhs_a merges with e.att[i], internal nodes are appended to
// the host. Returns the node map used. Emits the replacement edges into
// `out_edges` in rhs_a edge order.
void SpliceGraph(Hypergraph* host, const HEdge& e, const Hypergraph& rhs_a,
                 std::vector<HEdge>* out_edges,
                 std::vector<NodeId>* new_host_nodes) {
  uint32_t rank = static_cast<uint32_t>(rhs_a.ext().size());
  assert(e.att.size() == rank);
  std::vector<NodeId> node_map(rhs_a.num_nodes());
  for (uint32_t i = 0; i < rank; ++i) node_map[i] = e.att[i];
  for (uint32_t i = rank; i < rhs_a.num_nodes(); ++i) {
    node_map[i] = host->AddNode();
    if (new_host_nodes != nullptr) new_host_nodes->push_back(node_map[i]);
  }
  for (const auto& re : rhs_a.edges()) {
    HEdge copy;
    copy.label = re.label;
    copy.att.reserve(re.att.size());
    for (NodeId v : re.att) copy.att.push_back(node_map[v]);
    out_edges->push_back(std::move(copy));
  }
}

// Inlines A into the start graph, updating root records and start-graph
// origins when a mapping is tracked.
void InlineIntoStart(SlhrGrammar* g, Label A, const Hypergraph& rhs_a,
                     NodeMapping* mapping) {
  Hypergraph* host = g->mutable_start();
  bool has_a = false;
  for (const auto& e : host->edges()) {
    if (e.label == A) {
      has_a = true;
      break;
    }
  }
  if (!has_a) return;

  std::vector<HEdge> old_edges = host->TakeEdges();
  std::vector<HEdge> new_edges;
  new_edges.reserve(old_edges.size());
  std::vector<DerivationRecord> new_records;
  const bool track = mapping != nullptr;
  uint32_t rank = static_cast<uint32_t>(rhs_a.ext().size());

  for (EdgeId i = 0; i < old_edges.size(); ++i) {
    HEdge e = std::move(old_edges[i]);
    if (e.label != A) {
      new_edges.push_back(std::move(e));
      if (track) {
        new_records.push_back(std::move(mapping->edge_records[i]));
      }
      continue;
    }
    DerivationRecord rec;
    if (track) rec = std::move(mapping->edge_records[i]);
    std::vector<NodeId> created;
    SpliceGraph(host, e, rhs_a, &new_edges, &created);
    if (track) {
      assert(created.size() == rec.internal_origs.size());
      for (size_t k = 0; k < created.size(); ++k) {
        assert(created[k] == mapping->start_origs.size());
        mapping->start_origs.push_back(rec.internal_origs[k]);
      }
      // Distribute the record's children to the spliced nonterminal
      // edges (rhs_a edge order); terminal splices get empty records.
      size_t child_idx = 0;
      for (const auto& re : rhs_a.edges()) {
        if (g->IsNonterminal(re.label)) {
          new_records.push_back(std::move(rec.children[child_idx++]));
        } else {
          new_records.emplace_back();
        }
      }
      assert(child_idx == rec.children.size());
    }
    (void)rank;
  }
  host->SetEdges(std::move(new_edges));
  if (track) mapping->edge_records = std::move(new_records);
}

// Inlines A into one rule's right-hand side (grammar surgery only; the
// record side was handled by SpliceDeepRecords).
void InlineIntoRule(SlhrGrammar* g, Label A, const Hypergraph& rhs_a,
                    uint32_t host_rule_index) {
  Hypergraph* host = g->mutable_rhs_by_index(host_rule_index);
  bool has_a = false;
  for (const auto& e : host->edges()) {
    if (e.label == A) {
      has_a = true;
      break;
    }
  }
  if (!has_a) return;
  std::vector<HEdge> old_edges = host->TakeEdges();
  std::vector<HEdge> new_edges;
  new_edges.reserve(old_edges.size());
  for (auto& e : old_edges) {
    if (e.label != A) {
      new_edges.push_back(std::move(e));
      continue;
    }
    SpliceGraph(host, e, rhs_a, &new_edges, nullptr);
  }
  host->SetEdges(std::move(new_edges));
}

// Host ids for the reference-location index: 0 is the start graph,
// 1 + k is rule k.
constexpr uint32_t kStartHost = 0;

// Inline without compacting rule labels; marks nothing — caller tracks
// dead rules. The rule's rhs is cleared afterwards. `hosts` restricts
// the surgery to the hosts known to reference nt (stale or duplicate
// entries are tolerated — the per-host has_a check skips them); null
// means "scan everything".
void InlineRuleNoCompact(SlhrGrammar* grammar, Label nt,
                         NodeMapping* mapping,
                         const std::vector<uint32_t>* hosts) {
  const Hypergraph rhs_a = grammar->rhs(nt);  // copy: source of splices
  if (mapping != nullptr) {
    SpliceDeepRecords(*grammar, nt, mapping);
  }
  if (hosts != nullptr) {
    for (uint32_t h : *hosts) {
      if (h == kStartHost) {
        InlineIntoStart(grammar, nt, rhs_a, mapping);
      } else if (h - 1 != grammar->RuleIndex(nt)) {
        InlineIntoRule(grammar, nt, rhs_a, h - 1);
      }
    }
  } else {
    InlineIntoStart(grammar, nt, rhs_a, mapping);
    for (uint32_t j = 0; j < grammar->num_rules(); ++j) {
      if (j == grammar->RuleIndex(nt)) continue;
      InlineIntoRule(grammar, nt, rhs_a, j);
    }
  }
  grammar->SetRule(nt, Hypergraph());
}

}  // namespace

void InlineRuleEverywhere(SlhrGrammar* grammar, Label nt,
                          NodeMapping* mapping) {
  InlineRuleNoCompact(grammar, nt, mapping, nullptr);
  std::vector<char> dead(grammar->num_rules(), 0);
  dead[grammar->RuleIndex(nt)] = 1;
  grammar->CompactRules(dead);
}

PruneStats PruneGrammar(SlhrGrammar* grammar, NodeMapping* mapping,
                        const PruneOptions& options) {
  PruneStats stats;
  stats.size_before = grammar->TotalSize();

  uint32_t n = grammar->num_rules();
  std::vector<char> dead(n, 0);
  std::vector<uint64_t> refs = grammar->AllReferenceCounts();

  // Reference-location index: which hosts mention each rule. Entries
  // can go stale after inlining (tolerated), and hosts gaining
  // references through an inline are appended.
  std::vector<std::vector<uint32_t>> host_refs(n);
  {
    auto scan = [&](const Hypergraph& g, uint32_t host) {
      for (const auto& e : g.edges()) {
        if (grammar->IsNonterminal(e.label)) {
          auto& list = host_refs[grammar->RuleIndex(e.label)];
          if (list.empty() || list.back() != host) list.push_back(host);
        }
      }
    };
    scan(grammar->start(), kStartHost);
    for (uint32_t j = 0; j < n; ++j) {
      scan(grammar->rhs_by_index(j), 1 + j);
    }
  }

  // Incremental ref maintenance: inlining A with ref(A)=r replaces each
  // A-edge by a copy of rhs(A), so every nonterminal B referenced k
  // times in rhs(A) gains r*k references and loses the k references from
  // the deleted rule itself: refs[B] += (r-1)*k.
  auto inline_rule = [&](uint32_t j) {
    Label nt = grammar->NonterminalLabel(j);
    int64_t r = static_cast<int64_t>(refs[j]);
    std::vector<uint32_t> children;
    for (const auto& e : grammar->rhs_by_index(j).edges()) {
      if (grammar->IsNonterminal(e.label)) {
        uint32_t child = grammar->RuleIndex(e.label);
        refs[child] = static_cast<uint64_t>(
            static_cast<int64_t>(refs[child]) + (r - 1));
        children.push_back(child);
      }
    }
    std::vector<uint32_t> hosts = std::move(host_refs[j]);
    host_refs[j].clear();
    InlineRuleNoCompact(grammar, nt, mapping, &hosts);
    // The hosts that contained A now contain A's children.
    for (uint32_t child : children) {
      for (uint32_t h : hosts) host_refs[child].push_back(h);
    }
    refs[j] = 0;
    dead[j] = 1;
  };

  bool removed_any = true;
  bool first_round = true;
  while (removed_any && (first_round || options.iterate_to_fixpoint)) {
    removed_any = false;
    first_round = false;

    if (options.remove_single_refs) {
      for (uint32_t j = 0; j < n; ++j) {
        if (dead[j] || refs[j] > 1) continue;
        // ref==1 never pays for itself; ref==0 is garbage either way.
        inline_rule(j);
        ++stats.removed_single_ref;
        removed_any = true;
      }
    }

    if (options.remove_nonpositive) {
      // Bottom-up <=NT order == ascending rule index.
      for (uint32_t j = 0; j < n; ++j) {
        if (dead[j]) continue;
        Label nt = grammar->NonterminalLabel(j);
        if (grammar->Contribution(nt, refs[j]) <= 0) {
          inline_rule(j);
          ++stats.removed_contribution;
          removed_any = true;
        }
      }
    }
  }

  grammar->CompactRules(dead);
  stats.size_after = grammar->TotalSize();
  return stats;
}

}  // namespace grepair
