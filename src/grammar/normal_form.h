// Chomsky normal form for SL-HR grammars (Section V / Proposition 5).
//
// The paper's CMSO evaluation argument converts the grammar so that
// "every right-hand side (including the start graph) has at most two
// edges" (citing Proposition 3.13 of Engelfriet's handbook chapter),
// which bounds the work per derivation-dag node. This transformation
// implements that: right-hand sides with more than two edges are split
// by introducing fresh nonterminals that generate the left part of the
// edge list, threading the nodes both parts touch through the fresh
// nonterminal's external sequence. The start graph is split the same
// way down to `max_edges_start` edges.
//
// val(G) is preserved up to isomorphism (fresh internal nodes are
// created in a different order, so exact node numbering may shift; the
// tests compare with WL hashes and exact counts).

#ifndef GREPAIR_GRAMMAR_NORMAL_FORM_H_
#define GREPAIR_GRAMMAR_NORMAL_FORM_H_

#include <cstdint>

#include "src/grammar/grammar.h"
#include "src/util/status.h"

namespace grepair {

struct NormalFormOptions {
  /// Maximum edges per right-hand side (>= 2; the paper's form uses 2).
  uint32_t max_edges = 2;
  /// Also split the start graph to at most this many edges; 0 leaves S
  /// untouched (Proposition 5 keeps one nonterminal edge incident with
  /// all of S's nodes in the worst case, so splitting S can produce
  /// high-rank nonterminals).
  uint32_t max_edges_start = 0;
};

struct NormalFormStats {
  uint32_t rules_before = 0;
  uint32_t rules_after = 0;
  uint32_t max_rank_after = 0;
};

/// \brief Rewrites `grammar` into (at-most-two-edges) normal form.
///
/// Fails with InvalidArgument if a split would require a nonterminal of
/// rank > 63 (the library-wide rank bound); callers can widen
/// max_edges to avoid that on degenerate inputs.
Result<NormalFormStats> NormalizeGrammar(SlhrGrammar* grammar,
                                         const NormalFormOptions& options = {});

}  // namespace grepair

#endif  // GREPAIR_GRAMMAR_NORMAL_FORM_H_
