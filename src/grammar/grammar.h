// Straight-line hyperedge replacement (SL-HR) grammars (Definition 1).
//
// G = (N, P, S): a ranked nonterminal alphabet N disjoint from the
// terminal alphabet, exactly one rule A -> rhs(A) per nonterminal, an
// acyclic reference relation <=NT, and a start graph S over terminals
// and nonterminals. Such a grammar derives exactly one graph val(G)
// (up to isomorphism; our deterministic derivation order makes it
// unique, see derivation.h).
//
// Label convention: the combined alphabet holds terminals first, so
// labels [0, num_terminals) are terminal and label num_terminals + j
// belongs to rule j. Rules are kept in a bottom-up topological order of
// <=NT: rule j's right-hand side references only terminals and rules
// with index < j. gRePair produces rules in this order naturally (a
// digram's edges exist before the digram is replaced) and pruning
// preserves it; Validate() checks it.
//
// Right-hand sides are kept in *canonical form*: the k external nodes
// are exactly nodes 0..k-1, in external order. This is the form the
// paper's serializer needs ("the order induced by the IDs of the
// external nodes is the same as the order of the external nodes") and
// it pins down the derivation order of internal nodes.

#ifndef GREPAIR_GRAMMAR_GRAMMAR_H_
#define GREPAIR_GRAMMAR_GRAMMAR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/hypergraph.h"
#include "src/util/status.h"

namespace grepair {

/// \brief A straight-line hyperedge replacement grammar.
class SlhrGrammar {
 public:
  SlhrGrammar() = default;

  /// \brief Creates a grammar whose terminals are `terminals` and whose
  /// start graph is `start`.
  SlhrGrammar(Alphabet terminals, Hypergraph start);

  /// \brief Adds a fresh nonterminal of the given rank with an empty
  /// rule; returns its label. The rule must be set before use.
  Label AddNonterminal(int rank, std::string name = "");

  /// \brief Sets the right-hand side of nonterminal `nt`.
  void SetRule(Label nt, Hypergraph rhs);

  bool IsNonterminal(Label l) const { return l >= num_terminals_; }
  bool IsTerminal(Label l) const { return l < num_terminals_; }

  /// \brief Index of the rule for nonterminal label `nt`.
  uint32_t RuleIndex(Label nt) const { return nt - num_terminals_; }

  /// \brief Nonterminal label of rule `rule_index`.
  Label NonterminalLabel(uint32_t rule_index) const {
    return num_terminals_ + rule_index;
  }

  uint32_t num_terminals() const { return num_terminals_; }
  uint32_t num_rules() const { return static_cast<uint32_t>(rules_.size()); }

  const Alphabet& alphabet() const { return alphabet_; }
  const Hypergraph& start() const { return start_; }
  Hypergraph* mutable_start() { return &start_; }

  const Hypergraph& rhs(Label nt) const { return rules_[RuleIndex(nt)]; }
  const Hypergraph& rhs_by_index(uint32_t i) const { return rules_[i]; }
  Hypergraph* mutable_rhs(Label nt) { return &rules_[RuleIndex(nt)]; }
  Hypergraph* mutable_rhs_by_index(uint32_t i) { return &rules_[i]; }

  int rank(Label l) const { return alphabet_.rank(l); }

  /// \brief |G| restricted to rules: sum of |rhs(A)| (the paper's |G|).
  uint64_t RuleSize() const;

  /// \brief |G| + |S|: total representation size including the start
  /// graph (what the compression-ratio figures use).
  uint64_t TotalSize() const { return RuleSize() + start_.TotalSize(); }

  uint64_t RuleEdgeSize() const;  ///< |G|_E over rules
  uint64_t RuleNodeSize() const;  ///< |G|_V over rules

  /// \brief Number of edges labeled `l` in S and all right-hand sides
  /// (the paper's ref(A) when `l` is a nonterminal).
  uint64_t CountReferences(Label l) const;

  /// \brief Reference counts for all nonterminals at once.
  std::vector<uint64_t> AllReferenceCounts() const;

  /// \brief height(G): length of the longest <=NT chain from the start
  /// graph (0 for a grammar whose start graph is terminal).
  uint32_t Height() const;

  /// \brief Validates definition invariants: alphabet ranks, hypergraph
  /// restrictions, bottom-up rule order, rank(A) == rank(rhs(A)), and
  /// canonical right-hand sides (external nodes are 0..k-1 in order).
  Status Validate() const;

  /// \brief Size of handle(A) for a rank-k nonterminal: k nodes plus one
  /// edge of size (k <= 2 ? 1 : k). This is what one occurrence of a
  /// nonterminal edge costs in a graph (Section III-A3).
  static uint64_t HandleSize(int rank) {
    return static_cast<uint64_t>(rank) + (rank <= 2 ? 1 : rank);
  }

  /// \brief Contribution con(A) = ref*(|rhs|-|handle|) - |rhs|
  /// (Section III-A3), given a precomputed ref count.
  int64_t Contribution(Label nt, uint64_t ref) const;

  /// \brief Removes the rules marked in `dead` (indexed by rule index;
  /// they must be unreferenced) and renumbers the surviving nonterminal
  /// labels densely, rewriting the start graph and all right-hand sides.
  void CompactRules(const std::vector<char>& dead);

  /// \brief Debug rendering of all rules and the start graph.
  std::string ToString() const;

 private:
  Alphabet alphabet_;          // terminals then nonterminals
  uint32_t num_terminals_ = 0;
  std::vector<Hypergraph> rules_;  // rules_[j] is rhs of label num_terminals_+j
  Hypergraph start_;
};

/// \brief Summary statistics for reporting.
struct GrammarStats {
  uint32_t num_rules = 0;
  uint32_t height = 0;
  uint64_t rule_size = 0;
  uint64_t start_size = 0;
  uint64_t total_size = 0;
  uint32_t max_nonterminal_rank = 0;
  uint32_t start_nodes = 0;
  uint32_t start_edges = 0;
};

GrammarStats ComputeGrammarStats(const SlhrGrammar& grammar);

}  // namespace grepair

#endif  // GREPAIR_GRAMMAR_GRAMMAR_H_
