#include "src/grammar/normal_form.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace grepair {

namespace {

// Splits `h` (a right-hand side or the start graph of `ng`) until it
// has at most `max_edges` edges, extracting balanced halves of the edge
// list into fresh nonterminals (recursively normalized). Returns an
// error if an extraction would need a nonterminal of rank > 255.
Status SplitToLimit(SlhrGrammar* ng, Hypergraph* h, uint32_t max_edges) {
  while (h->num_edges() > max_edges) {
    const uint32_t take = (h->num_edges() + 1) / 2;

    // Classify h's nodes: touched by the extracted range, by the rest,
    // or external in h itself.
    std::vector<char> in_range(h->num_nodes(), 0);
    std::vector<char> in_rest(h->num_nodes(), 0);
    for (EdgeId e = 0; e < h->num_edges(); ++e) {
      for (NodeId v : h->edge(e).att) {
        (e < take ? in_range : in_rest)[v] = 1;
      }
    }
    std::vector<char> host_ext(h->num_nodes(), 0);
    for (NodeId v : h->ext()) host_ext[v] = 1;

    // Boundary = nodes the extraction must keep visible in h.
    std::vector<NodeId> boundary, internal;
    for (NodeId v = 0; v < h->num_nodes(); ++v) {
      if (!in_range[v]) continue;
      if (in_rest[v] || host_ext[v]) {
        boundary.push_back(v);
      } else {
        internal.push_back(v);
      }
    }
    if (boundary.empty()) {
      // The range is a closed component; rank-0 nonterminals are
      // illegal, so keep its first node visible (it stays in h).
      assert(!internal.empty());
      boundary.push_back(internal.front());
      internal.erase(internal.begin());
    }
    if (boundary.size() > 255) {
      return Status::InvalidArgument(
          "normal form split needs rank " +
          std::to_string(boundary.size()) + " > 255");
    }

    // Build the sub-rhs in canonical form: boundary first (ascending
    // host id), internals after.
    std::vector<NodeId> sub_id(h->num_nodes(), kInvalidNode);
    Hypergraph sub(static_cast<uint32_t>(boundary.size() + internal.size()));
    {
      NodeId next = 0;
      for (NodeId v : boundary) sub_id[v] = next++;
      for (NodeId v : internal) sub_id[v] = next++;
      std::vector<NodeId> ext(boundary.size());
      for (NodeId i = 0; i < boundary.size(); ++i) ext[i] = i;
      sub.SetExternal(std::move(ext));
    }
    for (EdgeId e = 0; e < take; ++e) {
      std::vector<NodeId> att;
      att.reserve(h->edge(e).att.size());
      for (NodeId v : h->edge(e).att) att.push_back(sub_id[v]);
      sub.AddEdge(h->edge(e).label, std::move(att));
    }
    GREPAIR_RETURN_IF_ERROR(SplitToLimit(ng, &sub, max_edges));
    Label fresh =
        ng->AddNonterminal(static_cast<int>(boundary.size()));
    ng->SetRule(fresh, std::move(sub));

    // Rebuild h: the fresh edge replaces the extracted range; nodes
    // that moved inside the rule disappear (ids compacted).
    std::vector<NodeId> keep_id(h->num_nodes(), kInvalidNode);
    std::vector<char> removed(h->num_nodes(), 0);
    for (NodeId v : internal) removed[v] = 1;
    uint32_t next = 0;
    for (NodeId v = 0; v < h->num_nodes(); ++v) {
      if (!removed[v]) keep_id[v] = next++;
    }
    Hypergraph rebuilt(next);
    {
      std::vector<NodeId> att;
      att.reserve(boundary.size());
      for (NodeId v : boundary) att.push_back(keep_id[v]);
      rebuilt.AddEdge(fresh, std::move(att));
    }
    for (EdgeId e = take; e < h->num_edges(); ++e) {
      std::vector<NodeId> att;
      att.reserve(h->edge(e).att.size());
      for (NodeId v : h->edge(e).att) att.push_back(keep_id[v]);
      rebuilt.AddEdge(h->edge(e).label, std::move(att));
    }
    std::vector<NodeId> ext;
    ext.reserve(h->ext().size());
    for (NodeId v : h->ext()) ext.push_back(keep_id[v]);
    rebuilt.SetExternal(std::move(ext));
    *h = std::move(rebuilt);
  }
  return Status::OK();
}

}  // namespace

Result<NormalFormStats> NormalizeGrammar(SlhrGrammar* grammar,
                                         const NormalFormOptions& options) {
  if (options.max_edges < 2) {
    return Status::InvalidArgument("max_edges must be >= 2");
  }
  NormalFormStats stats;
  stats.rules_before = grammar->num_rules();

  // Rebuild bottom-up so fresh helper rules precede their referents.
  Alphabet terminals;
  for (Label l = 0; l < grammar->num_terminals(); ++l) {
    terminals.Add(grammar->alphabet().name(l), grammar->alphabet().rank(l));
  }
  SlhrGrammar ng(std::move(terminals), Hypergraph(0));
  std::vector<Label> relabel(grammar->alphabet().size(), kInvalidLabel);
  for (Label l = 0; l < grammar->num_terminals(); ++l) relabel[l] = l;

  for (uint32_t j = 0; j < grammar->num_rules(); ++j) {
    Label old_label = grammar->NonterminalLabel(j);
    Hypergraph rhs = grammar->rhs_by_index(j);
    for (EdgeId e = 0; e < rhs.num_edges(); ++e) {
      Label& l = rhs.mutable_edge(e).label;
      assert(relabel[l] != kInvalidLabel);
      l = relabel[l];
    }
    GREPAIR_RETURN_IF_ERROR(SplitToLimit(&ng, &rhs, options.max_edges));
    Label fresh = ng.AddNonterminal(grammar->rank(old_label),
                                    grammar->alphabet().name(old_label));
    ng.SetRule(fresh, std::move(rhs));
    relabel[old_label] = fresh;
  }

  Hypergraph start = grammar->start();
  for (EdgeId e = 0; e < start.num_edges(); ++e) {
    Label& l = start.mutable_edge(e).label;
    l = relabel[l];
  }
  if (options.max_edges_start >= 2) {
    GREPAIR_RETURN_IF_ERROR(
        SplitToLimit(&ng, &start, options.max_edges_start));
  }
  *ng.mutable_start() = std::move(start);

  GREPAIR_RETURN_IF_ERROR(ng.Validate());
  *grammar = std::move(ng);
  stats.rules_after = grammar->num_rules();
  for (uint32_t j = 0; j < grammar->num_rules(); ++j) {
    stats.max_rank_after = std::max(
        stats.max_rank_after,
        static_cast<uint32_t>(grammar->rank(grammar->NonterminalLabel(j))));
  }
  return stats;
}

}  // namespace grepair
