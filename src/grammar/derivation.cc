#include "src/grammar/derivation.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace grepair {

void CanonicalizeStartEdgeOrder(SlhrGrammar* grammar, NodeMapping* mapping) {
  const Hypergraph& start = grammar->start();
  std::vector<EdgeId> order(start.num_edges());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    const HEdge& ea = start.edge(a);
    const HEdge& eb = start.edge(b);
    if (ea.label != eb.label) return ea.label < eb.label;
    return ea.att < eb.att;
  });
  std::vector<HEdge> sorted;
  sorted.reserve(order.size());
  std::vector<DerivationRecord> sorted_records;
  for (EdgeId e : order) {
    sorted.push_back(start.edge(e));
    if (mapping != nullptr) {
      sorted_records.push_back(std::move(mapping->edge_records[e]));
    }
  }
  grammar->mutable_start()->SetEdges(std::move(sorted));
  if (mapping != nullptr) mapping->edge_records = std::move(sorted_records);
}

GeneratedSizes ComputeGeneratedSizes(const SlhrGrammar& grammar) {
  GeneratedSizes sizes;
  uint32_t n = grammar.num_rules();
  sizes.gen_nodes.assign(n, 0);
  sizes.gen_edges.assign(n, 0);
  for (uint32_t j = 0; j < n; ++j) {
    const Hypergraph& rhs = grammar.rhs_by_index(j);
    sizes.gen_nodes[j] = rhs.num_nodes() - rhs.ext().size();
    for (const auto& e : rhs.edges()) {
      if (grammar.IsNonterminal(e.label)) {
        uint32_t child = grammar.RuleIndex(e.label);
        assert(child < j);
        sizes.gen_nodes[j] += sizes.gen_nodes[child];
        sizes.gen_edges[j] += sizes.gen_edges[child];
      } else {
        sizes.gen_edges[j] += 1;
      }
    }
  }
  return sizes;
}

uint64_t ValNodeCount(const SlhrGrammar& grammar) {
  auto sizes = ComputeGeneratedSizes(grammar);
  uint64_t count = grammar.start().num_nodes();
  for (const auto& e : grammar.start().edges()) {
    if (grammar.IsNonterminal(e.label)) {
      count += sizes.gen_nodes[grammar.RuleIndex(e.label)];
    }
  }
  return count;
}

uint64_t ValEdgeCount(const SlhrGrammar& grammar) {
  auto sizes = ComputeGeneratedSizes(grammar);
  uint64_t count = 0;
  for (const auto& e : grammar.start().edges()) {
    if (grammar.IsNonterminal(e.label)) {
      count += sizes.gen_edges[grammar.RuleIndex(e.label)];
    } else {
      count += 1;
    }
  }
  return count;
}

namespace {

// One suspended rule application during depth-first expansion.
struct Frame {
  const Hypergraph* rhs;
  std::vector<NodeId> node_map;        // rhs node id -> output node id
  size_t edge_idx = 0;                 // next rhs edge to process
  const DerivationRecord* record = nullptr;
  size_t child_idx = 0;                // next record child to consume
};

// Creates the frame for applying `label`'s rule at attachment `att`.
// Materializes the rhs's internal nodes immediately (in rhs node order),
// which is what fixes the derived node IDs.
Frame MakeFrame(const SlhrGrammar& grammar, Label label,
                const std::vector<NodeId>& att, Hypergraph* out,
                const DerivationRecord* record,
                std::vector<NodeId>* origins) {
  Frame f;
  f.rhs = &grammar.rhs(label);
  f.record = record;
  uint32_t rank = static_cast<uint32_t>(f.rhs->ext().size());
  assert(att.size() == rank);
  f.node_map.resize(f.rhs->num_nodes());
  // Canonical form: external node i has rhs id i.
  for (uint32_t i = 0; i < rank; ++i) f.node_map[i] = att[i];
  for (uint32_t i = rank; i < f.rhs->num_nodes(); ++i) {
    f.node_map[i] = out->AddNode();
    if (origins != nullptr) {
      assert(record != nullptr &&
             i - rank < record->internal_origs.size());
      origins->push_back(record->internal_origs[i - rank]);
    }
  }
  return f;
}

Result<Hypergraph> DeriveImpl(const SlhrGrammar& grammar,
                              const NodeMapping* mapping,
                              std::vector<NodeId>* origins,
                              const DeriveOptions& options) {
  uint64_t total_nodes = ValNodeCount(grammar);
  uint64_t total_edges = ValEdgeCount(grammar);
  if (total_nodes > options.max_nodes) {
    return Status::OutOfRange("val(G) has " + std::to_string(total_nodes) +
                              " nodes, above the materialization limit");
  }
  if (total_edges > options.max_edges) {
    return Status::OutOfRange("val(G) has " + std::to_string(total_edges) +
                              " edges, above the materialization limit");
  }

  const Hypergraph& start = grammar.start();
  Hypergraph out(start.num_nodes());
  if (origins != nullptr) {
    assert(mapping != nullptr);
    *origins = mapping->start_origs;
    origins->reserve(total_nodes);
  }

  std::vector<Frame> stack;
  std::vector<NodeId> mapped;
  for (EdgeId se = 0; se < start.num_edges(); ++se) {
    const HEdge& e = start.edge(se);
    if (grammar.IsTerminal(e.label)) {
      out.AddEdge(e.label, e.att);
      continue;
    }
    const DerivationRecord* rec =
        mapping != nullptr ? &mapping->edge_records[se] : nullptr;
    stack.push_back(MakeFrame(grammar, e.label, e.att, &out, rec, origins));
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.edge_idx >= f.rhs->num_edges()) {
        stack.pop_back();
        continue;
      }
      const HEdge& he = f.rhs->edge(static_cast<EdgeId>(f.edge_idx++));
      mapped.clear();
      for (NodeId v : he.att) mapped.push_back(f.node_map[v]);
      if (grammar.IsTerminal(he.label)) {
        out.AddEdge(he.label, mapped);
      } else {
        const DerivationRecord* child_rec = nullptr;
        if (f.record != nullptr) {
          assert(f.child_idx < f.record->children.size());
          child_rec = &f.record->children[f.child_idx++];
        }
        // Note: push_back may reallocate `stack`; `f` is dead after this.
        stack.push_back(
            MakeFrame(grammar, he.label, mapped, &out, child_rec, origins));
      }
    }
  }
  assert(out.num_nodes() == total_nodes);
  assert(out.num_edges() == total_edges);
  return out;
}

}  // namespace

Result<Hypergraph> Derive(const SlhrGrammar& grammar,
                          const DeriveOptions& options) {
  return DeriveImpl(grammar, nullptr, nullptr, options);
}

Result<DerivedWithOrigins> DeriveWithMapping(const SlhrGrammar& grammar,
                                             const NodeMapping& mapping,
                                             const DeriveOptions& options) {
  GREPAIR_RETURN_IF_ERROR(ValidateMapping(grammar, mapping));
  DerivedWithOrigins result;
  auto derived = DeriveImpl(grammar, &mapping, &result.origins, options);
  if (!derived.ok()) return derived.status();
  result.graph = std::move(derived).ValueOrDie();
  return result;
}

Result<std::vector<NodeId>> FlattenOrigins(const SlhrGrammar& grammar,
                                           const NodeMapping& mapping,
                                           const DeriveOptions& options) {
  GREPAIR_RETURN_IF_ERROR(ValidateMapping(grammar, mapping));
  uint64_t total = ValNodeCount(grammar);
  if (total > options.max_nodes) {
    return Status::OutOfRange("val(G) node count above limit");
  }
  std::vector<NodeId> origins = mapping.start_origs;
  origins.reserve(total);
  // Depth-first flatten mirroring the derivation order: a record's
  // internals come first, then its children in rhs edge order.
  struct Work {
    const DerivationRecord* rec;
  };
  const Hypergraph& start = grammar.start();
  for (EdgeId se = 0; se < start.num_edges(); ++se) {
    if (!grammar.IsNonterminal(start.edge(se).label)) continue;
    std::vector<const DerivationRecord*> stack{&mapping.edge_records[se]};
    // Children must be visited left-to-right: push in reverse.
    while (!stack.empty()) {
      const DerivationRecord* rec = stack.back();
      stack.pop_back();
      origins.insert(origins.end(), rec->internal_origs.begin(),
                     rec->internal_origs.end());
      for (size_t c = rec->children.size(); c-- > 0;) {
        stack.push_back(&rec->children[c]);
      }
    }
  }
  assert(origins.size() == total);
  return origins;
}

Result<Hypergraph> DeriveOriginal(const SlhrGrammar& grammar,
                                  const NodeMapping& mapping,
                                  const DeriveOptions& options) {
  auto derived = DeriveWithMapping(grammar, mapping, options);
  if (!derived.ok()) return derived.status();
  const Hypergraph& g = derived.value().graph;
  const std::vector<NodeId>& origins = derived.value().origins;

  // The origins must form a permutation of 0..n-1.
  std::vector<char> seen(g.num_nodes(), 0);
  for (NodeId o : origins) {
    if (o >= g.num_nodes() || seen[o]) {
      return Status::Corruption("node mapping is not a permutation");
    }
    seen[o] = 1;
  }
  Hypergraph renamed(g.num_nodes());
  for (const auto& e : g.edges()) {
    std::vector<NodeId> att;
    att.reserve(e.att.size());
    for (NodeId v : e.att) att.push_back(origins[v]);
    renamed.AddEdge(e.label, std::move(att));
  }
  return renamed;
}

Status ValidateMapping(const SlhrGrammar& grammar,
                       const NodeMapping& mapping) {
  const Hypergraph& start = grammar.start();
  if (mapping.start_origs.size() != start.num_nodes()) {
    return Status::InvalidArgument("start_origs size mismatch");
  }
  if (mapping.edge_records.size() != start.num_edges()) {
    return Status::InvalidArgument("edge_records size mismatch");
  }

  // Iterative structural walk: (record, rule label) pairs.
  std::vector<std::pair<const DerivationRecord*, Label>> work;
  for (EdgeId se = 0; se < start.num_edges(); ++se) {
    const HEdge& e = start.edge(se);
    if (grammar.IsNonterminal(e.label)) {
      work.push_back({&mapping.edge_records[se], e.label});
    } else if (!mapping.edge_records[se].internal_origs.empty() ||
               !mapping.edge_records[se].children.empty()) {
      return Status::InvalidArgument("terminal edge has nonempty record");
    }
  }
  while (!work.empty()) {
    auto [rec, label] = work.back();
    work.pop_back();
    const Hypergraph& rhs = grammar.rhs(label);
    size_t internal = rhs.num_nodes() - rhs.ext().size();
    if (rec->internal_origs.size() != internal) {
      return Status::InvalidArgument(
          "record internal count mismatch for rule " +
          std::to_string(grammar.RuleIndex(label)));
    }
    size_t nt_edges = 0;
    for (const auto& e : rhs.edges()) {
      if (grammar.IsNonterminal(e.label)) {
        if (nt_edges >= rec->children.size()) {
          return Status::InvalidArgument("record child count mismatch");
        }
        work.push_back({&rec->children[nt_edges], e.label});
        ++nt_edges;
      }
    }
    if (rec->children.size() != nt_edges) {
      return Status::InvalidArgument("record child count mismatch");
    }
  }
  return Status::OK();
}

}  // namespace grepair
