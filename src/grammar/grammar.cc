#include "src/grammar/grammar.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace grepair {

SlhrGrammar::SlhrGrammar(Alphabet terminals, Hypergraph start)
    : alphabet_(std::move(terminals)),
      num_terminals_(static_cast<uint32_t>(alphabet_.size())),
      start_(std::move(start)) {}

Label SlhrGrammar::AddNonterminal(int rank, std::string name) {
  if (name.empty()) {
    name = "N" + std::to_string(rules_.size());
  }
  Label l = alphabet_.Add(std::move(name), rank);
  rules_.emplace_back();
  assert(RuleIndex(l) == rules_.size() - 1);
  return l;
}

void SlhrGrammar::SetRule(Label nt, Hypergraph rhs) {
  assert(IsNonterminal(nt));
  rules_[RuleIndex(nt)] = std::move(rhs);
}

uint64_t SlhrGrammar::RuleSize() const {
  uint64_t size = 0;
  for (const auto& rhs : rules_) size += rhs.TotalSize();
  return size;
}

uint64_t SlhrGrammar::RuleEdgeSize() const {
  uint64_t size = 0;
  for (const auto& rhs : rules_) size += rhs.EdgeSize();
  return size;
}

uint64_t SlhrGrammar::RuleNodeSize() const {
  uint64_t size = 0;
  for (const auto& rhs : rules_) size += rhs.NodeSize();
  return size;
}

uint64_t SlhrGrammar::CountReferences(Label l) const {
  uint64_t count = 0;
  for (const auto& e : start_.edges()) {
    if (e.label == l) ++count;
  }
  for (const auto& rhs : rules_) {
    for (const auto& e : rhs.edges()) {
      if (e.label == l) ++count;
    }
  }
  return count;
}

std::vector<uint64_t> SlhrGrammar::AllReferenceCounts() const {
  std::vector<uint64_t> refs(rules_.size(), 0);
  auto scan = [&](const Hypergraph& g) {
    for (const auto& e : g.edges()) {
      if (IsNonterminal(e.label)) ++refs[RuleIndex(e.label)];
    }
  };
  scan(start_);
  for (const auto& rhs : rules_) scan(rhs);
  return refs;
}

uint32_t SlhrGrammar::Height() const {
  // heights[j] = longest chain below rule j (>= 1 for any rule).
  std::vector<uint32_t> heights(rules_.size(), 1);
  for (uint32_t j = 0; j < rules_.size(); ++j) {
    for (const auto& e : rules_[j].edges()) {
      if (IsNonterminal(e.label)) {
        assert(RuleIndex(e.label) < j);
        heights[j] = std::max(heights[j], heights[RuleIndex(e.label)] + 1);
      }
    }
  }
  uint32_t h = 0;
  for (const auto& e : start_.edges()) {
    if (IsNonterminal(e.label)) {
      h = std::max(h, heights[RuleIndex(e.label)]);
    }
  }
  return h;
}

Status SlhrGrammar::Validate() const {
  GREPAIR_RETURN_IF_ERROR(start_.Validate(alphabet_));
  if (!start_.ext().empty()) {
    return Status::InvalidArgument("start graph must have no external nodes");
  }
  for (uint32_t j = 0; j < rules_.size(); ++j) {
    const Hypergraph& rhs = rules_[j];
    GREPAIR_RETURN_IF_ERROR(rhs.Validate(alphabet_));
    Label nt = NonterminalLabel(j);
    if (rhs.rank() != alphabet_.rank(nt)) {
      return Status::InvalidArgument(
          "rule " + std::to_string(j) + ": rank(rhs)=" +
          std::to_string(rhs.rank()) + " != rank(A)=" +
          std::to_string(alphabet_.rank(nt)));
    }
    // Canonical form: external node i has id i.
    for (size_t i = 0; i < rhs.ext().size(); ++i) {
      if (rhs.ext()[i] != i) {
        return Status::InvalidArgument(
            "rule " + std::to_string(j) + " not in canonical form");
      }
    }
    // Straight-line bottom-up order: only references to earlier rules.
    for (const auto& e : rhs.edges()) {
      if (IsNonterminal(e.label) && RuleIndex(e.label) >= j) {
        return Status::InvalidArgument(
            "rule " + std::to_string(j) +
            " references rule " + std::to_string(RuleIndex(e.label)) +
            " (not bottom-up / cyclic)");
      }
    }
  }
  return Status::OK();
}

int64_t SlhrGrammar::Contribution(Label nt, uint64_t ref) const {
  const Hypergraph& r = rhs(nt);
  int64_t rhs_size = static_cast<int64_t>(r.TotalSize());
  int64_t handle = static_cast<int64_t>(HandleSize(alphabet_.rank(nt)));
  return static_cast<int64_t>(ref) * (rhs_size - handle) - rhs_size;
}

void SlhrGrammar::CompactRules(const std::vector<char>& dead) {
  assert(dead.size() == rules_.size());
  std::vector<Label> remap(alphabet_.size(), kInvalidLabel);
  Alphabet new_alpha;
  for (Label l = 0; l < num_terminals_; ++l) {
    new_alpha.Add(alphabet_.name(l), alphabet_.rank(l));
    remap[l] = l;
  }
  for (uint32_t j = 0; j < rules_.size(); ++j) {
    if (dead[j]) continue;
    Label old_label = NonterminalLabel(j);
    remap[old_label] =
        new_alpha.Add(alphabet_.name(old_label), alphabet_.rank(old_label));
  }
  auto relabel = [&](Hypergraph* g) {
    for (EdgeId i = 0; i < g->num_edges(); ++i) {
      Label& l = g->mutable_edge(i).label;
      assert(remap[l] != kInvalidLabel && "dead rule still referenced");
      l = remap[l];
    }
  };
  std::vector<Hypergraph> new_rules;
  new_rules.reserve(rules_.size());
  for (uint32_t j = 0; j < rules_.size(); ++j) {
    if (dead[j]) continue;
    relabel(&rules_[j]);
    new_rules.push_back(std::move(rules_[j]));
  }
  relabel(&start_);
  rules_ = std::move(new_rules);
  alphabet_ = std::move(new_alpha);
}

std::string SlhrGrammar::ToString() const {
  std::ostringstream out;
  out << "SL-HR grammar: " << num_terminals_ << " terminals, "
      << rules_.size() << " rules\n";
  out << "S: " << start_.ToString(&alphabet_) << "\n";
  for (uint32_t j = 0; j < rules_.size(); ++j) {
    out << alphabet_.name(NonterminalLabel(j)) << " -> "
        << rules_[j].ToString(&alphabet_) << "\n";
  }
  return out.str();
}

GrammarStats ComputeGrammarStats(const SlhrGrammar& grammar) {
  GrammarStats stats;
  stats.num_rules = grammar.num_rules();
  stats.height = grammar.Height();
  stats.rule_size = grammar.RuleSize();
  stats.start_size = grammar.start().TotalSize();
  stats.total_size = stats.rule_size + stats.start_size;
  for (uint32_t j = 0; j < grammar.num_rules(); ++j) {
    stats.max_nonterminal_rank = std::max(
        stats.max_nonterminal_rank,
        static_cast<uint32_t>(grammar.rank(grammar.NonterminalLabel(j))));
  }
  stats.start_nodes = grammar.start().num_nodes();
  stats.start_edges = grammar.start().num_edges();
  return stats;
}

}  // namespace grepair
