#include "src/baselines/hn.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "src/graph/graph_algos.h"
#include "src/k2tree/k2tree.h"
#include "src/util/byte_io.h"
#include "src/util/elias.h"
#include "src/util/hashing.h"

namespace grepair {

HnCompressed HnCompress(const Hypergraph& g, const HnOptions& options) {
  // Mutable sorted out-adjacency; virtual nodes are appended past the
  // original id range.
  std::vector<std::vector<uint32_t>> adj(g.num_nodes());
  for (const auto& e : g.edges()) {
    if (e.att.size() == 2) adj[e.att[0]].push_back(e.att[1]);
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  HnCompressed out;
  out.original_nodes = g.num_nodes();

  for (int iter = 0; iter < options.iterations; ++iter) {
    // Min-hash shingle of each out-neighborhood.
    uint64_t salt = Mix64(options.seed + 0x9E37u * (iter + 1));
    std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
    for (uint32_t v = 0; v < adj.size(); ++v) {
      if (adj[v].size() < 2) continue;
      uint64_t shingle = ~0ull;
      for (uint32_t n : adj[v]) {
        shingle = std::min(shingle, Mix64(n ^ salt));
      }
      buckets[shingle].push_back(v);
    }

    bool extracted_any = false;
    std::vector<char> used(adj.size(), 0);
    for (auto& [shingle, members] : buckets) {
      if (members.size() < options.min_rows) continue;
      // Greedy biclique growth: keep candidates whose intersection with
      // the current common-neighbor set C preserves the saving.
      std::vector<uint32_t> sources;
      std::vector<uint32_t> common;
      for (uint32_t v : members) {
        if (used[v]) continue;
        if (sources.empty()) {
          sources.push_back(v);
          common = adj[v];
          continue;
        }
        std::vector<uint32_t> next;
        std::set_intersection(common.begin(), common.end(), adj[v].begin(),
                              adj[v].end(), std::back_inserter(next));
        if (next.size() >= 2 &&
            (sources.size() + 1) * next.size() >=
                sources.size() * common.size()) {
          sources.push_back(v);
          common = std::move(next);
        }
      }
      if (sources.size() < options.min_rows || common.size() < 2) continue;
      int64_t saving = static_cast<int64_t>(sources.size()) *
                           static_cast<int64_t>(common.size()) -
                       static_cast<int64_t>(sources.size()) -
                       static_cast<int64_t>(common.size());
      if (saving < options.min_saving) continue;

      // Extract: virtual node w with S -> w -> C.
      uint32_t w = static_cast<uint32_t>(adj.size());
      adj.push_back(common);
      for (uint32_t s : sources) {
        std::vector<uint32_t> rest;
        std::set_difference(adj[s].begin(), adj[s].end(), common.begin(),
                            common.end(), std::back_inserter(rest));
        rest.insert(std::upper_bound(rest.begin(), rest.end(), w), w);
        adj[s] = std::move(rest);
        used[s] = 1;
      }
      ++out.patterns;
      extracted_any = true;
    }
    if (!extracted_any) break;
  }

  out.total_nodes = static_cast<uint32_t>(adj.size());
  std::vector<std::pair<uint32_t, uint32_t>> cells;
  for (uint32_t v = 0; v < adj.size(); ++v) {
    for (uint32_t n : adj[v]) cells.push_back({v, n});
  }
  out.residual_edges = cells.size();
  K2Tree tree =
      K2Tree::Build(out.total_nodes, out.total_nodes, cells, options.k);
  BitWriter w;
  EliasDeltaEncode(out.original_nodes + 1, &w);
  EliasDeltaEncode(out.total_nodes + 1, &w);
  tree.Serialize(&w);
  out.bytes = w.TakeBytes();
  return out;
}

Result<Hypergraph> HnDecompress(const HnCompressed& compressed) {
  BitReader r(compressed.bytes);
  uint64_t original = 0, total = 0;
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &original));
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &total));
  if (original == 0 || total == 0) return Status::Corruption("bad header");
  --original;
  --total;
  if (original > total) {
    return Status::Corruption("more original than total nodes");
  }
  auto tree = K2Tree::Deserialize(&r);
  if (!tree.ok()) return tree.status();
  if (tree.value().num_rows() != total ||
      tree.value().num_cols() != total) {
    return Status::Corruption("HN tree dimensions mismatch header");
  }

  std::vector<std::vector<uint32_t>> adj(total);
  for (const auto& cell : tree.value().AllCells()) {
    adj[cell.first].push_back(cell.second);
  }
  // Expansion of a virtual node: the original nodes reachable from it
  // through virtual nodes. Virtual-to-virtual edges can form cycles
  // (a virtual node may serve as a source of a later pattern whose
  // target set contains an older virtual node), so we condense the
  // virtual subgraph with SCC and propagate expansions in reverse
  // topological order.
  const uint32_t num_virtual = static_cast<uint32_t>(total - original);
  std::vector<std::vector<NodeId>> vadj(num_virtual);
  for (uint32_t w = 0; w < num_virtual; ++w) {
    for (uint32_t n : adj[original + w]) {
      if (n >= original) vadj[w].push_back(n - static_cast<uint32_t>(original));
    }
  }
  auto scc = TarjanScc(vadj);
  // comp ids are in reverse topological order: an edge u->v implies
  // comp[u] >= comp[v], so ascending comp order visits successors first.
  std::vector<std::vector<uint32_t>> comp_members(scc.num_components);
  for (uint32_t w = 0; w < num_virtual; ++w) {
    comp_members[scc.comp[w]].push_back(w);
  }
  std::vector<std::vector<uint32_t>> comp_expansion(scc.num_components);
  for (uint32_t c = 0; c < scc.num_components; ++c) {
    std::vector<uint32_t>& exp = comp_expansion[c];
    for (uint32_t w : comp_members[c]) {
      for (uint32_t n : adj[original + w]) {
        if (n < original) {
          exp.push_back(n);
        } else {
          uint32_t nc = scc.comp[n - static_cast<uint32_t>(original)];
          if (nc != c) {
            exp.insert(exp.end(), comp_expansion[nc].begin(),
                       comp_expansion[nc].end());
          }
        }
      }
    }
    std::sort(exp.begin(), exp.end());
    exp.erase(std::unique(exp.begin(), exp.end()), exp.end());
  }
  std::vector<std::vector<uint32_t>> expansion(num_virtual);
  for (uint32_t w = 0; w < num_virtual; ++w) {
    expansion[w] = comp_expansion[scc.comp[w]];
  }

  Hypergraph g(static_cast<uint32_t>(original));
  for (uint32_t u = 0; u < original; ++u) {
    std::vector<uint32_t> targets;
    for (uint32_t n : adj[u]) {
      if (n < original) {
        targets.push_back(n);
      } else {
        const auto& sub = expansion[n - original];
        targets.insert(targets.end(), sub.begin(), sub.end());
      }
    }
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()),
                  targets.end());
    for (uint32_t t : targets) g.AddSimpleEdge(u, t, 0);
  }
  return g;
}

std::vector<uint8_t> HnSerialize(const HnCompressed& compressed) {
  std::vector<uint8_t> out;
  PutU32LE(compressed.original_nodes, &out);
  PutU32LE(compressed.total_nodes, &out);
  PutU32LE(compressed.patterns, &out);
  PutU64LE(compressed.residual_edges, &out);
  PutU64LE(compressed.bytes.size(), &out);
  out.insert(out.end(), compressed.bytes.begin(), compressed.bytes.end());
  return out;
}

Result<HnCompressed> HnDeserialize(const std::vector<uint8_t>& bytes) {
  HnCompressed c;
  size_t pos = 0;
  uint64_t payload = 0;
  GREPAIR_RETURN_IF_ERROR(GetU32LE(bytes, &pos, &c.original_nodes));
  GREPAIR_RETURN_IF_ERROR(GetU32LE(bytes, &pos, &c.total_nodes));
  GREPAIR_RETURN_IF_ERROR(GetU32LE(bytes, &pos, &c.patterns));
  GREPAIR_RETURN_IF_ERROR(GetU64LE(bytes, &pos, &c.residual_edges));
  GREPAIR_RETURN_IF_ERROR(GetU64LE(bytes, &pos, &payload));
  if (pos + payload != bytes.size()) {
    return Status::Corruption("HN payload length mismatch");
  }
  c.bytes.assign(bytes.begin() + pos, bytes.end());
  return c;
}

}  // namespace grepair
