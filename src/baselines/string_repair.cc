#include "src/baselines/string_repair.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <unordered_map>

#include "src/util/elias.h"

namespace grepair {

namespace {

uint64_t PairKey(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

// Doubly-linked sequence with lazily validated pair occurrence lists.
struct RePairState {
  std::vector<uint32_t> sym;
  std::vector<uint32_t> prev, next;
  std::vector<char> alive;
  std::unordered_map<uint64_t, uint32_t> count;
  std::unordered_map<uint64_t, std::vector<uint32_t>> positions;
  // Max-heap of (count snapshot, pair key); stale entries are skipped.
  std::priority_queue<std::pair<uint32_t, uint64_t>> heap;

  void AddPair(uint32_t i) {
    if (next[i] == ~0u) return;
    uint64_t key = PairKey(sym[i], sym[next[i]]);
    uint32_t c = ++count[key];
    positions[key].push_back(i);
    if (c >= 2) heap.push({c, key});
  }

  void DropPair(uint32_t i) {
    if (next[i] == ~0u) return;
    uint64_t key = PairKey(sym[i], sym[next[i]]);
    auto it = count.find(key);
    if (it != count.end() && it->second > 0) --it->second;
  }
};

}  // namespace

StringRePairResult StringRePair(const std::vector<uint32_t>& input,
                                uint32_t alphabet_size) {
  StringRePairResult result;
  result.alphabet_size = alphabet_size;
  const uint32_t n = static_cast<uint32_t>(input.size());
  if (n < 2) {
    result.sequence = input;
    return result;
  }

  RePairState st;
  st.sym = input;
  st.prev.resize(n);
  st.next.resize(n);
  st.alive.assign(n, 1);
  for (uint32_t i = 0; i < n; ++i) {
    st.prev[i] = i == 0 ? ~0u : i - 1;
    st.next[i] = i + 1 == n ? ~0u : i + 1;
  }
  for (uint32_t i = 0; i + 1 < n; ++i) st.AddPair(i);

  uint32_t next_symbol = alphabet_size;
  while (!st.heap.empty()) {
    auto [snapshot, key] = st.heap.top();
    st.heap.pop();
    auto cit = st.count.find(key);
    if (cit == st.count.end() || cit->second != snapshot ||
        snapshot < 2) {
      continue;  // stale
    }
    uint32_t a = static_cast<uint32_t>(key >> 32);
    uint32_t b = static_cast<uint32_t>(key & 0xFFFFFFFFu);
    uint32_t x = next_symbol++;
    result.rules.push_back({a, b});

    auto plist = std::move(st.positions[key]);
    st.positions.erase(key);
    st.count.erase(key);
    for (uint32_t i : plist) {
      // Validate: position may be stale or overlap an earlier
      // replacement in this batch.
      if (!st.alive[i] || st.sym[i] != a) continue;
      uint32_t j = st.next[i];
      if (j == ~0u || !st.alive[j] || st.sym[j] != b) continue;
      // Neighbors lose their old pairs.
      if (st.prev[i] != ~0u) st.DropPair(st.prev[i]);
      st.DropPair(j);
      // Merge: i becomes x, j dies.
      st.sym[i] = x;
      st.alive[j] = 0;
      st.next[i] = st.next[j];
      if (st.next[j] != ~0u) st.prev[st.next[j]] = i;
      // Neighbors gain new pairs.
      if (st.prev[i] != ~0u) st.AddPair(st.prev[i]);
      st.AddPair(i);
    }
  }

  // Alive positions keep their array order (replacements only merge
  // neighbors), so a plain scan reads the final sequence.
  for (uint32_t i = 0; i < n; ++i) {
    if (st.alive[i]) result.sequence.push_back(st.sym[i]);
  }
  return result;
}

std::vector<uint32_t> StringRePairExpand(const StringRePairResult& result) {
  std::vector<uint32_t> out;
  std::vector<uint32_t> stack;
  for (uint32_t s : result.sequence) {
    stack.push_back(s);
    while (!stack.empty()) {
      uint32_t top = stack.back();
      stack.pop_back();
      if (top < result.alphabet_size) {
        out.push_back(top);
      } else {
        auto [a, b] = result.rules[top - result.alphabet_size];
        stack.push_back(b);
        stack.push_back(a);
      }
    }
  }
  return out;
}

size_t StringRePairResult::EstimateBits() const {
  size_t bits = EliasDeltaLength(alphabet_size + 1) +
                EliasDeltaLength(rules.size() + 1) +
                EliasDeltaLength(sequence.size() + 1);
  for (const auto& [a, b] : rules) {
    bits += EliasDeltaLength(a + 1) + EliasDeltaLength(b + 1);
  }
  for (uint32_t s : sequence) bits += EliasDeltaLength(s + 1);
  return bits;
}

AdjRePairCompressed AdjListRePairCompress(const Hypergraph& g) {
  // Concatenated sorted adjacency lists; a unique separator per list
  // (symbol n + u) prevents pairs from spanning lists.
  std::vector<std::vector<uint32_t>> adj(g.num_nodes());
  for (const auto& e : g.edges()) {
    if (e.att.size() == 2) adj[e.att[0]].push_back(e.att[1]);
  }
  std::vector<uint32_t> seq;
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    auto& list = adj[u];
    if (list.empty()) continue;
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    seq.insert(seq.end(), list.begin(), list.end());
    seq.push_back(g.num_nodes() + u);
  }
  AdjRePairCompressed out;
  out.num_nodes = g.num_nodes();
  out.repair = StringRePair(seq, 2 * g.num_nodes());
  return out;
}

Result<Hypergraph> AdjListRePairDecompress(
    const AdjRePairCompressed& compressed) {
  const uint32_t n = compressed.num_nodes;
  // Bound the expansion before materializing it: nested rules can blow
  // up exponentially (rule i = (i-1, i-1) doubles each level), so a
  // tiny hostile payload could otherwise OOM. The cap mirrors
  // DeriveOptions::max_edges plus one separator per node.
  const uint64_t limit = 500'000'000ull + n + 1;
  const auto& rules = compressed.repair.rules;
  const uint32_t alpha = compressed.repair.alphabet_size;
  std::vector<uint64_t> expanded_len(rules.size());
  auto symbol_len = [&](uint32_t s) {
    return s < alpha ? 1 : expanded_len[s - alpha];
  };
  for (size_t i = 0; i < rules.size(); ++i) {
    expanded_len[i] = std::min(
        symbol_len(rules[i].first) + symbol_len(rules[i].second),
        limit + 1);
  }
  uint64_t total = 0;
  for (uint32_t s : compressed.repair.sequence) {
    total = std::min(total + symbol_len(s), limit + 1);
  }
  if (total > limit) {
    return Status::Corruption("RePair expansion exceeds size limit");
  }
  std::vector<uint32_t> seq = StringRePairExpand(compressed.repair);
  Hypergraph g(n);
  std::vector<uint32_t> targets;
  for (uint32_t s : seq) {
    if (s < n) {
      targets.push_back(s);
    } else if (s < 2 * n) {
      uint32_t u = s - n;
      for (uint32_t t : targets) g.AddSimpleEdge(u, t, 0);
      targets.clear();
    } else {
      return Status::Corruption("RePair symbol out of range");
    }
  }
  if (!targets.empty()) {
    return Status::Corruption("adjacency list missing its separator");
  }
  return g;
}

std::vector<uint8_t> AdjRePairSerialize(const AdjRePairCompressed& c) {
  BitWriter w;
  EliasDeltaEncode(c.num_nodes + 1, &w);
  EliasDeltaEncode(c.repair.alphabet_size + 1, &w);
  EliasDeltaEncode(c.repair.rules.size() + 1, &w);
  for (const auto& [a, b] : c.repair.rules) {
    EliasDeltaEncode(a + 1, &w);
    EliasDeltaEncode(b + 1, &w);
  }
  EliasDeltaEncode(c.repair.sequence.size() + 1, &w);
  for (uint32_t s : c.repair.sequence) EliasDeltaEncode(s + 1, &w);
  return w.TakeBytes();
}

Result<AdjRePairCompressed> AdjRePairDeserialize(
    const std::vector<uint8_t>& bytes) {
  BitReader r(bytes);
  AdjRePairCompressed c;
  uint64_t num_nodes = 0, alphabet_size = 0, num_rules = 0, seq_len = 0;
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &num_nodes));
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &alphabet_size));
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &num_rules));
  if (num_nodes == 0 || alphabet_size == 0 || num_rules == 0) {
    return Status::Corruption("bad RePair header");
  }
  c.num_nodes = static_cast<uint32_t>(num_nodes - 1);
  c.repair.alphabet_size = static_cast<uint32_t>(alphabet_size - 1);
  // RePair invariant: rule i references only terminals and earlier
  // rules; enforcing it here keeps StringRePairExpand in-bounds and
  // terminating on untrusted input.
  for (uint64_t i = 0; i + 1 < num_rules; ++i) {
    uint64_t a = 0, b = 0;
    GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &a));
    GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &b));
    uint64_t limit = alphabet_size - 1 + i;
    if (a == 0 || b == 0 || a - 1 >= limit || b - 1 >= limit) {
      return Status::Corruption("RePair rule symbol out of range");
    }
    c.repair.rules.push_back({static_cast<uint32_t>(a - 1),
                              static_cast<uint32_t>(b - 1)});
  }
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &seq_len));
  if (seq_len == 0) return Status::Corruption("bad RePair sequence");
  uint64_t symbol_limit = alphabet_size - 1 + c.repair.rules.size();
  for (uint64_t i = 0; i + 1 < seq_len; ++i) {
    uint64_t s = 0;
    GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &s));
    if (s == 0 || s - 1 >= symbol_limit) {
      return Status::Corruption("RePair sequence symbol out of range");
    }
    c.repair.sequence.push_back(static_cast<uint32_t>(s - 1));
  }
  return c;
}

size_t AdjListRePairSizeBytes(const Hypergraph& g) {
  return AdjRePairSerialize(AdjListRePairCompress(g)).size();
}

}  // namespace grepair
