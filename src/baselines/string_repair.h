// Classic string RePair (Larsson & Moffat) over integer sequences, and
// the adjacency-list RePair graph baseline of Claude & Navarro ("Fast
// and Compact Web Graph Representations", TWEB 2010) that the paper
// mentions (and whose results it omits as dominated).
//
// RePair repeatedly replaces the most frequent adjacent symbol pair by
// a fresh symbol. This implementation uses the standard linked-list
// representation with a pair-count table and lazily validated
// occurrence lists: each replacement is O(1) amortized, total
// O(n + rules) expected.

#ifndef GREPAIR_BASELINES_STRING_REPAIR_H_
#define GREPAIR_BASELINES_STRING_REPAIR_H_

#include <cstdint>
#include <vector>

#include "src/graph/hypergraph.h"

namespace grepair {

/// \brief RePair output: rules over symbols (terminal symbols are
/// [0, alphabet_size), rule i defines symbol alphabet_size + i).
struct StringRePairResult {
  uint32_t alphabet_size = 0;
  std::vector<std::pair<uint32_t, uint32_t>> rules;
  std::vector<uint32_t> sequence;

  /// \brief Size estimate in bits with delta codes over rules and
  /// sequence (the flat encoding used by the bench tables).
  size_t EstimateBits() const;
};

/// \brief Runs RePair until no pair occurs twice.
StringRePairResult StringRePair(const std::vector<uint32_t>& input,
                                uint32_t alphabet_size);

/// \brief Expands the grammar back to the original sequence.
std::vector<uint32_t> StringRePairExpand(const StringRePairResult& result);

/// \brief Claude-Navarro style graph compression: concatenated sorted
/// adjacency lists with per-list unique separators (symbol n + u ends
/// node u's list), compressed with RePair.
struct AdjRePairCompressed {
  uint32_t num_nodes = 0;
  StringRePairResult repair;
};

/// \brief Compresses the unlabeled out-adjacency structure of `g`.
AdjRePairCompressed AdjListRePairCompress(const Hypergraph& g);

/// \brief Expands the RePair grammar and re-splits the separator-coded
/// sequence back into adjacency lists (unlabeled graph, sorted lists).
Result<Hypergraph> AdjListRePairDecompress(
    const AdjRePairCompressed& compressed);

/// \brief Delta-coded byte serialization; inverse of
/// AdjRePairDeserialize. Used by the "repair-adj" GraphCodec adapter.
std::vector<uint8_t> AdjRePairSerialize(const AdjRePairCompressed& c);

Result<AdjRePairCompressed> AdjRePairDeserialize(
    const std::vector<uint8_t>& bytes);

/// \brief One-shot: serialized size in bytes of the adjacency-list
/// RePair baseline (thin wrapper over AdjListRePairCompress).
size_t AdjListRePairSizeBytes(const Hypergraph& g);

}  // namespace grepair

#endif  // GREPAIR_BASELINES_STRING_REPAIR_H_
