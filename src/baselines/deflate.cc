#include "src/baselines/deflate.h"

#include <zlib.h>

namespace grepair {

std::vector<uint8_t> DeflateBytes(const std::vector<uint8_t>& data) {
  uLongf bound = compressBound(static_cast<uLong>(data.size()));
  std::vector<uint8_t> out(bound);
  int rc = compress2(out.data(), &bound, data.data(),
                     static_cast<uLong>(data.size()), 9);
  if (rc != Z_OK) {
    // compress2 only fails on parameter errors; fall back to a stored
    // copy so callers never observe a failure.
    return data;
  }
  out.resize(bound);
  return out;
}

Result<std::vector<uint8_t>> InflateBytes(const std::vector<uint8_t>& data,
                                          size_t expected_size) {
  // zlib's worst-case expansion is ~1032:1; an `expected_size` beyond
  // that is a corrupt (or hostile) header, and front-allocating it
  // would abort on bad_alloc before uncompress could fail cleanly.
  if (expected_size > data.size() * 1032 + 64) {
    return Status::Corruption("implausible inflate size");
  }
  std::vector<uint8_t> out(expected_size);
  uLongf size = static_cast<uLongf>(expected_size);
  int rc = uncompress(out.data(), &size, data.data(),
                      static_cast<uLong>(data.size()));
  if (rc != Z_OK || size != expected_size) {
    return Status::Corruption("inflate failed");
  }
  return out;
}

}  // namespace grepair
