// Plain k^2-tree graph compressor (Brisaboa, Ladra & Navarro) — the
// paper's primary baseline.
//
// One k^2-tree per edge label over the full adjacency matrix (the RDF
// extension of Alvarez-Garcia et al. that the paper compares against
// does exactly this), serialized with the same self-delimiting tree
// format as the grammar coder. Supports exact decompression and
// in/out-neighbor queries without decompression.

#ifndef GREPAIR_BASELINES_K2_COMPRESSOR_H_
#define GREPAIR_BASELINES_K2_COMPRESSOR_H_

#include <cstdint>
#include <vector>

#include "src/graph/hypergraph.h"
#include "src/k2tree/k2tree.h"
#include "src/util/status.h"

namespace grepair {

/// \brief In-memory k^2-tree representation of a simple labeled graph.
class K2GraphRepresentation {
 public:
  /// \brief Builds the per-label trees; `g` must contain only rank-2
  /// edges.
  static K2GraphRepresentation Build(const Hypergraph& g,
                                     const Alphabet& alphabet, int k = 2);

  /// \brief Serialized byte size (what the bench tables measure).
  std::vector<uint8_t> Serialize() const;

  static Result<K2GraphRepresentation> Deserialize(
      const std::vector<uint8_t>& bytes);

  /// \brief Reconstructs the graph (edges in label-major, row-major
  /// order).
  Hypergraph ToGraph() const;

  /// \brief Out-neighbors of `v` under `label`; empty for labels or
  /// nodes outside the represented ranges.
  std::vector<uint32_t> OutNeighbors(uint32_t v, Label label) const {
    if (label >= trees_.size() || v >= num_nodes_) return {};
    return trees_[label].RowNeighbors(v);
  }

  /// \brief In-neighbors of `v` under `label`; empty out of range.
  std::vector<uint32_t> InNeighbors(uint32_t v, Label label) const {
    if (label >= trees_.size() || v >= num_nodes_) return {};
    return trees_[label].ColNeighbors(v);
  }

  bool HasEdge(uint32_t u, uint32_t v, Label label) const {
    if (label >= trees_.size() || u >= num_nodes_ || v >= num_nodes_) {
      return false;
    }
    return trees_[label].Contains(u, v);
  }

  uint32_t num_nodes() const { return num_nodes_; }
  size_t num_labels() const { return trees_.size(); }

 private:
  uint32_t num_nodes_ = 0;
  std::vector<K2Tree> trees_;  // one per label (may be empty trees)
};

/// \brief One-shot: serialized size in bytes of the k^2-tree baseline.
size_t K2CompressedSize(const Hypergraph& g, const Alphabet& alphabet,
                        int k = 2);

}  // namespace grepair

#endif  // GREPAIR_BASELINES_K2_COMPRESSOR_H_
