#include "src/baselines/k2_compressor.h"

#include <cassert>

#include "src/util/elias.h"

namespace grepair {

K2GraphRepresentation K2GraphRepresentation::Build(const Hypergraph& g,
                                                   const Alphabet& alphabet,
                                                   int k) {
  K2GraphRepresentation rep;
  rep.num_nodes_ = g.num_nodes();
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> cells(
      alphabet.size());
  for (const auto& e : g.edges()) {
    assert(e.att.size() == 2 && "k2 baseline requires a simple graph");
    cells[e.label].push_back({e.att[0], e.att[1]});
  }
  rep.trees_.reserve(alphabet.size());
  for (Label l = 0; l < alphabet.size(); ++l) {
    rep.trees_.push_back(
        K2Tree::Build(g.num_nodes(), g.num_nodes(), std::move(cells[l]), k));
  }
  return rep;
}

std::vector<uint8_t> K2GraphRepresentation::Serialize() const {
  BitWriter w;
  EliasDeltaEncode(num_nodes_ + 1, &w);
  EliasDeltaEncode(trees_.size() + 1, &w);
  for (const auto& tree : trees_) {
    w.PutBit(tree.num_cells() > 0);
    if (tree.num_cells() > 0) tree.Serialize(&w);
  }
  return w.TakeBytes();
}

Result<K2GraphRepresentation> K2GraphRepresentation::Deserialize(
    const std::vector<uint8_t>& bytes) {
  BitReader r(bytes);
  uint64_t num_nodes = 0, num_labels = 0;
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &num_nodes));
  GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &num_labels));
  if (num_nodes == 0 || num_labels == 0) {
    return Status::Corruption("bad header");
  }
  K2GraphRepresentation rep;
  rep.num_nodes_ = static_cast<uint32_t>(num_nodes - 1);
  for (uint64_t l = 0; l + 1 < num_labels; ++l) {
    bool present = false;
    GREPAIR_RETURN_IF_ERROR(r.ReadBit(&present));
    if (present) {
      auto tree = K2Tree::Deserialize(&r);
      if (!tree.ok()) return tree.status();
      // Every per-label tree spans the full adjacency matrix; anything
      // else is corrupt and would let ToGraph emit out-of-range ids.
      if (tree.value().num_rows() != rep.num_nodes_ ||
          tree.value().num_cols() != rep.num_nodes_) {
        return Status::Corruption("k2 tree dimensions mismatch header");
      }
      rep.trees_.push_back(std::move(tree).ValueOrDie());
    } else {
      rep.trees_.push_back(K2Tree::Build(rep.num_nodes_, rep.num_nodes_, {}));
    }
  }
  return rep;
}

Hypergraph K2GraphRepresentation::ToGraph() const {
  Hypergraph g(num_nodes_);
  for (Label l = 0; l < trees_.size(); ++l) {
    for (const auto& cell : trees_[l].AllCells()) {
      g.AddSimpleEdge(cell.first, cell.second, l);
    }
  }
  return g;
}

size_t K2CompressedSize(const Hypergraph& g, const Alphabet& alphabet,
                        int k) {
  return K2GraphRepresentation::Build(g, alphabet, k).Serialize().size();
}

}  // namespace grepair
