// HN — dense-substructure virtual nodes + k^2-tree (Hernandez &
// Navarro, "Compressed representations for web and social graphs",
// KAIS 2014; discovery per Buehrer & Chellapilla, WSDM 2008).
//
// Repeatedly (T iterations): order nodes by a min-hash shingle of their
// out-neighborhoods, group nodes with equal shingles, and greedily
// extract bicliques (S x C with every s in S pointing to every c in C)
// whose replacement saves at least `min_saving` edges. Each extracted
// biclique is replaced by a fresh *virtual node* w with edges s -> w
// and w -> c, turning |S|*|C| edges into |S| + |C|. The final graph
// (original + virtual nodes) is stored as a k^2-tree.
//
// The defaults T=10, P=2 (minimum rows per pattern), ES=10 (minimum
// edge saving) are the parameters the paper reports as best for HN.
// Decompression expands virtual nodes transitively.

#ifndef GREPAIR_BASELINES_HN_H_
#define GREPAIR_BASELINES_HN_H_

#include <cstdint>
#include <vector>

#include "src/graph/hypergraph.h"
#include "src/util/status.h"

namespace grepair {

struct HnOptions {
  int iterations = 10;       ///< T
  uint32_t min_rows = 2;     ///< P: minimum |S| of an extracted pattern
  int64_t min_saving = 10;   ///< ES: minimum edge saving per pattern
  int k = 2;                 ///< k^2-tree arity for the residual
  uint64_t seed = 1;         ///< shingle hash seed
};

struct HnCompressed {
  uint32_t original_nodes = 0;
  uint32_t total_nodes = 0;      ///< original + virtual
  uint32_t patterns = 0;         ///< bicliques extracted
  uint64_t residual_edges = 0;   ///< edges in the stored graph
  std::vector<uint8_t> bytes;    ///< serialized k^2 representation

  size_t SizeBytes() const { return bytes.size() + 12; }
};

/// \brief Compresses the unlabeled out-adjacency structure of `g`.
HnCompressed HnCompress(const Hypergraph& g, const HnOptions& options = {});

/// \brief Expands virtual nodes back to the original edge set.
Result<Hypergraph> HnDecompress(const HnCompressed& compressed);

/// \brief Self-contained byte serialization (header + k^2 payload);
/// inverse of HnDeserialize. Used by the "hn" GraphCodec adapter.
std::vector<uint8_t> HnSerialize(const HnCompressed& compressed);

Result<HnCompressed> HnDeserialize(const std::vector<uint8_t>& bytes);

}  // namespace grepair

#endif  // GREPAIR_BASELINES_HN_H_
