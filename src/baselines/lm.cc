#include "src/baselines/lm.h"

#include <algorithm>
#include <cassert>

#include "src/baselines/deflate.h"
#include "src/util/bit_stream.h"
#include "src/util/elias.h"

namespace grepair {

LmCompressed LmCompress(const Hypergraph& g, uint32_t chunk_size) {
  assert(chunk_size >= 1 && chunk_size <= 64);
  LmCompressed out;
  out.num_nodes = g.num_nodes();
  out.chunk_size = chunk_size;

  // Sorted out-adjacency lists (duplicates collapse; rank-2 edges only).
  std::vector<std::vector<uint32_t>> adj(g.num_nodes());
  for (const auto& e : g.edges()) {
    if (e.att.size() == 2) adj[e.att[0]].push_back(e.att[1]);
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    out.num_edges += list.size();
  }

  BitWriter w;
  for (uint32_t base = 0; base < g.num_nodes(); base += chunk_size) {
    uint32_t block = std::min(chunk_size, g.num_nodes() - base);
    // Merged ordered union of the block's lists.
    std::vector<uint32_t> merged;
    for (uint32_t i = 0; i < block; ++i) {
      merged.insert(merged.end(), adj[base + i].begin(),
                    adj[base + i].end());
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());

    EliasDeltaEncode(merged.size() + 1, &w);
    uint32_t prev = 0;
    for (size_t m = 0; m < merged.size(); ++m) {
      // Gap code (first element stores value + 1).
      EliasDeltaEncode(m == 0 ? merged[0] + 1 : merged[m] - prev, &w);
      prev = merged[m];
    }
    // Membership columns: one bit per (merged element, block row).
    for (uint32_t value : merged) {
      for (uint32_t i = 0; i < block; ++i) {
        const auto& list = adj[base + i];
        bool member =
            std::binary_search(list.begin(), list.end(), value);
        w.PutBit(member);
      }
    }
  }
  w.AlignToByte();
  std::vector<uint8_t> stream = w.TakeBytes();
  out.raw_stream_size = stream.size();
  out.deflated = DeflateBytes(stream);
  return out;
}

Result<Hypergraph> LmDecompress(const LmCompressed& compressed) {
  auto inflated =
      InflateBytes(compressed.deflated, compressed.raw_stream_size);
  if (!inflated.ok()) return inflated.status();
  BitReader r(inflated.value());

  Hypergraph g(compressed.num_nodes);
  for (uint32_t base = 0; base < compressed.num_nodes;
       base += compressed.chunk_size) {
    uint32_t block =
        std::min(compressed.chunk_size, compressed.num_nodes - base);
    uint64_t merged_size = 0;
    GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &merged_size));
    if (merged_size == 0) return Status::Corruption("bad merged size");
    --merged_size;
    std::vector<uint32_t> merged(merged_size);
    uint32_t prev = 0;
    for (uint64_t m = 0; m < merged_size; ++m) {
      uint64_t gap = 0;
      GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &gap));
      if (m == 0) {
        prev = static_cast<uint32_t>(gap - 1);
      } else {
        prev += static_cast<uint32_t>(gap);
      }
      if (prev >= compressed.num_nodes) {
        return Status::Corruption("neighbor out of range");
      }
      merged[m] = prev;
    }
    std::vector<std::vector<uint32_t>> lists(block);
    for (uint32_t value : merged) {
      for (uint32_t i = 0; i < block; ++i) {
        bool member = false;
        GREPAIR_RETURN_IF_ERROR(r.ReadBit(&member));
        if (member) lists[i].push_back(value);
      }
    }
    for (uint32_t i = 0; i < block; ++i) {
      for (uint32_t v : lists[i]) {
        g.AddSimpleEdge(base + i, v, 0);
      }
    }
  }
  return g;
}

}  // namespace grepair
