#include "src/baselines/lm.h"

#include <algorithm>
#include <cassert>

#include "src/baselines/deflate.h"
#include "src/util/bit_stream.h"
#include "src/util/byte_io.h"
#include "src/util/elias.h"

namespace grepair {

LmCompressed LmCompress(const Hypergraph& g, uint32_t chunk_size) {
  assert(chunk_size >= 1 && chunk_size <= 64);
  LmCompressed out;
  out.num_nodes = g.num_nodes();
  out.chunk_size = chunk_size;

  // Sorted out-adjacency lists (duplicates collapse; rank-2 edges only).
  std::vector<std::vector<uint32_t>> adj(g.num_nodes());
  for (const auto& e : g.edges()) {
    if (e.att.size() == 2) adj[e.att[0]].push_back(e.att[1]);
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    out.num_edges += list.size();
  }

  BitWriter w;
  for (uint32_t base = 0; base < g.num_nodes(); base += chunk_size) {
    uint32_t block = std::min(chunk_size, g.num_nodes() - base);
    // Merged ordered union of the block's lists.
    std::vector<uint32_t> merged;
    for (uint32_t i = 0; i < block; ++i) {
      merged.insert(merged.end(), adj[base + i].begin(),
                    adj[base + i].end());
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());

    EliasDeltaEncode(merged.size() + 1, &w);
    uint32_t prev = 0;
    for (size_t m = 0; m < merged.size(); ++m) {
      // Gap code (first element stores value + 1).
      EliasDeltaEncode(m == 0 ? merged[0] + 1 : merged[m] - prev, &w);
      prev = merged[m];
    }
    // Membership columns: one bit per (merged element, block row).
    for (uint32_t value : merged) {
      for (uint32_t i = 0; i < block; ++i) {
        const auto& list = adj[base + i];
        bool member =
            std::binary_search(list.begin(), list.end(), value);
        w.PutBit(member);
      }
    }
  }
  w.AlignToByte();
  std::vector<uint8_t> stream = w.TakeBytes();
  out.raw_stream_size = stream.size();
  out.deflated = DeflateBytes(stream);
  return out;
}

Result<Hypergraph> LmDecompress(const LmCompressed& compressed) {
  auto inflated =
      InflateBytes(compressed.deflated, compressed.raw_stream_size);
  if (!inflated.ok()) return inflated.status();
  BitReader r(inflated.value());

  Hypergraph g(compressed.num_nodes);
  for (uint32_t base = 0; base < compressed.num_nodes;
       base += compressed.chunk_size) {
    uint32_t block =
        std::min(compressed.chunk_size, compressed.num_nodes - base);
    uint64_t merged_size = 0;
    GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &merged_size));
    if (merged_size == 0) return Status::Corruption("bad merged size");
    --merged_size;
    // Each merged entry costs at least one bit in the stream; a larger
    // count is corrupt and would front-allocate attacker-chosen memory.
    if (merged_size > inflated.value().size() * 8) {
      return Status::Corruption("merged size exceeds stream");
    }
    std::vector<uint32_t> merged(merged_size);
    uint32_t prev = 0;
    for (uint64_t m = 0; m < merged_size; ++m) {
      uint64_t gap = 0;
      GREPAIR_RETURN_IF_ERROR(EliasDeltaDecode(&r, &gap));
      if (m == 0) {
        prev = static_cast<uint32_t>(gap - 1);
      } else {
        prev += static_cast<uint32_t>(gap);
      }
      if (prev >= compressed.num_nodes) {
        return Status::Corruption("neighbor out of range");
      }
      merged[m] = prev;
    }
    std::vector<std::vector<uint32_t>> lists(block);
    for (uint32_t value : merged) {
      for (uint32_t i = 0; i < block; ++i) {
        bool member = false;
        GREPAIR_RETURN_IF_ERROR(r.ReadBit(&member));
        if (member) lists[i].push_back(value);
      }
    }
    for (uint32_t i = 0; i < block; ++i) {
      for (uint32_t v : lists[i]) {
        g.AddSimpleEdge(base + i, v, 0);
      }
    }
  }
  return g;
}

std::vector<uint8_t> LmSerialize(const LmCompressed& compressed) {
  std::vector<uint8_t> out;
  PutU32LE(compressed.num_nodes, &out);
  PutU32LE(compressed.chunk_size, &out);
  PutU64LE(compressed.num_edges, &out);
  PutU64LE(compressed.raw_stream_size, &out);
  out.insert(out.end(), compressed.deflated.begin(),
             compressed.deflated.end());
  return out;
}

Result<LmCompressed> LmDeserialize(const std::vector<uint8_t>& bytes) {
  LmCompressed c;
  size_t pos = 0;
  uint64_t raw_size = 0;
  GREPAIR_RETURN_IF_ERROR(GetU32LE(bytes, &pos, &c.num_nodes));
  GREPAIR_RETURN_IF_ERROR(GetU32LE(bytes, &pos, &c.chunk_size));
  GREPAIR_RETURN_IF_ERROR(GetU64LE(bytes, &pos, &c.num_edges));
  GREPAIR_RETURN_IF_ERROR(GetU64LE(bytes, &pos, &raw_size));
  if (c.chunk_size < 1 || c.chunk_size > 64) {
    return Status::Corruption("LM chunk size out of range");
  }
  c.raw_stream_size = raw_size;
  c.deflated.assign(bytes.begin() + pos, bytes.end());
  return c;
}

}  // namespace grepair
