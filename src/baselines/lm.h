// LM — list merging web graph compression (Grabowski & Bieniecki,
// "Tight and simple web graph compression for forward and reverse
// neighbor queries", DAM 2014).
//
// Nodes are processed in blocks of `chunk_size` (the paper and ours use
// 64): the block's adjacency lists are merged into one ordered list of
// distinct neighbors, stored as delta-coded gaps, followed by one
// chunk_size-bit membership column per merged neighbor saying which of
// the block's lists contain it. The byte stream is then passed through
// Deflate, which is where most of the compression comes from (shared
// neighbors across consecutive nodes collapse into highly repetitive
// flag columns).
//
// LM supports out-neighbor queries by decoding one block; it does not
// handle edge labels (the paper compares it only on unlabeled graphs).

#ifndef GREPAIR_BASELINES_LM_H_
#define GREPAIR_BASELINES_LM_H_

#include <cstdint>
#include <vector>

#include "src/graph/hypergraph.h"
#include "src/util/status.h"

namespace grepair {

/// \brief Compressed LM representation.
struct LmCompressed {
  uint32_t num_nodes = 0;
  uint32_t chunk_size = 64;
  uint64_t num_edges = 0;
  size_t raw_stream_size = 0;      ///< pre-Deflate size (for Inflate)
  std::vector<uint8_t> deflated;   ///< Deflate(stream)

  /// \brief Total representation size in bytes (header + payload).
  size_t SizeBytes() const { return deflated.size() + 16; }
};

/// \brief Compresses the out-adjacency structure of `g` (labels are
/// ignored; `g`'s rank-2 edges define the lists).
LmCompressed LmCompress(const Hypergraph& g, uint32_t chunk_size = 64);

/// \brief Reconstructs all adjacency lists (unlabeled graph; edges in
/// node-major sorted order).
Result<Hypergraph> LmDecompress(const LmCompressed& compressed);

/// \brief Self-contained byte serialization (header + Deflate payload);
/// inverse of LmDeserialize. Used by the "lm" GraphCodec adapter.
std::vector<uint8_t> LmSerialize(const LmCompressed& compressed);

Result<LmCompressed> LmDeserialize(const std::vector<uint8_t>& bytes);

}  // namespace grepair

#endif  // GREPAIR_BASELINES_LM_H_
