// Thin zlib wrapper: the LM baseline compresses its merged-list stream
// with a general-purpose compressor (the authors used Deflate/gzip).

#ifndef GREPAIR_BASELINES_DEFLATE_H_
#define GREPAIR_BASELINES_DEFLATE_H_

#include <cstdint>
#include <vector>

#include "src/util/status.h"

namespace grepair {

/// \brief Deflate-compresses `data` (zlib format, level 9).
std::vector<uint8_t> DeflateBytes(const std::vector<uint8_t>& data);

/// \brief Inverse of DeflateBytes; `expected_size` must be the original
/// length (stored out of band by callers).
Result<std::vector<uint8_t>> InflateBytes(const std::vector<uint8_t>& data,
                                          size_t expected_size);

}  // namespace grepair

#endif  // GREPAIR_BASELINES_DEFLATE_H_
