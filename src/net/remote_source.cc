#include "src/net/remote_source.h"

#include <cstring>
#include <utility>

namespace grepair {
namespace net {

Result<std::shared_ptr<RemoteShardSource>> RemoteShardSource::Connect(
    const std::string& host_port, const Options& options) {
  std::string host;
  uint16_t port = 0;
  GREPAIR_RETURN_IF_ERROR(ParseHostPort(host_port, &host, &port));
  // The first Call dials; a connect failure surfaces through it.
  auto source = std::shared_ptr<RemoteShardSource>(new RemoteShardSource(
      std::move(host), port, host_port, options.io_timeout_ms));
  auto dir_frame = source->Call(kGetDir, ByteSpan{}, kDir);
  if (!dir_frame.ok()) return dir_frame.status();
  const std::vector<uint8_t>& body = dir_frame.value().body;
  ByteSource body_src(SpanOf(body), "shard server directory frame");
  uint64_t dir_off = 0;
  GREPAIR_RETURN_IF_ERROR(body_src.ReadU64LE(&dir_off));
  auto dir = shard::ParseV2Directory(body_src.PeekRemaining(), dir_off);
  if (!dir.ok()) return dir.status();
  source->directory_ = std::move(dir).ValueOrDie();
  source->shard_lengths_.reserve(source->directory_.rows.size());
  for (const auto& row : source->directory_.rows) {
    source->shard_lengths_.push_back(row.length);
  }
  return source;
}

shard::ParsedDirectory RemoteShardSource::TakeDirectory() {
  return std::move(directory_);
}

Result<Frame> RemoteShardSource::Call(uint8_t type, ByteSpan body,
                                      uint8_t expect) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Every request is a pure read, so a transport failure is retried
  // exactly once on a fresh connection (servers reap idle peers; a
  // redial-and-retry is the difference between surviving that and a
  // permanently broken rep). Corruption is never retried — a lying
  // peer does not get a second chance to lie.
  Status transport = Status::OK();
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (broken_) {
      auto dialed = Socket::ConnectTcp(host_, port_, io_timeout_ms_);
      if (!dialed.ok()) {
        return Status::Unavailable("cannot reach " + peer_ + ": " +
                                   dialed.status().message());
      }
      socket_ = std::move(dialed).ValueOrDie();
      broken_ = false;
    }
    Status sent = WriteFrame(&socket_, type, body);
    if (!sent.ok()) {
      broken_ = true;
      transport = Status::Unavailable("request to " + peer_ +
                                      " failed: " + sent.message());
      continue;
    }
    auto frame = ReadFrame(&socket_);
    if (!frame.ok()) {
      broken_ = true;
      Status status = frame.status();
      if (status.code() == StatusCode::kUnavailable) {
        transport = Status::Unavailable("response from " + peer_ +
                                        " failed: " + status.message());
        continue;
      }
      return status;  // corruption: malformed frame, checksum mismatch
    }
    if (frame.value().type == kError) {
      // A served error is a per-request failure, not a transport one:
      // the stream stays in sync, later requests may succeed.
      return DecodeErrorBody(SpanOf(frame.value().body));
    }
    if (frame.value().type != expect) {
      broken_ = true;
      return Status::Corruption(
          "shard server sent frame type " +
          std::to_string(frame.value().type) + " where " +
          std::to_string(expect) + " was expected");
    }
    return frame;
  }
  return transport;
}

Result<ByteSpan> RemoteShardSource::FetchShard(size_t shard,
                                               std::vector<uint8_t>* owned) {
  if (shard >= shard_lengths_.size()) {
    return Status::Internal("shard index " + std::to_string(shard) +
                            " out of range for remote source");
  }
  std::vector<uint8_t> request;
  PutU32LE(static_cast<uint32_t>(shard), &request);
  auto frame = Call(kGetShard, SpanOf(request), kShard);
  if (!frame.ok()) return frame.status();
  std::vector<uint8_t>& body = frame.value().body;
  ByteSource body_src(SpanOf(body), "shard server shard frame");
  uint32_t echoed = 0;
  GREPAIR_RETURN_IF_ERROR(body_src.ReadU32LE(&echoed));
  if (echoed != shard) {
    return Status::Corruption(
        "shard server returned shard " + std::to_string(echoed) +
        " where shard " + std::to_string(shard) + " was requested");
  }
  // Length is re-checked (and the payload checksum verified) by the
  // caller against the directory; the early check here just gives the
  // error a transport-level voice.
  if (body.size() - 4 != shard_lengths_[shard]) {
    return Status::Corruption(
        "shard " + std::to_string(shard) + " payload is " +
        std::to_string(body.size() - 4) + " byte(s), directory says " +
        std::to_string(shard_lengths_[shard]));
  }
  owned->assign(body.begin() + 4, body.end());
  return SpanOf(*owned);
}

Result<std::unique_ptr<api::CompressedRep>> OpenRemoteContainer(
    const std::string& host_port,
    const RemoteShardSource::Options& options) {
  auto source = RemoteShardSource::Connect(host_port, options);
  if (!source.ok()) return source.status();
  shard::ParsedDirectory dir = source.value()->TakeDirectory();
  auto rep = shard::ShardedRep::OpenFromSource(
      std::move(source).ValueOrDie(), std::move(dir));
  if (!rep.ok()) return rep.status();
  return std::unique_ptr<api::CompressedRep>(std::move(rep).ValueOrDie());
}

}  // namespace net
}  // namespace grepair
