// GRNF wire frames: the length-prefixed, checksummed protocol the
// shard server and remote client speak over TCP.
//
// Every message is one frame (little-endian):
//
//   u32  magic    "GRNF"  (0x464E5247)
//   u8   version  1
//   u8   type     FrameType below
//   u32  len      body byte length (<= kMaxFrameBody)
//   ...  body     `len` bytes
//   u64  checksum HashBytes over header + body (bytes [0, 10+len))
//
// Request/response pairs (client speaks first, one request in flight
// per connection):
//
//   kGetDir   c->s  empty body
//   kDir      s->c  u64 directory offset + the container's raw
//                   GRSHARD2 footer-directory bytes, verbatim — the
//                   client reparses them with the same hardened parser
//                   the file path uses (shard::ParseV2Directory)
//   kGetShard c->s  u32 shard index
//   kShard    s->c  u32 echoed shard index + the shard's payload bytes
//   kError    s->c  u8 StatusCode + UTF-8 message (any request can
//                   fail; the client surfaces it as that Status)
//
// The frame checksum fails closed on transport corruption; shard
// payload integrity is additionally pinned end-to-end by the GRSHARD2
// directory checksum the client verifies at fault time, so a server
// that sends a well-framed wrong payload is still caught.
//
// DecodeFrame is a pure function over a byte buffer (the fuzz harness
// drives it directly); ReadFrame/WriteFrame are the socket bindings.

#ifndef GREPAIR_NET_FRAME_H_
#define GREPAIR_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/byte_io.h"
#include "src/util/socket.h"
#include "src/util/status.h"

namespace grepair {
namespace net {

inline constexpr uint32_t kFrameMagic = 0x464E5247u;  // "GRNF"
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 10;
inline constexpr size_t kFrameChecksumBytes = 8;

/// \brief Body-length bound: a lying length field must not drive a
/// giant allocation. Shard payloads are compressed, so 64 MiB is far
/// above any real shard; larger shards are a server-side error frame.
inline constexpr size_t kMaxFrameBody = 64u << 20;

enum FrameType : uint8_t {
  kGetDir = 1,
  kDir = 2,
  kGetShard = 3,
  kShard = 4,
  kError = 5,
};

/// \brief One decoded frame.
struct Frame {
  uint8_t type = 0;
  std::vector<uint8_t> body;
};

/// \brief Encodes a complete frame (header + body + checksum).
std::vector<uint8_t> EncodeFrame(uint8_t type, ByteSpan body);

/// \brief Validates a frame header (magic, version, known type, body
/// bound). On success *type/*body_len receive the parsed fields.
Status ValidateFrameHeader(const uint8_t* header, uint8_t* type,
                           uint32_t* body_len);

/// \brief Decodes one frame from the front of `bytes` (checksum
/// verified). *consumed (when non-null) receives the frame's total
/// size on success. Clean kCorruption on anything malformed.
Result<Frame> DecodeFrame(ByteSpan bytes, size_t* consumed = nullptr);

/// \brief Sends one frame; kUnavailable on IO failure/timeout.
Status WriteFrame(Socket* socket, uint8_t type, ByteSpan body);

/// \brief Receives exactly one frame. A clean EOF at a frame boundary
/// sets *clean_eof (the server's normal end-of-connection signal);
/// mid-frame EOF, timeouts and malformed bytes are non-OK without it.
Result<Frame> ReadFrame(Socket* socket, bool* clean_eof = nullptr);

/// \brief kError body encoding: u8 StatusCode + message bytes.
std::vector<uint8_t> EncodeErrorBody(const Status& status);

/// \brief Reconstructs the Status carried by a kError body (prefixed
/// with "shard server: " so callers can tell remote from local
/// failures). Malformed bodies decode to kCorruption.
Status DecodeErrorBody(ByteSpan body);

}  // namespace net
}  // namespace grepair

#endif  // GREPAIR_NET_FRAME_H_
