// GRNF wire frames: the length-prefixed, checksummed protocol the
// shard server and remote client speak over TCP.
//
// Every message is one frame (little-endian):
//
//   u32  magic    "GRNF"  (0x464E5247)
//   u8   version  1 or 2 (kProtoV1 / kProtoV2)
//   u8   type     FrameType below
//   u32  len      body byte length (<= kMaxFrameBody)
//   ...  body     `len` bytes
//   u64  checksum HashBytes over header + body (bytes [0, 10+len))
//
// The header layout is identical in both protocol versions; only the
// version byte and the set of legal types differ, so a v1 peer and a
// v2 peer always stay frame-synchronized even when they disagree —
// disagreement surfaces as a clean error frame, never as a desynced
// stream.
//
// GRNF v1 (one request in flight per connection, single corpus):
//
//   kGetDir   c->s  empty body
//   kDir      s->c  u64 directory offset + the container's raw
//                   GRSHARD2 footer-directory bytes, verbatim — the
//                   client reparses them with the same hardened parser
//                   the file path uses (shard::ParseV2Directory)
//   kGetShard c->s  u32 shard index
//   kShard    s->c  u32 echoed shard index + the shard's payload bytes
//   kError    s->c  u8 StatusCode + UTF-8 message (any request can
//                   fail; the client surfaces it as that Status)
//
// GRNF v2 (multi-tenant, multiplexed; see src/net/README.md for the
// full spec). A connection opens with a synchronous handshake, then
// any number of tagged requests may be in flight concurrently; every
// post-handshake body starts with a u64 request id the server echoes
// verbatim so responses can arrive out of order:
//
//   kHello      c->s  u32 highest protocol version the client speaks
//   kHelloOk    s->c  u32 negotiated version + u32 corpus count
//   kOpenCorpus c->s  u64 req_id + u8 name_len + name bytes (an empty
//                     name resolves iff the server hosts one corpus)
//   kCorpusDir  s->c  u64 req_id + u32 corpus_id + u64 dir_off + the
//                     corpus' raw GRSHARD2 directory bytes
//   kGetShard2  c->s  u64 req_id + u32 corpus_id + u32 shard index
//   kShard2     s->c  u64 req_id + u32 corpus_id + u32 echoed shard
//                     index + the shard's payload bytes
//   kGetStats   c->s  u64 req_id
//   kStats      s->c  u64 req_id + serving stats (src/serve/stats.h)
//   kError2     s->c  u64 req_id + u8 StatusCode + UTF-8 message
//
// The frame checksum fails closed on transport corruption; shard
// payload integrity is additionally pinned end-to-end by the GRSHARD2
// directory checksum the client verifies at fault time, so a server
// that sends a well-framed wrong payload is still caught.
//
// DecodeFrame is a pure function over a byte buffer (the fuzz harness
// drives it directly); ReadFrame/WriteFrame are the socket bindings.

#ifndef GREPAIR_NET_FRAME_H_
#define GREPAIR_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/byte_io.h"
#include "src/util/socket.h"
#include "src/util/status.h"

namespace grepair {
namespace net {

inline constexpr uint32_t kFrameMagic = 0x464E5247u;  // "GRNF"
inline constexpr uint8_t kProtoV1 = 1;
inline constexpr uint8_t kProtoV2 = 2;
inline constexpr size_t kFrameHeaderBytes = 10;
inline constexpr size_t kFrameChecksumBytes = 8;

/// \brief Body-length bound: a lying length field must not drive a
/// giant allocation. Shard payloads are compressed, so 64 MiB is far
/// above any real shard; larger shards are a server-side error frame.
inline constexpr size_t kMaxFrameBody = 64u << 20;

enum FrameType : uint8_t {
  // GRNF v1 (PR 5).
  kGetDir = 1,
  kDir = 2,
  kGetShard = 3,
  kShard = 4,
  kError = 5,
  // GRNF v2: handshake, corpus-addressed verbs, tagged requests.
  kHello = 6,
  kHelloOk = 7,
  kOpenCorpus = 8,
  kCorpusDir = 9,
  kGetShard2 = 10,
  kShard2 = 11,
  kGetStats = 12,
  kStats = 13,
  kError2 = 14,
};

/// \brief The protocol version a frame type belongs to (0 for unknown
/// types). A frame whose version byte disagrees with its type's
/// version is malformed: every type is legal in exactly one version.
uint8_t FrameVersionForType(uint8_t type);

/// \brief One decoded frame.
struct Frame {
  uint8_t version = 0;
  uint8_t type = 0;
  std::vector<uint8_t> body;
};

/// \brief Encodes a complete frame (header + body + checksum). The
/// version byte is derived from the type via FrameVersionForType.
std::vector<uint8_t> EncodeFrame(uint8_t type, ByteSpan body);

/// \brief Explicit-version encode, for tests that need to craft
/// version/type mismatches a conforming peer would never send.
std::vector<uint8_t> EncodeFrameWithVersion(uint8_t version, uint8_t type,
                                            ByteSpan body);

/// \brief Validates a frame header (magic, version 1 or 2, known type
/// of that version, body bound). On success *version/*type/*body_len
/// receive the parsed fields.
Status ValidateFrameHeader(const uint8_t* header, uint8_t* version,
                           uint8_t* type, uint32_t* body_len);

/// \brief Decodes one frame from the front of `bytes` (checksum
/// verified). *consumed (when non-null) receives the frame's total
/// size on success. Clean kCorruption on anything malformed.
Result<Frame> DecodeFrame(ByteSpan bytes, size_t* consumed = nullptr);

/// \brief Sends one frame; kUnavailable on IO failure/timeout.
Status WriteFrame(Socket* socket, uint8_t type, ByteSpan body);

/// \brief Receives exactly one frame. A clean EOF at a frame boundary
/// sets *clean_eof (the server's normal end-of-connection signal);
/// mid-frame EOF, timeouts and malformed bytes are non-OK without it.
Result<Frame> ReadFrame(Socket* socket, bool* clean_eof = nullptr);

/// \brief kError body encoding: u8 StatusCode + message bytes.
std::vector<uint8_t> EncodeErrorBody(const Status& status);

/// \brief Reconstructs the Status carried by a kError body (prefixed
/// with "shard server: " so callers can tell remote from local
/// failures). Malformed bodies decode to kCorruption.
Status DecodeErrorBody(ByteSpan body);

/// \brief kError2 body encoding: u64 req_id + u8 StatusCode + message.
std::vector<uint8_t> EncodeErrorBody2(uint64_t req_id, const Status& status);

/// \brief Decodes a kError2 body; *req_id (when non-null) receives the
/// echoed request id (0 if the body is too short to carry one).
Status DecodeErrorBody2(ByteSpan body, uint64_t* req_id = nullptr);

/// \brief The request id leading a v2 tagged body (kOpenCorpus,
/// kCorpusDir, kGetShard2, kShard2, kGetStats, kError2). kCorruption
/// for untagged types or bodies shorter than 8 bytes.
Result<uint64_t> FrameRequestId(const Frame& frame);

}  // namespace net
}  // namespace grepair

#endif  // GREPAIR_NET_FRAME_H_
