// ShardServer: serves one GRSHARD2 container over TCP so a fleet of
// query frontends can share a single compressed corpus.
//
// The server mmaps the container once, validates its checksummed
// footer directory up front, and then answers two requests (see
// src/net/frame.h for the framing):
//
//   kGetDir   -> the raw directory byte region (+ its offset), which
//                the client reparses with the same hardened parser
//                the local file path uses
//   kGetShard -> one shard's payload blob, straight out of the
//                mapping (no shard is ever decoded server-side)
//
// Serving is therefore O(directory) at startup and O(payload bytes)
// per request — the server never pays an inner deserialization, which
// is exactly the paper's point: the compressed form is the wire form.
//
// Concurrency: one accept thread plus one thread per connection, each
// handling requests sequentially. Stop() (and the destructor) shuts
// down the listener and every live connection and joins all threads;
// it is safe to call while requests are in flight.

#ifndef GREPAIR_NET_SHARD_SERVER_H_
#define GREPAIR_NET_SHARD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/frame.h"
#include "src/shard/sharded_codec.h"
#include "src/util/byte_io.h"
#include "src/util/mmap_file.h"
#include "src/util/socket.h"
#include "src/util/status.h"

namespace grepair {
namespace net {

class ShardServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";  ///< bind address (loopback default)
    uint16_t port = 0;               ///< 0 = pick an ephemeral port
    int io_timeout_ms = 30000;       ///< per-connection send/recv bound
  };

  /// \brief Opens `path` via mmap — a backend-tagged ("GRPCODEC")
  /// file or a bare container — and serves its GRSHARD2 payload.
  /// kInvalidArgument for v1 containers (no directory to serve; ask
  /// for `--container v2`) and non-sharded payloads.
  static Result<std::unique_ptr<ShardServer>> Start(
      const std::string& path, const Options& options);
  static Result<std::unique_ptr<ShardServer>> Start(
      const std::string& path) {
    return Start(path, Options());
  }

  /// \brief Serves an already-available container payload. `file`
  /// (may be null) pins `payload`'s storage for the server's
  /// lifetime; with a null file the caller owns that lifetime (the
  /// in-process test path serving a serialized buffer).
  static Result<std::unique_ptr<ShardServer>> Serve(
      std::shared_ptr<MmapFile> file, ByteSpan payload,
      const Options& options);
  static Result<std::unique_ptr<ShardServer>> Serve(
      std::shared_ptr<MmapFile> file, ByteSpan payload) {
    return Serve(std::move(file), payload, Options());
  }

  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }
  std::string host_port() const {
    return host_ + ":" + std::to_string(port_);
  }
  const std::string& inner_name() const { return inner_name_; }
  size_t num_shards() const { return rows_.size(); }

  /// \brief Shuts the listener and every live connection down and
  /// joins all worker threads. Idempotent.
  void Stop();

  /// \brief Monotonic counters since Start (safe to read while
  /// serving).
  struct Stats {
    uint64_t connections = 0;  ///< connections accepted
    uint64_t requests = 0;     ///< well-formed frames answered
    uint64_t bytes_sent = 0;   ///< response bytes (frames included)
    uint64_t errors = 0;       ///< error frames sent + dropped conns
  };
  Stats stats() const;

 private:
  ShardServer() = default;

  Status Init(std::shared_ptr<MmapFile> file, ByteSpan payload,
              const Options& options);
  void AcceptLoop();
  void ServeConnection(size_t slot);
  // One request -> one response frame (or error frame). Returns false
  // when the connection must close (unsyncable input stream).
  bool HandleFrame(Socket* socket, const Frame& frame);
  Status SendFrame(Socket* socket, uint8_t type, ByteSpan body);
  Status SendError(Socket* socket, const Status& status);

  std::shared_ptr<MmapFile> file_;  // pins payload_ when non-null
  ByteSpan payload_;                // the GRSHARD2 container bytes
  ByteSpan dir_region_;             // footer directory inside payload_
  uint64_t dir_off_ = 0;
  std::string inner_name_;
  std::vector<shard::ShardDirEntry> rows_;

  std::string host_;
  uint16_t port_ = 0;
  int io_timeout_ms_ = 30000;
  Socket listener_;
  std::thread accept_thread_;
  std::mutex stop_mutex_;  // serializes Stop callers
  std::atomic<bool> stopping_{false};

  // Live connections: sockets stay owned here so Stop can shut them
  // down mid-recv; slots are append-only. Finished connections close
  // their fd and park their slot in finished_slots_ for the accept
  // loop to reap (join) — Stop joins whatever remains.
  std::mutex conn_mutex_;
  std::vector<std::unique_ptr<Socket>> conn_sockets_;
  std::vector<std::thread> conn_threads_;
  std::vector<size_t> finished_slots_;

  mutable std::atomic<uint64_t> stat_connections_{0};
  mutable std::atomic<uint64_t> stat_requests_{0};
  mutable std::atomic<uint64_t> stat_bytes_sent_{0};
  mutable std::atomic<uint64_t> stat_errors_{0};
};

}  // namespace net
}  // namespace grepair

#endif  // GREPAIR_NET_SHARD_SERVER_H_
