// RemoteShardSource: the network implementation of the ShardSource
// seam — a ShardedRep whose cold shards fault across TCP instead of
// from a local mapping.
//
// Connect() dials a ShardServer, fetches and reparses the container's
// footer directory (the same hardened parser the file path uses), and
// keeps one connection open. Each FetchShard is one request/response
// round trip, serialized on an internal mutex (concurrent faults of
// distinct shards queue here; the per-shard fault mutex above already
// guarantees a shard is fetched at most once). A dropped connection
// (servers reap idle peers; networks flap) is redialed once per
// request — safe because every request is a pure read — so a
// long-lived, sparsely queried rep survives server idle timeouts;
// only a redial that itself fails surfaces as kUnavailable.
//
// Fail-closed all the way down: frame checksums catch transport
// corruption, the directory checksum was verified before parsing, the
// echoed shard index must match the request, the payload length must
// match the directory, and the caller (ShardedRep) verifies the
// directory's payload checksum before the bytes reach any parser. Any
// IO error marks the connection broken so every later fetch fails
// fast with the same kUnavailable instead of hammering a dead peer.

#ifndef GREPAIR_NET_REMOTE_SOURCE_H_
#define GREPAIR_NET_REMOTE_SOURCE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/net/frame.h"
#include "src/shard/sharded_codec.h"
#include "src/util/socket.h"
#include "src/util/status.h"

namespace grepair {
namespace net {

class RemoteShardSource : public shard::ShardSource {
 public:
  struct Options {
    int io_timeout_ms = 30000;  ///< connect + per-request IO bound
  };

  /// \brief Dials "host:port" and fetches the served container's
  /// directory. kUnavailable when the peer is unreachable or stalls;
  /// kCorruption when it serves malformed frames or a bad directory.
  static Result<std::shared_ptr<RemoteShardSource>> Connect(
      const std::string& host_port, const Options& options);
  static Result<std::shared_ptr<RemoteShardSource>> Connect(
      const std::string& host_port) {
    return Connect(host_port, Options());
  }

  const char* kind() const override { return "remote"; }

  /// \brief Moves out the directory fetched at connect time (what
  /// ShardedRep::OpenFromSource consumes). The source retains only
  /// the per-shard payload lengths it needs for FetchShard — the
  /// node maps live once, in the rep, not twice. Call at most once.
  shard::ParsedDirectory TakeDirectory();

  Result<ByteSpan> FetchShard(size_t shard,
                              std::vector<uint8_t>* owned) override;

 private:
  RemoteShardSource(std::string host, uint16_t port, std::string peer,
                    int io_timeout_ms)
      : host_(std::move(host)),
        port_(port),
        peer_(std::move(peer)),
        io_timeout_ms_(io_timeout_ms) {}

  /// One request/response exchange; non-error response must have
  /// `expect` type. Dials (or redials a broken connection) first and
  /// retries transport failures once on a fresh connection.
  Result<Frame> Call(uint8_t type, ByteSpan body, uint8_t expect);

  std::mutex mutex_;  // one in-flight request per connection
  Socket socket_;
  bool broken_ = true;  // no connection yet; Call dials on demand
  std::string host_;
  uint16_t port_ = 0;
  std::string peer_;  // "host:port" for error context
  int io_timeout_ms_ = 30000;
  shard::ParsedDirectory directory_;     // until TakeDirectory
  std::vector<uint64_t> shard_lengths_;  // rows[i].length, kept always
};

/// \brief Opens the remote container as a lazy CompressedRep: shard
/// metadata from the server's directory, payloads faulted over the
/// network on first touch (prefetch pool, query caches and QueryStats
/// all work unchanged). The convenience entry point is
/// api::OpenRemote (src/api/remote.h).
Result<std::unique_ptr<api::CompressedRep>> OpenRemoteContainer(
    const std::string& host_port,
    const RemoteShardSource::Options& options);
inline Result<std::unique_ptr<api::CompressedRep>> OpenRemoteContainer(
    const std::string& host_port) {
  return OpenRemoteContainer(host_port, RemoteShardSource::Options());
}

}  // namespace net
}  // namespace grepair

#endif  // GREPAIR_NET_REMOTE_SOURCE_H_
