#include "src/net/frame.h"

#include <cstring>

#include "src/util/hashing.h"

namespace grepair {
namespace net {

namespace {

void PutHeader(uint8_t type, uint32_t body_len, std::vector<uint8_t>* out) {
  PutU32LE(kFrameMagic, out);
  out->push_back(kProtocolVersion);
  out->push_back(type);
  PutU32LE(body_len, out);
}

bool KnownType(uint8_t type) {
  return type >= kGetDir && type <= kError;
}

}  // namespace

std::vector<uint8_t> EncodeFrame(uint8_t type, ByteSpan body) {
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderBytes + body.size + kFrameChecksumBytes);
  PutHeader(type, static_cast<uint32_t>(body.size), &out);
  out.insert(out.end(), body.begin(), body.end());
  PutU64LE(HashBytes(out.data(), out.size()), &out);
  return out;
}

Status ValidateFrameHeader(const uint8_t* header, uint8_t* type,
                           uint32_t* body_len) {
  ByteSource src(ByteSpan(header, kFrameHeaderBytes), "frame header");
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t raw_type = 0;
  uint32_t len = 0;
  GREPAIR_RETURN_IF_ERROR(src.ReadU32LE(&magic));
  GREPAIR_RETURN_IF_ERROR(src.ReadU8(&version));
  GREPAIR_RETURN_IF_ERROR(src.ReadU8(&raw_type));
  GREPAIR_RETURN_IF_ERROR(src.ReadU32LE(&len));
  if (magic != kFrameMagic) {
    return Status::Corruption("bad frame magic " + HexU64(magic) +
                              " (expected " + HexU64(kFrameMagic) + ")");
  }
  if (version != kProtocolVersion) {
    return Status::Corruption("unsupported frame protocol version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(kProtocolVersion) + ")");
  }
  if (!KnownType(raw_type)) {
    return Status::Corruption("unknown frame type " +
                              std::to_string(raw_type));
  }
  if (len > kMaxFrameBody) {
    return Status::Corruption(
        "frame body length " + std::to_string(len) + " exceeds the " +
        std::to_string(kMaxFrameBody) + "-byte bound");
  }
  *type = raw_type;
  *body_len = len;
  return Status::OK();
}

Result<Frame> DecodeFrame(ByteSpan bytes, size_t* consumed) {
  if (bytes.size < kFrameHeaderBytes) {
    return Status::Corruption("truncated frame header: have " +
                              std::to_string(bytes.size) + " of " +
                              std::to_string(kFrameHeaderBytes) +
                              " byte(s)");
  }
  uint8_t type = 0;
  uint32_t body_len = 0;
  GREPAIR_RETURN_IF_ERROR(ValidateFrameHeader(bytes.data, &type, &body_len));
  size_t total = kFrameHeaderBytes + body_len + kFrameChecksumBytes;
  if (bytes.size < total) {
    return Status::Corruption("truncated frame: have " +
                              std::to_string(bytes.size) + " of " +
                              std::to_string(total) + " byte(s)");
  }
  size_t checked = kFrameHeaderBytes + body_len;
  ByteSource trailer(bytes.subspan(checked, kFrameChecksumBytes),
                     "frame checksum");
  uint64_t expected = 0;
  GREPAIR_RETURN_IF_ERROR(trailer.ReadU64LE(&expected));
  uint64_t actual = HashBytes(bytes.data, checked);
  if (actual != expected) {
    return Status::Corruption("frame checksum mismatch (expected " +
                              HexU64(expected) + ", got " + HexU64(actual) +
                              " over " + std::to_string(checked) +
                              " byte(s))");
  }
  Frame frame;
  frame.type = type;
  frame.body.assign(bytes.data + kFrameHeaderBytes,
                    bytes.data + kFrameHeaderBytes + body_len);
  if (consumed != nullptr) *consumed = total;
  return frame;
}

Status WriteFrame(Socket* socket, uint8_t type, ByteSpan body) {
  auto bytes = EncodeFrame(type, body);
  return socket->SendAll(SpanOf(bytes));
}

Result<Frame> ReadFrame(Socket* socket, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  uint8_t header[kFrameHeaderBytes];
  GREPAIR_RETURN_IF_ERROR(
      socket->RecvAll(header, kFrameHeaderBytes, clean_eof));
  uint8_t type = 0;
  uint32_t body_len = 0;
  GREPAIR_RETURN_IF_ERROR(ValidateFrameHeader(header, &type, &body_len));
  // One contiguous buffer so the checksum covers header + body exactly
  // as DecodeFrame sees it.
  std::vector<uint8_t> checked(kFrameHeaderBytes + body_len);
  std::memcpy(checked.data(), header, kFrameHeaderBytes);
  if (body_len > 0) {
    GREPAIR_RETURN_IF_ERROR(
        socket->RecvAll(checked.data() + kFrameHeaderBytes, body_len));
  }
  uint8_t trailer[kFrameChecksumBytes];
  GREPAIR_RETURN_IF_ERROR(socket->RecvAll(trailer, kFrameChecksumBytes));
  ByteSource trailer_src(ByteSpan(trailer, kFrameChecksumBytes),
                         "frame checksum");
  uint64_t expected = 0;
  GREPAIR_RETURN_IF_ERROR(trailer_src.ReadU64LE(&expected));
  uint64_t actual = HashBytes(checked.data(), checked.size());
  if (actual != expected) {
    return Status::Corruption("frame checksum mismatch (expected " +
                              HexU64(expected) + ", got " + HexU64(actual) +
                              " over " + std::to_string(checked.size()) +
                              " byte(s))");
  }
  Frame frame;
  frame.type = type;
  frame.body.assign(checked.begin() + kFrameHeaderBytes, checked.end());
  return frame;
}

std::vector<uint8_t> EncodeErrorBody(const Status& status) {
  const std::string& message = status.message();
  std::vector<uint8_t> body;
  body.reserve(1 + message.size());
  body.push_back(static_cast<uint8_t>(status.code()));
  body.insert(body.end(), message.begin(), message.end());
  return body;
}

Status DecodeErrorBody(ByteSpan body) {
  if (body.size < 1) {
    return Status::Corruption("empty error frame from shard server");
  }
  std::string message = "shard server: " +
                        std::string(body.begin() + 1, body.end());
  switch (static_cast<StatusCode>(body[0])) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(std::move(message));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(message));
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
    case StatusCode::kOk:
    default:
      // An "error" frame claiming OK (or an unknown code) is itself a
      // protocol violation.
      return Status::Corruption("malformed error frame from shard server" +
                                std::string(" (code ") +
                                std::to_string(body[0]) + "): " + message);
  }
}

}  // namespace net
}  // namespace grepair
