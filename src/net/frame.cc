#include "src/net/frame.h"

#include <cstring>

#include "src/util/hashing.h"

namespace grepair {
namespace net {

namespace {

void PutHeader(uint8_t version, uint8_t type, uint32_t body_len,
               std::vector<uint8_t>* out) {
  PutU32LE(kFrameMagic, out);
  out->push_back(version);
  out->push_back(type);
  PutU32LE(body_len, out);
}

// Shared checksum-and-finish step for a header+body buffer.
Status CheckTrailer(const uint8_t* checked, size_t checked_len,
                    const uint8_t* trailer) {
  ByteSource trailer_src(ByteSpan(trailer, kFrameChecksumBytes),
                         "frame checksum");
  uint64_t expected = 0;
  GREPAIR_RETURN_IF_ERROR(trailer_src.ReadU64LE(&expected));
  uint64_t actual = HashBytes(checked, checked_len);
  if (actual != expected) {
    return Status::Corruption("frame checksum mismatch (expected " +
                              HexU64(expected) + ", got " + HexU64(actual) +
                              " over " + std::to_string(checked_len) +
                              " byte(s))");
  }
  return Status::OK();
}

}  // namespace

uint8_t FrameVersionForType(uint8_t type) {
  if (type >= kGetDir && type <= kError) return kProtoV1;
  if (type >= kHello && type <= kError2) return kProtoV2;
  return 0;
}

std::vector<uint8_t> EncodeFrame(uint8_t type, ByteSpan body) {
  return EncodeFrameWithVersion(FrameVersionForType(type), type, body);
}

std::vector<uint8_t> EncodeFrameWithVersion(uint8_t version, uint8_t type,
                                            ByteSpan body) {
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderBytes + body.size + kFrameChecksumBytes);
  PutHeader(version, type, static_cast<uint32_t>(body.size), &out);
  out.insert(out.end(), body.begin(), body.end());
  PutU64LE(HashBytes(out.data(), out.size()), &out);
  return out;
}

Status ValidateFrameHeader(const uint8_t* header, uint8_t* version,
                           uint8_t* type, uint32_t* body_len) {
  ByteSource src(ByteSpan(header, kFrameHeaderBytes), "frame header");
  uint32_t magic = 0;
  uint8_t raw_version = 0;
  uint8_t raw_type = 0;
  uint32_t len = 0;
  GREPAIR_RETURN_IF_ERROR(src.ReadU32LE(&magic));
  GREPAIR_RETURN_IF_ERROR(src.ReadU8(&raw_version));
  GREPAIR_RETURN_IF_ERROR(src.ReadU8(&raw_type));
  GREPAIR_RETURN_IF_ERROR(src.ReadU32LE(&len));
  if (magic != kFrameMagic) {
    return Status::Corruption("bad frame magic " + HexU64(magic) +
                              " (expected " + HexU64(kFrameMagic) + ")");
  }
  if (raw_version != kProtoV1 && raw_version != kProtoV2) {
    return Status::Corruption("unsupported frame protocol version " +
                              std::to_string(raw_version) + " (expected " +
                              std::to_string(kProtoV1) + " or " +
                              std::to_string(kProtoV2) + ")");
  }
  uint8_t type_version = FrameVersionForType(raw_type);
  if (type_version == 0) {
    return Status::Corruption("unknown frame type " +
                              std::to_string(raw_type));
  }
  if (type_version != raw_version) {
    return Status::Corruption(
        "frame type " + std::to_string(raw_type) + " is a GRNF v" +
        std::to_string(type_version) + " verb but the header claims v" +
        std::to_string(raw_version));
  }
  if (len > kMaxFrameBody) {
    return Status::Corruption(
        "frame body length " + std::to_string(len) + " exceeds the " +
        std::to_string(kMaxFrameBody) + "-byte bound");
  }
  *version = raw_version;
  *type = raw_type;
  *body_len = len;
  return Status::OK();
}

Result<Frame> DecodeFrame(ByteSpan bytes, size_t* consumed) {
  if (bytes.size < kFrameHeaderBytes) {
    return Status::Corruption("truncated frame header: have " +
                              std::to_string(bytes.size) + " of " +
                              std::to_string(kFrameHeaderBytes) +
                              " byte(s)");
  }
  uint8_t version = 0;
  uint8_t type = 0;
  uint32_t body_len = 0;
  GREPAIR_RETURN_IF_ERROR(
      ValidateFrameHeader(bytes.data, &version, &type, &body_len));
  size_t total = kFrameHeaderBytes + body_len + kFrameChecksumBytes;
  if (bytes.size < total) {
    return Status::Corruption("truncated frame: have " +
                              std::to_string(bytes.size) + " of " +
                              std::to_string(total) + " byte(s)");
  }
  size_t checked = kFrameHeaderBytes + body_len;
  GREPAIR_RETURN_IF_ERROR(
      CheckTrailer(bytes.data, checked, bytes.data + checked));
  Frame frame;
  frame.version = version;
  frame.type = type;
  frame.body.assign(bytes.data + kFrameHeaderBytes,
                    bytes.data + kFrameHeaderBytes + body_len);
  if (consumed != nullptr) *consumed = total;
  return frame;
}

Status WriteFrame(Socket* socket, uint8_t type, ByteSpan body) {
  auto bytes = EncodeFrame(type, body);
  return socket->SendAll(SpanOf(bytes));
}

Result<Frame> ReadFrame(Socket* socket, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  uint8_t header[kFrameHeaderBytes];
  GREPAIR_RETURN_IF_ERROR(
      socket->RecvAll(header, kFrameHeaderBytes, clean_eof));
  uint8_t version = 0;
  uint8_t type = 0;
  uint32_t body_len = 0;
  GREPAIR_RETURN_IF_ERROR(
      ValidateFrameHeader(header, &version, &type, &body_len));
  // One contiguous buffer so the checksum covers header + body exactly
  // as DecodeFrame sees it.
  std::vector<uint8_t> checked(kFrameHeaderBytes + body_len);
  std::memcpy(checked.data(), header, kFrameHeaderBytes);
  if (body_len > 0) {
    GREPAIR_RETURN_IF_ERROR(
        socket->RecvAll(checked.data() + kFrameHeaderBytes, body_len));
  }
  uint8_t trailer[kFrameChecksumBytes];
  GREPAIR_RETURN_IF_ERROR(socket->RecvAll(trailer, kFrameChecksumBytes));
  GREPAIR_RETURN_IF_ERROR(
      CheckTrailer(checked.data(), checked.size(), trailer));
  Frame frame;
  frame.version = version;
  frame.type = type;
  frame.body.assign(checked.begin() + kFrameHeaderBytes, checked.end());
  return frame;
}

std::vector<uint8_t> EncodeErrorBody(const Status& status) {
  const std::string& message = status.message();
  std::vector<uint8_t> body;
  body.reserve(1 + message.size());
  body.push_back(static_cast<uint8_t>(status.code()));
  body.insert(body.end(), message.begin(), message.end());
  return body;
}

namespace {

// Shared v1/v2 tail decode: u8 StatusCode + message, with the
// "shard server: " provenance prefix.
Status DecodeErrorTail(ByteSource* src) {
  uint8_t code = 0;
  if (!src->ReadU8(&code).ok()) {
    return Status::Corruption("empty error frame from shard server");
  }
  ByteSpan rest = src->PeekRemaining();
  std::string message =
      "shard server: " + std::string(rest.begin(), rest.end());
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(std::move(message));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(message));
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
    case StatusCode::kOk:
    default:
      // An "error" frame claiming OK (or an unknown code) is itself a
      // protocol violation.
      return Status::Corruption("malformed error frame from shard server" +
                                std::string(" (code ") +
                                std::to_string(code) + "): " + message);
  }
}

}  // namespace

Status DecodeErrorBody(ByteSpan body) {
  ByteSource src(body, "error frame body");
  return DecodeErrorTail(&src);
}

std::vector<uint8_t> EncodeErrorBody2(uint64_t req_id, const Status& status) {
  std::vector<uint8_t> body;
  const std::string& message = status.message();
  body.reserve(8 + 1 + message.size());
  PutU64LE(req_id, &body);
  body.push_back(static_cast<uint8_t>(status.code()));
  body.insert(body.end(), message.begin(), message.end());
  return body;
}

Status DecodeErrorBody2(ByteSpan body, uint64_t* req_id) {
  if (req_id != nullptr) *req_id = 0;
  ByteSource src(body, "error frame body");
  uint64_t id = 0;
  if (!src.ReadU64LE(&id).ok()) {
    return Status::Corruption("truncated v2 error frame from shard server");
  }
  if (req_id != nullptr) *req_id = id;
  return DecodeErrorTail(&src);
}

Result<uint64_t> FrameRequestId(const Frame& frame) {
  switch (frame.type) {
    case kOpenCorpus:
    case kCorpusDir:
    case kGetShard2:
    case kShard2:
    case kGetStats:
    case kStats:
    case kError2:
      break;
    default:
      return Status::Corruption("frame type " + std::to_string(frame.type) +
                                " carries no request id");
  }
  ByteSource src(SpanOf(frame.body), "tagged frame body");
  uint64_t id = 0;
  GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&id));
  return id;
}

}  // namespace net
}  // namespace grepair
