#include "src/net/shard_server.h"

#include <chrono>
#include <cstring>
#include <utility>

#include "src/api/container.h"

namespace grepair {
namespace net {

Result<std::unique_ptr<ShardServer>> ShardServer::Start(
    const std::string& path, const Options& options) {
  auto file = MmapFile::Open(path);
  if (!file.ok()) return file.status();
  ByteSpan bytes = file.value()->span();
  ByteSpan payload = bytes;
  if (api::IsCodecContainer(bytes)) {
    std::string backend;
    GREPAIR_RETURN_IF_ERROR(
        api::UnwrapCodecPayloadView(bytes, &backend, &payload));
  }
  return Serve(std::move(file).ValueOrDie(), payload, options);
}

Result<std::unique_ptr<ShardServer>> ShardServer::Serve(
    std::shared_ptr<MmapFile> file, ByteSpan payload,
    const Options& options) {
  auto server = std::unique_ptr<ShardServer>(new ShardServer());
  GREPAIR_RETURN_IF_ERROR(
      server->Init(std::move(file), payload, options));
  return server;
}

Status ShardServer::Init(std::shared_ptr<MmapFile> file, ByteSpan payload,
                         const Options& options) {
  // v1 containers have no directory to serve; raw grammars and
  // single-shard payloads have no shards. Fail with advice, not a
  // generic corruption.
  if (payload.size >= 8 &&
      std::memcmp(payload.data, shard::kShardContainerMagic, 8) == 0) {
    return Status::InvalidArgument(
        "cannot serve a GRSHARD1 container (no footer directory); "
        "recompress with --container v2");
  }
  auto region = shard::LocateV2DirectoryRegion(payload, &dir_off_);
  if (!region.ok()) {
    if (region.status().code() == StatusCode::kCorruption &&
        payload.size >= 8 &&
        std::memcmp(payload.data, shard::kShardContainerMagicV2, 8) != 0) {
      return Status::InvalidArgument(
          "not a sharded v2 container; `serve` serves GRSHARD2 files "
          "(compress with a sharded backend)");
    }
    return region.status();
  }
  // Full parse up front: a corrupt container is refused at Start, not
  // discovered by the first client.
  auto dir = shard::ParseV2Directory(region.value(), dir_off_);
  if (!dir.ok()) return dir.status();
  // Everything this server will ever put in a frame must fit the
  // frame bound — refuse oversized containers here with a clear error
  // instead of letting clients misdiagnose a too-long kDir/kShard
  // frame as wire corruption.
  if (8 + region.value().size > kMaxFrameBody) {
    return Status::InvalidArgument(
        "container directory (" + std::to_string(region.value().size) +
        " bytes) exceeds the " + std::to_string(kMaxFrameBody) +
        "-byte frame bound; re-shard with more shards");
  }
  for (size_t i = 0; i < dir.value().rows.size(); ++i) {
    if (4 + dir.value().rows[i].length > kMaxFrameBody) {
      return Status::InvalidArgument(
          "shard " + std::to_string(i) + " payload (" +
          std::to_string(dir.value().rows[i].length) +
          " bytes) exceeds the " + std::to_string(kMaxFrameBody) +
          "-byte frame bound; re-shard with more shards");
    }
  }

  file_ = std::move(file);
  payload_ = payload;
  dir_region_ = region.value();
  inner_name_ = std::move(dir.value().inner_name);
  rows_ = std::move(dir.value().rows);
  host_ = options.host;
  io_timeout_ms_ = options.io_timeout_ms;

  auto listener = Socket::ListenTcp(options.host, options.port, &port_);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).ValueOrDie();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

ShardServer::~ShardServer() { Stop(); }

void ShardServer::Stop() {
  // One teardown at a time; later callers wait for it and return to a
  // fully stopped server (the destructor relies on that).
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (stopping_.exchange(true)) return;
  // Unblock the accept loop and every parked recv. Shutdown only —
  // Close() writes the fd and would race the accept thread's read of
  // it; the descriptors are closed after the joins below. Some BSDs
  // refuse shutdown() on a listening socket (ENOTCONN) and leave
  // accept parked, so a best-effort self-connect wakes it portably.
  listener_.ShutdownBoth();
  {
    auto wake = Socket::ConnectTcp(host_, port_, /*timeout_ms=*/1000);
    (void)wake;  // accepted (and dropped) or refused — either unparks
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (auto& socket : conn_sockets_) {
      if (socket != nullptr) socket->ShutdownBoth();
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // Joining with conn_mutex_ held would deadlock against a freshly
  // spawned ServeConnection blocked on that mutex at entry — move the
  // handles out first (stopping_ is set, so no new threads appear).
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

void ShardServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto conn = listener_.Accept();
    if (stopping_.load(std::memory_order_relaxed)) break;
    if (!conn.ok()) {
      // Transient accept failure (e.g. EMFILE): back off briefly so a
      // persistent error cannot busy-spin the loop, then keep serving.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    Status t = conn.value().SetTimeouts(io_timeout_ms_);
    if (!t.ok()) continue;
    stat_connections_.fetch_add(1, std::memory_order_relaxed);
    // Reap connections that already finished (their fds are closed at
    // exit; this bounds the thread handles a long-lived server holds).
    std::vector<std::thread> finished;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      if (stopping_.load(std::memory_order_relaxed)) break;
      for (size_t slot : finished_slots_) {
        finished.push_back(std::move(conn_threads_[slot]));
      }
      finished_slots_.clear();
      size_t slot = conn_sockets_.size();
      conn_sockets_.push_back(
          std::make_unique<Socket>(std::move(conn).ValueOrDie()));
      conn_threads_.emplace_back([this, slot] { ServeConnection(slot); });
    }
    for (auto& t : finished) {
      if (t.joinable()) t.join();
    }
  }
}

void ShardServer::ServeConnection(size_t slot) {
  Socket* socket;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    socket = conn_sockets_[slot].get();
  }
  while (!stopping_.load(std::memory_order_relaxed)) {
    bool clean_eof = false;
    auto frame = ReadFrame(socket, &clean_eof);
    if (!frame.ok()) {
      if (!clean_eof) {
        stat_errors_.fetch_add(1, std::memory_order_relaxed);
        // Malformed bytes: the stream cannot be resynced — tell the
        // peer why (best effort) and drop the connection.
        if (frame.status().code() == StatusCode::kCorruption) {
          (void)SendError(socket, frame.status());
        }
      }
      break;
    }
    if (!HandleFrame(socket, frame.value())) break;
  }
  socket->ShutdownBoth();
  // Release the descriptor now (a long-running server must not hold
  // one fd per past connection until Stop) and offer this thread's
  // handle to the accept loop for reaping.
  std::lock_guard<std::mutex> lock(conn_mutex_);
  socket->Close();
  finished_slots_.push_back(slot);
}

bool ShardServer::HandleFrame(Socket* socket, const Frame& frame) {
  switch (frame.type) {
    case kGetDir: {
      if (!frame.body.empty()) {
        return SendError(socket, Status::InvalidArgument(
                                     "GetDir carries no body")).ok();
      }
      std::vector<uint8_t> body;
      body.reserve(8 + dir_region_.size);
      PutU64LE(dir_off_, &body);
      body.insert(body.end(), dir_region_.begin(), dir_region_.end());
      stat_requests_.fetch_add(1, std::memory_order_relaxed);
      return SendFrame(socket, kDir, SpanOf(body)).ok();
    }
    case kGetShard: {
      if (frame.body.size() != 4) {
        return SendError(socket,
                         Status::InvalidArgument(
                             "GetShard body must be a u32 shard index"))
            .ok();
      }
      ByteSource body_src(SpanOf(frame.body), "GetShard body");
      uint32_t index = 0;
      if (!body_src.ReadU32LE(&index).ok()) {
        return SendError(socket, Status::InvalidArgument(
                                     "GetShard body unreadable")).ok();
      }
      if (index >= rows_.size()) {
        return SendError(
                   socket,
                   Status::InvalidArgument(
                       "shard index " + std::to_string(index) +
                       " out of range [0, " +
                       std::to_string(rows_.size()) + ")"))
            .ok();
      }
      const shard::ShardDirEntry& row = rows_[index];
      if (row.length == 0) {
        return SendError(socket,
                         Status::InvalidArgument(
                             "shard " + std::to_string(index) +
                             " is edgeless (no payload)"))
            .ok();
      }
      if (4 + row.length > kMaxFrameBody) {
        return SendError(socket,
                         Status::OutOfRange(
                             "shard " + std::to_string(index) +
                             " payload (" + std::to_string(row.length) +
                             " bytes) exceeds the frame bound"))
            .ok();
      }
      std::vector<uint8_t> body;
      body.reserve(4 + row.length);
      PutU32LE(index, &body);
      ByteSpan blob = payload_.subspan(row.offset, row.length);
      body.insert(body.end(), blob.begin(), blob.end());
      stat_requests_.fetch_add(1, std::memory_order_relaxed);
      return SendFrame(socket, kShard, SpanOf(body)).ok();
    }
    default:
      // Well-framed but senseless (a client frame type we don't
      // originate, say): answer with an error and keep the
      // connection — the stream is still in sync.
      return SendError(socket,
                       Status::InvalidArgument(
                           "unexpected frame type " +
                           std::to_string(frame.type)))
          .ok();
  }
}

Status ShardServer::SendFrame(Socket* socket, uint8_t type, ByteSpan body) {
  Status status = WriteFrame(socket, type, body);
  if (status.ok()) {
    stat_bytes_sent_.fetch_add(
        kFrameHeaderBytes + body.size + kFrameChecksumBytes,
        std::memory_order_relaxed);
  }
  return status;
}

Status ShardServer::SendError(Socket* socket, const Status& status) {
  stat_errors_.fetch_add(1, std::memory_order_relaxed);
  auto body = EncodeErrorBody(status);
  return SendFrame(socket, kError, SpanOf(body));
}

ShardServer::Stats ShardServer::stats() const {
  Stats s;
  s.connections = stat_connections_.load(std::memory_order_relaxed);
  s.requests = stat_requests_.load(std::memory_order_relaxed);
  s.bytes_sent = stat_bytes_sent_.load(std::memory_order_relaxed);
  s.errors = stat_errors_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace net
}  // namespace grepair
