#include "src/query/speedup.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "src/util/union_find.h"

namespace grepair {

std::vector<uint64_t> RuleMultiplicities(const SlhrGrammar& grammar) {
  std::vector<uint64_t> mult(grammar.num_rules(), 0);
  for (const auto& e : grammar.start().edges()) {
    if (grammar.IsNonterminal(e.label)) {
      ++mult[grammar.RuleIndex(e.label)];
    }
  }
  // Rules only reference lower indices, so a descending sweep settles
  // every multiplicity before it is propagated further down.
  for (uint32_t j = grammar.num_rules(); j-- > 0;) {
    if (mult[j] == 0) continue;
    for (const auto& e : grammar.rhs_by_index(j).edges()) {
      if (grammar.IsNonterminal(e.label)) {
        mult[grammar.RuleIndex(e.label)] += mult[j];
      }
    }
  }
  return mult;
}

std::vector<uint64_t> LabelHistogram(const SlhrGrammar& grammar) {
  auto mult = RuleMultiplicities(grammar);
  std::vector<uint64_t> hist(grammar.num_terminals(), 0);
  auto scan = [&](const Hypergraph& g, uint64_t weight) {
    if (weight == 0) return;
    for (const auto& e : g.edges()) {
      if (grammar.IsTerminal(e.label)) hist[e.label] += weight;
    }
  };
  scan(grammar.start(), 1);
  for (uint32_t j = 0; j < grammar.num_rules(); ++j) {
    scan(grammar.rhs_by_index(j), mult[j]);
  }
  return hist;
}

namespace {

// Connectivity summary of one rule: which external positions are in
// the same component of val(subgraph), plus how many components have
// no external node at all.
struct ComponentSummary {
  std::vector<uint32_t> ext_group;  // dense group id per ext position
  uint64_t closed = 0;              // fully internal components
};

ComponentSummary SummarizeComponents(
    const SlhrGrammar& grammar, const Hypergraph& g,
    const std::vector<ComponentSummary>& rule_summaries) {
  UnionFind uf(g.num_nodes());
  uint64_t closed = 0;
  for (const auto& e : g.edges()) {
    if (grammar.IsTerminal(e.label)) {
      for (size_t i = 1; i < e.att.size(); ++i) {
        uf.Union(e.att[0], e.att[i]);
      }
    } else {
      const ComponentSummary& child =
          rule_summaries[grammar.RuleIndex(e.label)];
      closed += child.closed;
      // Union attachment nodes whose ext positions share a child group.
      std::vector<NodeId> group_rep(child.ext_group.size(), kInvalidNode);
      for (size_t p = 0; p < child.ext_group.size(); ++p) {
        uint32_t gid = child.ext_group[p];
        if (group_rep[gid] == kInvalidNode) {
          group_rep[gid] = e.att[p];
        } else {
          uf.Union(group_rep[gid], e.att[p]);
        }
      }
    }
  }
  ComponentSummary summary;
  summary.closed = closed;
  // Components of this level: count those without external nodes; map
  // the rest to dense group ids over ext positions.
  std::vector<char> has_ext(g.num_nodes(), 0);
  for (NodeId v : g.ext()) has_ext[uf.Find(v)] = 1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (uf.Find(v) == v && !has_ext[v]) ++summary.closed;
  }
  std::vector<uint32_t> root_to_group(g.num_nodes(), ~0u);
  uint32_t next_group = 0;
  summary.ext_group.reserve(g.ext().size());
  for (NodeId v : g.ext()) {
    uint32_t root = uf.Find(v);
    if (root_to_group[root] == ~0u) root_to_group[root] = next_group++;
    summary.ext_group.push_back(root_to_group[root]);
  }
  return summary;
}

}  // namespace

uint64_t CountConnectedComponents(const SlhrGrammar& grammar) {
  std::vector<ComponentSummary> summaries(grammar.num_rules());
  for (uint32_t j = 0; j < grammar.num_rules(); ++j) {
    summaries[j] =
        SummarizeComponents(grammar, grammar.rhs_by_index(j), summaries);
  }
  ComponentSummary top =
      SummarizeComponents(grammar, grammar.start(), summaries);
  // The start graph has no external nodes: everything is "closed".
  return top.closed;
}

namespace {

// Degree summary of one rule: degree each external position
// contributes to its attachment node, plus internal degree extrema.
struct DegreeSummary {
  std::vector<uint64_t> ext_degree;
  uint64_t min_internal = std::numeric_limits<uint64_t>::max();
  uint64_t max_internal = 0;
  bool has_internal = false;
};

DegreeSummary SummarizeDegrees(const SlhrGrammar& grammar,
                               const Hypergraph& g,
                               const std::vector<DegreeSummary>& summaries) {
  std::vector<uint64_t> degree(g.num_nodes(), 0);
  DegreeSummary out;
  for (const auto& e : g.edges()) {
    if (grammar.IsTerminal(e.label)) {
      for (NodeId v : e.att) ++degree[v];
    } else {
      const DegreeSummary& child = summaries[grammar.RuleIndex(e.label)];
      for (size_t p = 0; p < child.ext_degree.size(); ++p) {
        degree[e.att[p]] += child.ext_degree[p];
      }
      if (child.has_internal) {
        out.min_internal = std::min(out.min_internal, child.min_internal);
        out.max_internal = std::max(out.max_internal, child.max_internal);
        out.has_internal = true;
      }
    }
  }
  std::vector<char> is_ext(g.num_nodes(), 0);
  for (NodeId v : g.ext()) is_ext[v] = 1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (is_ext[v]) continue;
    out.min_internal = std::min(out.min_internal, degree[v]);
    out.max_internal = std::max(out.max_internal, degree[v]);
    out.has_internal = true;
  }
  out.ext_degree.reserve(g.ext().size());
  for (NodeId v : g.ext()) out.ext_degree.push_back(degree[v]);
  return out;
}

}  // namespace

Result<DegreeExtrema> ComputeDegreeExtrema(const SlhrGrammar& grammar) {
  std::vector<DegreeSummary> summaries(grammar.num_rules());
  for (uint32_t j = 0; j < grammar.num_rules(); ++j) {
    summaries[j] =
        SummarizeDegrees(grammar, grammar.rhs_by_index(j), summaries);
  }
  // The start graph has no external nodes, so every val(G) node
  // surfaces as "internal" in the top summary; unapplied rules never
  // flow into it.
  DegreeSummary top =
      SummarizeDegrees(grammar, grammar.start(), summaries);
  if (!top.has_internal) {
    return Status::InvalidArgument(
        "grammar derives an empty graph (no nodes): degree extrema are "
        "undefined");
  }
  DegreeExtrema extrema;
  extrema.min_degree = top.min_internal;
  extrema.max_degree = top.max_internal;
  return extrema;
}

uint64_t TotalDegree(const SlhrGrammar& grammar) {
  auto mult = RuleMultiplicities(grammar);
  uint64_t total = 0;
  auto scan = [&](const Hypergraph& g, uint64_t weight) {
    if (weight == 0) return;
    for (const auto& e : g.edges()) {
      if (grammar.IsTerminal(e.label)) total += weight * e.att.size();
    }
  };
  scan(grammar.start(), 1);
  for (uint32_t j = 0; j < grammar.num_rules(); ++j) {
    scan(grammar.rhs_by_index(j), mult[j]);
  }
  return total;
}

}  // namespace grepair
