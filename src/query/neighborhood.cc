#include "src/query/neighborhood.h"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace grepair {

NeighborhoodIndex::NeighborhoodIndex(const SlhrGrammar& grammar)
    : node_map_(grammar) {
  incidence_.reserve(grammar.num_rules() + 1);
  incidence_.push_back(grammar.start().BuildIncidence());
  for (uint32_t j = 0; j < grammar.num_rules(); ++j) {
    incidence_.push_back(grammar.rhs_by_index(j).BuildIncidence());
  }
}

namespace {

// Memo key for (rule, ext position, direction). Ranks are stored as
// uint8 so pos fits in 8 bits with room to spare.
uint64_t MemoKey(uint32_t rule, uint32_t pos, bool out) {
  return (static_cast<uint64_t>(rule) << 9) |
         (static_cast<uint64_t>(pos) << 1) | (out ? 1 : 0);
}

}  // namespace

const std::vector<NeighborhoodIndex::RelNeighbor>&
NeighborhoodIndex::DescendMemo(Label label, uint32_t pos, bool out) const {
  // Warm fast path: concurrent lookups share the lock.
  uint64_t key = MemoKey(node_map_.grammar().RuleIndex(label), pos, out);
  {
    ReaderMutexLock read_lock(memo_mutex_);
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  WriterMutexLock write_lock(memo_mutex_);
  return DescendMemoLocked(label, pos, out);
}

// Builds (or returns) the instance-relative neighbor table of external
// position `pos` of nonterminal `label`. Rules only reference rules of
// lower index, so the recursion terminates; the lock is held across
// the whole recursive build (DescendMemoLocked assumes it).
const std::vector<NeighborhoodIndex::RelNeighbor>&
NeighborhoodIndex::DescendMemoLocked(Label label, uint32_t pos,
                                     bool out) const {
  const SlhrGrammar& g = node_map_.grammar();
  uint32_t rule = g.RuleIndex(label);
  uint64_t key = MemoKey(rule, pos, out);
  auto it = memo_.find(key);
  if (it != memo_.end()) {
    memo_hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  const Hypergraph& rhs = g.rhs(label);
  size_t ext_count = rhs.ext().size();
  // Normal form pins external nodes to ids [0, ext); anything above is
  // internal to this rhs and addressed by an empty relative path.
  auto classify = [&](NodeId u) {
    RelNeighbor rn;
    if (u < ext_count) {
      rn.ext_pos = u;
    } else {
      rn.node = u;
    }
    return rn;
  };

  std::vector<RelNeighbor> entries;
  for (EdgeId ei : incidence_[1 + rule][pos]) {
    const HEdge& e = rhs.edge(ei);
    if (g.IsTerminal(e.label)) {
      if (e.att.size() != 2) continue;  // hyperedges carry no direction
      if (out && e.att[0] == static_cast<NodeId>(pos)) {
        entries.push_back(classify(e.att[1]));
      } else if (!out && e.att[1] == static_cast<NodeId>(pos)) {
        entries.push_back(classify(e.att[0]));
      }
      continue;
    }
    for (uint32_t q = 0; q < e.att.size(); ++q) {
      if (e.att[q] != static_cast<NodeId>(pos)) continue;
      // References into memo_ stay valid across later insertions
      // (unordered_map values are node-based), and `child` is fully
      // consumed before the next recursive build can run.
      const std::vector<RelNeighbor>& child =
          DescendMemoLocked(e.label, q, out);
      for (const RelNeighbor& c : child) {
        if (c.ext_pos != RelNeighbor::kNotExternal) {
          entries.push_back(classify(e.att[c.ext_pos]));
        } else {
          RelNeighbor rn;
          rn.steps.reserve(1 + c.steps.size());
          rn.steps.push_back(ei);
          rn.steps.insert(rn.steps.end(), c.steps.begin(), c.steps.end());
          rn.node = c.node;
          entries.push_back(std::move(rn));
        }
      }
    }
  }
  memo_entries_.fetch_add(1, std::memory_order_relaxed);
  return memo_.emplace(key, std::move(entries)).first->second;
}

namespace {

// Walking context: the chain of rule applications leading to the rhs
// currently being examined. Empty chain (start_edge == kInvalidEdge)
// means the start graph itself.
struct Ctx {
  EdgeId start_edge = kInvalidEdge;
  std::vector<uint32_t> steps;   // rhs edge indices, outermost first
  std::vector<Label> labels;     // label applied at each level
};

class Walker {
 public:
  Walker(const NeighborhoodIndex& index, const NodeMap& nm,
         const std::vector<std::vector<std::vector<EdgeId>>>& incidence,
         bool out, std::vector<uint64_t>* results)
      : index_(index),
        g_(nm.grammar()),
        nm_(nm),
        incidence_(incidence),
        out_(out),
        results_(results) {}

  // Global id of node `v` within the rhs instance identified by `ctx`
  // (or within S when the ctx is empty). External nodes climb to the
  // parent instance through the nonterminal edge's attachment.
  uint64_t Resolve(const Ctx& ctx, NodeId v) const {
    Ctx walk = ctx;
    for (;;) {
      if (walk.start_edge == kInvalidEdge) return v;  // start-graph node
      const Hypergraph& rhs = g_.rhs(walk.labels.back());
      if (v >= rhs.ext().size()) {
        GPath p;
        p.start_edge = walk.start_edge;
        p.steps = walk.steps;
        p.node = v;
        return nm_.IdOf(p);
      }
      // External position v: look up the attachment in the parent.
      if (walk.steps.empty()) {
        const HEdge& e = g_.start().edge(walk.start_edge);
        return e.att[v];  // parent is S
      }
      const Hypergraph& parent =
          walk.labels.size() >= 2
              ? g_.rhs(walk.labels[walk.labels.size() - 2])
              : g_.rhs(g_.start().edge(walk.start_edge).label);
      const HEdge& e = parent.edge(walk.steps.back());
      v = e.att[v];
      walk.steps.pop_back();
      walk.labels.pop_back();
    }
  }

  // Emits the neighbors of node `v` within the rhs instance `ctx`,
  // examining only the edges incident with v. `host_index` is 0 for S
  // and 1 + rule index for right-hand sides. Nonterminal edges resolve
  // through the per-rule memo tables instead of a recursive descent.
  void ScanIncident(const Ctx& ctx, const Hypergraph& host,
                    size_t host_index, NodeId v) {
    for (EdgeId ei : incidence_[host_index][v]) {
      const HEdge& e = host.edge(ei);
      if (g_.IsTerminal(e.label)) {
        if (e.att.size() != 2) continue;  // hyperedges carry no direction
        if (out_ && e.att[0] == v) {
          results_->push_back(Resolve(ctx, e.att[1]));
        } else if (!out_ && e.att[1] == v) {
          results_->push_back(Resolve(ctx, e.att[0]));
        }
        continue;
      }
      for (size_t q = 0; q < e.att.size(); ++q) {
        if (e.att[q] == v) {
          ApplyMemo(ctx, ei, e, static_cast<uint32_t>(q));
        }
      }
    }
  }

  // getNeighboring (Section V) via the memo table: neighbors of
  // external position `pos` inside the subgraph derived from edge `ei`
  // of the instance `ctx`, translated from instance-relative form to
  // global ids.
  void ApplyMemo(const Ctx& ctx, EdgeId ei, const HEdge& e, uint32_t pos) {
    const auto& entries = index_.DescendMemo(e.label, pos, out_);
    for (const NeighborhoodIndex::RelNeighbor& rn : entries) {
      if (rn.ext_pos != NeighborhoodIndex::RelNeighbor::kNotExternal) {
        // A neighbor that is external to the child instance sits on
        // the nonterminal edge's attachment in the current host.
        results_->push_back(Resolve(ctx, e.att[rn.ext_pos]));
        continue;
      }
      GPath p;
      if (ctx.start_edge == kInvalidEdge) {
        p.start_edge = ei;
        p.steps = rn.steps;
      } else {
        p.start_edge = ctx.start_edge;
        p.steps.reserve(ctx.steps.size() + 1 + rn.steps.size());
        p.steps = ctx.steps;
        p.steps.push_back(ei);
        p.steps.insert(p.steps.end(), rn.steps.begin(), rn.steps.end());
      }
      p.node = rn.node;
      results_->push_back(nm_.IdOf(p));
    }
  }

  // Entry: neighbors of the node addressed by `path`.
  void Run(const GPath& path) {
    Ctx ctx;
    if (path.start_edge == kInvalidEdge) {
      ScanIncident(ctx, g_.start(), 0, path.node);
      return;
    }
    ctx.start_edge = path.start_edge;
    Label label = g_.start().edge(path.start_edge).label;
    ctx.labels.push_back(label);
    for (uint32_t step : path.steps) {
      ctx.steps.push_back(step);
      label = g_.rhs(label).edge(step).label;
      ctx.labels.push_back(label);
    }
    ScanIncident(ctx, g_.rhs(label), 1 + g_.RuleIndex(label), path.node);
  }

 private:
  const NeighborhoodIndex& index_;
  const SlhrGrammar& g_;
  const NodeMap& nm_;
  const std::vector<std::vector<std::vector<EdgeId>>>& incidence_;
  bool out_;
  std::vector<uint64_t>* results_;
};

}  // namespace

std::vector<uint64_t> NeighborhoodIndex::NeighborsImpl(uint64_t id,
                                                       bool out) const {
  std::vector<uint64_t> results;
  Walker walker(*this, node_map_, incidence_, out, &results);
  walker.Run(node_map_.PathOf(id));
  std::sort(results.begin(), results.end());
  results.erase(std::unique(results.begin(), results.end()), results.end());
  return results;
}

std::vector<uint64_t> NeighborhoodIndex::AllNeighbors(uint64_t id) const {
  std::vector<uint64_t> out = OutNeighbors(id);
  std::vector<uint64_t> in = InNeighbors(id);
  out.insert(out.end(), in.begin(), in.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace grepair
