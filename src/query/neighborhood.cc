#include "src/query/neighborhood.h"

#include <algorithm>
#include <cassert>

namespace grepair {

NeighborhoodIndex::NeighborhoodIndex(const SlhrGrammar& grammar)
    : node_map_(grammar) {
  incidence_.reserve(grammar.num_rules() + 1);
  incidence_.push_back(grammar.start().BuildIncidence());
  for (uint32_t j = 0; j < grammar.num_rules(); ++j) {
    incidence_.push_back(grammar.rhs_by_index(j).BuildIncidence());
  }
}

namespace {

// Walking context: the chain of rule applications leading to the rhs
// currently being examined. Empty chain (start_edge == kInvalidEdge)
// means the start graph itself.
struct Ctx {
  EdgeId start_edge = kInvalidEdge;
  std::vector<uint32_t> steps;   // rhs edge indices, outermost first
  std::vector<Label> labels;     // label applied at each level
};

class Walker {
 public:
  Walker(const NodeMap& nm,
         const std::vector<std::vector<std::vector<EdgeId>>>& incidence,
         bool out, std::vector<uint64_t>* results)
      : g_(nm.grammar()),
        nm_(nm),
        incidence_(incidence),
        out_(out),
        results_(results) {}

  // Global id of node `v` within the rhs instance identified by `ctx`
  // (or within S when the ctx is empty). External nodes climb to the
  // parent instance through the nonterminal edge's attachment.
  uint64_t Resolve(const Ctx& ctx, NodeId v) const {
    Ctx walk = ctx;
    for (;;) {
      if (walk.start_edge == kInvalidEdge) return v;  // start-graph node
      const Hypergraph& rhs = g_.rhs(walk.labels.back());
      if (v >= rhs.ext().size()) {
        GPath p;
        p.start_edge = walk.start_edge;
        p.steps = walk.steps;
        p.node = v;
        return nm_.IdOf(p);
      }
      // External position v: look up the attachment in the parent.
      if (walk.steps.empty()) {
        const HEdge& e = g_.start().edge(walk.start_edge);
        return e.att[v];  // parent is S
      }
      const Hypergraph& parent =
          walk.labels.size() >= 2
              ? g_.rhs(walk.labels[walk.labels.size() - 2])
              : g_.rhs(g_.start().edge(walk.start_edge).label);
      const HEdge& e = parent.edge(walk.steps.back());
      v = e.att[v];
      walk.steps.pop_back();
      walk.labels.pop_back();
    }
  }

  // Emits the neighbors of node `v` within the rhs instance `ctx`,
  // examining only the edges incident with v. `host_index` is 0 for S
  // and 1 + rule index for right-hand sides.
  void ScanIncident(const Ctx& ctx, const Hypergraph& host,
                    size_t host_index, NodeId v) {
    for (EdgeId ei : incidence_[host_index][v]) {
      const HEdge& e = host.edge(ei);
      if (g_.IsTerminal(e.label)) {
        if (e.att.size() != 2) continue;  // hyperedges carry no direction
        if (out_ && e.att[0] == v) {
          results_->push_back(Resolve(ctx, e.att[1]));
        } else if (!out_ && e.att[1] == v) {
          results_->push_back(Resolve(ctx, e.att[0]));
        }
        continue;
      }
      for (size_t q = 0; q < e.att.size(); ++q) {
        if (e.att[q] == v) {
          Descend(ctx, ei, e.label, static_cast<uint32_t>(q));
        }
      }
    }
  }

  // getNeighboring (Section V): neighbors of external position `pos`
  // inside the subgraph derived from edge `ei` (labeled `label`) of the
  // instance `ctx`.
  void Descend(const Ctx& ctx, EdgeId ei, Label label, uint32_t pos) {
    Ctx child = ctx;
    if (child.start_edge == kInvalidEdge) {
      child.start_edge = ei;
    } else {
      child.steps.push_back(ei);
    }
    child.labels.push_back(label);
    ScanIncident(child, g_.rhs(label), 1 + g_.RuleIndex(label),
                 static_cast<NodeId>(pos));
  }

  // Entry: neighbors of the node addressed by `path`.
  void Run(const GPath& path) {
    Ctx ctx;
    if (path.start_edge == kInvalidEdge) {
      ScanIncident(ctx, g_.start(), 0, path.node);
      return;
    }
    ctx.start_edge = path.start_edge;
    Label label = g_.start().edge(path.start_edge).label;
    ctx.labels.push_back(label);
    for (uint32_t step : path.steps) {
      ctx.steps.push_back(step);
      label = g_.rhs(label).edge(step).label;
      ctx.labels.push_back(label);
    }
    ScanIncident(ctx, g_.rhs(label), 1 + g_.RuleIndex(label), path.node);
  }

 private:
  const SlhrGrammar& g_;
  const NodeMap& nm_;
  const std::vector<std::vector<std::vector<EdgeId>>>& incidence_;
  bool out_;
  std::vector<uint64_t>* results_;
};

}  // namespace

std::vector<uint64_t> NeighborhoodIndex::NeighborsImpl(uint64_t id,
                                                       bool out) const {
  std::vector<uint64_t> results;
  Walker walker(node_map_, incidence_, out, &results);
  walker.Run(node_map_.PathOf(id));
  std::sort(results.begin(), results.end());
  results.erase(std::unique(results.begin(), results.end()), results.end());
  return results;
}

std::vector<uint64_t> NeighborhoodIndex::AllNeighbors(uint64_t id) const {
  std::vector<uint64_t> out = OutNeighbors(id);
  std::vector<uint64_t> in = InNeighbors(id);
  out.insert(out.end(), in.begin(), in.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace grepair
