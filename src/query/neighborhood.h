// Neighborhood queries over the grammar (Proposition 4), memoized.
//
// Computes the in/out neighbors of a val(G) node without materializing
// the graph: locate the node's G-representation, scan the edges of the
// right-hand side it lives in, resolve external endpoints by climbing
// toward the start graph, and resolve endpoints hidden behind
// nonterminal edges via per-rule *memo tables* (the paper's
// getNeighboring, precomputed per nonterminal as in Maneth & Peternek,
// arXiv:1704.05254). The table for (rule A, external position p,
// direction) lists the neighbors of ext node p inside val(A) in
// instance-relative form — either another external position of A or a
// derivation-path suffix below A — so a query resolves each
// nonterminal incident edge with one table lookup instead of a
// recursive descent. Tables are built lazily on first use, shared by
// all subsequent queries, and never invalidated (grammars are
// immutable); total table size is bounded by the neighbor sets of the
// rules' external nodes, the same tradeoff the paper's precomputed
// tables make. First-touch cost matches the old recursive walk; every
// repeat is O(answer * h) path arithmetic.
//
// Only rank-2 terminal edges define direction (att[0] -> att[1]); the
// input graphs of the paper are simple, and nonterminal hyperedges are
// traversed transparently.

#ifndef GREPAIR_QUERY_NEIGHBORHOOD_H_
#define GREPAIR_QUERY_NEIGHBORHOOD_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/query/node_map.h"
#include "src/util/sync.h"

namespace grepair {

/// \brief Neighbor query engine bound to one grammar.
///
/// Construction precomputes incidence lists for the start graph and
/// every right-hand side (O(|G|)), so a query touches only the edges
/// actually incident with the nodes along its derivation path.
/// Queries are safe to run concurrently on a shared index; the lazy
/// memo tables are mutex-guarded.
class NeighborhoodIndex {
 public:
  explicit NeighborhoodIndex(const SlhrGrammar& grammar);

  const NodeMap& node_map() const { return node_map_; }

  /// \brief N+(id): targets of terminal edges with source `id`
  /// (sorted, deduplicated).
  std::vector<uint64_t> OutNeighbors(uint64_t id) const {
    return NeighborsImpl(id, /*out=*/true);
  }

  /// \brief N-(id): sources of terminal edges with target `id`.
  std::vector<uint64_t> InNeighbors(uint64_t id) const {
    return NeighborsImpl(id, /*out=*/false);
  }

  /// \brief Degree-style helper: |N+| + |N-| with duplicates removed.
  std::vector<uint64_t> AllNeighbors(uint64_t id) const;

  /// \brief Memo-table entries built so far (one per distinct
  /// (rule, ext position, direction) touched by queries).
  uint64_t memo_entries() const {
    return memo_entries_.load(std::memory_order_relaxed);
  }

  /// \brief Nonterminal-edge resolutions answered from an existing
  /// memo entry (vs. `memo_entries()` builds).
  uint64_t memo_hits() const {
    return memo_hits_.load(std::memory_order_relaxed);
  }

  /// \brief One memoized neighbor of a rule's external node, relative
  /// to an instance of that rule. Either another external position
  /// (`ext_pos != kNotExternal`) or an internal derived node addressed
  /// by rhs-edge steps below the instance plus the node id in the
  /// final right-hand side.
  struct RelNeighbor {
    static constexpr uint32_t kNotExternal = ~0u;
    uint32_t ext_pos = kNotExternal;
    std::vector<uint32_t> steps;
    NodeId node = kInvalidNode;
  };

  /// \brief Memo lookup-or-build for (nonterminal `label`, ext
  /// position `pos`, direction). Returned reference stays valid for
  /// the index's lifetime (entries are never removed or mutated once
  /// built). Exposed for the query walker; not a user entry point.
  const std::vector<RelNeighbor>& DescendMemo(Label label, uint32_t pos,
                                              bool out) const
      GREPAIR_LOCKS_EXCLUDED(memo_mutex_);

 private:
  std::vector<uint64_t> NeighborsImpl(uint64_t id, bool out) const;

  const std::vector<RelNeighbor>& DescendMemoLocked(Label label,
                                                    uint32_t pos,
                                                    bool out) const
      GREPAIR_REQUIRES(memo_mutex_);

  NodeMap node_map_;
  /// incidence_[0] covers S; incidence_[1 + j] covers rule j.
  std::vector<std::vector<std::vector<EdgeId>>> incidence_;

  /// Memo tables, keyed by (rule index, ext position, direction).
  /// Values are immutable once inserted; the mutex guards map access
  /// only (unordered_map never invalidates value references). Shared
  /// mutex: warm-path lookups from concurrent queries take the shared
  /// side and do not serialize each other; only builds are exclusive.
  mutable SharedMutex memo_mutex_;
  mutable std::unordered_map<uint64_t, std::vector<RelNeighbor>> memo_
      GREPAIR_GUARDED_BY(memo_mutex_);
  mutable std::atomic<uint64_t> memo_entries_{0};
  mutable std::atomic<uint64_t> memo_hits_{0};
};

}  // namespace grepair

#endif  // GREPAIR_QUERY_NEIGHBORHOOD_H_
