// Neighborhood queries over the grammar (Proposition 4).
//
// Computes the in/out neighbors of a val(G) node without materializing
// the graph: locate the node's G-representation, scan the edges of the
// right-hand side it lives in, resolve external endpoints by climbing
// toward the start graph, and resolve endpoints hidden behind
// nonterminal edges by descending into their rules' external nodes
// (the paper's getNeighboring). Cost O(log l + n*h) for n neighbors at
// grammar height h.
//
// Only rank-2 terminal edges define direction (att[0] -> att[1]); the
// input graphs of the paper are simple, and nonterminal hyperedges are
// traversed transparently.

#ifndef GREPAIR_QUERY_NEIGHBORHOOD_H_
#define GREPAIR_QUERY_NEIGHBORHOOD_H_

#include <cstdint>
#include <vector>

#include "src/query/node_map.h"

namespace grepair {

/// \brief Neighbor query engine bound to one grammar.
///
/// Construction precomputes incidence lists for the start graph and
/// every right-hand side (O(|G|)), so a query touches only the edges
/// actually incident with the nodes along its derivation path.
class NeighborhoodIndex {
 public:
  explicit NeighborhoodIndex(const SlhrGrammar& grammar);

  const NodeMap& node_map() const { return node_map_; }

  /// \brief N+(id): targets of terminal edges with source `id`
  /// (sorted, deduplicated).
  std::vector<uint64_t> OutNeighbors(uint64_t id) const {
    return NeighborsImpl(id, /*out=*/true);
  }

  /// \brief N-(id): sources of terminal edges with target `id`.
  std::vector<uint64_t> InNeighbors(uint64_t id) const {
    return NeighborsImpl(id, /*out=*/false);
  }

  /// \brief Degree-style helper: |N+| + |N-| with duplicates removed.
  std::vector<uint64_t> AllNeighbors(uint64_t id) const;

 private:
  friend class NeighborWalker;
  std::vector<uint64_t> NeighborsImpl(uint64_t id, bool out) const;

  NodeMap node_map_;
  /// incidence_[0] covers S; incidence_[1 + j] covers rule j.
  std::vector<std::vector<std::vector<EdgeId>>> incidence_;
};

}  // namespace grepair

#endif  // GREPAIR_QUERY_NEIGHBORHOOD_H_
