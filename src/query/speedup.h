// Speed-up queries: graph functions evaluated in one pass through the
// grammar, without decompression (Section V / Proposition 5).
//
// These are the paper's examples of CMSO-evaluable functions:
//   * node / edge counts and per-label edge counts,
//   * minimal and maximal degree,
//   * number of connected components.
// Each is computed bottom-up over the rules (per-rule summaries are
// combined where nonterminal edges occur), giving O(|G|) evaluation —
// a speed-up proportional to the compression ratio over running the
// same computation on val(G).

#ifndef GREPAIR_QUERY_SPEEDUP_H_
#define GREPAIR_QUERY_SPEEDUP_H_

#include <cstdint>
#include <vector>

#include "src/grammar/grammar.h"
#include "src/util/status.h"

namespace grepair {

/// \brief How many times each rule is applied when deriving val(G)
/// (top-down multiplicities; O(|G|)).
std::vector<uint64_t> RuleMultiplicities(const SlhrGrammar& grammar);

/// \brief Edge count of val(G) per terminal label, via multiplicities.
std::vector<uint64_t> LabelHistogram(const SlhrGrammar& grammar);

/// \brief Number of connected components of val(G) (undirected
/// hyperedge connectivity), one bottom-up pass.
uint64_t CountConnectedComponents(const SlhrGrammar& grammar);

/// \brief Minimal and maximal degree over val(G)'s nodes.
struct DegreeExtrema {
  uint64_t min_degree = 0;
  uint64_t max_degree = 0;
};

/// \brief Degree extrema of val(G). A grammar deriving no nodes at all
/// has no extrema and yields kInvalidArgument — previously that case
/// silently reported min = max = 0, indistinguishable from a graph of
/// isolated nodes (which legitimately has min_degree 0).
Result<DegreeExtrema> ComputeDegreeExtrema(const SlhrGrammar& grammar);

/// \brief Total degree (sum over nodes) of val(G); equals the sum of
/// edge ranks, provided for cross-checks.
uint64_t TotalDegree(const SlhrGrammar& grammar);

}  // namespace grepair

#endif  // GREPAIR_QUERY_SPEEDUP_H_
