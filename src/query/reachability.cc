#include "src/query/reachability.h"

#include <cassert>
#include <mutex>

namespace grepair {

namespace {

std::vector<char> Bfs(const std::vector<std::vector<NodeId>>& adj,
                      const std::vector<NodeId>& seeds) {
  std::vector<char> reached(adj.size(), 0);
  std::vector<NodeId> stack;
  for (NodeId s : seeds) {
    if (!reached[s]) {
      reached[s] = 1;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    for (NodeId u : adj[v]) {
      if (!reached[u]) {
        reached[u] = 1;
        stack.push_back(u);
      }
    }
  }
  return reached;
}

}  // namespace

std::vector<std::vector<NodeId>> ReachabilityIndex::ExpandedAdjacency(
    const Hypergraph& g, bool reverse) const {
  std::vector<std::vector<NodeId>> adj(g.num_nodes());
  auto add = [&](NodeId from, NodeId to) {
    if (reverse) {
      adj[to].push_back(from);
    } else {
      adj[from].push_back(to);
    }
  };
  for (const auto& e : g.edges()) {
    if (grammar_->IsTerminal(e.label)) {
      if (e.att.size() == 2) add(e.att[0], e.att[1]);
      continue;
    }
    const auto& sk = skeletons_[grammar_->RuleIndex(e.label)];
    for (size_t p = 0; p < sk.size(); ++p) {
      for (size_t q = 0; q < sk.size(); ++q) {
        if (p != q && ((sk[p] >> q) & 1)) {
          add(e.att[p], e.att[q]);
        }
      }
    }
  }
  return adj;
}

ReachabilityIndex::ReachabilityIndex(const SlhrGrammar& grammar)
    : grammar_(&grammar), node_map_(grammar) {
  skeletons_.resize(grammar.num_rules());
  for (uint32_t j = 0; j < grammar.num_rules(); ++j) {
    const Hypergraph& rhs = grammar.rhs_by_index(j);
    auto adj = ExpandedAdjacency(rhs, false);
    uint32_t rank = static_cast<uint32_t>(rhs.ext().size());
    skeletons_[j].assign(rank, 0);
    for (uint32_t p = 0; p < rank; ++p) {
      auto reached = Bfs(adj, {static_cast<NodeId>(p)});
      for (uint32_t q = 0; q < rank; ++q) {
        if (reached[q]) skeletons_[j][p] |= 1ull << q;
      }
    }
  }
  start_fwd_ = ExpandedAdjacency(grammar.start(), false);
  start_bwd_ = ExpandedAdjacency(grammar.start(), true);
  rule_adj_.resize(2 * static_cast<size_t>(grammar.num_rules()));
}

const std::vector<std::vector<NodeId>>& ReachabilityIndex::LevelAdjacency(
    Label label, bool reverse) const {
  size_t slot = 2 * static_cast<size_t>(grammar_->RuleIndex(label)) +
                (reverse ? 1 : 0);
  {
    // Warm fast path: concurrent lookups share the lock.
    ReaderMutexLock read_lock(memo_mutex_);
    if (rule_adj_[slot] != nullptr) {
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
      return *rule_adj_[slot];
    }
  }
  WriterMutexLock write_lock(memo_mutex_);
  if (rule_adj_[slot] == nullptr) {
    rule_adj_[slot] =
        std::make_unique<const std::vector<std::vector<NodeId>>>(
            ExpandedAdjacency(grammar_->rhs(label), reverse));
    memo_entries_.fetch_add(1, std::memory_order_relaxed);
  } else {
    memo_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return *rule_adj_[slot];
}

namespace {

// Reach information of one rule level along a derivation path.
struct LevelInfo {
  std::vector<char> reached;  // nodes of the level's rhs
};

// Chain of levels (innermost first) plus the start-graph reach set.
struct Chain {
  std::vector<LevelInfo> levels;
  std::vector<char> s_reached;
};

}  // namespace

bool ReachabilityIndex::Reachable(uint64_t from, uint64_t to) const {
  if (from == to) return true;
  GPath pu = node_map_.PathOf(from);
  GPath pv = node_map_.PathOf(to);

  // Builds the reach chain for one endpoint; `backward` computes
  // co-reachability (for the target node).
  auto build = [&](const GPath& path, bool backward) {
    Chain chain;
    std::vector<NodeId> seeds;
    if (path.start_edge == kInvalidEdge) {
      seeds = {path.node};
    } else {
      // Collect the rule labels along the path.
      std::vector<Label> labels;
      Label label = grammar_->start().edge(path.start_edge).label;
      labels.push_back(label);
      for (uint32_t step : path.steps) {
        label = grammar_->rhs(label).edge(step).label;
        labels.push_back(label);
      }
      seeds = {path.node};
      for (size_t i = labels.size(); i-- > 0;) {
        const Hypergraph& rhs = grammar_->rhs(labels[i]);
        const auto& adj = LevelAdjacency(labels[i], backward);
        LevelInfo info;
        info.reached = Bfs(adj, seeds);
        // External positions reaching/reachable become parent seeds via
        // the nonterminal edge's attachment.
        const HEdge& edge =
            i == 0 ? grammar_->start().edge(path.start_edge)
                   : grammar_->rhs(labels[i - 1]).edge(path.steps[i - 1]);
        seeds.clear();
        for (size_t p = 0; p < rhs.ext().size(); ++p) {
          if (info.reached[p]) seeds.push_back(edge.att[p]);
        }
        chain.levels.push_back(std::move(info));
      }
    }
    chain.s_reached = Bfs(backward ? start_bwd_ : start_fwd_, seeds);
    return chain;
  };

  Chain cu = build(pu, false);
  Chain cv = build(pv, true);

  // Meet in the start graph (the paper's Cases 1 and 2).
  for (NodeId v = 0; v < grammar_->start().num_nodes(); ++v) {
    if (cu.s_reached[v] && cv.s_reached[v]) return true;
  }

  // Meet inside a shared subtree: compare reach sets at every common
  // rule level (innermost first).
  if (pu.start_edge != kInvalidEdge && pu.start_edge == pv.start_edge) {
    size_t lcp = 0;
    while (lcp < pu.steps.size() && lcp < pv.steps.size() &&
           pu.steps[lcp] == pv.steps[lcp]) {
      ++lcp;
    }
    size_t common = 1 + lcp;  // rule levels shared by both paths
    size_t depth_u = 1 + pu.steps.size();
    size_t depth_v = 1 + pv.steps.size();
    assert(common <= depth_u && common <= depth_v);
    for (size_t level = common; level >= 1; --level) {
      // chain.levels[0] is the innermost level (== depth).
      const auto& ru = cu.levels[depth_u - level].reached;
      const auto& rv = cv.levels[depth_v - level].reached;
      assert(ru.size() == rv.size());
      for (size_t v = 0; v < ru.size(); ++v) {
        if (ru[v] && rv[v]) return true;
      }
    }
  }
  return false;
}

}  // namespace grepair
