// Regular path queries over the grammar (the paper's Section VI future
// work: "we want to find more query classes with this property (e.g.,
// regular path queries)").
//
// A regular path query asks whether some directed path from s to t
// spells a word (over edge labels) in a regular language. Like plain
// reachability (Theorem 6), it evaluates in one bottom-up pass: for
// every nonterminal we precompute the *product skeleton* — the relation
// "(external p, automaton state q) reaches (external p', state q')
// inside the derived subgraph" — and queries run the same up-the-path /
// meet-at-common-ancestor scheme as ReachabilityIndex, on the product
// of the graph with the automaton. Cost O(|G| * (rank*|Q|)^2) to build,
// O((|S| + h*rank) * |Q|) per query.
//
// The automaton is a label NFA built from a small regex AST
// (PathExpr): single labels, concatenation, alternation, Kleene
// star/plus. Plain reachability is the special case "(any)*".

#ifndef GREPAIR_QUERY_PATH_QUERIES_H_
#define GREPAIR_QUERY_PATH_QUERIES_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/query/node_map.h"

namespace grepair {

/// \brief Regular expression over edge labels.
class PathExpr {
 public:
  enum class Kind { kLabel, kAnyLabel, kConcat, kAlt, kStar, kPlus };

  static std::shared_ptr<PathExpr> Single(Label label);
  static std::shared_ptr<PathExpr> Any();
  static std::shared_ptr<PathExpr> Concat(std::shared_ptr<PathExpr> a,
                                          std::shared_ptr<PathExpr> b);
  static std::shared_ptr<PathExpr> Alt(std::shared_ptr<PathExpr> a,
                                       std::shared_ptr<PathExpr> b);
  static std::shared_ptr<PathExpr> Star(std::shared_ptr<PathExpr> a);
  static std::shared_ptr<PathExpr> Plus(std::shared_ptr<PathExpr> a);

  Kind kind;
  Label label = kInvalidLabel;  // kLabel
  std::shared_ptr<PathExpr> left, right;
};

/// \brief Epsilon-free NFA over terminal labels.
struct LabelNfa {
  uint32_t num_states = 0;
  uint32_t start = 0;
  std::vector<char> accepting;
  /// transitions[q] = list of (label, q'); kInvalidLabel matches any
  /// terminal label.
  std::vector<std::vector<std::pair<Label, uint32_t>>> transitions;

  /// \brief True if the empty word is accepted (s == t counts then).
  bool AcceptsEmpty() const { return accepting[start]; }
};

/// \brief Thompson construction + epsilon elimination.
LabelNfa CompileNfa(const std::shared_ptr<PathExpr>& expr);

/// \brief Regular-path-query oracle bound to one grammar and one NFA.
class PathQueryIndex {
 public:
  PathQueryIndex(const SlhrGrammar& grammar, LabelNfa nfa);

  /// \brief True iff some path from `from` to `to` spells a word of the
  /// language (ids in val(G) numbering; the empty path counts iff the
  /// language contains the empty word and from == to).
  bool Matches(uint64_t from, uint64_t to) const;

  const NodeMap& node_map() const { return node_map_; }
  const LabelNfa& nfa() const { return nfa_; }

 private:
  // Product-graph adjacency of a host: nodes are (node * |Q| + state).
  std::vector<std::vector<uint32_t>> ProductAdjacency(const Hypergraph& g,
                                                      bool reverse) const;

  const SlhrGrammar* grammar_;
  NodeMap node_map_;
  LabelNfa nfa_;
  /// Per rule: bitset rows indexed (ext*|Q| + state), bit columns
  /// likewise; row r, bit c set iff product node r reaches c inside.
  std::vector<std::vector<std::vector<uint64_t>>> skeletons_;
  std::vector<std::vector<uint32_t>> start_fwd_;
  std::vector<std::vector<uint32_t>> start_bwd_;
};

}  // namespace grepair

#endif  // GREPAIR_QUERY_PATH_QUERIES_H_
