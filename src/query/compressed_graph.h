// CompressedGraph: a graph-shaped facade over an SL-HR grammar.
//
// The paper's motivating applications include using the compressed
// graph "as in-memory representation" — this class bundles the grammar
// with the query indexes of Section V behind an adjacency-style
// interface, optionally carrying the psi' mapping so callers can keep
// using their original node ids. Nothing is ever decompressed; every
// method delegates to the grammar-side algorithms:
//
//   CompressedGraph g = CompressedGraph::FromGraph(input, alphabet);
//   g.OutNeighbors(v);        // Proposition 4
//   g.Reachable(u, v);        // Theorem 6
//   g.NumConnectedComponents(); // one bottom-up pass
//   g.SerializedSize();       // Section III-C2 format size

#ifndef GREPAIR_QUERY_COMPRESSED_GRAPH_H_
#define GREPAIR_QUERY_COMPRESSED_GRAPH_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/grepair/compressor.h"
#include "src/query/neighborhood.h"
#include "src/query/reachability.h"
#include "src/util/byte_io.h"

namespace grepair {

/// \brief Queryable compressed graph. Movable, not copyable (owns the
/// lazily built query indexes).
class CompressedGraph {
 public:
  /// \brief Compresses `graph` and wraps the result. When
  /// `keep_original_ids` is set (default), all query entry points accept
  /// and return the input graph's node ids; otherwise they use val(G)
  /// numbering.
  static Result<CompressedGraph> FromGraph(const Hypergraph& graph,
                                           const Alphabet& alphabet,
                                           CompressOptions options = {},
                                           bool keep_original_ids = true);

  /// \brief Wraps an existing grammar (e.g. from DecodeGrammar);
  /// queries use val(G) numbering.
  static Result<CompressedGraph> FromGrammar(SlhrGrammar grammar);

  /// \brief Wraps a grammar together with a psi' node mapping (must
  /// structurally match); queries use original-graph ids.
  static Result<CompressedGraph> FromGrammar(SlhrGrammar grammar,
                                             NodeMapping mapping);

  /// \brief Self-contained serialization: the paper's binary grammar
  /// format, framed together with the psi' mapping when one is carried
  /// (the paper keeps the mapping out of band; SerializedSize() still
  /// reports the grammar alone). Inverse of Deserialize.
  std::vector<uint8_t> Serialize() const;

  static Result<CompressedGraph> Deserialize(
      const std::vector<uint8_t>& bytes);

  /// \brief Zero-copy overload: parses straight out of a borrowed view
  /// (e.g. a shard payload inside an mmap'd container) without the
  /// grammar/mapping frame copies of the vector overload. The view is
  /// only read during the call.
  static Result<CompressedGraph> Deserialize(ByteSpan bytes);

  uint64_t num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return num_edges_; }

  /// \brief Targets of edges leaving `node` (any label), sorted.
  std::vector<uint64_t> OutNeighbors(uint64_t node) const;

  /// \brief Sources of edges entering `node`, sorted.
  std::vector<uint64_t> InNeighbors(uint64_t node) const;

  /// \brief Directed reachability (Theorem 6).
  bool Reachable(uint64_t from, uint64_t to) const;

  /// \brief Connected components of the whole graph, one grammar pass.
  uint64_t NumConnectedComponents() const;

  /// \brief Edge count per terminal label.
  std::vector<uint64_t> LabelHistogram() const;

  /// \brief Size of the grammar in the paper's |.| metric.
  uint64_t GrammarSize() const { return grammar_->TotalSize(); }

  /// \brief Bytes of the binary serialization (computed once).
  size_t SerializedSize() const;

  /// \brief Materializes the graph (original ids when available).
  Result<Hypergraph> Decompress() const;

  const SlhrGrammar& grammar() const { return *grammar_; }
  const CompressStats& stats() const { return stats_; }

  /// \brief The underlying query indexes (their memo-table counters
  /// feed the api-level QueryStats surface).
  const NeighborhoodIndex& neighborhood() const { return *neighborhood_; }
  const ReachabilityIndex& reachability() const { return *reachability_; }

  /// \brief True when queries and Decompress use original-graph ids.
  bool has_original_ids() const { return !to_original_.empty(); }

 private:
  CompressedGraph() = default;
  void BuildIndexes();

  uint64_t ToVal(uint64_t node) const {
    return to_val_.empty() ? node : to_val_[node];
  }
  uint64_t ToOriginal(uint64_t node) const {
    return to_original_.empty() ? node : to_original_[node];
  }

  // Heap-allocated so the query indexes' internal pointers stay valid
  // when the CompressedGraph itself is moved.
  std::unique_ptr<SlhrGrammar> grammar_;
  NodeMapping mapping_;  // empty when ids are val(G) numbering
  CompressStats stats_;
  uint64_t num_nodes_ = 0;
  uint64_t num_edges_ = 0;
  std::vector<NodeId> to_original_;  // val id -> original id
  std::vector<uint64_t> to_val_;     // original id -> val id
  std::unique_ptr<NeighborhoodIndex> neighborhood_;
  std::unique_ptr<ReachabilityIndex> reachability_;
  mutable std::optional<size_t> serialized_size_;
};

}  // namespace grepair

#endif  // GREPAIR_QUERY_COMPRESSED_GRAPH_H_
