// (s,t)-reachability over the grammar in time linear in |G|
// (Theorem 6).
//
// Construction computes, bottom-up, a *skeleton* per nonterminal: the
// reachability relation among the external nodes of its derived
// subgraph (the paper materializes skeleta as small graphs via SCC
// condensation; with rank <= maxRank the explicit relation is at most
// maxRank^2 bits per rule and the overall cost stays O(|G| * rank^2)).
// The start graph with every nonterminal edge replaced by its skeleton
// edges (S' in the paper) is materialized once.
//
// A query locates both nodes' derivation paths, then propagates
// forward-reachable external positions up s's path and
// backward-reachable external positions up t's path, checking at every
// common ancestor level (innermost common rule first, then up to S')
// whether the forward set meets the backward set. This extends the
// paper's Case 2 — which climbs both nodes to S — to the case where
// both nodes live under the same start-graph edge and the meeting
// point is inside the shared subtree.
//
// Only rank-2 terminal edges induce direction; terminal hyperedges do
// not contribute paths (the theorem addresses simple graphs).

#ifndef GREPAIR_QUERY_REACHABILITY_H_
#define GREPAIR_QUERY_REACHABILITY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/query/node_map.h"
#include "src/util/sync.h"

namespace grepair {

/// \brief Reachability oracle for val(G). Queries are safe to run
/// concurrently on a shared index; the lazily built per-rule
/// adjacency tables are mutex-guarded.
class ReachabilityIndex {
 public:
  explicit ReachabilityIndex(const SlhrGrammar& grammar);

  /// \brief True iff `to` is reachable from `from` in val(G) (ids in
  /// val(G) numbering; a node reaches itself).
  bool Reachable(uint64_t from, uint64_t to) const;

  const NodeMap& node_map() const { return node_map_; }

  /// \brief Skeleton relation of rule `j`: bit q of row p set iff
  /// external p reaches external q inside the derived subgraph.
  const std::vector<uint64_t>& skeleton(uint32_t j) const {
    return skeletons_[j];
  }

  /// \brief Per-(rule, direction) expanded adjacencies memoized so far
  /// (each was previously rebuilt on every query touching its level).
  uint64_t memo_entries() const {
    return memo_entries_.load(std::memory_order_relaxed);
  }

  /// \brief Query levels answered from a memoized adjacency.
  uint64_t memo_hits() const {
    return memo_hits_.load(std::memory_order_relaxed);
  }

 private:
  // Adjacency of a host graph with nonterminal edges expanded to their
  // skeleton edges (edges among the host's nodes only).
  std::vector<std::vector<NodeId>> ExpandedAdjacency(const Hypergraph& g,
                                                     bool reverse) const;

  // Memoized ExpandedAdjacency of rule `label`'s rhs: built on first
  // use, immutable afterwards, reused by every later query climbing
  // through that rule (build-once; reps are immutable so it is never
  // invalidated).
  const std::vector<std::vector<NodeId>>& LevelAdjacency(Label label,
                                                         bool reverse) const
      GREPAIR_LOCKS_EXCLUDED(memo_mutex_);

  const SlhrGrammar* grammar_;
  NodeMap node_map_;
  std::vector<std::vector<uint64_t>> skeletons_;  // per rule: rank rows
  std::vector<std::vector<NodeId>> start_fwd_;    // S' adjacency
  std::vector<std::vector<NodeId>> start_bwd_;    // reversed S'

  // Slot [2 * rule + reverse]; null until built. The mutex guards slot
  // installation; the pointed-to adjacency never changes after that.
  // Shared mutex: warm-path reads from concurrent queries share the
  // lock; only the one-time builds are exclusive.
  mutable SharedMutex memo_mutex_;
  mutable std::vector<std::unique_ptr<const std::vector<std::vector<NodeId>>>>
      rule_adj_ GREPAIR_GUARDED_BY(memo_mutex_);
  mutable std::atomic<uint64_t> memo_entries_{0};
  mutable std::atomic<uint64_t> memo_hits_{0};
};

}  // namespace grepair

#endif  // GREPAIR_QUERY_REACHABILITY_H_
