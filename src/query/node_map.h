// G-representations: mapping between val(G) node IDs and derivation
// paths (Section V).
//
// The derived graph's node IDs follow the deterministic layout of
// derivation.h: start-graph nodes first, then one contiguous block per
// start-graph nonterminal edge, each block laid out depth-first (rule
// internals first, then the child blocks in rhs edge order). A
// G-representation ("GPath") addresses a node by the start edge, the
// chain of nonterminal rhs-edge indices, and the node inside the final
// right-hand side. The block-base prefix sums (start-edge blocks and
// per-rule child blocks) are stored as Elias-Fano indexes, so each
// descent step in PathOf is an O(1)-expected succinct predecessor
// query instead of a std::upper_bound binary search, and the index
// costs ~2 bits per edge over entropy instead of 8 bytes per edge;
// IdOf runs in O(h) (Section V's getID).

#ifndef GREPAIR_QUERY_NODE_MAP_H_
#define GREPAIR_QUERY_NODE_MAP_H_

#include <cstdint>
#include <vector>

#include "src/grammar/derivation.h"
#include "src/grammar/grammar.h"
#include "src/util/rank_select.h"

namespace grepair {

/// \brief Derivation path of one val(G) node.
struct GPath {
  /// Start-graph edge the node is derived under; kInvalidEdge when the
  /// node is a start-graph node (then `node` is its start-graph id).
  EdgeId start_edge = kInvalidEdge;
  /// Rhs edge indices of the nonterminal edges followed, outermost
  /// first. Each index is into the corresponding rhs's edge list.
  std::vector<uint32_t> steps;
  /// Node id within the innermost rhs (internal node) or within S.
  NodeId node = kInvalidNode;

  bool operator==(const GPath& o) const {
    return start_edge == o.start_edge && steps == o.steps && node == o.node;
  }
};

/// \brief Precomputed index for PathOf/IdOf on one grammar.
class NodeMap {
 public:
  explicit NodeMap(const SlhrGrammar& grammar);

  const SlhrGrammar& grammar() const { return *grammar_; }

  /// \brief Total nodes of val(G).
  uint64_t num_nodes() const { return total_nodes_; }

  /// \brief Internal nodes generated under an edge labeled `l`
  /// (0 for terminals).
  uint64_t GenNodes(Label l) const {
    return grammar_->IsNonterminal(l) ? gen_.gen_nodes[grammar_->RuleIndex(l)]
                                      : 0;
  }

  /// \brief Derivation path of node `id` (must be < num_nodes()).
  GPath PathOf(uint64_t id) const;

  /// \brief Inverse of PathOf.
  uint64_t IdOf(const GPath& path) const;

  /// \brief Global id of the start-graph block base for `start_edge`
  /// (the first id generated under it).
  uint64_t BlockBase(EdgeId start_edge) const {
    return start_prefix_.Get(start_edge);
  }

 private:
  const SlhrGrammar* grammar_;
  GeneratedSizes gen_;
  uint64_t total_nodes_ = 0;
  /// Elias-Fano over start_prefix[e] = first derived id of start edge
  /// e's block (equals |V_S| + sum of earlier blocks); defined for all
  /// edges (terminal edges get empty blocks), with a sentinel entry
  /// holding the total so predecessor semantics match upper_bound - 1.
  EliasFanoIndex start_prefix_;
  /// Per rule: Elias-Fano over the prefix sums (with sentinel) of
  /// generated node counts across rhs edges, used to descend in O(1)
  /// expected per level.
  std::vector<EliasFanoIndex> rule_child_prefix_;
};

}  // namespace grepair

#endif  // GREPAIR_QUERY_NODE_MAP_H_
