#include "src/query/compressed_graph.h"

#include <algorithm>

#include "src/encoding/grammar_coder.h"
#include "src/query/speedup.h"
#include "src/util/byte_io.h"

namespace grepair {

namespace {

// Fills the val<->original id translation tables from a psi' mapping.
// The origins must form a permutation of [0, |val(G)|_V); Deserialize
// feeds this untrusted bytes, so out-of-range or duplicate ids are
// Corruption, not UB.
Status BuildIdTranslation(std::vector<NodeId>* to_original,
                          std::vector<uint64_t>* to_val,
                          const SlhrGrammar& grammar,
                          const NodeMapping& mapping) {
  auto origins = FlattenOrigins(grammar, mapping);
  if (!origins.ok()) return origins.status();
  *to_original = std::move(origins).ValueOrDie();
  constexpr uint64_t kUnset = ~0ull;
  to_val->assign(to_original->size(), kUnset);
  for (uint64_t v = 0; v < to_original->size(); ++v) {
    NodeId orig = (*to_original)[v];
    if (orig >= to_original->size() || (*to_val)[orig] != kUnset) {
      return Status::Corruption("psi' mapping is not a permutation");
    }
    (*to_val)[orig] = v;
  }
  return Status::OK();
}

}  // namespace

Result<CompressedGraph> CompressedGraph::FromGraph(
    const Hypergraph& graph, const Alphabet& alphabet,
    CompressOptions options, bool keep_original_ids) {
  options.track_node_mapping = keep_original_ids;
  auto result = Compress(graph, alphabet, options);
  if (!result.ok()) return result.status();

  CompressedGraph g;
  g.grammar_ = std::make_unique<SlhrGrammar>(std::move(result.value().grammar));
  g.mapping_ = std::move(result.value().mapping);
  g.stats_ = result.value().stats;
  if (keep_original_ids) {
    GREPAIR_RETURN_IF_ERROR(BuildIdTranslation(
        &g.to_original_, &g.to_val_, *g.grammar_, g.mapping_));
  }
  g.BuildIndexes();
  return g;
}

Result<CompressedGraph> CompressedGraph::FromGrammar(SlhrGrammar grammar) {
  GREPAIR_RETURN_IF_ERROR(grammar.Validate());
  CompressedGraph g;
  g.grammar_ = std::make_unique<SlhrGrammar>(std::move(grammar));
  g.BuildIndexes();
  return g;
}

Result<CompressedGraph> CompressedGraph::FromGrammar(SlhrGrammar grammar,
                                                     NodeMapping mapping) {
  if (mapping.empty()) return FromGrammar(std::move(grammar));
  GREPAIR_RETURN_IF_ERROR(grammar.Validate());
  CompressedGraph g;
  g.grammar_ = std::make_unique<SlhrGrammar>(std::move(grammar));
  g.mapping_ = std::move(mapping);
  GREPAIR_RETURN_IF_ERROR(BuildIdTranslation(
      &g.to_original_, &g.to_val_, *g.grammar_, g.mapping_));
  g.BuildIndexes();
  return g;
}

std::vector<uint8_t> CompressedGraph::Serialize() const {
  auto grammar_bytes = EncodeGrammar(*grammar_);
  std::vector<uint8_t> out;
  out.push_back(mapping_.empty() ? 0 : 1);
  PutU64LE(grammar_bytes.size(), &out);
  out.insert(out.end(), grammar_bytes.begin(), grammar_bytes.end());
  if (!mapping_.empty()) {
    auto mapping_bytes = EncodeNodeMapping(*grammar_, mapping_);
    out.insert(out.end(), mapping_bytes.begin(), mapping_bytes.end());
  }
  return out;
}

Result<CompressedGraph> CompressedGraph::Deserialize(
    const std::vector<uint8_t>& bytes) {
  return Deserialize(SpanOf(bytes));
}

Result<CompressedGraph> CompressedGraph::Deserialize(ByteSpan bytes) {
  ByteSource src(bytes, "grepair payload");
  uint8_t mapping_flag = 0;
  GREPAIR_RETURN_IF_ERROR(src.ReadU8(&mapping_flag));
  uint64_t grammar_len = 0;
  GREPAIR_RETURN_IF_ERROR(src.ReadU64LE(&grammar_len));
  ByteSpan grammar_bytes;
  GREPAIR_RETURN_IF_ERROR(src.ReadSpan(grammar_len, &grammar_bytes));
  auto grammar = DecodeGrammar(grammar_bytes);
  if (!grammar.ok()) return grammar.status();
  if (mapping_flag == 0) {
    return FromGrammar(std::move(grammar).ValueOrDie());
  }
  ByteSpan mapping_bytes;
  GREPAIR_RETURN_IF_ERROR(src.ReadSpan(src.remaining(), &mapping_bytes));
  auto mapping = DecodeNodeMapping(grammar.value(), mapping_bytes);
  if (!mapping.ok()) return mapping.status();
  return FromGrammar(std::move(grammar).ValueOrDie(),
                     std::move(mapping).ValueOrDie());
}

void CompressedGraph::BuildIndexes() {
  num_nodes_ = ValNodeCount(*grammar_);
  num_edges_ = ValEdgeCount(*grammar_);
  neighborhood_ = std::make_unique<NeighborhoodIndex>(*grammar_);
  reachability_ = std::make_unique<ReachabilityIndex>(*grammar_);
}

std::vector<uint64_t> CompressedGraph::OutNeighbors(uint64_t node) const {
  auto result = neighborhood_->OutNeighbors(ToVal(node));
  if (!to_original_.empty()) {
    for (auto& v : result) v = ToOriginal(v);
    std::sort(result.begin(), result.end());
  }
  return result;
}

std::vector<uint64_t> CompressedGraph::InNeighbors(uint64_t node) const {
  auto result = neighborhood_->InNeighbors(ToVal(node));
  if (!to_original_.empty()) {
    for (auto& v : result) v = ToOriginal(v);
    std::sort(result.begin(), result.end());
  }
  return result;
}

bool CompressedGraph::Reachable(uint64_t from, uint64_t to) const {
  return reachability_->Reachable(ToVal(from), ToVal(to));
}

uint64_t CompressedGraph::NumConnectedComponents() const {
  return CountConnectedComponents(*grammar_);
}

std::vector<uint64_t> CompressedGraph::LabelHistogram() const {
  return grepair::LabelHistogram(*grammar_);
}

size_t CompressedGraph::SerializedSize() const {
  if (!serialized_size_.has_value()) {
    serialized_size_ = EncodeGrammar(*grammar_).size();
  }
  return *serialized_size_;
}

Result<Hypergraph> CompressedGraph::Decompress() const {
  if (!to_original_.empty()) {
    return DeriveOriginal(*grammar_, mapping_);
  }
  return Derive(*grammar_);
}

}  // namespace grepair
