#include "src/query/compressed_graph.h"

#include <algorithm>

#include "src/encoding/grammar_coder.h"
#include "src/query/speedup.h"

namespace grepair {

Result<CompressedGraph> CompressedGraph::FromGraph(
    const Hypergraph& graph, const Alphabet& alphabet,
    CompressOptions options, bool keep_original_ids) {
  options.track_node_mapping = keep_original_ids;
  auto result = Compress(graph, alphabet, options);
  if (!result.ok()) return result.status();

  CompressedGraph g;
  g.grammar_ = std::make_unique<SlhrGrammar>(std::move(result.value().grammar));
  g.mapping_ = std::move(result.value().mapping);
  g.stats_ = result.value().stats;
  if (keep_original_ids) {
    auto origins = FlattenOrigins(*g.grammar_, g.mapping_);
    if (!origins.ok()) return origins.status();
    g.to_original_ = std::move(origins).ValueOrDie();
    g.to_val_.resize(g.to_original_.size());
    for (uint64_t v = 0; v < g.to_original_.size(); ++v) {
      g.to_val_[g.to_original_[v]] = v;
    }
  }
  g.BuildIndexes();
  return g;
}

Result<CompressedGraph> CompressedGraph::FromGrammar(SlhrGrammar grammar) {
  GREPAIR_RETURN_IF_ERROR(grammar.Validate());
  CompressedGraph g;
  g.grammar_ = std::make_unique<SlhrGrammar>(std::move(grammar));
  g.BuildIndexes();
  return g;
}

void CompressedGraph::BuildIndexes() {
  num_nodes_ = ValNodeCount(*grammar_);
  num_edges_ = ValEdgeCount(*grammar_);
  neighborhood_ = std::make_unique<NeighborhoodIndex>(*grammar_);
  reachability_ = std::make_unique<ReachabilityIndex>(*grammar_);
}

std::vector<uint64_t> CompressedGraph::OutNeighbors(uint64_t node) const {
  auto result = neighborhood_->OutNeighbors(ToVal(node));
  if (!to_original_.empty()) {
    for (auto& v : result) v = ToOriginal(v);
    std::sort(result.begin(), result.end());
  }
  return result;
}

std::vector<uint64_t> CompressedGraph::InNeighbors(uint64_t node) const {
  auto result = neighborhood_->InNeighbors(ToVal(node));
  if (!to_original_.empty()) {
    for (auto& v : result) v = ToOriginal(v);
    std::sort(result.begin(), result.end());
  }
  return result;
}

bool CompressedGraph::Reachable(uint64_t from, uint64_t to) const {
  return reachability_->Reachable(ToVal(from), ToVal(to));
}

uint64_t CompressedGraph::NumConnectedComponents() const {
  return CountConnectedComponents(*grammar_);
}

std::vector<uint64_t> CompressedGraph::LabelHistogram() const {
  return grepair::LabelHistogram(*grammar_);
}

size_t CompressedGraph::SerializedSize() const {
  if (!serialized_size_.has_value()) {
    serialized_size_ = EncodeGrammar(*grammar_).size();
  }
  return *serialized_size_;
}

Result<Hypergraph> CompressedGraph::Decompress() const {
  if (!to_original_.empty()) {
    return DeriveOriginal(*grammar_, mapping_);
  }
  return Derive(*grammar_);
}

}  // namespace grepair
