#include "src/query/path_queries.h"

#include <cassert>

namespace grepair {

std::shared_ptr<PathExpr> PathExpr::Single(Label label) {
  auto e = std::make_shared<PathExpr>();
  e->kind = Kind::kLabel;
  e->label = label;
  return e;
}
std::shared_ptr<PathExpr> PathExpr::Any() {
  auto e = std::make_shared<PathExpr>();
  e->kind = Kind::kAnyLabel;
  return e;
}
std::shared_ptr<PathExpr> PathExpr::Concat(std::shared_ptr<PathExpr> a,
                                           std::shared_ptr<PathExpr> b) {
  auto e = std::make_shared<PathExpr>();
  e->kind = Kind::kConcat;
  e->left = std::move(a);
  e->right = std::move(b);
  return e;
}
std::shared_ptr<PathExpr> PathExpr::Alt(std::shared_ptr<PathExpr> a,
                                        std::shared_ptr<PathExpr> b) {
  auto e = std::make_shared<PathExpr>();
  e->kind = Kind::kAlt;
  e->left = std::move(a);
  e->right = std::move(b);
  return e;
}
std::shared_ptr<PathExpr> PathExpr::Star(std::shared_ptr<PathExpr> a) {
  auto e = std::make_shared<PathExpr>();
  e->kind = Kind::kStar;
  e->left = std::move(a);
  return e;
}
std::shared_ptr<PathExpr> PathExpr::Plus(std::shared_ptr<PathExpr> a) {
  auto e = std::make_shared<PathExpr>();
  e->kind = Kind::kPlus;
  e->left = std::move(a);
  return e;
}

namespace {

// Thompson NFA with epsilon edges, then epsilon-eliminated.
struct EpsNfa {
  struct Edge {
    Label label;  // kInvalidLabel - 1 marks epsilon internally
    uint32_t to;
  };
  static constexpr Label kEps = kInvalidLabel - 1;
  std::vector<std::vector<Edge>> states;

  uint32_t NewState() {
    states.emplace_back();
    return static_cast<uint32_t>(states.size() - 1);
  }
  void Add(uint32_t from, Label l, uint32_t to) {
    states[from].push_back({l, to});
  }
};

// Builds the fragment for `expr`; returns (in, out) state pair.
std::pair<uint32_t, uint32_t> BuildFragment(
    const std::shared_ptr<PathExpr>& expr, EpsNfa* nfa) {
  uint32_t in = nfa->NewState();
  uint32_t out = nfa->NewState();
  switch (expr->kind) {
    case PathExpr::Kind::kLabel:
      nfa->Add(in, expr->label, out);
      break;
    case PathExpr::Kind::kAnyLabel:
      nfa->Add(in, kInvalidLabel, out);  // wildcard survives elimination
      break;
    case PathExpr::Kind::kConcat: {
      auto a = BuildFragment(expr->left, nfa);
      auto b = BuildFragment(expr->right, nfa);
      nfa->Add(in, EpsNfa::kEps, a.first);
      nfa->Add(a.second, EpsNfa::kEps, b.first);
      nfa->Add(b.second, EpsNfa::kEps, out);
      break;
    }
    case PathExpr::Kind::kAlt: {
      auto a = BuildFragment(expr->left, nfa);
      auto b = BuildFragment(expr->right, nfa);
      nfa->Add(in, EpsNfa::kEps, a.first);
      nfa->Add(in, EpsNfa::kEps, b.first);
      nfa->Add(a.second, EpsNfa::kEps, out);
      nfa->Add(b.second, EpsNfa::kEps, out);
      break;
    }
    case PathExpr::Kind::kStar: {
      auto a = BuildFragment(expr->left, nfa);
      nfa->Add(in, EpsNfa::kEps, out);
      nfa->Add(in, EpsNfa::kEps, a.first);
      nfa->Add(a.second, EpsNfa::kEps, a.first);
      nfa->Add(a.second, EpsNfa::kEps, out);
      break;
    }
    case PathExpr::Kind::kPlus: {
      auto a = BuildFragment(expr->left, nfa);
      nfa->Add(in, EpsNfa::kEps, a.first);
      nfa->Add(a.second, EpsNfa::kEps, a.first);
      nfa->Add(a.second, EpsNfa::kEps, out);
      break;
    }
  }
  return {in, out};
}

}  // namespace

LabelNfa CompileNfa(const std::shared_ptr<PathExpr>& expr) {
  EpsNfa eps;
  auto [in, out] = BuildFragment(expr, &eps);

  // Epsilon closures.
  uint32_t n = static_cast<uint32_t>(eps.states.size());
  std::vector<std::vector<uint32_t>> closure(n);
  for (uint32_t s = 0; s < n; ++s) {
    std::vector<char> seen(n, 0);
    std::vector<uint32_t> stack{s};
    seen[s] = 1;
    while (!stack.empty()) {
      uint32_t cur = stack.back();
      stack.pop_back();
      closure[s].push_back(cur);
      for (const auto& edge : eps.states[cur]) {
        if (edge.label == EpsNfa::kEps && !seen[edge.to]) {
          seen[edge.to] = 1;
          stack.push_back(edge.to);
        }
      }
    }
  }

  LabelNfa nfa;
  nfa.num_states = n;
  nfa.start = in;
  nfa.accepting.assign(n, 0);
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t c : closure[s]) {
      if (c == out) nfa.accepting[s] = 1;
    }
  }
  nfa.transitions.resize(n);
  // label transition q --l--> closure(q') for each labeled edge from
  // any state in closure(q).
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t c : closure[s]) {
      for (const auto& edge : eps.states[c]) {
        if (edge.label == EpsNfa::kEps) continue;
        for (uint32_t t : closure[edge.to]) {
          nfa.transitions[s].push_back({edge.label, t});
        }
      }
    }
  }
  return nfa;
}

std::vector<std::vector<uint32_t>> PathQueryIndex::ProductAdjacency(
    const Hypergraph& g, bool reverse) const {
  const uint32_t q = nfa_.num_states;
  std::vector<std::vector<uint32_t>> adj(
      static_cast<size_t>(g.num_nodes()) * q);
  auto add = [&](uint32_t from, uint32_t to) {
    if (reverse) {
      adj[to].push_back(from);
    } else {
      adj[from].push_back(to);
    }
  };
  for (const auto& e : g.edges()) {
    if (grammar_->IsTerminal(e.label)) {
      if (e.att.size() != 2) continue;
      for (uint32_t s = 0; s < q; ++s) {
        for (const auto& [label, t] : nfa_.transitions[s]) {
          if (label == kInvalidLabel || label == e.label) {
            add(e.att[0] * q + s, e.att[1] * q + t);
          }
        }
      }
      continue;
    }
    const auto& sk = skeletons_[grammar_->RuleIndex(e.label)];
    const uint32_t rank = static_cast<uint32_t>(e.att.size());
    for (uint32_t r = 0; r < rank * q; ++r) {
      uint32_t p = r / q, s = r % q;
      for (uint32_t c = 0; c < rank * q; ++c) {
        if (r == c) continue;
        if ((sk[r][c / 64] >> (c % 64)) & 1) {
          uint32_t p2 = c / q, s2 = c % q;
          add(e.att[p] * q + s, e.att[p2] * q + s2);
        }
      }
    }
  }
  return adj;
}

namespace {

std::vector<char> Bfs(const std::vector<std::vector<uint32_t>>& adj,
                      const std::vector<uint32_t>& seeds) {
  std::vector<char> reached(adj.size(), 0);
  std::vector<uint32_t> stack;
  for (uint32_t s : seeds) {
    if (!reached[s]) {
      reached[s] = 1;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    uint32_t v = stack.back();
    stack.pop_back();
    for (uint32_t u : adj[v]) {
      if (!reached[u]) {
        reached[u] = 1;
        stack.push_back(u);
      }
    }
  }
  return reached;
}

}  // namespace

PathQueryIndex::PathQueryIndex(const SlhrGrammar& grammar, LabelNfa nfa)
    : grammar_(&grammar), node_map_(grammar), nfa_(std::move(nfa)) {
  const uint32_t q = nfa_.num_states;
  skeletons_.resize(grammar.num_rules());
  for (uint32_t j = 0; j < grammar.num_rules(); ++j) {
    const Hypergraph& rhs = grammar.rhs_by_index(j);
    auto adj = ProductAdjacency(rhs, false);
    uint32_t rank = static_cast<uint32_t>(rhs.ext().size());
    uint32_t dims = rank * q;
    skeletons_[j].assign(dims,
                         std::vector<uint64_t>((dims + 63) / 64, 0));
    for (uint32_t r = 0; r < dims; ++r) {
      uint32_t p = r / q, s = r % q;
      auto reached = Bfs(adj, {p * q + s});
      for (uint32_t c = 0; c < dims; ++c) {
        uint32_t p2 = c / q, s2 = c % q;
        if (reached[p2 * q + s2]) {
          skeletons_[j][r][c / 64] |= 1ull << (c % 64);
        }
      }
    }
  }
  start_fwd_ = ProductAdjacency(grammar.start(), false);
  start_bwd_ = ProductAdjacency(grammar.start(), true);
}

bool PathQueryIndex::Matches(uint64_t from, uint64_t to) const {
  if (from == to && nfa_.AcceptsEmpty()) return true;
  const uint32_t q = nfa_.num_states;
  GPath pu = node_map_.PathOf(from);
  GPath pv = node_map_.PathOf(to);

  struct Chain {
    std::vector<std::vector<char>> levels;  // innermost first
    std::vector<char> s_reached;
  };
  // backward=false: forward reach from (u, start state).
  // backward=true: co-reach of (v, any accepting state).
  auto build = [&](const GPath& path, bool backward) {
    Chain chain;
    std::vector<uint32_t> seeds;
    auto seed_states = [&](NodeId node, auto push) {
      if (backward) {
        for (uint32_t s = 0; s < q; ++s) {
          if (nfa_.accepting[s]) push(node * q + s);
        }
      } else {
        push(node * q + nfa_.start);
      }
    };
    if (path.start_edge == kInvalidEdge) {
      seed_states(path.node,
                  [&](uint32_t x) { seeds.push_back(x); });
    } else {
      std::vector<Label> labels;
      Label label = grammar_->start().edge(path.start_edge).label;
      labels.push_back(label);
      for (uint32_t step : path.steps) {
        label = grammar_->rhs(label).edge(step).label;
        labels.push_back(label);
      }
      seed_states(path.node,
                  [&](uint32_t x) { seeds.push_back(x); });
      for (size_t i = labels.size(); i-- > 0;) {
        const Hypergraph& rhs = grammar_->rhs(labels[i]);
        auto adj = ProductAdjacency(rhs, backward);
        auto reached = Bfs(adj, seeds);
        const HEdge& edge =
            i == 0 ? grammar_->start().edge(path.start_edge)
                   : grammar_->rhs(labels[i - 1]).edge(path.steps[i - 1]);
        seeds.clear();
        for (uint32_t p = 0; p < rhs.ext().size(); ++p) {
          for (uint32_t s = 0; s < q; ++s) {
            if (reached[p * q + s]) {
              seeds.push_back(edge.att[p] * q + s);
            }
          }
        }
        chain.levels.push_back(std::move(reached));
      }
    }
    chain.s_reached = Bfs(backward ? start_bwd_ : start_fwd_, seeds);
    return chain;
  };

  Chain cu = build(pu, false);
  Chain cv = build(pv, true);

  for (size_t x = 0; x < cu.s_reached.size(); ++x) {
    if (cu.s_reached[x] && cv.s_reached[x]) return true;
  }
  if (pu.start_edge != kInvalidEdge && pu.start_edge == pv.start_edge) {
    size_t lcp = 0;
    while (lcp < pu.steps.size() && lcp < pv.steps.size() &&
           pu.steps[lcp] == pv.steps[lcp]) {
      ++lcp;
    }
    size_t common = 1 + lcp;
    size_t depth_u = 1 + pu.steps.size();
    size_t depth_v = 1 + pv.steps.size();
    for (size_t level = common; level >= 1; --level) {
      const auto& ru = cu.levels[depth_u - level];
      const auto& rv = cv.levels[depth_v - level];
      assert(ru.size() == rv.size());
      for (size_t x = 0; x < ru.size(); ++x) {
        if (ru[x] && rv[x]) return true;
      }
    }
  }
  return false;
}

}  // namespace grepair
