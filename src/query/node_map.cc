#include "src/query/node_map.h"

#include <cassert>

namespace grepair {

NodeMap::NodeMap(const SlhrGrammar& grammar)
    : grammar_(&grammar), gen_(ComputeGeneratedSizes(grammar)) {
  const Hypergraph& start = grammar.start();
  std::vector<uint64_t> start_prefix(start.num_edges() + 1);
  uint64_t acc = start.num_nodes();
  for (EdgeId e = 0; e < start.num_edges(); ++e) {
    start_prefix[e] = acc;
    Label l = start.edge(e).label;
    if (grammar.IsNonterminal(l)) {
      acc += gen_.gen_nodes[grammar.RuleIndex(l)];
    }
  }
  start_prefix[start.num_edges()] = acc;
  total_nodes_ = acc;
  start_prefix_ = EliasFanoIndex(start_prefix);

  rule_child_prefix_.reserve(grammar.num_rules());
  std::vector<uint64_t> prefix;
  for (uint32_t j = 0; j < grammar.num_rules(); ++j) {
    const Hypergraph& rhs = grammar.rhs_by_index(j);
    prefix.assign(rhs.num_edges() + 1, 0);
    uint64_t sum = 0;
    for (EdgeId e = 0; e < rhs.num_edges(); ++e) {
      prefix[e] = sum;
      Label l = rhs.edge(e).label;
      if (grammar.IsNonterminal(l)) {
        sum += gen_.gen_nodes[grammar.RuleIndex(l)];
      }
    }
    prefix[rhs.num_edges()] = sum;
    rule_child_prefix_.emplace_back(prefix);
  }
}

GPath NodeMap::PathOf(uint64_t id) const {
  assert(id < total_nodes_);
  GPath path;
  const Hypergraph& start = grammar_->start();
  if (id < start.num_nodes()) {
    path.node = static_cast<NodeId>(id);
    return path;
  }
  // Succinct predecessor: last start edge whose block base is <= id.
  // The sentinel (total) is never picked because id < total_nodes_,
  // and id >= |V_S| = start_prefix[0] guarantees a predecessor exists.
  size_t e_idx = 0;
  uint64_t base = 0;
  bool found = start_prefix_.PredecessorOrEqual(id, &e_idx, &base);
  assert(found);
  (void)found;
  EdgeId e = static_cast<EdgeId>(e_idx);
  path.start_edge = e;
  uint64_t offset = id - base;

  Label label = start.edge(e).label;
  for (;;) {
    uint32_t j = grammar_->RuleIndex(label);
    const Hypergraph& rhs = grammar_->rhs_by_index(j);
    uint64_t internal = rhs.num_nodes() - rhs.ext().size();
    if (offset < internal) {
      // Internal node: canonical ids put internals after the rank
      // externals.
      path.node = static_cast<NodeId>(rhs.ext().size() + offset);
      return path;
    }
    offset -= internal;
    // offset < sum of child blocks here, so the sentinel entry is
    // never the predecessor and a child always exists (prefix[0] == 0).
    size_t child_idx = 0;
    uint64_t child_base = 0;
    bool ok =
        rule_child_prefix_[j].PredecessorOrEqual(offset, &child_idx, &child_base);
    assert(ok);
    (void)ok;
    EdgeId child = static_cast<EdgeId>(child_idx);
    path.steps.push_back(child);
    offset -= child_base;
    label = rhs.edge(child).label;
    assert(grammar_->IsNonterminal(label));
  }
}

uint64_t NodeMap::IdOf(const GPath& path) const {
  const Hypergraph& start = grammar_->start();
  if (path.start_edge == kInvalidEdge) {
    return path.node;
  }
  uint64_t id = start_prefix_.Get(path.start_edge);
  Label label = start.edge(path.start_edge).label;
  for (uint32_t step : path.steps) {
    uint32_t j = grammar_->RuleIndex(label);
    const Hypergraph& rhs = grammar_->rhs_by_index(j);
    id += rhs.num_nodes() - rhs.ext().size();
    id += rule_child_prefix_[j].Get(step);
    label = rhs.edge(step).label;
  }
  const Hypergraph& rhs = grammar_->rhs(label);
  assert(path.node >= rhs.ext().size() && path.node < rhs.num_nodes());
  id += path.node - rhs.ext().size();
  return id;
}

}  // namespace grepair
