#include "src/query/node_map.h"

#include <algorithm>
#include <cassert>

namespace grepair {

NodeMap::NodeMap(const SlhrGrammar& grammar)
    : grammar_(&grammar), gen_(ComputeGeneratedSizes(grammar)) {
  const Hypergraph& start = grammar.start();
  start_prefix_.resize(start.num_edges() + 1);
  uint64_t acc = start.num_nodes();
  for (EdgeId e = 0; e < start.num_edges(); ++e) {
    start_prefix_[e] = acc;
    Label l = start.edge(e).label;
    if (grammar.IsNonterminal(l)) {
      acc += gen_.gen_nodes[grammar.RuleIndex(l)];
    }
  }
  start_prefix_[start.num_edges()] = acc;
  total_nodes_ = acc;

  rule_child_prefix_.resize(grammar.num_rules());
  for (uint32_t j = 0; j < grammar.num_rules(); ++j) {
    const Hypergraph& rhs = grammar.rhs_by_index(j);
    auto& prefix = rule_child_prefix_[j];
    prefix.resize(rhs.num_edges() + 1);
    uint64_t sum = 0;
    for (EdgeId e = 0; e < rhs.num_edges(); ++e) {
      prefix[e] = sum;
      Label l = rhs.edge(e).label;
      if (grammar.IsNonterminal(l)) {
        sum += gen_.gen_nodes[grammar.RuleIndex(l)];
      }
    }
    prefix[rhs.num_edges()] = sum;
  }
}

GPath NodeMap::PathOf(uint64_t id) const {
  assert(id < total_nodes_);
  GPath path;
  const Hypergraph& start = grammar_->start();
  if (id < start.num_nodes()) {
    path.node = static_cast<NodeId>(id);
    return path;
  }
  // Binary search: last start edge whose block base is <= id.
  auto it = std::upper_bound(start_prefix_.begin(), start_prefix_.end(), id);
  EdgeId e = static_cast<EdgeId>(it - start_prefix_.begin()) - 1;
  path.start_edge = e;
  uint64_t offset = id - start_prefix_[e];

  Label label = start.edge(e).label;
  for (;;) {
    uint32_t j = grammar_->RuleIndex(label);
    const Hypergraph& rhs = grammar_->rhs_by_index(j);
    uint64_t internal = rhs.num_nodes() - rhs.ext().size();
    if (offset < internal) {
      // Internal node: canonical ids put internals after the rank
      // externals.
      path.node = static_cast<NodeId>(rhs.ext().size() + offset);
      return path;
    }
    offset -= internal;
    const auto& prefix = rule_child_prefix_[j];
    auto cit = std::upper_bound(prefix.begin(), prefix.end(), offset);
    EdgeId child = static_cast<EdgeId>(cit - prefix.begin()) - 1;
    path.steps.push_back(child);
    offset -= prefix[child];
    label = rhs.edge(child).label;
    assert(grammar_->IsNonterminal(label));
  }
}

uint64_t NodeMap::IdOf(const GPath& path) const {
  const Hypergraph& start = grammar_->start();
  if (path.start_edge == kInvalidEdge) {
    return path.node;
  }
  uint64_t id = start_prefix_[path.start_edge];
  Label label = start.edge(path.start_edge).label;
  for (uint32_t step : path.steps) {
    uint32_t j = grammar_->RuleIndex(label);
    const Hypergraph& rhs = grammar_->rhs_by_index(j);
    id += rhs.num_nodes() - rhs.ext().size();
    id += rule_child_prefix_[j][step];
    label = rhs.edge(step).label;
  }
  const Hypergraph& rhs = grammar_->rhs(label);
  assert(path.node >= rhs.ext().size() && path.node < rhs.num_nodes());
  id += path.node - rhs.ext().size();
  return id;
}

}  // namespace grepair
