// grepair — command-line driver for the library.
//
// Usage:
//   grepair compress <in.graph> <out.grg> [--order KIND] [--max-rank N]
//           [--no-prune] [--no-virtual] [--mapping out.map]
//   grepair decompress <in.grg> <out.graph> [--mapping in.map]
//   grepair stats <in.grg>
//   grepair reach <in.grg> <from> <to>
//   grepair neighbors <in.grg> <node>
//   grepair components <in.grg>
//   grepair gen <kind> <out.graph> [size]
//
// Graph files use the native text format of src/graph/graph_io.h; .grg
// files are the paper's binary grammar format. `gen` kinds: er, ba,
// coauth, rdf-types, rdf-entities, copies, dblp.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/datasets/generators.h"
#include "src/encoding/grammar_coder.h"
#include "src/graph/graph_io.h"
#include "src/grepair/compressor.h"
#include "src/query/neighborhood.h"
#include "src/query/reachability.h"
#include "src/query/speedup.h"

using namespace grepair;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: grepair <command> ...\n"
      "  compress <in.graph> <out.grg> [--order natural|bfs|dfs|random|"
      "fp0|fp] [--max-rank N] [--no-prune] [--no-virtual] "
      "[--mapping out.map]\n"
      "  decompress <in.grg> <out.graph> [--mapping in.map]\n"
      "  stats <in.grg>\n"
      "  reach <in.grg> <from> <to>\n"
      "  neighbors <in.grg> <node>\n"
      "  components <in.grg>\n"
      "  gen <er|ba|coauth|rdf-types|rdf-entities|copies|dblp> "
      "<out.graph> [size]\n");
  return 2;
}

bool WriteBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

bool ReadBytes(const std::string& path, std::vector<uint8_t>* bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  bytes->assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  return true;
}

Result<SlhrGrammar> LoadGrammar(const std::string& path) {
  std::vector<uint8_t> bytes;
  if (!ReadBytes(path, &bytes)) {
    return Status::NotFound("cannot read " + path);
  }
  return DecodeGrammar(bytes);
}

int CmdCompress(int argc, char** argv) {
  if (argc < 4) return Usage();
  CompressOptions options;
  std::string mapping_path;
  for (int i = 4; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--order" && i + 1 < argc) {
      if (!ParseNodeOrderKind(argv[++i], &options.node_order)) {
        std::fprintf(stderr, "unknown order %s\n", argv[i]);
        return 2;
      }
    } else if (arg == "--max-rank" && i + 1 < argc) {
      options.max_rank = std::atoi(argv[++i]);
    } else if (arg == "--no-prune") {
      options.prune = false;
    } else if (arg == "--no-virtual") {
      options.connect_components = false;
    } else if (arg == "--mapping" && i + 1 < argc) {
      mapping_path = argv[++i];
      options.track_node_mapping = true;
    } else {
      return Usage();
    }
  }
  auto loaded = LoadGraphText(argv[2]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  auto result =
      Compress(loaded.value().graph, loaded.value().alphabet, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  EncodeStats stats;
  auto bytes = EncodeGrammar(result.value().grammar, &stats);
  if (!WriteBytes(argv[3], bytes)) {
    std::fprintf(stderr, "cannot write %s\n", argv[3]);
    return 1;
  }
  if (!mapping_path.empty()) {
    auto map_bytes =
        EncodeNodeMapping(result.value().grammar, result.value().mapping);
    if (!WriteBytes(mapping_path, map_bytes)) {
      std::fprintf(stderr, "cannot write %s\n", mapping_path.c_str());
      return 1;
    }
  }
  std::printf("%u edges -> %zu bytes (%.3f bpe), %u rules\n",
              loaded.value().graph.num_edges(), bytes.size(),
              BitsPerEdge(bytes.size(), loaded.value().graph.num_edges()),
              result.value().grammar.num_rules());
  return 0;
}

int CmdDecompress(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string mapping_path;
  for (int i = 4; i < argc; ++i) {
    if (std::string(argv[i]) == "--mapping" && i + 1 < argc) {
      mapping_path = argv[++i];
    } else {
      return Usage();
    }
  }
  auto grammar = LoadGrammar(argv[2]);
  if (!grammar.ok()) {
    std::fprintf(stderr, "%s\n", grammar.status().ToString().c_str());
    return 1;
  }
  Result<Hypergraph> graph = Status::OK();
  if (mapping_path.empty()) {
    graph = Derive(grammar.value());
  } else {
    std::vector<uint8_t> map_bytes;
    if (!ReadBytes(mapping_path, &map_bytes)) {
      std::fprintf(stderr, "cannot read %s\n", mapping_path.c_str());
      return 1;
    }
    auto mapping = DecodeNodeMapping(grammar.value(), map_bytes);
    if (!mapping.ok()) {
      std::fprintf(stderr, "%s\n", mapping.status().ToString().c_str());
      return 1;
    }
    graph = DeriveOriginal(grammar.value(), mapping.value());
  }
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  // Reconstruct a terminal-only alphabet for saving.
  Alphabet terminals;
  for (Label l = 0; l < grammar.value().num_terminals(); ++l) {
    terminals.Add(grammar.value().alphabet().name(l),
                  grammar.value().alphabet().rank(l));
  }
  auto status = SaveGraphText(graph.value(), terminals, argv[3]);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %u nodes, %u edges\n", graph.value().num_nodes(),
              graph.value().num_edges());
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto grammar = LoadGrammar(argv[2]);
  if (!grammar.ok()) {
    std::fprintf(stderr, "%s\n", grammar.status().ToString().c_str());
    return 1;
  }
  auto s = ComputeGrammarStats(grammar.value());
  std::printf("rules:            %u\n", s.num_rules);
  std::printf("height:           %u\n", s.height);
  std::printf("max NT rank:      %u\n", s.max_nonterminal_rank);
  std::printf("|G| (rules):      %llu\n",
              static_cast<unsigned long long>(s.rule_size));
  std::printf("|S| (start):      %llu (%u nodes, %u edges)\n",
              static_cast<unsigned long long>(s.start_size), s.start_nodes,
              s.start_edges);
  std::printf("val(G):           %llu nodes, %llu edges\n",
              static_cast<unsigned long long>(ValNodeCount(grammar.value())),
              static_cast<unsigned long long>(ValEdgeCount(grammar.value())));
  return 0;
}

int CmdReach(int argc, char** argv) {
  if (argc < 5) return Usage();
  auto grammar = LoadGrammar(argv[2]);
  if (!grammar.ok()) {
    std::fprintf(stderr, "%s\n", grammar.status().ToString().c_str());
    return 1;
  }
  ReachabilityIndex index(grammar.value());
  uint64_t from = std::strtoull(argv[3], nullptr, 10);
  uint64_t to = std::strtoull(argv[4], nullptr, 10);
  if (from >= index.node_map().num_nodes() ||
      to >= index.node_map().num_nodes()) {
    std::fprintf(stderr, "node out of range (val has %llu nodes)\n",
                 static_cast<unsigned long long>(
                     index.node_map().num_nodes()));
    return 1;
  }
  std::printf("%llu -> %llu: %s\n",
              static_cast<unsigned long long>(from),
              static_cast<unsigned long long>(to),
              index.Reachable(from, to) ? "reachable" : "not reachable");
  return 0;
}

int CmdNeighbors(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto grammar = LoadGrammar(argv[2]);
  if (!grammar.ok()) {
    std::fprintf(stderr, "%s\n", grammar.status().ToString().c_str());
    return 1;
  }
  NeighborhoodIndex index(grammar.value());
  uint64_t node = std::strtoull(argv[3], nullptr, 10);
  if (node >= index.node_map().num_nodes()) {
    std::fprintf(stderr, "node out of range\n");
    return 1;
  }
  auto out = index.OutNeighbors(node);
  auto in = index.InNeighbors(node);
  std::printf("out (%zu):", out.size());
  for (uint64_t v : out) std::printf(" %llu", (unsigned long long)v);
  std::printf("\nin  (%zu):", in.size());
  for (uint64_t v : in) std::printf(" %llu", (unsigned long long)v);
  std::printf("\n");
  return 0;
}

int CmdComponents(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto grammar = LoadGrammar(argv[2]);
  if (!grammar.ok()) {
    std::fprintf(stderr, "%s\n", grammar.status().ToString().c_str());
    return 1;
  }
  std::printf("%llu connected components\n",
              static_cast<unsigned long long>(
                  CountConnectedComponents(grammar.value())));
  return 0;
}

int CmdGen(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string kind = argv[2];
  uint32_t size = argc >= 5 ? static_cast<uint32_t>(std::atoi(argv[4])) : 0;
  GeneratedGraph g;
  if (kind == "er") {
    uint32_t n = size ? size : 1000;
    g = ErdosRenyi(n, n * 4, 1);
  } else if (kind == "ba") {
    g = BarabasiAlbert(size ? size : 1000, 4, 1);
  } else if (kind == "coauth") {
    uint32_t n = size ? size : 1000;
    g = CoAuthorship(n, n * 3 / 2, 1);
  } else if (kind == "rdf-types") {
    g = RdfTypes(size ? size : 10000, 50, 1);
  } else if (kind == "rdf-entities") {
    g = RdfEntities(size ? size : 2000, 12, 100, 1);
  } else if (kind == "copies") {
    g = DisjointCopies(CycleWithDiagonal(), size ? size : 256, "copies");
  } else if (kind == "dblp") {
    g = DblpVersions(size ? size : 8, 200, 100, 1, "dblp");
  } else {
    return Usage();
  }
  auto status = SaveGraphText(g.graph, g.alphabet, argv[3]);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %u nodes, %u edges, %zu labels\n", argv[3],
              g.graph.num_nodes(), g.graph.num_edges(), g.alphabet.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "compress") return CmdCompress(argc, argv);
  if (cmd == "decompress") return CmdDecompress(argc, argv);
  if (cmd == "stats") return CmdStats(argc, argv);
  if (cmd == "reach") return CmdReach(argc, argv);
  if (cmd == "neighbors") return CmdNeighbors(argc, argv);
  if (cmd == "components") return CmdComponents(argc, argv);
  if (cmd == "gen") return CmdGen(argc, argv);
  return Usage();
}
