// grepair — command-line driver for the library.
//
// Usage:
//   grepair compress <in.graph> <out> [--backend NAME]
//           [--options k=v,...] [--shards K] [--threads T]
//           [--strategy edge-range|bfs] [--container v1|v2]
//           [--order KIND] [--max-rank N]
//           [--no-prune] [--no-virtual] [--mapping out.map]
//   grepair decompress <in> <out.graph> [--mapping in.map] [--threads T]
//   grepair bench --backend NAME|all --gen KIND [--size N]
//           [--options k=v,...] [--shards K] [--threads T]
//           [--strategy edge-range|bfs]
//   grepair backends
//   grepair query <in>|--remote host:port[/corpus] [--nodes 1,2,3]
//           [--pairs 1:2,3:4] [--batch] [--cache-bytes N] [--threads T]
//           [--prefetch P] [--pool N] [--ssd-cache DIR]
//           [--ssd-cache-bytes N] [--delta file.grs3]...
//   grepair append <base> [chain.grs3]... --edits <file> -o <out.grs3>
//           [--fold-budget BYTES]
//   grepair diff <base> <delta.grs3>...
//   grepair serve [<file>|<dir>]... [--corpus name=path]
//           [--host H] [--port P]
//   grepair info <in> | info --remote host:port[/corpus]
//   grepair stats <in.grg>
//   grepair reach <in.grg> <from> <to>
//   grepair neighbors <in.grg> <node>
//   grepair components <in.grg>
//   grepair gen <kind> <out.graph> [size]
//
// Every compressor in the repo sits behind the GraphCodec registry
// (src/api/): `--backend` selects one ("grepair", "k2", "hn", "lm",
// "repair-adj", "deflate", or a sharded meta-variant
// "sharded:<inner>"; see `grepair backends`), `--options` passes
// codec-specific key=value options, and `bench` runs any backend (or
// all of them) over any generated dataset with a round-trip check.
// `--shards`/`--threads`/`--strategy` rewrite the backend to its
// sharded variant (src/shard/); `decompress --threads` parallelizes
// sharded containers. Backend output files carry a small container
// header naming the codec, so `decompress` routes automatically;
// without --backend, compress writes the paper's raw .grg binary
// grammar format as before. Graph files use the native text format of
// src/graph/graph_io.h. `gen` kinds: er, ba, coauth, rdf-types,
// rdf-entities, copies, dblp.
//
// `query` answers neighbor/reachability queries on a compressed file
// without decompressing it: --nodes asks for out-neighbors, --pairs
// for reachability, --batch switches to the batched entry points
// (shard-parallel on sharded containers), --cache-bytes/--threads tune
// the sharded query cache and pool, --prefetch starts a background
// pool that warms the shards batches touch. Raw .grg grammars are
// queried through the grepair backend. A query-stats line (cache
// hits/misses, shard decodes/faults, memo-table sizes) is printed at
// the end.
//
// Zero-copy storage: every compressed file is opened via mmap, and
// sharded backends write the GRSHARD2 footer-directory container by
// default (`--container v1` forces the legacy eager layout), so
// `decompress`/`query` on a v2 container materialize only the shards
// they touch. `info` prints a container's directory — backend, shard
// offsets/lengths/checksums — without decoding a single shard.
//
// Versioned corpora: `append` replays a text edit stream (`a u v
// [label]` / `d u v`, '#' comments) against a GRSHARD2 base (plus any
// earlier deltas) and writes a GRSHARD3 delta container — changed
// shards and residual overlay runs only, chained to the base by
// content hash. `query --delta` (repeatable) opens base + chain via
// api::OpenVersioned, verifying lineage before anything is trusted;
// it composes with --remote, where the deltas are read locally and
// applied over the served base. `diff` prints each delta's size,
// changed-shard count, and edit counts against the full base reship.
//
// Remote serving: `serve` exports GRSHARD2 containers over TCP (the
// GRNF v2 frame protocol of src/net/ + src/serve/). One server hosts
// many corpora: `--corpus name=path` registers each explicitly, and a
// bare directory argument auto-discovers every servable container in
// it (named by file basename). `query --remote host:port/corpus` runs
// the exact same query paths against a served corpus — cold shards
// fault across the connection pool (`--pool`), optionally through a
// checksummed local SSD shard cache (`--ssd-cache`), and the answers
// are byte-identical to a local open of the same file. `info --remote`
// asks a running server for its per-corpus serving stats and hot-shard
// histograms over the GRNF STATS verb.

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>

#include "src/api/grepair_api.h"
#include "src/encoding/grammar_coder.h"
#include "src/grepair/compressor.h"
#include "src/query/neighborhood.h"
#include "src/query/reachability.h"
#include "src/query/speedup.h"
#include "src/serve/pool.h"
#include "src/serve/registry.h"
#include "src/serve/server.h"
#include "src/serve/stats.h"
#include "src/util/hashing.h"

using namespace grepair;

namespace {

int Usage() {
  std::string backends;
  for (const auto& name : api::CodecRegistry::Names()) {
    if (!backends.empty()) backends += "|";
    backends += name;
  }
  std::fprintf(
      stderr,
      "usage: grepair <command> ...\n"
      "  compress <in.graph> <out> [--backend %s]\n"
      "           [--options k=v,...] [--shards K] [--threads T]\n"
      "           [--strategy edge-range|bfs] [--container v1|v2]\n"
      "           [--order natural|bfs|dfs|random|"
      "fp0|fp] [--max-rank N]\n"
      "           [--no-prune] [--no-virtual] [--mapping out.map]\n"
      "  decompress <in> <out.graph> [--mapping in.map] [--threads T]\n"
      "  bench --backend NAME|all --gen KIND [--size N] "
      "[--options k=v,...]\n"
      "        [--shards K] [--threads T] [--strategy edge-range|bfs]\n"
      "  backends\n"
      "  query <in>|--remote host:port[/corpus] [--nodes 1,2,3]\n"
      "        [--pairs 1:2,3:4] [--batch] [--cache-bytes N] [--threads T]\n"
      "        [--prefetch P] [--pool N] [--ssd-cache DIR]\n"
      "        [--ssd-cache-bytes N] [--replica host:port]...\n"
      "        [--pin-bytes N] [--warm-from-histogram 0|1]\n"
      "        [--delta file.grs3]...\n"
      "  append <base> [chain.grs3]... --edits <file> -o <out.grs3>\n"
      "         [--fold-budget BYTES]\n"
      "  diff <base> <delta.grs3>...\n"
      "  serve [<file>|<dir>]... [--corpus name=path] [--host H] "
      "[--port P]\n"
      "        [--pin-bytes N]\n"
      "  info <in> | info --remote host:port[/corpus]\n"
      "  stats <in.grg>\n"
      "  reach <in.grg> <from> <to>\n"
      "  neighbors <in.grg> <node>\n"
      "  components <in.grg>\n"
      "  gen <er|ba|coauth|rdf-types|rdf-entities|copies|dblp> "
      "<out.graph> [size]\n",
      backends.c_str());
  return 2;
}

// All file loading routes through the zero-copy storage layer:
// MmapFile + ByteSource give Status errors naming the path and byte
// offset instead of the old unchecked ifstream slurp.
bool WriteBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  auto status = WriteFileBytes(path, bytes);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return false;
  }
  return true;
}

Result<SlhrGrammar> LoadGrammar(const std::string& path) {
  auto file = MmapFile::Open(path);
  if (!file.ok()) return file.status();
  return DecodeGrammar(file.value()->span());
}

// Sharding knobs shared by compress and bench: --shards/--threads/
// --strategy rewrite `backend` to its sharded:<inner> variant and land
// in `options` as codec options. Returns false (after printing) on a
// bad combination.
struct ShardFlags {
  int shards = 0;            // 0 = not requested
  int threads = 0;           // 0 = not requested
  std::string strategy;      // empty = not requested
};

// Strictly positive integer flag value; atoi would silently turn
// "--shards abc" into an unsharded run and "--shards -8" into the
// default shard count. `max` matches the codec's own validation so
// out-of-range values fail fast here instead of deep in Compress.
bool ParseCountFlag(const char* flag, const char* text, int max, int* out) {
  char* end = nullptr;
  long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 1 || value > max) {
    std::fprintf(stderr, "%s expects an integer in [1, %d], got '%s'\n",
                 flag, max, text);
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

constexpr int kMaxShards = shard::kMaxShards;
constexpr int kMaxThreads = 256;  // ParallelCompressor's clamp

// Consumes one --shards/--threads/--strategy argument pair shared by
// CmdCompress and CmdBench (one parser, so the two commands cannot
// drift apart). Advances *i past the flag's value on a match.
enum class ShardFlagParse { kNoMatch, kOk, kError };

ShardFlagParse MatchShardFlag(const std::string& arg, int argc, char** argv,
                              int* i, ShardFlags* flags) {
  if (arg == "--shards" && *i + 1 < argc) {
    return ParseCountFlag("--shards", argv[++*i], kMaxShards,
                          &flags->shards)
               ? ShardFlagParse::kOk
               : ShardFlagParse::kError;
  }
  if (arg == "--threads" && *i + 1 < argc) {
    return ParseCountFlag("--threads", argv[++*i], kMaxThreads,
                          &flags->threads)
               ? ShardFlagParse::kOk
               : ShardFlagParse::kError;
  }
  if (arg == "--strategy" && *i + 1 < argc) {
    flags->strategy = argv[++*i];
    return ShardFlagParse::kOk;
  }
  return ShardFlagParse::kNoMatch;
}

bool ApplyShardFlags(const ShardFlags& flags, std::string* backend,
                     api::CodecOptions* options) {
  if (flags.shards == 0 && flags.threads == 0 && flags.strategy.empty()) {
    return true;
  }
  if (backend->empty()) {
    std::fprintf(stderr,
                 "--shards/--threads/--strategy require --backend\n");
    return false;
  }
  if (backend->rfind("sharded:", 0) != 0) {
    *backend = "sharded:" + *backend;
  }
  if (flags.shards > 0) options->Set("shards", std::to_string(flags.shards));
  if (flags.threads > 0) {
    options->Set("threads", std::to_string(flags.threads));
  }
  if (!flags.strategy.empty()) options->Set("strategy", flags.strategy);
  return true;
}

int CompressWithBackend(std::string backend, const std::string& option_spec,
                        const ShardFlags& shard_flags,
                        const std::string& container_version,
                        const char* in_path, const char* out_path) {
  auto loaded = LoadGraphText(in_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  auto options = api::CodecOptions::Parse(option_spec);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return 1;
  }
  if (!ApplyShardFlags(shard_flags, &backend, &options.value())) return 2;
  auto codec = api::CodecRegistry::Create(backend);
  if (!codec.ok()) {
    std::fprintf(stderr, "%s\n", codec.status().ToString().c_str());
    return 1;
  }
  auto rep = codec.value()->Compress(loaded.value().graph,
                                     loaded.value().alphabet,
                                     options.value());
  if (!rep.ok()) {
    std::fprintf(stderr, "%s\n", rep.status().ToString().c_str());
    return 1;
  }
  // Sharded backends default to the GRSHARD2 footer container so the
  // file opens lazily; --container v1 forces the legacy eager layout.
  // Single-shard codecs only have one serialized form.
  std::vector<uint8_t> payload;
  const char* layout = "";
  auto* sharded = dynamic_cast<shard::ShardedRep*>(rep.value().get());
  if (sharded != nullptr && container_version != "v1") {
    payload = sharded->SerializeV2();
    layout = ", GRSHARD2 lazy container";
  } else {
    if (sharded == nullptr && !container_version.empty()) {
      std::fprintf(stderr,
                   "note: --container only affects sharded backends; "
                   "'%s' has a single serialized form\n",
                   backend.c_str());
    }
    payload = rep.value()->Serialize();
  }
  auto bytes = api::WrapCodecPayload(backend, payload);
  if (!WriteBytes(out_path, bytes)) return 1;
  std::printf("[%s] %u edges -> %zu bytes on disk (%.3f bpe as measured "
              "by the bench tables%s)\n",
              backend.c_str(), loaded.value().graph.num_edges(),
              bytes.size(),
              BitsPerEdge(rep.value()->ByteSize(),
                          loaded.value().graph.num_edges()),
              layout);
  return 0;
}

int CmdCompress(int argc, char** argv) {
  if (argc < 4) return Usage();
  CompressOptions options;
  std::string mapping_path;
  std::string backend;
  std::string option_spec;
  std::string container_version;
  ShardFlags shard_flags;
  bool legacy_flags = false;
  for (int i = 4; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--backend" && i + 1 < argc) {
      backend = argv[++i];
    } else if (arg == "--options" && i + 1 < argc) {
      option_spec = argv[++i];
    } else if (arg == "--container" && i + 1 < argc) {
      container_version = argv[++i];
      if (container_version != "v1" && container_version != "v2") {
        std::fprintf(stderr, "--container expects v1 or v2, got '%s'\n",
                     container_version.c_str());
        return 2;
      }
    } else if (ShardFlagParse m =
                   MatchShardFlag(arg, argc, argv, &i, &shard_flags);
               m != ShardFlagParse::kNoMatch) {
      if (m == ShardFlagParse::kError) return 2;
    } else if (arg == "--order" && i + 1 < argc) {
      if (!ParseNodeOrderKind(argv[++i], &options.node_order)) {
        std::fprintf(stderr, "unknown order %s\n", argv[i]);
        return 2;
      }
      legacy_flags = true;
    } else if (arg == "--max-rank" && i + 1 < argc) {
      // [1, 63] mirrors Compress's own validation (compressor.cc).
      if (!ParseCountFlag("--max-rank", argv[++i], 63,
                          &options.max_rank)) {
        return 2;
      }
      legacy_flags = true;
    } else if (arg == "--no-prune") {
      options.prune = false;
      legacy_flags = true;
    } else if (arg == "--no-virtual") {
      options.connect_components = false;
      legacy_flags = true;
    } else if (arg == "--mapping" && i + 1 < argc) {
      mapping_path = argv[++i];
      options.track_node_mapping = true;
    } else {
      return Usage();
    }
  }
  if (!backend.empty()) {
    if (!mapping_path.empty()) {
      std::fprintf(stderr,
                   "--mapping is not used with --backend (the grepair "
                   "backend embeds the mapping in its output)\n");
      return 2;
    }
    if (legacy_flags) {
      std::fprintf(stderr,
                   "--order/--max-rank/--no-prune/--no-virtual are not "
                   "used with --backend; pass them via --options "
                   "(e.g. --options order=bfs,max-rank=3,prune=false,"
                   "virtual=false)\n");
      return 2;
    }
    return CompressWithBackend(backend, option_spec, shard_flags,
                               container_version, argv[2], argv[3]);
  }
  if (!container_version.empty()) {
    std::fprintf(stderr,
                 "--container requires --backend (the legacy path writes "
                 "raw .grg grammars)\n");
    return 2;
  }
  if (!option_spec.empty()) {
    std::fprintf(stderr,
                 "--options requires --backend (the legacy path takes "
                 "--order/--max-rank/... flags)\n");
    return 2;
  }
  if (shard_flags.shards != 0 || shard_flags.threads != 0 ||
      !shard_flags.strategy.empty()) {
    std::fprintf(stderr,
                 "--shards/--threads/--strategy require --backend "
                 "(e.g. --backend grepair --shards 8)\n");
    return 2;
  }
  auto loaded = LoadGraphText(argv[2]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  auto result =
      Compress(loaded.value().graph, loaded.value().alphabet, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  EncodeStats stats;
  auto bytes = EncodeGrammar(result.value().grammar, &stats);
  if (!WriteBytes(argv[3], bytes)) return 1;
  if (!mapping_path.empty()) {
    auto map_bytes =
        EncodeNodeMapping(result.value().grammar, result.value().mapping);
    if (!WriteBytes(mapping_path, map_bytes)) return 1;
  }
  std::printf("%u edges -> %zu bytes (%.3f bpe), %u rules\n",
              loaded.value().graph.num_edges(), bytes.size(),
              BitsPerEdge(bytes.size(), loaded.value().graph.num_edges()),
              result.value().grammar.num_rules());
  return 0;
}

// Minimal alphabet covering the labels a codec's Decompress emits
// (codec payloads do not carry label names).
Alphabet InferAlphabet(const Hypergraph& g) {
  Label max_label = 0;
  for (const auto& e : g.edges()) max_label = std::max(max_label, e.label);
  std::vector<int> ranks(g.num_edges() ? max_label + 1 : 0, 2);
  for (const auto& e : g.edges()) ranks[e.label] = e.rank();
  Alphabet alphabet;
  for (size_t l = 0; l < ranks.size(); ++l) {
    alphabet.Add("l" + std::to_string(l), ranks[l]);
  }
  return alphabet;
}

int DecompressWithBackend(const std::string& backend,
                          std::shared_ptr<MmapFile> file, ByteSpan payload,
                          int threads, const char* out_path) {
  auto codec = api::CodecRegistry::Create(backend);
  if (!codec.ok()) {
    std::fprintf(stderr, "%s\n", codec.status().ToString().c_str());
    return 1;
  }
  // OpenPayload keeps the mapping alive for reps that borrow from it;
  // a GRSHARD2 payload opens lazily and Decompress faults the shards
  // on the decompress thread pool.
  auto rep = codec.value()->OpenPayload(std::move(file), payload);
  if (!rep.ok()) {
    std::fprintf(stderr, "%s\n", rep.status().ToString().c_str());
    return 1;
  }
  if (threads > 1) {
    if (auto* sharded = dynamic_cast<shard::ShardedRep*>(rep.value().get())) {
      sharded->set_decompress_threads(threads);
    } else {
      std::fprintf(stderr,
                   "note: --threads only parallelizes sharded containers; "
                   "'%s' decompresses single-threaded\n",
                   backend.c_str());
    }
  }
  auto graph = rep.value()->Decompress();
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto status =
      SaveGraphText(graph.value(), InferAlphabet(graph.value()), out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("[%s] wrote %u nodes, %u edges\n", backend.c_str(),
              graph.value().num_nodes(), graph.value().num_edges());
  return 0;
}

int CmdDecompress(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string mapping_path;
  int threads = 0;
  for (int i = 4; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--mapping" && i + 1 < argc) {
      mapping_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      if (!ParseCountFlag("--threads", argv[++i], kMaxThreads, &threads)) return 2;
    } else {
      return Usage();
    }
  }
  auto file = MmapFile::Open(argv[2]);
  if (!file.ok()) {
    std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
    return 1;
  }
  ByteSpan bytes = file.value()->span();
  if (api::IsCodecContainer(bytes)) {
    std::string backend;
    ByteSpan payload;
    auto status = api::UnwrapCodecPayloadView(bytes, &backend, &payload);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[2], status.ToString().c_str());
      return 1;
    }
    if (!mapping_path.empty()) {
      std::fprintf(stderr,
                   "--mapping is not used with backend-tagged files "
                   "(any mapping is embedded in the payload)\n");
      return 2;
    }
    return DecompressWithBackend(backend, std::move(file).ValueOrDie(),
                                 payload, threads, argv[3]);
  }
  if (threads > 1) {
    std::fprintf(stderr,
                 "note: --threads only parallelizes sharded containers; "
                 "raw .grg grammars decompress single-threaded\n");
  }
  auto grammar = DecodeGrammar(bytes);
  if (!grammar.ok()) {
    std::fprintf(stderr, "%s\n", grammar.status().ToString().c_str());
    return 1;
  }
  Result<Hypergraph> graph = Status::Internal("graph not derived");
  if (mapping_path.empty()) {
    graph = Derive(grammar.value());
  } else {
    auto map_bytes = ReadFileBytes(mapping_path);
    if (!map_bytes.ok()) {
      std::fprintf(stderr, "%s\n", map_bytes.status().ToString().c_str());
      return 1;
    }
    auto mapping = DecodeNodeMapping(grammar.value(), map_bytes.value());
    if (!mapping.ok()) {
      std::fprintf(stderr, "%s\n", mapping.status().ToString().c_str());
      return 1;
    }
    graph = DeriveOriginal(grammar.value(), mapping.value());
  }
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  // Reconstruct a terminal-only alphabet for saving.
  Alphabet terminals;
  for (Label l = 0; l < grammar.value().num_terminals(); ++l) {
    terminals.Add(grammar.value().alphabet().name(l),
                  grammar.value().alphabet().rank(l));
  }
  auto status = SaveGraphText(graph.value(), terminals, argv[3]);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %u nodes, %u edges\n", graph.value().num_nodes(),
              graph.value().num_edges());
  return 0;
}

// Strict unsigned integer parse for query ids and byte budgets; atoi
// would silently accept "12abc" and negative values.
bool ParseU64(const std::string& text, uint64_t* out) {
  // Leading digit required: strtoull alone would accept whitespace,
  // '+' and (wrapping!) '-' prefixes.
  if (text.empty() || text[0] < '0' || text[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

// "1,2,3" -> ids. Malformed entries are a hard error, not a skip.
bool ParseNodeList(const std::string& spec, std::vector<uint64_t>* out) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    uint64_t v = 0;
    if (!ParseU64(spec.substr(pos, end - pos), &v)) {
      std::fprintf(stderr, "--nodes expects comma-separated ids, got '%s'\n",
                   spec.c_str());
      return false;
    }
    out->push_back(v);
    pos = end + 1;
  }
  return true;
}

// "1:2,3:4" -> (from, to) pairs.
bool ParsePairList(const std::string& spec,
                   std::vector<std::pair<uint64_t, uint64_t>>* out) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string item = spec.substr(pos, end - pos);
    size_t colon = item.find(':');
    uint64_t from = 0, to = 0;
    if (colon == std::string::npos ||
        !ParseU64(item.substr(0, colon), &from) ||
        !ParseU64(item.substr(colon + 1), &to)) {
      std::fprintf(stderr,
                   "--pairs expects comma-separated from:to pairs, got "
                   "'%s'\n",
                   spec.c_str());
      return false;
    }
    out->push_back({from, to});
    pos = end + 1;
  }
  return true;
}

void PrintNeighborLine(uint64_t node, const std::vector<uint64_t>& out) {
  std::printf("out[%llu] (%zu):", static_cast<unsigned long long>(node),
              out.size());
  for (uint64_t v : out) std::printf(" %llu", (unsigned long long)v);
  std::printf("\n");
}

// The query half of `query`, shared by local files and --remote reps:
// apply the sharded tuning knobs, run the node/pair queries (batched
// or not), print answers plus the query-stats line.
int RunQueries(std::unique_ptr<api::CompressedRep> rep,
               const std::string& backend,
               const std::vector<uint64_t>& nodes,
               const std::vector<std::pair<uint64_t, uint64_t>>& pairs,
               bool batch, int threads, bool have_cache_bytes,
               uint64_t cache_bytes, int prefetch, uint64_t pin_bytes) {
  if (auto* sharded = dynamic_cast<shard::ShardedRep*>(rep.get())) {
    if (threads > 1) sharded->set_query_threads(threads);
    if (have_cache_bytes) {
      sharded->set_query_cache_bytes(static_cast<size_t>(cache_bytes));
    }
    if (prefetch > 0) sharded->set_prefetch_threads(prefetch);
    if (pin_bytes > 0) {
      // Local opens have no histogram yet; pin in shard-id order until
      // the budget is spent (remote opens pin by the server histogram
      // inside OpenRemote instead).
      std::vector<size_t> ranked(sharded->num_shards());
      for (size_t s = 0; s < ranked.size(); ++s) ranked[s] = s;
      (void)sharded->ApplyPlacement(ranked, pin_bytes);
    }
  } else if (threads > 1 || have_cache_bytes || prefetch > 0 ||
             pin_bytes > 0) {
    std::fprintf(stderr,
                 "note: --threads/--cache-bytes/--prefetch tune sharded "
                 "containers; '%s' queries ignore them\n",
                 backend.c_str());
  }
  std::printf("[%s] %llu nodes\n", backend.c_str(),
              static_cast<unsigned long long>(rep->num_nodes()));

  if (!nodes.empty()) {
    if (batch) {
      auto results = rep->OutNeighborsBatch(nodes);
      if (!results.ok()) {
        std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
        return 1;
      }
      for (size_t j = 0; j < nodes.size(); ++j) {
        PrintNeighborLine(nodes[j], results.value()[j]);
      }
    } else {
      for (uint64_t node : nodes) {
        auto out = rep->OutNeighbors(node);
        if (!out.ok()) {
          std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
          return 1;
        }
        PrintNeighborLine(node, out.value());
      }
    }
  }
  if (!pairs.empty()) {
    std::vector<uint8_t> verdicts;
    if (batch) {
      auto results = rep->ReachableBatch(pairs);
      if (!results.ok()) {
        std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
        return 1;
      }
      verdicts = std::move(results).ValueOrDie();
    } else {
      for (const auto& [from, to] : pairs) {
        auto r = rep->Reachable(from, to);
        if (!r.ok()) {
          std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
          return 1;
        }
        verdicts.push_back(r.value() ? 1 : 0);
      }
    }
    for (size_t k = 0; k < pairs.size(); ++k) {
      std::printf("reach %llu -> %llu: %s\n",
                  static_cast<unsigned long long>(pairs[k].first),
                  static_cast<unsigned long long>(pairs[k].second),
                  verdicts[k] ? "yes" : "no");
    }
  }
  api::QueryStats stats = rep->query_stats();
  std::printf("stats: singles=%llu batch_calls=%llu batch_items=%llu "
              "cache_hits=%llu cache_misses=%llu shard_decodes=%llu "
              "evictions=%llu cache_bytes=%llu memo_entries=%llu "
              "memo_hits=%llu shard_faults=%llu prefetched=%llu "
              "bytes_hinted=%llu remote_fetches=%llu remote_bytes=%llu\n",
              (unsigned long long)stats.single_queries,
              (unsigned long long)stats.batch_calls,
              (unsigned long long)stats.batch_items,
              (unsigned long long)stats.cache_hits,
              (unsigned long long)stats.cache_misses,
              (unsigned long long)stats.shard_decodes,
              (unsigned long long)stats.cache_evictions,
              (unsigned long long)stats.cache_bytes_used,
              (unsigned long long)stats.memo_entries,
              (unsigned long long)stats.memo_hits,
              (unsigned long long)stats.shard_faults,
              (unsigned long long)stats.shards_prefetched,
              (unsigned long long)stats.bytes_hinted,
              (unsigned long long)stats.remote_fetches,
              (unsigned long long)stats.remote_bytes);
  // The serving-tier counters get their own line: pool dials/redials
  // and the SSD tier's hit/miss/eviction/corruption counts are zero
  // for purely local opens, and the warm-vs-remote split is the number
  // CI asserts on (an SSD-warm run must show remote_fetches=0).
  if (stats.pool_dials != 0 || stats.tier_warm_hits != 0 ||
      stats.tier_cold_fetches != 0 || stats.tier_corrupt_drops != 0) {
    std::printf("tier: pool_dials=%llu pool_redials=%llu "
                "pool_peak_in_flight=%llu tier_warm_hits=%llu "
                "tier_cold_fetches=%llu tier_evictions=%llu "
                "tier_corrupt_drops=%llu\n",
                (unsigned long long)stats.pool_dials,
                (unsigned long long)stats.pool_redials,
                (unsigned long long)stats.pool_peak_in_flight,
                (unsigned long long)stats.tier_warm_hits,
                (unsigned long long)stats.tier_cold_fetches,
                (unsigned long long)stats.tier_evictions,
                (unsigned long long)stats.tier_corrupt_drops);
  }
  // The placement/batched-IO counters likewise only appear when the
  // engine did something: pinned shards, io_uring rounds, or
  // off-affinity fetches.
  if (stats.shards_pinned != 0 || stats.pinned_bytes != 0 ||
      stats.uring_batches != 0 || stats.affinity_switches != 0) {
    std::printf("placement: shards_pinned=%llu pinned_bytes=%llu "
                "uring_batches=%llu affinity_switches=%llu\n",
                (unsigned long long)stats.shards_pinned,
                (unsigned long long)stats.pinned_bytes,
                (unsigned long long)stats.uring_batches,
                (unsigned long long)stats.affinity_switches);
  }
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 3) return Usage();
  // `query <file>` or `query --remote host:port`: same flags, same
  // query paths — only where cold shards fault from differs.
  std::string remote_spec;
  const char* in_path = argv[2];
  int flag_start = 3;
  if (std::strcmp(argv[2], "--remote") == 0) {
    if (argc < 4) return Usage();
    remote_spec = argv[3];
    in_path = nullptr;
    flag_start = 4;
  }
  std::string nodes_spec, pairs_spec;
  bool batch = false;
  int threads = 0;
  int prefetch = 0;
  bool have_cache_bytes = false;
  uint64_t cache_bytes = 0;
  uint64_t pin_bytes = 0;
  std::vector<std::string> delta_paths;
  api::RemoteOptions remote_options;
  bool have_remote_flags = false;
  for (int i = flag_start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--nodes" && i + 1 < argc) {
      nodes_spec = argv[++i];
    } else if (arg == "--pairs" && i + 1 < argc) {
      pairs_spec = argv[++i];
    } else if (arg == "--batch") {
      batch = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      if (!ParseCountFlag("--threads", argv[++i], kMaxThreads, &threads)) {
        return 2;
      }
    } else if (arg == "--cache-bytes" && i + 1 < argc) {
      if (!ParseU64(argv[++i], &cache_bytes)) {
        std::fprintf(stderr, "--cache-bytes expects a byte count, got "
                             "'%s'\n", argv[i]);
        return 2;
      }
      have_cache_bytes = true;
    } else if (arg == "--prefetch" && i + 1 < argc) {
      if (!ParseCountFlag("--prefetch", argv[++i], 64, &prefetch)) {
        return 2;
      }
    } else if (arg == "--pool" && i + 1 < argc) {
      if (!ParseCountFlag("--pool", argv[++i], 64,
                          &remote_options.pool_size)) {
        return 2;
      }
      have_remote_flags = true;
    } else if (arg == "--ssd-cache" && i + 1 < argc) {
      remote_options.ssd_cache_dir = argv[++i];
      have_remote_flags = true;
    } else if (arg == "--ssd-cache-bytes" && i + 1 < argc) {
      if (!ParseU64(argv[++i], &remote_options.ssd_cache_bytes)) {
        std::fprintf(stderr, "--ssd-cache-bytes expects a byte count, "
                             "got '%s'\n", argv[i]);
        return 2;
      }
      have_remote_flags = true;
    } else if (arg == "--replica" && i + 1 < argc) {
      remote_options.replicas.push_back(argv[++i]);
      have_remote_flags = true;
    } else if (arg == "--pin-bytes" && i + 1 < argc) {
      if (!ParseU64(argv[++i], &pin_bytes)) {
        std::fprintf(stderr, "--pin-bytes expects a byte count, got "
                             "'%s'\n", argv[i]);
        return 2;
      }
      remote_options.pin_bytes = pin_bytes;
    } else if (arg == "--warm-from-histogram" && i + 1 < argc) {
      std::string value = argv[++i];
      if (value != "0" && value != "1") {
        std::fprintf(stderr, "--warm-from-histogram expects 0 or 1, got "
                             "'%s'\n", value.c_str());
        return 2;
      }
      remote_options.warm_from_histogram = value == "1";
      have_remote_flags = true;
    } else if (arg == "--delta" && i + 1 < argc) {
      delta_paths.push_back(argv[++i]);
    } else {
      return Usage();
    }
  }
  if (have_remote_flags && remote_spec.empty()) {
    std::fprintf(stderr,
                 "--pool/--ssd-cache/--ssd-cache-bytes/--replica/"
                 "--warm-from-histogram tune the remote tier; they "
                 "require --remote\n");
    return 2;
  }
  if (nodes_spec.empty() && pairs_spec.empty()) {
    std::fprintf(stderr, "query needs --nodes and/or --pairs\n");
    return 2;
  }
  std::vector<uint64_t> nodes;
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  if (!nodes_spec.empty() && !ParseNodeList(nodes_spec, &nodes)) return 2;
  if (!pairs_spec.empty() && !ParsePairList(pairs_spec, &pairs)) return 2;

  std::string backend;
  Result<std::unique_ptr<api::CompressedRep>> rep =
      Status::Internal("rep not opened");
  if (!remote_spec.empty()) {
    rep = api::OpenRemote(remote_spec, remote_options);
    if (!rep.ok()) {
      std::fprintf(stderr, "%s\n", rep.status().ToString().c_str());
      return 1;
    }
    // The served container names its inner codec; report the same
    // backend tag a local open of that file would.
    auto* sharded = dynamic_cast<shard::ShardedRep*>(rep.value().get());
    if (sharded != nullptr) {
      backend = "sharded:" + sharded->inner_name();
    } else {
      backend = "remote";
    }
    // Deltas over a served base: the base file lives on the server, so
    // the first link's (hash, size) cannot be checked here — the
    // delta's recorded directory checksum against the served directory
    // (inside ApplyDelta) is the anchor instead. Later links still
    // chain hash-to-hash through the local delta files.
    if (!delta_paths.empty()) {
      if (sharded == nullptr) {
        std::fprintf(stderr,
                     "--delta needs a sharded corpus; %s is not one\n",
                     remote_spec.c_str());
        return 1;
      }
      uint64_t prev_hash = 0, prev_size = 0;
      bool have_prev = false;
      for (const std::string& path : delta_paths) {
        auto delta_file = MmapFile::Open(path);
        if (!delta_file.ok()) {
          std::fprintf(stderr, "%s\n",
                       delta_file.status().ToString().c_str());
          return 1;
        }
        ByteSpan span = delta_file.value()->span();
        auto delta = shard::DecodeDeltaContainer(span, path);
        if (!delta.ok()) {
          std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
          return 1;
        }
        if (have_prev && (delta.value().base_hash != prev_hash ||
                          delta.value().base_size != prev_size)) {
          std::fprintf(stderr,
                       "%s does not continue the delta chain\n",
                       path.c_str());
          return 1;
        }
        auto applied = sharded->ApplyDelta(delta.value());
        if (!applied.ok()) {
          std::fprintf(stderr, "%s\n", applied.ToString().c_str());
          return 1;
        }
        prev_hash = HashBytes(span.data, span.size);
        prev_size = span.size;
        have_prev = true;
      }
    }
    // OpenRemote already applied the pin budget using the server's
    // histogram — don't re-place with the id-order fallback.
    return RunQueries(std::move(rep).ValueOrDie(), backend, nodes, pairs,
                      batch, threads, have_cache_bytes, cache_bytes,
                      prefetch, /*pin_bytes=*/0);
  }
  if (!delta_paths.empty()) {
    // Versioned open: base + chain, lineage verified link by link
    // before any delta payload is trusted.
    rep = api::OpenVersioned(in_path, delta_paths, &backend);
    if (!rep.ok()) {
      std::fprintf(stderr, "%s\n", rep.status().ToString().c_str());
      return 1;
    }
    return RunQueries(std::move(rep).ValueOrDie(), backend, nodes, pairs,
                      batch, threads, have_cache_bytes, cache_bytes,
                      prefetch, pin_bytes);
  }
  auto file = MmapFile::Open(in_path);
  if (!file.ok()) {
    std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
    return 1;
  }
  ByteSpan bytes = file.value()->span();
  if (api::IsCodecContainer(bytes)) {
    ByteSpan payload;
    auto status = api::UnwrapCodecPayloadView(bytes, &backend, &payload);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", in_path, status.ToString().c_str());
      return 1;
    }
    auto codec = api::CodecRegistry::Create(backend);
    if (!codec.ok()) {
      std::fprintf(stderr, "%s\n", codec.status().ToString().c_str());
      return 1;
    }
    // Lazy for GRSHARD2 payloads: only the shards the queries below
    // actually touch are materialized from the mapping.
    rep = codec.value()->OpenPayload(std::move(file).ValueOrDie(), payload);
  } else {
    // Raw .grg grammar: frame it as the grepair backend's payload
    // (no-mapping flag + length-prefixed grammar) so one query path
    // serves both file kinds.
    backend = "grepair";
    std::vector<uint8_t> payload;
    payload.push_back(0);
    uint64_t len = bytes.size;
    for (int b = 0; b < 8; ++b) {
      payload.push_back(static_cast<uint8_t>(len >> (8 * b)));
    }
    payload.insert(payload.end(), bytes.begin(), bytes.end());
    auto codec = api::CodecRegistry::Create(backend);
    if (!codec.ok()) {
      std::fprintf(stderr, "%s\n", codec.status().ToString().c_str());
      return 1;
    }
    rep = codec.value()->Deserialize(payload);
  }
  if (!rep.ok()) {
    std::fprintf(stderr, "%s\n", rep.status().ToString().c_str());
    return 1;
  }
  return RunQueries(std::move(rep).ValueOrDie(), backend, nodes, pairs,
                    batch, threads, have_cache_bytes, cache_bytes,
                    prefetch, pin_bytes);
}

// `append`: replay a text edit stream against a versioned corpus and
// write the result as a GRSHARD3 delta container. Edit lines are
// `a u v [label]` (append a rank-2 edge) or `d u v` (delete every
// rank-2 edge u -> v); '#' starts a comment, blank lines are skipped.
// The produced delta chains to the *last* input file (the base when no
// chain files are given) by whole-file hash + size, and is cumulative:
// it carries every edit since the base, so shipping only the newest
// link reproduces the full corpus.
bool ParseEditsFile(const std::string& path,
                    std::vector<shard::EdgeEdit>* edits) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open edits file %s\n", path.c_str());
    return false;
  }
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    char op = 0;
    unsigned long long u = 0, v = 0, label = 0;
    int fields = std::sscanf(line.c_str(), " %c %llu %llu %llu",
                             &op, &u, &v, &label);
    if (fields <= 0) continue;  // blank / comment-only line
    bool ok = u <= 0xFFFFFFFFull && v <= 0xFFFFFFFFull &&
              label <= 0xFFFFFFFFull;
    if (ok && op == 'a' && (fields == 3 || fields == 4)) {
      edits->push_back(shard::EdgeEdit::Add(
          static_cast<uint32_t>(u), static_cast<uint32_t>(v),
          static_cast<uint32_t>(label)));
    } else if (ok && op == 'd' && fields == 3) {
      edits->push_back(shard::EdgeEdit::Delete(
          static_cast<uint32_t>(u), static_cast<uint32_t>(v)));
    } else {
      std::fprintf(stderr, "%s:%zu: expected 'a u v [label]' or "
                           "'d u v', got '%s'\n",
                   path.c_str(), line_no, line.c_str());
      return false;
    }
  }
  return true;
}

int CmdAppend(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string base_path = argv[2];
  std::vector<std::string> chain;
  std::string edits_path, out_path;
  uint64_t fold_budget = 0;
  bool have_fold_budget = false;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--edits" && i + 1 < argc) {
      edits_path = argv[++i];
    } else if ((arg == "-o" || arg == "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--fold-budget" && i + 1 < argc) {
      if (!ParseU64(argv[++i], &fold_budget)) {
        std::fprintf(stderr, "--fold-budget expects a byte count, got "
                             "'%s'\n", argv[i]);
        return 2;
      }
      have_fold_budget = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      chain.push_back(arg);  // an earlier delta in the chain
    }
  }
  if (edits_path.empty() || out_path.empty()) {
    std::fprintf(stderr, "append needs --edits <file> and -o <out>\n");
    return 2;
  }
  std::vector<shard::EdgeEdit> edits;
  if (!ParseEditsFile(edits_path, &edits)) return 1;

  std::string backend;
  auto rep = api::OpenVersioned(base_path, chain, &backend);
  if (!rep.ok()) {
    std::fprintf(stderr, "%s\n", rep.status().ToString().c_str());
    return 1;
  }
  auto* sharded = dynamic_cast<shard::ShardedRep*>(rep.value().get());
  if (have_fold_budget) sharded->set_overlay_budget_bytes(fold_budget);
  auto applied = sharded->ApplyEdits(edits);
  if (!applied.ok()) {
    std::fprintf(stderr, "%s\n", applied.ToString().c_str());
    return 1;
  }
  // The new delta chains to the newest existing file: the base when
  // this is the first delta, else the last chain link.
  const std::string& prev_path = chain.empty() ? base_path : chain.back();
  uint64_t prev_hash = 0, prev_size = 0;
  {
    auto prev = MmapFile::Open(prev_path);
    if (!prev.ok()) {
      std::fprintf(stderr, "%s\n", prev.status().ToString().c_str());
      return 1;
    }
    ByteSpan span = prev.value()->span();
    prev_hash = HashBytes(span.data, span.size);
    prev_size = span.size;
  }
  auto delta = sharded->BuildDelta(prev_hash, prev_size);
  if (!delta.ok()) {
    std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
    return 1;
  }
  if (!WriteBytes(out_path, shard::EncodeDeltaContainer(delta.value()))) {
    return 1;
  }
  std::printf("append: %s <- %zu edits (%zu changed shards, %zu adds + "
              "%zu kills residual) backend=%s\n",
              out_path.c_str(), edits.size(),
              delta.value().shards.size(), delta.value().adds.size(),
              delta.value().kills.size(), backend.c_str());
  return 0;
}

// `diff`: size a delta chain against re-shipping the whole base. Pure
// container inspection — nothing is decoded, so it works on corrupt
// payloads too (the trailing checksum is still verified).
int CmdDiff(int argc, char** argv) {
  if (argc < 4) return Usage();
  uint64_t base_size = 0;
  {
    auto base = MmapFile::Open(argv[2]);
    if (!base.ok()) {
      std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
      return 1;
    }
    base_size = base.value()->span().size;
  }
  std::printf("base: %s %llu bytes\n", argv[2],
              (unsigned long long)base_size);
  for (int i = 3; i < argc; ++i) {
    auto file = MmapFile::Open(argv[i]);
    if (!file.ok()) {
      std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
      return 1;
    }
    ByteSpan span = file.value()->span();
    auto delta = shard::DecodeDeltaContainer(span, argv[i]);
    if (!delta.ok()) {
      std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
      return 1;
    }
    uint64_t payload = 0;
    for (const auto& shard : delta.value().shards) {
      payload += shard.payload.size();
    }
    double pct = base_size == 0
                     ? 0.0
                     : 100.0 * (double)span.size / (double)base_size;
    std::printf("delta: %s %llu bytes (%.2f%% of base) shards=%zu "
                "shard_payload=%llu adds=%zu kills=%zu base=%s/%llu\n",
                argv[i], (unsigned long long)span.size, pct,
                delta.value().shards.size(),
                (unsigned long long)payload, delta.value().adds.size(),
                delta.value().kills.size(),
                HexU64(delta.value().base_hash).c_str(),
                (unsigned long long)delta.value().base_size);
  }
  return 0;
}

// `serve`: export GRSHARD2 containers over TCP until SIGINT or
// SIGTERM. Corpora come from repeatable `--corpus name=path` flags
// and/or bare arguments — a file registers under its basename (minus
// extension), a directory is scanned for every servable container.
// The listening line goes to stdout (flushed) so scripts can wait for
// it; everything after runs in the server's own threads.
std::atomic<bool> g_serve_stop{false};

void ServeSignalHandler(int) { g_serve_stop.store(true); }

// Basename minus the last extension, the same naming rule
// CorpusRegistry::DiscoverDirectory applies inside a directory.
std::string CorpusNameForPath(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = base.rfind('.');
  if (dot == std::string::npos || dot == 0) return base;
  return base.substr(0, dot);
}

int CmdServe(int argc, char** argv) {
  serve::ShardServer::Options options;
  serve::CorpusRegistry registry;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      int port = 0;
      if (!ParseCountFlag("--port", argv[++i], 65535, &port)) return 2;
      options.port = static_cast<uint16_t>(port);
    } else if (arg == "--pin-bytes" && i + 1 < argc) {
      if (!ParseU64(argv[++i], &options.pin_bytes)) {
        std::fprintf(stderr, "--pin-bytes expects a byte count, got "
                             "'%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--corpus" && i + 1 < argc) {
      std::string spec = argv[++i];
      size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "--corpus expects name=path, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      auto status = registry.AddFile(spec.substr(0, eq), spec.substr(eq + 1));
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
    } else if (!arg.empty() && arg[0] != '-') {
      struct stat st;
      if (stat(arg.c_str(), &st) != 0) {
        std::fprintf(stderr, "serve: cannot stat %s: %s\n", arg.c_str(),
                     std::strerror(errno));
        return 1;
      }
      Status status = S_ISDIR(st.st_mode)
                          ? registry.DiscoverDirectory(arg)
                          : registry.AddFile(CorpusNameForPath(arg), arg);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
    } else {
      return Usage();
    }
  }
  if (registry.empty()) {
    std::fprintf(stderr,
                 "serve needs at least one corpus (--corpus name=path, a "
                 "container file, or a directory of containers)\n");
    return 2;
  }
  size_t num_corpora = registry.size();
  auto server = serve::ShardServer::Start(std::move(registry), options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  std::printf("serving %zu corpus(es) on %s\n", num_corpora,
              server.value()->host_port().c_str());
  for (size_t i = 0; i < num_corpora; ++i) {
    const serve::Corpus& corpus = server.value()->registry().at(i);
    std::printf("  %s: inner=%s, %zu shards, %llu nodes\n",
                corpus.name.c_str(), corpus.inner_name.c_str(),
                corpus.rows.size(),
                (unsigned long long)corpus.num_nodes);
  }
  std::fflush(stdout);
  std::signal(SIGINT, ServeSignalHandler);
  std::signal(SIGTERM, ServeSignalHandler);
  while (!g_serve_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.value()->Stop();
  auto stats = server.value()->stats();
  std::printf("served %llu request(s) on %llu connection(s), "
              "%llu byte(s) sent, %llu error(s)\n",
              (unsigned long long)stats.requests,
              (unsigned long long)stats.connections,
              (unsigned long long)stats.bytes_sent,
              (unsigned long long)stats.errors);
  for (const auto& corpus : stats.corpora) {
    std::printf("  %s: %llu request(s)\n", corpus.name.c_str(),
                (unsigned long long)corpus.requests);
  }
  return 0;
}

// `info --remote host:port[/corpus]`: asks a running shard server
// over the GRNF STATS verb. Without a corpus name it prints the
// serving totals and the corpus list; with one it additionally fetches
// that corpus's footer directory (the same bytes `info <file>` reads
// locally) and prints the shard table with the server's hot-shard hit
// histogram alongside.
int CmdInfoRemote(const std::string& target) {
  std::string host_port, corpus;
  auto split = serve::SplitTarget(target, &host_port, &corpus);
  if (!split.ok()) {
    std::fprintf(stderr, "%s\n", split.ToString().c_str());
    return 2;
  }
  auto stats = serve::FetchServerStats(host_port);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  const serve::ServerStatsSnapshot& snapshot = stats.value();
  std::printf("shard server %s: %zu corpus(es), %llu connection(s), "
              "%llu request(s), %llu byte(s) sent, %llu error(s)\n",
              host_port.c_str(), snapshot.corpora.size(),
              (unsigned long long)snapshot.connections,
              (unsigned long long)snapshot.requests,
              (unsigned long long)snapshot.bytes_sent,
              (unsigned long long)snapshot.errors);
  for (const auto& c : snapshot.corpora) {
    std::printf("  %s: inner=%s nodes=%llu shards=%zu requests=%llu\n",
                c.name.c_str(), c.inner_name.c_str(),
                (unsigned long long)c.num_nodes, c.shard_hits.size(),
                (unsigned long long)c.requests);
  }
  if (corpus.empty() && snapshot.corpora.size() != 1) return 0;
  std::string resolved;
  auto dir = serve::FetchCorpusDirectory(host_port, corpus,
                                         /*io_timeout_ms=*/30000, &resolved);
  if (!dir.ok()) {
    std::fprintf(stderr, "%s\n", dir.status().ToString().c_str());
    return 1;
  }
  const std::vector<uint64_t>* hits = nullptr;
  const std::vector<uint8_t>* pinned = nullptr;
  for (const auto& c : snapshot.corpora) {
    if (c.name == resolved) {
      hits = &c.shard_hits;
      pinned = &c.shard_pinned;
    }
  }
  std::printf("corpus %s: inner=%s nodes=%llu shards=%zu\n",
              resolved.empty() ? corpus.c_str() : resolved.c_str(),
              dir.value().inner_name.c_str(),
              (unsigned long long)dir.value().num_nodes,
              dir.value().rows.size());
  // heat = this shard's share of all hits; pinned reflects the
  // server's current placement (blank when it has no pin budget).
  uint64_t total_hits = 0;
  if (hits != nullptr) {
    for (uint64_t h : *hits) total_hits += h;
  }
  std::printf("%6s %10s %10s %18s %10s %10s %7s %7s\n", "shard", "offset",
              "length", "checksum", "nodes", "hits", "heat", "pinned");
  for (size_t i = 0; i < dir.value().rows.size(); ++i) {
    const auto& s = dir.value().rows[i];
    uint64_t shard_hit_count =
        hits != nullptr && i < hits->size() ? (*hits)[i] : 0;
    double heat = total_hits > 0
                      ? 100.0 * static_cast<double>(shard_hit_count) /
                            static_cast<double>(total_hits)
                      : 0.0;
    bool is_pinned =
        pinned != nullptr && i < pinned->size() && (*pinned)[i] != 0;
    std::printf("%6zu %10llu %10llu 0x%016llx %10llu %10llu %6.1f%% %7s\n",
                i, (unsigned long long)s.offset,
                (unsigned long long)s.length,
                (unsigned long long)s.checksum,
                (unsigned long long)s.node_count,
                (unsigned long long)shard_hit_count, heat,
                is_pinned ? "yes" : "-");
  }
  return 0;
}

// `info`: the container directory without decoding anything — the
// backend tag, and for sharded payloads the per-shard
// offset/length/checksum/node-count table straight from the v2 footer
// (or a v1 header scan). No inner rep is ever constructed.
int CmdInfo(int argc, char** argv) {
  if (argc < 3) return Usage();
  if (std::strcmp(argv[2], "--remote") == 0) {
    if (argc < 4) return Usage();
    return CmdInfoRemote(argv[3]);
  }
  auto file = MmapFile::Open(argv[2]);
  if (!file.ok()) {
    std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
    return 1;
  }
  ByteSpan bytes = file.value()->span();
  std::printf("%s: %zu bytes (%s)\n", argv[2], bytes.size,
              file.value()->is_mapped() ? "mmap" : "heap");
  std::string backend;
  ByteSpan payload = bytes;
  if (api::IsCodecContainer(bytes)) {
    auto status = api::UnwrapCodecPayloadView(bytes, &backend, &payload);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[2], status.ToString().c_str());
      return 1;
    }
    std::printf("backend: %s (payload %zu bytes at offset %zu)\n",
                backend.c_str(), payload.size, bytes.size - payload.size);
  }
  bool sharded_magic =
      payload.size >= 7 &&
      std::memcmp(payload.data, shard::kShardContainerMagic, 7) == 0;
  if (!sharded_magic) {
    std::printf("payload: %s\n",
                backend.empty() ? "raw .grg grammar (no directory)"
                                : "single-shard codec (no directory)");
    return 0;
  }
  auto info = shard::ShardedRep::Inspect(payload);
  if (!info.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[2],
                 info.status().ToString().c_str());
    return 1;
  }
  std::printf("sharded container v%d: inner=%s nodes=%llu shards=%zu\n",
              info.value().version, info.value().inner_name.c_str(),
              static_cast<unsigned long long>(info.value().num_nodes),
              info.value().shards.size());
  std::printf("%6s %10s %10s %18s %10s\n", "shard", "offset", "length",
              "checksum", "nodes");
  for (size_t i = 0; i < info.value().shards.size(); ++i) {
    const auto& s = info.value().shards[i];
    std::printf("%6zu %10llu %10llu 0x%016llx %10llu\n", i,
                (unsigned long long)s.offset, (unsigned long long)s.length,
                (unsigned long long)s.checksum,
                (unsigned long long)s.node_count);
  }
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto grammar = LoadGrammar(argv[2]);
  if (!grammar.ok()) {
    std::fprintf(stderr, "%s\n", grammar.status().ToString().c_str());
    return 1;
  }
  auto s = ComputeGrammarStats(grammar.value());
  std::printf("rules:            %u\n", s.num_rules);
  std::printf("height:           %u\n", s.height);
  std::printf("max NT rank:      %u\n", s.max_nonterminal_rank);
  std::printf("|G| (rules):      %llu\n",
              static_cast<unsigned long long>(s.rule_size));
  std::printf("|S| (start):      %llu (%u nodes, %u edges)\n",
              static_cast<unsigned long long>(s.start_size), s.start_nodes,
              s.start_edges);
  std::printf("val(G):           %llu nodes, %llu edges\n",
              static_cast<unsigned long long>(ValNodeCount(grammar.value())),
              static_cast<unsigned long long>(ValEdgeCount(grammar.value())));
  return 0;
}

int CmdReach(int argc, char** argv) {
  if (argc < 5) return Usage();
  auto grammar = LoadGrammar(argv[2]);
  if (!grammar.ok()) {
    std::fprintf(stderr, "%s\n", grammar.status().ToString().c_str());
    return 1;
  }
  ReachabilityIndex index(grammar.value());
  uint64_t from = 0, to = 0;
  if (!ParseU64(argv[3], &from) || !ParseU64(argv[4], &to)) {
    std::fprintf(stderr,
                 "reach expects two non-negative node ids, got '%s' '%s'\n",
                 argv[3], argv[4]);
    return 2;
  }
  if (from >= index.node_map().num_nodes() ||
      to >= index.node_map().num_nodes()) {
    std::fprintf(stderr, "node out of range (val has %llu nodes)\n",
                 static_cast<unsigned long long>(
                     index.node_map().num_nodes()));
    return 1;
  }
  std::printf("%llu -> %llu: %s\n",
              static_cast<unsigned long long>(from),
              static_cast<unsigned long long>(to),
              index.Reachable(from, to) ? "reachable" : "not reachable");
  return 0;
}

int CmdNeighbors(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto grammar = LoadGrammar(argv[2]);
  if (!grammar.ok()) {
    std::fprintf(stderr, "%s\n", grammar.status().ToString().c_str());
    return 1;
  }
  NeighborhoodIndex index(grammar.value());
  uint64_t node = 0;
  if (!ParseU64(argv[3], &node)) {
    std::fprintf(stderr, "neighbors expects a non-negative node id, got '%s'\n",
                 argv[3]);
    return 2;
  }
  if (node >= index.node_map().num_nodes()) {
    std::fprintf(stderr, "node out of range\n");
    return 1;
  }
  auto out = index.OutNeighbors(node);
  auto in = index.InNeighbors(node);
  std::printf("out (%zu):", out.size());
  for (uint64_t v : out) std::printf(" %llu", (unsigned long long)v);
  std::printf("\nin  (%zu):", in.size());
  for (uint64_t v : in) std::printf(" %llu", (unsigned long long)v);
  std::printf("\n");
  return 0;
}

int CmdComponents(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto grammar = LoadGrammar(argv[2]);
  if (!grammar.ok()) {
    std::fprintf(stderr, "%s\n", grammar.status().ToString().c_str());
    return 1;
  }
  std::printf("%llu connected components\n",
              static_cast<unsigned long long>(
                  CountConnectedComponents(grammar.value())));
  return 0;
}

// Builds the named synthetic dataset; false on unknown kind. `size`
// is the kind's primary scale knob (0 = default).
bool MakeGenerated(const std::string& kind, uint32_t size,
                   GeneratedGraph* g) {
  if (kind == "er") {
    uint32_t n = size ? size : 1000;
    *g = ErdosRenyi(n, n * 4, 1);
  } else if (kind == "ba") {
    *g = BarabasiAlbert(size ? size : 1000, 4, 1);
  } else if (kind == "coauth") {
    uint32_t n = size ? size : 1000;
    *g = CoAuthorship(n, n * 3 / 2, 1);
  } else if (kind == "rdf-types") {
    *g = RdfTypes(size ? size : 10000, 50, 1);
  } else if (kind == "rdf-entities") {
    *g = RdfEntities(size ? size : 2000, 12, 100, 1);
  } else if (kind == "copies") {
    *g = DisjointCopies(CycleWithDiagonal(), size ? size : 256, "copies");
  } else if (kind == "dblp") {
    *g = DblpVersions(size ? size : 8, 200, 100, 1, "dblp");
  } else {
    return false;
  }
  return true;
}

int CmdGen(int argc, char** argv) {
  if (argc < 4) return Usage();
  uint32_t size = 0;
  if (argc >= 5) {
    // atoi would wrap negatives/overflow through the uint32_t cast
    // into enormous generator sizes.
    uint64_t parsed = 0;
    if (!ParseU64(argv[4], &parsed) || parsed > 0xFFFFFFFFull) {
      std::fprintf(stderr,
                   "gen expects a size in [0, 4294967295], got '%s'\n",
                   argv[4]);
      return 2;
    }
    size = static_cast<uint32_t>(parsed);
  }
  GeneratedGraph g;
  if (!MakeGenerated(argv[2], size, &g)) return Usage();
  auto status = SaveGraphText(g.graph, g.alphabet, argv[3]);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %u nodes, %u edges, %zu labels\n", argv[3],
              g.graph.num_nodes(), g.graph.num_edges(), g.alphabet.size());
  return 0;
}

// Sorted unique (source, target) pairs; the round-trip invariant every
// codec guarantees (the unlabeled baselines drop labels, so the bench
// check compares structure, not labels).
std::vector<std::pair<uint32_t, uint32_t>> UnlabeledEdgeSet(
    const Hypergraph& g) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (const auto& e : g.edges()) {
    if (e.att.size() == 2) edges.push_back({e.att[0], e.att[1]});
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

// Runs one codec over a generated dataset: compress, size, timing, and
// a full serialize -> deserialize -> decompress round-trip check.
// Returns 1 on hard failure, 0 on success or not-applicable.
int BenchOne(const std::string& backend, const GeneratedGraph& gg,
             const api::CodecOptions& options, bool* applicable) {
  *applicable = false;
  auto codec = api::CodecRegistry::Create(backend);
  if (!codec.ok()) {
    std::fprintf(stderr, "%s\n", codec.status().ToString().c_str());
    return 1;
  }
  auto t0 = std::chrono::steady_clock::now();
  auto rep = codec.value()->Compress(gg.graph, gg.alphabet, options);
  auto t1 = std::chrono::steady_clock::now();
  if (!rep.ok()) {
    if (rep.status().code() == StatusCode::kInvalidArgument) {
      std::printf("%-12s %12s   (%s)\n", backend.c_str(), "n/a",
                  rep.status().message().c_str());
      return 0;
    }
    std::fprintf(stderr, "%s: %s\n", backend.c_str(),
                 rep.status().ToString().c_str());
    return 1;
  }
  *applicable = true;
  auto bytes = rep.value()->Serialize();
  auto round = codec.value()->Deserialize(bytes);
  const char* roundtrip = "FAIL";
  if (round.ok()) {
    auto back = round.value()->Decompress();
    if (back.ok() && back.value().num_nodes() == gg.graph.num_nodes() &&
        UnlabeledEdgeSet(back.value()) == UnlabeledEdgeSet(gg.graph)) {
      roundtrip = "ok";
    }
  }
  double seconds = std::chrono::duration<double>(t1 - t0).count();
  std::printf("%-12s %12zu %9.3f %10.1f %10s %10s\n", backend.c_str(),
              rep.value()->ByteSize(),
              BitsPerEdge(rep.value()->ByteSize(), gg.graph.num_edges()),
              seconds * 1e3,
              (codec.value()->capabilities() & api::kNeighborQueries)
                  ? "yes"
                  : "no",
              roundtrip);
  return std::strcmp(roundtrip, "ok") == 0 ? 0 : 1;
}

int CmdBench(int argc, char** argv) {
  std::string backend = "all";
  std::string kind;
  std::string option_spec;
  ShardFlags shard_flags;
  uint32_t size = 0;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--backend" && i + 1 < argc) {
      backend = argv[++i];
    } else if (arg == "--gen" && i + 1 < argc) {
      kind = argv[++i];
    } else if (arg == "--size" && i + 1 < argc) {
      int parsed = 0;
      if (!ParseCountFlag("--size", argv[++i], 1 << 30, &parsed)) return 2;
      size = static_cast<uint32_t>(parsed);
    } else if (arg == "--options" && i + 1 < argc) {
      option_spec = argv[++i];
    } else if (ShardFlagParse m =
                   MatchShardFlag(arg, argc, argv, &i, &shard_flags);
               m != ShardFlagParse::kNoMatch) {
      if (m == ShardFlagParse::kError) return 2;
    } else {
      return Usage();
    }
  }
  if (kind.empty()) return Usage();
  bool sharding_requested = shard_flags.shards != 0 ||
                            shard_flags.threads != 0 ||
                            !shard_flags.strategy.empty();
  if (sharding_requested && backend == "all") {
    std::fprintf(stderr,
                 "--shards/--threads/--strategy need a single --backend "
                 "(run e.g. --backend grepair --shards 8)\n");
    return 2;
  }
  GeneratedGraph gg;
  if (!MakeGenerated(kind, size, &gg)) {
    std::fprintf(stderr, "unknown dataset kind %s\n", kind.c_str());
    return 2;
  }
  auto options = api::CodecOptions::Parse(option_spec);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return 1;
  }
  if (sharding_requested &&
      !ApplyShardFlags(shard_flags, &backend, &options.value())) {
    return 2;
  }
  std::printf("dataset %s: %u nodes, %u edges, %zu labels\n",
              gg.name.c_str(), gg.graph.num_nodes(), gg.graph.num_edges(),
              gg.alphabet.size());
  std::printf("%-12s %12s %9s %10s %10s %10s\n", "backend", "bytes", "bpe",
              "ms", "queries", "roundtrip");
  int rc = 0;
  if (backend == "all") {
    bool any_applicable = false;
    for (const auto& name : api::CodecRegistry::Names()) {
      bool applicable = false;
      rc |= BenchOne(name, gg, options.value(), &applicable);
      any_applicable |= applicable;
    }
    if (!any_applicable && rc == 0) {
      // Every codec refusing usually means the --options spec itself is
      // bad (a typo'd key rejects everywhere), not a benign mismatch.
      std::fprintf(stderr, "no codec ran; check --options\n");
      rc = 1;
    }
  } else {
    bool applicable = false;
    rc |= BenchOne(backend, gg, options.value(), &applicable);
    if (rc == 0 && !applicable) rc = 1;  // asked-for backend must run
  }
  return rc;
}

int CmdBackends() {
  for (const auto& name : api::CodecRegistry::Names()) {
    auto codec = api::CodecRegistry::Create(name).ValueOrDie();
    uint32_t caps = codec->capabilities();
    std::printf("%-12s labels=%s hyperedges=%s neighbors=%s "
                "reachability=%s\n",
                name.c_str(),
                (caps & api::kSupportsLabels) ? "yes" : "no",
                (caps & api::kSupportsHyperedges) ? "yes" : "no",
                (caps & api::kNeighborQueries) ? "yes" : "no",
                (caps & api::kReachabilityQueries) ? "yes" : "no");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "compress") return CmdCompress(argc, argv);
  if (cmd == "decompress") return CmdDecompress(argc, argv);
  if (cmd == "bench") return CmdBench(argc, argv);
  if (cmd == "backends") return CmdBackends();
  if (cmd == "query") return CmdQuery(argc, argv);
  if (cmd == "append") return CmdAppend(argc, argv);
  if (cmd == "diff") return CmdDiff(argc, argv);
  if (cmd == "serve") return CmdServe(argc, argv);
  if (cmd == "info") return CmdInfo(argc, argv);
  if (cmd == "stats") return CmdStats(argc, argv);
  if (cmd == "reach") return CmdReach(argc, argv);
  if (cmd == "neighbors") return CmdNeighbors(argc, argv);
  if (cmd == "components") return CmdComponents(argc, argv);
  if (cmd == "gen") return CmdGen(argc, argv);
  return Usage();
}
