#!/usr/bin/env bash
# Cached clang-tidy over the whole tree (src/ tools/ tests/ bench/
# fuzz/), using the .clang-tidy at the repo root with
# warnings-as-errors. A file is re-checked only when the hash of its
# contents + the tidy config + the tidy version changes, so a warm run
# on an unchanged tree is pure cache lookups — this is what keeps the
# CI static-analysis leg under a few minutes and a local pre-commit
# run near-instant.
#
# Usage: tools/run_clang_tidy_cached.sh [build_dir] [jobs]
#   build_dir: a configured CMake build tree with
#              CMAKE_EXPORT_COMPILE_COMMANDS=ON (default: build)
#   jobs:      parallel tidy processes (default: nproc)
#
# Cache: .cache/clang-tidy/ under the repo root (override with
# GREPAIR_TIDY_CACHE_DIR), one empty marker file per clean hash.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="${2:-$(nproc)}"
TIDY="${CLANG_TIDY:-clang-tidy}"
CACHE_DIR="${GREPAIR_TIDY_CACHE_DIR:-.cache/clang-tidy}"

if ! command -v "$TIDY" > /dev/null; then
  echo "error: $TIDY not found (set CLANG_TIDY or install clang-tidy)" >&2
  exit 1
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "error: $BUILD_DIR/compile_commands.json missing — configure with" >&2
  echo "  cmake -B $BUILD_DIR -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

mkdir -p "$CACHE_DIR"
# Any config or tool change invalidates the whole cache.
CONFIG_HASH=$("$TIDY" --version 2>/dev/null | cat - .clang-tidy | sha256sum |
  cut -c1-16)

# Only first-party TUs; gtest/benchmark TUs from FetchContent never
# appear because we list files from git, not from compile_commands.
# tests/negative_compile/ is excluded: those TUs are REQUIRED to fail
# compilation (cmake/ThreadSafetyChecks.cmake) and are in no target,
# so they have no compile command for tidy to use.
mapfile -t FILES < <(git ls-files 'src/*.cc' 'tools/*.cc' 'tests/*.cc' \
  'bench/*.cc' 'fuzz/*.cc' ':!tests/negative_compile')

run_one() {
  file="$1"
  hash=$(sha256sum "$file" | cut -c1-16)
  marker="$CACHE_DIR/${CONFIG_HASH}-${hash}-$(basename "$file")"
  if [ -e "$marker" ]; then
    return 0
  fi
  if out=$("$TIDY" -p "$BUILD_DIR" --quiet "$file" 2>&1); then
    touch "$marker"
    return 0
  fi
  printf '== %s ==\n%s\n' "$file" "$out"
  return 1
}
export -f run_one
export BUILD_DIR TIDY CACHE_DIR CONFIG_HASH

echo "clang-tidy over ${#FILES[@]} files ($JOBS jobs, cache $CACHE_DIR)"
if ! printf '%s\n' "${FILES[@]}" |
  xargs -P "$JOBS" -I{} bash -c 'run_one "$@"' _ {}; then
  echo "clang-tidy found issues (see above)" >&2
  exit 1
fi
echo "clang-tidy clean"
