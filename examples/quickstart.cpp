// Quickstart for the public API (src/api/grepair_api.h): build a
// graph, compress it with the gRePair codec from the registry, query
// it without decompressing, serialize it, round-trip it back, and
// compare against every other registered backend.
//
//   ./build/examples/quickstart
//
// Runs as a ctest smoke test, so this example cannot silently rot.

#include <cstdio>

#include "src/api/grepair_api.h"

using namespace grepair;

int main() {
  // A graph with obvious repeated structure: 50 triangles hanging off a
  // central hub, each triangle built from edges labeled a, b, c.
  Alphabet alphabet;
  Label a = alphabet.Add("a", 2);
  Label b = alphabet.Add("b", 2);
  Label c = alphabet.Add("c", 2);

  Hypergraph graph(1 + 3 * 50);  // hub + 50 triangles
  for (uint32_t t = 0; t < 50; ++t) {
    NodeId x = 1 + 3 * t, y = x + 1, z = x + 2;
    graph.AddSimpleEdge(0, x, a);  // hub -> triangle entry
    graph.AddSimpleEdge(x, y, b);
    graph.AddSimpleEdge(y, z, c);
    graph.AddSimpleEdge(z, x, b);
  }
  std::printf("input: %u nodes, %u edges, |g| = %llu\n", graph.num_nodes(),
              graph.num_edges(),
              static_cast<unsigned long long>(graph.TotalSize()));

  // Compress through the registry: one line per backend, no
  // codec-specific glue.
  auto codec = api::CodecRegistry::Create("grepair");
  if (!codec.ok()) {
    std::fprintf(stderr, "%s\n", codec.status().ToString().c_str());
    return 1;
  }
  auto rep = codec.value()->Compress(graph, alphabet);
  if (!rep.ok()) {
    std::fprintf(stderr, "compression failed: %s\n",
                 rep.status().ToString().c_str());
    return 1;
  }
  std::printf("grepair: %zu bytes (%.2f bits/edge)\n",
              rep.value()->ByteSize(),
              BitsPerEdge(rep.value()->ByteSize(), graph.num_edges()));

  // Query without decompressing: the hub's out-neighbors are the 50
  // triangle entry points (Proposition 4 of the paper).
  auto hub_out = rep.value()->OutNeighbors(0);
  auto reach = rep.value()->Reachable(0, graph.num_nodes() - 1);
  if (!hub_out.ok() || !reach.ok()) {
    std::fprintf(stderr, "query failed\n");
    return 1;
  }
  std::printf("hub out-degree (queried compressed): %zu; hub reaches "
              "last node: %s\n",
              hub_out.value().size(), reach.value() ? "yes" : "no");
  if (hub_out.value().size() != 50 || !reach.value()) {
    std::fprintf(stderr, "unexpected query results\n");
    return 1;
  }

  // Serialize, round-trip, and reconstruct the exact input (the psi'
  // node mapping rides along in the serialization by default).
  auto bytes = rep.value()->Serialize();
  auto back = codec.value()->Deserialize(bytes);
  if (!back.ok()) {
    std::fprintf(stderr, "%s\n", back.status().ToString().c_str());
    return 1;
  }
  auto restored = back.value()->Decompress();
  if (!restored.ok()) {
    std::fprintf(stderr, "%s\n", restored.status().ToString().c_str());
    return 1;
  }
  bool exact = restored.value().EqualUpToEdgeOrder(graph);
  std::printf("serialize -> deserialize -> decompress matches input: %s\n",
              exact ? "yes" : "NO");
  if (!exact) return 1;

  // Every other registered backend, one loop.
  std::printf("\nall registered codecs on this graph:\n");
  for (const auto& name : api::CodecRegistry::Names()) {
    auto other = api::CodecRegistry::Create(name).ValueOrDie();
    auto other_rep = other->Compress(graph, alphabet);
    if (other_rep.ok()) {
      std::printf("  %-12s %6zu bytes\n", name.c_str(),
                  other_rep.value()->ByteSize());
    } else {
      std::printf("  %-12s n/a (%s)\n", name.c_str(),
                  other_rep.status().message().c_str());
    }
  }
  return 0;
}
