// Quickstart: build a graph, compress it with gRePair, inspect the
// grammar, serialize it, and reconstruct the original exactly.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "src/encoding/grammar_coder.h"
#include "src/grepair/compressor.h"

using namespace grepair;

int main() {
  // A graph with obvious repeated structure: 50 triangles hanging off a
  // central hub, each triangle built from edges labeled a, b, c.
  Alphabet alphabet;
  Label a = alphabet.Add("a", 2);
  Label b = alphabet.Add("b", 2);
  Label c = alphabet.Add("c", 2);

  Hypergraph graph(1 + 3 * 50);  // hub + 50 triangles
  for (uint32_t t = 0; t < 50; ++t) {
    NodeId x = 1 + 3 * t, y = x + 1, z = x + 2;
    graph.AddSimpleEdge(0, x, a);  // hub -> triangle entry
    graph.AddSimpleEdge(x, y, b);
    graph.AddSimpleEdge(y, z, c);
    graph.AddSimpleEdge(z, x, b);
  }
  std::printf("input: %u nodes, %u edges, |g| = %llu\n", graph.num_nodes(),
              graph.num_edges(),
              static_cast<unsigned long long>(graph.TotalSize()));

  // Compress. track_node_mapping lets us reconstruct the exact input
  // (otherwise val(G) is an isomorphic copy, Section III-C2).
  CompressOptions options;
  options.track_node_mapping = true;
  auto result = Compress(graph, alphabet, options);
  if (!result.ok()) {
    std::fprintf(stderr, "compression failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const SlhrGrammar& grammar = result.value().grammar;
  std::printf("grammar: %u rules, |G|+|S| = %llu (%.0f%% of input)\n",
              grammar.num_rules(),
              static_cast<unsigned long long>(grammar.TotalSize()),
              100.0 * grammar.TotalSize() / graph.TotalSize());
  std::printf("%s\n", grammar.ToString().c_str());

  // Serialize to the paper's binary format.
  EncodeStats stats;
  auto bytes = EncodeGrammar(grammar, &stats);
  std::printf("encoded: %zu bytes (%.2f bits/edge); start graph holds "
              "%.0f%% of the bits\n",
              bytes.size(),
              BitsPerEdge(bytes.size(), graph.num_edges()),
              100.0 * stats.start_graph_bits / stats.total_bits);

  // Decode and derive: the decoded grammar regenerates val(G) exactly.
  auto decoded = DecodeGrammar(bytes);
  auto derived = Derive(decoded.value());
  std::printf("decoded grammar derives %u nodes / %u edges\n",
              derived.value().num_nodes(), derived.value().num_edges());

  // And with the tracked mapping we get the *original* node ids back.
  auto original = DeriveOriginal(grammar, result.value().mapping);
  std::printf("exact reconstruction matches input: %s\n",
              original.value().EqualUpToEdgeOrder(graph) ? "yes" : "NO");
  return 0;
}
